#!/usr/bin/env bash
# Thin wrapper so CI jobs and developers share one entry point for
# the full analyzer wall (wire_taint, det_taint, lock_graph,
# vegvisir_lint). All arguments pass through to run_all.py — see
# `run_all.py --help` for the knobs.
set -euo pipefail
exec python3 "$(dirname "$0")/run_all.py" "$@"
