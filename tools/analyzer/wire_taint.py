#!/usr/bin/env python3
"""Wire-taint dataflow analyzer: proves every attacker-controlled
integer is bounded before it allocates.

Vegvisir nodes decode blocks, frontier sets and certificates received
from arbitrary physical neighbours, so the wire decoders are the
permissioned system's real attack surface. The fuzzers in fuzz/ hunt
allocation bombs *dynamically*; this tool makes the guarantee
*static*: an integer read off the wire must pass through a bound
check against serial/limits.h before it reaches an allocation, a
container resize, or a loop trip count.

Taxonomy (DESIGN.md section 11 has the full threat model):

  sources     serial::Reader Read{U8,U16,U32,U64,I64,Varint} -> a
              wire integer ("int" taint: attacker chooses the value);
              Read{Bytes,String,Fixed,Bool}, DecodeMessage,
              T::Decode/Deserialize out-params, GetVarint -> wire
              data ("data" taint: sizes are input-bounded, but any
              integer *field* plucked out of it is attacker-chosen
              and degrades to int taint).
  sinks       .reserve(n) / .resize(n), new T[n], vector/Bytes
              construction with a size, loop trip counts, and
              multiplicative/shift arithmetic that can wrap a size
              computation past a later comparison.
  sanitizers  serial::CheckWireCount(n, limits::kMax*, ...), an
              explicit comparison against a limits::kMax* constant
              that guards an early return, or std::min/std::clamp
              with a limits::kMax* ceiling.

The analysis is intraprocedural over each function body in statement
order, with one-level summaries for the small decoder helpers: a
helper whose parameter reaches a sink unsanitized ("sink param")
propagates the finding to any caller passing it a tainted argument,
and a helper that bounds a parameter against limits.h ("bounds
param") sanitizes the caller's argument.

Front-ends: --frontend=tokens (default, dependency-free lexical
front-end over the files named by compile_commands.json or
--src-root) or --frontend=clang, which runs
`clang -Xclang -ast-dump=json -fsyntax-only` per translation unit and
analyzes the exact function extents the AST reports. `auto` picks
clang when a clang binary exists, tokens otherwise; CI pins `tokens`
so the wall is identical on every machine.

Suppressions live ONLY in tools/analyzer/wire_taint_allow.txt (one
reviewed file, entries carry justifications); inline annotations in
src/ are rejected by tools/lint/vegvisir_lint.py.

Usage:
  wire_taint.py [--compile-commands build/compile_commands.json]
                [--src-root src] [--allow tools/analyzer/wire_taint_allow.txt]
                [--frontend auto|clang|tokens] [--json FILE] [--selftest]

Exit 0 when clean; 1 with one `file:line: [sink] message` per finding.
"""

import argparse
import json
import pathlib
import re
import shutil
import subprocess
import sys

# Directories under src/ that contain wire decoders or code that
# consumes decoded wire structures. sim/, telemetry/, crypto/,
# support/ and baseline/ never touch a serial::Reader (grep-verified;
# widen here the day one does).
SCAN_DIRS = ("serial", "recon", "node", "chain", "csm", "crdt", "util",
             "storage", "setdiff")

INT_SOURCES = r"ReadU8|ReadU16|ReadU32|ReadU64|ReadI64|ReadVarint"
DATA_SOURCES = r"ReadBytes|ReadString|ReadFixed|ReadBool"

# Accessors on wire data whose result is bounded by the physical
# input (a container can only be as large as the bytes that built
# it), hence safe as a loop bound or allocation size.
SAFE_ACCESSORS = {
    "size", "length", "empty", "begin", "end", "rbegin", "rend",
    "data", "find", "rfind", "find_first_of", "find_last_of",
    "substr", "c_str", "back", "front", "ok", "status", "count",
    "at", "capacity", "remaining", "AtEnd", "clear", "push_back",
    "emplace", "emplace_back", "insert", "erase", "pop_back",
}

INT_TYPE = re.compile(
    r"\b(u?int(8|16|32|64)?(_t)?|size_t|unsigned|long|short|uint64_t|"
    r"uint32_t|uint16_t|uint8_t|int64_t|int32_t)\b")

CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "do", "else",
    "sizeof", "static_assert", "decltype", "alignof", "assert",
}


# ---------------------------------------------------------------------------
# Lexical front-end
# ---------------------------------------------------------------------------

def strip_code(text):
    """Blanks comments and string/char literals, preserving newlines
    and offsets (same contract as tools/lint/vegvisir_lint.py)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append(re.sub(r"[^\n]", " ", text[i:j]))
            i = j
        elif c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(c + " " * (j - i - 2) + (c if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def match_paren(text, open_pos):
    """Index just past the parenthesis group opening at open_pos."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def match_brace(text, open_pos):
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


class Function:
    def __init__(self, path, name, params, body, line, header=""):
        self.path = path          # repo-relative file
        self.name = name          # unqualified name
        self.params = params      # raw parameter list text
        self.body = body          # body text (stripped), incl. init list
        self.line = line          # 1-based line of the definition
        self.header = header      # full header text


def extract_functions(path, stripped):
    """Finds function definitions by scanning `header { body }` shapes.

    Namespace/class/struct blocks are descended into; function bodies
    are consumed whole (nested lambdas and control blocks stay inline
    — the linear analysis walks them in statement order anyway).
    """
    functions = []
    i = 0
    boundary = 0  # start of the current header candidate
    n = len(stripped)
    while i < n:
        c = stripped[i]
        if c in ";}":
            boundary = i + 1
            i += 1
        elif c == "(":
            i = match_paren(stripped, i)
        elif c == "{":
            header = stripped[boundary:i]
            fn = classify_header(header)
            if fn is None:
                # namespace / class / enum / array-init: descend.
                boundary = i + 1
                i += 1
                continue
            name, params = fn
            end = match_brace(stripped, i)
            # Include a constructor's member-init list (between the
            # param list and the brace) in the analyzed body.
            init = header[header.rfind(")") + 1:]
            body = init + " " + stripped[i + 1:end - 1]
            line = stripped.count("\n", 0, boundary) + 1
            functions.append(Function(path, name, params, body, line,
                                      header.strip()))
            boundary = end
            i = end
        else:
            i += 1
    return functions


def classify_header(header):
    """Returns (name, params) when `header` looks like a function
    definition, else None."""
    first_paren = header.find("(")
    if first_paren < 0:
        return None
    head = header[:first_paren].rstrip()
    m = re.search(r"([\w~]+)\s*$", head)
    if not m:
        return None  # lambda or operator soup; not a named function
    name = m.group(1)
    if name in CONTROL_KEYWORDS or not name:
        return None
    # `= [...]` initializers and control statements are not defs.
    depth = 0
    for ch in header:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        elif ch == "=" and depth == 0:
            return None
    params_end = match_paren(header, first_paren)
    params = header[first_paren + 1:params_end - 1]
    return name, params


def split_statements(body, base_line):
    """Splits a body into (text, line) statements at `;`/`{`/`}` that
    sit outside parentheses, so `for(a;b;c)` headers stay whole."""
    statements = []
    start = 0
    depth = 0
    for i, c in enumerate(body):
        if c == "(":
            depth += 1
        elif c == ")":
            depth = max(0, depth - 1)
        elif c in ";{}" and depth == 0:
            stmt = body[start:i].strip()
            if stmt:
                line = base_line + body.count("\n", 0, start)
                statements.append((stmt, line))
            start = i + 1
    stmt = body[start:].strip()
    if stmt:
        statements.append((stmt, base_line + body.count("\n", 0, start)))
    return statements


# ---------------------------------------------------------------------------
# Taint analysis
# ---------------------------------------------------------------------------

def norm(name):
    """Normalizes `a->b` / `a.b` access paths to dotted form."""
    return re.sub(r"\s*->\s*|\s*\.\s*", ".", name.strip()).strip(".")


# Lookup calls whose argument is a *key*: `sessions_.find(id)` selects
# which of OUR entries to touch; the entry's contents stay ours, so
# key taint must not flow into the result (classic map-lookup FP).
LOOKUP_CALLS = {
    "find", "count", "at", "erase", "contains", "lower_bound",
    "upper_bound", "equal_range", "bucket",
}


def in_key_context(expr, pos):
    """True when expr[pos] sits in a subscript or the argument list of
    a pure lookup call — a key position, not a data position."""
    stack = []
    for i in range(pos):
        c = expr[i]
        if c == "[":
            stack.append("[")
        elif c == "(":
            m = re.search(r"(?:\.|->)\s*(\w+)\s*$", expr[:i])
            stack.append(m.group(1)
                         if m and m.group(1) in LOOKUP_CALLS else "(")
        elif c in ")]" and stack:
            stack.pop()
    return any(s == "[" or s in LOOKUP_CALLS for s in stack)


def base_of(name):
    return norm(name).split(".")[0]


class Finding:
    def __init__(self, path, line, function, sink, var, source, message):
        self.path = path
        self.line = line
        self.function = function
        self.sink = sink
        self.var = var
        self.source = source
        self.message = message

    def key(self):
        return (self.path, self.function, self.sink, self.var)

    def __str__(self):
        return (f"{self.path}:{self.line}: [{self.sink}] in "
                f"{self.function}(): {self.message}")


class Summary:
    def __init__(self):
        self.sink_params = {}    # index -> sink kind
        self.bounds_params = set()


class Analyzer:
    def __init__(self, summaries=None):
        self.summaries = summaries or {}

    # -- expression taint ------------------------------------------------
    def expr_taint(self, expr, taint):
        """Returns (flavor, var, source) of the strongest taint
        reachable in `expr`, where flavor is 'int' | 'data' | None."""
        best = (None, None, None)
        flat_expr = re.sub(r"\s+", " ", expr)
        for name, (flavor, source, _line) in taint.items():
            pat = re.escape(name).replace(r"\.", r"(?:\.|->)\s*")
            for m in re.finditer(r"\b" + pat + r"\b", flat_expr):
                if in_key_context(flat_expr, m.start()):
                    continue  # key position: selects an entry, no flow
                if flavor == "int":
                    return ("int", name, source)
                # data taint: plucking a non-safe field out of it yields
                # an attacker-chosen scalar -> int taint.
                tail = flat_expr[m.end():]
                fm = re.match(r"\s*(?:\.|->)\s*(\w+)\s*(\(?)", tail)
                if fm and fm.group(1) not in SAFE_ACCESSORS \
                        and not fm.group(2):
                    return ("int", f"{name}.{fm.group(1)}", source)
                if best[0] is None:
                    best = ("data", name, source)
        return best

    # -- one function ----------------------------------------------------
    def analyze(self, fn, seed_params=False):
        taint = {}     # name -> (flavor, source-desc, line)
        findings = []
        param_names = {}
        cleaned_params = set()

        if seed_params:
            for idx, (pname, pint) in enumerate(parse_params(fn.params)):
                if pname:
                    param_names[pname] = idx
                    taint[pname] = ("int" if pint else "data",
                                    f"param #{idx}", fn.line)

        def add_finding(stmt, line, sink, tainted_var, source):
            findings.append(Finding(
                fn.path, line, fn.name, sink, tainted_var, source,
                f"wire-tainted '{tainted_var}' (from {source}) reaches "
                f"{sink} without a serial/limits.h bound: `{snip(stmt)}`"))

        for stmt, line in split_statements(fn.body, fn.line):
            flat = re.sub(r"\s+", " ", stmt)

            # --- sanitizers first: a guard and a use can share one
            # statement only in the guard-first idioms below.
            for m in re.finditer(
                    r"CheckWireCount\s*\(\s*([\w.\->\[\]]+)", flat):
                name = norm(m.group(1))
                taint.pop(name, None)
                taint.pop(base_of(name), None)
                if name in param_names:
                    cleaned_params.add(name)
            for m in re.finditer(
                    r"\b([\w.\->\[\]]+)\s*(?:>=?|==)\s*(?:[\w:]*limits::)?"
                    r"(k[A-Z]\w*)", flat):
                if m.group(2).startswith("kMax") or "limits::" in flat:
                    name = norm(m.group(1))
                    taint.pop(name, None)
                    if name in param_names:
                        cleaned_params.add(name)
            for m in re.finditer(
                    r"\b(?:[\w:]*limits::)?(kMax\w*)\s*(?:<=?)\s*"
                    r"([\w.\->\[\]]+)", flat):
                name = norm(m.group(2))
                taint.pop(name, None)
                if name in param_names:
                    cleaned_params.add(name)
            clamped_lhs = None
            clamp = re.search(
                r"([\w.\->\[\]]+)\s*=\s*(?:std::)?(?:min|clamp)\s*\(", flat)
            if clamp and re.search(r"limits::|kMax\w+", flat):
                clamped_lhs = norm(clamp.group(1))
                taint.pop(clamped_lhs, None)

            # helper summaries: calls that bound or sink their params
            for m in re.finditer(r"\b(\w+)\s*\(", flat):
                callee = m.group(1)
                summary = self.summaries.get(callee)
                if summary is None:
                    continue
                args = split_args(flat, m.end() - 1)
                for idx in summary.bounds_params:
                    if idx < len(args):
                        flavor, var, _src = self.expr_taint(args[idx], taint)
                        if flavor:
                            taint.pop(var, None)
                            taint.pop(base_of(var), None)
                            if var in param_names:
                                cleaned_params.add(var)
                for idx, sink in summary.sink_params.items():
                    if idx < len(args):
                        flavor, var, src = self.expr_taint(args[idx], taint)
                        if flavor == "int":
                            add_finding(stmt, line, f"helper-sink:{callee}",
                                        var, src)

            # --- sinks
            for m in re.finditer(r"(?:\.|->)\s*(reserve|resize)\s*\(", flat):
                args = split_args(flat, flat.index("(", m.start()))
                if args:
                    flavor, var, src = self.expr_taint(args[0], taint)
                    if flavor == "int":
                        add_finding(stmt, line, m.group(1), var, src)
            for m in re.finditer(r"\bnew\s+[\w:<>]+\s*\[([^\]]+)\]", flat):
                flavor, var, src = self.expr_taint(m.group(1), taint)
                if flavor == "int":
                    add_finding(stmt, line, "new-array", var, src)
            ctor = re.search(
                r"\b(?:std::vector\s*<[^;=]*?>|Bytes|std::string)\s+\w+"
                r"\s*\(([^;]*)\)", flat)
            if ctor:
                flavor, var, src = self.expr_taint(
                    ctor.group(1).split(",")[0], taint)
                if flavor == "int":
                    add_finding(stmt, line, "size-construction", var, src)
            if flat.startswith("for (") or flat.startswith("for("):
                inner = flat[flat.index("(") + 1:]
                parts = inner.split(";")
                if len(parts) >= 2:  # not a range-for
                    flavor, var, src = self.expr_taint(parts[1], taint)
                    if flavor == "int":
                        add_finding(stmt, line, "loop-bound", var, src)
            wm = re.match(r"(?:do\s*)?while\s*\((.*)\)$", flat) or \
                re.match(r"while\s*\((.*)", flat)
            if wm:
                flavor, var, src = self.expr_taint(wm.group(1), taint)
                if flavor == "int":
                    add_finding(stmt, line, "loop-bound", var, src)
            for name, (flavor, src, _l) in list(taint.items()):
                if flavor != "int":
                    continue
                pat = re.escape(name).replace(r"\.", r"(?:\.|->)\s*")
                if re.search(r"\b" + pat + r"\s*(\*|<<)\s*[\w(]", flat) or \
                        re.search(r"[\w)\]]\s*(\*|<<)\s*" + pat + r"\b",
                                  flat):
                    add_finding(stmt, line, "overflow-arith", name, src)

            # --- sources (taint introduced for *subsequent* statements,
            # but Read*(&x) guarded in the same statement stays tainted)
            for m in re.finditer(
                    r"\b(" + INT_SOURCES + r")\s*\(\s*&\s*([\w.\->\[\]]+)",
                    flat):
                name = norm(m.group(2))
                taint[name] = ("int", m.group(1), line)
            for m in re.finditer(
                    r"\b(" + DATA_SOURCES + r")\s*(?:<[^>(]*>)?\s*"
                    r"\(\s*&?\s*([\w.\->\[\]]+)", flat):
                name = norm(m.group(2))
                if name not in taint:
                    taint[name] = ("data", m.group(1), line)
            for m in re.finditer(
                    r"\b(DecodeMessage|ParseEnvelope)\s*\([^,]+,\s*&\s*"
                    r"([\w.\->]+)", flat):
                taint[norm(m.group(2))] = ("data", m.group(1), line)
            for m in re.finditer(
                    r"\b(\w+)::(Decode|DecodeState)\s*\(\s*&?\w+\s*,\s*&\s*"
                    r"([\w.\->]+)", flat):
                taint[norm(m.group(3))] = ("data", f"{m.group(1)}::Decode",
                                           line)
            for m in re.finditer(
                    r"\bGetVarint\s*\([^,]+,[^,]+,\s*&\s*([\w.\->]+)", flat):
                taint[norm(m.group(1))] = ("int", "GetVarint", line)
            dm = re.search(
                r"(?:auto|Bytes|std::string)?\s*&?\s*([\w]+)\s*=\s*"
                r"[\w:]*\b(Deserialize|Parse)\w*\s*\(", flat)
            if dm:
                taint[dm.group(1)] = ("data", dm.group(2), line)

            # --- assignment propagation (after sources so `x = y + z`
            # with tainted y taints x from this statement on)
            am = re.match(
                r"(?:[\w:<>,\s&*]+?\s)?([\w.\->\[\]]+)\s*[+\-*/|&^]?="
                r"([^=].*)$", flat)
            if am and "==" not in flat[:am.end(1) + 2]:
                lhs = norm(am.group(1))
                if lhs not in taint and lhs != clamped_lhs:
                    flavor, _var, src = self.expr_taint(am.group(2), taint)
                    if flavor:
                        taint[lhs] = (flavor, src, line)

        return findings, param_names, cleaned_params


def snip(stmt, width=60):
    flat = re.sub(r"\s+", " ", stmt).strip()
    return flat if len(flat) <= width else flat[:width - 3] + "..."


def parse_params(params_text):
    """Yields (name, is_integer) per parameter."""
    out = []
    depth = 0
    current = []
    parts = []
    for ch in params_text:
        if ch in "<(":
            depth += 1
        elif ch in ">)":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        parts.append("".join(current))
    for part in parts:
        part = part.split("=")[0].strip()
        m = re.search(r"([\w]+)\s*$", part)
        if not m or part in ("void",):
            out.append((None, False))
            continue
        name = m.group(1)
        typ = part[:m.start()]
        is_int = bool(INT_TYPE.search(typ)) and "*" not in typ \
            and "&" not in typ
        out.append((name, is_int))
    return out


def split_args(flat, open_paren):
    """Splits the argument list opening at `open_paren` in `flat`."""
    end = match_paren(flat, open_paren)
    inner = flat[open_paren + 1:end - 1]
    args = []
    depth = 0
    current = []
    for ch in inner:
        if ch in "<([{":
            depth += 1
        elif ch in ">)]}":
            depth -= 1
        if ch == "," and depth == 0:
            args.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    if current:
        args.append("".join(current).strip())
    return args


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def collect_files(args, root):
    files = set()
    if args.compile_commands:
        db = json.loads(pathlib.Path(args.compile_commands).read_text())
        for entry in db:
            p = pathlib.Path(entry["file"])
            if not p.is_absolute():
                p = pathlib.Path(entry["directory"]) / p
            p = p.resolve()
            try:
                rel = p.relative_to(root)
            except ValueError:
                continue
            if in_scope(rel):
                files.add(rel)
    src_root = pathlib.Path(args.src_root) if args.src_root else None
    if src_root is None and not files:
        src_root = root / "src"
    if src_root is not None:
        for p in sorted(src_root.rglob("*")):
            if p.suffix in (".h", ".cpp"):
                rel = p.resolve().relative_to(root)
                if in_scope(rel):
                    files.add(rel)
    if args.compile_commands and files:
        # The DB names only .cpp TUs; headers under the scanned
        # directories carry inline decoders (codec.h templates), so
        # sweep them in too.
        for rel in list(files):
            for p in sorted((root / rel.parent).glob("*.h")):
                prel = p.resolve().relative_to(root)
                if in_scope(prel):
                    files.add(prel)
    return sorted(files)


def in_scope(rel):
    parts = rel.parts
    return len(parts) >= 2 and parts[0] == "src" and parts[1] in SCAN_DIRS


def clang_function_ranges(path, root, compile_commands):
    """clang front-end: asks `clang -Xclang -ast-dump=json` for the
    function extents of one TU, returning [(name, begin, end), ...]
    byte offsets, or None when clang cannot be used."""
    clang = shutil.which("clang++") or shutil.which("clang")
    if clang is None:
        return None
    flags = []
    if compile_commands:
        db = json.loads(pathlib.Path(compile_commands).read_text())
        for entry in db:
            if entry["file"].endswith(str(path)):
                raw = entry.get("arguments") or entry["command"].split()
                flags = [a for a in raw[1:]
                         if a.startswith(("-I", "-D", "-std", "-isystem"))]
                break
    cmd = [clang, "-fsyntax-only", "-Xclang", "-ast-dump=json",
           *flags, str(root / path)]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=120)
        ast = json.loads(proc.stdout)
    except Exception:
        return None
    ranges = []

    def walk(node):
        kind = node.get("kind", "")
        if kind in ("FunctionDecl", "CXXMethodDecl", "CXXConstructorDecl"):
            rng = node.get("range", {})
            begin = rng.get("begin", {}).get("offset")
            end = rng.get("end", {}).get("offset")
            has_body = any(ch.get("kind") == "CompoundStmt"
                           for ch in node.get("inner", []))
            if begin is not None and end is not None and has_body:
                ranges.append((node.get("name", "?"), begin, end + 1))
        for child in node.get("inner", []):
            if isinstance(child, dict):
                walk(child)

    walk(ast)
    return ranges


def load_allow(path):
    tcb, allows = set(), []
    if path and pathlib.Path(path).exists():
        for raw in pathlib.Path(path).read_text().splitlines():
            entry = raw.split("#")[0].strip()
            if not entry:
                continue
            fields = entry.split()
            if fields[0] == "tcb" and len(fields) == 2:
                tcb.add(fields[1])
            elif fields[0] == "allow" and len(fields) >= 4:
                allows.append(tuple(fields[1:5]))
            else:
                sys.exit(f"{path}: malformed entry: {raw}")
    return tcb, allows


def allowed(finding, allows):
    for entry in allows:
        path, function, sink = entry[0], entry[1], entry[2]
        var = entry[3] if len(entry) > 3 else "*"
        if (path in ("*", finding.path) and
                function in ("*", finding.function) and
                sink in ("*", finding.sink) and
                var in ("*", finding.var)):
            return True
    return False


def analyze_tree(files, root, tcb, frontend, compile_commands):
    # Pass 1: summaries for every function (helpers included), seeded
    # with tainted params; iterate once more so helper-of-helper
    # chains converge.
    all_functions = []
    for rel in files:
        if str(rel) in tcb:
            continue
        text = (root / rel).read_text()
        stripped = strip_code(text)
        if frontend == "clang":
            ranges = clang_function_ranges(rel, root, compile_commands)
            if ranges is not None:
                for name, begin, end in ranges:
                    segment = stripped[begin:end]
                    fns = extract_functions(str(rel), segment)
                    for fn in fns:
                        fn.line += stripped.count("\n", 0, begin)
                    all_functions.extend(fns)
                continue  # clang handled this file
        all_functions.extend(extract_functions(str(rel), stripped))

    summaries = {}
    for _ in range(2):
        analyzer = Analyzer(summaries)
        next_summaries = {}
        for fn in all_functions:
            findings, param_names, cleaned = analyzer.analyze(
                fn, seed_params=True)
            summary = Summary()
            for finding in findings:
                if finding.source.startswith("param #"):
                    idx = int(finding.source.split("#")[1])
                    summary.sink_params.setdefault(idx, finding.sink)
            for pname in cleaned:
                summary.bounds_params.add(param_names[pname])
            if summary.sink_params or summary.bounds_params:
                prev = next_summaries.get(fn.name)
                if prev:  # same-named helpers: union conservatively
                    prev.sink_params.update(summary.sink_params)
                    prev.bounds_params &= summary.bounds_params
                else:
                    next_summaries[fn.name] = summary
        summaries = next_summaries

    # Pass 2: the real check — only wire reads introduce taint.
    analyzer = Analyzer(summaries)
    findings = []
    for fn in all_functions:
        fn_findings, _params, _cleaned = analyzer.analyze(
            fn, seed_params=False)
        findings.extend(fn_findings)
    return findings


# ---------------------------------------------------------------------------
# Fixture self-test
# ---------------------------------------------------------------------------

def run_selftest(fixtures_dir, root):
    failures = []
    checked = 0
    for kind in ("good", "bad"):
        for path in sorted((fixtures_dir / kind).glob("*.cpp")):
            text = path.read_text()
            expect = re.search(r"//\s*taint-expect:\s*(.+)", text)
            if not expect:
                failures.append(f"{path}: missing `// taint-expect:` header")
                continue
            spec = expect.group(1).strip()
            rel = str(path.relative_to(root))
            stripped = strip_code(text)
            functions = extract_functions(rel, stripped)
            # fixtures are self-contained: build local summaries too
            summaries = {}
            analyzer = Analyzer({})
            for fn in functions:
                f, pn, cl = analyzer.analyze(fn, seed_params=True)
                s = Summary()
                for finding in f:
                    if finding.source.startswith("param #"):
                        s.sink_params.setdefault(
                            int(finding.source.split("#")[1]), finding.sink)
                for p in cl:
                    s.bounds_params.add(pn[p])
                if s.sink_params or s.bounds_params:
                    summaries[fn.name] = s
            analyzer = Analyzer(summaries)
            findings = []
            for fn in functions:
                findings.extend(analyzer.analyze(fn, seed_params=False)[0])
            checked += 1
            if spec == "clean":
                if kind != "good":
                    failures.append(f"{rel}: `clean` belongs in good/")
                for finding in findings:
                    failures.append(f"{rel}: expected clean, got: {finding}")
                continue
            if kind != "bad":
                failures.append(f"{rel}: expectation {spec} belongs in bad/")
            for clause in spec.split(";"):
                want = dict(kv.split("=") for kv in clause.strip().split())
                hit = any(
                    (("source" not in want or
                      want["source"] in finding.source) and
                     ("sink" not in want or want["sink"] == finding.sink))
                    for finding in findings)
                if not hit:
                    got = ", ".join(f"{f.source}->{f.sink}"
                                    for f in findings) or "no findings"
                    failures.append(
                        f"{rel}: expected {clause.strip()}, got: {got}")
    for failure in failures:
        print(failure)
    if failures:
        print(f"selftest: {len(failures)} failure(s) over {checked} "
              f"fixtures", file=sys.stderr)
        return 1
    print(f"wire_taint selftest: {checked} fixtures behaved")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--compile-commands", default=None)
    parser.add_argument("--src-root", default=None)
    parser.add_argument("--allow", default=None)
    parser.add_argument("--frontend", default="auto",
                        choices=("auto", "clang", "tokens"))
    parser.add_argument("--json", default=None,
                        help="write findings as JSON to FILE")
    parser.add_argument("--selftest", action="store_true",
                        help="run the fixture suite instead of src/")
    args = parser.parse_args()

    tool_dir = pathlib.Path(__file__).resolve().parent
    root = tool_dir.parent.parent

    if args.selftest:
        return run_selftest(tool_dir / "fixtures", root)

    frontend = args.frontend
    if frontend == "auto":
        frontend = "clang" if shutil.which("clang") else "tokens"

    allow_path = args.allow or tool_dir / "wire_taint_allow.txt"
    tcb, allows = load_allow(allow_path)

    files = collect_files(args, root)
    if not files:
        sys.exit("no files to analyze (check --compile-commands/--src-root)")

    findings = analyze_tree(files, root, tcb, frontend,
                            args.compile_commands)
    visible = [f for f in findings if not allowed(f, allows)]
    suppressed = len(findings) - len(visible)

    if args.json:
        pathlib.Path(args.json).write_text(json.dumps(
            [vars(f) for f in findings], indent=2) + "\n")

    for finding in sorted(visible, key=lambda f: (f.path, f.line)):
        print(finding)
    if visible:
        print(f"{len(visible)} finding(s) ({suppressed} suppressed by "
              f"{allow_path})", file=sys.stderr)
        return 1
    print(f"wire_taint: {len(files)} files clean under frontend="
          f"{frontend} ({suppressed} suppressed, {len(tcb)} TCB files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
