#!/usr/bin/env python3
"""One-process driver for the analyzer wall.

Runs every static pass that gates CI — wire_taint, det_taint,
lock_graph (each: fixture selftest + full src sweep) and
vegvisir_lint — with the compile database parsed ONCE and shared
across analyzers, and per-pass wall-time printed so a slow pass is
visible before it becomes a CI budget problem.

The individual tools remain runnable on their own (same findings,
same exit codes); this driver exists so the CI jobs and a developer's
pre-push check are one command:

    tools/analyzer/run_all.sh --compile-commands build/compile_commands.json

Exit 0 only when every pass is green.
"""

import argparse
import json
import pathlib
import subprocess
import sys
import time

TOOL_DIR = pathlib.Path(__file__).resolve().parent
sys.path.insert(0, str(TOOL_DIR))

import det_taint as dt  # noqa: E402
import lock_graph as lg  # noqa: E402
import wire_taint as wt  # noqa: E402

ROOT = TOOL_DIR.parent.parent


def load_compile_db(path, root):
    """Parses compile_commands.json once into repo-relative paths.

    Returns None when there is no database (callers fall back to a
    src/ sweep), else the sorted list of TU paths under the repo."""
    if path is None or not pathlib.Path(path).exists():
        return None
    rels = set()
    for entry in json.loads(pathlib.Path(path).read_text()):
        p = pathlib.Path(entry["file"])
        if not p.is_absolute():
            p = pathlib.Path(entry["directory"]) / p
        try:
            rels.add(p.resolve().relative_to(root))
        except ValueError:
            continue
    return sorted(rels)


def scoped_files(db_rels, root, scope):
    """Applies one analyzer's in_scope predicate to the shared DB
    load, mirroring wire_taint.collect_files: DB names only .cpp TUs,
    so sibling headers in scanned directories are swept in too."""
    if db_rels is None:
        return sorted(
            p.resolve().relative_to(root)
            for p in (root / "src").rglob("*")
            if p.suffix in (".h", ".cpp")
            and scope(p.resolve().relative_to(root)))
    files = {rel for rel in db_rels if scope(rel)}
    for rel in sorted(files):
        for p in sorted((root / rel.parent).glob("*.h")):
            prel = p.resolve().relative_to(root)
            if scope(prel):
                files.add(prel)
    return sorted(files)


def src_pass(mod, name, files, frontend, compile_commands):
    """Full-tree sweep for one analyzer; prints that analyzer's own
    clean line / findings. Returns 0 when clean."""
    allow_path = TOOL_DIR / f"{name}_allow.txt"
    tcb, allows = wt.load_allow(allow_path)
    if mod is lg:
        findings, _prog = lg.analyze_tree(files, ROOT, tcb)
    else:
        findings = mod.analyze_tree(files, ROOT, tcb, frontend,
                                    compile_commands)
    visible = [f for f in findings if not wt.allowed(f, allows)]
    for finding in sorted(visible, key=lambda f: (f.path, f.line)):
        print(finding)
    if visible:
        print(f"{len(visible)} finding(s) ({len(findings) - len(visible)} "
              f"suppressed by {allow_path})", file=sys.stderr)
        return 1
    print(f"{name}: {len(files)} files clean "
          f"({len(findings) - len(visible)} suppressed, "
          f"{len(tcb)} TCB files)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--compile-commands",
                        default=str(ROOT / "build/compile_commands.json"),
                        help="shared compile DB (parsed once); falls back "
                             "to a src/ sweep when absent")
    parser.add_argument("--frontend", default="auto",
                        choices=("auto", "clang", "tokens"))
    parser.add_argument("--skip-selftests", action="store_true",
                        help="src sweeps and lint only")
    args = parser.parse_args()

    frontend = args.frontend
    if frontend == "auto":
        import shutil
        frontend = "clang" if shutil.which("clang") else "tokens"

    db_rels = load_compile_db(args.compile_commands, ROOT)
    cc = args.compile_commands if db_rels is not None else None
    if db_rels is None:
        print("run_all: no compile DB, sweeping src/ directly",
              file=sys.stderr)

    passes = []
    if not args.skip_selftests:
        passes += [
            ("wire_taint selftest",
             lambda: wt.run_selftest(TOOL_DIR / "fixtures", ROOT)),
            ("det_taint selftest",
             lambda: dt.run_selftest(TOOL_DIR / "fixtures" / "det", ROOT)),
            ("lock_graph selftest",
             lambda: lg.run_selftest(TOOL_DIR / "fixtures" / "lock", ROOT)),
        ]
    passes += [
        ("wire_taint src",
         lambda: src_pass(wt, "wire_taint",
                          scoped_files(db_rels, ROOT, wt.in_scope),
                          frontend, cc)),
        ("det_taint src",
         lambda: src_pass(dt, "det_taint",
                          scoped_files(db_rels, ROOT, dt.in_scope),
                          frontend, cc)),
        ("lock_graph src",
         lambda: src_pass(lg, "lock_graph",
                          scoped_files(db_rels, ROOT, lg.in_scope),
                          frontend, cc)),
        ("vegvisir_lint",
         lambda: subprocess.call(
             [sys.executable,
              str(ROOT / "tools" / "lint" / "vegvisir_lint.py"),
              str(ROOT)])),
    ]

    failures = []
    t_all = time.monotonic()
    for i, (name, run) in enumerate(passes, 1):
        print(f"--- [{i}/{len(passes)}] {name}", flush=True)
        t0 = time.monotonic()
        rc = run()
        dt_s = time.monotonic() - t0
        status = "PASS" if rc == 0 else f"FAIL (exit {rc})"
        print(f"--- [{i}/{len(passes)}] {name}: {status} [{dt_s:.2f}s]",
              flush=True)
        if rc != 0:
            failures.append(name)
    total = time.monotonic() - t_all
    if failures:
        print(f"run_all: {len(failures)}/{len(passes)} pass(es) FAILED "
              f"in {total:.2f}s: {', '.join(failures)}", file=sys.stderr)
        return 1
    print(f"run_all: {len(passes)}/{len(passes)} passes green "
          f"in {total:.2f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
