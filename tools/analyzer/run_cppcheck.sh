#!/usr/bin/env bash
# Triaged cppcheck wall with a committed baseline.
#
# Policy (mirrors run_scan_build.sh):
#   - NEW findings (present now, absent from the baseline) fail the
#     run: fix them or — after review — add them to the baseline.
#   - FIXED findings (in the baseline, gone now) are auto-accepted:
#     the script tells you to shrink the baseline but stays green, so
#     cleanups never block on a baseline edit race.
#   - Inline suppressions are banned in src/ (vegvisir_lint.py rule
#     no-inline-taint-suppression covers taint; cppcheck inline
#     suppression support is simply not enabled here). The baseline
#     file is the one reviewed suppression surface.
#
# The container used for local development may not ship cppcheck; the
# wall then SKIPs (exit 0) and relies on the CI image. Keep the
# skip message grep-able: the CI job asserts it did NOT skip.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/../.." && pwd)"
BASELINE="$ROOT/tools/analyzer/baselines/cppcheck_baseline.txt"

if ! command -v cppcheck >/dev/null 2>&1; then
  echo "SKIP: cppcheck not installed; wall enforced where it exists (CI)."
  exit 0
fi

# Coverage floor: the wall scans ALL of src/, and these directories in
# particular hold the lock-heavy code (pool, verifier, tiered store)
# that motivated it. A reorganization that renames or empties one must
# update this list consciously, not silently shrink the scan.
for must_cover in exec setdiff storage telemetry; do
  if ! ls "$ROOT/src/$must_cover"/*.cpp >/dev/null 2>&1; then
    echo "coverage regression: src/$must_cover has no sources to scan" >&2
    exit 1
  fi
done

current="$(mktemp)"
trap 'rm -f "$current"' EXIT

# --error-exitcode is left at 0: the baseline diff below is the
# verdict, not cppcheck's own idea of severity. Inline suppressions
# stay disabled (cppcheck's default) on purpose.
cppcheck --quiet \
  --enable=warning,performance,portability \
  --std=c++20 \
  --template='{file}:{line}:{id}:{message}' \
  -I "$ROOT/src" \
  "$ROOT/src" 2>&1 |
  sed "s|^$ROOT/||" | LC_ALL=C sort -u > "$current" || true

known="$(mktemp)"
grep -v '^#' "$BASELINE" | sed '/^$/d' | LC_ALL=C sort -u > "$known"
trap 'rm -f "$current" "$known"' EXIT

new_findings="$(LC_ALL=C comm -13 "$known" "$current")"
fixed_findings="$(LC_ALL=C comm -23 "$known" "$current")"

if [[ -n "$fixed_findings" ]]; then
  echo "baseline entries no longer reported (shrink the baseline):"
  echo "$fixed_findings" | sed 's/^/  - /'
fi
if [[ -n "$new_findings" ]]; then
  echo "NEW cppcheck findings (not in $BASELINE):"
  echo "$new_findings" | sed 's/^/  + /'
  exit 1
fi
echo "cppcheck wall: clean ($(wc -l < "$known" | tr -d ' ') baselined)"
