#!/usr/bin/env bash
# Triaged clang scan-build wall with a committed baseline.
#
# Same policy as run_cppcheck.sh: new findings fail, disappeared
# baseline entries are auto-accepted with a nudge to shrink the file.
# Findings are normalized to `file:line:description` so the diff is
# stable across clang versions that reorder report output.
#
# scan-build needs clang; containers without it SKIP (exit 0) and the
# CI image enforces the wall.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/../.." && pwd)"
BASELINE="$ROOT/tools/analyzer/baselines/scan_build_baseline.txt"

if ! command -v scan-build >/dev/null 2>&1; then
  echo "SKIP: scan-build not installed; wall enforced where it exists (CI)."
  exit 0
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

# A scratch single-config build so the wall never dirties the normal
# build tree (and never reuses its non-analyzed objects).
scan-build --use-cc="$(command -v clang)" --use-c++="$(command -v clang++)" \
  cmake -S "$ROOT" -B "$workdir/build" -DCMAKE_BUILD_TYPE=Debug \
  > "$workdir/configure.log" 2>&1
scan-build -o "$workdir/reports" --status-bugs \
  cmake --build "$workdir/build" -j \
  > "$workdir/build.log" 2>&1 && scan_status=0 || scan_status=$?

# Coverage floor: the analyzed build must actually have compiled the
# lock-heavy subsystems (a cache hit or a target-list change that
# skips them would make "clean" meaningless for exactly the code this
# wall exists for).
for tu in src/exec/pool.cpp src/exec/verifier.cpp \
          src/storage/engine.cpp src/storage/log.cpp \
          src/setdiff/iblt.cpp; do
  if ! grep -q "$(basename "$tu")" "$workdir/build.log"; then
    echo "scan-build coverage regression: $tu never built under the" \
         "analyzer (see $workdir/build.log)" >&2
    exit 1
  fi
done

# Normalize: scan-build emits `path:line:col: warning: text [checker]`.
grep -E ':[0-9]+:[0-9]+: warning:' "$workdir/build.log" |
  sed -E "s|^$ROOT/||; s|:([0-9]+):[0-9]+: warning: |:\1:|" |
  LC_ALL=C sort -u > "$workdir/current.txt" || true

known="$workdir/known.txt"
grep -v '^#' "$BASELINE" | sed '/^$/d' | LC_ALL=C sort -u > "$known"

new_findings="$(LC_ALL=C comm -13 "$known" "$workdir/current.txt")"
fixed_findings="$(LC_ALL=C comm -23 "$known" "$workdir/current.txt")"

if [[ -n "$fixed_findings" ]]; then
  echo "baseline entries no longer reported (shrink the baseline):"
  echo "$fixed_findings" | sed 's/^/  - /'
fi
if [[ -n "$new_findings" ]]; then
  echo "NEW scan-build findings (not in $BASELINE):"
  echo "$new_findings" | sed 's/^/  + /'
  exit 1
fi
if [[ "$scan_status" -ne 0 && ! -s "$workdir/current.txt" ]]; then
  # --status-bugs failed but we parsed no findings: the build itself
  # broke, which must not masquerade as an analyzer pass.
  echo "scan-build build failed; see its log:" >&2
  tail -40 "$workdir/build.log" >&2
  exit 1
fi
echo "scan-build wall: clean ($(wc -l < "$known" | tr -d ' ') baselined)"
