#!/usr/bin/env python3
"""Lock-hierarchy analyzer: proves the declared lock ranks are the
real ones and that nothing blocks while holding a lock.

Vegvisir's locking discipline (src/util/lock_ranks.h, DESIGN.md
section 15) is strict rank ascent: a thread may only acquire a mutex
whose rank is strictly greater than every rank it already holds,
which makes the lock graph cycle-free by construction. The runtime
enforcer (VEGVISIR_LOCK_DEBUG) checks the discipline on the paths a
test happens to execute; this tool checks every path statically.

What it builds: every lock acquisition site (util::MutexLock /
util::UniqueLock guards, explicit .lock()/.unlock() pairs, and
VEGVISIR_ACQUIRE-annotated helpers) across the scanned directories,
walked per function with a held-locks stack (brace-aware: guards die
at scope end, early-return blocks revert their effects) and
interprocedural summaries (a callee's acquisitions become the
caller's edges, iterated so ctor chains like
TieredStore::Open -> BlockLog -> FileIo -> MetricsRegistry::GetCounter
converge). Every held-lock -> acquired-lock pair is an edge.

What it checks:

  lock-cycle        a cycle in the acquisition graph (deadlock with
                    the right interleaving), including self-loops.
  lock-order        an edge that contradicts the declared ranks:
                    rank(held) >= rank(acquired).
  blocking-call     scheduler-class blocking under ANY lock:
                    ThreadPool::{Wait,Submit,ParallelFor},
                    BatchVerifier::{Lookup,Enqueue}, sleep, or any
                    helper whose summary reaches one of those.
  io-under-lock     file I/O (write/fsync syscalls, FileIo methods,
                    DurableWriteFile/FsyncDir) while holding a lock
                    whose rank is not may-block (LockRankMayBlock):
                    append+fsync under the storage-engine lock IS the
                    WAL discipline, anywhere else it is a stall.
  cv-wait           a ConditionVariable::wait outside the documented
                    idiom (the paired mutex must be the ONLY held
                    lock).
  unranked-mutex    a util::Mutex member without a LockRank brace
                    initializer (vegvisir_lint rule 8 catches these
                    too; this is the cross-check on the graph side).
  dead-rank         a rank declared in lock_ranks.h that no mutex
                    uses (the declared hierarchy must match the
                    observed one in both directions).

The front-end is the same tokens front-end as wire_taint.py /
det_taint.py (file list from compile_commands.json or --src-root).
src/util/thread_annotations.h and src/util/lock_ranks.* are the
modeled primitives themselves and are never scanned — which is what
lets the allow-file stay empty.

Suppressions live ONLY in tools/analyzer/lock_graph_allow.txt (one
reviewed file; entries must argue why an edge or blocking site is
safe). Inline annotations in src/ are rejected by
tools/lint/vegvisir_lint.py.

Usage:
  lock_graph.py [--compile-commands build/compile_commands.json]
                [--src-root src] [--allow tools/analyzer/lock_graph_allow.txt]
                [--frontend auto|clang|tokens] [--json FILE] [--selftest]

Exit 0 when clean; 1 with one `file:line: [sink] message` per finding.
"""

import argparse
import json
import pathlib
import re
import shutil
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
import wire_taint as wt  # noqa: E402  (tokens front-end + allow-file)

# Directories that own a mutex or run under one. serial/, crypto/,
# csm/, crdt/, sim/, support/ and baseline/ are single-threaded value
# code with no locking (grep-verified; widen the day one locks).
SCAN_DIRS = ("chain", "exec", "node", "recon", "storage", "telemetry",
             "util")

# The lock primitives themselves: these files DEFINE Mutex, the rank
# table and the debug hooks, so they are modeled, never scanned.
MODEL_FILES = {
    "src/util/thread_annotations.h",
    "src/util/lock_ranks.h",
    "src/util/lock_ranks.cpp",
}

RANKS_HEADER = "src/util/lock_ranks.h"

# Scheduler-class blocking entry points: may park the calling thread
# behind work that needs other threads (or this one) to progress.
# Banned under any held lock, may-block rank or not.
SCHED_METHODS = {
    ("ThreadPool", "Wait"), ("ThreadPool", "Submit"),
    ("ThreadPool", "ParallelFor"),
    ("BatchVerifier", "Lookup"), ("BatchVerifier", "Enqueue"),
}
# I/O-class blocking: bounded device stalls. Legal only when every
# held lock's rank is may-block (LockRankMayBlock).
IO_METHODS = {
    ("FileIo", "AppendRecord"), ("FileIo", "Sync"),
}
SLEEP_RE = re.compile(r"\b(sleep_for|sleep_until|usleep|nanosleep)\s*\(")
IO_FREE_RE = re.compile(r"\b(DurableWriteFile|FsyncDir)\s*\(")
SYSCALL_RE = re.compile(
    r"::\s*(open|openat|pread|pwrite|write|read|fsync|fdatasync|"
    r"ftruncate|msync|mmap|rename|unlink|fstat)\s*\(")

GUARD_RE = re.compile(
    r"(?:\bconst\s+)?(?:\b(?:util|std)\s*::\s*)?"
    r"\b(MutexLock|UniqueLock|scoped_lock|lock_guard|unique_lock)\s*"
    r"(?:<[^<>]*>)?\s+(\w+)\s*([({])")
LOCK_CALL_RE = re.compile(
    r"([\w.\->\[\]]*\w)\s*(?:\.|->)\s*(lock|unlock)\s*\(\s*\)")
CV_WAIT_RE = re.compile(
    r"([\w.\->]+)\s*(?:\.|->)\s*wait\s*\(\s*([^()]*?)\s*\)")
METHOD_CALL_RE = re.compile(
    r"([\w\]][\w.\->\[\]]*)\s*(?:\.|->)\s*(\w+)\s*\(")
QUALIFIED_CALL_RE = re.compile(r"\b(\w+)\s*::\s*(\w+)\s*\(")
BARE_CALL_RE = re.compile(r"(?<![\w.>:])(\w+)\s*\(")
MAKE_UNIQUE_RE = re.compile(
    r"\b(?:make_unique|make_shared)\s*<\s*((?:\w+\s*::\s*)*\w+)")
NEW_RE = re.compile(r"\bnew\s+((?:\w+\s*::\s*)*\w+)")

MUTEX_DECL_RE = re.compile(
    r"(?:\bmutable\s+)?\butil\s*::\s*Mutex\s+(\w+)\s*"
    r"(?:\{\s*(?:\w+\s*::\s*)*(k\w+)\s*\})?\s*;")
CV_DECL_RE = re.compile(r"\butil\s*::\s*ConditionVariable\s+(\w+)\s*;")
ANNOT_RE = re.compile(r"VEGVISIR_(REQUIRES|ACQUIRE|RELEASE)\s*\(")

CLASS_RE = re.compile(
    r"\b(class|struct)\s+(\w+)\s*(?:final\s*)?(?::[^{;()]*)?\{")

PTR_DECL_RE = re.compile(
    r"\b(?:std\s*::\s*)?(?:unique_ptr|shared_ptr)\s*<\s*"
    r"((?:\w+\s*::\s*)*\w+)\s*>\s+(\w+)\s*"
    r"(?:VEGVISIR_\w+\s*\([^()]*\)\s*)?[;={(]")
RAW_DECL_RE = re.compile(
    r"\b((?:\w+\s*::\s*)*[A-Z]\w*)\s*(?:const\s+)?[*&]\s*(\w+)\s*"
    r"(?:VEGVISIR_\w+\s*\([^()]*\)\s*)?[;=,)({]")
VAL_DECL_RE = re.compile(
    r"\b((?:\w+\s*::\s*)*[A-Z]\w*)\s+(\w+)\s*"
    r"(?:VEGVISIR_\w+\s*\([^()]*\)\s*)?[;={]")

LAMBDA_HEADER_RE = re.compile(
    r"\[[^\[\]]*\]\s*(?:\([^()]*\)\s*)?(?:mutable\s*)?"
    r"(?:noexcept\s*)?(?:->\s*[\w:<>&*\s]+?\s*)?$")
LAMBDA_INTRO_RE = re.compile(
    r"\[[^\[\]]*\]\s*(?:\([^()]*\)\s*)?(?:mutable\s*)?"
    r"(?:noexcept\s*)?(?:->\s*[\w:<>&*\s]+?\s*)?\{")
TERMINATOR_RE = re.compile(
    r"(?:\breturn\b[^;{}]*|\bbreak\b|\bcontinue\b|\babort\s*\(\s*\)|"
    r"\bexit\s*\([^()]*\))\s*;?\s*$")

NOT_METHODS = {"lock", "unlock", "try_lock", "wait", "notify_one",
               "notify_all"}

SLEEP_SINK = "blocking-call"


def strip_type(type_text):
    """`exec::BatchVerifier` -> `BatchVerifier`."""
    return re.sub(r"\s+", "", type_text).split("::")[-1]


def load_ranks(root):
    """Parses the LockRank enum and LockRankMayBlock out of
    src/util/lock_ranks.h — the single source of truth the graph is
    checked against."""
    text = wt.strip_code((root / RANKS_HEADER).read_text())
    m = re.search(r"enum\s+class\s+LockRank[^{]*\{([^}]*)\}", text)
    if not m:
        sys.exit(f"{RANKS_HEADER}: LockRank enum not found")
    ranks = {}
    for name, val in re.findall(r"\b(k\w+)\s*=\s*(\d+)", m.group(1)):
        ranks[name] = int(val)
    mb = re.search(r"LockRankMayBlock\s*\([^()]*\)\s*\{([^}]*)\}", text)
    may_block = set(re.findall(r"\b(k\w+)\b", mb.group(1))) if mb else set()
    return ranks, may_block & set(ranks)


class FnInfo:
    def __init__(self, path, name, cls, params, body, line):
        self.path = path
        self.name = name
        self.cls = cls                 # enclosing/qualifying class or ""
        self.qual = f"{cls}::{name}" if cls else name
        self.params = params
        self.body = body
        self.line = line
        self.local_types = {}          # var -> stripped type
        self.required = []             # mutex ids from VEGVISIR_REQUIRES


class FnSummary:
    def __init__(self):
        self.acquires = {}             # mutex id -> line
        self.blocking = None           # None | 'io' | 'sched'

    def bump_blocking(self, level):
        order = {None: 0, "io": 1, "sched": 2}
        if order[level] > order[self.blocking]:
            self.blocking = level


class Program:
    """One whole analysis: files in, findings + edge graph out."""

    def __init__(self, ranks, may_block, check_dead_ranks=False):
        self.ranks = ranks
        self.may_block_ranks = may_block
        self.check_dead_ranks = check_dead_ranks
        self.texts = {}                # rel -> stripped text
        self.mutexes = {}              # id -> (rank_name, rel, line)
        self.mutex_members = {}        # cls -> {name: id}
        self.file_mutexes = {}         # rel -> {name: id}
        self.cv_names = set()
        self.file_types = {}           # rel -> {name: type}
        self.global_types = {}         # name -> set(types)
        self.annotations = {}          # (cls, name) -> {kind: [raw args]}
        self.functions = []
        self.findings = []
        self.edges = {}                # (src, dst) -> (rel, line, fn)
        self.summaries = {}

    # -- construction ---------------------------------------------------
    def add_file(self, rel, text):
        self.texts[rel] = wt.strip_code(text)

    def class_spans(self, stripped):
        spans = []
        for m in CLASS_RE.finditer(stripped):
            if re.search(r"\benum\s+$", stripped[:m.start()]):
                continue
            end = wt.match_brace(stripped, m.end() - 1)
            spans.append((m.group(2), m.start(), end))
        return spans

    @staticmethod
    def innermost(spans, pos):
        best, size = "", None
        for name, s, e in spans:
            if s <= pos < e and (size is None or e - s < size):
                best, size = name, e - s
        return best

    def build(self):
        per_file_spans = {}
        # Pass A: declarations (mutexes, cvs, member/var types).
        for rel, stripped in self.texts.items():
            spans = self.class_spans(stripped)
            per_file_spans[rel] = spans
            self.file_mutexes.setdefault(rel, {})
            self.file_types.setdefault(rel, {})
            for m in MUTEX_DECL_RE.finditer(stripped):
                name, rank = m.group(1), m.group(2) or "kUnranked"
                cls = self.innermost(spans, m.start())
                mid = f"{cls}::{name}" if cls else f"{rel}::{name}"
                line = stripped.count("\n", 0, m.start()) + 1
                self.mutexes[mid] = (rank, rel, line)
                if cls:
                    self.mutex_members.setdefault(cls, {})[name] = mid
                else:
                    self.file_mutexes[rel][name] = mid
            for m in CV_DECL_RE.finditer(stripped):
                self.cv_names.add(m.group(1))
            for pat in (PTR_DECL_RE, RAW_DECL_RE, VAL_DECL_RE):
                for m in pat.finditer(stripped):
                    typ, name = strip_type(m.group(1)), m.group(2)
                    self.file_types[rel].setdefault(name, typ)
                    self.global_types.setdefault(name, set()).add(typ)
        # Pass B: thread-safety annotations (REQUIRES on declarations
        # in headers covers out-of-line definitions in the .cpp).
        for rel, stripped in self.texts.items():
            spans = per_file_spans[rel]
            for m in ANNOT_RE.finditer(stripped):
                kind = m.group(1)
                args = wt.split_args(stripped, m.end() - 1)
                owner = self.annotated_function(stripped, m.start())
                if owner is None:
                    continue
                cls = self.innermost(spans, m.start())
                self.annotations.setdefault((cls, owner), {}).setdefault(
                    kind, []).extend(a for a in args if a)
        # Pass C: function extraction with class attribution.
        for rel, stripped in self.texts.items():
            spans = per_file_spans[rel]
            offsets = [0]
            for i, ch in enumerate(stripped):
                if ch == "\n":
                    offsets.append(i + 1)
            for fn in wt.extract_functions(rel, stripped):
                pos = offsets[min(fn.line - 1, len(offsets) - 1)]
                cls = self.innermost(spans, pos)
                head = fn.header[:fn.header.find("(")].rstrip() \
                    if "(" in fn.header else fn.header
                qm = re.search(r"(\w+)\s*::\s*[~\w]+$", head)
                if qm:
                    cls = qm.group(1)
                info = FnInfo(rel, fn.name, cls, fn.params,
                              self.ctor_init(fn.header) + fn.body,
                              fn.line)
                info.local_types = self.collect_local_types(info)
                self.functions.append(info)
        # Resolve REQUIRES seeds now that every decl is known.
        for info in self.functions:
            anns = self.annotations.get((info.cls, info.name), {})
            for raw in anns.get("REQUIRES", []):
                info.required.append(self.resolve_mutex(raw, info))

    @staticmethod
    def ctor_init(header):
        """Recovers a constructor's member-init list so calls inside
        member initializers (metrics registration is the common case)
        are walked. extract_functions keys on the LAST close-paren of
        the header, which is the end of the init list itself when
        initializers are paren-style — so do it properly here: match
        the parameter list's parens and take what follows the `:`."""
        open_paren = header.find("(")
        if open_paren < 0:
            return ""
        close = wt.match_paren(header, open_paren)  # just past ')'
        tail = header[close:].lstrip()
        if tail.startswith(":") and not tail.startswith("::"):
            return tail[1:] + "; "
        return ""

    @staticmethod
    def annotated_function(stripped, annot_pos):
        """Name of the function whose declaration carries the
        annotation at annot_pos (scans back over the param list)."""
        i = annot_pos - 1
        while i >= 0:
            seg = stripped[:i + 1].rstrip()
            i = len(seg) - 1
            if seg.endswith(("const", "noexcept", "override")):
                i = seg.rfind(
                    next(w for w in ("const", "noexcept", "override")
                         if seg.endswith(w)))
                i -= 1
                continue
            break
        if i < 0 or stripped[i] != ")":
            return None
        depth = 0
        while i >= 0:
            if stripped[i] == ")":
                depth += 1
            elif stripped[i] == "(":
                depth -= 1
                if depth == 0:
                    break
            i -= 1
        m = re.search(r"([\w~]+)\s*$", stripped[:i])
        return m.group(1) if m else None

    def collect_local_types(self, fn):
        out = {}
        for part in self.split_params(fn.params):
            part = part.split("=")[0].strip()
            m = re.search(r"(\w+)\s*$", part)
            if not m:
                continue
            name, typ = m.group(1), part[:m.start()]
            pm = re.search(r"(?:unique_ptr|shared_ptr)\s*<\s*"
                           r"((?:\w+\s*::\s*)*\w+)", typ)
            if pm:
                out[name] = strip_type(pm.group(1))
                continue
            tm = re.findall(r"(?:\w+\s*::\s*)*[A-Z]\w*", typ)
            if tm:
                out[name] = strip_type(tm[-1])
        body = fn.body
        for pat in (PTR_DECL_RE, RAW_DECL_RE, VAL_DECL_RE):
            for m in pat.finditer(body):
                out.setdefault(m.group(2), strip_type(m.group(1)))
        # Locals declared with a ctor-call terminator, which the
        # class-scope regexes deliberately exclude (function decls).
        for m in re.finditer(
                r"\b(?:std\s*::\s*)?(?:unique_ptr|shared_ptr)\s*<\s*"
                r"((?:\w+\s*::\s*)*\w+)\s*>\s+(\w+)\s*\(", body):
            out.setdefault(m.group(2), strip_type(m.group(1)))
        return out

    @staticmethod
    def split_params(params_text):
        parts, current, depth = [], [], 0
        for ch in params_text:
            if ch in "<(":
                depth += 1
            elif ch in ">)":
                depth -= 1
            if ch == "," and depth == 0:
                parts.append("".join(current))
                current = []
            else:
                current.append(ch)
        if current:
            parts.append("".join(current))
        return parts

    # -- resolution -----------------------------------------------------
    @staticmethod
    def paired(rel):
        if rel.endswith(".cpp"):
            return rel[:-4] + ".h"
        if rel.endswith(".h"):
            return rel[:-2] + ".cpp"
        return None

    def resolve_type(self, var, fn):
        if var == "this":
            return fn.cls or None
        hit = fn.local_types.get(var)
        if hit:
            return hit
        hit = self.file_types.get(fn.path, {}).get(var)
        if hit:
            return hit
        pair = self.paired(fn.path)
        if pair and pair in self.file_types:
            hit = self.file_types[pair].get(var)
            if hit:
                return hit
        types = self.global_types.get(var, set())
        return next(iter(types)) if len(types) == 1 else None

    def resolve_mutex(self, expr, fn):
        e = wt.norm(expr).lstrip("&* ")
        parts = [p for p in e.split(".") if p]
        if parts and parts[0] == "this":
            parts = parts[1:]
        if not parts:
            return "~?"
        name = parts[-1]
        if len(parts) == 1:
            if fn.cls and name in self.mutex_members.get(fn.cls, {}):
                return self.mutex_members[fn.cls][name]
            for rel in (fn.path, self.paired(fn.path)):
                if rel and name in self.file_mutexes.get(rel, {}):
                    return self.file_mutexes[rel][name]
            return f"~{name}"
        owner_type = self.resolve_type(parts[-2], fn)
        if owner_type and name in self.mutex_members.get(owner_type, {}):
            return self.mutex_members[owner_type][name]
        return f"~{name}"

    def rank_value(self, mid):
        decl = self.mutexes.get(mid)
        if decl is None:
            return None
        return self.ranks.get(decl[0])

    def id_may_block(self, mid):
        decl = self.mutexes.get(mid)
        return decl is not None and decl[0] in self.may_block_ranks

    # -- analysis -------------------------------------------------------
    def analyze(self):
        for _ in range(4):
            next_summaries = {}
            for fn in self.functions:
                walk = FnWalk(self, fn, record=False)
                walk.run()
                s = FnSummary()
                s.acquires = walk.acquired
                s.bump_blocking(walk.blocking)
                if s.acquires or s.blocking:
                    prev = next_summaries.get(fn.qual)
                    if prev:  # overloads: union conservatively
                        prev.acquires.update(s.acquires)
                        prev.bump_blocking(s.blocking)
                    else:
                        next_summaries[fn.qual] = s
            self.summaries = next_summaries

        seen = set()
        for fn in self.functions:
            walk = FnWalk(self, fn, record=True)
            walk.run()
            for f in walk.findings:
                if f.key() not in seen:
                    seen.add(f.key())
                    self.findings.append(f)

        self.check_graph()
        self.check_decls()
        return self.findings

    def check_graph(self):
        adjacency = {}
        for (src, dst), site in self.edges.items():
            adjacency.setdefault(src, set()).add(dst)
            rs, rd = self.rank_value(src), self.rank_value(dst)
            if rs and rd and rs >= rd:
                rel, line, fn = site
                self.findings.append(wt.Finding(
                    rel, line, fn, "lock-order", dst, src,
                    f"acquires '{dst}' (rank {rd}) while holding "
                    f"'{src}' (rank {rs}); ranks must strictly ascend "
                    f"(src/util/lock_ranks.h)"))
        for cycle in self.find_cycles(adjacency):
            members = set(cycle)
            site = next((s for (src, dst), s in sorted(self.edges.items())
                         if src in members and dst in members), None)
            rel, line, fn = site if site else ("?", 0, "?")
            path = " -> ".join(cycle + [cycle[0]])
            self.findings.append(wt.Finding(
                rel, line, fn, "lock-cycle", cycle[0], path,
                f"lock acquisition cycle: {path}"))

    @staticmethod
    def find_cycles(adjacency):
        """Tarjan SCCs; every SCC of size > 1 (or a self-loop) is a
        potential deadlock. Returns one representative node list per
        cycle, deterministically ordered."""
        index, low, on_stack = {}, {}, set()
        stack, sccs, counter = [], [], [0]

        def strongconnect(v):
            work = [(v, iter(sorted(adjacency.get(v, ()))))]
            index[v] = low[v] = counter[0]
            counter[0] += 1
            stack.append(v)
            on_stack.add(v)
            while work:
                node, it = work[-1]
                advanced = False
                for w in it:
                    if w not in index:
                        index[w] = low[w] = counter[0]
                        counter[0] += 1
                        stack.append(w)
                        on_stack.add(w)
                        work.append((w, iter(sorted(adjacency.get(w, ())))))
                        advanced = True
                        break
                    if w in on_stack:
                        low[node] = min(low[node], index[w])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    scc = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        scc.append(w)
                        if w == node:
                            break
                    sccs.append(sorted(scc))

        for v in sorted(adjacency):
            if v not in index:
                strongconnect(v)
        cycles = []
        for scc in sccs:
            if len(scc) > 1:
                cycles.append(scc)
            elif scc[0] in adjacency.get(scc[0], ()):
                cycles.append(scc)
        return cycles

    def check_decls(self):
        used_ranks = set()
        for mid, (rank, rel, line) in sorted(self.mutexes.items()):
            used_ranks.add(rank)
            if self.ranks.get(rank, 0) == 0:
                self.findings.append(wt.Finding(
                    rel, line, "-", "unranked-mutex", mid, "decl",
                    f"util::Mutex '{mid}' has no LockRank; every mutex "
                    f"must declare its place in the hierarchy "
                    f"(src/util/lock_ranks.h)"))
        if self.check_dead_ranks:
            for rank, value in sorted(self.ranks.items()):
                if value > 0 and rank not in used_ranks:
                    self.findings.append(wt.Finding(
                        RANKS_HEADER, 1, "-", "dead-rank", rank, "decl",
                        f"LockRank::{rank} is declared but no mutex "
                        f"uses it; the declared hierarchy must match "
                        f"the observed one"))


class FnWalk:
    """Walks one function body with a held-locks stack."""

    def __init__(self, prog, fn, record):
        self.prog = prog
        self.fn = fn
        self.record = record
        self.findings = []
        self.acquired = {}     # summary: mutex id -> line
        self.blocking = None   # summary: None | 'io' | 'sched'

    def run(self):
        held = [{"id": mid, "seed": True} for mid in self.fn.required]
        self.walk_block(self.fn.body, self.fn.line, held, {},
                        deferred=False)

    # -- event plumbing --------------------------------------------------
    def finding(self, line, sink, var, source, message):
        self.findings.append(wt.Finding(
            self.fn.path, line, self.fn.qual, sink, var, source, message))

    def bump_blocking(self, level, deferred):
        if deferred:
            return
        order = {None: 0, "io": 1, "sched": 2}
        if order[level] > order[self.blocking]:
            self.blocking = level

    def add_edge(self, src, dst, line):
        self.prog.edges.setdefault(
            (src, dst), (self.fn.path, line, self.fn.qual))

    def acquire(self, mid, line, held, deferred):
        for h in held:
            self.add_edge(h["id"], mid, line)
        entry = {"id": mid, "seed": False}
        held.append(entry)
        if not deferred and mid not in self.fn.required:
            self.acquired.setdefault(mid, line)
        return entry

    def release(self, mid, held):
        for h in reversed(held):
            if h["id"] == mid:
                held.remove(h)
                return

    def sched_block(self, what, line, held, deferred):
        self.bump_blocking("sched", deferred)
        if held:
            self.finding(
                line, "blocking-call", held[-1]["id"], what,
                f"scheduler-class blocking call {what} while holding "
                f"{', '.join(h['id'] for h in held)}; these calls may "
                f"park the thread and must run lock-free")

    def io_block(self, what, line, held, deferred):
        self.bump_blocking("io", deferred)
        bad = [h["id"] for h in held
               if not self.prog.id_may_block(h["id"])]
        if bad:
            self.finding(
                line, "io-under-lock", bad[0], what,
                f"file I/O via {what} while holding {', '.join(bad)}, "
                f"whose rank is not may-block (LockRankMayBlock in "
                f"src/util/lock_ranks.h)")

    def apply_summary(self, summary, callee, line, held, deferred):
        if summary.blocking == "sched":
            self.sched_block(callee, line, held, deferred)
        elif summary.blocking == "io":
            self.io_block(callee, line, held, deferred)
        for mid in summary.acquires:
            for h in held:
                self.add_edge(h["id"], mid, line)
            if not deferred and mid not in self.fn.required:
                self.acquired.setdefault(mid, line)

    # -- structure -------------------------------------------------------
    def walk_block(self, text, line0, held, guards, deferred):
        """Returns True when the block ends in return/break/continue
        (the caller reverts held-state changes for such blocks)."""
        my_guards = []
        i, stmt_start, n = 0, 0, len(text)
        while i < n:
            c = text[i]
            if c == "(":
                i = wt.match_paren(text, i)
            elif c == ";":
                self.process_statement(
                    text[stmt_start:i],
                    line0 + text.count("\n", 0, stmt_start),
                    held, guards, my_guards, deferred)
                stmt_start = i + 1
                i += 1
            elif c == "{":
                header = text[stmt_start:i]
                hline = line0 + text.count("\n", 0, stmt_start)
                self.process_statement(header, hline, held, guards,
                                       my_guards, deferred)
                end = wt.match_brace(text, i)
                inner = text[i + 1:end - 1]
                iline = line0 + text.count("\n", 0, i)
                if LAMBDA_HEADER_RE.search(header.rstrip()):
                    # Deferred execution: runs later, on some thread
                    # that holds nothing.
                    self.walk_block(inner, iline, [], {}, deferred=True)
                else:
                    saved = list(held)
                    child_guards = dict(guards)
                    terminated = self.walk_block(inner, iline, held,
                                                 child_guards, deferred)
                    if terminated:
                        held[:] = saved
                stmt_start = end
                i = end
            else:
                i += 1
        self.process_statement(
            text[stmt_start:],
            line0 + text.count("\n", 0, stmt_start),
            held, guards, my_guards, deferred)
        for entry in my_guards:
            if entry in held:
                held.remove(entry)
        return bool(TERMINATOR_RE.search(text.strip()))

    def excise_lambdas(self, stmt, line):
        """Walks lambda bodies embedded in a statement (Submit(
        [..]{...})) as deferred code and blanks them so the enclosing
        statement's scan does not see their internals."""
        while True:
            m = LAMBDA_INTRO_RE.search(stmt)
            if m is None:
                return stmt
            brace = m.end() - 1
            end = wt.match_brace(stmt, brace)
            inner = stmt[brace + 1:end - 1]
            self.walk_block(inner, line + stmt.count("\n", 0, brace),
                            [], {}, deferred=True)
            stmt = stmt[:m.start()] + " " * (end - m.start()) + stmt[end:]

    # -- one statement ---------------------------------------------------
    def process_statement(self, stmt, line, held, guards, my_guards,
                          deferred):
        if not stmt.strip():
            return
        stmt = self.excise_lambdas(stmt, line)
        prog, fn = self.prog, self.fn
        events = []

        for m in GUARD_RE.finditer(stmt):
            opener = m.end() - 1
            if m.group(3) == "(":
                args = wt.split_args(stmt, opener)
            else:
                close = wt.match_brace(stmt, opener)
                args = [stmt[opener + 1:close - 1].strip()]
            if args and args[0]:
                events.append((m.start(), "guard", (m.group(2), args[0])))
        for m in LOCK_CALL_RE.finditer(stmt):
            events.append((m.start(), m.group(2), m.group(1)))
        for m in CV_WAIT_RE.finditer(stmt):
            recv = wt.norm(m.group(1)).split(".")[-1]
            if recv in prog.cv_names:
                events.append((m.start(), "cv", (m.group(1), m.group(2))))
        for m in SLEEP_RE.finditer(stmt):
            events.append((m.start(), "sched", m.group(1)))
        for m in IO_FREE_RE.finditer(stmt):
            events.append((m.start(), "io", m.group(1)))
        for m in SYSCALL_RE.finditer(stmt):
            events.append((m.start(), "io", f"::{m.group(1)}"))
        for m in METHOD_CALL_RE.finditer(stmt):
            method = m.group(2)
            if method in NOT_METHODS:
                continue
            owner = wt.norm(m.group(1)).split(".")[-1]
            recv_type = prog.resolve_type(re.sub(r"\[.*?\]", "", owner),
                                          fn)
            if recv_type:
                events.append((m.start(), "call", (recv_type, method)))
        for m in QUALIFIED_CALL_RE.finditer(stmt):
            events.append((m.start(), "call", (m.group(1), m.group(2))))
        for m in BARE_CALL_RE.finditer(stmt):
            name = m.group(1)
            if name in wt.CONTROL_KEYWORDS:
                continue
            events.append((m.start(), "bare", name))
        for pat in (MAKE_UNIQUE_RE, NEW_RE):
            for m in pat.finditer(stmt):
                t = strip_type(m.group(1))
                events.append((m.start(), "call", (t, t)))

        for _pos, kind, payload in sorted(events, key=lambda e: e[0]):
            if kind == "guard":
                var, mexpr = payload
                mid = prog.resolve_mutex(mexpr, fn)
                entry = self.acquire(mid, line, held, deferred)
                guards[var] = mid
                my_guards.append(entry)
            elif kind == "lock":
                recv = payload
                mid = guards.get(recv) or prog.resolve_mutex(recv, fn)
                self.acquire(mid, line, held, deferred)
            elif kind == "unlock":
                recv = payload
                mid = guards.get(recv) or prog.resolve_mutex(recv, fn)
                self.release(mid, held)
            elif kind == "cv":
                recv, arg = payload
                self.bump_blocking("sched", deferred)
                mid = prog.resolve_mutex(arg, fn) if arg else "~?"
                held_ids = [h["id"] for h in held]
                if held_ids != [mid]:
                    self.finding(
                        line, "cv-wait", mid, wt.norm(recv),
                        f"ConditionVariable::wait on '{mid}' outside "
                        f"the idiom: the paired mutex must be the only "
                        f"held lock (held: "
                        f"{', '.join(held_ids) or 'nothing'})")
            elif kind == "sched":
                self.sched_block(payload, line, held, deferred)
            elif kind == "io":
                self.io_block(payload, line, held, deferred)
            elif kind == "call":
                cls, name = payload
                if (cls, name) in SCHED_METHODS:
                    self.sched_block(f"{cls}::{name}", line, held,
                                     deferred)
                elif (cls, name) in IO_METHODS:
                    self.io_block(f"{cls}::{name}", line, held, deferred)
                summary = prog.summaries.get(f"{cls}::{name}")
                if summary:
                    self.apply_summary(summary, f"{cls}::{name}", line,
                                       held, deferred)
            elif kind == "bare":
                name = payload
                if fn.cls and (fn.cls, name) in SCHED_METHODS:
                    self.sched_block(f"{fn.cls}::{name}", line, held,
                                     deferred)
                elif fn.cls and (fn.cls, name) in IO_METHODS:
                    self.io_block(f"{fn.cls}::{name}", line, held,
                                  deferred)
                anns = prog.annotations.get((fn.cls, name)) or \
                    prog.annotations.get(("", name)) or {}
                for raw in anns.get("ACQUIRE", []):
                    self.acquire(prog.resolve_mutex(raw, fn), line,
                                 held, deferred)
                for raw in anns.get("RELEASE", []):
                    self.release(prog.resolve_mutex(raw, fn), held)
                summary = None
                if fn.cls:
                    summary = prog.summaries.get(f"{fn.cls}::{name}")
                if summary is None:
                    summary = prog.summaries.get(name)
                if summary:
                    self.apply_summary(summary, name, line, held,
                                       deferred)


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def in_scope(rel):
    if str(rel) in MODEL_FILES:
        return False
    parts = rel.parts
    return len(parts) >= 2 and parts[0] == "src" and parts[1] in SCAN_DIRS


def collect_files(args, root):
    saved = wt.in_scope
    wt.in_scope = in_scope
    try:
        return wt.collect_files(args, root)
    finally:
        wt.in_scope = saved


def analyze_tree(files, root, tcb):
    ranks, may_block = load_ranks(root)
    prog = Program(ranks, may_block, check_dead_ranks=True)
    for rel in files:
        if str(rel) in tcb:
            continue
        prog.add_file(str(rel), (root / rel).read_text())
    prog.build()
    findings = prog.analyze()
    return findings, prog


# ---------------------------------------------------------------------------
# Fixture self-test
# ---------------------------------------------------------------------------

def run_selftest(fixtures_dir, root):
    ranks, may_block = load_ranks(root)
    failures = []
    checked = 0
    for kind in ("good", "bad"):
        for path in sorted((fixtures_dir / kind).glob("*.cpp")):
            text = path.read_text()
            expect = re.search(r"//\s*lock-expect:\s*(.+)", text)
            if not expect:
                failures.append(f"{path}: missing `// lock-expect:` header")
                continue
            spec = expect.group(1).strip()
            rel = str(path.relative_to(root))
            prog = Program(ranks, may_block)
            prog.add_file(rel, text)
            prog.build()
            findings = prog.analyze()
            checked += 1
            if spec == "clean":
                if kind != "good":
                    failures.append(f"{rel}: `clean` belongs in good/")
                for finding in findings:
                    failures.append(f"{rel}: expected clean, got: {finding}")
                continue
            if kind != "bad":
                failures.append(f"{rel}: expectation {spec} belongs in bad/")
            for clause in spec.split(";"):
                want = dict(kv.split("=") for kv in clause.strip().split())
                hit = any(
                    (("source" not in want or
                      want["source"] in finding.source) and
                     ("sink" not in want or want["sink"] == finding.sink))
                    for finding in findings)
                if not hit:
                    got = ", ".join(f"{f.source}->{f.sink}"
                                    for f in findings) or "no findings"
                    failures.append(
                        f"{rel}: expected {clause.strip()}, got: {got}")
    for failure in failures:
        print(failure)
    if failures:
        print(f"selftest: {len(failures)} failure(s) over {checked} "
              f"fixtures", file=sys.stderr)
        return 1
    print(f"lock_graph selftest: {checked} fixtures behaved")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--compile-commands", default=None)
    parser.add_argument("--src-root", default=None)
    parser.add_argument("--allow", default=None)
    parser.add_argument("--frontend", default="auto",
                        choices=("auto", "clang", "tokens"))
    parser.add_argument("--json", default=None,
                        help="write findings + edges as JSON to FILE")
    parser.add_argument("--selftest", action="store_true",
                        help="run the fixture suite instead of src/")
    args = parser.parse_args()

    tool_dir = pathlib.Path(__file__).resolve().parent
    root = tool_dir.parent.parent

    if args.selftest:
        return run_selftest(tool_dir / "fixtures" / "lock", root)

    allow_path = args.allow or tool_dir / "lock_graph_allow.txt"
    tcb, allows = wt.load_allow(allow_path)

    files = collect_files(args, root)
    if not files:
        sys.exit("no files to analyze (check --compile-commands/--src-root)")

    findings, prog = analyze_tree(files, root, tcb)
    visible = [f for f in findings if not wt.allowed(f, allows)]
    suppressed = len(findings) - len(visible)

    if args.json:
        pathlib.Path(args.json).write_text(json.dumps({
            "findings": [vars(f) for f in findings],
            "edges": [{"held": src, "acquired": dst, "file": site[0],
                       "line": site[1], "function": site[2]}
                      for (src, dst), site in sorted(prog.edges.items())],
        }, indent=2) + "\n")

    for finding in sorted(visible, key=lambda f: (f.path, f.line)):
        print(finding)
    if visible:
        print(f"{len(visible)} finding(s) ({suppressed} suppressed by "
              f"{allow_path})", file=sys.stderr)
        return 1
    print(f"lock_graph: {len(files)} files, {len(prog.edges)} lock-order "
          f"edges, clean ({suppressed} suppressed, {len(tcb)} TCB files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
