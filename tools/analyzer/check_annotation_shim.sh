#!/usr/bin/env bash
# Compile-probes the thread-safety annotation shim on both compilers.
#
# The shim (src/util/thread_annotations.h) must be exactly two things
# at once:
#   - on g++: pure no-ops — every macro vanishes, both probes compile;
#   - on clang++ -Werror=thread-safety: a real analysis — the good
#     probe (sanctioned idioms) compiles clean and the bad probe
#     (unguarded access, REQUIRES violation) is REJECTED.
#
# g++ is always checked (the dev container ships it). clang++ is
# checked when present; without it the clang half SKIPs and the CI
# thread-safety job enforces it. Keep the skip message grep-able.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/../.." && pwd)"
GOOD="$ROOT/tools/analyzer/fixtures/shim/good_probe.cpp"
BAD="$ROOT/tools/analyzer/fixtures/shim/bad_probe.cpp"

compile() {  # compile <compiler> <extra flags...> -- <file>
  local cxx="$1"; shift
  local flags=()
  while [[ "$1" != "--" ]]; do flags+=("$1"); shift; done
  shift
  "$cxx" -std=c++20 -fsyntax-only -I "$ROOT/src" "${flags[@]}" "$1"
}

fail=0

if command -v g++ >/dev/null 2>&1; then
  for probe in "$GOOD" "$BAD"; do
    if ! compile g++ -Wall -Werror -- "$probe"; then
      echo "FAIL: $(basename "$probe") must compile under g++ (the" \
           "shim must be a no-op there)" >&2
      fail=1
    fi
  done
  echo "g++: shim is a clean no-op (both probes accepted)"
else
  echo "SKIP: g++ not installed."
fi

if command -v clang++ >/dev/null 2>&1; then
  if ! compile clang++ -Wall -Werror=thread-safety -- "$GOOD"; then
    echo "FAIL: good_probe.cpp must pass clang -Werror=thread-safety" \
         "(a sanctioned idiom now trips the analysis)" >&2
    fail=1
  fi
  if compile clang++ -Werror=thread-safety -- "$BAD" 2>/dev/null; then
    echo "FAIL: bad_probe.cpp compiled under clang" \
         "-Werror=thread-safety — the analysis is not engaging" \
         "(is __has_attribute(capability) gating it off?)" >&2
    fail=1
  fi
  [[ "$fail" -eq 0 ]] && echo "clang++: analysis engages (good clean, bad rejected)"
else
  echo "SKIP: clang++ not installed; analysis half enforced where it exists (CI)."
fi

exit "$fail"
