#!/usr/bin/env python3
"""Determinism-taint dataflow analyzer: proves no nondeterministic
ordering reaches an order-sensitive sink.

Vegvisir's convergence guarantee is byte-level: two partitions that
reconcile must hold identical DAGs, digests and CSM fingerprints, and
tools/determinism_check verifies that *dynamically* for the seeds it
happens to run. This tool makes the complementary guarantee *static*:
no value whose ordering depends on hash-table layout, pointer values
or the wall clock may flow into a serializer, digest, exported
snapshot or file without being canonicalized first.

Taxonomy (DESIGN.md section 14):

  sources     iteration over std::unordered_map/unordered_set (bucket
              order is salt- and history-dependent), iteration over a
              pointer-keyed std::map/std::set (ordered by address),
              reinterpret_cast of a pointer to an integer, and
              wall-clock/rand reads outside src/sim.
  sinks       serializer Write* calls, hasher Update / Sha256::Hash,
              stream/printf emission, file writes, invoking a caller-
              supplied callback with a tainted argument, and returning
              an order-tainted sequence to the caller.
  sanitizers  std::sort/std::stable_sort over the tainted sequence,
              or inserting into an ordered std::set/std::map (sorted
              containers canonicalize on the way in; a subscript or
              insert is a keyed store, not an ordered emission).

The analysis is intraprocedural over each function body in statement
order (the same tokens front-end as wire_taint.py), with one-level
helper summaries: a helper whose parameter reaches an ordered sink
propagates the finding to callers passing it order-tainted arguments,
and a helper that sorts a parameter sanitizes the caller's argument.

Suppressions live ONLY in tools/analyzer/det_taint_allow.txt (one
reviewed file; every entry must argue order-insensitivity, e.g. a
commutative sum/count fold). Inline annotations in src/ are rejected
by tools/lint/vegvisir_lint.py.

Usage:
  det_taint.py [--compile-commands build/compile_commands.json]
               [--src-root src] [--allow tools/analyzer/det_taint_allow.txt]
               [--frontend auto|clang|tokens] [--json FILE] [--selftest]

Exit 0 when clean; 1 with one `file:line: [sink] message` per finding.
"""

import argparse
import json
import pathlib
import re
import shutil
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
import wire_taint as wt  # noqa: E402  (tokens front-end + allow-file)

# Every directory under src/ is in scope: ordering leaks are not
# confined to the wire layer (telemetry export and sim report files
# are sinks too).
SCAN_DIRS = ("baseline", "chain", "crdt", "crypto", "csm", "exec", "node",
             "recon", "serial", "setdiff", "sim", "storage", "support",
             "telemetry", "util")

UNORDERED_DECL = re.compile(
    r"\b(?:std\s*::\s*)?(unordered_(?:map|set|multimap|multiset))\s*<")
POINTER_KEYED_DECL = re.compile(
    r"\b(?:std\s*::\s*)?(map|set)\s*<\s*(?:const\s+)?[\w:]+\s*\*")
# Wall-clock / entropy reads. src/sim owns the *simulated* clock and
# the seeded Drbg, so these only fire outside it (vegvisir_lint rule 1
# bans the raw calls everywhere; this adds the flow to a sink).
NONDET_CALLS = re.compile(
    r"\b(?:std\s*::\s*)?(?:chrono\s*::\s*(?:system_clock|steady_clock|"
    r"high_resolution_clock)\s*::\s*now|time|gettimeofday|clock_gettime|"
    r"rand|random_device)\s*(?:\(|\{)")

# Callable parameter heuristics: a parameter whose type mentions
# std::function (or an obvious callback alias) is a caller-visible
# emission channel — invoking it with order-tainted data leaks bucket
# order across the API boundary.
CALLABLE_TYPE = re.compile(r"\bfunction\s*<|\bCallback\b|\bVisitor\b")

SORT_CALLS = r"sort|stable_sort"
SEQ_APPEND = r"push_back|emplace_back|push_front|append"


def match_angle(text, open_pos):
    """Index just past the template-argument list opening at open_pos."""
    depth = 0
    for i in range(open_pos, len(text)):
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def collect_unordered_vars(stripped):
    """Names declared with an unordered or pointer-keyed container
    type anywhere in the file (members and locals alike — the
    analysis is per function, so over-collecting is harmless)."""
    out = {}
    for m in UNORDERED_DECL.finditer(stripped):
        close = match_angle(stripped, m.end() - 1)
        nm = re.match(r"\s*(\w+)\s*[;={(]", stripped[close:])
        if nm:
            out[nm.group(1)] = f"unordered-iter({nm.group(1)})"
    for m in POINTER_KEYED_DECL.finditer(stripped):
        close = match_angle(stripped, m.start() + stripped[m.start():].index("<"))
        nm = re.match(r"\s*(\w+)\s*[;={(]", stripped[close:])
        if nm:
            out[nm.group(1)] = f"pointer-key-iter({nm.group(1)})"
    return out


def callable_params(params_text):
    """Names of parameters with a callable type."""
    names = set()
    depth = 0
    current = []
    parts = []
    for ch in params_text:
        if ch in "<(":
            depth += 1
        elif ch in ">)":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        parts.append("".join(current))
    for part in parts:
        part = part.split("=")[0].strip()
        m = re.search(r"([\w]+)\s*$", part)
        if m and CALLABLE_TYPE.search(part[:m.start()]):
            names.add(m.group(1))
    return names


def loop_vars(decl):
    """Loop variable names from a range-for declaration, handling
    structured bindings (`const auto& [k, v]`)."""
    binding = re.search(r"\[([^\]]*)\]", decl)
    if binding:
        return [v.strip() for v in binding.group(1).split(",") if v.strip()]
    m = re.search(r"([\w]+)\s*$", decl)
    return [m.group(1)] if m else []


class Summary:
    def __init__(self):
        self.sink_params = {}   # index -> sink kind
        self.sort_params = set()


class Analyzer:
    def __init__(self, summaries=None, wall_clock_sources=True):
        self.summaries = summaries or {}
        self.wall_clock_sources = wall_clock_sources

    # -- expression taint ------------------------------------------------
    def expr_taint(self, expr, taint):
        """Returns (var, source) of the first order taint reachable in
        `expr` outside a key position, else None."""
        flat = re.sub(r"\s+", " ", expr)
        for name, (source, _line) in taint.items():
            pat = re.escape(name).replace(r"\.", r"(?:\.|->)\s*")
            for m in re.finditer(r"\b" + pat + r"\b", flat):
                if wt.in_key_context(flat, m.start()):
                    continue  # key position: selects an entry, no flow
                return (name, source)
        return None

    def any_arg_taint(self, flat, open_paren, taint):
        for arg in wt.split_args(flat, open_paren):
            hit = self.expr_taint(arg, taint)
            if hit:
                return hit
        return None

    # -- one function ----------------------------------------------------
    def analyze(self, fn, unordered, seed_params=False):
        taint = {}      # name -> (source-desc, line)
        findings = []
        param_names = {}
        sorted_params = set()
        callables = callable_params(fn.params)

        if seed_params:
            for idx, (pname, _pint) in enumerate(wt.parse_params(fn.params)):
                if pname and pname not in callables:
                    param_names[pname] = idx
                    taint[pname] = (f"param #{idx}", fn.line)

        def add_finding(stmt, line, sink, var, source):
            findings.append(wt.Finding(
                fn.path, line, fn.name, sink, var, source,
                f"order-tainted '{var}' (from {source}) reaches {sink} "
                f"without canonicalization: `{wt.snip(stmt)}`"))

        for stmt, line in wt.split_statements(fn.body, fn.line):
            flat = re.sub(r"\s+", " ", stmt)

            # --- sanitizers first: sorting a sequence canonicalizes it
            # for every later statement (and, via summaries, for the
            # caller when the sequence is a parameter).
            for m in re.finditer(
                    r"\bstd\s*::\s*(?:" + SORT_CALLS +
                    r")\s*\(\s*([\w.\->\[\]]+?)\s*(?:\.|->)\s*c?begin\b",
                    flat):
                name = wt.norm(m.group(1))
                for key in [k for k in taint
                            if k == name or wt.base_of(k) == name]:
                    taint.pop(key, None)
                if name in param_names:
                    sorted_params.add(name)

            # helper summaries: calls that sort or sink their params
            for m in re.finditer(r"\b(\w+)\s*\(", flat):
                callee = m.group(1)
                summary = self.summaries.get(callee)
                if summary is None:
                    continue
                args = wt.split_args(flat, m.end() - 1)
                for idx in summary.sort_params:
                    if idx < len(args):
                        hit = self.expr_taint(args[idx], taint)
                        if hit:
                            var = hit[0]
                            for key in [k for k in taint
                                        if k == var or wt.base_of(k) == var]:
                                taint.pop(key, None)
                            if var in param_names:
                                sorted_params.add(var)
                for idx, sink in summary.sink_params.items():
                    if idx < len(args):
                        hit = self.expr_taint(args[idx], taint)
                        if hit:
                            add_finding(stmt, line, f"helper-sink:{callee}",
                                        hit[0], hit[1])

            # --- sinks
            for m in re.finditer(r"\b(Write[A-Z]\w*)\s*\(", flat):
                hit = self.any_arg_taint(flat, m.end() - 1, taint)
                if hit:
                    add_finding(stmt, line, "serialize", hit[0], hit[1])
            for m in re.finditer(
                    r"(?:(?:\.|->)\s*Update|\bSha256\s*::\s*Hash)\s*\(",
                    flat):
                hit = self.any_arg_taint(
                    flat, flat.index("(", m.start()), taint)
                if hit:
                    add_finding(stmt, line, "digest", hit[0], hit[1])
            if re.search(r"\b(?:os|out|oss|ss|stream|std\s*::\s*cout|"
                         r"std\s*::\s*cerr)\b[^;]*<<", flat):
                hit = self.expr_taint(flat.split("<<", 1)[1], taint)
                if hit:
                    add_finding(stmt, line, "emit", hit[0], hit[1])
            for m in re.finditer(
                    r"\b(?:printf|fprintf|snprintf|sprintf)\s*\(", flat):
                hit = self.any_arg_taint(flat, m.end() - 1, taint)
                if hit:
                    add_finding(stmt, line, "emit", hit[0], hit[1])
            for m in re.finditer(
                    r"\b(?:fwrite|fputs|DurableWriteFile|AppendToFile|"
                    r"WriteFile)\s*\(", flat):
                hit = self.any_arg_taint(flat, m.end() - 1, taint)
                if hit:
                    add_finding(stmt, line, "file-write", hit[0], hit[1])
            for name in callables:
                for m in re.finditer(r"\b" + re.escape(name) + r"\s*\(",
                                     flat):
                    hit = self.any_arg_taint(flat, m.end() - 1, taint)
                    if hit:
                        add_finding(stmt, line, "callback-emit",
                                    hit[0], hit[1])
            rm = re.match(r"return\b(.*)$", flat)
            if rm:
                hit = self.expr_taint(rm.group(1), taint)
                if hit is None:
                    # A returned aggregate leaks through any tainted
                    # member (`result.items` tainted, `return result`).
                    ret = re.match(r"\s*([\w]+)\s*$", rm.group(1))
                    if ret:
                        for key, (source, _l) in taint.items():
                            if wt.base_of(key) == ret.group(1):
                                hit = (key, source)
                                break
                if hit:
                    add_finding(stmt, line, "unordered-return",
                                hit[0], hit[1])

            # --- sources (taint introduced for subsequent statements)
            fresh = set()  # tainted by THIS statement's source scan
            # `\b...search`, not match: the statement splitter glues a
            # method's trailing `const` onto the loop header.
            fm = re.search(r"\bfor\s*\((.*)\)\s*$", flat)
            if fm and ";" not in fm.group(1):
                # Range-for. Split declaration from container at the
                # lone colon (`::` scope qualifiers have neighbours).
                parts = re.split(r"(?<!:):(?!:)", fm.group(1), maxsplit=1)
                if len(parts) == 2:
                    decl, container = parts
                    base = wt.base_of(wt.norm(container))
                    hit = self.expr_taint(container, taint)
                    for v in loop_vars(decl):
                        if base in unordered:
                            taint[v] = (unordered[base], line)
                        elif hit:
                            # Iterating a sequence filled in
                            # nondeterministic order yields its
                            # elements in that order.
                            taint[v] = (hit[1], line)
                        else:
                            # Rebinding over a clean container kills
                            # any taint a previous loop left on the
                            # same variable name.
                            taint.pop(v, None)
            for m in re.finditer(
                    r"(\w+)\s*=\s*([\w.\->]+)\s*(?:\.|->)\s*c?begin\s*\(",
                    flat):
                if wt.base_of(m.group(2)) in unordered:
                    taint[m.group(1)] = (
                        unordered[wt.base_of(m.group(2))], line)
                    fresh.add(m.group(1))
            for m in re.finditer(
                    r"([\w.\->\[\]]+)\s*=[^=].*?reinterpret_cast\s*<\s*"
                    r"(?:std\s*::\s*)?u?intptr_t\s*>", flat):
                taint[wt.norm(m.group(1))] = ("pointer-value", line)
                fresh.add(wt.norm(m.group(1)))
            if self.wall_clock_sources and NONDET_CALLS.search(flat):
                am = re.match(
                    r"(?:[\w:<>,\s&*]+?\s)?([\w.\->\[\]]+)\s*=[^=]", flat)
                if am:
                    taint[wt.norm(am.group(1))] = ("wall-clock", line)
                    fresh.add(wt.norm(am.group(1)))

            # --- propagation
            for m in re.finditer(
                    r"([\w.\->\[\]]+)\s*(?:\.|->)\s*(?:" + SEQ_APPEND +
                    r")\s*\(", flat):
                hit = self.any_arg_taint(flat, flat.index("(", m.end() - 2),
                                         taint)
                if hit:
                    target = wt.norm(m.group(1))
                    if "[" not in target:
                        taint.setdefault(target, (hit[1], line))
            am = re.match(
                r"(?:[\w:<>,\s&*]+?\s)?([\w.\->\[\]]+)\s*([+\-|&^]?)="
                r"([^=].*)$", flat)
            if am and "==" not in flat[:am.end(2) + 2]:
                lhs = wt.norm(am.group(1))
                # Subscript writes are keyed stores (order-insensitive
                # into a map), so they neither taint nor clean.
                if "[" not in lhs:
                    hit = self.expr_taint(am.group(3), taint)
                    if hit:
                        taint[lhs] = (hit[1], line)
                    elif am.group(2) == "" and lhs not in fresh:
                        # Plain `=` from a clean RHS is a strong
                        # update; compound assignment keeps whatever
                        # taint the accumulator already carries.
                        taint.pop(lhs, None)

        return findings, param_names, sorted_params


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def in_scope(rel):
    parts = rel.parts
    return len(parts) >= 2 and parts[0] == "src" and parts[1] in SCAN_DIRS


def collect_files(args, root):
    """wire_taint.collect_files with this tool's broader scope."""
    saved = wt.in_scope
    wt.in_scope = in_scope
    try:
        return wt.collect_files(args, root)
    finally:
        wt.in_scope = saved


def build_summaries(functions, unordered_by_path, wall_clock_by_path):
    summaries = {}
    for _ in range(2):
        next_summaries = {}
        analyzer = Analyzer(summaries)
        for fn in functions:
            analyzer.wall_clock_sources = wall_clock_by_path.get(
                fn.path, True)
            findings, param_names, sorted_params = analyzer.analyze(
                fn, unordered_by_path.get(fn.path, {}), seed_params=True)
            summary = Summary()
            for finding in findings:
                if finding.source.startswith("param #"):
                    idx = int(finding.source.split("#")[1])
                    summary.sink_params.setdefault(idx, finding.sink)
            for pname in sorted_params:
                summary.sort_params.add(param_names[pname])
            if summary.sink_params or summary.sort_params:
                prev = next_summaries.get(fn.name)
                if prev:  # same-named helpers: union conservatively
                    prev.sink_params.update(summary.sink_params)
                    prev.sort_params &= summary.sort_params
                else:
                    next_summaries[fn.name] = summary
        summaries = next_summaries
    return summaries


def analyze_tree(files, root, tcb, frontend, compile_commands):
    all_functions = []
    unordered_by_path = {}
    wall_clock_by_path = {}
    for rel in files:
        if str(rel) in tcb:
            continue
        text = (root / rel).read_text()
        stripped = wt.strip_code(text)
        unordered = collect_unordered_vars(stripped)
        # Members live in the paired header (dag.cpp's entries_ is
        # declared in dag.h); method bodies in the .cpp iterate them.
        if rel.suffix == ".cpp":
            header = rel.with_suffix(".h")
            if (root / header).exists():
                merged = collect_unordered_vars(
                    wt.strip_code((root / header).read_text()))
                merged.update(unordered)  # own decls shadow the header
                unordered = merged
        unordered_by_path[str(rel)] = unordered
        wall_clock_by_path[str(rel)] = rel.parts[:2] != ("src", "sim")
        if frontend == "clang":
            ranges = wt.clang_function_ranges(rel, root, compile_commands)
            if ranges is not None:
                for _name, begin, end in ranges:
                    segment = stripped[begin:end]
                    fns = wt.extract_functions(str(rel), segment)
                    for fn in fns:
                        fn.line += stripped.count("\n", 0, begin)
                    all_functions.extend(fns)
                continue
        all_functions.extend(wt.extract_functions(str(rel), stripped))

    summaries = build_summaries(all_functions, unordered_by_path,
                                wall_clock_by_path)
    analyzer = Analyzer(summaries)
    findings = []
    for fn in all_functions:
        analyzer.wall_clock_sources = wall_clock_by_path.get(fn.path, True)
        fn_findings, _p, _s = analyzer.analyze(
            fn, unordered_by_path.get(fn.path, {}), seed_params=False)
        findings.extend(fn_findings)
    return findings


# ---------------------------------------------------------------------------
# Fixture self-test
# ---------------------------------------------------------------------------

def run_selftest(fixtures_dir, root):
    failures = []
    checked = 0
    for kind in ("good", "bad"):
        for path in sorted((fixtures_dir / kind).glob("*.cpp")):
            text = path.read_text()
            expect = re.search(r"//\s*det-expect:\s*(.+)", text)
            if not expect:
                failures.append(f"{path}: missing `// det-expect:` header")
                continue
            spec = expect.group(1).strip()
            rel = str(path.relative_to(root))
            stripped = wt.strip_code(text)
            functions = wt.extract_functions(rel, stripped)
            unordered = {rel: collect_unordered_vars(stripped)}
            summaries = build_summaries(functions, unordered, {rel: True})
            analyzer = Analyzer(summaries)
            findings = []
            for fn in functions:
                findings.extend(analyzer.analyze(
                    fn, unordered[rel], seed_params=False)[0])
            checked += 1
            if spec == "clean":
                if kind != "good":
                    failures.append(f"{rel}: `clean` belongs in good/")
                for finding in findings:
                    failures.append(f"{rel}: expected clean, got: {finding}")
                continue
            if kind != "bad":
                failures.append(f"{rel}: expectation {spec} belongs in bad/")
            for clause in spec.split(";"):
                want = dict(kv.split("=") for kv in clause.strip().split())
                hit = any(
                    (("source" not in want or
                      want["source"] in finding.source) and
                     ("sink" not in want or want["sink"] == finding.sink))
                    for finding in findings)
                if not hit:
                    got = ", ".join(f"{f.source}->{f.sink}"
                                    for f in findings) or "no findings"
                    failures.append(
                        f"{rel}: expected {clause.strip()}, got: {got}")
    for failure in failures:
        print(failure)
    if failures:
        print(f"selftest: {len(failures)} failure(s) over {checked} "
              f"fixtures", file=sys.stderr)
        return 1
    print(f"det_taint selftest: {checked} fixtures behaved")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--compile-commands", default=None)
    parser.add_argument("--src-root", default=None)
    parser.add_argument("--allow", default=None)
    parser.add_argument("--frontend", default="auto",
                        choices=("auto", "clang", "tokens"))
    parser.add_argument("--json", default=None,
                        help="write findings as JSON to FILE")
    parser.add_argument("--selftest", action="store_true",
                        help="run the fixture suite instead of src/")
    args = parser.parse_args()

    tool_dir = pathlib.Path(__file__).resolve().parent
    root = tool_dir.parent.parent

    if args.selftest:
        return run_selftest(tool_dir / "fixtures" / "det", root)

    frontend = args.frontend
    if frontend == "auto":
        frontend = "clang" if shutil.which("clang") else "tokens"

    allow_path = args.allow or tool_dir / "det_taint_allow.txt"
    tcb, allows = wt.load_allow(allow_path)

    files = collect_files(args, root)
    if not files:
        sys.exit("no files to analyze (check --compile-commands/--src-root)")

    findings = analyze_tree(files, root, tcb, frontend,
                            args.compile_commands)
    visible = [f for f in findings if not wt.allowed(f, allows)]
    suppressed = len(findings) - len(visible)

    if args.json:
        pathlib.Path(args.json).write_text(json.dumps(
            [vars(f) for f in findings], indent=2) + "\n")

    for finding in sorted(visible, key=lambda f: (f.path, f.line)):
        print(finding)
    if visible:
        print(f"{len(visible)} finding(s) ({suppressed} suppressed by "
              f"{allow_path})", file=sys.stderr)
        return 1
    print(f"det_taint: {len(files)} files clean under frontend="
          f"{frontend} ({suppressed} suppressed, {len(tcb)} TCB files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
