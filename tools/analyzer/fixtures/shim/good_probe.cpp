// Positive probe for check_annotation_shim.sh: exercises every shim
// macro and wrapper the codebase relies on, in the sanctioned idioms.
// Must compile warning-free under BOTH g++ (macros expand to nothing)
// and clang++ -Werror=thread-safety (analysis sees a consistent
// locking discipline).
#include <deque>

#include "util/thread_annotations.h"

namespace probe {

using vegvisir::util::ConditionVariable;
using vegvisir::util::Mutex;
using vegvisir::util::MutexLock;
using vegvisir::util::UniqueLock;

class Queue {
 public:
  void Push(int v) {
    const MutexLock guard(mu_);
    items_.push_back(v);
    cv_.notify_one();
  }

  int BlockingPop() {
    // The shim's documented wait idiom: explicit lock/while/unlock so
    // the analysis tracks the capability through cv_.wait.
    mu_.lock();
    while (items_.empty()) cv_.wait(mu_);
    const int v = items_.front();
    items_.pop_front();
    mu_.unlock();
    return v;
  }

  bool TryDrainOne(int* out) {
    UniqueLock lock(mu_);
    if (items_.empty()) return false;
    *out = items_.front();
    items_.pop_front();
    lock.unlock();
    return true;
  }

  int SizeLocked() const VEGVISIR_REQUIRES(mu_) { return size_cache_; }

  int Size() const {
    const MutexLock guard(mu_);
    return SizeLocked();
  }

 private:
  mutable Mutex mu_;
  ConditionVariable cv_;
  std::deque<int> items_ VEGVISIR_GUARDED_BY(mu_);
  mutable int size_cache_ VEGVISIR_GUARDED_BY(mu_) = 0;
};

int Use() {
  Queue q;
  q.Push(1);
  int out = 0;
  (void)q.TryDrainOne(&out);
  return q.BlockingPop() + q.Size();
}

}  // namespace probe
