// Negative probe for check_annotation_shim.sh: reads and writes a
// GUARDED_BY member without holding its mutex, and calls a REQUIRES
// function unlocked. clang++ -Werror=thread-safety must REJECT this
// TU (that rejection is the wall working); g++ must accept it (the
// macros are no-ops there — the wall lives in the clang job).
#include "util/thread_annotations.h"

namespace probe {

using vegvisir::util::Mutex;

class Counter {
 public:
  void Increment() {
    value_ += 1;  // guarded write, no lock held: analysis error
  }

  int UnsafeRead() const {
    return value_;  // guarded read, no lock held: analysis error
  }

  int Locked() const VEGVISIR_REQUIRES(mu_) { return value_; }

  int CallsLockedUnlocked() const {
    return Locked();  // REQUIRES(mu_) callee, mu_ not held
  }

 private:
  mutable Mutex mu_;
  int value_ VEGVISIR_GUARDED_BY(mu_) = 0;
};

int Use() {
  Counter c;
  c.Increment();
  return c.UnsafeRead() + c.CallsLockedUnlocked();
}

}  // namespace probe
