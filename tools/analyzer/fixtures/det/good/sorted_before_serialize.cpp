// det-expect: clean
//
// The canonical fix: collect, std::sort, then emit. The sort is a
// sanitizer — it makes the sequence a pure function of the set's
// contents.
#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <vector>

struct Writer {
  void WriteU32(std::uint32_t v);
};

struct IdTable {
  std::unordered_set<std::uint32_t> ids_;

  void Export(Writer& w) const {
    std::vector<std::uint32_t> sorted_ids;
    for (const std::uint32_t id : ids_) {
      sorted_ids.push_back(id);
    }
    std::sort(sorted_ids.begin(), sorted_ids.end());
    for (const std::uint32_t id : sorted_ids) {
      w.WriteU32(id);
    }
  }
};
