// det-expect: clean
//
// A commutative fold (count/sum) over an unordered container is
// order-insensitive: the accumulator's final value does not depend on
// iteration order, so emitting it is fine.
#include <cstdint>
#include <unordered_set>

struct Writer {
  void WriteU32(std::uint32_t v);
};

struct Census {
  std::unordered_set<std::uint64_t> members_;

  void Export(Writer& w) const {
    std::uint32_t n = 0;
    for (const std::uint64_t m : members_) {
      (void)m;
      n += 1;
    }
    w.WriteU32(n);
  }
};
