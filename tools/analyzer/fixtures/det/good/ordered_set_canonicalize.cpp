// det-expect: clean
//
// Inserting into an ordered std::set canonicalizes on the way in: a
// keyed store discards arrival order, and iterating the set afterward
// yields key order.
#include <cstdint>
#include <set>
#include <unordered_set>

struct Writer {
  void WriteU32(std::uint32_t v);
};

struct IdTable {
  std::unordered_set<std::uint32_t> ids_;

  void Export(Writer& w) const {
    std::set<std::uint32_t> canon;
    for (const std::uint32_t id : ids_) {
      canon.insert(id);
    }
    for (const std::uint32_t id : canon) {
      w.WriteU32(id);
    }
  }
};
