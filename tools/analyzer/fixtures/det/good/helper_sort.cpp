// det-expect: clean
//
// The sanitizer is one call deep: Canonicalize sorts its parameter,
// so the caller's bucket-ordered vector is clean after the call.
#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <vector>

struct Writer {
  void WriteU32(std::uint32_t v);
};

void Canonicalize(std::vector<std::uint32_t>& items) {
  std::sort(items.begin(), items.end());
}

struct Registry {
  std::unordered_set<std::uint32_t> ids_;

  void Export(Writer& w) const {
    std::vector<std::uint32_t> out;
    for (const std::uint32_t id : ids_) {
      out.push_back(id);
    }
    Canonicalize(out);
    for (const std::uint32_t id : out) {
      w.WriteU32(id);
    }
  }
};
