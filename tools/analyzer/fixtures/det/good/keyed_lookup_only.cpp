// det-expect: clean
//
// Subscript stores into an ordered map are keyed, not sequential:
// bucket-order arrival lands each value at its sorted key, and the
// second loop emits in key order.
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>

struct Writer {
  void WriteU64(std::uint64_t v);
};

struct Ledger {
  std::unordered_map<std::string, std::uint64_t> balances_;
  std::map<std::string, std::uint64_t> totals_;

  void Tally() {
    for (const auto& [account, balance] : balances_) {
      totals_[account] += balance;
    }
  }

  void Export(Writer& w) const {
    for (const auto& [account, total] : totals_) {
      w.WriteU64(total);
    }
  }
};
