// det-expect: source=unordered-iter sink=callback-emit
//
// Invoking a caller-supplied callback once per hash-table entry: the
// visitation order (and anything the caller builds from it) is
// nondeterministic.
#include <cstdint>
#include <functional>
#include <unordered_map>

struct Block {
  std::uint64_t height;
};

struct Dag {
  std::unordered_map<std::uint64_t, Block> entries_;

  void ForEachStored(const std::function<void(const Block&)>& fn) const {
    for (const auto& [hash, entry] : entries_) {
      fn(entry);
    }
  }
};
