// det-expect: source=unordered-iter sink=serialize
//
// Taint must survive a chain of local assignments: the value written
// is derived from the loop variable two copies removed.
#include <cstdint>
#include <unordered_set>

struct Writer {
  void WriteU32(std::uint32_t v);
};

struct IdTable {
  std::unordered_set<std::uint32_t> ids_;

  void Export(Writer& w) const {
    for (const std::uint32_t id : ids_) {
      const std::uint32_t masked = id & 0xffu;
      const std::uint32_t column = masked;
      w.WriteU32(column);
    }
  }
};
