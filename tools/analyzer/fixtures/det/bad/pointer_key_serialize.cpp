// det-expect: source=pointer-key-iter sink=serialize
//
// std::map keyed by pointer iterates in address order — deterministic
// within one process, different across runs and machines.
#include <cstdint>
#include <map>

struct Block {
  std::uint64_t height;
};

struct Writer {
  void WriteU64(std::uint64_t v);
};

struct OffsetTable {
  std::map<const Block*, std::uint64_t> offsets_;

  void Serialize(Writer& w) const {
    for (const auto& [block, offset] : offsets_) {
      w.WriteU64(offset);
    }
  }
};
