// det-expect: source=unordered-iter sink=unordered-return
//
// Collecting into a sequence in bucket order and returning it: the
// caller observes nondeterministic element order through the API.
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

struct SyncResult {
  std::vector<std::uint64_t> dearchived;
};

struct SupportChain {
  std::unordered_map<std::uint64_t, std::string> bodies_;

  SyncResult SyncFrom() const {
    SyncResult result;
    for (const auto& [h, body] : bodies_) {
      if (!body.empty()) result.dearchived.push_back(h);
    }
    return result;
  }
};
