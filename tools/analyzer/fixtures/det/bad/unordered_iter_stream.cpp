// det-expect: source=unordered-iter sink=emit
//
// Streaming hash-table rows to an ostream: metric/report text whose
// line order changes run to run.
#include <ostream>
#include <string>
#include <unordered_map>

struct RowDump {
  std::unordered_map<std::string, long> rows_;

  void Print(std::ostream& os) const {
    for (const auto& [key, count] : rows_) {
      os << key << "=" << count << "\n";
    }
  }
};
