// det-expect: source=wall-clock sink=serialize
//
// A real-time clock read serialized into canonical bytes: replays and
// peers can never reproduce the stream.
#include <chrono>
#include <cstdint>

struct Writer {
  void WriteU64(std::uint64_t v);
};

void StampHeader(Writer& w) {
  const auto now = std::chrono::steady_clock::now();
  w.WriteU64(static_cast<std::uint64_t>(now.time_since_epoch().count()));
}
