// det-expect: source=unordered-iter sink=file-write
//
// Writing hash-table entries to a file in bucket order: the report
// bytes differ across runs even when the data is identical.
#include <cstdio>
#include <string>
#include <unordered_map>

struct SeriesDump {
  std::unordered_map<std::string, double> series_;

  void Dump(std::FILE* f) const {
    for (const auto& [name, value] : series_) {
      std::fwrite(name.data(), 1, name.size(), f);
    }
  }
};
