// det-expect: sink=helper-sink:WriteAll
//
// The sink is one call deep: WriteAll serializes its parameter, so a
// caller passing a bucket-ordered vector leaks through the helper.
#include <cstdint>
#include <unordered_set>
#include <vector>

struct Writer {
  void WriteU32(std::uint32_t v);
};

void WriteAll(Writer& w, const std::vector<std::uint32_t>& items) {
  for (const std::uint32_t item : items) {
    w.WriteU32(item);
  }
}

struct Registry {
  std::unordered_set<std::uint32_t> ids_;

  void Export(Writer& w) const {
    std::vector<std::uint32_t> out;
    for (const std::uint32_t id : ids_) {
      out.push_back(id);
    }
    WriteAll(w, out);
  }
};
