// det-expect: source=unordered-iter sink=digest
//
// Feeding a hasher in bucket order: the digest depends on the salt
// and insertion history, not on the set's contents.
#include <cstdint>
#include <unordered_set>

struct Hasher {
  void Update(std::uint64_t v);
};

struct Group {
  std::unordered_set<std::uint64_t> members_;

  void Fingerprint(Hasher& h) const {
    for (const std::uint64_t m : members_) {
      h.Update(m);
    }
  }
};
