// det-expect: source=unordered-iter sink=serialize
//
// The classic leak: hash-table bucket order written straight into a
// canonical byte stream. Two nodes with the same logical table emit
// different bytes.
#include <cstdint>
#include <unordered_map>

struct Writer {
  void WriteU32(std::uint32_t v);
  void WriteU64(std::uint64_t v);
};

struct Table {
  std::unordered_map<std::uint32_t, std::uint64_t> cells_;

  void Serialize(Writer& w) const {
    for (const auto& [key, value] : cells_) {
      w.WriteU32(key);
      w.WriteU64(value);
    }
  }
};
