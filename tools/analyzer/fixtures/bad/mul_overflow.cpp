// taint-expect: source=ReadVarint sink=overflow-arith
// `count * 32` wraps for count >= 2^59, so the later comparison
// against remaining() passes and the resize is huge. The multiply
// itself is the bug; the fix is a divide-style check.
#include <cstddef>
#include <cstdint>
#include <vector>

namespace fixture {

struct Reader {
  bool ReadVarint(std::uint64_t* out);
  std::size_t remaining() const;
};

bool DecodeHashes(Reader* r, std::vector<std::uint8_t>* out) {
  std::uint64_t count = 0;
  if (!r->ReadVarint(&count)) return false;
  const std::uint64_t bytes = count * 32;
  if (bytes > r->remaining()) return false;
  out->resize(bytes);
  return true;
}

}  // namespace fixture
