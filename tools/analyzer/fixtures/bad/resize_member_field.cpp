// taint-expect: source=ReadU32 sink=resize
// The count lands in a struct field first; the field is just as
// attacker-controlled as a local when it sizes an allocation.
#include <cstdint>
#include <vector>

namespace fixture {

struct Reader {
  bool ReadU32(std::uint32_t* out);
};

struct Header {
  std::uint32_t entry_count = 0;
};

bool DecodeTable(Reader* r, Header* h, std::vector<int>* out) {
  if (!r->ReadU32(&h->entry_count)) return false;
  out->resize(h->entry_count);
  return true;
}

}  // namespace fixture
