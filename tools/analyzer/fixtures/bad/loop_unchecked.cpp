// taint-expect: source=ReadVarint sink=loop-bound
// An unchecked wire count drives a loop trip count: each iteration
// push_backs, so the bomb costs CPU and memory with no input bytes.
#include <cstdint>
#include <vector>

namespace fixture {

struct Reader {
  bool ReadVarint(std::uint64_t* out);
  bool ReadU32(std::uint32_t* out);
};

bool DecodeEntries(Reader* r, std::vector<std::uint32_t>* out) {
  std::uint64_t count = 0;
  if (!r->ReadVarint(&count)) return false;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint32_t v = 0;
    if (!r->ReadU32(&v)) return false;
    out->push_back(v);
  }
  return true;
}

}  // namespace fixture
