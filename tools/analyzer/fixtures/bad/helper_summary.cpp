// taint-expect: source=ReadVarint sink=helper-sink:AllocateRows
// The sink hides one call deep: AllocateRows() reserves its
// parameter unchecked, so passing it a raw wire count is a finding
// in the caller (function-summary propagation).
#include <cstdint>
#include <vector>

namespace fixture {

struct Reader {
  bool ReadVarint(std::uint64_t* out);
};

void AllocateRows(std::vector<int>* out, std::uint64_t rows) {
  out->reserve(rows);
}

bool DecodeMatrix(Reader* r, std::vector<int>* out) {
  std::uint64_t rows = 0;
  if (!r->ReadVarint(&rows)) return false;
  AllocateRows(out, rows);
  return true;
}

}  // namespace fixture
