// taint-expect: source=ReadVarint sink=reserve
// A wire count flows straight into vector::reserve — the classic
// allocation bomb: 8 bytes of varint reserve 2^63 elements.
#include <cstdint>
#include <vector>

namespace fixture {

struct Reader {
  bool ReadVarint(std::uint64_t* out);
};

bool DecodeList(Reader* r, std::vector<int>* out) {
  std::uint64_t count = 0;
  if (!r->ReadVarint(&count)) return false;
  out->reserve(count);
  return true;
}

}  // namespace fixture
