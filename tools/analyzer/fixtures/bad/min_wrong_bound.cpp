// taint-expect: source=ReadVarint sink=reserve
// std::min against another *wire-derived* value is not a sanitizer:
// the attacker controls both sides. Only a limits::kMax* ceiling
// (or CheckWireCount) clears taint.
#include <algorithm>
#include <cstdint>
#include <vector>

namespace fixture {

struct Reader {
  bool ReadVarint(std::uint64_t* out);
};

bool DecodePair(Reader* r, std::vector<int>* out) {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  if (!r->ReadVarint(&a)) return false;
  if (!r->ReadVarint(&b)) return false;
  const std::uint64_t n = std::min(a, b);
  out->reserve(n);
  return true;
}

}  // namespace fixture
