// taint-expect: source=ReadU64 sink=new-array
// Raw new[] sized by a wire integer — no container to save you, the
// allocation happens before any element is touched.
#include <cstdint>

namespace fixture {

struct Reader {
  bool ReadU64(std::uint64_t* out);
};

bool DecodeBuffer(Reader* r, std::uint8_t** out) {
  std::uint64_t len = 0;
  if (!r->ReadU64(&len)) return false;
  *out = new std::uint8_t[len];
  return true;
}

}  // namespace fixture
