// taint-expect: clean
// Sizes derived from local computation or from .size() of wire data
// are input-bounded, not attacker-chosen: no finding. This guards
// against the analyzer drowning real findings in noise.
#include <cstdint>
#include <string>
#include <vector>

namespace fixture {

struct Reader {
  bool ReadBytes(std::vector<std::uint8_t>* out, std::size_t n);
};

bool DecodePayload(Reader* r, std::vector<std::uint8_t>* out,
                   std::string* hex) {
  std::vector<std::uint8_t> payload;
  if (!r->ReadBytes(&payload, 64)) return false;
  out->reserve(payload.size());
  for (std::size_t i = 0; i < payload.size(); ++i) {
    out->push_back(payload[i]);
  }
  hex->reserve(out->size() * 2);
  return true;
}

std::vector<int> MakeTable() {
  const std::size_t n = 4 * 1024;
  std::vector<int> table;
  table.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    table[i] = static_cast<int>(i);
  }
  return table;
}

}  // namespace fixture
