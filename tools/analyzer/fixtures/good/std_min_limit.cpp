// taint-expect: clean
// std::min with a limits::kMax* ceiling clamps the wire value to a
// trusted bound; the clamped variable is safe to allocate with.
#include <algorithm>
#include <cstdint>
#include <vector>

namespace fixture {

namespace serial {
namespace limits {
inline constexpr std::uint64_t kMaxFixtureSlots = 1u << 8;
}
}  // namespace serial

struct Reader {
  bool ReadU64(std::uint64_t* out);
};

bool DecodeSlots(Reader* r, std::vector<int>* out) {
  std::uint64_t want = 0;
  if (!r->ReadU64(&want)) return false;
  const std::uint64_t slots =
      std::min(want, serial::limits::kMaxFixtureSlots);
  out->resize(slots);
  return true;
}

}  // namespace fixture
