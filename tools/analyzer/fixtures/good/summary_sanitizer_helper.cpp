// taint-expect: clean
// The bound check lives in a helper: BoundedReserve() compares its
// parameter against limits::kMax* before reserving, so callers may
// pass raw wire counts (bounds-param summary propagation).
#include <cstdint>
#include <vector>

namespace fixture {

namespace serial {
namespace limits {
inline constexpr std::uint64_t kMaxFixtureCells = 1u << 14;
}
}  // namespace serial

struct Reader {
  bool ReadVarint(std::uint64_t* out);
};

bool BoundedReserve(std::vector<int>* out, std::uint64_t cells) {
  if (cells > serial::limits::kMaxFixtureCells) return false;
  out->reserve(cells);
  return true;
}

bool DecodeGrid(Reader* r, std::vector<int>* out) {
  std::uint64_t cells = 0;
  if (!r->ReadVarint(&cells)) return false;
  return BoundedReserve(out, cells);
}

}  // namespace fixture
