// taint-expect: clean
// The canonical idiom: CheckWireCount validates the count against a
// protocol cap AND the remaining input before any allocation.
#include <cstddef>
#include <cstdint>
#include <vector>

namespace fixture {

struct Status {
  bool ok() const;
  static Status Ok();
};

namespace serial {
namespace limits {
inline constexpr std::uint64_t kMaxFixtureItems = 1u << 10;
}
Status CheckWireCount(std::uint64_t count, std::uint64_t limit,
                      std::size_t remaining, std::size_t min_elem_bytes,
                      const char* what);
}  // namespace serial

struct Reader {
  bool ReadVarint(std::uint64_t* out);
  bool ReadU32(std::uint32_t* out);
  std::size_t remaining() const;
};

bool DecodeItems(Reader* r, std::vector<std::uint32_t>* out) {
  std::uint64_t count = 0;
  if (!r->ReadVarint(&count)) return false;
  if (!serial::CheckWireCount(count, serial::limits::kMaxFixtureItems,
                              r->remaining(), 4, "item")
           .ok()) {
    return false;
  }
  out->reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint32_t v = 0;
    if (!r->ReadU32(&v)) return false;
    out->push_back(v);
  }
  return true;
}

}  // namespace fixture
