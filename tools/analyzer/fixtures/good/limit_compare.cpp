// taint-expect: clean
// An explicit early-return comparison against a limits::kMax*
// constant sanitizes the count for everything after it.
#include <cstdint>
#include <vector>

namespace fixture {

namespace serial {
namespace limits {
inline constexpr std::uint64_t kMaxFixtureRows = 1u << 12;
}
}  // namespace serial

struct Reader {
  bool ReadVarint(std::uint64_t* out);
};

bool DecodeRows(Reader* r, std::vector<int>* out) {
  std::uint64_t rows = 0;
  if (!r->ReadVarint(&rows)) return false;
  if (rows > serial::limits::kMaxFixtureRows) return false;
  out->reserve(rows);
  for (std::uint64_t i = 0; i < rows; ++i) {
    out->push_back(0);
  }
  return true;
}

}  // namespace fixture
