// lock-expect: clean
//
// I/O under the storage-engine rank is sanctioned: kStorageEngine is
// the designated may-block rank (the WAL append+fsync discipline
// requires serializing the device behind the engine mutex).
#include <string>

#include "util/fsio.h"
#include "util/lock_ranks.h"
#include "util/thread_annotations.h"

namespace fx {

class Wal {
 public:
  void AppendDurable() {
    util::MutexLock lock(mu_);
    sequence_ += 1;
    DurableWriteFile(path_, Encode());
  }

 private:
  vegvisir::ByteSpan Encode();

  util::Mutex mu_{util::LockRank::kStorageEngine};
  std::string path_;
  int sequence_ = 0;
};

}  // namespace fx
