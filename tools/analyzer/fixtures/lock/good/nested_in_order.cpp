// lock-expect: clean
//
// Strict rank ascent: storage-engine (10) → telemetry-registry (40).
// This is the one real nesting edge in the tree (TieredStore::Open
// registering metrics under mu_) and it is legal.
#include "util/lock_ranks.h"
#include "util/thread_annotations.h"

namespace fx {

class Store {
 public:
  void RecordAppend() {
    util::MutexLock engine(engine_mu_);
    appended_ += 1;
    util::MutexLock registry(registry_mu_);
    counters_ += 1;
  }

 private:
  util::Mutex engine_mu_{util::LockRank::kStorageEngine};
  util::Mutex registry_mu_{util::LockRank::kTelemetryRegistry};
  int appended_ = 0;
  int counters_ = 0;
};

}  // namespace fx
