// lock-expect: clean
//
// A REQUIRES-annotated helper called with its lock already held must
// not produce a self-edge or a re-acquisition finding: the walker
// seeds the helper's held-set from the annotation and excludes the
// required mutex from its acquisition summary.
#include "util/lock_ranks.h"
#include "util/thread_annotations.h"

namespace fx {

class Ledger {
 public:
  void Post() {
    util::MutexLock lock(mu_);
    BumpLocked();
  }

 private:
  void BumpLocked() VEGVISIR_REQUIRES(mu_) { entries_ += 1; }

  util::Mutex mu_{util::LockRank::kExecPool};
  int entries_ = 0;
};

}  // namespace fx
