// lock-expect: clean
//
// The documented ConditionVariable idiom: the paired mutex is the
// ONLY lock held at the wait site, so parking releases everything.
#include "util/lock_ranks.h"
#include "util/thread_annotations.h"

namespace fx {

class Queue {
 public:
  void PopBlocking() {
    mu_.lock();
    while (depth_ == 0) {
      cv_.wait(mu_);
    }
    depth_ -= 1;
    mu_.unlock();
  }

 private:
  util::Mutex mu_{util::LockRank::kExecPool};
  util::ConditionVariable cv_;
  int depth_ = 0;
};

}  // namespace fx
