// lock-expect: clean
//
// UniqueLock released explicitly before the blocking call — the
// walker tracks .unlock() on the guard object, not just scope exit.
#include "util/lock_ranks.h"
#include "util/thread_annotations.h"

namespace exec {
class BatchVerifier;
}

namespace fx {

class Prefetcher {
 public:
  bool Probe() {
    util::UniqueLock lock(mu_);
    const int key = next_key_;
    next_key_ += 1;
    lock.unlock();
    return Consume(verifier_->Lookup(key, key));  // lock-free by now
  }

 private:
  static bool Consume(int verdict);

  util::Mutex mu_{util::LockRank::kExecVerifier};
  exec::BatchVerifier* verifier_ = nullptr;
  int next_key_ = 0;
};

}  // namespace fx
