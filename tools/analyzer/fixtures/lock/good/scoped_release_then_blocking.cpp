// lock-expect: clean
//
// The guard's scope closes before the blocking call: snapshot state
// under the lock, release, then drain the pool lock-free. This is
// the pattern the wall pushes violations toward.
#include "util/lock_ranks.h"
#include "util/thread_annotations.h"

namespace exec {
class ThreadPool;
}

namespace fx {

class Collector {
 public:
  void FlushThenDrain() {
    int snapshot = 0;
    {
      util::MutexLock lock(mu_);
      snapshot = pending_;
      pending_ = 0;
    }
    Publish(snapshot);
    pool_->Wait();  // no lock held here
  }

 private:
  static void Publish(int n);

  util::Mutex mu_{util::LockRank::kExecVerifier};
  exec::ThreadPool* pool_ = nullptr;
  int pending_ = 0;
};

}  // namespace fx
