// lock-expect: sink=blocking-call source=sleep
//
// A timed sleep while holding a lock converts every waiter's latency
// into the sleep duration. Backoff must release first.
#include <chrono>
#include <thread>

#include "util/lock_ranks.h"
#include "util/thread_annotations.h"

namespace fx {

class Backoff {
 public:
  void RetryLater() {
    util::MutexLock lock(mu_);
    attempts_ += 1;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

 private:
  util::Mutex mu_{util::LockRank::kExecPool};
  int attempts_ = 0;
};

}  // namespace fx
