// lock-expect: sink=blocking-call source=Wait
//
// ThreadPool::Wait drains every outstanding task and may park the
// caller on idle_cv_. Holding ANY lock across it — may-block rank or
// not — stalls every thread that needs that lock for as long as the
// pool takes.
#include "util/lock_ranks.h"
#include "util/thread_annotations.h"

namespace exec {
class ThreadPool;
}

namespace fx {

class Flusher {
 public:
  void FlushAndDrain() {
    util::MutexLock lock(mu_);
    dirty_ = 0;
    pool_->Wait();  // scheduler-class blocking under the lock
  }

 private:
  util::Mutex mu_{util::LockRank::kStorageEngine};
  exec::ThreadPool* pool_ = nullptr;
  int dirty_ = 0;
};

}  // namespace fx
