// lock-expect: sink=lock-cycle; sink=lock-order
//
// The inversion hides behind a helper: each entry point holds its
// own mutex and calls a helper that acquires the other. The
// interprocedural summary folds the helper's acquisition into the
// caller, closing the A->B / B->A cycle; the B->A edge additionally
// contradicts the declared ranks.
#include "util/lock_ranks.h"
#include "util/thread_annotations.h"

namespace fx {

class TwoSided {
 public:
  void FromVerifier() {
    util::MutexLock held(verifier_mu_);  // rank 20
    TouchPool();                         // acquires rank 30: fine
  }

  void FromPool() {
    util::MutexLock held(pool_mu_);  // rank 30
    TouchVerifier();                 // acquires rank 20: inversion
  }

 private:
  void TouchPool() {
    util::MutexLock inner(pool_mu_);
    pool_work_ += 1;
  }

  void TouchVerifier() {
    util::MutexLock inner(verifier_mu_);
    verifier_work_ += 1;
  }

  util::Mutex verifier_mu_{util::LockRank::kExecVerifier};
  util::Mutex pool_mu_{util::LockRank::kExecPool};
  int pool_work_ = 0;
  int verifier_work_ = 0;
};

}  // namespace fx
