// lock-expect: sink=lock-order
//
// Both mutexes are ranked, but the acquisition order contradicts the
// declared hierarchy: kTelemetryRegistry (40) is held while taking
// kExecVerifier (20). No cycle exists yet — the point of ranks is to
// reject the first half of a future deadlock before the second half
// is written.
#include "util/lock_ranks.h"
#include "util/thread_annotations.h"

namespace fx {

class Recorder {
 public:
  void Record() {
    util::MutexLock names(registry_mu_);
    util::MutexLock results(verifier_mu_);
    count_ += 1;
  }

 private:
  util::Mutex registry_mu_{util::LockRank::kTelemetryRegistry};
  util::Mutex verifier_mu_{util::LockRank::kExecVerifier};
  int count_ = 0;
};

}  // namespace fx
