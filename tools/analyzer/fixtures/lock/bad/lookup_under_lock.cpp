// lock-expect: sink=blocking-call source=Lookup
//
// BatchVerifier::Lookup blocks on in-flight verification jobs (its
// EXCLUDES contract documents it as scheduler-class blocking). A
// caller holding a node-side mutex would couple that mutex's waiters
// to the verifier pipeline's latency.
#include "util/lock_ranks.h"
#include "util/thread_annotations.h"

namespace exec {
class BatchVerifier;
}

namespace fx {

class Validator {
 public:
  bool CheckSignature() {
    util::MutexLock lock(mu_);
    checks_ += 1;
    return Consume(verifier_->Lookup(checks_, checks_));
  }

 private:
  static bool Consume(int verdict);

  util::Mutex mu_{util::LockRank::kStorageEngine};
  exec::BatchVerifier* verifier_ = nullptr;
  int checks_ = 0;
};

}  // namespace fx
