// lock-expect: sink=lock-cycle; sink=unranked-mutex
//
// Two unranked file-scope mutexes taken in opposite orders by two
// threads: the classic AB/BA deadlock. Two findings: the cycle in
// the acquisition graph, and the missing ranks that would have
// rejected one of the two orders at compile review time.
#include "util/thread_annotations.h"

namespace fx {

util::Mutex g_account;
util::Mutex g_journal;
int g_balance = 0;
int g_entries = 0;

void TransferThenLog() {
  util::MutexLock account(g_account);
  util::MutexLock journal(g_journal);
  g_balance -= 1;
  g_entries += 1;
}

void LogThenTransfer() {
  util::MutexLock journal(g_journal);
  util::MutexLock account(g_account);
  g_entries += 1;
  g_balance += 1;
}

}  // namespace fx
