// lock-expect: sink=blocking-call source=DrainPool
//
// The blocking call hides one level down: DrainPool itself is clean
// (no lock held inside), but its summary marks it scheduler-class
// blocking, so calling it with the batch lock held is the same bug
// as calling Wait directly.
#include "util/lock_ranks.h"
#include "util/thread_annotations.h"

namespace exec {
class ThreadPool;
}

namespace fx {

class Batcher {
 public:
  void CloseBatch() {
    util::MutexLock lock(mu_);
    batches_ += 1;
    DrainPool();
  }

 private:
  void DrainPool() {
    pool_->Wait();  // legal here: nothing held inside this helper
  }

  util::Mutex mu_{util::LockRank::kExecVerifier};
  exec::ThreadPool* pool_ = nullptr;
  int batches_ = 0;
};

}  // namespace fx
