// lock-expect: sink=unranked-mutex
//
// A util::Mutex member without a LockRank brace initializer. The
// mutex is used correctly here, but an unranked mutex is invisible
// to both the static rank check and the runtime enforcer — every
// mutex must declare its place in the hierarchy.
#include "util/thread_annotations.h"

namespace fx {

class Cache {
 public:
  void Put(int value) {
    util::MutexLock lock(mu_);
    last_ = value;
  }

 private:
  util::Mutex mu_;  // missing LockRank
  int last_ = 0;
};

}  // namespace fx
