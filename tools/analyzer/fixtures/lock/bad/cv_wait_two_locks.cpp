// lock-expect: sink=cv-wait
//
// ConditionVariable::wait releases exactly ONE mutex while parked.
// Waiting with a second lock held keeps that second lock across the
// entire park — the documented idiom requires the paired mutex to be
// the only lock held.
#include "util/lock_ranks.h"
#include "util/thread_annotations.h"

namespace fx {

class Mailbox {
 public:
  void AwaitMessage() {
    util::MutexLock outer(index_mu_);  // rank 10: stays held while parked
    inner_mu_.lock();                  // rank 20: the cv's mutex
    while (messages_ == 0) {
      cv_.wait(inner_mu_);
    }
    messages_ -= 1;
    inner_mu_.unlock();
  }

 private:
  util::Mutex index_mu_{util::LockRank::kStorageEngine};
  util::Mutex inner_mu_{util::LockRank::kExecVerifier};
  util::ConditionVariable cv_;
  int messages_ = 0;
};

}  // namespace fx
