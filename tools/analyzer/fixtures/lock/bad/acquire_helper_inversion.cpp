// lock-expect: sink=lock-order
//
// The acquisition happens inside a VEGVISIR_ACQUIRE-annotated helper,
// so the caller's body never names the mutex it takes. The annotation
// is the contract: calling the helper while holding a higher rank is
// an inversion even though the helper itself is correct.
#include "util/lock_ranks.h"
#include "util/thread_annotations.h"

namespace fx {

class Exporter {
 public:
  void Export() {
    util::MutexLock names(registry_mu_);  // rank 40
    LockQueue();                          // acquires rank 30 under it
    queued_ += 1;
    UnlockQueue();
  }

 private:
  void LockQueue() VEGVISIR_ACQUIRE(pool_mu_) { pool_mu_.lock(); }
  void UnlockQueue() VEGVISIR_RELEASE(pool_mu_) { pool_mu_.unlock(); }

  util::Mutex registry_mu_{util::LockRank::kTelemetryRegistry};
  util::Mutex pool_mu_{util::LockRank::kExecPool};
  int queued_ = 0;
};

}  // namespace fx
