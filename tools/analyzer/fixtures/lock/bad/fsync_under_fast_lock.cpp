// lock-expect: sink=io-under-lock source=DurableWriteFile
//
// DurableWriteFile is write+fsync+rename+dir-fsync — milliseconds on
// flash. Under a fast lock (kExecVerifier is not may-block) that
// stall serializes behind the device. Only the storage-engine rank
// sanctions I/O under lock (the WAL discipline).
#include <string>

#include "util/fsio.h"
#include "util/lock_ranks.h"
#include "util/thread_annotations.h"

namespace fx {

class Snapshotter {
 public:
  void Persist() {
    util::MutexLock lock(mu_);
    version_ += 1;
    DurableWriteFile(path_, Encode());
  }

 private:
  vegvisir::ByteSpan Encode();

  util::Mutex mu_{util::LockRank::kExecVerifier};
  std::string path_;
  int version_ = 0;
};

}  // namespace fx
