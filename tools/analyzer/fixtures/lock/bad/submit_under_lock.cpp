// lock-expect: sink=blocking-call source=Submit
//
// ThreadPool::Submit degrades to inline execution (serial mode, full
// queue), so it can run arbitrary task code on the submitting thread.
// Entered with a mutex held, that task code inherits the lock — and
// anything it acquires nests under it invisibly.
#include "util/lock_ranks.h"
#include "util/thread_annotations.h"

namespace exec {
class ThreadPool;
}

namespace fx {

class Dispatcher {
 public:
  void Dispatch() {
    util::MutexLock lock(mu_);
    queued_ += 1;
    pool_->Submit(MakeJob());
  }

 private:
  static int MakeJob();

  util::Mutex mu_{util::LockRank::kExecVerifier};
  exec::ThreadPool* pool_ = nullptr;
  int queued_ = 0;
};

}  // namespace fx
