// Determinism checker: runs the chaos-storm cluster twice under the
// same seed and diffs everything observable — per-node DAG frontier
// digests, per-node state fingerprints and the full aggregated metric
// snapshot (as its canonical JSON rendering).
//
// The simulator's contract is that (seed, config) fully determines a
// run: one event queue, one Rng tree, no wall clock. Any divergence
// between the two runs means hidden nondeterminism crept in
// (unordered-container iteration leaking into behaviour, uninitialised
// reads, wall-clock use outside src/sim/ — the custom linter bans the
// latter statically, this tool catches the rest dynamically). CI runs
// this on every push; it is also a ctest.
//
// Usage: determinism_check [--seed S] [--duration-ms D] [--nodes N]
// Exit 0: byte-identical runs. Exit 1: divergence (diff on stdout).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "crdt/sets.h"
#include "node/cluster.h"
#include "sim/faults.h"
#include "sim/topology.h"
#include "telemetry/export.h"
#include "util/bytes.h"

namespace {

using namespace vegvisir;

struct RunResult {
  // Hex frontier digest + state fingerprint per node, in node order.
  std::vector<std::string> frontiers;
  std::vector<std::string> fingerprints;
  // Canonical JSON of the aggregated metric snapshot: every counter,
  // gauge and histogram across all nodes, so even a single stray
  // event shows up.
  std::string metrics_json;
};

std::string HashHex(const chain::BlockHash& h) {
  return ToHex(ByteSpan(h.data(), h.size()));
}

// The storm mirrors the chaos acceptance soak
// (tests/chaos_test.cpp CombinedSoakReconvergesWithExactAccounting):
// corruption, link flap and two crash-restart windows on a clique,
// with CRDT writes landing mid-storm.
RunResult RunOnce(std::uint64_t seed, sim::TimeMs duration_ms, int nodes) {
  sim::ExplicitTopology topo(nodes);
  topo.MakeClique();
  node::ClusterConfig cfg;
  cfg.node_count = nodes;
  cfg.seed = seed;
  cfg.faults = sim::FaultPlan::Corruption(0.05);
  cfg.faults.Merge(sim::FaultPlan::LinkFlap(5'000, 0.2));
  if (nodes > 2) cfg.faults.Merge(sim::FaultPlan::CrashRestart(2, 40'000, 80'000));
  if (nodes > 5) {
    cfg.faults.Merge(sim::FaultPlan::CrashRestart(5, 100'000, 140'000));
  }
  cfg.faults.active_until_ms = 180'000;
  node::Cluster cluster(cfg, &topo);

  cluster.RunFor(30'000);
  if (!cluster.node(0)
           .CreateCrdt("journal", crdt::CrdtType::kGSet,
                       crdt::ValueType::kStr, csm::AclPolicy::AllowAll())
           .ok()) {
    std::fprintf(stderr, "workload setup failed\n");
    std::exit(2);
  }
  cluster.RunFor(30'000);
  (void)cluster.node(1).AppendOp("journal", "add",
                                 {crdt::Value::OfStr("mid-storm")});
  cluster.RunFor(60'000);
  (void)cluster.node(nodes / 2).AppendOp("journal", "add",
                                         {crdt::Value::OfStr("late-storm")});
  const sim::TimeMs elapsed = 120'000;
  if (duration_ms > elapsed) cluster.RunFor(duration_ms - elapsed);

  RunResult result;
  for (int i = 0; i < cluster.size(); ++i) {
    result.frontiers.push_back(
        HashHex(cluster.node(i).dag().FrontierDigest()));
    result.fingerprints.push_back(ToHex(cluster.node(i).Fingerprint()));
  }
  result.metrics_json = telemetry::ToJson(cluster.AggregateSnapshot());
  return result;
}

// Reports every differing field; returns the number of differences.
int Diff(const RunResult& a, const RunResult& b) {
  int diffs = 0;
  for (std::size_t i = 0; i < a.frontiers.size(); ++i) {
    if (a.frontiers[i] != b.frontiers[i]) {
      std::printf("DIVERGED node %zu frontier digest:\n  run1 %s\n  run2 %s\n",
                  i, a.frontiers[i].c_str(), b.frontiers[i].c_str());
      ++diffs;
    }
    if (a.fingerprints[i] != b.fingerprints[i]) {
      std::printf("DIVERGED node %zu state fingerprint:\n  run1 %s\n  run2 %s\n",
                  i, a.fingerprints[i].c_str(), b.fingerprints[i].c_str());
      ++diffs;
    }
  }
  if (a.metrics_json != b.metrics_json) {
    // Find the first differing byte so the culprit metric is visible
    // without dumping two full snapshots.
    std::size_t at = 0;
    while (at < a.metrics_json.size() && at < b.metrics_json.size() &&
           a.metrics_json[at] == b.metrics_json[at]) {
      ++at;
    }
    const std::size_t from = at < 40 ? 0 : at - 40;
    std::printf("DIVERGED metric snapshots at byte %zu:\n  run1 ...%s\n  run2 ...%s\n",
                at, a.metrics_json.substr(from, 80).c_str(),
                b.metrics_json.substr(from, 80).c_str());
    ++diffs;
  }
  return diffs;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 424'242;
  sim::TimeMs duration_ms = 240'000;
  int nodes = 8;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--duration-ms") {
      duration_ms = static_cast<sim::TimeMs>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--nodes") {
      nodes = std::atoi(next());
    } else {
      std::fprintf(stderr,
                   "usage: determinism_check [--seed S] [--duration-ms D] "
                   "[--nodes N]\n");
      return 2;
    }
  }
  if (nodes < 2 || duration_ms < 130'000) {
    std::fprintf(stderr, "need --nodes >= 2 and --duration-ms >= 130000\n");
    return 2;
  }

  const RunResult run1 = RunOnce(seed, duration_ms, nodes);
  const RunResult run2 = RunOnce(seed, duration_ms, nodes);
  const int diffs = Diff(run1, run2);
  if (diffs == 0) {
    std::printf(
        "deterministic: %d nodes, seed %llu, %llu ms — frontiers, "
        "fingerprints and %zu-byte metric snapshot identical across runs\n",
        nodes, static_cast<unsigned long long>(seed),
        static_cast<unsigned long long>(duration_ms),
        run1.metrics_json.size());
    return 0;
  }
  std::printf("%d divergence(s) between same-seed runs\n", diffs);
  return 1;
}
