// Determinism checker: runs the chaos-storm cluster under the same
// seed — twice serially, then once on the parallel execution engine —
// and diffs everything observable: per-node DAG frontier digests,
// per-node state fingerprints and the full aggregated metric snapshot
// (as its canonical JSON rendering).
//
// The simulator's contract is that (seed, config) fully determines a
// run: one event queue, one Rng tree, no wall clock. Any divergence
// between the two serial runs means hidden nondeterminism crept in
// (unordered-container iteration leaking into behaviour, uninitialised
// reads, wall-clock use outside src/sim/ — the custom linter bans the
// latter statically, this tool catches the rest dynamically). The
// third leg re-runs the same storm at --threads workers (default 8)
// and must match byte-for-byte too: DESIGN.md §12's claim that the
// execution engine changes wall-clock time and nothing else.
//
// The only metrics allowed to differ are the pool's scheduling
// internals, enumerated in an explicit exclusion file
// (tools/determinism_exclude.txt) and scrubbed from every leg before
// diffing. The file is mandatory — a missing waiver list fails the
// check rather than silently widening it.
//
// Usage: determinism_check [--seed S] [--duration-ms D] [--nodes N]
//                          [--threads T] [--exclude-file PATH]
// Exit 0: byte-identical runs. Exit 1: divergence (diff on stdout).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "crdt/sets.h"
#include "node/cluster.h"
#include "sim/faults.h"
#include "sim/topology.h"
#include "telemetry/export.h"
#include "util/bytes.h"

namespace {

using namespace vegvisir;

struct RunResult {
  // Hex frontier digest + state fingerprint per node, in node order.
  std::vector<std::string> frontiers;
  std::vector<std::string> fingerprints;
  // Canonical JSON of the aggregated metric snapshot: every counter,
  // gauge and histogram across all nodes, so even a single stray
  // event shows up.
  std::string metrics_json;
};

std::string HashHex(const chain::BlockHash& h) {
  return ToHex(ByteSpan(h.data(), h.size()));
}

// Loads the exclusion list: one exact metric name per line, '#'
// comments. Exits if the file is unreadable — the waiver list is part
// of the check's contract.
std::set<std::string> LoadExclusions(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr,
                 "cannot read exclusion file '%s' (pass --exclude-file)\n",
                 path.c_str());
    std::exit(2);
  }
  std::set<std::string> names;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    while (!line.empty() && (line.back() == ' ' || line.back() == '\r' ||
                             line.back() == '\t')) {
      line.pop_back();
    }
    std::size_t start = 0;
    while (start < line.size() && (line[start] == ' ' || line[start] == '\t')) {
      ++start;
    }
    line.erase(0, start);
    if (!line.empty()) names.insert(line);
  }
  return names;
}

void Scrub(telemetry::Snapshot* snap, const std::set<std::string>& excluded) {
  for (const std::string& name : excluded) {
    snap->counters.erase(name);
    snap->gauges.erase(name);
    snap->histograms.erase(name);
  }
}

// The storm mirrors the chaos acceptance soak
// (tests/chaos_test.cpp CombinedSoakReconvergesWithExactAccounting):
// corruption, link flap and two crash-restart windows on a clique,
// with CRDT writes landing mid-storm.
RunResult RunOnce(std::uint64_t seed, sim::TimeMs duration_ms, int nodes,
                  unsigned threads, const std::set<std::string>& excluded) {
  sim::ExplicitTopology topo(nodes);
  topo.MakeClique();
  node::ClusterConfig cfg;
  cfg.node_count = nodes;
  cfg.seed = seed;
  cfg.exec.threads = threads;
  cfg.faults = sim::FaultPlan::Corruption(0.05);
  cfg.faults.Merge(sim::FaultPlan::LinkFlap(5'000, 0.2));
  if (nodes > 2) cfg.faults.Merge(sim::FaultPlan::CrashRestart(2, 40'000, 80'000));
  if (nodes > 5) {
    cfg.faults.Merge(sim::FaultPlan::CrashRestart(5, 100'000, 140'000));
  }
  cfg.faults.active_until_ms = 180'000;
  // Reconciliation v2 across the fleet, with the last node pinned to
  // the legacy protocol: the setdiff negotiation, its peel-failure
  // ladder and the gossip downgrade path all run inside the storm and
  // must be exactly as reproducible as everything else.
  cfg.node_template.recon.mode = recon::ReconConfig::Mode::kSetDiff;
  if (nodes > 1) {
    recon::ReconConfig legacy;
    legacy.mode = recon::ReconConfig::Mode::kHashFirst;
    legacy.protocol_version = 1;
    cfg.recon_overrides[nodes - 1] = legacy;
  }
  node::Cluster cluster(cfg, &topo);

  cluster.RunFor(30'000);
  if (!cluster.node(0)
           .CreateCrdt("journal", crdt::CrdtType::kGSet,
                       crdt::ValueType::kStr, csm::AclPolicy::AllowAll())
           .ok()) {
    std::fprintf(stderr, "workload setup failed\n");
    std::exit(2);
  }
  cluster.RunFor(30'000);
  (void)cluster.node(1).AppendOp("journal", "add",
                                 {crdt::Value::OfStr("mid-storm")});
  cluster.RunFor(60'000);
  (void)cluster.node(nodes / 2).AppendOp("journal", "add",
                                         {crdt::Value::OfStr("late-storm")});
  const sim::TimeMs elapsed = 120'000;
  if (duration_ms > elapsed) cluster.RunFor(duration_ms - elapsed);

  RunResult result;
  for (int i = 0; i < cluster.size(); ++i) {
    result.frontiers.push_back(
        HashHex(cluster.node(i).dag().FrontierDigest()));
    result.fingerprints.push_back(ToHex(cluster.node(i).Fingerprint()));
  }
  telemetry::Snapshot snap = cluster.AggregateSnapshot();
  Scrub(&snap, excluded);
  result.metrics_json = telemetry::ToJson(snap);
  return result;
}

// Reports every differing field; returns the number of differences.
int Diff(const char* label, const RunResult& a, const RunResult& b) {
  int diffs = 0;
  for (std::size_t i = 0; i < a.frontiers.size(); ++i) {
    if (a.frontiers[i] != b.frontiers[i]) {
      std::printf("DIVERGED [%s] node %zu frontier digest:\n  run1 %s\n  run2 %s\n",
                  label, i, a.frontiers[i].c_str(), b.frontiers[i].c_str());
      ++diffs;
    }
    if (a.fingerprints[i] != b.fingerprints[i]) {
      std::printf(
          "DIVERGED [%s] node %zu state fingerprint:\n  run1 %s\n  run2 %s\n",
          label, i, a.fingerprints[i].c_str(), b.fingerprints[i].c_str());
      ++diffs;
    }
  }
  if (a.metrics_json != b.metrics_json) {
    // Find the first differing byte so the culprit metric is visible
    // without dumping two full snapshots.
    std::size_t at = 0;
    while (at < a.metrics_json.size() && at < b.metrics_json.size() &&
           a.metrics_json[at] == b.metrics_json[at]) {
      ++at;
    }
    const std::size_t from = at < 40 ? 0 : at - 40;
    std::printf(
        "DIVERGED [%s] metric snapshots at byte %zu:\n  run1 ...%s\n  run2 ...%s\n",
        label, at, a.metrics_json.substr(from, 80).c_str(),
        b.metrics_json.substr(from, 80).c_str());
    ++diffs;
  }
  return diffs;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 424'242;
  sim::TimeMs duration_ms = 240'000;
  int nodes = 8;
  unsigned threads = 8;
  std::string exclude_file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--duration-ms") {
      duration_ms = static_cast<sim::TimeMs>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--nodes") {
      nodes = std::atoi(next());
    } else if (arg == "--threads") {
      threads = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--exclude-file") {
      exclude_file = next();
    } else {
      std::fprintf(stderr,
                   "usage: determinism_check [--seed S] [--duration-ms D] "
                   "[--nodes N] [--threads T] [--exclude-file PATH]\n");
      return 2;
    }
  }
  if (nodes < 2 || duration_ms < 130'000 || threads < 1) {
    std::fprintf(stderr,
                 "need --nodes >= 2, --duration-ms >= 130000, --threads >= 1\n");
    return 2;
  }
  if (exclude_file.empty()) {
    // Default for invocations from the repo root (CI) or from build/.
    exclude_file = "tools/determinism_exclude.txt";
    std::ifstream probe(exclude_file);
    if (!probe) exclude_file = "../tools/determinism_exclude.txt";
  }
  const std::set<std::string> excluded = LoadExclusions(exclude_file);

  // Leg 1+2: the PR-3 guarantee — same seed, serial, byte-identical.
  const RunResult serial1 = RunOnce(seed, duration_ms, nodes, 1, excluded);
  const RunResult serial2 = RunOnce(seed, duration_ms, nodes, 1, excluded);
  int diffs = Diff("same-seed serial", serial1, serial2);
  // Leg 3: the PR-5 guarantee — the parallel engine must reproduce
  // the serial run exactly (modulo the scrubbed pool internals).
  const RunResult parallel =
      RunOnce(seed, duration_ms, nodes, threads, excluded);
  diffs += Diff("threads=1 vs threads=N", serial1, parallel);
  if (diffs == 0) {
    std::printf(
        "deterministic: %d nodes, seed %llu, %llu ms — frontiers, "
        "fingerprints and %zu-byte metric snapshot identical across two "
        "serial runs and a threads=%u run (%zu excluded metric(s))\n",
        nodes, static_cast<unsigned long long>(seed),
        static_cast<unsigned long long>(duration_ms),
        serial1.metrics_json.size(), threads, excluded.size());
    return 0;
  }
  std::printf("%d divergence(s) between same-seed runs\n", diffs);
  return 1;
}
