#!/usr/bin/env python3
"""Custom invariant linter for the Vegvisir codebase.

Seven repo-specific invariants that clang-tidy cannot express:

  1. no-wall-clock: determinism depends on every timestamp and random
     draw flowing from the seeded simulator. Wall-clock and ambient-
     entropy APIs (std::chrono::system_clock, time(), rand(),
     std::random_device, ...) are banned everywhere under src/ except
     src/sim/ (the only layer allowed to own a clock, simulated or
     otherwise).

  2. metric-names: every metric name passed to
     GetCounter/GetGauge/GetHistogram/CounterValue (and every trace
     name passed to RecordSpan/RecordInstant) as a string literal must
     be declared in the single registry table
     src/telemetry/metric_names.h. Call sites that build names
     dynamically must carry a `// lint: metric-name <pattern>...`
     annotation on one of the three preceding lines naming the
     patterns they can produce (each pattern must itself resolve
     against the table, `*` matching a suffix).

  3. checked-decode: every function named Decode*/Parse*/Deserialize*
     must return Status or StatusOr (decoding hostile bytes must not
     be able to fail silently), and no call to one may discard the
     result: a bare `Foo::Decode(...);` statement is an error. Consume
     it (assign, return, wrap in VEGVISIR_RETURN_IF_ERROR/if/EXPECT)
     or cast to void explicitly.

  4. decode-literal-clamp: inside a Decode*/Parse*/Deserialize* body,
     comparing a value against a bare integer literal (> 8) is an
     error. Ad-hoc clamps drift apart and dodge both the taint
     analyzer and the bomb tests; every decode bound must be a named
     constant in src/serial/limits.h (lines mentioning `limits::` or
     `sizeof` are exempt — those ARE the sanctioned forms).

  5. no-inline-taint-suppression: wire_taint.py findings may only be
     suppressed in tools/analyzer/wire_taint_allow.txt (one reviewed
     file). Any `taint-expect` / NOLINT(...taint...) marker inside
     src/ is an error, even in a comment.

  6. thread-containment: concurrency lives in src/exec/ and nowhere
     else. `std::thread`/`std::jthread`/`std::async` and `.detach()`
     are banned everywhere else under src/ (determinism depends on
     the pool being the single scheduling authority; DESIGN.md §12).
     Inside src/exec/, `std::async` and `.detach()` stay banned, and
     every `std::thread` CONSTRUCTION must carry a
     `// lint: thread-owner` annotation on one of the three preceding
     lines — there is exactly one sanctioned site (the pool's worker
     spawn loop).

  7. mutex-annotation: locks must be visible to clang's thread-safety
     analysis. Raw std::mutex/std::shared_mutex (and friends) are
     banned in src/ — locking state is declared through the
     util::Mutex shim in src/util/thread_annotations.h, every
     util::Mutex member must have at least one
     VEGVISIR_GUARDED_BY/PT_GUARDED_BY/REQUIRES/ACQUIRE user in the
     same file (an unused lock protects nothing and the analysis
     proves nothing), and inline
     VEGVISIR_NO_THREAD_SAFETY_ANALYSIS / [[clang::no_thread_safety_
     analysis]] escapes are rejected outside the shim itself —
     restructure the code so the analysis passes (mirrors rule 5's
     no-inline-suppression policy).

  8. mutex-rank: every util::Mutex member in src/ must declare its
     LockRank via brace-init (`util::Mutex mu_{util::LockRank::...};`)
     so it participates in the lock hierarchy that lock_graph.py and
     the VEGVISIR_LOCK_DEBUG runtime enforcer check
     (src/util/lock_ranks.h, DESIGN.md §15). An unranked mutex is
     invisible to the ordering wall.

Allowlist: suppressions live HERE, in the tables below, one entry per
line with a justification — never inline in the source (the lint CI
job greps for NOLINT to enforce that). `// lint: metric-name` and
`// lint: allow-wall-clock` annotations are declarations the linter
verifies, not suppressions.

Usage: tools/lint/vegvisir_lint.py [repo-root]
Exit 0 when clean; 1 with one `file:line: rule: message` per finding.
"""

import pathlib
import re
import sys

# ---------------------------------------------------------------------------
# Documented allowlist (the only sanctioned suppressions).
# ---------------------------------------------------------------------------

# checked-decode, rule 3a: functions that merely look like decoders.
NOT_A_DECODER = {
    # Maps a failed decode Status to a reject-counter suffix; it
    # classifies errors, it does not parse bytes.
    "DecodeRejectName",
}

# metric-names: files implementing the registry machinery itself,
# where the `name` parameter is by definition not a literal.
METRIC_MACHINERY = {
    "src/telemetry/metrics.h",
    "src/telemetry/metrics.cpp",
    "src/telemetry/trace.h",
    "src/telemetry/trace.cpp",
}

# no-wall-clock: directory allowed to own time (trailing slash).
CLOCK_OWNER = "src/sim/"

WALL_CLOCK_PATTERNS = [
    (re.compile(p), what)
    for p, what in [
        (r"\bsystem_clock\b", "std::chrono::system_clock"),
        (r"\bsteady_clock\b", "std::chrono::steady_clock"),
        (r"\bhigh_resolution_clock\b", "std::chrono::high_resolution_clock"),
        (r"\brandom_device\b", "std::random_device"),
        (r"\bmt19937(_64)?\b", "std::mt19937"),
        (r"\bdefault_random_engine\b", "std::default_random_engine"),
        (r"\bminstd_rand0?\b", "std::minstd_rand"),
        (r"\bsrand\s*\(", "srand()"),
        (r"(?<![\w.])rand\s*\(\s*\)", "rand()"),
        (r"(?<![\w.])time\s*\(\s*(NULL|nullptr|0|\&|\))", "time()"),
        (r"\bstd::time\s*\(", "std::time()"),
        (r"(?<![\w.])clock\s*\(\s*\)", "clock()"),
        (r"\bgettimeofday\b", "gettimeofday()"),
        (r"\bclock_gettime\b", "clock_gettime()"),
        (r"\blocaltime(_r)?\b", "localtime()"),
        (r"\bgmtime(_r)?\b", "gmtime()"),
    ]
]

METRIC_METHODS = {
    "GetCounter": "counter",
    "CounterValue": "counter",
    "GetGauge": "gauge",
    "GetHistogram": "histogram",
    "RecordSpan": "trace",
    "RecordInstant": "trace",
}

DECODER_NAME = re.compile(r"\b(Decode|Parse|Deserialize)\w*\s*\(")
STATUS_RETURN = re.compile(r"\b(Status|StatusOr)\b")

# decode-literal-clamp: `value > 1234` style comparisons (relational
# only; == against small structural tags is fine). The operand class
# before the operator keeps shifts (`x >> 7`) and template argument
# lists from matching.
LITERAL_CLAMP = re.compile(
    r"[\w\)\]]\s*(?:<=|>=|<|>)\s*(0x[0-9a-fA-F]+|\d+)\b")

# Largest literal a decoder may compare against without a named
# limit: small structural values (tag ranges, varint continuation
# groups) stay legal, anything bound-sized must come from limits.h.
MAX_BARE_LITERAL = 8

TAINT_SUPPRESSION = re.compile(
    r"taint-expect|wire-taint-allow|NOLINT\([^)]*taint")

# thread-containment: directory allowed to own threads (trailing
# slash). Everywhere else these constructs are banned outright; inside
# it, std::thread construction needs a `// lint: thread-owner`
# annotation and async/detach stay banned.
THREAD_OWNER = "src/exec/"

THREAD_API_BANNED = [
    (re.compile(p), what)
    for p, what in [
        (r"\bstd::thread\b", "std::thread"),
        (r"\bstd::jthread\b", "std::jthread"),
        (r"\bstd::async\b", "std::async"),
        (r"(\.|->)\s*detach\s*\(", ".detach()"),
    ]
]

# Inside src/exec/: uninitialised members may mention std::thread, but
# actually constructing one — `std::thread(...)`, `std::thread{...}`,
# or a named declaration `std::thread t(...)` / `= ...` — requires the
# annotation.
THREAD_CONSTRUCTION = re.compile(r"\bstd::thread\s*(\w+\s*)?[({=]")

THREAD_API_BANNED_IN_OWNER = [
    (re.compile(p), what)
    for p, what in [
        (r"\bstd::async\b", "std::async"),
        (r"(\.|->)\s*detach\s*\(", ".detach()"),
    ]
]


# mutex-annotation: the one file allowed to name raw lock types (it
# wraps them) and to define the escape-hatch macro.
ANNOTATION_SHIM = "src/util/thread_annotations.h"

RAW_MUTEX = re.compile(
    r"\bstd::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"recursive_timed_mutex|shared_timed_mutex)\b")

MUTEX_MEMBER = re.compile(r"\butil::Mutex\s+(\w+)\s*(\{[^;]*\})?\s*;")

TSA_ESCAPE = re.compile(
    r"\bVEGVISIR_NO_THREAD_SAFETY_ANALYSIS\b|"
    r"\bno_thread_safety_analysis\b")


def strip_code(text):
    """Blanks comments and string/char literals, preserving newlines
    and length so match offsets map back to real positions."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append(re.sub(r"[^\n]", " ", text[i:j]))
            i = j
        elif c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            # Keep the quotes so literal args remain recognisable.
            out.append(c + " " * (j - i - 2) + (c if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def parse_metric_tables(root):
    """Reads the declared-name tables out of metric_names.h."""
    text = (root / "src/telemetry/metric_names.h").read_text()
    tables = {}
    for array, kind in [
        ("kCounters", "counter"),
        ("kGauges", "gauge"),
        ("kHistograms", "histogram"),
        ("kTraceNames", "trace"),
    ]:
        m = re.search(array + r"\[\]\s*=\s*\{(.*?)\};", text, re.S)
        if not m:
            sys.exit(f"metric_names.h: table {array} not found")
        tables[kind] = set(re.findall(r'"([^"]+)"', m.group(1)))
    return tables


def declared(tables, kind, name):
    return name in tables[kind]


def pattern_resolves(tables, kind, pattern):
    """A `lint: metric-name` pattern: exact name or `prefix.*`."""
    if pattern.endswith(".*"):
        prefix = pattern[:-1]  # keep the dot
        return any(n.startswith(prefix) for n in tables[kind])
    return declared(tables, kind, pattern)


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


def check_wall_clock(rel, stripped, findings):
    if rel.startswith(CLOCK_OWNER):
        return
    lines = stripped.splitlines()
    raw_lines = None
    for regex, what in WALL_CLOCK_PATTERNS:
        for m in regex.finditer(stripped):
            line = line_of(stripped, m.start())
            if raw_lines is None:
                raw_lines = lines
            findings.append(
                (rel, line, "no-wall-clock",
                 f"{what} is banned outside {CLOCK_OWNER}; draw time from "
                 "the Simulator and randomness from util/rng.h")
            )


def check_metric_names(rel, text, stripped, tables, findings):
    if rel in METRIC_MACHINERY:
        return
    raw_lines = text.splitlines()
    for m in re.finditer(r"\b(" + "|".join(METRIC_METHODS) + r")\s*\(",
                         stripped):
        method = m.group(1)
        kind = METRIC_METHODS[method]
        line = line_of(stripped, m.start())
        arg = stripped[m.end():m.end() + 200].lstrip()
        if arg.startswith('"'):
            # Literal name: read it from the unstripped text.
            lit = re.match(r'\s*"((?:[^"\\]|\\.)*)"',
                           text[m.end():m.end() + 200].lstrip("\n"))
            lit = lit or re.search(r'"((?:[^"\\]|\\.)*)"',
                                   text[m.end():m.end() + 200])
            name = lit.group(1) if lit else ""
            if not declared(tables, kind, name):
                findings.append(
                    (rel, line, "metric-names",
                     f'{method}("{name}") is not declared in '
                     "src/telemetry/metric_names.h")
                )
        elif re.match(r"^(const\s|std::string|\s*\))", arg):
            continue  # parameter declaration, not a call
        else:
            # Dynamic name: require an annotation in the same paragraph
            # (scanning upward until a blank line) above the call.
            ann = None
            i = line - 2  # 0-based index of the line above the call
            while i >= 0 and raw_lines[i].strip():
                am = re.search(r"//\s*lint:\s*metric-name\s+(.*)$",
                               raw_lines[i])
                if am:
                    ann = am.group(1).split()
                    break
                i -= 1
            if ann is None:
                findings.append(
                    (rel, line, "metric-names",
                     f"dynamic name passed to {method} without a "
                     "`// lint: metric-name <pattern>...` annotation")
                )
                continue
            for pattern in ann:
                if not pattern_resolves(tables, kind, pattern):
                    findings.append(
                        (rel, line, "metric-names",
                         f"annotation pattern '{pattern}' matches nothing "
                         "in src/telemetry/metric_names.h")
                    )


def check_decode_status(rel, stripped, findings):
    for m in DECODER_NAME.finditer(stripped):
        name = stripped[m.start():stripped.index("(", m.start())].strip()
        if name in NOT_A_DECODER:
            continue
        line = line_of(stripped, m.start())
        # The segment from the previous statement boundary to the call.
        seg_start = max(
            stripped.rfind(c, 0, m.start()) for c in ";{}")
        seg = stripped[seg_start + 1:m.start()]
        # Consumed: assigned, returned, nested in an expression, or
        # wrapped in a macro/condition (all introduce one of these).
        if re.search(r"[=(!]|\breturn\b|\bco_return\b", seg):
            continue
        prefix = seg.strip()
        # A qualifier chain right before the name belongs to the callee
        # (`Transaction::Decode(...)` call) unless a return type
        # precedes it (`Status Transaction::Decode(...)` definition).
        head = re.sub(r"[\w~]+(::[\w~]+)*(::)?$", "", prefix).strip()
        if prefix == "" or prefix.endswith((".", "->")) or (
                prefix.endswith("::") and head == ""):
            findings.append(
                (rel, line, "checked-decode",
                 f"result of {name}() is discarded; decode/parse results "
                 "must be consumed (assign, return, wrap, or (void)-cast)")
            )
            continue
        # Otherwise this is a declaration or definition: its return
        # type (in `prefix`) must be Status/StatusOr.
        if not STATUS_RETURN.search(prefix):
            findings.append(
                (rel, line, "checked-decode",
                 f"{name}() must return Status or StatusOr "
                 "(add it to the allowlist in vegvisir_lint.py if it is "
                 "not a byte decoder)")
            )


def match_brace(text, open_pos):
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def decoder_bodies(stripped):
    """Yields (name, body_start, body_end) for each Decode*/Parse*/
    Deserialize* function DEFINITION (call sites and declarations are
    followed by `;`/`)` rather than a brace)."""
    for m in DECODER_NAME.finditer(stripped):
        open_paren = stripped.index("(", m.start())
        depth = 0
        close = None
        for i in range(open_paren, len(stripped)):
            if stripped[i] == "(":
                depth += 1
            elif stripped[i] == ")":
                depth -= 1
                if depth == 0:
                    close = i + 1
                    break
        if close is None:
            continue
        after = re.match(r"\s*(?:const\s*)?\{", stripped[close:])
        if not after:
            continue
        body_start = close + after.end()
        yield (m.group(0).rstrip("( \t"), body_start,
               match_brace(stripped, body_start - 1))


def check_literal_clamps(rel, stripped, findings):
    for name, start, end in decoder_bodies(stripped):
        body = stripped[start:end]
        for line_text in body.split("\n"):
            if "limits::" in line_text or "sizeof" in line_text:
                continue
            for cm in LITERAL_CLAMP.finditer(line_text):
                value = int(cm.group(1), 0)
                if value <= MAX_BARE_LITERAL:
                    continue
                line = line_of(stripped, start + body.index(line_text))
                findings.append(
                    (rel, line, "decode-literal-clamp",
                     f"{name}() compares against bare literal "
                     f"{cm.group(1)}; decode bounds must be named "
                     "constants in src/serial/limits.h")
                )


def check_thread_containment(rel, text, stripped, findings):
    if not rel.startswith(THREAD_OWNER):
        for regex, what in THREAD_API_BANNED:
            for m in regex.finditer(stripped):
                findings.append(
                    (rel, line_of(stripped, m.start()), "thread-containment",
                     f"{what} is banned outside {THREAD_OWNER}; submit work "
                     "to exec::ThreadPool instead")
                )
        return
    for regex, what in THREAD_API_BANNED_IN_OWNER:
        for m in regex.finditer(stripped):
            findings.append(
                (rel, line_of(stripped, m.start()), "thread-containment",
                 f"{what} is banned even in {THREAD_OWNER}; workers are "
                 "joined std::threads owned by the pool")
            )
    raw_lines = text.splitlines()
    for m in THREAD_CONSTRUCTION.finditer(stripped):
        line = line_of(stripped, m.start())
        annotated = any(
            re.search(r"//\s*lint:\s*thread-owner\b", raw_lines[i])
            for i in range(max(0, line - 4), line)
            if i < len(raw_lines)
        )
        if not annotated:
            findings.append(
                (rel, line, "thread-containment",
                 "std::thread construction without a "
                 "`// lint: thread-owner` annotation on one of the three "
                 "preceding lines")
            )


def check_mutex_annotation(rel, text, stripped, findings):
    if rel == ANNOTATION_SHIM:
        return
    for m in RAW_MUTEX.finditer(stripped):
        findings.append(
            (rel, line_of(stripped, m.start()), "mutex-annotation",
             f"std::{m.group(1)} is banned in src/; declare the lock as "
             "util::Mutex (src/util/thread_annotations.h) so clang's "
             "thread-safety analysis sees it")
        )
    # Scans RAW text, like rule 5: escapes hide in macros and comments.
    for m in TSA_ESCAPE.finditer(text):
        findings.append(
            (rel, line_of(text, m.start()), "mutex-annotation",
             "inline thread-safety-analysis suppression is banned in "
             "src/; restructure the code so the analysis passes "
             "(see the shim header for the sanctioned idioms)")
        )
    for m in MUTEX_MEMBER.finditer(stripped):
        name = m.group(1)
        init = m.group(2) or ""
        if "LockRank::" not in init:
            findings.append(
                (rel, line_of(stripped, m.start()), "mutex-rank",
                 f"util::Mutex member '{name}' declares no LockRank; "
                 "every mutex in src/ takes its place in the hierarchy "
                 "via brace-init, e.g. util::Mutex mu_{util::LockRank::"
                 "kExecPool}; (src/util/lock_ranks.h)")
            )
        user = re.search(
            r"VEGVISIR_(?:PT_)?GUARDED_BY\s*\(\s*" + re.escape(name) +
            r"\s*\)|VEGVISIR_(?:REQUIRES|ACQUIRE|RELEASE|TRY_ACQUIRE|"
            r"EXCLUDES|ASSERT_CAPABILITY)(?:_SHARED)?\s*\([^)]*\b" +
            re.escape(name) + r"\b", stripped)
        if user is None:
            findings.append(
                (rel, line_of(stripped, m.start()), "mutex-annotation",
                 f"util::Mutex member '{name}' has no GUARDED_BY/"
                 "REQUIRES/ACQUIRE user in this file; an unannotated "
                 "lock protects nothing the analysis can check")
            )


def check_taint_suppressions(rel, text, findings):
    # Scans RAW text: suppressions hide in comments by design.
    for m in TAINT_SUPPRESSION.finditer(text):
        findings.append(
            (rel, line_of(text, m.start()), "no-inline-taint-suppression",
             "inline wire-taint suppressions are banned in src/; add a "
             "justified entry to tools/analyzer/wire_taint_allow.txt")
        )


def main():
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    if not (root / "src/telemetry/metric_names.h").exists():
        sys.exit(f"{root} does not look like the repo root")
    tables = parse_metric_tables(root)
    findings = []
    for path in sorted((root / "src").rglob("*")):
        if path.suffix not in (".h", ".cpp"):
            continue
        rel = str(path.relative_to(root))
        text = path.read_text()
        stripped = strip_code(text)
        check_wall_clock(rel, stripped, findings)
        check_metric_names(rel, text, stripped, tables, findings)
        check_decode_status(rel, stripped, findings)
        check_literal_clamps(rel, stripped, findings)
        check_thread_containment(rel, text, stripped, findings)
        check_mutex_annotation(rel, text, stripped, findings)
        check_taint_suppressions(rel, text, findings)
    for rel, line, rule, message in sorted(findings):
        print(f"{rel}:{line}: {rule}: {message}")
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"vegvisir_lint: src/ clean "
          f"({sum(len(v) for v in tables.values())} declared metric names)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
