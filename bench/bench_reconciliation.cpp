// E1 + E10 — reconciliation bandwidth.
//
// Paper claim (§VI): frontier-set reconciliation is "considerably
// more efficient than exchanging entire DAGs", and "more efficient
// DAG reconciliation algorithms" (our hash-first mode) can do better
// still. Two replicas share a 64-block history; the responder then
// runs `d` blocks ahead. We measure the bytes the initiator moves to
// catch up, for:
//   full-dag   — naive baseline: ship everything, every time
//   block-push — Algorithm 1 exactly as published
//   hash-first — the future-work ablation (hashes first, bodies on
//                demand)
// in two divergence shapes: a linear chain (deep) and a bush of
// concurrent branches (wide, as after a many-way partition).
//
// The second sweep (BENCH_recondiff.json) is reconciliation v2's
// headline experiment: delta sizes x DAG depths for the paper
// algorithm, full exchange and setdiff. It shows setdiff's bytes
// scaling with the delta and staying flat in depth, and locates the
// crossover where the negotiation overhead (probe + sketch + result)
// pays for itself against Algorithm 1.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baseline/full_exchange.h"
#include "bench_common.h"
#include "chain/genesis.h"
#include "crypto/drbg.h"
#include "node/node.h"
#include "recon/session.h"

using namespace vegvisir;

namespace {

struct Pair {
  std::unique_ptr<node::Node> initiator;
  std::unique_ptr<node::Node> responder;
};

crypto::KeyPair OwnerKeys() {
  crypto::Drbg drbg(std::uint64_t{1});
  return crypto::KeyPair::Generate(drbg);
}

// Builds a pair sharing `shared` history blocks, with the responder
// `d` blocks ahead, shaped as a chain or a bush.
Pair MakePair(int shared, int d, bool bush) {
  static const crypto::KeyPair owner = OwnerKeys();
  static const chain::Block genesis =
      chain::GenesisBuilder("recon-bench").WithTimestamp(1).Build("owner",
                                                                  owner);
  node::NodeConfig cfg;
  cfg.user_id = "owner";
  cfg.telemetry = &benchio::Sink();
  Pair p;
  p.initiator = std::make_unique<node::Node>(cfg, genesis, owner);
  p.responder = std::make_unique<node::Node>(cfg, genesis, owner);
  p.initiator->SetTime(1'000'000);
  p.responder->SetTime(1'000'000);

  for (int i = 0; i < shared; ++i) {
    const auto h = p.responder->AddWitnessBlock();
    (void)p.initiator->OfferBlock(*p.responder->dag().Find(*h));
  }

  if (bush) {
    // d concurrent children of the shared head (a d-way partition's
    // worth of frontier width).
    const auto head = p.responder->dag().Frontier()[0];
    const std::uint64_t base_ts =
        p.responder->dag().TimestampOf(head) + 1;
    for (int i = 0; i < d; ++i) {
      chain::BlockHeader h;
      h.user_id = "owner";
      h.timestamp_ms = base_ts + static_cast<std::uint64_t>(i);
      h.parents = {head};
      const auto verdict = p.responder->OfferBlock(
          chain::Block::Create(std::move(h), {}, owner));
      if (verdict != chain::BlockVerdict::kValid) {
        std::fprintf(stderr, "bush block rejected\n");
      }
    }
  } else {
    for (int i = 0; i < d; ++i) (void)p.responder->AddWitnessBlock();
  }
  return p;
}

struct Row {
  std::uint64_t bytes;
  std::uint64_t rounds;
  std::uint64_t blocks;
};

Row RunFrontier(recon::ReconConfig::Mode mode, int shared, int d, bool bush) {
  Pair p = MakePair(shared, d, bush);
  recon::ReconConfig cfg;
  cfg.mode = mode;
  recon::SessionStats stats;
  recon::RunLocalSession(p.initiator.get(), p.responder.get(), cfg, &stats);
  return Row{stats.bytes_received + stats.bytes_sent, stats.rounds,
             stats.blocks_received};
}

const char* StrategyName(recon::ReconConfig::Mode mode) {
  switch (mode) {
    case recon::ReconConfig::Mode::kBlockPush:
      return "paper";
    case recon::ReconConfig::Mode::kHashFirst:
      return "hashfirst";
    case recon::ReconConfig::Mode::kBloom:
      return "bloom";
    case recon::ReconConfig::Mode::kSetDiff:
      return "setdiff";
  }
  return "unknown";
}

Row RunFull(int shared, int d, bool bush);

// The delta x depth x strategy sweep behind BENCH_recondiff.json.
// Chain-shaped runs: the responder is `delta` blocks ahead of a
// `depth`-block shared history.
void RunDiffSweep() {
  std::printf(
      "\nreconciliation v2: initiator bytes received, by strategy\n"
      "(shared depth x delta; chain shape)\n");
  std::printf("%-6s %-6s | %12s | %12s %7s | %12s %7s\n", "depth", "delta",
              "full B", "paper B", "rounds", "setdiff B", "rounds");
  std::vector<telemetry::BenchValue> rows;
  const recon::ReconConfig::Mode kStrategies[] = {
      recon::ReconConfig::Mode::kBlockPush,
      recon::ReconConfig::Mode::kSetDiff,
  };
  for (const int depth : {64, 256, 1024}) {
    for (const int delta : {1, 4, 16, 64, 256}) {
      Row per[2];
      for (int s = 0; s < 2; ++s) {
        Pair p = MakePair(depth, delta, /*bush=*/false);
        recon::ReconConfig cfg;
        cfg.mode = kStrategies[s];
        recon::SessionStats stats;
        recon::RunLocalSession(p.initiator.get(), p.responder.get(), cfg,
                               &stats);
        per[s] = Row{stats.bytes_received, stats.rounds,
                     stats.blocks_received};
        const std::string key = std::string("recondiff.strategy=") +
                                StrategyName(kStrategies[s]) +
                                ".depth=" + std::to_string(depth) +
                                ".delta=" + std::to_string(delta);
        rows.push_back({key + ".bytes_received",
                        static_cast<double>(stats.bytes_received)});
        rows.push_back(
            {key + ".bytes_sent", static_cast<double>(stats.bytes_sent)});
        rows.push_back({key + ".rounds", static_cast<double>(stats.rounds)});
      }
      const Row full = RunFull(depth, delta, /*bush=*/false);
      const std::string key = std::string("recondiff.strategy=full.depth=") +
                              std::to_string(depth) +
                              ".delta=" + std::to_string(delta);
      rows.push_back(
          {key + ".bytes_received", static_cast<double>(full.bytes)});
      rows.push_back({key + ".rounds", static_cast<double>(full.rounds)});
      std::printf("%-6d %-6d | %12llu | %12llu %7llu | %12llu %7llu\n", depth,
                  delta, static_cast<unsigned long long>(full.bytes),
                  static_cast<unsigned long long>(per[0].bytes),
                  static_cast<unsigned long long>(per[0].rounds),
                  static_cast<unsigned long long>(per[1].bytes),
                  static_cast<unsigned long long>(per[1].rounds));
    }
  }
  std::printf(
      "\nExpected shape: setdiff bytes track delta and stay flat as\n"
      "depth grows; the paper algorithm re-ships level sets, so its\n"
      "cost grows superlinearly in delta. The crossover (where the\n"
      "probe+sketch overhead pays off) sits at small single-digit\n"
      "deltas and moves in setdiff's favour as the DAG deepens.\n");
  (void)telemetry::WriteBenchJson("recondiff",
                                  benchio::Sink().metrics.TakeSnapshot(),
                                  std::move(rows));
}

Row RunFull(int shared, int d, bool bush) {
  Pair p = MakePair(shared, d, bush);
  const auto stats =
      baseline::RunFullDagExchange(p.initiator.get(), p.responder.get());
  return Row{stats.bytes_received + stats.bytes_sent, stats.rounds,
             stats.blocks_received};
}

}  // namespace

int main() {
  constexpr int kShared = 64;
  std::printf("E1/E10: reconciliation cost, shared history = %d blocks\n",
              kShared);
  std::printf("%-6s %-6s | %12s | %12s %7s | %12s %7s | %12s %7s\n", "shape",
              "d", "full-dag B", "block-push B", "rounds", "hash-first B",
              "rounds", "bloom B", "rounds");
  for (const bool bush : {false, true}) {
    for (const int d : {1, 2, 4, 8, 16, 32, 64}) {
      const Row full = RunFull(kShared, d, bush);
      const Row paper =
          RunFrontier(recon::ReconConfig::Mode::kBlockPush, kShared, d, bush);
      const Row hashed =
          RunFrontier(recon::ReconConfig::Mode::kHashFirst, kShared, d, bush);
      const Row bloom =
          RunFrontier(recon::ReconConfig::Mode::kBloom, kShared, d, bush);
      std::printf(
          "%-6s %-6d | %12llu | %12llu %7llu | %12llu %7llu | %12llu %7llu\n",
          bush ? "bush" : "chain", d,
          static_cast<unsigned long long>(full.bytes),
          static_cast<unsigned long long>(paper.bytes),
          static_cast<unsigned long long>(paper.rounds),
          static_cast<unsigned long long>(hashed.bytes),
          static_cast<unsigned long long>(hashed.rounds),
          static_cast<unsigned long long>(bloom.bytes),
          static_cast<unsigned long long>(bloom.rounds));
    }
  }
  std::printf(
      "\nExpected shape: full-dag cost is flat in d (always ~shared+d\n"
      "blocks); frontier protocols scale with d. Hash-first beats\n"
      "block-push on deep chains (level escalation re-ships bodies);\n"
      "bloom closes any gap shape in one round for a filter-sized\n"
      "overhead (~10 bits per known block).\n");
  RunDiffSweep();
  benchio::WriteBench("reconciliation");
  return 0;
}
