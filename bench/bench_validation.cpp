// E7 — block pipeline microbenchmarks.
//
// Device feasibility: how fast can an IoT-class core create, encode,
// validate and apply blocks? (Paper §IV-E's validation checklist is
// the hot path of every reconciliation merge.)
#include <benchmark/benchmark.h>

#include "bench_common.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "chain/block.h"
#include "chain/genesis.h"
#include "chain/validation.h"
#include "crypto/drbg.h"
#include "csm/membership.h"
#include "csm/state_machine.h"
#include "exec/pool.h"
#include "exec/verifier.h"

namespace vegvisir::chain {
namespace {

crypto::KeyPair OwnerKeys() {
  crypto::Drbg drbg(std::uint64_t{1});
  return crypto::KeyPair::Generate(drbg);
}

Transaction MakeTx(int i) {
  Transaction tx;
  tx.crdt_name = "H";
  tx.op = "add";
  tx.args = {crdt::Value::OfStr("record-" + std::to_string(i))};
  return tx;
}

std::vector<Transaction> MakeTxs(int n) {
  std::vector<Transaction> txs;
  for (int i = 0; i < n; ++i) txs.push_back(MakeTx(i));
  return txs;
}

void BM_BlockCreateAndSign(benchmark::State& state) {
  const crypto::KeyPair owner = OwnerKeys();
  const Block genesis = GenesisBuilder("bench").Build("owner", owner);
  const auto txs = MakeTxs(static_cast<int>(state.range(0)));
  std::uint64_t ts = 1'000;
  for (auto _ : state) {
    BlockHeader h;
    h.user_id = "owner";
    h.timestamp_ms = ts++;
    h.parents = {genesis.hash()};
    benchmark::DoNotOptimize(Block::Create(std::move(h), txs, owner));
  }
  state.SetLabel(std::to_string(state.range(0)) + " txs");
}
BENCHMARK(BM_BlockCreateAndSign)->Arg(0)->Arg(1)->Arg(16)->Arg(64);

void BM_BlockSerializeDeserialize(benchmark::State& state) {
  const crypto::KeyPair owner = OwnerKeys();
  const Block genesis = GenesisBuilder("bench").Build("owner", owner);
  BlockHeader h;
  h.user_id = "owner";
  h.timestamp_ms = 1'000;
  h.parents = {genesis.hash()};
  const Block block = Block::Create(
      std::move(h), MakeTxs(static_cast<int>(state.range(0))), owner);
  const Bytes raw = block.Serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Block::Deserialize(raw));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(raw.size()));
}
BENCHMARK(BM_BlockSerializeDeserialize)->Arg(1)->Arg(16)->Arg(64);

void BM_ValidateBlock(benchmark::State& state) {
  const crypto::KeyPair owner = OwnerKeys();
  const Block genesis = GenesisBuilder("bench").Build("owner", owner);
  Dag dag(genesis);
  csm::Membership membership;
  const auto cert =
      Certificate::Deserialize(genesis.transactions()[0].args[0].AsBytes());
  (void)membership.Add(*cert, genesis.hash());

  BlockHeader h;
  h.user_id = "owner";
  h.timestamp_ms = 1'000;
  h.parents = {genesis.hash()};
  const Block block = Block::Create(
      std::move(h), MakeTxs(static_cast<int>(state.range(0))), owner);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ValidateBlock(block, dag, membership, 10'000));
  }
  benchio::Sink().metrics.GetCounter("bench.validation.blocks_validated")
      .Inc(static_cast<std::uint64_t>(state.iterations()));
  state.SetLabel(std::to_string(state.range(0)) + " txs");
}
BENCHMARK(BM_ValidateBlock)->Arg(0)->Arg(16)->Arg(64);

void BM_DagInsert(benchmark::State& state) {
  const crypto::KeyPair owner = OwnerKeys();
  const Block genesis = GenesisBuilder("bench").Build("owner", owner);
  // Pre-build a linear chain of blocks to insert.
  std::vector<Block> blocks;
  BlockHash parent = genesis.hash();
  for (int i = 0; i < 4096; ++i) {
    BlockHeader h;
    h.user_id = "owner";
    h.timestamp_ms = 1'000 + static_cast<std::uint64_t>(i);
    h.parents = {parent};
    blocks.push_back(Block::Create(std::move(h), {}, owner));
    parent = blocks.back().hash();
  }
  std::size_t i = 0;
  Dag dag(genesis);
  for (auto _ : state) {
    if (i == blocks.size()) {
      state.PauseTiming();
      dag = Dag(genesis);
      i = 0;
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(dag.Insert(blocks[i++]));
  }
}
BENCHMARK(BM_DagInsert);

void BM_CsmApplyBlock(benchmark::State& state) {
  const crypto::KeyPair owner = OwnerKeys();
  const Block genesis = GenesisBuilder("bench").Build("owner", owner);

  // One create + a run of app-op blocks.
  std::vector<Block> blocks;
  BlockHash parent = genesis.hash();
  std::uint64_t ts = 1'000;
  {
    BlockHeader h;
    h.user_id = "owner";
    h.timestamp_ms = ts++;
    h.parents = {parent};
    blocks.push_back(Block::Create(
        std::move(h),
        {csm::StateMachine::MakeCreateTx("H", crdt::CrdtType::kGSet,
                                         crdt::ValueType::kStr,
                                         csm::AclPolicy::AllowAll())},
        owner));
    parent = blocks.back().hash();
  }
  for (int i = 0; i < 2048; ++i) {
    BlockHeader h;
    h.user_id = "owner";
    h.timestamp_ms = ts++;
    h.parents = {parent};
    blocks.push_back(Block::Create(std::move(h), {MakeTx(i)}, owner));
    parent = blocks.back().hash();
  }

  std::size_t i = 0;
  // Apply through the shared bench sink so csm.applied_* land in the
  // registry dump.
  auto sm = std::make_unique<csm::StateMachine>(csm::StateMachineConfig{},
                                                &benchio::Sink());
  sm->ApplyBlock(genesis);
  for (auto _ : state) {
    if (i == blocks.size()) {
      state.PauseTiming();
      sm = std::make_unique<csm::StateMachine>(csm::StateMachineConfig{},
                                               &benchio::Sink());
      sm->ApplyBlock(genesis);
      i = 0;
      state.ResumeTiming();
    }
    sm->ApplyBlock(blocks[i++]);
  }
}
BENCHMARK(BM_CsmApplyBlock);

void BM_FrontierLevelQuery(benchmark::State& state) {
  const crypto::KeyPair owner = OwnerKeys();
  const Block genesis = GenesisBuilder("bench").Build("owner", owner);
  Dag dag(genesis);
  BlockHash parent = genesis.hash();
  for (int i = 0; i < 1000; ++i) {
    BlockHeader h;
    h.user_id = "owner";
    h.timestamp_ms = 1'000 + static_cast<std::uint64_t>(i);
    h.parents = {parent};
    Block b = Block::Create(std::move(h), {}, owner);
    parent = b.hash();
    (void)dag.Insert(std::move(b));
  }
  const int level = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dag.FrontierLevel(level));
  }
  state.SetLabel("level " + std::to_string(level));
}
BENCHMARK(BM_FrontierLevelQuery)->Arg(1)->Arg(8)->Arg(64);

// Thread-count sweep over the batched-signature ingest path: enqueue
// one wave of pre-verification jobs for a chain of signed blocks on a
// 1/2/4/8-worker pool and drain every verdict through the blocking
// Lookup, exactly like the recon/gossip ingest pipeline does. Emits
// BENCH_parallel_validation.json with blocks/sec per width and the
// speedup over the serial (threads=1) leg; Ed25519 verification
// dominates, so the speedup tracks available cores.
void RunParallelValidationSweep() {
  const crypto::KeyPair owner = OwnerKeys();
  const Block genesis = GenesisBuilder("bench").Build("owner", owner);
  csm::Membership membership;
  const auto cert =
      Certificate::Deserialize(genesis.transactions()[0].args[0].AsBytes());
  (void)membership.Add(*cert, genesis.hash());

  constexpr int kBlocks = 256;
  constexpr int kReps = 3;
  std::vector<Block> blocks;
  BlockHash parent = genesis.hash();
  for (int i = 0; i < kBlocks; ++i) {
    BlockHeader h;
    h.user_id = "owner";
    h.timestamp_ms = 1'000 + static_cast<std::uint64_t>(i);
    h.parents = {parent};
    blocks.push_back(Block::Create(std::move(h), MakeTxs(4), owner));
    parent = blocks.back().hash();
  }
  std::vector<const Block*> ptrs;
  ptrs.reserve(blocks.size());
  for (const Block& b : blocks) ptrs.push_back(&b);

  // The sweep gets its own sink so the exec.* counters in the JSON
  // reflect only this experiment, not the microbenchmarks above.
  telemetry::Telemetry sink;
  std::vector<telemetry::BenchValue> extra;
  double serial_rate = 0.0;
  for (const unsigned threads : {1U, 2U, 4U, 8U}) {
    exec::ExecConfig cfg;
    cfg.threads = threads;
    exec::ThreadPool pool(cfg, &sink);
    double best = 0.0;  // best-of-reps damps scheduler noise
    for (int rep = 0; rep < kReps; ++rep) {
      exec::BatchVerifier verifier(&pool, &sink);
      const auto start = std::chrono::steady_clock::now();
      verifier.Enqueue(MakeVerifyJobs(ptrs, membership));
      for (const Block& b : blocks) {
        const auto verdict = verifier.Lookup(b.hash(), cert->public_key);
        if (!verdict.has_value() || !*verdict) {
          std::fprintf(stderr,
                       "parallel sweep: block failed pre-verification\n");
          std::exit(1);
        }
      }
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      best = std::max(best, static_cast<double>(kBlocks) / elapsed.count());
    }
    if (threads == 1) serial_rate = best;
    extra.push_back({"blocks_per_sec_t" + std::to_string(threads), best});
    if (threads > 1 && serial_rate > 0.0) {
      extra.push_back(
          {"speedup_t" + std::to_string(threads), best / serial_rate});
    }
  }
  extra.push_back({"block_count", static_cast<double>(kBlocks)});
  extra.push_back({"hardware_concurrency",
                   static_cast<double>(exec::HardwareConcurrency())});
  (void)telemetry::WriteBenchJson("parallel_validation",
                                  sink.metrics.TakeSnapshot(),
                                  std::move(extra));
}

}  // namespace
}  // namespace vegvisir::chain

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  vegvisir::chain::RunParallelValidationSweep();
  vegvisir::benchio::WriteBench("validation");
  return 0;
}
