// E7 — block pipeline microbenchmarks.
//
// Device feasibility: how fast can an IoT-class core create, encode,
// validate and apply blocks? (Paper §IV-E's validation checklist is
// the hot path of every reconciliation merge.)
#include <benchmark/benchmark.h>

#include "bench_common.h"

#include <memory>

#include "chain/block.h"
#include "chain/genesis.h"
#include "chain/validation.h"
#include "crypto/drbg.h"
#include "csm/membership.h"
#include "csm/state_machine.h"

namespace vegvisir::chain {
namespace {

crypto::KeyPair OwnerKeys() {
  crypto::Drbg drbg(std::uint64_t{1});
  return crypto::KeyPair::Generate(drbg);
}

Transaction MakeTx(int i) {
  Transaction tx;
  tx.crdt_name = "H";
  tx.op = "add";
  tx.args = {crdt::Value::OfStr("record-" + std::to_string(i))};
  return tx;
}

std::vector<Transaction> MakeTxs(int n) {
  std::vector<Transaction> txs;
  for (int i = 0; i < n; ++i) txs.push_back(MakeTx(i));
  return txs;
}

void BM_BlockCreateAndSign(benchmark::State& state) {
  const crypto::KeyPair owner = OwnerKeys();
  const Block genesis = GenesisBuilder("bench").Build("owner", owner);
  const auto txs = MakeTxs(static_cast<int>(state.range(0)));
  std::uint64_t ts = 1'000;
  for (auto _ : state) {
    BlockHeader h;
    h.user_id = "owner";
    h.timestamp_ms = ts++;
    h.parents = {genesis.hash()};
    benchmark::DoNotOptimize(Block::Create(std::move(h), txs, owner));
  }
  state.SetLabel(std::to_string(state.range(0)) + " txs");
}
BENCHMARK(BM_BlockCreateAndSign)->Arg(0)->Arg(1)->Arg(16)->Arg(64);

void BM_BlockSerializeDeserialize(benchmark::State& state) {
  const crypto::KeyPair owner = OwnerKeys();
  const Block genesis = GenesisBuilder("bench").Build("owner", owner);
  BlockHeader h;
  h.user_id = "owner";
  h.timestamp_ms = 1'000;
  h.parents = {genesis.hash()};
  const Block block = Block::Create(
      std::move(h), MakeTxs(static_cast<int>(state.range(0))), owner);
  const Bytes raw = block.Serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Block::Deserialize(raw));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(raw.size()));
}
BENCHMARK(BM_BlockSerializeDeserialize)->Arg(1)->Arg(16)->Arg(64);

void BM_ValidateBlock(benchmark::State& state) {
  const crypto::KeyPair owner = OwnerKeys();
  const Block genesis = GenesisBuilder("bench").Build("owner", owner);
  Dag dag(genesis);
  csm::Membership membership;
  const auto cert =
      Certificate::Deserialize(genesis.transactions()[0].args[0].AsBytes());
  (void)membership.Add(*cert, genesis.hash());

  BlockHeader h;
  h.user_id = "owner";
  h.timestamp_ms = 1'000;
  h.parents = {genesis.hash()};
  const Block block = Block::Create(
      std::move(h), MakeTxs(static_cast<int>(state.range(0))), owner);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ValidateBlock(block, dag, membership, 10'000));
  }
  benchio::Sink().metrics.GetCounter("bench.validation.blocks_validated")
      .Inc(static_cast<std::uint64_t>(state.iterations()));
  state.SetLabel(std::to_string(state.range(0)) + " txs");
}
BENCHMARK(BM_ValidateBlock)->Arg(0)->Arg(16)->Arg(64);

void BM_DagInsert(benchmark::State& state) {
  const crypto::KeyPair owner = OwnerKeys();
  const Block genesis = GenesisBuilder("bench").Build("owner", owner);
  // Pre-build a linear chain of blocks to insert.
  std::vector<Block> blocks;
  BlockHash parent = genesis.hash();
  for (int i = 0; i < 4096; ++i) {
    BlockHeader h;
    h.user_id = "owner";
    h.timestamp_ms = 1'000 + static_cast<std::uint64_t>(i);
    h.parents = {parent};
    blocks.push_back(Block::Create(std::move(h), {}, owner));
    parent = blocks.back().hash();
  }
  std::size_t i = 0;
  Dag dag(genesis);
  for (auto _ : state) {
    if (i == blocks.size()) {
      state.PauseTiming();
      dag = Dag(genesis);
      i = 0;
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(dag.Insert(blocks[i++]));
  }
}
BENCHMARK(BM_DagInsert);

void BM_CsmApplyBlock(benchmark::State& state) {
  const crypto::KeyPair owner = OwnerKeys();
  const Block genesis = GenesisBuilder("bench").Build("owner", owner);

  // One create + a run of app-op blocks.
  std::vector<Block> blocks;
  BlockHash parent = genesis.hash();
  std::uint64_t ts = 1'000;
  {
    BlockHeader h;
    h.user_id = "owner";
    h.timestamp_ms = ts++;
    h.parents = {parent};
    blocks.push_back(Block::Create(
        std::move(h),
        {csm::StateMachine::MakeCreateTx("H", crdt::CrdtType::kGSet,
                                         crdt::ValueType::kStr,
                                         csm::AclPolicy::AllowAll())},
        owner));
    parent = blocks.back().hash();
  }
  for (int i = 0; i < 2048; ++i) {
    BlockHeader h;
    h.user_id = "owner";
    h.timestamp_ms = ts++;
    h.parents = {parent};
    blocks.push_back(Block::Create(std::move(h), {MakeTx(i)}, owner));
    parent = blocks.back().hash();
  }

  std::size_t i = 0;
  // Apply through the shared bench sink so csm.applied_* land in the
  // registry dump.
  auto sm = std::make_unique<csm::StateMachine>(csm::StateMachineConfig{},
                                                &benchio::Sink());
  sm->ApplyBlock(genesis);
  for (auto _ : state) {
    if (i == blocks.size()) {
      state.PauseTiming();
      sm = std::make_unique<csm::StateMachine>(csm::StateMachineConfig{},
                                               &benchio::Sink());
      sm->ApplyBlock(genesis);
      i = 0;
      state.ResumeTiming();
    }
    sm->ApplyBlock(blocks[i++]);
  }
}
BENCHMARK(BM_CsmApplyBlock);

void BM_FrontierLevelQuery(benchmark::State& state) {
  const crypto::KeyPair owner = OwnerKeys();
  const Block genesis = GenesisBuilder("bench").Build("owner", owner);
  Dag dag(genesis);
  BlockHash parent = genesis.hash();
  for (int i = 0; i < 1000; ++i) {
    BlockHeader h;
    h.user_id = "owner";
    h.timestamp_ms = 1'000 + static_cast<std::uint64_t>(i);
    h.parents = {parent};
    Block b = Block::Create(std::move(h), {}, owner);
    parent = b.hash();
    (void)dag.Insert(std::move(b));
  }
  const int level = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dag.FrontierLevel(level));
  }
  state.SetLabel("level " + std::to_string(level));
}
BENCHMARK(BM_FrontierLevelQuery)->Arg(1)->Arg(8)->Arg(64);

}  // namespace
}  // namespace vegvisir::chain

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  vegvisir::benchio::WriteBench("validation");
  return 0;
}
