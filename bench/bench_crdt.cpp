// E8 — CRDT operation and merge-cost microbenchmarks.
//
// Quantifies what the paper's CRDT restriction costs in compute:
// per-operation apply latency for every CRDT type and the price of a
// convergence fingerprint as state grows.
#include <benchmark/benchmark.h>

#include "bench_common.h"

#include "crdt/crdt.h"
#include "util/rng.h"

namespace vegvisir::crdt {
namespace {

OpContext MakeCtx(std::uint64_t i) {
  return OpContext{"tx" + std::to_string(i), "user-" + std::to_string(i % 5),
                   i + 1};
}

// One representative operation per CRDT type.
void ApplyOne(Crdt* crdt, CrdtType type, std::uint64_t i, Rng* rng) {
  const OpContext ctx = MakeCtx(i);
  switch (type) {
    case CrdtType::kGSet:
    case CrdtType::kTwoPSet:
    case CrdtType::kOrSet:
      crdt->Apply("add",
                  std::vector<Value>{Value::OfStr(
                      "elem-" + std::to_string(rng->NextBelow(1000)))},
                  ctx);
      break;
    case CrdtType::kGCounter:
      crdt->Apply("inc", std::vector<Value>{Value::OfInt(1)}, ctx);
      break;
    case CrdtType::kPnCounter:
      crdt->Apply(i % 2 == 0 ? "inc" : "dec",
                  std::vector<Value>{Value::OfInt(1)}, ctx);
      break;
    case CrdtType::kLwwRegister:
    case CrdtType::kMvRegister:
      crdt->Apply("set",
                  std::vector<Value>{Value::OfStr(std::to_string(i))}, ctx);
      break;
    case CrdtType::kLwwMap:
      crdt->Apply("put",
                  std::vector<Value>{
                      Value::OfStr("k" + std::to_string(rng->NextBelow(100))),
                      Value::OfStr(std::to_string(i))},
                  ctx);
      break;
    case CrdtType::kRga:
      crdt->Apply("insert",
                  std::vector<Value>{Value::OfStr(""),
                                     Value::OfStr(std::to_string(i))},
                  ctx);
      break;
    case CrdtType::kEwFlag:
      crdt->Apply("enable", std::vector<Value>{}, ctx);
      break;
  }
}

ValueType ElemFor(CrdtType type) {
  return (type == CrdtType::kGCounter || type == CrdtType::kPnCounter)
             ? ValueType::kInt
             : ValueType::kStr;
}

void BM_CrdtApply(benchmark::State& state) {
  const auto type = static_cast<CrdtType>(state.range(0));
  const auto crdt = CreateCrdt(type, ElemFor(type));
  Rng rng(1);
  std::uint64_t i = 0;
  for (auto _ : state) {
    ApplyOne(crdt.get(), type, i++, &rng);
  }
  benchio::Sink().metrics.GetCounter("bench.crdt.ops_applied")
      .Inc(static_cast<std::uint64_t>(state.iterations()));
  state.SetLabel(CrdtTypeName(type));
}
BENCHMARK(BM_CrdtApply)->DenseRange(0, 9, 1);

void BM_CrdtFingerprint(benchmark::State& state) {
  const auto type = static_cast<CrdtType>(state.range(0));
  const auto crdt = CreateCrdt(type, ElemFor(type));
  Rng rng(1);
  for (std::uint64_t i = 0; i < static_cast<std::uint64_t>(state.range(1));
       ++i) {
    ApplyOne(crdt.get(), type, i, &rng);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(crdt->StateFingerprint());
  }
  state.SetLabel(std::string(CrdtTypeName(type)) + "/" +
                 std::to_string(state.range(1)) + "ops");
}
BENCHMARK(BM_CrdtFingerprint)
    ->Args({0, 100})
    ->Args({0, 1000})
    ->Args({2, 1000})
    ->Args({7, 1000});

void BM_CrdtCheckOp(benchmark::State& state) {
  const auto crdt = CreateCrdt(CrdtType::kGSet, ValueType::kStr);
  const std::vector<Value> args = {Value::OfStr("x")};
  for (auto _ : state) {
    benchmark::DoNotOptimize(crdt->CheckOp("add", args));
  }
}
BENCHMARK(BM_CrdtCheckOp);

}  // namespace
}  // namespace vegvisir::crdt

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  vegvisir::benchio::WriteBench("crdt");
  return 0;
}
