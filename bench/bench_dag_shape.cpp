// E11 — DAG shape (paper Fig. 1) vs an IOTA-style tangle.
//
// Vegvisir's submit rule ("every known leaf becomes a parent") reins
// branches in: frontier width reflects *actual concurrency* (gossip
// lag, partitions), not a protocol choice. The tangle's tip count, by
// contrast, is a random process of its tip-selection rule. We sweep
// gossip period and partition count and report frontier width and
// mean parent count; then the tangle's tip behaviour for the same
// transaction count.
#include <cstdio>

#include "bench_common.h"
#include "baseline/tangle.h"
#include "node/cluster.h"
#include "sim/topology.h"

using namespace vegvisir;

namespace {

struct ShapeResult {
  double mean_frontier = 0;
  double max_frontier = 0;
  double mean_parents = 0;
  std::size_t blocks = 0;
};

ShapeResult RunVegvisir(int groups, sim::TimeMs gossip_period) {
  constexpr int kNodes = 8;
  sim::ExplicitTopology base(kNodes);
  base.MakeClique();
  sim::PartitionedTopology topo(&base);
  if (groups > 1) topo.SplitEvenly(40'000, 160'000, groups);

  node::ClusterConfig cfg;
  cfg.node_count = kNodes;
  cfg.seed = 31;
  cfg.gossip.period_ms = gossip_period;
  node::Cluster cluster(cfg, &topo);
  cluster.RunFor(30'000);

  ShapeResult result;
  int samples = 0;
  // Writes are staggered (one node every 625 ms) so that with fast
  // gossip each writer has already merged its predecessor's block —
  // frontier width then measures genuine concurrency (gossip lag or
  // partition isolation), not simultaneous submission.
  for (int round = 0; round < 24; ++round) {
    for (int i = 0; i < kNodes; ++i) {
      (void)cluster.node(i).AddWitnessBlock();
      cluster.RunFor(625);
    }
    const double width =
        static_cast<double>(cluster.node(0).dag().Frontier().size());
    result.mean_frontier += width;
    result.max_frontier = std::max(result.max_frontier, width);
    ++samples;
  }
  cluster.RunFor(240'000);  // heal + settle

  const auto& dag = cluster.node(0).dag();
  std::size_t parent_sum = 0;
  for (const auto& h : dag.TopologicalOrder()) {
    parent_sum += dag.ParentsOf(h).size();
  }
  result.mean_frontier /= samples;
  result.mean_parents =
      static_cast<double>(parent_sum) / static_cast<double>(dag.Size() - 1);
  result.blocks = dag.Size();
  benchio::Collector().Merge(cluster.AggregateSnapshot());
  return result;
}

}  // namespace

int main() {
  std::printf("E11a: Vegvisir DAG shape (8 nodes, 24 write rounds)\n");
  std::printf("%-8s %-12s | %14s %13s %13s %8s\n", "groups", "gossip (ms)",
              "mean frontier", "max frontier", "mean parents", "blocks");
  for (const int groups : {1, 2, 4}) {
    for (const sim::TimeMs period : {500ull, 1'000ull, 4'000ull}) {
      const ShapeResult r = RunVegvisir(groups, period);
      std::printf("%-8d %-12llu | %14.2f %13.0f %13.2f %8zu\n", groups,
                  static_cast<unsigned long long>(period), r.mean_frontier,
                  r.max_frontier, r.mean_parents, r.blocks);
    }
  }

  std::printf("\nE11b: IOTA-style tangle tips for the same tx count\n"
              "(8 concurrent arrivals per round — issuers select tips\n"
              "against a common snapshot, as network latency causes)\n");
  std::printf("%-22s | %10s | %18s\n", "tip selection", "final tips",
              "genesis cum. weight");
  for (const bool weighted : {false, true}) {
    baseline::TangleParams p;
    p.weighted_walk = weighted;
    baseline::Tangle tangle(p, 13);
    for (int round = 0; round < 24; ++round) {
      // All 8 issuers pick parents before any of this round attaches.
      std::vector<std::pair<baseline::Tangle::TxId,
                            baseline::Tangle::TxId>> picks;
      for (int i = 0; i < 8; ++i) {
        picks.emplace_back(tangle.SelectTip(), tangle.SelectTip());
      }
      for (const auto& [a, b] : picks) {
        tangle.AddTransactionApproving(a, b, BytesOf("tx"));
      }
    }
    std::printf("%-22s | %10zu | %18zu\n",
                weighted ? "weighted walk (MCMC)" : "uniform random",
                tangle.TipCount(), tangle.CumulativeWeight(0));
  }

  std::printf(
      "\nExpected shape: at fixed partitioning, slower gossip widens the\n"
      "observed frontier (more unmerged concurrency). More partition\n"
      "groups *narrow* the frontier observed at any one node — it only\n"
      "sees its own side's writers — and the hidden cross-side\n"
      "concurrency surfaces as merge blocks at heal (mean parents > 1).\n"
      "The tangle, by contrast, keeps a persistent tip population\n"
      "(~arrival concurrency) by design: tips are its throughput\n"
      "mechanism, not a partition symptom.\n");
  benchio::WriteBench("dag_shape");
  return 0;
}
