// E3 — partition tolerance: Vegvisir vs a Nakamoto-style PoW chain.
//
// The paper's headline (§I, §IV-C): a linear chain must discard every
// block on losing branches when partitions heal; Vegvisir's DAG keeps
// them all. We split a network into g groups for a while, let both
// systems commit transactions on every side, heal, and count what
// survived.
#include <cstdio>

#include "bench_common.h"
#include "baseline/pow_chain.h"
#include "node/cluster.h"
#include "sim/topology.h"

using namespace vegvisir;

namespace {

struct VegvisirResult {
  int written = 0;
  int survived = 0;
  bool converged = false;
};

VegvisirResult RunVegvisir(int n, int groups, sim::TimeMs duration_ms) {
  sim::ExplicitTopology base(n);
  base.MakeClique();
  sim::PartitionedTopology topo(&base);
  const sim::TimeMs start = 40'000;
  topo.SplitEvenly(start, start + duration_ms, groups);

  node::ClusterConfig cfg;
  cfg.node_count = n;
  cfg.seed = 5;
  node::Cluster cluster(cfg, &topo);
  cluster.RunFor(start + 1'000);  // settled, now partitioned

  // Every node writes one block per 10 simulated seconds.
  VegvisirResult result;
  std::vector<chain::BlockHash> written;
  for (sim::TimeMs t = 0; t + 10'000 <= duration_ms; t += 10'000) {
    for (int i = 0; i < n; ++i) {
      const auto h = cluster.node(i).AddWitnessBlock();
      if (h.ok()) written.push_back(*h);
    }
    cluster.RunFor(10'000);
  }
  result.written = static_cast<int>(written.size());

  // Heal and settle.
  cluster.RunFor(duration_ms + 240'000);
  for (const auto& h : written) {
    if (cluster.CountHaving(h) == n) ++result.survived;
  }
  result.converged = cluster.Converged();
  benchio::Collector().Merge(cluster.AggregateSnapshot());
  return result;
}

struct PowResult {
  std::size_t confirmed_before = 0;  // across all groups, pre-heal
  std::size_t discarded_blocks = 0;
  std::size_t discarded_txs = 0;
};

PowResult RunPow(int groups, sim::TimeMs duration_ms,
                 std::uint32_t difficulty_bits) {
  baseline::PowParams params;
  params.difficulty_bits = difficulty_bits;
  params.max_txs_per_block = 4;

  // One representative miner per partition group, equal hash rate.
  std::vector<baseline::PowNode> miners;
  for (int g = 0; g < groups; ++g) {
    miners.emplace_back(params, 100 + static_cast<std::uint64_t>(g));
  }
  // Each group receives transactions and mines during the partition;
  // one "mining round" per 10 simulated seconds. Hash rates differ
  // between groups (as they would in any real deployment), so the
  // partition-era chains grow to different lengths.
  int tx_id = 0;
  for (sim::TimeMs t = 0; t + 10'000 <= duration_ms; t += 10'000) {
    for (int g = 0; g < groups; ++g) {
      miners[static_cast<std::size_t>(g)].SubmitTx(
          BytesOf("tx-" + std::to_string(tx_id++)));
      const std::uint64_t attempts = 30'000 * (1 + g % 3);
      miners[static_cast<std::size_t>(g)].Mine(attempts, t);
    }
  }

  PowResult result;
  for (const auto& m : miners) result.confirmed_before += m.ConfirmedTxCount();

  // Heal: everyone adopts the longest chain; every shorter fork's
  // blocks (and their not-re-confirmed transactions) are discarded.
  std::size_t longest = 0;
  for (std::size_t g = 1; g < miners.size(); ++g) {
    if (miners[g].height() > miners[longest].height()) longest = g;
  }
  for (std::size_t g = 0; g < miners.size(); ++g) {
    if (g == longest) continue;
    const auto sync = miners[g].SyncFrom(miners[longest]);
    result.discarded_blocks += sync.discarded_blocks;
    result.discarded_txs += sync.discarded_txs;
  }
  return result;
}

}  // namespace

int main() {
  std::printf("E3: partition tolerance (8 nodes / miners, heal after D)\n");
  std::printf("%-7s %-7s | %22s | %30s\n", "groups", "D (s)",
              "Vegvisir written/kept", "PoW confirmed -> discarded");
  for (const int groups : {2, 4}) {
    for (const sim::TimeMs duration : {60'000ull, 120'000ull}) {
      const VegvisirResult v = RunVegvisir(8, groups, duration);
      const PowResult p = RunPow(groups, duration, /*difficulty=*/14);
      std::printf("%-7d %-7llu | %10d / %-9d | %10zu tx -> %4zu blk %4zu tx"
                  "%s\n",
                  groups, static_cast<unsigned long long>(duration / 1000),
                  v.written, v.survived, p.confirmed_before,
                  p.discarded_blocks, p.discarded_txs,
                  v.converged ? "" : "  (VEGVISIR NOT CONVERGED)");
    }
  }
  std::printf(
      "\nExpected shape: Vegvisir keeps 100%% of partition-era blocks and\n"
      "converges; the PoW chain discards every block mined on losing\n"
      "forks — transactions users saw 'confirmed' are undone, the\n"
      "double-spend window the paper warns about.\n");
  benchio::WriteBench("partition");
  return 0;
}
