// E13b — storage engine cost model (DESIGN.md §13).
//
// Quantifies what the durable block log buys and what it charges:
// append throughput with durability batched into one Sync vs fsync'd
// per record (the WAL discipline nodes run under), indexed lookup
// rate, crash-recovery time by log replay, and the RAM high-water of
// a long chain with hot/cold tiering against the all-in-RAM baseline
// — the local-disk analogue of the paper's §IV-I storage offload.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <vector>

#include "bench_common.h"
#include "chain/dag.h"
#include "chain/genesis.h"
#include "crypto/drbg.h"
#include "csm/state_machine.h"
#include "storage/engine.h"

using namespace vegvisir;

namespace {

struct ChainFixture {
  chain::Block genesis;
  std::vector<chain::Block> blocks;
};

ChainFixture BuildChain(int n) {
  crypto::Drbg drbg(std::uint64_t{7});
  const crypto::KeyPair owner = crypto::KeyPair::Generate(drbg);
  ChainFixture fx{chain::GenesisBuilder("storage-bench").Build("owner", owner),
                  {}};
  chain::BlockHash parent = fx.genesis.hash();
  std::uint64_t ts = 1'000;

  chain::BlockHeader h0;
  h0.user_id = "owner";
  h0.timestamp_ms = ts++;
  h0.parents = {parent};
  fx.blocks.push_back(chain::Block::Create(
      std::move(h0),
      {csm::StateMachine::MakeCreateTx("S", crdt::CrdtType::kGSet,
                                       crdt::ValueType::kStr,
                                       csm::AclPolicy::AllowAll())},
      owner));
  parent = fx.blocks.back().hash();

  for (int i = 1; i < n; ++i) {
    chain::Transaction tx;
    tx.crdt_name = "S";
    tx.op = "add";
    tx.args = {crdt::Value::OfStr("value-" + std::to_string(i) +
                                  std::string(64, 'x'))};
    chain::BlockHeader h;
    h.user_id = "owner";
    h.timestamp_ms = ts++;
    h.parents = {parent};
    fx.blocks.push_back(chain::Block::Create(std::move(h), {tx}, owner));
    parent = fx.blocks.back().hash();
  }
  return fx;
}

std::string FreshDir(const char* leaf) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "vgv_bench_storage" / leaf;
  std::filesystem::remove_all(dir);
  return dir.string();
}

double MsSince(std::chrono::steady_clock::time_point start) {
  const std::chrono::duration<double, std::milli> d =
      std::chrono::steady_clock::now() - start;
  return d.count();
}

storage::TieredStoreOptions Opts(std::string dir, bool fsync_each) {
  storage::TieredStoreOptions o;
  o.dir = std::move(dir);
  o.fsync_each_append = fsync_each;
  o.telemetry = &benchio::Sink();
  return o;
}

}  // namespace

int main() {
  constexpr int kChain = 2'000;      // main chain length
  constexpr int kFsyncChain = 256;   // per-append-fsync sample (slow)
  constexpr int kLookups = 10'000;
  constexpr int kColdReads = 200;
  constexpr std::size_t kKeepHot = 64;

  const ChainFixture fx = BuildChain(kChain);
  std::printf("E13b: storage engine, %d-block chain\n\n", kChain);

  // -- Append throughput, durability batched into one Sync ----------
  const std::string main_dir = FreshDir("main");
  auto opened = storage::TieredStore::Open(Opts(main_dir, false));
  if (!opened.ok()) {
    std::printf("open failed: %s\n", opened.status().message().c_str());
    return 1;
  }
  std::unique_ptr<storage::TieredStore> store = std::move(*opened);
  auto t0 = std::chrono::steady_clock::now();
  (void)store->Append(fx.genesis);
  for (const chain::Block& b : fx.blocks) (void)store->Append(b);
  (void)store->SyncIndex();  // syncs the log, then the index
  const double append_ms = MsSince(t0);
  const double log_mb = static_cast<double>(store->GetStats().log_bytes) / 1e6;
  const double append_per_s = (kChain + 1) / (append_ms / 1e3);
  std::printf("append (batched sync) : %9.0f blocks/s  %6.1f MB/s  "
              "(%zu segments, %.1f MB)\n",
              append_per_s, log_mb / (append_ms / 1e3),
              store->GetStats().segments.size(), log_mb);

  // -- Append throughput, fsync per record (WAL discipline) ---------
  double wal_per_s = 0;
  {
    auto wal = storage::TieredStore::Open(Opts(FreshDir("wal"), true));
    t0 = std::chrono::steady_clock::now();
    (void)(*wal)->Append(fx.genesis);
    for (int i = 0; i < kFsyncChain; ++i) (void)(*wal)->Append(fx.blocks[i]);
    const double wal_ms = MsSince(t0);
    wal_per_s = (kFsyncChain + 1) / (wal_ms / 1e3);
    std::printf("append (fsync each)   : %9.0f blocks/s  (%d blocks)\n",
                wal_per_s, kFsyncChain + 1);
  }

  // -- Indexed lookups (hot path: index probe + log read + CRC) -----
  t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kLookups; ++i) {
    // Coprime stride walks the chain in a cache-hostile order.
    const chain::Block& want = fx.blocks[(i * 1'009) % fx.blocks.size()];
    auto got = store->Fetch(want.hash());
    if (!got.ok()) {
      std::printf("lookup failed: %s\n", got.status().message().c_str());
      return 1;
    }
  }
  const double lookup_ms = MsSince(t0);
  const double lookups_per_s = kLookups / (lookup_ms / 1e3);
  std::printf("indexed fetch         : %9.0f lookups/s  (%.1f us each)\n",
              lookups_per_s, 1e3 * lookup_ms / kLookups);

  // -- Crash recovery: reopen + full log replay into a fresh DAG ----
  store.reset();  // crash-equivalent close
  t0 = std::chrono::steady_clock::now();
  opened = storage::TieredStore::Open(Opts(main_dir, false));
  if (!opened.ok()) {
    std::printf("reopen failed: %s\n", opened.status().message().c_str());
    return 1;
  }
  store = std::move(*opened);
  auto recovered = store->RecoverDag();
  const double recover_ms = MsSince(t0);
  if (!recovered.ok()) {
    std::printf("recovery failed: %s\n",
                recovered.status().message().c_str());
    return 1;
  }
  std::printf("crash recovery        : %9.1f ms  (%zu blocks replayed)\n",
              recover_ms, recovered->Size());

  // -- Hot/cold tiering: RAM high-water vs the in-memory baseline ---
  chain::Dag& dag = *recovered;
  const std::size_t ram_inmemory = dag.StoredBytes();
  const std::size_t migrated = store->MigrateCold(&dag, kKeepHot);
  const std::size_t ram_tiered = dag.StoredBytes();
  std::printf("tiering (keep_hot=%zu): %9zu B hot vs %zu B all-RAM  "
              "(%zu migrated)\n",
              kKeepHot, ram_tiered, ram_inmemory, migrated);

  // -- Cold reads: on-demand body restore from the log --------------
  std::vector<chain::BlockHash> cold;
  for (const chain::Block& b : fx.blocks) {
    if (cold.size() >= kColdReads) break;
    if (dag.PresenceOf(b.hash()) == chain::Presence::kEvicted)
      cold.push_back(b.hash());
  }
  t0 = std::chrono::steady_clock::now();
  for (const chain::BlockHash& h : cold) {
    const Status s = store->FetchCold(&dag, h);
    if (!s.ok()) {
      std::printf("cold read failed: %s\n", s.message().c_str());
      return 1;
    }
  }
  const double cold_ms = MsSince(t0);
  const double cold_us =
      cold.empty() ? 0 : 1e3 * cold_ms / static_cast<double>(cold.size());
  std::printf("cold read             : %9.1f us/block  (%zu blocks)\n",
              cold_us, cold.size());

  std::printf(
      "\nExpected shape: batched appends run at disk-sequential speed and\n"
      "fsync-each pays the device sync latency per block; recovery is a\n"
      "linear scan; tiering pins RAM near the hot set while cold reads\n"
      "stay a single index probe + pread away.\n");

  benchio::WriteBench(
      "storage",
      {{"append_blocks_per_s", append_per_s},
       {"append_fsync_blocks_per_s", wal_per_s},
       {"lookups_per_s", lookups_per_s},
       {"recover_ms", recover_ms},
       {"cold_read_us", cold_us},
       {"ram_bytes_inmemory", static_cast<double>(ram_inmemory)},
       {"ram_bytes_tiered", static_cast<double>(ram_tiered)},
       {"log_bytes", static_cast<double>(store->GetStats().log_bytes)}});
  return 0;
}
