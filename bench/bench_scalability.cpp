// E14 — scalability under sustained load ("more extensive
// simulations", paper §VI).
//
// A cluster sustains one transaction per node per 5 simulated seconds
// for two simulated minutes. We sweep node count and reconciliation
// mode and report: convergence (did every replica end identical),
// gossip bytes per node per committed transaction, DAG growth and
// radio energy — the numbers a deployment engineer would ask for.
#include <cstdio>

#include "bench_common.h"
#include "node/cluster.h"
#include "sim/topology.h"

using namespace vegvisir;

namespace {

struct Result {
  bool converged = false;
  int committed = 0;
  double bytes_per_node_tx = 0;
  double mj_per_node = 0;
  std::size_t blocks = 0;
  double wall_ms = 0;
};

Result Run(int n, recon::ReconConfig::Mode mode) {
  sim::UnitDiskTopology::Params p;
  p.field_size = 500;
  p.radio_range = 400;  // dense enough to stay connected at every n
  sim::UnitDiskTopology topo(n, p, 5);

  node::ClusterConfig cfg;
  cfg.node_count = n;
  cfg.seed = 9;
  cfg.node_template.recon.mode = mode;
  node::Cluster cluster(cfg, &topo);
  cluster.RunFor(30'000);
  (void)cluster.node(0).CreateCrdt("load", crdt::CrdtType::kGSet,
                                   crdt::ValueType::kStr,
                                   csm::AclPolicy::AllowAll());
  cluster.RunFor(15'000);

  Result result;
  for (int round = 0; round < 24; ++round) {
    for (int i = 0; i < n; ++i) {
      const std::string v =
          "r" + std::to_string(round) + "-n" + std::to_string(i);
      if (cluster.node(i).AppendOp("load", "add",
                                   {crdt::Value::OfStr(v)}).ok()) {
        ++result.committed;
      }
    }
    cluster.RunFor(5'000);
  }
  cluster.RunFor(180'000);  // settle

  result.converged = cluster.Converged();
  double bytes = 0, mj = 0;
  for (int i = 0; i < n; ++i) {
    bytes += static_cast<double>(
        cluster.gossip(i).stats().initiator.bytes_sent +
        cluster.gossip(i).stats().initiator.bytes_received);
    mj += cluster.meter(i).total_mj();
  }
  result.bytes_per_node_tx =
      result.committed == 0 ? 0 : bytes / n / result.committed;
  result.mj_per_node = mj / n;
  result.blocks = cluster.node(0).dag().Size();
  benchio::Collector().Merge(cluster.AggregateSnapshot());
  return result;
}

const char* ModeName(recon::ReconConfig::Mode mode) {
  switch (mode) {
    case recon::ReconConfig::Mode::kBlockPush: return "block-push";
    case recon::ReconConfig::Mode::kHashFirst: return "hash-first";
    case recon::ReconConfig::Mode::kBloom: return "bloom";
  }
  return "?";
}

}  // namespace

int main() {
  std::printf("E14: sustained load (1 tx/node/5s for 120s, unit-disk)\n");
  std::printf("%-6s %-11s | %-6s %-9s | %14s | %10s | %8s\n", "n", "mode",
              "conv", "committed", "gossip B/node/tx", "mJ/node", "blocks");
  for (const int n : {4, 8, 16, 32}) {
    for (const auto mode : {recon::ReconConfig::Mode::kBlockPush,
                            recon::ReconConfig::Mode::kBloom}) {
      const Result r = Run(n, mode);
      std::printf("%-6d %-11s | %-6s %-9d | %14.0f | %10.1f | %8zu\n", n,
                  ModeName(mode), r.converged ? "yes" : "NO", r.committed,
                  r.bytes_per_node_tx, r.mj_per_node, r.blocks);
    }
  }
  std::printf(
      "\nExpected shape: convergence holds at every size; per-transaction\n"
      "gossip cost grows mildly with n (each block crosses more links);\n"
      "bloom mode trims the steady-state reconciliation bytes.\n");
  benchio::WriteBench("scalability");
  return 0;
}
