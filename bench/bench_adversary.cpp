// E12 — delivery under adversarial peers (paper §IV-B).
//
// Adversaries drop foreign blocks and never initiate gossip. The
// paper's assumption is that among each user's k closest neighbours
// at least one is honest; as long as the honest subgraph stays
// connected, every block still reaches every honest node. We sweep
// the adversary fraction on a clique (honest subgraph always
// connected → delivery stays 100%) and then on a ring (adversaries
// can cut the honest path → delivery collapses), measuring delivery
// rate and time.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "node/cluster.h"
#include "sim/topology.h"

using namespace vegvisir;

namespace {

struct Result {
  double delivery = 0;  // fraction of honest nodes reached
  double seconds = -1;  // time to full honest delivery (-1: never)
};

Result Run(bool clique, int n, const std::vector<int>& adversaries) {
  sim::ExplicitTopology topo(n);
  if (clique) {
    topo.MakeClique();
  } else {
    topo.MakeRing();
  }
  node::ClusterConfig cfg;
  cfg.node_count = n;
  cfg.seed = 8;
  cfg.adversaries = adversaries;
  node::Cluster cluster(cfg, &topo);
  cluster.RunFor(40'000);

  const auto h = cluster.node(0).AddWitnessBlock();
  if (!h.ok()) {
    benchio::Collector().Merge(cluster.AggregateSnapshot());
    return {};
  }
  const sim::TimeMs start = cluster.simulator().now();
  const sim::TimeMs deadline = start + 300'000;

  const auto honest_reached = [&] {
    int reached = 0;
    for (int i : cluster.honest()) {
      if (cluster.node(i).dag().Contains(*h)) ++reached;
    }
    return reached;
  };

  Result result;
  const int honest_total = static_cast<int>(cluster.honest().size());
  while (cluster.simulator().now() < deadline) {
    if (honest_reached() == honest_total) {
      result.seconds = (cluster.simulator().now() - start) / 1000.0;
      break;
    }
    cluster.RunFor(1'000);
  }
  result.delivery =
      static_cast<double>(honest_reached()) / honest_total;
  benchio::Collector().Merge(cluster.AggregateSnapshot());
  return result;
}

std::vector<int> EverykTh(int n, int stride) {
  std::vector<int> out;
  for (int i = 1; i < n; i += stride) out.push_back(i);
  return out;
}

}  // namespace

int main() {
  constexpr int kNodes = 9;
  std::printf("E12: delivery under block-dropping adversaries (9 nodes)\n");
  std::printf("%-8s %-12s | %10s | %14s\n", "topo", "adversaries",
              "delivery", "time-to-all (s)");

  struct Case {
    const char* label;
    std::vector<int> adversaries;
  };
  const std::vector<Case> cases = {
      {"0", {}},
      {"2 (22%)", {3, 6}},
      {"4 (44%)", EverykTh(kNodes, 2)},
  };

  for (const bool clique : {true, false}) {
    for (const Case& c : cases) {
      const Result r = Run(clique, kNodes, c.adversaries);
      std::printf("%-8s %-12s | %9.0f%% | %14.1f\n",
                  clique ? "clique" : "ring", c.label, r.delivery * 100,
                  r.seconds);
    }
  }
  std::printf(
      "\nExpected shape: on the clique delivery stays 100%% at any\n"
      "adversary fraction (every honest pair is directly connected — the\n"
      "k-honest-neighbour assumption holds). On the ring, adversaries\n"
      "sever the honest path and delivery collapses — exactly the failure\n"
      "mode the paper's adversary model excludes.\n");
  benchio::WriteBench("adversary");
  return 0;
}
