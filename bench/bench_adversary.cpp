// E12 — delivery under adversarial peers (paper §IV-B), plus a
// fault-plan sweep (E12b).
//
// Adversaries drop foreign blocks and never initiate gossip. The
// paper's assumption is that among each user's k closest neighbours
// at least one is honest; as long as the honest subgraph stays
// connected, every block still reaches every honest node. We sweep
// the adversary fraction on a clique (honest subgraph always
// connected → delivery stays 100%) and then on a ring (adversaries
// can cut the honest path → delivery collapses), measuring delivery
// rate and time.
//
// The fault sweep then replaces malicious peers with a malicious
// environment: seeded FaultPlans (sim/faults.h) — corruption, link
// flap, loss, crash/restart, and all of them at once — run against a
// clique for a 120 s storm window, measuring time to reconvergence
// after a mid-storm write. Results land in BENCH_faults.json.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "node/cluster.h"
#include "sim/faults.h"
#include "sim/topology.h"

using namespace vegvisir;

namespace {

struct Result {
  double delivery = 0;  // fraction of honest nodes reached
  double seconds = -1;  // time to full honest delivery (-1: never)
};

Result Run(bool clique, int n, const std::vector<int>& adversaries) {
  sim::ExplicitTopology topo(n);
  if (clique) {
    topo.MakeClique();
  } else {
    topo.MakeRing();
  }
  node::ClusterConfig cfg;
  cfg.node_count = n;
  cfg.seed = 8;
  cfg.adversaries = adversaries;
  node::Cluster cluster(cfg, &topo);
  cluster.RunFor(40'000);

  const auto h = cluster.node(0).AddWitnessBlock();
  if (!h.ok()) {
    benchio::Collector().Merge(cluster.AggregateSnapshot());
    return {};
  }
  const sim::TimeMs start = cluster.simulator().now();
  const sim::TimeMs deadline = start + 300'000;

  const auto honest_reached = [&] {
    int reached = 0;
    for (int i : cluster.honest()) {
      if (cluster.node(i).dag().Contains(*h)) ++reached;
    }
    return reached;
  };

  Result result;
  const int honest_total = static_cast<int>(cluster.honest().size());
  while (cluster.simulator().now() < deadline) {
    if (honest_reached() == honest_total) {
      result.seconds = (cluster.simulator().now() - start) / 1000.0;
      break;
    }
    cluster.RunFor(1'000);
  }
  result.delivery =
      static_cast<double>(honest_reached()) / honest_total;
  benchio::Collector().Merge(cluster.AggregateSnapshot());
  return result;
}

std::vector<int> EverykTh(int n, int stride) {
  std::vector<int> out;
  for (int i = 1; i < n; i += stride) out.push_back(i);
  return out;
}

// One fault-plan storm: 9-node clique, faults active for the first
// 120 s, a write from node 0 at t=30 s. Returns seconds from the
// write until every node's fingerprint matches (-1: not within the
// 600 s budget) and merges the run's counters into `out`.
double RunFaultPlan(sim::FaultPlan plan, int nodes,
                    telemetry::Snapshot* out) {
  sim::ExplicitTopology topo(nodes);
  topo.MakeClique();
  node::ClusterConfig cfg;
  cfg.node_count = nodes;
  cfg.seed = 1'812;
  plan.active_until_ms = 120'000;
  cfg.faults = std::move(plan);
  node::Cluster cluster(cfg, &topo);

  cluster.RunFor(30'000);
  (void)cluster.node(0).AddWitnessBlock();
  const sim::TimeMs start = cluster.simulator().now();

  double seconds = -1;
  while (cluster.simulator().now() < 600'000) {
    if (cluster.Converged()) {
      seconds = static_cast<double>(cluster.simulator().now() - start) / 1000.0;
      break;
    }
    cluster.RunFor(1'000);
  }
  out->Merge(cluster.AggregateSnapshot());
  return seconds;
}

}  // namespace

int main() {
  constexpr int kNodes = 9;
  std::printf("E12: delivery under block-dropping adversaries (9 nodes)\n");
  std::printf("%-8s %-12s | %10s | %14s\n", "topo", "adversaries",
              "delivery", "time-to-all (s)");

  struct Case {
    const char* label;
    std::vector<int> adversaries;
  };
  const std::vector<Case> cases = {
      {"0", {}},
      {"2 (22%)", {3, 6}},
      {"4 (44%)", EverykTh(kNodes, 2)},
  };

  for (const bool clique : {true, false}) {
    for (const Case& c : cases) {
      const Result r = Run(clique, kNodes, c.adversaries);
      std::printf("%-8s %-12s | %9.0f%% | %14.1f\n",
                  clique ? "clique" : "ring", c.label, r.delivery * 100,
                  r.seconds);
    }
  }
  std::printf(
      "\nExpected shape: on the clique delivery stays 100%% at any\n"
      "adversary fraction (every honest pair is directly connected — the\n"
      "k-honest-neighbour assumption holds). On the ring, adversaries\n"
      "sever the honest path and delivery collapses — exactly the failure\n"
      "mode the paper's adversary model excludes.\n");
  benchio::WriteBench("adversary");

  std::printf("\nE12b: reconvergence under injected faults "
              "(9-node clique, 120 s storm)\n");
  std::printf("%-16s | %16s\n", "fault plan", "converge (s)");

  struct FaultCase {
    const char* label;
    sim::FaultPlan plan;
  };
  std::vector<FaultCase> fault_cases;
  fault_cases.push_back({"none", {}});
  fault_cases.push_back({"corrupt-5%", sim::FaultPlan::Corruption(0.05)});
  fault_cases.push_back({"flap-20%", sim::FaultPlan::LinkFlap(5'000, 0.2)});
  fault_cases.push_back({"loss-20%", sim::FaultPlan::Loss(0.2)});
  // Crashes land just after the t=30 s write, so reconvergence has to
  // ride through the checkpoint-rejoin catch-up.
  sim::FaultPlan crashes = sim::FaultPlan::CrashRestart(3, 32'000, 60'000);
  crashes.Merge(sim::FaultPlan::CrashRestart(6, 45'000, 75'000));
  fault_cases.push_back({"crash-x2", crashes});
  sim::FaultPlan combined = sim::FaultPlan::Corruption(0.05);
  combined.Merge(sim::FaultPlan::LinkFlap(5'000, 0.2));
  combined.Merge(sim::FaultPlan::Loss(0.2));
  combined.Merge(crashes);
  fault_cases.push_back({"combined", combined});

  telemetry::Snapshot fault_totals;
  std::vector<telemetry::BenchValue> fault_extras;
  for (const FaultCase& c : fault_cases) {
    const double s = RunFaultPlan(c.plan, kNodes, &fault_totals);
    std::printf("%-16s | %16.1f\n", c.label, s);
    fault_extras.push_back(
        {std::string(c.label) + ".converge_seconds", s});
  }
  std::printf(
      "\nExpected shape: every plan reconverges (no -1). Corruption and\n"
      "loss cost retries, flapping costs waiting out down-windows, and\n"
      "crash-restarts add the checkpoint-rejoin catch-up — but the storm\n"
      "never costs correctness. The fault.*/gossip.* counters land in\n"
      "BENCH_faults.json.\n");
  (void)telemetry::WriteBenchJson("faults", fault_totals, fault_extras);
  return 0;
}
