// Shared telemetry plumbing for the benchmark binaries.
//
// Every bench dumps a machine-readable BENCH_<name>.json next to its
// stdout tables (see telemetry/bench_io.h), sourced from the metrics
// registry rather than ad-hoc printf totals. Two usage patterns:
//
//   - Scenario benches hand Sink() to the nodes they build directly
//     (NodeConfig::telemetry) and merge each Cluster's
//     AggregateSnapshot() into Collector(); WriteBench() emits the
//     union of both at exit.
//   - google-benchmark binaries count work into Sink() from their
//     loops (or pass it to the state machines they construct) and
//     call WriteBench() from a custom main after RunSpecifiedBenchmarks.
#pragma once

#include <utility>
#include <vector>

#include "exec/pool.h"
#include "telemetry/bench_io.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"

namespace vegvisir::benchio {

// Process-wide sink; leaked so handles stay valid through exit.
inline telemetry::Telemetry& Sink() {
  static telemetry::Telemetry* t = new telemetry::Telemetry();
  return *t;
}

// Cluster-style benches merge each run's aggregate snapshot here.
inline telemetry::Snapshot& Collector() {
  static telemetry::Snapshot* s = new telemetry::Snapshot();
  return *s;
}

// Writes BENCH_<name>.json from Sink() merged with Collector(). Every
// bench records the execution width it ran at (VEGVISIR_THREADS) and
// the machine's hardware concurrency, so perf numbers across the
// BENCH_*.json trajectory are comparable.
inline void WriteBench(const char* name,
                       std::vector<telemetry::BenchValue> extra = {}) {
  extra.push_back(
      {"threads", static_cast<double>(exec::ExecConfig::FromEnv().threads)});
  extra.push_back({"hardware_concurrency",
                   static_cast<double>(exec::HardwareConcurrency())});
  telemetry::Snapshot out = Sink().metrics.TakeSnapshot();
  out.Merge(Collector());
  (void)telemetry::WriteBenchJson(name, out, std::move(extra));
}

}  // namespace vegvisir::benchio
