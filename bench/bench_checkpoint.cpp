// E13 — restart cost: CSM snapshot vs full replay.
//
// A rebooting device can rebuild its application state either by
// replaying every stored block through the CRDT state machine or by
// loading a checkpointed snapshot (csm::StateMachine::SaveSnapshot).
// This bench measures both paths against chain length, plus the cost
// of producing the snapshot — quantifying the storage/startup
// trade-off that complements the paper's §IV-I storage offload.
#include <benchmark/benchmark.h>

#include "bench_common.h"

#include <memory>
#include <vector>

#include "chain/genesis.h"
#include "crypto/drbg.h"
#include "csm/state_machine.h"

namespace vegvisir::csm {
namespace {

struct ChainFixture {
  chain::Block genesis;
  std::vector<chain::Block> blocks;
};

const ChainFixture& FixtureOfLength(int n) {
  static std::map<int, ChainFixture>* cache = new std::map<int, ChainFixture>;
  auto it = cache->find(n);
  if (it != cache->end()) return it->second;

  crypto::Drbg drbg(std::uint64_t{1});
  const crypto::KeyPair owner = crypto::KeyPair::Generate(drbg);
  ChainFixture fx{chain::GenesisBuilder("ckpt-bench").Build("owner", owner),
                  {}};
  chain::BlockHash parent = fx.genesis.hash();
  std::uint64_t ts = 1'000;

  chain::BlockHeader h0;
  h0.user_id = "owner";
  h0.timestamp_ms = ts++;
  h0.parents = {parent};
  fx.blocks.push_back(chain::Block::Create(
      std::move(h0),
      {StateMachine::MakeCreateTx("S", crdt::CrdtType::kGSet,
                                  crdt::ValueType::kStr,
                                  AclPolicy::AllowAll())},
      owner));
  parent = fx.blocks.back().hash();

  for (int i = 1; i < n; ++i) {
    chain::Transaction tx;
    tx.crdt_name = "S";
    tx.op = "add";
    tx.args = {crdt::Value::OfStr("value-" + std::to_string(i))};
    chain::BlockHeader h;
    h.user_id = "owner";
    h.timestamp_ms = ts++;
    h.parents = {parent};
    fx.blocks.push_back(chain::Block::Create(std::move(h), {tx}, owner));
    parent = fx.blocks.back().hash();
  }
  return (*cache)[n] = std::move(fx);
}

StateMachine BuildState(const ChainFixture& fx) {
  StateMachine sm;
  sm.ApplyBlock(fx.genesis);
  for (const chain::Block& b : fx.blocks) sm.ApplyBlock(b);
  return sm;
}

void BM_ReplayFromBlocks(benchmark::State& state) {
  const ChainFixture& fx = FixtureOfLength(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    StateMachine sm(StateMachineConfig{}, &benchio::Sink());
    sm.ApplyBlock(fx.genesis);
    for (const chain::Block& b : fx.blocks) sm.ApplyBlock(b);
    benchmark::DoNotOptimize(sm.AppliedBlockCount());
  }
  state.SetLabel(std::to_string(state.range(0)) + " blocks");
}
BENCHMARK(BM_ReplayFromBlocks)->Arg(256)->Arg(1024)->Arg(4096);

void BM_SnapshotSave(benchmark::State& state) {
  const StateMachine sm =
      BuildState(FixtureOfLength(static_cast<int>(state.range(0))));
  std::size_t bytes = 0;
  for (auto _ : state) {
    const Bytes snapshot = sm.SaveSnapshot();
    bytes = snapshot.size();
    benchmark::DoNotOptimize(snapshot.data());
  }
  benchio::Sink().metrics.GetCounter("bench.checkpoint.snapshots_saved")
      .Inc(static_cast<std::uint64_t>(state.iterations()));
  state.SetLabel(std::to_string(state.range(0)) + " blocks, " +
                 std::to_string(bytes) + " B");
}
BENCHMARK(BM_SnapshotSave)->Arg(256)->Arg(1024)->Arg(4096);

void BM_SnapshotLoad(benchmark::State& state) {
  const StateMachine sm =
      BuildState(FixtureOfLength(static_cast<int>(state.range(0))));
  const Bytes snapshot = sm.SaveSnapshot();
  for (auto _ : state) {
    StateMachine restored(StateMachineConfig{}, &benchio::Sink());
    const Status s = restored.LoadSnapshot(snapshot);
    benchmark::DoNotOptimize(s.ok());
  }
  state.SetLabel(std::to_string(state.range(0)) + " blocks");
}
BENCHMARK(BM_SnapshotLoad)->Arg(256)->Arg(1024)->Arg(4096);

// Ablation: compact_op_log drops applied-op history (see
// StateMachineConfig), shrinking both the resident state and the
// snapshot to live CRDT state only.
void BM_SnapshotSaveCompacted(benchmark::State& state) {
  const ChainFixture& fx = FixtureOfLength(static_cast<int>(state.range(0)));
  StateMachineConfig cfg;
  cfg.compact_op_log = true;
  StateMachine sm(cfg);
  sm.ApplyBlock(fx.genesis);
  for (const chain::Block& b : fx.blocks) sm.ApplyBlock(b);
  std::size_t bytes = 0;
  for (auto _ : state) {
    const Bytes snapshot = sm.SaveSnapshot();
    bytes = snapshot.size();
    benchmark::DoNotOptimize(snapshot.data());
  }
  state.SetLabel(std::to_string(state.range(0)) + " blocks, " +
                 std::to_string(bytes) + " B (compacted)");
}
BENCHMARK(BM_SnapshotSaveCompacted)->Arg(256)->Arg(1024)->Arg(4096);

}  // namespace
}  // namespace vegvisir::csm

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  vegvisir::benchio::WriteBench("checkpoint");
  return 0;
}
