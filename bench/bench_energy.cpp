// E4 — energy per committed transaction: Vegvisir vs proof-of-work.
//
// The paper's second headline (§I): PoW chains are "very
// energy-intensive", Vegvisir "does not require proof-of-work and is
// therefore easy on the batteries". We run the same transaction load
// through both systems and charge every hash, signature and radio
// byte to the energy model (constants documented in sim/energy.h and
// EXPERIMENTS.md), then sweep PoW difficulty to show the gap is
// structural, not an artefact of the constants.
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "baseline/pow_chain.h"
#include "node/cluster.h"
#include "sim/topology.h"

using namespace vegvisir;

namespace {

constexpr int kNodes = 6;
constexpr int kTxLoad = 30;

// Vegvisir: kTxLoad transactions through a 6-node gossiping clique.
double VegvisirMillijoulesPerTx() {
  sim::ExplicitTopology topo(kNodes);
  topo.MakeClique();
  node::ClusterConfig cfg;
  cfg.node_count = kNodes;
  cfg.seed = 3;
  node::Cluster cluster(cfg, &topo);
  cluster.RunFor(30'000);
  (void)cluster.node(0).CreateCrdt("load", crdt::CrdtType::kGSet,
                                   crdt::ValueType::kStr,
                                   csm::AclPolicy::AllowAll());
  cluster.RunFor(10'000);

  int committed = 0;
  for (int i = 0; i < kTxLoad; ++i) {
    if (cluster.node(i % kNodes)
            .AppendOp("load", "add",
                      {crdt::Value::OfStr("tx-" + std::to_string(i))})
            .ok()) {
      ++committed;
    }
    cluster.RunFor(2'000);
  }
  cluster.RunFor(60'000);  // full dissemination

  double total_mj = 0;
  for (int i = 0; i < kNodes; ++i) total_mj += cluster.meter(i).total_mj();
  benchio::Collector().Merge(cluster.AggregateSnapshot());
  return total_mj / committed;
}

// PoW: the same load mined at the given difficulty; energy = hash
// attempts at pow_hash_nj plus broadcasting each block to n-1 peers.
double PowMillijoulesPerTx(std::uint32_t difficulty_bits) {
  baseline::PowParams params;
  params.difficulty_bits = difficulty_bits;
  params.max_txs_per_block = 4;
  baseline::PowNode miner(params, 11);
  sim::EnergyMeter meter;  // default constants

  std::uint64_t block_bytes = 0;
  int blocks = 0;
  for (int i = 0; i < kTxLoad; ++i) {
    miner.SubmitTx(BytesOf("tx-" + std::to_string(i)));
    while (miner.mempool_size() >= params.max_txs_per_block) {
      if (miner.Mine(2'000'000, static_cast<std::uint64_t>(i)) ) {
        ++blocks;
        block_bytes += 200;  // approx. block wire size
      } else {
        break;  // pathological difficulty for the bench budget
      }
    }
  }
  while (miner.mempool_size() > 0 &&
         miner.Mine(2'000'000, 10'000)) {
    ++blocks;
    block_bytes += 200;
  }

  meter.AddPowHashes(miner.hash_attempts());
  // Broadcast each mined block to the other 5 nodes; they verify by
  // hashing it once.
  meter.AddTx(block_bytes * (kNodes - 1));
  meter.AddRx(block_bytes * (kNodes - 1));
  meter.AddHash(block_bytes * (kNodes - 1));
  const std::size_t confirmed = miner.ConfirmedTxCount();
  return confirmed == 0 ? 0.0 : meter.total_mj() / confirmed;
}

}  // namespace

int main() {
  std::printf("E4: energy per committed transaction (%d txs, %d nodes)\n",
              kTxLoad, kNodes);
  const double veg = VegvisirMillijoulesPerTx();
  std::printf("%-28s | %14s | %12s\n", "system", "mJ / tx", "vs Vegvisir");
  std::printf("%-28s | %14.3f | %12s\n", "Vegvisir (gossip + Ed25519)", veg,
              "1.0x");

  // Measured PoW rows: mine for real at feasible difficulties.
  double mj_at_20 = 0;
  for (const std::uint32_t bits : {12u, 16u, 20u}) {
    const double pow_mj = PowMillijoulesPerTx(bits);
    if (bits == 20) mj_at_20 = pow_mj;
    std::printf("%-28s | %14.3f | %11.2fx\n",
                ("PoW 2^" + std::to_string(bits) + " (measured)").c_str(),
                pow_mj, pow_mj / veg);
  }
  // Extrapolated rows: expected attempts double per difficulty bit
  // (the mining energy term dominates everything else by 2^20).
  for (const std::uint32_t bits : {24u, 32u, 48u}) {
    const double pow_mj = mj_at_20 * static_cast<double>(1ull << (bits - 20));
    std::printf("%-28s | %14.3e | %11.1ex\n",
                ("PoW 2^" + std::to_string(bits) + " (extrapolated)").c_str(),
                pow_mj, pow_mj / veg);
  }

  // Sensitivity ablation: the conclusion must not hinge on the model
  // constants. Crossover difficulty ~= log2(veg_mJ / pow_mJ_per_bit);
  // scaling any constant 10x moves it ~3.3 bits.
  std::printf("\nsensitivity: crossover difficulty under scaled constants\n");
  std::printf("%-34s | %18s\n", "constants", "crossover (bits)");
  const double pow_per_hash_mj = mj_at_20 / static_cast<double>(1u << 20);
  struct Case {
    const char* label;
    double veg_scale;  // scale radio+crypto costs
    double pow_scale;  // scale per-hash cost
  };
  for (const Case& c :
       {Case{"baseline", 1, 1}, Case{"radio+crypto x10", 10, 1},
        Case{"radio+crypto /10", 0.1, 1}, Case{"PoW hash x10", 1, 10},
        Case{"PoW hash /10", 1, 0.1}}) {
    const double crossover =
        std::log2(veg * c.veg_scale / (pow_per_hash_mj * c.pow_scale));
    std::printf("%-34s | %18.1f\n", c.label, crossover);
  }
  std::printf(
      "\nExpected shape: Vegvisir's cost (radio bytes + Ed25519, no\n"
      "difficulty knob) is flat. PoW cost doubles per difficulty bit;\n"
      "the crossover falls around 2^17 on these constants — and the\n"
      "sensitivity rows show 10x errors in any constant move it by only\n"
      "~3 bits, while any security-relevant difficulty (a deployed chain\n"
      "must outpace its strongest attacker; Bitcoin runs ~2^78) sits 50+\n"
      "bits past it — the paper's 'tens of TWh per year' point.\n");
  benchio::WriteBench("energy");
  return 0;
}
