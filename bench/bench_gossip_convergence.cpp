// E2 — gossip propagation (the paper's Transitivity property, §IV-A).
//
// One node appends a block; we measure the simulated time until every
// node holds it, sweeping cluster size on a clique (expected ~log n
// growth, classic epidemic behaviour) and radio range on a unit-disk
// field (sparse networks propagate through multi-hop gossip).
#include <cstdio>

#include "bench_common.h"
#include "node/cluster.h"
#include "sim/topology.h"

using namespace vegvisir;

namespace {

struct Result {
  double seconds;          // time to 100% propagation
  double session_bytes;    // mean gossip bytes per node over that time
  bool complete;
};

Result MeasurePropagation(node::Cluster* cluster, int n) {
  cluster->RunFor(30'000);  // enrolments settle
  const auto h = cluster->node(0).AddWitnessBlock();
  if (!h.ok()) return {0, 0, false};
  const sim::TimeMs start = cluster->simulator().now();
  const sim::TimeMs deadline = start + 600'000;
  while (cluster->CountHaving(*h) < n &&
         cluster->simulator().now() < deadline) {
    cluster->RunFor(500);
  }
  double bytes = 0;
  for (int i = 0; i < n; ++i) {
    bytes += static_cast<double>(cluster->gossip(i).stats().initiator.bytes_sent);
  }
  benchio::Collector().Merge(cluster->AggregateSnapshot());
  return {(cluster->simulator().now() - start) / 1000.0, bytes / n,
          cluster->CountHaving(*h) == n};
}

}  // namespace

int main() {
  std::printf("E2a: clique size sweep (gossip period 1s)\n");
  std::printf("%-6s | %14s | %16s\n", "n", "time-to-all (s)",
              "bytes/node (tot)");
  for (const int n : {4, 8, 16, 32}) {
    sim::ExplicitTopology topo(n);
    topo.MakeClique();
    node::ClusterConfig cfg;
    cfg.node_count = n;
    cfg.seed = 42;
    node::Cluster cluster(cfg, &topo);
    const Result r = MeasurePropagation(&cluster, n);
    std::printf("%-6d | %14.1f | %16.0f%s\n", n, r.seconds, r.session_bytes,
                r.complete ? "" : "  (INCOMPLETE)");
  }

  std::printf("\nE2b: unit-disk density sweep (16 nodes, 500m field)\n");
  std::printf("%-12s | %14s\n", "range (m)", "time-to-all (s)");
  for (const double range : {450.0, 300.0, 220.0, 180.0}) {
    sim::UnitDiskTopology::Params p;
    p.field_size = 500;
    p.radio_range = range;
    sim::UnitDiskTopology topo(16, p, 7);
    node::ClusterConfig cfg;
    cfg.node_count = 16;
    cfg.seed = 42;
    node::Cluster cluster(cfg, &topo);
    const Result r = MeasurePropagation(&cluster, 16);
    std::printf("%-12.0f | %14.1f%s\n", range, r.seconds,
                r.complete ? "" : "  (did not reach all nodes)");
  }

  std::printf("\nE2c: message-loss sensitivity (8-node clique)\n");
  std::printf("%-12s | %14s\n", "loss", "time-to-all (s)");
  for (const double loss : {0.0, 0.1, 0.3, 0.5}) {
    sim::ExplicitTopology topo(8);
    topo.MakeClique();
    node::ClusterConfig cfg;
    cfg.node_count = 8;
    cfg.seed = 42;
    cfg.link.drop_probability = loss;
    node::Cluster cluster(cfg, &topo);
    const Result r = MeasurePropagation(&cluster, 8);
    std::printf("%-12.0f%% | %14.1f%s\n", loss * 100, r.seconds,
                r.complete ? "" : "  (INCOMPLETE)");
  }

  std::printf(
      "\nExpected shape: clique time grows roughly logarithmically with n;\n"
      "sparser unit-disk networks take longer (multi-hop); loss degrades\n"
      "latency gracefully — gossip retries every period, so even 50%%\n"
      "loss only slows convergence, never prevents it.\n");
  benchio::WriteBench("gossip_convergence");
  return 0;
}
