// Telemetry overhead microbenchmarks.
//
// The registry's design contract is that instrumentation is free
// enough to leave on everywhere: resolving a metric name costs a map
// lookup once, and every subsequent update through the pre-resolved
// handle is a pointer-width load/add/store. These benches pin that
// down — the handle-increment row is the number to watch when
// instrumenting a new hot path (compare against BM_CounterResolve to
// see what resolve-per-update would have cost instead).
#include <benchmark/benchmark.h>

#include <string>

#include "bench_common.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace vegvisir::telemetry {
namespace {

void BM_CounterInc(benchmark::State& state) {
  MetricsRegistry registry;
  Counter c = registry.GetCounter("bench.counter");
  for (auto _ : state) {
    c.Inc();
    benchmark::DoNotOptimize(c);
  }
  benchio::Sink().metrics.GetCounter("bench.telemetry.increments")
      .Inc(static_cast<std::uint64_t>(state.iterations()));
}
BENCHMARK(BM_CounterInc);

// The anti-pattern the handle API exists to avoid: a by-name lookup
// on every update.
void BM_CounterResolve(benchmark::State& state) {
  MetricsRegistry registry;
  for (auto _ : state) {
    registry.GetCounter("bench.counter").Inc();
  }
}
BENCHMARK(BM_CounterResolve);

void BM_NullCounterInc(benchmark::State& state) {
  Counter c;  // unbound: the no-op degradation path
  for (auto _ : state) {
    c.Inc();
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_NullCounterInc);

void BM_HistogramObserve(benchmark::State& state) {
  MetricsRegistry registry;
  Histogram h =
      registry.GetHistogram("bench.histogram", PowerOfTwoBounds(16));
  double v = 1;
  for (auto _ : state) {
    h.Observe(v);
    v = v < 60'000 ? v * 2 : 1;
  }
}
BENCHMARK(BM_HistogramObserve);

void BM_TracerRecordSpan(benchmark::State& state) {
  Tracer tracer(static_cast<std::size_t>(state.range(0)));
  TimeMs t = 0;
  for (auto _ : state) {
    tracer.RecordSpan("bench.span", t, t + 5, 1, 2);
    ++t;
  }
  state.SetLabel("ring " + std::to_string(state.range(0)));
}
BENCHMARK(BM_TracerRecordSpan)->Arg(256)->Arg(4096);

void BM_SnapshotTake(benchmark::State& state) {
  MetricsRegistry registry;
  for (int i = 0; i < state.range(0); ++i) {
    registry.GetCounter("series." + std::to_string(i)).Inc();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.TakeSnapshot());
  }
  state.SetLabel(std::to_string(state.range(0)) + " series");
}
BENCHMARK(BM_SnapshotTake)->Arg(16)->Arg(256);

}  // namespace
}  // namespace vegvisir::telemetry

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  vegvisir::benchio::WriteBench("telemetry");
  return 0;
}
