// E5 — proof-of-witness latency (paper §IV-H).
//
// A block is application-persistent once k distinct other users have
// signed descendants. We measure the simulated time from a block's
// creation until its k-proof is visible *at the creator*, sweeping k
// and the gossip period. Witnessing is organic: every node adds an
// empty witness block every few seconds, as a deployed application
// acking its peers would.
#include <cstdio>

#include "bench_common.h"
#include "node/cluster.h"
#include "sim/topology.h"

using namespace vegvisir;

namespace {

// Returns seconds until node 0's block has k witnesses (at node 0),
// or -1 on timeout.
double TimeToWitness(int n, std::size_t k, sim::TimeMs witness_period_ms) {
  sim::ExplicitTopology topo(n);
  topo.MakeClique();
  node::ClusterConfig cfg;
  cfg.node_count = n;
  cfg.seed = 17;
  node::Cluster cluster(cfg, &topo);
  cluster.RunFor(30'000);

  const auto target = cluster.node(0).AddWitnessBlock();
  if (!target.ok()) return -1;
  const sim::TimeMs start = cluster.simulator().now();
  const sim::TimeMs deadline = start + 600'000;

  double out = -1;
  sim::TimeMs next_witness = start + witness_period_ms;
  while (cluster.simulator().now() < deadline) {
    if (cluster.node(0).IsPersistent(*target, k)) {
      out = (cluster.simulator().now() - start) / 1000.0;
      break;
    }
    cluster.RunFor(500);
    if (cluster.simulator().now() >= next_witness) {
      // Every node acks what it has seen so far (if enrolled yet).
      for (int i = 1; i < n; ++i) (void)cluster.node(i).AddWitnessBlock();
      next_witness += witness_period_ms;
    }
  }
  benchio::Collector().Merge(cluster.AggregateSnapshot());
  return out;
}

}  // namespace

int main() {
  std::printf("E5: time to k-proof-of-witness (clique, gossip 1s)\n");
  std::printf("%-4s %-4s | %-18s | %-18s\n", "n", "k", "ack every 2s (s)",
              "ack every 8s (s)");
  for (const int n : {4, 8}) {
    for (std::size_t k = 1; k < static_cast<std::size_t>(n); k *= 2) {
      const double fast = TimeToWitness(n, k, 2'000);
      const double slow = TimeToWitness(n, k, 8'000);
      std::printf("%-4d %-4zu | %-18.1f | %-18.1f\n", n, k, fast, slow);
    }
  }
  std::printf(
      "\nExpected shape: latency grows with k (more distinct signers must\n"
      "both receive the block and have their acks travel back) and with\n"
      "the ack period; it stays in seconds — no mining, no global rounds.\n");
  benchio::WriteBench("witness");
  return 0;
}
