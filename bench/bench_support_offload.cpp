// E6 — storage offload to the support blockchain (paper §IV-I, Fig. 4).
//
// A constrained device accumulates blocks under a continuous write
// load. Without offload its storage grows without bound; with a
// superpeer periodically archiving to the support chain and the
// device evicting its oldest archived bodies, storage stays at the
// configured budget — while the device still *knows* every block
// (stubs) and can re-fetch any body from the superpeer.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "node/cluster.h"
#include "sim/topology.h"
#include "support/superpeer.h"

using namespace vegvisir;

int main() {
  constexpr int kNodes = 4;  // 0: superpeer/gateway, 1..3: devices
  constexpr int kRounds = 30;

  struct Config {
    const char* label;
    bool offload;
    std::size_t budget;
  };
  const std::vector<Config> configs = {
      {"no offload", false, 0},
      {"budget 24 kB", true, 24'000},
      {"budget 12 kB", true, 12'000},
  };

  std::printf("E6: device storage under continuous load "
              "(%d write rounds, 3 writers)\n", kRounds);
  std::printf("%-8s", "round");
  for (const auto& c : configs) std::printf(" | %-16s", c.label);
  std::printf("\n");

  // One cluster per configuration, advanced in lockstep.
  struct Instance {
    Config config;
    std::unique_ptr<sim::ExplicitTopology> topo;
    std::unique_ptr<node::Cluster> cluster;
    std::unique_ptr<support::SupportChain> archive;
    std::unique_ptr<support::Superpeer> superpeer;
    std::unique_ptr<support::StorageManager> storage;
  };
  std::vector<Instance> instances;
  for (const auto& c : configs) {
    Instance inst;
    inst.config = c;
    inst.topo = std::make_unique<sim::ExplicitTopology>(kNodes);
    inst.topo->MakeClique();
    node::ClusterConfig cfg;
    cfg.node_count = kNodes;
    cfg.seed = 23;
    inst.cluster = std::make_unique<node::Cluster>(cfg, inst.topo.get());
    inst.cluster->RunFor(20'000);
    (void)inst.cluster->node(0).CreateCrdt("data", crdt::CrdtType::kGSet,
                                           crdt::ValueType::kStr,
                                           csm::AclPolicy::AllowAll());
    inst.cluster->RunFor(10'000);
    inst.archive = std::make_unique<support::SupportChain>(
        inst.cluster->node(0).dag().genesis_hash());
    inst.superpeer = std::make_unique<support::Superpeer>(
        &inst.cluster->node(0), inst.archive.get(), 16);
    inst.storage = std::make_unique<support::StorageManager>(
        &inst.cluster->node(1), c.budget);
    instances.push_back(std::move(inst));
  }

  for (int round = 0; round < kRounds; ++round) {
    std::printf("%-8d", round);
    for (auto& inst : instances) {
      // Three writers add data; gossip spreads it to the device.
      for (int w = 1; w < kNodes; ++w) {
        (void)inst.cluster->node(w).AppendOp(
            "data", "add",
            {crdt::Value::OfStr("r" + std::to_string(round) + "-w" +
                                std::to_string(w) + std::string(64, 'x'))});
      }
      inst.cluster->RunFor(8'000);
      if (inst.config.offload) {
        inst.superpeer->SyncToSupport(inst.cluster->simulator().now());
        inst.storage->Enforce(inst.archive.get());
      }
      std::printf(" | %10zu B    ",
                  inst.cluster->node(1).dag().StoredBytes());
    }
    std::printf("\n");
  }

  std::printf("\nfinal state:\n");
  for (auto& inst : instances) {
    const auto& dag = inst.cluster->node(1).dag();
    std::printf("  %-14s: stored %6zu B in %3zu bodies, knows %3zu blocks, "
                "evictions %llu\n",
                inst.config.label, dag.StoredBytes(), dag.StoredCount(),
                dag.Size(),
                static_cast<unsigned long long>(
                    inst.config.offload ? inst.storage->stats().evictions
                                        : 0));
  }
  for (auto& inst : instances) {
    benchio::Collector().Merge(inst.cluster->AggregateSnapshot());
  }
  std::printf(
      "\nExpected shape: without offload storage grows linearly with the\n"
      "load; with offload it plateaus at the budget while the block count\n"
      "('knows') keeps growing — history is preserved on the support chain.\n");
  benchio::WriteBench("support_offload");
  return 0;
}
