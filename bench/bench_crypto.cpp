// E9 — crypto substrate microbenchmarks.
//
// Establishes the per-operation costs that the energy model
// (sim/energy.h) abstracts: hashing throughput, Ed25519 sign/verify
// latency, ChaCha20 sealing, DRBG generation.
#include <benchmark/benchmark.h>

#include "bench_common.h"

#include "crypto/chacha20.h"
#include "crypto/drbg.h"
#include "crypto/ed25519.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "crypto/sha512.h"
#include "util/bytes.h"

namespace vegvisir::crypto {
namespace {

void BM_Sha256(benchmark::State& state) {
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
  benchio::Sink().metrics.GetCounter("bench.crypto.sha256_bytes")
      .Inc(static_cast<std::uint64_t>(state.iterations() * state.range(0)));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)->Arg(65536);

void BM_Sha512(benchmark::State& state) {
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha512::Hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha512)->Arg(64)->Arg(1024)->Arg(65536);

void BM_HmacSha256(benchmark::State& state) {
  const Bytes key = BytesOf("benchmark-key");
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0x3c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HmacSha256::Mac(key, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(256)->Arg(4096);

void BM_Ed25519KeyGen(benchmark::State& state) {
  Drbg drbg(std::uint64_t{42});
  for (auto _ : state) {
    benchmark::DoNotOptimize(KeyPair::Generate(drbg));
  }
}
BENCHMARK(BM_Ed25519KeyGen);

void BM_Ed25519Sign(benchmark::State& state) {
  Drbg drbg(std::uint64_t{42});
  const KeyPair kp = KeyPair::Generate(drbg);
  const Bytes msg(static_cast<std::size_t>(state.range(0)), 0x55);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.Sign(msg));
  }
  benchio::Sink().metrics.GetCounter("bench.crypto.signs")
      .Inc(static_cast<std::uint64_t>(state.iterations()));
}
BENCHMARK(BM_Ed25519Sign)->Arg(64)->Arg(1024);

void BM_Ed25519Verify(benchmark::State& state) {
  Drbg drbg(std::uint64_t{42});
  const KeyPair kp = KeyPair::Generate(drbg);
  const Bytes msg(static_cast<std::size_t>(state.range(0)), 0x55);
  const Signature sig = kp.Sign(msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Verify(kp.public_key(), msg, sig));
  }
  benchio::Sink().metrics.GetCounter("bench.crypto.verifies")
      .Inc(static_cast<std::uint64_t>(state.iterations()));
}
BENCHMARK(BM_Ed25519Verify)->Arg(64)->Arg(1024);

void BM_ChaCha20(benchmark::State& state) {
  ChaCha20Key key{};
  key[0] = 1;
  ChaCha20Nonce nonce{};
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0x99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ChaCha20Xor(key, nonce, 0, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ChaCha20)->Arg(256)->Arg(4096)->Arg(65536);

void BM_DrbgGenerate(benchmark::State& state) {
  Drbg drbg(std::uint64_t{7});
  Bytes out(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    drbg.Generate(out.data(), out.size());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_DrbgGenerate)->Arg(32)->Arg(1024);

}  // namespace
}  // namespace vegvisir::crypto

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  vegvisir::benchio::WriteBench("crypto");
  return 0;
}
