// Quickstart: the Vegvisir public API in ~80 lines.
//
// Creates a chain, enrols a second user, defines a CRDT with an
// access-control policy, appends transactions from both users, syncs
// the replicas with the frontier-reconciliation protocol, and shows
// that they converge.
//
//   $ ./quickstart
#include <cstdio>

#include "chain/genesis.h"
#include "crdt/sets.h"
#include "crypto/drbg.h"
#include "node/node.h"
#include "recon/session.h"

using namespace vegvisir;

int main() {
  // --- 1. The chain owner creates the genesis block (it carries the
  //        owner's self-signed certificate: the owner is the CA).
  crypto::Drbg owner_rng(std::uint64_t{1});
  const crypto::KeyPair owner_keys = crypto::KeyPair::Generate(owner_rng);
  const chain::Block genesis =
      chain::GenesisBuilder("quickstart-chain").Build("owner", owner_keys);

  node::NodeConfig owner_cfg;
  owner_cfg.user_id = "owner";
  node::Node owner(owner_cfg, genesis, owner_keys);
  owner.SetTime(1'000);
  std::printf("chain '%s' created, genesis %s\n",
              owner.state().ChainName().c_str(),
              chain::HashShort(genesis.hash()).c_str());

  // --- 2. Enrol a second user, alice, with the role "medic".
  crypto::Drbg alice_rng(std::uint64_t{2});
  const crypto::KeyPair alice_keys = crypto::KeyPair::Generate(alice_rng);
  const chain::Certificate alice_cert = chain::IssueCertificate(
      "alice", alice_keys.public_key(), "medic", owner_keys);
  owner.EnrollUser(alice_cert).value();

  node::NodeConfig alice_cfg;
  alice_cfg.user_id = "alice";
  node::Node alice(alice_cfg, genesis, alice_keys);
  alice.SetTime(1'000);

  // --- 3. Define a CRDT: an add-only set "H" that medics may append.
  csm::AclPolicy policy;
  policy.Allow("medic", "add").Allow("owner", "*");
  owner.CreateCrdt("H", crdt::CrdtType::kGSet, crdt::ValueType::kStr, policy)
      .value();

  // --- 4. Alice syncs from the owner (Algorithm 1: frontier pull).
  recon::SessionStats stats;
  recon::RunLocalSession(&alice, &owner, recon::ReconConfig{}, &stats);
  std::printf("alice synced: %llu blocks in %llu rounds, %llu bytes\n",
              static_cast<unsigned long long>(stats.blocks_inserted),
              static_cast<unsigned long long>(stats.rounds),
              static_cast<unsigned long long>(stats.bytes_received));

  // --- 5. Both users append transactions concurrently.
  owner.AppendOp("H", "add", {crdt::Value::OfStr("record-007")}).value();
  alice.AppendOp("H", "add", {crdt::Value::OfStr("record-042")}).value();

  // --- 6. Reconcile both ways; the DAG merges the branches.
  recon::RunLocalSession(&owner, &alice, recon::ReconConfig{});
  recon::RunLocalSession(&alice, &owner, recon::ReconConfig{});

  const auto* h_owner = owner.state().FindCrdtAs<crdt::GSet>("H");
  const auto* h_alice = alice.state().FindCrdtAs<crdt::GSet>("H");
  std::printf("owner sees %zu records, alice sees %zu records\n",
              h_owner->Size(), h_alice->Size());
  std::printf("replicas converged: %s\n",
              owner.Fingerprint() == alice.Fingerprint() ? "yes" : "no");
  std::printf("DAG size: %zu blocks, frontier width: %zu\n",
              owner.dag().Size(), owner.dag().Frontier().size());
  return 0;
}
