// Chain inspection tool: persistence + audit.
//
// Usage:
//   ./chain_inspect                 build a demo chain, save, reload,
//                                   audit, and print the report
//   ./chain_inspect <file.dag>      inspect an existing chain file
//                                   (audit runs without certificates,
//                                   so signature checks are skipped)
//   ./chain_inspect metrics         run a small gossiping cluster and
//                                   print its aggregate telemetry in
//                                   Prometheus text format
//   ./chain_inspect storage [dir]   open a durable store (DESIGN.md
//                                   §13) and dump its segments, index
//                                   coverage and recovered chain; dir
//                                   defaults to $VEGVISIR_DATA_DIR
//
// Demonstrates the storage / recovery workflow of a device that
// reboots: the replica is loaded from flash, its integrity verified
// from first principles, and the per-CRDT provenance trail printed —
// the paper's "the log is reviewed" step (§II-A).
#include <cstdio>
#include <string>

#include "chain/audit.h"
#include "chain/store.h"
#include "crypto/drbg.h"
#include "csm/state_machine.h"
#include "node/cluster.h"
#include "node/node.h"
#include "sim/topology.h"
#include "storage/engine.h"
#include "telemetry/export.h"

using namespace vegvisir;

namespace {

void PrintDagSummary(const chain::Dag& dag) {
  std::printf("genesis   : %s\n",
              chain::HashShort(dag.genesis_hash()).c_str());
  std::printf("blocks    : %zu (%zu bodies stored, %zu bytes)\n", dag.Size(),
              dag.StoredCount(), dag.StoredBytes());
  std::printf("frontier  : %zu block(s)\n", dag.Frontier().size());
  std::size_t txs = 0;
  dag.ForEachStored([&](const chain::Block& b) {
    txs += b.transactions().size();
  });
  std::printf("txns      : %zu\n", txs);
}

void PrintAudit(const chain::AuditReport& report) {
  std::printf("audit     : %s (%zu blocks, %zu signatures verified, "
              "%zu bodies offloaded)\n",
              report.clean() ? "CLEAN" : "ISSUES FOUND",
              report.blocks_checked, report.signatures_verified,
              report.bodies_missing);
  for (const auto& issue : report.issues) {
    std::printf("  !! %s: %s\n", chain::HashShort(issue.block).c_str(),
                issue.what.c_str());
  }
}

int InspectFile(const std::string& path) {
  auto dag = chain::LoadDagFromFile(path);
  if (!dag.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", path.c_str(),
                 dag.status().ToString().c_str());
    return 1;
  }
  std::printf("== %s ==\n", path.c_str());
  PrintDagSummary(*dag);

  // Rebuild the CSM by replay to recover membership, then audit.
  csm::StateMachine sm;
  for (const chain::BlockHash& h : dag->TopologicalOrder()) {
    const chain::Block* b = dag->Find(h);
    if (b != nullptr) sm.ApplyBlock(*b);
  }
  std::printf("chain name: '%s', members: %zu\n", sm.ChainName().c_str(),
              sm.membership().LiveCount());
  PrintAudit(chain::AuditDag(*dag, sm.membership()));
  return 0;
}

// `metrics` subcommand: a 4-node clique gossips for a simulated
// minute under a small write load; the merged per-node registries
// (plus the network's) are printed the way a Prometheus scrape of a
// real deployment would see them.
int RunMetricsDemo() {
  sim::ExplicitTopology topo(4);
  topo.MakeClique();
  node::ClusterConfig cfg;
  cfg.node_count = 4;
  cfg.seed = 404;
  // Reconciliation v2 (DESIGN.md §16), so the scrape shows the
  // setdiff.* negotiation series and recon.*.level_cap_hit live.
  cfg.node_template.recon.mode = recon::ReconConfig::Mode::kSetDiff;
  node::Cluster cluster(cfg, &topo);
  cluster.RunFor(20'000);
  (void)cluster.node(0).CreateCrdt("events", crdt::CrdtType::kGSet,
                                   crdt::ValueType::kStr,
                                   csm::AclPolicy::AllowAll());
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < cluster.size(); ++i) {
      (void)cluster.node(i).AppendOp(
          "events", "add",
          {crdt::Value::OfStr("r" + std::to_string(round) + "-n" +
                              std::to_string(i))});
    }
    cluster.RunFor(5'000);
  }
  cluster.RunFor(60'000);

  std::printf("%s", telemetry::ToPrometheusText(
                        cluster.AggregateSnapshot()).c_str());
  return 0;
}

// `storage` subcommand: open a node's durable data directory
// read-only-in-spirit (a torn tail is truncated, exactly as a
// restarting node would) and report what the log and index hold.
int InspectStorage(const std::string& dir) {
  if (dir.empty()) {
    std::fprintf(stderr,
                 "usage: chain_inspect storage <dir>  "
                 "(or set VEGVISIR_DATA_DIR)\n");
    return 1;
  }
  storage::TieredStoreOptions opts;
  opts.dir = dir;
  auto store = storage::TieredStore::Open(std::move(opts));
  if (!store.ok()) {
    std::fprintf(stderr, "cannot open store at %s: %s\n", dir.c_str(),
                 store.status().ToString().c_str());
    return 1;
  }
  const storage::TieredStoreStats stats = (*store)->GetStats();
  std::printf("== storage at %s ==\n", dir.c_str());
  std::printf("log       : %llu records, %llu bytes, %zu segment(s)%s\n",
              static_cast<unsigned long long>(stats.log_records),
              static_cast<unsigned long long>(stats.log_bytes),
              stats.segments.size(), stats.log_wounded ? " [WOUNDED]" : "");
  for (const auto& seg : stats.segments) {
    std::printf("  seg %06llu: %6llu records %9llu B  %s\n",
                static_cast<unsigned long long>(seg.id),
                static_cast<unsigned long long>(seg.records),
                static_cast<unsigned long long>(seg.bytes),
                seg.path.c_str());
  }
  const auto& rec = stats.recovery;
  std::printf("recovery  : %llu replayed, %llu truncated, %llu bytes "
              "dropped\n",
              static_cast<unsigned long long>(rec.records_replayed),
              static_cast<unsigned long long>(rec.records_truncated),
              static_cast<unsigned long long>(rec.bytes_dropped));
  std::printf("index     : %zu mapped + %zu unsynced entries, covers %llu "
              "of %llu log bytes\n",
              stats.index_mapped, stats.index_delta,
              static_cast<unsigned long long>(stats.index_covered_bytes),
              static_cast<unsigned long long>(stats.log_bytes));

  if (stats.log_records == 0) {
    std::printf("(empty log — nothing to replay)\n");
    return 0;
  }
  auto dag = (*store)->RecoverDag();
  if (!dag.ok()) {
    std::fprintf(stderr, "log replay failed: %s\n",
                 dag.status().ToString().c_str());
    return 1;
  }
  std::printf("\n-- chain recovered by log replay --\n");
  PrintDagSummary(*dag);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "metrics") return RunMetricsDemo();
  if (argc > 1 && std::string(argv[1]) == "storage") {
    return InspectStorage(argc > 2 ? argv[2] : storage::DataDirFromEnv());
  }
  if (argc > 1) return InspectFile(argv[1]);

  // Demo mode: build a small chain, persist it, reload, audit.
  crypto::Drbg rng(std::uint64_t{404});
  const crypto::KeyPair owner_keys = crypto::KeyPair::Generate(rng);
  const chain::Block genesis =
      chain::GenesisBuilder("inspect-demo").Build("owner", owner_keys);
  node::NodeConfig cfg;
  cfg.user_id = "owner";
  node::Node owner(cfg, genesis, owner_keys);
  owner.SetTime(10'000);

  owner.CreateCrdt("events", crdt::CrdtType::kGSet, crdt::ValueType::kStr,
                   csm::AclPolicy::AllowAll()).value();
  owner.AppendOp("events", "add",
                 {crdt::Value::OfStr("door opened")}).value();
  owner.AppendOp("events", "add",
                 {crdt::Value::OfStr("badge 117 scanned")}).value();
  owner.AddWitnessBlock().value();

  const std::string path = "/tmp/vegvisir_demo.dag";
  if (!chain::SaveDagToFile(owner.dag(), path).ok()) {
    std::fprintf(stderr, "save failed\n");
    return 1;
  }
  std::printf("saved replica to %s, reloading...\n\n", path.c_str());
  const int rc = InspectFile(path);

  std::printf("\n-- provenance trail for 'events' --\n");
  for (const auto& entry :
       chain::ExtractProvenance(owner.dag(), "events")) {
    std::printf("  t=%llu %-8s %s(%s)\n",
                static_cast<unsigned long long>(entry.timestamp_ms),
                entry.creator.c_str(), entry.transaction.op.c_str(),
                entry.transaction.args[0].AsStr().c_str());
  }
  return rc;
}
