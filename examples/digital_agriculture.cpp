// Digital agriculture (paper §II-B, §IV-I).
//
// A farm runs fixed soil sensors and a patrol drone with intermittent
// connectivity. Every animal's provenance (vaccinations, antibiotics)
// lives in an LWW map; sensor readings accumulate in a grow-only set.
// A barn gateway acts as a *superpeer*: it archives old blocks onto
// the linear support blockchain so that the battery-powered sensors —
// which have tiny flash — can evict block bodies and stay within
// budget (the paper's storage-efficiency requirement).
//
//   $ ./digital_agriculture
#include <cstdio>
#include <string>

#include "crdt/map.h"
#include "crdt/sets.h"
#include "node/cluster.h"
#include "sim/topology.h"
#include "support/superpeer.h"

using namespace vegvisir;

int main() {
  // Node 0: barn gateway (owner + superpeer). Nodes 1..4: soil
  // sensors. Node 5: patrol drone (mobile).
  constexpr int kNodes = 6;
  sim::UnitDiskTopology::Params radio;
  radio.field_size = 600;
  radio.radio_range = 350;
  radio.mobile = true;      // slow drift: sensors sway, the drone patrols
  radio.speed_mps = 2.0;
  sim::UnitDiskTopology topo(kNodes, radio, /*seed=*/77);

  node::ClusterConfig cfg;
  cfg.node_count = kNodes;
  cfg.chain_name = "greenacres-farm";
  cfg.member_role = "sensor";
  cfg.seed = 99;
  node::Cluster cluster(cfg, &topo);
  cluster.RunFor(20'000);

  // The gateway defines the two application CRDTs.
  csm::AclPolicy open = csm::AclPolicy::AllowAll();
  cluster.node(0)
      .CreateCrdt("herd", crdt::CrdtType::kLwwMap, crdt::ValueType::kStr,
                  open)
      .value();
  cluster.node(0)
      .CreateCrdt("readings", crdt::CrdtType::kGSet, crdt::ValueType::kStr,
                  open)
      .value();
  cluster.RunFor(20'000);

  // Provenance updates for two animals (RFID tags).
  cluster.node(0)
      .AppendOp("herd", "put",
                {crdt::Value::OfStr("cow-0041"),
                 crdt::Value::OfStr("born=2024-03-02;vacc=BVD,IBR")})
      .value();
  cluster.node(0)
      .AppendOp("herd", "put",
                {crdt::Value::OfStr("cow-0042"),
                 crdt::Value::OfStr("born=2024-04-11;vacc=BVD")})
      .value();

  // Sensors log soil readings for a week (compressed to sim-minutes).
  int readings = 0;
  for (int round = 0; round < 20; ++round) {
    for (int sensor = 1; sensor <= 4; ++sensor) {
      const std::string reading =
          "sensor-" + std::to_string(sensor) + ";t=" +
          std::to_string(cluster.simulator().now()) + ";moisture=" +
          std::to_string(30 + (round * sensor) % 20);
      if (cluster.node(sensor)
              .AppendOp("readings", "add", {crdt::Value::OfStr(reading)})
              .ok()) {
        ++readings;
      }
    }
    cluster.RunFor(10'000);
  }
  std::printf("logged %d sensor readings over %0.fs of farm time\n",
              readings, cluster.simulator().now() / 1000.0);

  // Drone antibiotic treatment recorded in the field, merged by LWW.
  // The drone is mobile; wait until it has picked up the herd CRDT.
  for (int attempt = 0; attempt < 60; ++attempt) {
    if (cluster.node(5)
            .AppendOp("herd", "put",
                      {crdt::Value::OfStr("cow-0042"),
                       crdt::Value::OfStr("born=2024-04-11;vacc=BVD;"
                                          "antibiotic=oxytet-2026-07-01")})
            .ok()) {
      break;
    }
    cluster.RunFor(10'000);  // keep flying until back in range
  }
  cluster.RunFor(60'000);

  // --- Storage offload: the gateway archives, sensor 1 evicts. ---
  support::SupportChain archive(cluster.node(0).dag().genesis_hash());
  support::Superpeer gateway(&cluster.node(0), &archive, /*batch_size=*/8);
  const std::size_t archived =
      gateway.SyncToSupport(cluster.simulator().now());
  std::printf("gateway archived %zu blocks onto %llu support blocks "
              "(chain verifies: %s)\n",
              archived, static_cast<unsigned long long>(archive.Length()),
              archive.VerifyChain() ? "yes" : "no");

  node::Node& sensor1 = cluster.node(1);
  const std::size_t before = sensor1.dag().StoredBytes();
  support::StorageManager flash(&sensor1, before / 3);  // tiny flash
  const std::size_t evicted = flash.Enforce(&archive);
  std::printf("sensor-1 flash: %zu -> %zu bytes after evicting %zu block "
              "bodies (budget %zu)\n",
              before, sensor1.dag().StoredBytes(), evicted,
              flash.budget_bytes());
  std::printf("sensor-1 still knows %zu blocks (stubs kept: nothing lost)\n",
              sensor1.dag().Size());

  // A second gateway (the co-op's cloud mirror) replicates the
  // support chain from the barn gateway: superpeers converge on one
  // linear archive (paper §IV-I, "between the superpeers as well as
  // in the cloud").
  support::SupportChain cloud_mirror(cluster.node(0).dag().genesis_hash());
  const auto sync = cloud_mirror.SyncFrom(archive);
  std::printf("cloud mirror adopted the barn's support chain: %s "
              "(%zu support blocks, verifies: %s)\n",
              sync.adopted ? "yes" : "no",
              static_cast<std::size_t>(cloud_mirror.Length()),
              cloud_mirror.VerifyChain() ? "yes" : "no");

  // A consumer scans cow-0042's tag at the supermarket: full history.
  cluster.RunFor(60'000);
  const auto* herd = cluster.node(0).state().FindCrdtAs<crdt::LwwMap>("herd");
  std::printf("--- provenance for cow-0042 ---\n  %s\n",
              herd->Get("cow-0042")->AsStr().c_str());
  const auto* all =
      cluster.node(0).state().FindCrdtAs<crdt::GSet>("readings");
  std::printf("readings visible at the gateway: %zu; converged: %s\n",
              all->Size(), cluster.Converged() ? "yes" : "no");
  return 0;
}
