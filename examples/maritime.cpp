// Maritime black box (paper §II-C).
//
// A cargo ship capsizes. During the emergency, ship systems stream
// telemetry into the Vegvisir blockchain; the contents are ChaCha20-
// encrypted because the cargo manifest is proprietary. As the vessel
// goes down, the bridge and engine-room nodes drop off the network,
// but lifeboat nodes keep gossiping among themselves — the data that
// reached any surviving node is preserved, signed and tamperproof,
// for the accident investigators.
//
//   $ ./maritime
#include <cstdio>
#include <string>

#include "crdt/sets.h"
#include "crypto/aead.h"
#include "node/cluster.h"
#include "sim/topology.h"

using namespace vegvisir;

namespace {

// Company-proprietary payloads are sealed (ChaCha20-Poly1305) before
// they enter a block: confidential on the wire AND tamper-evident at
// the investigation, independent of the chain's own integrity.
Bytes Seal(const crypto::ChaCha20Key& key, std::uint32_t seq,
           const std::string& plaintext) {
  crypto::ChaCha20Nonce nonce{};
  nonce[0] = static_cast<std::uint8_t>(seq);
  nonce[1] = static_cast<std::uint8_t>(seq >> 8);
  return crypto::AeadSeal(key, nonce, BytesOf(plaintext),
                          BytesOf("mv-aurora"));
}

std::string Unseal(const crypto::ChaCha20Key& key, std::uint32_t seq,
                   const Bytes& sealed) {
  crypto::ChaCha20Nonce nonce{};
  nonce[0] = static_cast<std::uint8_t>(seq);
  nonce[1] = static_cast<std::uint8_t>(seq >> 8);
  const auto opened =
      crypto::AeadOpen(key, nonce, sealed, BytesOf("mv-aurora"));
  return opened.has_value() ? TextOf(*opened) : "<TAMPERED ENTRY>";
}

}  // namespace

int main() {
  // 0: bridge (owner), 1: engine room, 2: cargo bay,
  // 3..5: lifeboat beacons.
  constexpr int kNodes = 6;
  sim::ExplicitTopology base(kNodes);
  base.MakeClique();  // aboard, everything is in radio range
  sim::PartitionedTopology topo(&base);

  // t=120s: the hull breaches. Ship systems (group 0) separate from
  // the lifeboats (group 1)...
  sim::PartitionedTopology::Interval breach;
  breach.begin_ms = 120'000;
  breach.end_ms = 300'000;
  for (int n : {0, 1, 2}) breach.group_of[n] = 0;
  for (int n : {3, 4, 5}) breach.group_of[n] = 1;
  topo.AddInterval(breach);
  // ...and at t=300s the ship is gone: its nodes are isolated forever.
  sim::PartitionedTopology::Interval sunk;
  sunk.begin_ms = 300'000;
  sunk.end_ms = 100'000'000;
  for (int n : {3, 4, 5}) sunk.group_of[n] = 1;  // 0,1,2 unassigned: isolated
  topo.AddInterval(sunk);

  node::ClusterConfig cfg;
  cfg.node_count = kNodes;
  cfg.chain_name = "mv-aurora-voyage-112";
  cfg.member_role = "shipsys";
  cfg.seed = 1912;
  node::Cluster cluster(cfg, &topo);
  cluster.RunFor(20'000);

  cluster.node(0)
      .CreateCrdt("telemetry", crdt::CrdtType::kGSet,
                  crdt::ValueType::kBytes, csm::AclPolicy::AllowAll())
      .value();
  cluster.RunFor(20'000);

  crypto::ChaCha20Key fleet_key{};
  fleet_key[31] = 0x77;

  // Normal telemetry, then the distress sequence.
  std::uint32_t seq = 0;
  const auto log = [&](int from, const std::string& msg) {
    const Bytes sealed = Seal(fleet_key, seq, msg);
    serial::Writer w;
    w.WriteU32(seq);
    w.WriteBytes(sealed);
    ++seq;
    return cluster.node(from).AppendOp(
        "telemetry", "add", {crdt::Value::OfBytes(w.Take())});
  };

  log(0, "0412Z heading 074 speed 18.2kn").value();
  log(1, "0413Z engine load 82%, all nominal").value();
  cluster.RunFor(60'000);

  log(0, "0415Z MAYDAY list 15deg stbd, taking water").value();
  log(2, "0415Z cargo shift detected hold 3").value();
  cluster.RunFor(30'000);  // gossip carries these to the lifeboats

  // t=120s: hull breach. Final words from the ship side.
  cluster.RunFor(15'000);
  log(1, "0417Z engine room flooding, abandoning").value();
  const auto last_engine = log(1, "0418Z power lost");
  cluster.RunFor(150'000);  // ship side sinks at t=300s

  // Lifeboats keep witnessing one another after the sinking.
  for (int b : {3, 4, 5}) cluster.node(b).AddWitnessBlock().value();
  cluster.RunFor(120'000);

  // --- Investigation: recover boat 4's replica. ---
  const node::Node& recovered = cluster.node(4);
  const auto* telemetry =
      recovered.state().FindCrdtAs<crdt::GSet>("telemetry");
  std::printf("recovered replica (lifeboat 4): %zu telemetry entries, "
              "%zu blocks\n",
              telemetry->Size(), recovered.dag().Size());
  std::printf("last engine-room entry reached a lifeboat: %s\n",
              last_engine.ok() && recovered.dag().Contains(*last_engine)
                  ? "yes"
                  : "no (went down with the ship)");

  std::printf("--- decrypted voyage log ---\n");
  for (const crdt::Value& entry : telemetry->Elements()) {
    serial::Reader r(entry.AsBytes());
    std::uint32_t entry_seq;
    Bytes sealed;
    if (!r.ReadU32(&entry_seq).ok() || !r.ReadBytes(&sealed).ok()) continue;
    std::printf("  [%02u] %s\n", entry_seq,
                Unseal(fleet_key, entry_seq, sealed).c_str());
  }

  // Lifeboat replicas agree among themselves (the surviving quorum).
  const bool boats_agree =
      cluster.node(3).Fingerprint() == cluster.node(4).Fingerprint() &&
      cluster.node(4).Fingerprint() == cluster.node(5).Fingerprint();
  std::printf("surviving lifeboat replicas identical: %s\n",
              boats_agree ? "yes" : "no");
  return 0;
}
