// Disaster response (paper §II-A and §V).
//
// Emergency first responders form an ad hoc network after a
// hurricane. Medics may read any patient's health record, but only
// after their access request is stored tamperproof on the Vegvisir
// blockchain *and* witnessed by k other nearby users
// (proof-of-witness, §IV-H). A RecordVault plays the role of the
// paper's TEE-guarded encrypted database: it releases the decryption
// of a record only when the requesting block is k-persistent.
//
// The scenario includes a network partition (a collapsed bridge
// splits the teams); both sides keep logging requests, and the full
// audit log survives the healing — nothing is discarded.
//
//   $ ./disaster_response
#include <cstdio>
#include <map>
#include <string>

#include "chain/proof.h"
#include "crdt/sets.h"
#include "crypto/chacha20.h"
#include "node/cluster.h"
#include "sim/topology.h"

using namespace vegvisir;

namespace {

// The paper's TEE-guarded record store: records are ChaCha20-sealed,
// and the "certifiably correct program" releases a record only after
// *independently verifying* a witness proof — the vault holds no DAG
// and trusts nothing but the chain CA's public key (paper §V).
class RecordVault {
 public:
  RecordVault(crypto::ChaCha20Key key, crypto::PublicKey ca,
              std::size_t witness_quorum)
      : key_(key), ca_(ca), quorum_(witness_quorum) {}

  void Store(const std::string& record_id, const std::string& contents) {
    crypto::ChaCha20Nonce nonce{};
    nonce[0] = static_cast<std::uint8_t>(sealed_.size());
    sealed_[record_id] = {crypto::ChaCha20Xor(key_, nonce, 0,
                                              BytesOf(contents)),
                          nonce};
  }

  // Releases the record iff the serialized proof shows the request
  // block carries a k-proof-of-witness. Verified from first
  // principles against the CA key alone.
  bool Open(ByteSpan serialized_proof, const std::string& record_id,
            std::string* out) const {
    auto proof = chain::WitnessProof::Deserialize(serialized_proof);
    if (!proof.ok()) return false;
    if (!chain::VerifyWitnessProof(*proof, ca_, quorum_).ok()) return false;
    const auto it = sealed_.find(record_id);
    if (it == sealed_.end()) return false;
    *out = TextOf(crypto::ChaCha20Xor(key_, it->second.nonce, 0,
                                      it->second.ciphertext));
    return true;
  }

 private:
  struct Sealed {
    Bytes ciphertext;
    crypto::ChaCha20Nonce nonce;
  };
  crypto::ChaCha20Key key_;
  crypto::PublicKey ca_;
  std::size_t quorum_;
  std::map<std::string, Sealed> sealed_;
};

// The requesting device assembles the proof from its own replica.
Bytes TryBuildProof(const node::Node& node,
                    const chain::BlockHash& request_block,
                    std::size_t quorum) {
  auto proof = chain::BuildWitnessProof(
      node.dag(), node.state().membership(), request_block, quorum);
  return proof.ok() ? proof->Serialize() : Bytes{};
}

}  // namespace

int main() {
  constexpr int kResponders = 8;
  constexpr std::size_t kWitnessQuorum = 2;

  // Responders on a field; radio range covers the staging area.
  sim::UnitDiskTopology::Params radio;
  radio.field_size = 400;
  radio.radio_range = 250;
  sim::UnitDiskTopology base(kResponders, radio, /*seed=*/2024);
  sim::PartitionedTopology topo(&base);
  // A bridge collapses at t=60s, splitting the teams until t=180s.
  topo.SplitEvenly(60'000, 180'000, 2);

  node::ClusterConfig cfg;
  cfg.node_count = kResponders;
  cfg.chain_name = "hurricane-relief";
  cfg.member_role = "medic";
  cfg.seed = 7;
  node::Cluster cluster(cfg, &topo);

  // The incident commander (node 0) sets up the request log H: an
  // add-only set that medics may append to, per the paper.
  cluster.RunFor(15'000);  // enrolments spread
  csm::AclPolicy policy;
  policy.Allow("medic", "add").Allow("owner", "*");
  cluster.node(0)
      .CreateCrdt("H", crdt::CrdtType::kGSet, crdt::ValueType::kStr, policy)
      .value();
  cluster.RunFor(15'000);

  // The vault holds two sealed health records.
  crypto::ChaCha20Key vault_key{};
  vault_key[0] = 0x42;
  RecordVault vault(vault_key,
                    cluster.node(0).state().membership().ca_public_key(),
                    kWitnessQuorum);
  vault.Store("patient-17", "blood type O-, allergic to penicillin");
  vault.Store("patient-23", "diabetic, insulin in left pannier");

  // Medic 3 requests access to patient-17's record.
  const auto request = cluster.node(3).AppendOp(
      "H", "add", {crdt::Value::OfStr("user-3 requests patient-17")});
  std::printf("[t=%6.1fs] medic 3 logged request %s\n",
              cluster.simulator().now() / 1000.0,
              chain::HashShort(*request).c_str());

  std::string plaintext;
  std::printf(
      "[t=%6.1fs] vault open before witnesses: %s\n",
      cluster.simulator().now() / 1000.0,
      vault.Open(TryBuildProof(cluster.node(3), *request, kWitnessQuorum),
                 "patient-17", &plaintext)
          ? "RELEASED"
          : "refused (no proof-of-witness)");

  // Gossip spreads the request; peers' later blocks witness it.
  cluster.RunFor(20'000);
  for (int i : {1, 5}) cluster.node(i).AddWitnessBlock().value();
  cluster.RunFor(10'000);

  const Bytes proof =
      TryBuildProof(cluster.node(3), *request, kWitnessQuorum);
  const bool opened = vault.Open(proof, "patient-17", &plaintext);
  std::printf("[t=%6.1fs] witnesses=%zu, proof=%zuB -> vault: %s\n",
              cluster.simulator().now() / 1000.0,
              cluster.node(3).dag().WitnessesOf(*request).size(),
              proof.size(),
              opened ? ("RELEASED: " + plaintext).c_str() : "refused");

  // --- The partition hits at t=60s. Both sides keep logging. ---
  cluster.RunFor(30'000);  // inside the partition now
  const auto side_a = cluster.node(1).AppendOp(
      "H", "add", {crdt::Value::OfStr("user-1 requests patient-23")});
  const auto side_b = cluster.node(6).AppendOp(
      "H", "add", {crdt::Value::OfStr("user-6 requests patient-17")});
  std::printf("[t=%6.1fs] partition active; requests logged on BOTH sides\n",
              cluster.simulator().now() / 1000.0);
  cluster.RunFor(60'000);
  std::printf("[t=%6.1fs] cross-side visibility during partition: "
              "side A sees B's request: %s\n",
              cluster.simulator().now() / 1000.0,
              cluster.node(1).dag().Contains(*side_b) ? "yes" : "no");

  // --- Healing: everything merges, nothing discarded. ---
  cluster.RunFor(180'000);
  const auto* log = cluster.node(0).state().FindCrdtAs<crdt::GSet>("H");
  std::printf("[t=%6.1fs] healed. audit log has %zu requests; "
              "both partition-era requests present: %s; converged: %s\n",
              cluster.simulator().now() / 1000.0, log->Size(),
              (cluster.node(0).dag().Contains(*side_a) &&
               cluster.node(0).dag().Contains(*side_b))
                  ? "yes"
                  : "no",
              cluster.Converged() ? "yes" : "no");

  // After the emergency: the auditors replay the log.
  std::printf("--- audit log ---\n");
  for (const crdt::Value& entry : log->Elements()) {
    std::printf("  %s\n", entry.AsStr().c_str());
  }
  return 0;
}
