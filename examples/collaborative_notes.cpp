// Collaborative field notes on an RGA sequence CRDT.
//
// The paper points to collaborative editing and JSON documents as
// CRDT applications (§III, refs [30][31]). Here two first responders
// co-edit a shared incident log (an ordered sequence of lines) while
// a partition separates them; both keep typing, and the healed
// document contains every line in a deterministic, causally sensible
// order on all replicas.
//
//   $ ./collaborative_notes
#include <cstdio>
#include <string>

#include "crdt/rga.h"
#include "node/cluster.h"
#include "sim/topology.h"

using namespace vegvisir;

namespace {

// Appends a line after the last currently-visible line on `node`'s
// replica (typical editor behaviour: append at the end).
StatusOr<chain::BlockHash> AppendLine(node::Node* node,
                                      const std::string& text) {
  const auto* doc = node->state().FindCrdtAs<crdt::Rga>("notes");
  if (doc == nullptr) return NotFoundError("notes not replicated yet");
  const auto ids = doc->VisibleIds();
  const std::string parent = ids.empty() ? "" : ids.back();
  return node->AppendOp("notes", "insert",
                        {crdt::Value::OfStr(parent),
                         crdt::Value::OfStr(text)});
}

void PrintDoc(const node::Node& node, const char* label) {
  const auto* doc = node.state().FindCrdtAs<crdt::Rga>("notes");
  std::printf("--- %s (%zu lines, %zu elements incl. tombstones) ---\n",
              label, doc->Size(), doc->ElementCount());
  for (const crdt::Value& line : doc->Values()) {
    std::printf("  %s\n", line.AsStr().c_str());
  }
}

}  // namespace

int main() {
  sim::ExplicitTopology base(4);
  base.MakeClique();
  sim::PartitionedTopology topo(&base);
  topo.SplitEvenly(60'000, 150'000, 2);  // {0,1} vs {2,3}

  node::ClusterConfig cfg;
  cfg.node_count = 4;
  cfg.chain_name = "incident-log";
  cfg.member_role = "responder";
  cfg.seed = 12;
  node::Cluster cluster(cfg, &topo);
  cluster.RunFor(20'000);

  cluster.node(0)
      .CreateCrdt("notes", crdt::CrdtType::kRga, crdt::ValueType::kStr,
                  csm::AclPolicy::AllowAll())
      .value();
  cluster.RunFor(10'000);

  AppendLine(&cluster.node(0), "08:10 arrived on scene").value();
  cluster.RunFor(5'000);
  AppendLine(&cluster.node(1), "08:12 two casualties triaged").value();
  cluster.RunFor(20'000);
  PrintDoc(cluster.node(3), "before partition (node 3's view)");

  // Partition hits at t=60s; both teams keep writing.
  cluster.RunFor(10'000);
  AppendLine(&cluster.node(0), "08:16 [team A] north wing cleared").value();
  AppendLine(&cluster.node(2), "08:16 [team B] gas leak in basement")
      .value();
  cluster.RunFor(20'000);
  AppendLine(&cluster.node(1), "08:19 [team A] requesting ambulance")
      .value();
  AppendLine(&cluster.node(3), "08:19 [team B] utilities shut off").value();
  std::printf("\npartition active: the teams see different documents\n");
  PrintDoc(cluster.node(0), "team A view");
  PrintDoc(cluster.node(2), "team B view");

  // Heal and converge.
  cluster.RunFor(200'000);
  std::printf("\nhealed: all replicas render the identical document\n");
  PrintDoc(cluster.node(0), "merged document");

  bool identical = true;
  const auto reference =
      cluster.node(0).state().FindCrdtAs<crdt::Rga>("notes")->Values();
  for (int i = 1; i < cluster.size(); ++i) {
    identical &= (cluster.node(i)
                      .state()
                      .FindCrdtAs<crdt::Rga>("notes")
                      ->Values() == reference);
  }
  std::printf("replicas identical: %s; converged: %s\n",
              identical ? "yes" : "no",
              cluster.Converged() ? "yes" : "no");
  return 0;
}
