// Fuzz target: crdt::Value decoder (the typed transaction-argument
// dynamic value: bool / zigzag int / string / bytes).
//
// Like Transaction::Decode this is a streaming decoder, so the oracle
// round-trips the consumed prefix.
#include <cstddef>
#include <cstdint>

#include "crdt/value.h"
#include "fuzz_util.h"
#include "serial/codec.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace vegvisir;
  const ByteSpan input(data, size);
  serial::Reader r(input);
  crdt::Value v;
  if (!crdt::Value::Decode(&r, &v).ok()) return 0;
  serial::Writer w;
  v.Encode(&w);
  fuzz::CheckRoundTrip("fuzz_crdt_value",
                       input.subspan(0, input.size() - r.remaining()),
                       w.buffer());
  return 0;
}
