// Fuzz target: the reconciliation-v2 negotiation messages (DiffProbe,
// DiffSketch, DiffResult — DESIGN.md §16).
//
// Dispatches on PeekType exactly like the sessions do, then decodes
// the matching message. The hazards are the three new wire counts
// (range cells, IBLT cells, diff hashes), each CheckWireCount-bounded;
// the count-bomb regressions live under tests/corpus/setdiff_messages/.
// Canonicality gives the usual strong oracle: any accepted input must
// re-encode byte-identically.
#include <cstddef>
#include <cstdint>

#include "fuzz_util.h"
#include "recon/messages.h"

namespace {

template <typename M>
void DecodeAndRoundTrip(vegvisir::ByteSpan input) {
  using namespace vegvisir;
  M m;
  if (!recon::DecodeMessage(input, &m).ok()) return;
  fuzz::CheckRoundTrip("fuzz_setdiff_messages", input,
                       recon::EncodeMessage(m));
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace vegvisir;
  const ByteSpan input(data, size);
  StatusOr<recon::MessageType> type = recon::PeekType(input);
  if (!type.ok()) return 0;
  switch (*type) {
    case recon::MessageType::kDiffProbe:
      DecodeAndRoundTrip<recon::DiffProbe>(input);
      break;
    case recon::MessageType::kDiffSketch:
      DecodeAndRoundTrip<recon::DiffSketch>(input);
      break;
    case recon::MessageType::kDiffResult:
      DecodeAndRoundTrip<recon::DiffResult>(input);
      break;
    default:
      // Tags 1-5 belong to fuzz_recon_messages.
      break;
  }
  return 0;
}
