// Fuzz target: the gossip envelope framing plus the recon payload it
// carries — the exact byte path a hostile radio neighbour controls
// (node/gossip.cpp hands every received datagram to ParseEnvelope
// before any session sees the payload).
#include <cstddef>
#include <cstdint>

#include "fuzz_util.h"
#include "node/gossip.h"
#include "recon/messages.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace vegvisir;
  const ByteSpan input(data, size);
  node::GossipEnvelope env;
  if (!node::ParseEnvelope(input, &env).ok()) return 0;
  if (env.direction != node::kEnvelopeToResponder &&
      env.direction != node::kEnvelopeToInitiator) {
    fuzz::OracleFailure("fuzz_gossip_envelope",
                        "accepted envelope with invalid direction");
  }
  if (env.payload.size() + node::kEnvelopeHeaderBytes != input.size()) {
    fuzz::OracleFailure("fuzz_gossip_envelope",
                        "payload view does not cover the envelope body");
  }
  // Drive the payload through the same decoders a session would use.
  StatusOr<recon::MessageType> type = recon::PeekType(env.payload);
  if (!type.ok()) return 0;
  switch (*type) {
    case recon::MessageType::kFrontierRequest: {
      recon::FrontierRequest m;
      (void)recon::DecodeMessage(env.payload, &m);
      break;
    }
    case recon::MessageType::kFrontierResponse: {
      recon::FrontierResponse m;
      (void)recon::DecodeMessage(env.payload, &m);
      break;
    }
    case recon::MessageType::kBlockRequest: {
      recon::BlockRequest m;
      (void)recon::DecodeMessage(env.payload, &m);
      break;
    }
    case recon::MessageType::kBlockResponse: {
      recon::BlockResponse m;
      (void)recon::DecodeMessage(env.payload, &m);
      break;
    }
    case recon::MessageType::kPushBlocks: {
      recon::PushBlocks m;
      (void)recon::DecodeMessage(env.payload, &m);
      break;
    }
    case recon::MessageType::kDiffProbe: {
      recon::DiffProbe m;
      (void)recon::DecodeMessage(env.payload, &m);
      break;
    }
    case recon::MessageType::kDiffSketch: {
      recon::DiffSketch m;
      (void)recon::DecodeMessage(env.payload, &m);
      break;
    }
    case recon::MessageType::kDiffResult: {
      recon::DiffResult m;
      (void)recon::DecodeMessage(env.payload, &m);
      break;
    }
  }
  return 0;
}
