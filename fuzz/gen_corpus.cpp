// Seed-corpus generator for the fuzz targets.
//
// Writes one directory per target under the given root (the layout
// committed at tests/corpus/): valid encodings produced by the real
// encoders, so every fuzz run starts from structurally deep inputs,
// plus `crash-*.bin` files reproducing historical decoder crashes.
// Those crash inputs double as regression tests: the standalone
// driver replays them on every ctest run and tests/corpus_test.cpp
// asserts they are rejected cleanly.
//
// Usage: gen_corpus <output-root>
// Regenerate with: ./gen_corpus ../tests/corpus (from the build dir).
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "chain/block.h"
#include "chain/certificate.h"
#include "chain/genesis.h"
#include "crypto/ed25519.h"
#include "node/gossip.h"
#include "recon/messages.h"
#include "serial/codec.h"
#include "util/bytes.h"

namespace {

using namespace vegvisir;

std::filesystem::path g_root;

void WriteSeed(const std::string& dir, const std::string& name,
               const Bytes& data) {
  const std::filesystem::path out = g_root / dir / name;
  std::filesystem::create_directories(out.parent_path());
  std::ofstream f(out, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(data.data()),
          static_cast<std::streamsize>(data.size()));
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out.string().c_str());
    std::exit(1);
  }
}

// The maximal-varint count that used to wrap `count * 32` past the
// bounds check (0x0800000000000001 * 32 == 2^64 + 32): the decoder
// saw "32 bytes needed, 32 available" and reserve() blew up instead.
void AppendCountBomb(serial::Writer* w) {
  w->WriteVarint(0x0800000000000001ULL);
  for (int i = 0; i < 40; ++i) w->WriteU8(0xAA);
}

crypto::KeyPair TestKeys(std::uint8_t fill) {
  std::array<std::uint8_t, crypto::kEd25519SeedSize> seed;
  seed.fill(fill);
  return crypto::KeyPair::FromSeed(seed);
}

void EmitBlockSeeds(const chain::Block& genesis, const chain::Block& child) {
  WriteSeed("block", "seed-genesis.bin", genesis.Serialize());
  WriteSeed("block", "seed-child.bin", child.Serialize());
  // Historical crasher: empty user id, no location, parent-count bomb.
  serial::Writer w;
  w.WriteString("");
  w.WriteU64(1);
  w.WriteBool(false);
  AppendCountBomb(&w);
  WriteSeed("block", "crash-parent-count-bomb.bin", w.Take());
}

void EmitTransactionSeeds(const chain::Block& child) {
  for (std::size_t i = 0; i < child.transactions().size(); ++i) {
    serial::Writer w;
    child.transactions()[i].Encode(&w);
    WriteSeed("transaction", "seed-tx" + std::to_string(i) + ".bin",
              w.Take());
  }
}

void EmitCertificateSeeds(const crypto::KeyPair& owner,
                          const crypto::KeyPair& member) {
  const chain::Certificate cert = chain::IssueCertificate(
      "alice", member.public_key(), "user", owner);
  WriteSeed("certificate", "seed-member.bin", cert.Serialize());
}

void EmitValueSeeds() {
  const std::vector<std::pair<std::string, crdt::Value>> values = {
      {"bool", crdt::Value::OfBool(true)},
      {"int", crdt::Value::OfInt(-123456789)},
      {"str", crdt::Value::OfStr("hello, vegvisir")},
      {"bytes", crdt::Value::OfBytes(Bytes{0xde, 0xad, 0xbe, 0xef})},
  };
  for (const auto& [name, v] : values) {
    serial::Writer w;
    v.Encode(&w);
    WriteSeed("crdt_value", "seed-" + name + ".bin", w.Take());
  }
}

void EmitReconSeeds(const chain::Block& genesis, const chain::Block& child) {
  recon::FrontierRequest freq;
  freq.level = 1;
  freq.genesis = genesis.hash();
  WriteSeed("recon_messages", "seed-frontier-request.bin",
            recon::EncodeMessage(freq));

  recon::FrontierResponse fresp;
  fresp.level = 1;
  fresp.genesis = genesis.hash();
  fresp.hashes = {child.hash()};
  fresp.blocks = {child.Serialize()};
  WriteSeed("recon_messages", "seed-frontier-response.bin",
            recon::EncodeMessage(fresp));

  recon::BlockRequest breq;
  breq.hashes = {child.hash(), genesis.hash()};
  WriteSeed("recon_messages", "seed-block-request.bin",
            recon::EncodeMessage(breq));

  recon::BlockResponse bresp;
  bresp.blocks = {genesis.Serialize(), child.Serialize()};
  WriteSeed("recon_messages", "seed-block-response.bin",
            recon::EncodeMessage(bresp));

  recon::PushBlocks push;
  push.blocks = {child.Serialize()};
  WriteSeed("recon_messages", "seed-push-blocks.bin",
            recon::EncodeMessage(push));

  // Hash-count bomb inside a BlockRequest (same wrap-the-check class
  // as the block parent-count crasher).
  serial::Writer w;
  w.WriteU8(static_cast<std::uint8_t>(recon::MessageType::kBlockRequest));
  AppendCountBomb(&w);
  WriteSeed("recon_messages", "crash-hash-count-bomb.bin", w.Take());
}

void EmitSetdiffSeeds(const chain::Block& genesis, const chain::Block& child) {
  recon::DiffProbe probe;
  probe.genesis = genesis.hash();
  probe.frontier_digest = child.hash();
  probe.digest.Insert(genesis.hash());
  probe.digest.Insert(child.hash());
  WriteSeed("setdiff_messages", "seed-diff-probe.bin",
            recon::EncodeMessage(probe));

  recon::DiffProbe escalated = probe;
  escalated.requested_cells = 64;
  WriteSeed("setdiff_messages", "seed-diff-probe-escalated.bin",
            recon::EncodeMessage(escalated));

  recon::DiffSketch sketch;
  sketch.genesis = genesis.hash();
  sketch.seed = setdiff::SeedForCells(16);
  sketch.set_size = 2;
  sketch.estimated_delta = 1;
  sketch.frontier = {child.hash()};
  sketch.sketch = setdiff::Iblt(16, sketch.seed);
  sketch.sketch.Insert(genesis.hash());
  sketch.sketch.Insert(child.hash());
  WriteSeed("setdiff_messages", "seed-diff-sketch.bin",
            recon::EncodeMessage(sketch));

  recon::DiffResult ok;
  ok.decoded = true;
  ok.peer_missing = {child.hash()};
  WriteSeed("setdiff_messages", "seed-diff-result-decoded.bin",
            recon::EncodeMessage(ok));

  recon::DiffResult fell_back;
  WriteSeed("setdiff_messages", "seed-diff-result-fallback.bin",
            recon::EncodeMessage(fell_back));

  // IBLT cell-count bomb inside a DiffSketch: tag, genesis, seed,
  // set_size, delta, empty frontier, then the wrap-the-check count.
  serial::Writer w;
  w.WriteU8(static_cast<std::uint8_t>(recon::MessageType::kDiffSketch));
  w.WriteFixed(genesis.hash());
  w.WriteU64(sketch.seed);
  w.WriteVarint(2);
  w.WriteVarint(1);
  w.WriteVarint(0);
  AppendCountBomb(&w);
  WriteSeed("setdiff_messages", "crash-cell-count-bomb.bin", w.Take());
}

void EmitEnvelopeSeeds(const chain::Block& genesis) {
  recon::FrontierRequest freq;
  freq.genesis = genesis.hash();

  serial::Writer to_responder;
  to_responder.WriteU8(node::kEnvelopeToResponder);
  to_responder.WriteU64(7);
  const Bytes payload = recon::EncodeMessage(freq);
  for (std::uint8_t b : payload) to_responder.WriteU8(b);
  WriteSeed("gossip_envelope", "seed-to-responder.bin", to_responder.Take());

  recon::BlockResponse bresp;
  bresp.blocks = {genesis.Serialize()};
  serial::Writer to_initiator;
  to_initiator.WriteU8(node::kEnvelopeToInitiator);
  to_initiator.WriteU64(7);
  const Bytes reply = recon::EncodeMessage(bresp);
  for (std::uint8_t b : reply) to_initiator.WriteU8(b);
  WriteSeed("gossip_envelope", "seed-to-initiator.bin", to_initiator.Take());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: gen_corpus <output-root>\n");
    return 2;
  }
  g_root = argv[1];

  const crypto::KeyPair owner = TestKeys(0x07);
  const crypto::KeyPair member = TestKeys(0x09);
  const chain::Block genesis = chain::GenesisBuilder("fuzz-chain")
                                   .WithTimestamp(1'000)
                                   .Build("owner", owner);
  chain::BlockHeader header;
  header.user_id = "owner";
  header.timestamp_ms = 2'000;
  header.location = chain::GeoLocation{42.44, -76.48};
  header.parents = {genesis.hash()};
  std::vector<chain::Transaction> txns(2);
  txns[0].crdt_name = "sensors";
  txns[0].op = "add";
  txns[0].args = {crdt::Value::OfStr("t-1"), crdt::Value::OfInt(21)};
  txns[1].crdt_name = "flags";
  txns[1].op = "enable";
  txns[1].args = {crdt::Value::OfBool(true),
                  crdt::Value::OfBytes(Bytes{1, 2, 3})};
  const chain::Block child = chain::Block::Create(header, txns, owner);

  EmitBlockSeeds(genesis, child);
  EmitTransactionSeeds(child);
  EmitCertificateSeeds(owner, member);
  EmitValueSeeds();
  EmitReconSeeds(genesis, child);
  EmitSetdiffSeeds(genesis, child);
  EmitEnvelopeSeeds(genesis);

  std::printf("corpus written under %s\n", g_root.string().c_str());
  return 0;
}
