// Fuzz target: the five reconciliation wire messages (paper §IV-G).
//
// Dispatches on PeekType exactly like the sessions do, then decodes
// the matching message. ReadHashes/ReadBlockList carry the same
// count-bomb hazard the block decoder had; the divide-style guards
// are pinned by corpus entries under tests/corpus/recon_messages/.
#include <cstddef>
#include <cstdint>

#include "fuzz_util.h"
#include "recon/messages.h"

namespace {

template <typename M>
void DecodeAndRoundTrip(vegvisir::ByteSpan input) {
  using namespace vegvisir;
  M m;
  if (!recon::DecodeMessage(input, &m).ok()) return;
  fuzz::CheckRoundTrip("fuzz_recon_messages", input, recon::EncodeMessage(m));
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace vegvisir;
  const ByteSpan input(data, size);
  StatusOr<recon::MessageType> type = recon::PeekType(input);
  if (!type.ok()) return 0;
  switch (*type) {
    case recon::MessageType::kFrontierRequest:
      DecodeAndRoundTrip<recon::FrontierRequest>(input);
      break;
    case recon::MessageType::kFrontierResponse:
      DecodeAndRoundTrip<recon::FrontierResponse>(input);
      break;
    case recon::MessageType::kBlockRequest:
      DecodeAndRoundTrip<recon::BlockRequest>(input);
      break;
    case recon::MessageType::kBlockResponse:
      DecodeAndRoundTrip<recon::BlockResponse>(input);
      break;
    case recon::MessageType::kPushBlocks:
      DecodeAndRoundTrip<recon::PushBlocks>(input);
      break;
    default:
      // Tags 6-8 (the setdiff negotiation) have their own target,
      // fuzz_setdiff_messages, with its own corpus.
      break;
  }
  return 0;
}
