// Shared helpers for the wire-decoder fuzz targets.
//
// Each target defines LLVMFuzzerTestOneInput and nothing else, so the
// same object links against libFuzzer (Clang, VEGVISIR_FUZZ=ON) or
// against the standalone replay/mutation driver (everything else; see
// standalone_driver.cpp).
//
// The decoders under test are canonical: a value has exactly one
// encoding, minimal-length varints are enforced and ExpectEnd()
// rejects trailing bytes. That yields a strong oracle beyond "must not
// crash": whenever a decode succeeds, re-encoding must reproduce the
// input bytes exactly. A violation means two encodings map to one
// value (breaking hash-as-commitment) and aborts the process so both
// drivers report it as a crash.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "util/bytes.h"

namespace vegvisir::fuzz {

inline bool SpanEq(ByteSpan a, ByteSpan b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

[[noreturn]] inline void OracleFailure(const char* target, const char* what) {
  std::fprintf(stderr, "%s: oracle violated: %s\n", target, what);
  std::abort();
}

// Round-trip check: `reencoded` must equal the consumed prefix of the
// fuzz input (the whole input when the decoder enforces ExpectEnd).
inline void CheckRoundTrip(const char* target, ByteSpan consumed,
                           ByteSpan reencoded) {
  if (!SpanEq(consumed, reencoded)) {
    OracleFailure(target, "decode/encode round trip is not byte-identical");
  }
}

}  // namespace vegvisir::fuzz
