// Fuzz target: chain::Transaction decoder (crdt name, op, typed
// argument list).
//
// Transaction::Decode is a streaming decoder (no ExpectEnd — blocks
// embed a sequence of them), so the round-trip oracle compares the
// re-encoding against the consumed prefix only.
#include <cstddef>
#include <cstdint>

#include "chain/transaction.h"
#include "fuzz_util.h"
#include "serial/codec.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace vegvisir;
  const ByteSpan input(data, size);
  serial::Reader r(input);
  chain::Transaction tx;
  if (!chain::Transaction::Decode(&r, &tx).ok()) return 0;
  serial::Writer w;
  tx.Encode(&w);
  fuzz::CheckRoundTrip("fuzz_transaction",
                       input.subspan(0, input.size() - r.remaining()),
                       w.buffer());
  return 0;
}
