// Fuzz target: chain::Certificate wire decoder (user id, public key,
// role, CA signature — the form stored in the membership set U).
#include <cstddef>
#include <cstdint>

#include "chain/certificate.h"
#include "fuzz_util.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace vegvisir;
  const ByteSpan input(data, size);
  StatusOr<chain::Certificate> cert = chain::Certificate::Deserialize(input);
  if (!cert.ok()) return 0;
  fuzz::CheckRoundTrip("fuzz_certificate", input, cert->Serialize());
  return 0;
}
