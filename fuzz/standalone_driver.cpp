// Standalone driver for the fuzz targets when libFuzzer is not
// available (GCC builds, ctest smoke runs).
//
// Two phases, both deterministic:
//   1. Replay: every file under the given paths (files or directories,
//      recursed) is fed to LLVMFuzzerTestOneInput verbatim. This is
//      how committed crash corpora act as regression tests even in
//      uninstrumented builds.
//   2. Mutate: a seeded xoshiro Rng repeatedly picks a corpus input
//      (or starts empty), applies a burst of structure-unaware
//      mutations (bit flips, truncation, insertion, splicing, varint
//      bombs) and runs the result. No coverage feedback — this is a
//      smoke screen, not a search — but the same binary recompiled
//      with Clang and -fsanitize=fuzzer gets the real engine.
//
// Usage: fuzz_target [--mutations N] [--seed S] [--max-len L] [path...]
// Exits 0 unless the target aborts (oracle violation / sanitizer).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/rng.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

using vegvisir::Bytes;
using vegvisir::Rng;

bool ReadFile(const std::filesystem::path& path, Bytes* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return true;
}

void CollectInputs(const std::string& arg, std::vector<Bytes>* corpus,
                   std::size_t* files) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path path(arg);
  if (fs::is_directory(path, ec)) {
    std::vector<fs::path> entries;
    for (const auto& entry : fs::recursive_directory_iterator(path, ec)) {
      if (entry.is_regular_file(ec)) entries.push_back(entry.path());
    }
    // Directory iteration order is filesystem-dependent; sort so the
    // mutation phase below sees a deterministic corpus ordering.
    std::sort(entries.begin(), entries.end());
    for (const fs::path& p : entries) {
      Bytes data;
      if (ReadFile(p, &data)) {
        corpus->push_back(std::move(data));
        ++*files;
      }
    }
  } else {
    Bytes data;
    if (ReadFile(path, &data)) {
      corpus->push_back(std::move(data));
      ++*files;
    } else {
      std::fprintf(stderr, "warning: cannot read %s\n", arg.c_str());
    }
  }
}

void Mutate(Rng& rng, std::size_t max_len, Bytes* input) {
  const std::uint64_t burst = 1 + rng.NextBelow(8);
  for (std::uint64_t i = 0; i < burst; ++i) {
    switch (rng.NextBelow(6)) {
      case 0:  // flip bits in one byte
        if (!input->empty()) {
          (*input)[rng.NextBelow(input->size())] ^=
              static_cast<std::uint8_t>(1u << rng.NextBelow(8));
        }
        break;
      case 1:  // overwrite a byte with an interesting value
        if (!input->empty()) {
          static constexpr std::uint8_t kMagic[] = {0x00, 0x01, 0x7f, 0x80,
                                                    0xfe, 0xff};
          (*input)[rng.NextBelow(input->size())] =
              kMagic[rng.NextBelow(sizeof(kMagic))];
        }
        break;
      case 2:  // insert a random byte
        if (input->size() < max_len) {
          input->insert(input->begin() +
                            static_cast<std::ptrdiff_t>(
                                rng.NextBelow(input->size() + 1)),
                        static_cast<std::uint8_t>(rng.NextBelow(256)));
        }
        break;
      case 3:  // erase a byte
        if (!input->empty()) {
          input->erase(input->begin() +
                       static_cast<std::ptrdiff_t>(
                           rng.NextBelow(input->size())));
        }
        break;
      case 4:  // truncate
        if (!input->empty()) {
          input->resize(rng.NextBelow(input->size()));
        }
        break;
      case 5: {  // splice in a maximal varint (count-bomb bait)
        static constexpr std::uint8_t kBomb[] = {0x81, 0x80, 0x80, 0x80, 0x80,
                                                 0x80, 0x80, 0x80, 0x80, 0x01};
        if (input->size() + sizeof(kBomb) <= max_len) {
          const std::size_t at = rng.NextBelow(input->size() + 1);
          input->insert(input->begin() + static_cast<std::ptrdiff_t>(at),
                        kBomb, kBomb + sizeof(kBomb));
        }
        break;
      }
    }
  }
  if (input->size() > max_len) input->resize(max_len);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t mutations = 2000;
  std::uint64_t seed = 1;
  std::size_t max_len = 1 << 16;
  std::vector<Bytes> corpus;
  std::size_t files = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--mutations") {
      mutations = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--max-len") {
      max_len = std::strtoull(next(), nullptr, 10);
    } else {
      CollectInputs(arg, &corpus, &files);
    }
  }

  for (const Bytes& input : corpus) {
    (void)LLVMFuzzerTestOneInput(input.data(), input.size());
  }

  Rng rng(seed);
  for (std::uint64_t i = 0; i < mutations; ++i) {
    Bytes input;
    if (!corpus.empty() && rng.NextBool(0.85)) {
      input = corpus[rng.NextBelow(corpus.size())];
    }
    Mutate(rng, max_len, &input);
    (void)LLVMFuzzerTestOneInput(input.data(), input.size());
  }

  std::printf("replayed %zu corpus files, ran %llu mutations: ok\n", files,
              static_cast<unsigned long long>(mutations));
  return 0;
}
