// Fuzz target: chain::Block wire decoder (full block: header,
// transactions, signature).
//
// Historical crasher pinned by tests/corpus/block/crash-*.bin: a
// parent count near 2^64 wrapped the `count * sizeof(hash)` bounds
// check and drove parents.reserve() into an allocation bomb
// (std::length_error). The guard now divides instead.
#include <cstddef>
#include <cstdint>

#include "chain/block.h"
#include "fuzz_util.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace vegvisir;
  const ByteSpan input(data, size);
  StatusOr<chain::Block> block = chain::Block::Deserialize(input);
  if (!block.ok()) return 0;
  // Deserialize enforces canonical form end to end (minimal varints,
  // sorted parents, no trailing bytes), so success implies an exact
  // byte round trip — and a hash that commits to the input bytes.
  fuzz::CheckRoundTrip("fuzz_block", input, block->Serialize());
  return 0;
}
