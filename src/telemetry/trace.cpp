#include "telemetry/trace.h"

#include <algorithm>

namespace vegvisir::telemetry {

Tracer::Tracer(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {
  ring_.reserve(capacity_);
}

void Tracer::Push(const TraceEvent& event) {
  recorded_ += 1;
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
    size_ = ring_.size();
    return;
  }
  ring_[next_] = event;
  next_ = (next_ + 1) % capacity_;
}

void Tracer::RecordSpan(const char* name, TimeMs start_ms, TimeMs end_ms,
                        std::uint64_t a, std::uint64_t b) {
  TraceEvent e;
  e.kind = TraceEvent::Kind::kSpan;
  e.name = name;
  e.start_ms = start_ms;
  e.end_ms = std::max(start_ms, end_ms);
  e.a = a;
  e.b = b;
  Push(e);
}

void Tracer::RecordInstant(const char* name, TimeMs at_ms, std::uint64_t a,
                           std::uint64_t b) {
  TraceEvent e;
  e.kind = TraceEvent::Kind::kInstant;
  e.name = name;
  e.start_ms = at_ms;
  e.end_ms = at_ms;
  e.a = a;
  e.b = b;
  Push(e);
}

std::vector<TraceEvent> Tracer::Events() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  if (ring_.size() < capacity_) {
    out = ring_;
    return out;
  }
  // Full ring: the oldest event sits at the write cursor.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % capacity_]);
  }
  return out;
}

void Tracer::Clear() {
  ring_.clear();
  next_ = 0;
  size_ = 0;
  recorded_ = 0;
}

}  // namespace vegvisir::telemetry
