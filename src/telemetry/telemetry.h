// The per-node telemetry bundle: one metrics registry plus one
// sim-time tracer, wired through every layer a node owns (gossip
// engine, reconciliation sessions, validation, CSM). Components that
// are handed no bundle fall back to a private one, so their stats
// accessors keep working standalone; a Cluster provides one bundle
// per node and aggregates them (see node/cluster.h).
#pragma once

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace vegvisir::telemetry {

struct Telemetry {
  Telemetry() : trace(4096) {}

  MetricsRegistry metrics;
  Tracer trace;
};

}  // namespace vegvisir::telemetry
