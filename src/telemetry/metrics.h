// Metrics registry: named counters, gauges and fixed-bucket
// histograms shared by every layer of the system.
//
// The paper's evaluation (§V) is measurement-driven — reconciliation
// rounds, bytes on the wire, convergence after partition heal, energy
// per block — and related IoT-ledger work (DLedger, Cao et al. 2019)
// treats resource accounting as a first-class design input on
// constrained devices. This registry is the single sink those
// measurements flow through.
//
// Hot-path discipline: a metric is resolved to a handle ONCE
// (`GetCounter` et al. allocate on first use); the handle is a bare
// pointer into registry-owned storage, so an increment is one relaxed
// atomic add — no lookup, no allocation, no lock. Default-constructed
// handles are valid no-ops, so uninstrumented components cost a
// predictable branch.
//
// Concurrency contract (DESIGN.md §12/§14): counter/gauge cells are
// atomics, so `Inc`/`Add`/`Set` are safe from exec-pool workers.
// Registration (`Get*`), point reads and `TakeSnapshot` serialize on
// the registry mutex (cells live in deques, so a concurrent
// registration never moves an existing cell). Histogram `Observe`
// mutates its cell without a lock and stays on the owning (serial)
// thread — handles are resolved in constructors before any worker
// exists, and histograms are only observed from the thread that
// submits work.
//
// Registries are per node; `Snapshot::Merge` aggregates across a
// Cluster, `Snapshot::DiffSince` isolates a measurement window.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "util/thread_annotations.h"

namespace vegvisir::telemetry {

class MetricsRegistry;

class Counter {
 public:
  Counter() = default;
  void Inc(std::uint64_t n = 1) {
    if (cell_ != nullptr) cell_->fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return cell_ == nullptr ? 0 : cell_->load(std::memory_order_relaxed);
  }
  bool bound() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::atomic<std::uint64_t>* cell) : cell_(cell) {}
  std::atomic<std::uint64_t>* cell_ = nullptr;
};

class Gauge {
 public:
  Gauge() = default;
  void Set(double v) {
    if (cell_ != nullptr) cell_->store(v, std::memory_order_relaxed);
  }
  // Read-modify-write via CAS: atomic<double> has no fetch_add on
  // every toolchain this builds with.
  void Add(double d) {
    if (cell_ == nullptr) return;
    double cur = cell_->load(std::memory_order_relaxed);
    while (!cell_->compare_exchange_weak(cur, cur + d,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const {
    return cell_ == nullptr ? 0.0 : cell_->load(std::memory_order_relaxed);
  }
  bool bound() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::atomic<double>* cell) : cell_(cell) {}
  std::atomic<double>* cell_ = nullptr;
};

// Bucket counts for a histogram: `counts[i]` is the number of
// observations <= bounds[i]; the final slot counts the +inf overflow.
struct HistogramData {
  std::vector<double> bounds;        // ascending upper bounds
  std::vector<std::uint64_t> counts; // bounds.size() + 1 slots
  std::uint64_t count = 0;
  double sum = 0.0;
};

class Histogram {
 public:
  Histogram() = default;
  void Observe(double v);
  const HistogramData* data() const { return cell_; }
  bool bound() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(HistogramData* cell) : cell_(cell) {}
  HistogramData* cell_ = nullptr;
};

// A point-in-time copy of every metric in a registry. Plain data:
// copyable, mergeable, diffable — the unit the exporters and the
// bench output consume.
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;

  // Counter and histogram deltas since `earlier` (names absent there
  // count from zero); gauges keep their current value. The
  // before/after helper for scoped measurements.
  Snapshot DiffSince(const Snapshot& earlier) const;

  // Sums `other` into this snapshot: counters and histogram buckets
  // add; gauges add too (the useful reading for sizes and totals
  // when aggregating a cluster). Histograms with mismatched bucket
  // bounds keep the left-hand side's shape and only add count/sum.
  void Merge(const Snapshot& other);

  // Sum of every counter whose name starts with `prefix` (e.g.
  // "fault." or "recon.initiator."). Invariant checks aggregate whole
  // families with this instead of enumerating names.
  std::uint64_t CounterSumByPrefix(const std::string& prefix) const;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

// Owns metric storage. Cells live in deques, so handles stay valid
// for the registry's lifetime (and across moves of whoever owns the
// registry, as long as the registry itself is heap-allocated or
// otherwise address-stable).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Resolve-once lookups: the first call registers the metric, later
  // calls return a handle to the same cell.
  Counter GetCounter(const std::string& name);
  Gauge GetGauge(const std::string& name);
  // `bounds` are ascending upper bucket bounds; they are fixed at
  // first registration (later calls ignore the argument).
  Histogram GetHistogram(const std::string& name, std::vector<double> bounds);

  // Point reads for shims and tests (0 / 0.0 when unregistered).
  std::uint64_t CounterValue(const std::string& name) const;
  double GaugeValue(const std::string& name) const;

  Snapshot TakeSnapshot() const;

 private:
  // Guards the name→cell maps and cell deques (the registration
  // path). The cells themselves are NOT guarded: counter/gauge cells
  // are atomics addressed through handles, and deque growth never
  // invalidates them. Rank kTelemetryRegistry — the innermost lock
  // in the tree: registration runs under the storage-engine lock
  // (TieredStore::Open wires counters while holding mu_), and
  // nothing is ever acquired under this one.
  mutable util::Mutex mu_{util::LockRank::kTelemetryRegistry};
  std::deque<std::atomic<std::uint64_t>> counter_cells_
      VEGVISIR_GUARDED_BY(mu_);
  std::map<std::string, std::atomic<std::uint64_t>*> counters_
      VEGVISIR_GUARDED_BY(mu_);
  std::deque<std::atomic<double>> gauge_cells_ VEGVISIR_GUARDED_BY(mu_);
  std::map<std::string, std::atomic<double>*> gauges_ VEGVISIR_GUARDED_BY(mu_);
  std::deque<HistogramData> histogram_cells_ VEGVISIR_GUARDED_BY(mu_);
  std::map<std::string, HistogramData*> histograms_ VEGVISIR_GUARDED_BY(mu_);
};

// Bucket helper: {1, 2, 4, ..., 2^(n-1)} — the natural scale for
// escalation levels, round counts and message sizes.
std::vector<double> PowerOfTwoBounds(int n);

}  // namespace vegvisir::telemetry
