#include "telemetry/bench_io.h"

#include <cmath>
#include <cstdio>

#include "telemetry/export.h"

namespace vegvisir::telemetry {
namespace {

std::string NumOrZero(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

Status WriteBenchJson(const std::string& name, const Snapshot& snapshot,
                      const std::vector<BenchValue>& extra,
                      const std::string& dir) {
  std::string body = "{\n\"bench\": \"" + name + "\",\n\"extra\": {";
  bool first = true;
  for (const BenchValue& v : extra) {
    body += std::string(first ? "\n  \"" : ",\n  \"") + v.key +
            "\": " + NumOrZero(v.value);
    first = false;
  }
  body += first ? "},\n" : "\n},\n";
  // Splice the metric sections out of the standard JSON export so the
  // file and the exporter can never disagree.
  const std::string metrics = ToJson(snapshot);
  body += "\"metrics\": " + metrics + "\n}\n";

  const std::string path = dir + "/BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status(ErrorCode::kInternal, "cannot open " + path);
  }
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const int rc = std::fclose(f);
  if (written != body.size() || rc != 0) {
    return Status(ErrorCode::kInternal, "short write to " + path);
  }
  std::printf("telemetry: wrote %s\n", path.c_str());
  return Status::Ok();
}

}  // namespace vegvisir::telemetry
