#include "telemetry/metrics.h"

#include <algorithm>

namespace vegvisir::telemetry {

void Histogram::Observe(double v) {
  if (cell_ == nullptr) return;
  // Linear scan: bucket counts are small (<= ~16) and fixed, which
  // beats binary search on these sizes and keeps the hot path
  // branch-predictable.
  std::size_t i = 0;
  while (i < cell_->bounds.size() && v > cell_->bounds[i]) ++i;
  cell_->counts[i] += 1;
  cell_->count += 1;
  cell_->sum += v;
}

Counter MetricsRegistry::GetCounter(const std::string& name) {
  const util::MutexLock guard(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return Counter(it->second);
  std::atomic<std::uint64_t>* cell = &counter_cells_.emplace_back(0);
  counters_.emplace(name, cell);
  return Counter(cell);
}

Gauge MetricsRegistry::GetGauge(const std::string& name) {
  const util::MutexLock guard(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return Gauge(it->second);
  std::atomic<double>* cell = &gauge_cells_.emplace_back(0.0);
  gauges_.emplace(name, cell);
  return Gauge(cell);
}

Histogram MetricsRegistry::GetHistogram(const std::string& name,
                                        std::vector<double> bounds) {
  const util::MutexLock guard(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return Histogram(it->second);
  std::sort(bounds.begin(), bounds.end());
  HistogramData data;
  data.counts.assign(bounds.size() + 1, 0);
  data.bounds = std::move(bounds);
  histogram_cells_.push_back(std::move(data));
  HistogramData* cell = &histogram_cells_.back();
  histograms_.emplace(name, cell);
  return Histogram(cell);
}

std::uint64_t MetricsRegistry::CounterValue(const std::string& name) const {
  const util::MutexLock guard(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end()
             ? 0
             : it->second->load(std::memory_order_relaxed);
}

double MetricsRegistry::GaugeValue(const std::string& name) const {
  const util::MutexLock guard(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end()
             ? 0.0
             : it->second->load(std::memory_order_relaxed);
}

Snapshot MetricsRegistry::TakeSnapshot() const {
  const util::MutexLock guard(mu_);
  Snapshot snap;
  for (const auto& [name, cell] : counters_) {
    snap.counters[name] = cell->load(std::memory_order_relaxed);
  }
  for (const auto& [name, cell] : gauges_) {
    snap.gauges[name] = cell->load(std::memory_order_relaxed);
  }
  for (const auto& [name, cell] : histograms_) snap.histograms[name] = *cell;
  return snap;
}

Snapshot Snapshot::DiffSince(const Snapshot& earlier) const {
  Snapshot diff;
  for (const auto& [name, value] : counters) {
    const auto it = earlier.counters.find(name);
    diff.counters[name] =
        value - (it == earlier.counters.end() ? 0 : it->second);
  }
  for (const auto& [name, value] : gauges) diff.gauges[name] = value;
  for (const auto& [name, data] : histograms) {
    HistogramData d = data;
    const auto it = earlier.histograms.find(name);
    if (it != earlier.histograms.end() &&
        it->second.bounds == data.bounds) {
      for (std::size_t i = 0; i < d.counts.size(); ++i) {
        d.counts[i] -= it->second.counts[i];
      }
      d.count -= it->second.count;
      d.sum -= it->second.sum;
    }
    diff.histograms[name] = std::move(d);
  }
  return diff;
}

void Snapshot::Merge(const Snapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, value] : other.gauges) gauges[name] += value;
  for (const auto& [name, data] : other.histograms) {
    const auto it = histograms.find(name);
    if (it == histograms.end()) {
      histograms[name] = data;
      continue;
    }
    HistogramData& mine = it->second;
    if (mine.bounds == data.bounds) {
      for (std::size_t i = 0; i < mine.counts.size(); ++i) {
        mine.counts[i] += data.counts[i];
      }
    }
    mine.count += data.count;
    mine.sum += data.sum;
  }
}

std::uint64_t Snapshot::CounterSumByPrefix(const std::string& prefix) const {
  std::uint64_t total = 0;
  // counters is ordered by name: everything with the prefix forms one
  // contiguous range starting at lower_bound(prefix).
  for (auto it = counters.lower_bound(prefix); it != counters.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    total += it->second;
  }
  return total;
}

std::vector<double> PowerOfTwoBounds(int n) {
  std::vector<double> bounds;
  double b = 1.0;
  for (int i = 0; i < n; ++i, b *= 2.0) bounds.push_back(b);
  return bounds;
}

}  // namespace vegvisir::telemetry
