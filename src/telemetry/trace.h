// Span tracing on the simulator's virtual clock.
//
// Every timestamp a tracer stores is a `sim::TimeMs` handed in by the
// caller (the simulator's now(), or a node's local clock) — the
// tracer itself never reads a wall clock, so traces are as
// deterministic as the simulation that produced them.
//
// Two event shapes:
//   - spans:    an interval [start_ms, end_ms] (a reconciliation
//               session escalating through frontier levels, a
//               full catch-up after partition heal);
//   - instants: a point event (a gossip tick, one block validation,
//               one CSM apply — work that is atomic in sim time).
//
// Events carry two free uint64 details (`a`, `b`) whose meaning is
// per-name (escalation level, byte count, transaction count, ...).
// Storage is a bounded ring: recording never allocates after
// construction and never grows; once full, the oldest events are
// overwritten and counted in dropped().
//
// `name` must point at storage outliving the tracer — in practice a
// string literal ("recon.session"); the ring stores the pointer only.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vegvisir::telemetry {

using TimeMs = std::uint64_t;

struct TraceEvent {
  enum class Kind : std::uint8_t { kSpan, kInstant };
  Kind kind = Kind::kInstant;
  const char* name = "";
  TimeMs start_ms = 0;
  TimeMs end_ms = 0;  // == start_ms for instants
  std::uint64_t a = 0;
  std::uint64_t b = 0;

  TimeMs duration_ms() const { return end_ms - start_ms; }
};

class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 1024);

  void RecordSpan(const char* name, TimeMs start_ms, TimeMs end_ms,
                  std::uint64_t a = 0, std::uint64_t b = 0);
  void RecordInstant(const char* name, TimeMs at_ms, std::uint64_t a = 0,
                     std::uint64_t b = 0);

  // The retained events, oldest first.
  std::vector<TraceEvent> Events() const;

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return size_; }
  // Total events ever recorded / overwritten by the ring.
  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t dropped() const { return recorded_ - size_; }

  void Clear();

 private:
  void Push(const TraceEvent& event);

  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;  // write cursor once the ring is full
  std::size_t size_ = 0;
  std::uint64_t recorded_ = 0;
};

}  // namespace vegvisir::telemetry
