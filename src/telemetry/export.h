// Exporters: Prometheus text format and JSON.
//
// Both render a `Snapshot` (not a live registry), so a caller can
// export exactly the window it measured: take a snapshot before, one
// after, export `after.DiffSince(before)`. Metric names use dots as
// namespace separators ("recon.initiator.bytes_sent"); the
// Prometheus exporter rewrites them to the `vegvisir_`-prefixed
// underscore form the text format requires.
#pragma once

#include <string>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace vegvisir::telemetry {

// "recon.initiator.bytes_sent" -> "vegvisir_recon_initiator_bytes_sent".
std::string PrometheusName(const std::string& name);

// Prometheus text exposition format: # TYPE lines, cumulative
// histogram buckets with le labels, _sum and _count series.
std::string ToPrometheusText(const Snapshot& snapshot);

// {"counters": {...}, "gauges": {...}, "histograms": {name:
// {"bounds": [...], "counts": [...], "count": n, "sum": x}}}
std::string ToJson(const Snapshot& snapshot);

// The tracer's retained events as a JSON array (oldest first), plus
// recorded/dropped totals so truncation is visible in the output.
std::string TraceToJson(const Tracer& tracer);

}  // namespace vegvisir::telemetry
