// The single registry table of every metric and trace name in the
// system.
//
// Invariant (enforced by tools/lint/vegvisir_lint.py and by
// telemetry tests): every name passed to MetricsRegistry::GetCounter /
// GetGauge / GetHistogram and to Tracer::RecordSpan / RecordInstant
// anywhere under src/ must appear in exactly one of the tables below.
// A metric that is not declared here does not exist — adding a
// counter means adding a row, which keeps dashboards, invariant
// checks (CounterSumByPrefix) and the exporters in sync with the
// code, and makes stray or misspelled names a lint failure instead
// of a silently-empty time series.
//
// Dynamically assembled names (e.g. "recon." + side + ".rounds" in
// recon/session.cpp) must have every expansion declared here and an
// adjacent `// lint: metric-name ...` annotation at the call site
// naming those expansions.
#pragma once

#include <algorithm>
#include <string_view>

#include "telemetry/metrics.h"

namespace vegvisir::telemetry::metric_names {

inline constexpr std::string_view kCounters[] = {
    // ---- baseline protocols (src/baseline) --------------------------
    "baseline.full_exchange.blocks_inserted",
    "baseline.full_exchange.blocks_received",
    "baseline.full_exchange.bytes_received",
    "baseline.full_exchange.bytes_sent",
    "baseline.full_exchange.runs",
    // ---- conflict-free state machine (src/csm) ----------------------
    "csm.applied_blocks",
    "csm.applied_txns",
    "csm.duplicate_creates",
    "csm.rejected_txns",
    // ---- parallel execution engine (src/exec) -----------------------
    "exec.batch_jobs",
    "exec.batches",
    "exec.presig_hits",
    "exec.presig_misses",
    "exec.steals",
    "exec.tasks_executed",
    // ---- fault injector (src/sim/faults) ----------------------------
    "fault.bytes_truncated",
    "fault.crashes",
    "fault.messages_corrupted",
    "fault.messages_delayed",
    "fault.messages_dropped",
    "fault.messages_duplicated",
    "fault.messages_truncated",
    "fault.restarts",
    "fault.sends_flap_blocked",
    // ---- gossip engine (src/node/gossip) ----------------------------
    "gossip.backoffs",
    "gossip.cooldown_skips",
    "gossip.envelope_bytes_rejected",
    "gossip.envelope_bytes_unsent",
    "gossip.envelopes_rejected",
    "gossip.envelopes_unsent",
    "gossip.retries",
    "gossip.sessions_aborted",
    "gossip.sessions_timed_out",
    "gossip.ticks",
    // ---- simulated radio network (src/sim/network) ------------------
    "net.bytes_delivered",
    "net.bytes_sent",
    "net.messages_dead_letter",
    "net.messages_delivered",
    "net.messages_dropped",
    "net.messages_sent",
    "net.messages_unreachable",
    // ---- node block pipeline (src/node/node) ------------------------
    "node.blocks_accepted",
    "node.blocks_created",
    "node.blocks_quarantined",
    "node.blocks_rejected",
    "node.foreign_dropped",
    "node.quarantine_expired",
    // ---- gossip setdiff version gating (src/node/gossip) ------------
    "setdiff.peer_downgrades",
    // ---- reconciliation sessions (src/recon/session) ----------------
    "recon.initiator.blocks_inserted",
    "recon.initiator.blocks_pushed",
    "recon.initiator.blocks_received",
    "recon.initiator.bytes_received",
    "recon.initiator.bytes_sent",
    // Escalation hit the configured max_level with the gap still open
    // (both sides declared because SessionMetrics resolves per side;
    // only the initiator escalates, so the responder copy stays 0).
    "recon.initiator.level_cap_hit",
    "recon.initiator.rounds",
    "recon.initiator.sessions_completed",
    "recon.initiator.sessions_failed",
    "recon.initiator.sessions_started",
    "recon.responder.blocks_inserted",
    "recon.responder.blocks_pushed",
    "recon.responder.blocks_received",
    "recon.responder.bytes_received",
    "recon.responder.bytes_sent",
    "recon.responder.level_cap_hit",
    "recon.responder.rounds",
    "recon.responder.sessions_completed",
    "recon.responder.sessions_failed",
    "recon.responder.sessions_orphaned",
    "recon.responder.sessions_started",
    // setdiff negotiation legs (src/recon/session, src/setdiff). The
    // names are global, not per-side: each leg runs on exactly one
    // side (probes/decodes on the initiator, sketches on the
    // responder), so per-side copies would just be zeros.
    "setdiff.decode_failure",
    "setdiff.decode_success",
    "setdiff.escalations",
    "setdiff.fallbacks",
    "setdiff.probes",
    "setdiff.sketch_bytes",
    "setdiff.sketches_sent",
    // Decode-rejection verdicts: one counter per early-return class in
    // recon/messages.cpp (+ codec), per session side. The suffixes are
    // the stable names DecodeRejectName() returns.
    "recon.initiator.reject.count_overflow",
    "recon.initiator.reject.empty",
    "recon.initiator.reject.noncanonical",
    "recon.initiator.reject.other",
    "recon.initiator.reject.trailing",
    "recon.initiator.reject.truncated",
    "recon.initiator.reject.unexpected_type",
    "recon.initiator.reject.unknown_type",
    "recon.responder.reject.count_overflow",
    "recon.responder.reject.empty",
    "recon.responder.reject.noncanonical",
    "recon.responder.reject.other",
    "recon.responder.reject.trailing",
    "recon.responder.reject.truncated",
    "recon.responder.reject.unexpected_type",
    "recon.responder.reject.unknown_type",
    // ---- durable block-log storage engine (src/storage) -------------
    "storage.append_failures",
    "storage.appends",
    "storage.bytes_appended",
    "storage.cold_migrations",
    "storage.cold_read_bytes",
    "storage.cold_reads",
    "storage.faults.enospc",
    "storage.faults.short_writes",
    "storage.faults.torn_records",
    "storage.fsyncs",
    "storage.index.hits",
    "storage.index.probes",
    "storage.index.rebuilds",
    "storage.index.writes",
    "storage.recovery.bytes_dropped",
    "storage.recovery.records_replayed",
    "storage.recovery.records_truncated",
    "storage.recovery.runs",
    "storage.segments_created",
    // ---- support / superpeer offload (src/support) ------------------
    "support.blocks_archived",
    "support.bytes_reclaimed",
    "support.evictions",
    "support.refetches",
};

inline constexpr std::string_view kGauges[] = {
    "exec.pool_utilization",
    "exec.threads",
    "node.quarantine_size",
    "storage.cold_blocks",
    "storage.hot_blocks",
    "storage.hot_bytes",
    "storage.log_bytes",
    "storage.segments",
    "support.stored_bytes",
};

inline constexpr std::string_view kHistograms[] = {
    "exec.batch_size",
    "net.message_bytes",
    "recon.initiator.final_level",
    "recon.responder.final_level",
};

// Tracer span/instant names (telemetry/trace.h).
inline constexpr std::string_view kTraceNames[] = {
    "block.validate",
    "csm.apply",
    "gossip.tick",
    "recon.session",
    "recon.session.timeout",
};

namespace internal {
template <std::size_t N>
constexpr bool Contains(const std::string_view (&table)[N],
                        std::string_view name) {
  return std::find(std::begin(table), std::end(table), name) !=
         std::end(table);
}
}  // namespace internal

constexpr bool IsDeclaredCounter(std::string_view name) {
  return internal::Contains(kCounters, name);
}
constexpr bool IsDeclaredGauge(std::string_view name) {
  return internal::Contains(kGauges, name);
}
constexpr bool IsDeclaredHistogram(std::string_view name) {
  return internal::Contains(kHistograms, name);
}
constexpr bool IsDeclaredTraceName(std::string_view name) {
  return internal::Contains(kTraceNames, name);
}

// Runtime complement to the lint-time check: the names a live
// registry actually materialized that are missing from the tables.
// Tests run a full simulation and assert this comes back empty, so
// even a name the linter could not see (built dynamically, annotated
// incorrectly) cannot ship undeclared.
inline std::vector<std::string> UndeclaredNames(const Snapshot& snapshot) {
  std::vector<std::string> out;
  for (const auto& [name, value] : snapshot.counters) {
    if (!IsDeclaredCounter(name)) out.push_back(name);
  }
  for (const auto& [name, value] : snapshot.gauges) {
    if (!IsDeclaredGauge(name)) out.push_back(name);
  }
  for (const auto& [name, value] : snapshot.histograms) {
    if (!IsDeclaredHistogram(name)) out.push_back(name);
  }
  return out;
}

}  // namespace vegvisir::telemetry::metric_names
