// Machine-readable benchmark output.
//
// Every bench binary ends by dumping the registry snapshots it
// accumulated to `BENCH_<name>.json` in the working directory, so the
// perf trajectory of the repo is a set of diffable JSON files instead
// of human-only tables. The required core counters (sessions,
// bytes on the wire, blocks validated) come straight from the
// registries — benches add scenario results (convergence times,
// sweep outputs) as explicit extra values.
#pragma once

#include <string>
#include <vector>

#include "telemetry/metrics.h"
#include "util/status.h"

namespace vegvisir::telemetry {

struct BenchValue {
  std::string key;
  double value = 0.0;
};

// Writes `BENCH_<name>.json` into `dir`. Layout:
//   {"bench": <name>, "extra": {...}, "counters": {...},
//    "gauges": {...}, "histograms": {...}}
Status WriteBenchJson(const std::string& name, const Snapshot& snapshot,
                      const std::vector<BenchValue>& extra = {},
                      const std::string& dir = ".");

}  // namespace vegvisir::telemetry
