#include "telemetry/export.h"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace vegvisir::telemetry {
namespace {

void Append(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, std::min<std::size_t>(static_cast<std::size_t>(n), sizeof buf - 1));
}

// Shortest float form that round-trips typical metric values; JSON
// has no inf/nan, map those to 0.
std::string Num(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  return buf;
}

std::string Quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace

std::string PrometheusName(const std::string& name) {
  std::string out = "vegvisir_";
  for (const char c : name) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  return out;
}

std::string ToPrometheusText(const Snapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " counter\n";
    Append(&out, "%s %" PRIu64 "\n", prom.c_str(), value);
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + Num(value) + "\n";
  }
  for (const auto& [name, data] : snapshot.histograms) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < data.bounds.size(); ++i) {
      cumulative += data.counts[i];
      Append(&out, "%s_bucket{le=\"%s\"} %" PRIu64 "\n", prom.c_str(),
             Num(data.bounds[i]).c_str(), cumulative);
    }
    Append(&out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", prom.c_str(),
           data.count);
    out += prom + "_sum " + Num(data.sum) + "\n";
    Append(&out, "%s_count %" PRIu64 "\n", prom.c_str(), data.count);
  }
  return out;
}

std::string ToJson(const Snapshot& snapshot) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    Append(&out, "%s\n    %s: %" PRIu64, first ? "" : ",",
           Quote(name).c_str(), value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out += std::string(first ? "\n    " : ",\n    ") + Quote(name) + ": " +
           Num(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, data] : snapshot.histograms) {
    out += std::string(first ? "\n    " : ",\n    ") + Quote(name) +
           ": {\"bounds\": [";
    for (std::size_t i = 0; i < data.bounds.size(); ++i) {
      if (i > 0) out += ", ";
      out += Num(data.bounds[i]);
    }
    out += "], \"counts\": [";
    for (std::size_t i = 0; i < data.counts.size(); ++i) {
      if (i > 0) out += ", ";
      Append(&out, "%" PRIu64, data.counts[i]);
    }
    Append(&out, "], \"count\": %" PRIu64 ", \"sum\": %s}", data.count,
           Num(data.sum).c_str());
    first = false;
  }
  out += first ? "}\n}" : "\n  }\n}";
  return out;
}

std::string TraceToJson(const Tracer& tracer) {
  std::string out = "{\n  \"recorded\": " + Num(static_cast<double>(tracer.recorded())) +
                    ",\n  \"dropped\": " + Num(static_cast<double>(tracer.dropped())) +
                    ",\n  \"events\": [";
  bool first = true;
  for (const TraceEvent& e : tracer.Events()) {
    Append(&out,
           "%s\n    {\"name\": %s, \"kind\": \"%s\", \"start_ms\": %" PRIu64
           ", \"end_ms\": %" PRIu64 ", \"a\": %" PRIu64 ", \"b\": %" PRIu64
           "}",
           first ? "" : ",", Quote(e.name).c_str(),
           e.kind == TraceEvent::Kind::kSpan ? "span" : "instant", e.start_ms,
           e.end_ms, e.a, e.b);
    first = false;
  }
  out += first ? "]\n}" : "\n  ]\n}";
  return out;
}

}  // namespace vegvisir::telemetry
