#include "setdiff/iblt.h"

#include <algorithm>
#include <cstring>
#include <deque>

#include "serial/limits.h"

namespace vegvisir::setdiff {
namespace {

// splitmix64: the standard 64-bit finalizer-style mixer. Keys are
// SHA-256 output (uniform), so one mixing round per lane suffices to
// decorrelate positions from the seed and from each other.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t Lane(const chain::BlockHash& key, std::size_t lane) {
  std::uint64_t v;
  std::memcpy(&v, key.data() + lane * 8, sizeof(v));
  return v;
}

}  // namespace

bool IbltCell::IsZero() const {
  if (count != 0 || check_sum != 0) return false;
  return std::all_of(key_sum.begin(), key_sum.end(),
                     [](std::uint8_t b) { return b == 0; });
}

Iblt::Iblt(std::size_t cells, std::uint64_t seed)
    : seed_(seed), cells_(std::max<std::size_t>(cells, 1)) {}

void Iblt::Positions(const chain::BlockHash& key,
                     std::size_t out[kIbltHashCount]) const {
  // Disjoint 8-byte lanes 0..2 of the 32-byte key, each remixed with
  // the seed; lane 3 is reserved for the checksum.
  //
  // Partitioned layout: position i is drawn from subtable i (the
  // table split into k contiguous, nearly-equal segments). A single
  // key can therefore never collide with itself — without this, all
  // three positions coincide with probability 1/cells^2 per key,
  // leaving a count-3 cell that no table size can peel, and 2-of-3
  // self-collisions measurably raise the failure rate of the small
  // tables CellsForDelta produces.
  const std::size_t total = cells_.size();
  if (total < kIbltHashCount) {
    // Degenerate decoder-supplied geometry: no partition possible.
    // Peel will simply fail cleanly on anything nontrivial.
    for (std::size_t i = 0; i < kIbltHashCount; ++i) {
      out[i] = static_cast<std::size_t>(Mix64(Lane(key, i) ^ (seed_ + i)) %
                                        total);
    }
    return;
  }
  const std::size_t base = total / kIbltHashCount;
  for (std::size_t i = 0; i < kIbltHashCount; ++i) {
    const std::size_t begin = i * base;
    const std::size_t size =
        (i + 1 == kIbltHashCount) ? total - begin : base;
    out[i] = begin + static_cast<std::size_t>(
                         Mix64(Lane(key, i) ^ (seed_ + i)) % size);
  }
}

std::uint64_t Iblt::CheckOf(const chain::BlockHash& key) const {
  return Mix64(Lane(key, 3) ^ (seed_ * 0x2545f4914f6cdd1dULL + 0xb5ULL));
}

void Iblt::Apply(const chain::BlockHash& key, std::int64_t delta) {
  std::size_t pos[kIbltHashCount];
  Positions(key, pos);
  const std::uint64_t check = CheckOf(key);
  for (std::size_t i = 0; i < kIbltHashCount; ++i) {
    IbltCell& cell = cells_[pos[i]];
    cell.count += delta;
    for (std::size_t b = 0; b < key.size(); ++b) cell.key_sum[b] ^= key[b];
    cell.check_sum ^= check;
  }
}

void Iblt::Insert(const chain::BlockHash& key) { Apply(key, 1); }
void Iblt::Erase(const chain::BlockHash& key) { Apply(key, -1); }

Status Iblt::Subtract(const Iblt& other) {
  if (other.cells_.size() != cells_.size() || other.seed_ != seed_) {
    return InvalidArgumentError("iblt parameter mismatch");
  }
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    IbltCell& a = cells_[i];
    const IbltCell& b = other.cells_[i];
    a.count -= b.count;
    for (std::size_t j = 0; j < a.key_sum.size(); ++j) {
      a.key_sum[j] ^= b.key_sum[j];
    }
    a.check_sum ^= b.check_sum;
  }
  return Status::Ok();
}

bool Iblt::Peel(std::vector<chain::BlockHash>* plus,
                std::vector<chain::BlockHash>* minus) const {
  plus->clear();
  minus->clear();
  Iblt work = *this;

  // A cell is pure when exactly one difference key remains resident:
  // |count| == 1 and the checksum fold matches the lone key's own
  // checksum (the 64-bit check makes a coincidental match
  // negligible). Peeling that key may expose new pure cells.
  std::deque<std::size_t> queue;
  for (std::size_t i = 0; i < work.cells_.size(); ++i) queue.push_back(i);
  while (!queue.empty()) {
    const std::size_t i = queue.front();
    queue.pop_front();
    const IbltCell& cell = work.cells_[i];
    if (cell.count != 1 && cell.count != -1) continue;
    const chain::BlockHash key = cell.key_sum;
    if (work.CheckOf(key) != cell.check_sum) continue;
    const std::int64_t sign = cell.count;
    (sign > 0 ? plus : minus)->push_back(key);
    work.Apply(key, -sign);
    std::size_t pos[kIbltHashCount];
    work.Positions(key, pos);
    for (std::size_t p = 0; p < kIbltHashCount; ++p) queue.push_back(pos[p]);
  }

  const bool clean = std::all_of(work.cells_.begin(), work.cells_.end(),
                                 [](const IbltCell& c) { return c.IsZero(); });
  if (!clean) {
    plus->clear();
    minus->clear();
    return false;
  }
  std::sort(plus->begin(), plus->end());
  std::sort(minus->begin(), minus->end());
  return true;
}

void Iblt::Encode(serial::Writer* w) const {
  w->WriteVarint(cells_.size());
  for (const IbltCell& cell : cells_) {
    w->WriteI64(cell.count);
    w->WriteFixed(cell.key_sum);
    w->WriteU64(cell.check_sum);
  }
}

StatusOr<Iblt> Iblt::Decode(serial::Reader* r, std::uint64_t seed) {
  std::uint64_t count;
  VEGVISIR_RETURN_IF_ERROR(r->ReadVarint(&count));
  VEGVISIR_RETURN_IF_ERROR(serial::CheckWireCount(
      count, serial::limits::kMaxIbltCells, r->remaining(),
      kIbltCellWireBytes, "cell"));
  if (count == 0) return InvalidArgumentError("cell count must be >= 1");
  Iblt out(static_cast<std::size_t>(count), seed);
  for (std::uint64_t i = 0; i < count; ++i) {
    IbltCell& cell = out.cells_[static_cast<std::size_t>(i)];
    VEGVISIR_RETURN_IF_ERROR(r->ReadI64(&cell.count));
    VEGVISIR_RETURN_IF_ERROR(r->ReadFixed(&cell.key_sum));
    VEGVISIR_RETURN_IF_ERROR(r->ReadU64(&cell.check_sum));
  }
  return out;
}

std::size_t CellsForDelta(std::uint64_t estimated_delta, std::size_t cap) {
  // 2x the estimate: the asymptotic k=3 peel threshold is ~1.22x, but
  // the small tables this path actually builds (tens of cells) sit in
  // the finite-size regime where 1.5x still fails ~10% of the time,
  // and every failure costs a full escalation round trip — expensive
  // on the lossy links this protocol targets. The +8 floor absorbs
  // estimator error on tiny deltas.
  const std::uint64_t sized = estimated_delta * 2 + 8;
  const std::uint64_t floor = std::max<std::uint64_t>(sized, 16);
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(floor, std::max<std::size_t>(cap, 1)));
}

std::size_t EscalatedCells(std::size_t previous, std::size_t cap) {
  const std::uint64_t grown = static_cast<std::uint64_t>(previous) * 4;
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(grown, std::max<std::size_t>(cap, 1)));
}

std::uint64_t SeedForCells(std::size_t cells) {
  return Mix64(0x7665677669736972ULL ^ cells);  // "vegvisir"
}

}  // namespace vegvisir::setdiff
