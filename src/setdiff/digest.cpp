#include "setdiff/digest.h"

#include <cstring>

#include "serial/limits.h"

namespace vegvisir::setdiff {
namespace {

// Same mixer family as the IBLT (iblt.cpp) with a fixed fold seed:
// the digest is a protocol constant both sides must compute
// identically, so nothing here is negotiated.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t FoldOf(const chain::BlockHash& key) {
  std::uint64_t lane;
  std::memcpy(&lane, key.data() + 8, sizeof(lane));
  return Mix64(lane ^ 0x52414e4745464c44ULL);  // "RANGEFLD"
}

}  // namespace

void RangeDigest::Insert(const chain::BlockHash& key) {
  // Leading bits partition the space: with 64 ranges the top 6 bits
  // of the first key byte select the cell, so range membership is
  // stable however the cell count grows to other powers of two.
  const std::size_t range =
      static_cast<std::size_t>(key[0]) * cells_.size() / 256;
  RangeCell& cell = cells_[range];
  cell.count += 1;
  cell.fold ^= FoldOf(key);
}

StatusOr<std::uint64_t> RangeDigest::EstimateDelta(const RangeDigest& a,
                                                   const RangeDigest& b) {
  if (a.cells_.size() != b.cells_.size()) {
    return InvalidArgumentError("range digest shape mismatch");
  }
  std::uint64_t estimate = 0;
  for (std::size_t i = 0; i < a.cells_.size(); ++i) {
    const RangeCell& ca = a.cells_[i];
    const RangeCell& cb = b.cells_[i];
    if (ca.count != cb.count) {
      estimate += ca.count > cb.count ? ca.count - cb.count
                                      : cb.count - ca.count;
    } else if (ca.fold != cb.fold) {
      estimate += 2;  // equal sizes, different content: >= one swap
    }
  }
  return estimate;
}

void RangeDigest::Encode(serial::Writer* w) const {
  w->WriteVarint(cells_.size());
  for (const RangeCell& cell : cells_) {
    w->WriteVarint(cell.count);
    w->WriteU64(cell.fold);
  }
}

StatusOr<RangeDigest> RangeDigest::Decode(serial::Reader* r) {
  std::uint64_t count;
  VEGVISIR_RETURN_IF_ERROR(r->ReadVarint(&count));
  VEGVISIR_RETURN_IF_ERROR(serial::CheckWireCount(
      count, serial::limits::kMaxDiffRanges, r->remaining(),
      kRangeCellWireBytes, "range"));
  if (count == 0) return InvalidArgumentError("range count must be >= 1");
  RangeDigest out;
  out.cells_.assign(static_cast<std::size_t>(count), RangeCell{});
  for (std::uint64_t i = 0; i < count; ++i) {
    RangeCell& cell = out.cells_[static_cast<std::size_t>(i)];
    VEGVISIR_RETURN_IF_ERROR(r->ReadVarint(&cell.count));
    VEGVISIR_RETURN_IF_ERROR(r->ReadU64(&cell.fold));
  }
  return out;
}

}  // namespace vegvisir::setdiff
