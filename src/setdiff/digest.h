// Range digest: the cheap delta-sizing probe of reconciliation v2.
//
// Before committing to an IBLT exchange the initiator sends a fixed,
// O(1)-sized summary of its whole block-hash set: the 256-bit hash
// space is partitioned into kDiffRangeCount ranges by leading key
// bits, and each range carries (element count, order-insensitive
// 64-bit XOR fold). Comparing two digests gives the responder a
// symmetric-difference estimate good enough to size the IBLT — per
// range, a count mismatch lower-bounds the local delta, and an equal
// count with a differing fold means at least one swap (>= 2 keys).
//
// The estimate errs low only when opposite-side differences cancel
// inside one range (rare at 64 ranges, and the nested before/behind
// shapes reconciliation actually sees cannot cancel at all); the
// sketch's 1.5x sizing margin plus the decode-failure escalation
// ladder absorbs what remains.
#pragma once

#include <cstdint>
#include <vector>

#include "chain/types.h"
#include "serial/codec.h"
#include "util/status.h"

namespace vegvisir::setdiff {

// Ranges per digest. 64 cells * (<=1+8 bytes) keeps a probe under
// ~600 bytes while still localizing typical deltas to distinct
// ranges; the wire cap (serial::limits::kMaxDiffRanges) is higher so
// the count can grow without a protocol break.
inline constexpr std::size_t kDiffRangeCount = 64;

// Wire floor of one encoded range cell: 1-byte minimum varint count
// plus the fixed u64 fold.
inline constexpr std::size_t kRangeCellWireBytes = 1 + 8;

struct RangeCell {
  std::uint64_t count = 0;
  std::uint64_t fold = 0;  // XOR of mixed keys in the range

  bool operator==(const RangeCell& other) const {
    return count == other.count && fold == other.fold;
  }
};

class RangeDigest {
 public:
  RangeDigest() : cells_(kDiffRangeCount) {}

  void Insert(const chain::BlockHash& key);

  const std::vector<RangeCell>& cells() const { return cells_; }

  // Estimated symmetric difference |A Δ B|. Digests of different
  // range counts are incomparable (protocol evolution); the session
  // treats that as "estimate unavailable" and sizes defensively.
  static StatusOr<std::uint64_t> EstimateDelta(const RangeDigest& a,
                                               const RangeDigest& b);

  // Wire form: varint range count, then per range a varint element
  // count and the fixed u64 fold.
  void Encode(serial::Writer* w) const;
  static StatusOr<RangeDigest> Decode(serial::Reader* r);

  bool operator==(const RangeDigest& other) const {
    return cells_ == other.cells_;
  }

 private:
  std::vector<RangeCell> cells_;
};

}  // namespace vegvisir::setdiff
