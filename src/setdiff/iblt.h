// Invertible Bloom Lookup Table over block hashes.
//
// The compact set-difference stage of reconciliation v2 (DESIGN.md
// §16): each peer folds its entire block-hash set into a table of
// `cells` counters, cell-wise subtraction of two tables yields a
// sketch of the *symmetric difference only*, and peel-decoding that
// sketch recovers the differing hashes exactly — so the wire cost of
// a sync scales with the delta, not with frontier depth (the §VI
// efficiency worry Algorithm 1's level escalation cannot avoid).
//
// Decode is all-or-nothing and loudly so: Peel() returns false when
// the difference exceeds what the cell count can carry (or a hash
// arrangement is unlucky), and the session reacts by escalating the
// cell count once and then falling back to level escalation — the
// sketch is an optimization, never a correctness dependency.
//
// Keys are SHA-256 block hashes, i.e. already uniform, so the k probe
// positions and the per-key checksum are derived from disjoint 8-byte
// lanes of the key mixed with a session-chosen seed (no second hash
// pass per insert). Both peers MUST build with identical (cells,
// seed) for subtraction to be meaningful; Subtract enforces it.
#pragma once

#include <cstdint>
#include <vector>

#include "chain/types.h"
#include "serial/codec.h"
#include "util/status.h"

namespace vegvisir::setdiff {

// Probe positions per key (k). 3 keeps the decodable-delta threshold
// near cells/1.3 while costing three cell updates per insert.
inline constexpr std::size_t kIbltHashCount = 3;

// Wire floor of one encoded cell: 1-byte minimum zigzag count +
// 32-byte key XOR + 8-byte checksum XOR. CheckWireCount divides the
// remaining input by this, so a cell-count bomb must pay for padding.
inline constexpr std::size_t kIbltCellWireBytes = 1 + 32 + 8;

struct IbltCell {
  std::int64_t count = 0;
  chain::BlockHash key_sum{};   // XOR fold of resident keys
  std::uint64_t check_sum = 0;  // XOR fold of per-key checksums

  bool IsZero() const;
  bool operator==(const IbltCell& other) const {
    return count == other.count && key_sum == other.key_sum &&
           check_sum == other.check_sum;
  }
};

class Iblt {
 public:
  // `cells` is clamped to [1, kMaxIbltCells] by the callers (the
  // decoder enforces the cap; sessions pick sizes via CellsForDelta).
  Iblt(std::size_t cells, std::uint64_t seed);

  void Insert(const chain::BlockHash& key);
  void Erase(const chain::BlockHash& key);

  // Cell-wise subtraction (this - other). Fails unless both tables
  // were built with the same cell count and seed.
  Status Subtract(const Iblt& other);

  // Peel-decodes a *difference* table (the result of Subtract).
  // Keys this side held and the peer did not land in `plus`; keys the
  // peer held land in `minus`; both come back sorted so downstream
  // behaviour is replica-deterministic. Returns false — leaving the
  // outputs empty — when the table does not fully peel (delta larger
  // than the cells can carry); the caller escalates or falls back.
  bool Peel(std::vector<chain::BlockHash>* plus,
            std::vector<chain::BlockHash>* minus) const;

  std::size_t cell_count() const { return cells_.size(); }
  std::uint64_t seed() const { return seed_; }
  const std::vector<IbltCell>& cells() const { return cells_; }

  // Wire form: varint cell count, then per cell a zigzag count, the
  // 32-byte key XOR and a fixed u64 checksum XOR. The seed travels in
  // the enclosing DiffSketch message, not here.
  void Encode(serial::Writer* w) const;
  static StatusOr<Iblt> Decode(serial::Reader* r, std::uint64_t seed);

 private:
  void Apply(const chain::BlockHash& key, std::int64_t delta);
  void Positions(const chain::BlockHash& key,
                 std::size_t out[kIbltHashCount]) const;
  std::uint64_t CheckOf(const chain::BlockHash& key) const;

  std::uint64_t seed_;
  std::vector<IbltCell> cells_;
};

// Sizing policy shared by both session sides: the cell count that
// gives a ~1.5x margin over an estimated symmetric difference, with a
// floor that absorbs estimator error on tiny deltas. Clamped to
// `cap` (a responder's configured ceiling, itself <= kMaxIbltCells).
std::size_t CellsForDelta(std::uint64_t estimated_delta, std::size_t cap);

// The escalated retry size after a decode failure (one step, x4).
std::size_t EscalatedCells(std::size_t previous, std::size_t cap);

// The deterministic hash-family seed for an attempt with this cell
// count: escalation changes the cell count, which re-randomizes the
// probe positions, so a pathological arrangement cannot repeat.
std::uint64_t SeedForCells(std::size_t cells);

}  // namespace vegvisir::setdiff
