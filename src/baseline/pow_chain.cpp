#include "baseline/pow_chain.h"

#include <algorithm>
#include <cstring>

#include "crypto/sha256.h"
#include "serial/codec.h"

namespace vegvisir::baseline {
namespace {

// The all-zero hash is the genesis sentinel every replica starts from.
bool IsGenesis(const chain::BlockHash& h) {
  for (std::uint8_t b : h) {
    if (b != 0) return false;
  }
  return true;
}

}  // namespace

std::size_t PowBlock::EncodedSize() const {
  std::size_t size = 8 + 32 + 8 + 8 + 32;  // header + hash
  for (const Bytes& tx : txs) size += tx.size() + 2;
  return size;
}

PowNode::PowNode(PowParams params, std::uint64_t seed)
    : params_(params), rng_(seed) {}

void PowNode::SubmitTx(Bytes tx) {
  if (mempool_index_.insert(tx).second) mempool_.push_back(std::move(tx));
}

bool PowNode::MeetsDifficulty(const chain::BlockHash& h) const {
  std::uint32_t zeros = 0;
  for (std::uint8_t byte : h) {
    if (byte == 0) {
      zeros += 8;
      continue;
    }
    for (int bit = 7; bit >= 0; --bit) {
      if ((byte >> bit) & 1) return zeros >= params_.difficulty_bits;
      ++zeros;
    }
  }
  return true;
}

chain::BlockHash PowNode::HashCandidate(const PowBlock& b) const {
  serial::Writer w;
  w.WriteU64(b.height);
  w.WriteFixed(b.prev);
  w.WriteU64(b.timestamp_ms);
  w.WriteU64(b.nonce);
  w.WriteVarint(b.txs.size());
  for (const Bytes& tx : b.txs) w.WriteBytes(tx);
  const crypto::Sha256Digest d = crypto::Sha256::Hash(w.buffer());
  chain::BlockHash out;
  std::memcpy(out.data(), d.data(), out.size());
  return out;
}

bool PowNode::Mine(std::uint64_t max_attempts, std::uint64_t timestamp_ms) {
  PowBlock candidate;
  candidate.height = tip_height_ + 1;
  candidate.prev = tip_;
  candidate.timestamp_ms = timestamp_ms;
  const std::size_t take =
      std::min(params_.max_txs_per_block, mempool_.size());
  candidate.txs.assign(mempool_.begin(),
                       mempool_.begin() + static_cast<std::ptrdiff_t>(take));
  candidate.nonce = rng_.NextU64();

  for (std::uint64_t i = 0; i < max_attempts; ++i) {
    ++hash_attempts_;
    candidate.hash = HashCandidate(candidate);
    if (MeetsDifficulty(candidate.hash)) {
      for (const Bytes& tx : candidate.txs) {
        mempool_index_.erase(tx);
      }
      mempool_.erase(mempool_.begin(),
                     mempool_.begin() + static_cast<std::ptrdiff_t>(take));
      tip_ = candidate.hash;
      tip_height_ = candidate.height;
      blocks_.emplace(candidate.hash, std::move(candidate));
      ++blocks_mined_;
      return true;
    }
    ++candidate.nonce;
  }
  return false;
}

std::vector<chain::BlockHash> PowNode::MainChain() const {
  std::vector<chain::BlockHash> out;
  chain::BlockHash h = tip_;
  while (!IsGenesis(h)) {
    out.push_back(h);
    h = blocks_.at(h).prev;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::size_t PowNode::ConfirmedTxCount() const {
  std::size_t n = 0;
  for (const chain::BlockHash& h : MainChain()) n += blocks_.at(h).txs.size();
  return n;
}

bool PowNode::IsConfirmed(const Bytes& tx) const {
  for (const chain::BlockHash& h : MainChain()) {
    const PowBlock& b = blocks_.at(h);
    if (std::find(b.txs.begin(), b.txs.end(), tx) != b.txs.end()) return true;
  }
  return false;
}

PowNode::SyncResult PowNode::SyncFrom(const PowNode& peer) {
  SyncResult result;
  if (peer.tip_height_ <= tip_height_) return result;  // we are longest

  const std::vector<chain::BlockHash> ours = MainChain();
  const std::vector<chain::BlockHash> theirs = peer.MainChain();

  // Fork point: longest common prefix.
  std::size_t fork = 0;
  while (fork < ours.size() && fork < theirs.size() &&
         ours[fork] == theirs[fork]) {
    ++fork;
  }

  // Transfer the peer's blocks past the fork point.
  for (std::size_t i = fork; i < theirs.size(); ++i) {
    const PowBlock& b = peer.blocks_.at(theirs[i]);
    result.bytes_transferred += b.EncodedSize();
    if (blocks_.emplace(b.hash, b).second) result.new_blocks += 1;
    // Their confirmed txs leave our mempool.
    for (const Bytes& tx : b.txs) {
      if (mempool_index_.erase(tx) > 0) {
        mempool_.erase(std::find(mempool_.begin(), mempool_.end(), tx));
      }
    }
  }

  // Our blocks past the fork point are discarded: their transactions
  // lose confirmed status and fall back into the mempool (unless the
  // peer's chain also confirmed them).
  for (std::size_t i = fork; i < ours.size(); ++i) {
    const PowBlock& b = blocks_.at(ours[i]);
    result.discarded_blocks += 1;
    for (const Bytes& tx : b.txs) {
      if (!peer.IsConfirmed(tx)) {
        result.discarded_txs += 1;
        SubmitTx(tx);
      }
    }
  }

  tip_ = peer.tip_;
  tip_height_ = peer.tip_height_;
  result.adopted = true;
  return result;
}

}  // namespace vegvisir::baseline
