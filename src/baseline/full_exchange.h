// Naive full-DAG-exchange reconciliation baseline.
//
// The paper motivates frontier-set reconciliation as "considerably
// more efficient than exchanging entire DAGs" (§VI). This baseline is
// that strawman: the responder ships its whole stored DAG; the
// initiator merges. Experiment E1 compares its bandwidth against
// Algorithm 1 and the hash-first ablation.
#pragma once

#include "recon/session.h"

namespace vegvisir::baseline {

// One-way pull, mirroring the frontier protocol's direction. Returns
// the initiator-side stats (bytes_received counts the full transfer).
recon::SessionStats RunFullDagExchange(recon::ReconHost* initiator,
                                       const recon::ReconHost* responder);

}  // namespace vegvisir::baseline
