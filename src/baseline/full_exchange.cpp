#include "baseline/full_exchange.h"

namespace vegvisir::baseline {

recon::SessionStats RunFullDagExchange(recon::ReconHost* initiator,
                                       const recon::ReconHost* responder) {
  recon::SessionStats stats;
  stats.rounds = 1;

  // A minimal "send everything" request...
  stats.bytes_sent = 16;

  // ...answered with every stored block, in topological order so the
  // receiver can insert as it reads.
  const chain::Dag& remote = responder->dag();
  for (const chain::BlockHash& h : remote.TopologicalOrder()) {
    if (h == remote.genesis_hash()) continue;
    const chain::Block* block = remote.Find(h);
    if (block == nullptr) continue;  // evicted on the responder
    const Bytes raw = block->Serialize();
    stats.bytes_received += raw.size();
    stats.blocks_received += 1;
    if (initiator->dag().Contains(h)) continue;
    if (initiator->OfferBlock(*block) == chain::BlockVerdict::kValid) {
      stats.blocks_inserted += 1;
    }
  }

  // Mirror the totals into the initiator's registry so baseline runs
  // show up next to recon.* in exported snapshots. A one-shot
  // exchange, so resolving here (not hot-path) is fine.
  if (telemetry::Telemetry* t = initiator->telemetry(); t != nullptr) {
    t->metrics.GetCounter("baseline.full_exchange.runs").Inc();
    t->metrics.GetCounter("baseline.full_exchange.bytes_sent")
        .Inc(stats.bytes_sent);
    t->metrics.GetCounter("baseline.full_exchange.bytes_received")
        .Inc(stats.bytes_received);
    t->metrics.GetCounter("baseline.full_exchange.blocks_received")
        .Inc(stats.blocks_received);
    t->metrics.GetCounter("baseline.full_exchange.blocks_inserted")
        .Inc(stats.blocks_inserted);
  }
  return stats;
}

}  // namespace vegvisir::baseline
