#include "baseline/full_exchange.h"

namespace vegvisir::baseline {

recon::SessionStats RunFullDagExchange(recon::ReconHost* initiator,
                                       const recon::ReconHost* responder) {
  recon::SessionStats stats;
  stats.rounds = 1;

  // A minimal "send everything" request...
  stats.bytes_sent = 16;

  // ...answered with every stored block, in topological order so the
  // receiver can insert as it reads.
  const chain::Dag& remote = responder->dag();
  for (const chain::BlockHash& h : remote.TopologicalOrder()) {
    if (h == remote.genesis_hash()) continue;
    const chain::Block* block = remote.Find(h);
    if (block == nullptr) continue;  // evicted on the responder
    const Bytes raw = block->Serialize();
    stats.bytes_received += raw.size();
    stats.blocks_received += 1;
    if (initiator->dag().Contains(h)) continue;
    if (initiator->OfferBlock(*block) == chain::BlockVerdict::kValid) {
      stats.blocks_inserted += 1;
    }
  }
  return stats;
}

}  // namespace vegvisir::baseline
