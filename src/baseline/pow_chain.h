// Nakamoto-style proof-of-work linear blockchain baseline.
//
// The paper's argument against deploying Bitcoin-like chains in IoT
// settings is twofold (§I): they burn energy on cryptopuzzles, and
// under partitions they fork — when partitions heal, the longest
// chain wins and every block on the losing branches is *discarded*,
// undoing transactions users believed confirmed. This baseline
// implements exactly that protocol (real SHA-256 puzzles at a
// configurable difficulty, longest-chain fork choice with reorgs) so
// experiments E3 and E4 can measure both effects against Vegvisir.
#pragma once

#include <cstdint>
#include <deque>
#include <set>
#include <unordered_map>
#include <vector>

#include "chain/types.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace vegvisir::baseline {

struct PowParams {
  // Required number of leading zero bits in the block hash. Each
  // additional bit doubles the expected mining work.
  std::uint32_t difficulty_bits = 16;
  std::size_t max_txs_per_block = 16;
};

struct PowBlock {
  std::uint64_t height = 0;
  chain::BlockHash prev{};
  std::uint64_t timestamp_ms = 0;
  std::uint64_t nonce = 0;
  std::vector<Bytes> txs;
  chain::BlockHash hash{};

  std::size_t EncodedSize() const;
};

// One miner / replica of the PoW chain.
class PowNode {
 public:
  PowNode(PowParams params, std::uint64_t seed);

  // Adds a transaction to the mempool (deduplicated by content).
  void SubmitTx(Bytes tx);

  // Tries up to `max_attempts` nonces on a candidate extending the
  // current tip. Returns true if a block was found. All attempts are
  // counted (the energy cost of proof-of-work).
  bool Mine(std::uint64_t max_attempts, std::uint64_t timestamp_ms);

  std::uint64_t hash_attempts() const { return hash_attempts_; }
  std::uint64_t blocks_mined() const { return blocks_mined_; }

  std::uint64_t height() const { return tip_height_; }
  const chain::BlockHash& tip() const { return tip_; }
  std::size_t mempool_size() const { return mempool_.size(); }

  // Hashes of the main chain, genesis first.
  std::vector<chain::BlockHash> MainChain() const;

  // Transactions confirmed on the current main chain.
  std::size_t ConfirmedTxCount() const;
  bool IsConfirmed(const Bytes& tx) const;

  struct SyncResult {
    bool adopted = false;          // we switched to the peer's chain
    std::size_t new_blocks = 0;    // blocks transferred from the peer
    std::size_t discarded_blocks = 0;  // our abandoned-fork blocks
    std::size_t discarded_txs = 0;     // confirmed txs that lost status
    std::uint64_t bytes_transferred = 0;
  };

  // Longest-chain rule: adopt the peer's chain if strictly higher.
  // Discarded transactions return to the mempool (to be re-mined,
  // maybe) — exactly the disruption the paper warns about.
  SyncResult SyncFrom(const PowNode& peer);

 private:
  bool MeetsDifficulty(const chain::BlockHash& h) const;
  chain::BlockHash HashCandidate(const PowBlock& b) const;

  PowParams params_;
  Rng rng_;
  std::unordered_map<chain::BlockHash, PowBlock, chain::BlockHashHasher>
      blocks_;
  chain::BlockHash tip_{};  // all-zero = genesis sentinel
  std::uint64_t tip_height_ = 0;
  std::deque<Bytes> mempool_;
  std::set<Bytes> mempool_index_;
  std::uint64_t hash_attempts_ = 0;
  std::uint64_t blocks_mined_ = 0;
};

}  // namespace vegvisir::baseline
