#include "baseline/tangle.h"

#include <cmath>

namespace vegvisir::baseline {

Tangle::Tangle(TangleParams params, std::uint64_t seed)
    : params_(params), rng_(seed) {
  // The genesis transaction.
  txs_.push_back(Tx{Bytes{}, {}, {}});
  tips_.insert(0);
}

Tangle::TxId Tangle::SelectTip() {
  if (!params_.weighted_walk) {
    const std::vector<TxId> tips(tips_.begin(), tips_.end());
    return tips[rng_.NextBelow(tips.size())];
  }
  return WeightedWalkFrom(0);
}

Tangle::TxId Tangle::WeightedWalkFrom(TxId start) {
  // Random walk from the genesis toward the tips, biased toward
  // approvers with larger cumulative weight (simplified MCMC).
  TxId cur = start;
  while (!txs_[cur].approvers.empty()) {
    const std::vector<TxId>& next = txs_[cur].approvers;
    std::vector<double> weights;
    weights.reserve(next.size());
    double total = 0;
    for (TxId n : next) {
      const double w =
          std::exp(params_.alpha * static_cast<double>(CumulativeWeight(n)));
      weights.push_back(w);
      total += w;
    }
    double pick = rng_.NextDouble() * total;
    std::size_t chosen = 0;
    for (; chosen + 1 < weights.size(); ++chosen) {
      if (pick < weights[chosen]) break;
      pick -= weights[chosen];
    }
    cur = next[chosen];
  }
  return cur;
}

Tangle::TxId Tangle::AddTransaction(Bytes payload) {
  const TxId a = SelectTip();
  TxId b = SelectTip();
  // IOTA allows approving the same tip twice; prefer two distinct
  // tips when available.
  if (b == a && tips_.size() > 1) {
    for (int retry = 0; retry < 8 && b == a; ++retry) b = SelectTip();
  }
  return AddTransactionApproving(a, b, std::move(payload));
}

Tangle::TxId Tangle::AddTransactionApproving(TxId a, TxId b, Bytes payload) {
  const TxId id = txs_.size();
  Tx tx;
  tx.payload = std::move(payload);
  tx.approves.push_back(a);
  if (b != a) tx.approves.push_back(b);
  txs_.push_back(std::move(tx));
  for (TxId parent : txs_[id].approves) {
    txs_[parent].approvers.push_back(id);
    tips_.erase(parent);
  }
  tips_.insert(id);
  return id;
}

std::size_t Tangle::CumulativeWeight(TxId id) const {
  // BFS over approvers.
  std::set<TxId> seen;
  std::vector<TxId> stack = {id};
  seen.insert(id);
  while (!stack.empty()) {
    const TxId cur = stack.back();
    stack.pop_back();
    for (TxId child : txs_[cur].approvers) {
      if (seen.insert(child).second) stack.push_back(child);
    }
  }
  return seen.size();
}

}  // namespace vegvisir::baseline
