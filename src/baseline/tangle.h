// IOTA-style tangle baseline (paper §III, [20]).
//
// A DAG cryptocurrency ledger where each transaction approves two
// earlier transactions chosen by tip selection. Unlike Vegvisir the
// tangle's DAG exists to parallelize throughput, not to tolerate
// partitions, and confirmation relies on accumulating descendant
// weight. Used by experiment E11 to contrast DAG shapes and by the
// related-work comparison in EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "util/bytes.h"
#include "util/rng.h"

namespace vegvisir::baseline {

struct TangleParams {
  // Tip selection: uniform random, or a weight-biased random walk
  // (a simplified MCMC as in the IOTA whitepaper).
  bool weighted_walk = false;
  double alpha = 0.05;  // walk bias toward heavier children
};

class Tangle {
 public:
  using TxId = std::size_t;

  Tangle(TangleParams params, std::uint64_t seed);

  // Attaches a transaction approving two tips. Returns its id.
  TxId AddTransaction(Bytes payload);

  // Runs tip selection without attaching (for callers modelling
  // concurrent arrivals: select against a common snapshot first,
  // attach afterwards).
  TxId SelectTip();

  // Attaches a transaction approving the two given existing
  // transactions (a == b approves a single parent).
  TxId AddTransactionApproving(TxId a, TxId b, Bytes payload);

  std::size_t Size() const { return txs_.size(); }
  std::size_t TipCount() const { return tips_.size(); }
  std::vector<TxId> Tips() const {
    return std::vector<TxId>(tips_.begin(), tips_.end());
  }

  // Number of transactions that directly or indirectly approve `id`
  // (plus itself) — IOTA's confirmation metric.
  std::size_t CumulativeWeight(TxId id) const;

  const std::vector<TxId>& ApprovedBy(TxId id) const {
    return txs_[id].approves;
  }

 private:
  struct Tx {
    Bytes payload;
    std::vector<TxId> approves;   // up to 2 parents
    std::vector<TxId> approvers;  // children
  };

  TxId WeightedWalkFrom(TxId start);

  TangleParams params_;
  Rng rng_;
  std::vector<Tx> txs_;
  std::set<TxId> tips_;
};

}  // namespace vegvisir::baseline
