#include "util/status.h"

namespace vegvisir {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kInvalidArgument: return "invalid-argument";
    case ErrorCode::kNotFound: return "not-found";
    case ErrorCode::kAlreadyExists: return "already-exists";
    case ErrorCode::kPermissionDenied: return "permission-denied";
    case ErrorCode::kFailedPrecondition: return "failed-precondition";
    case ErrorCode::kUnauthenticated: return "unauthenticated";
    case ErrorCode::kResourceExhausted: return "resource-exhausted";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = ErrorCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace vegvisir
