#include "util/bytes.h"

#include <cstdlib>

namespace vegvisir {
namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string ToHex(ByteSpan data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

bool FromHex(std::string_view hex, Bytes* out) {
  if (hex.size() % 2 != 0) return false;
  Bytes parsed;
  parsed.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = HexNibble(hex[i]);
    const int lo = HexNibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return false;
    parsed.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  *out = std::move(parsed);
  return true;
}

Bytes MustFromHex(std::string_view hex) {
  Bytes out;
  if (!FromHex(hex, &out)) std::abort();
  return out;
}

Bytes BytesOf(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

std::string TextOf(ByteSpan data) {
  return std::string(data.begin(), data.end());
}

bool ConstantTimeEqual(ByteSpan a, ByteSpan b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

void Append(Bytes* dst, ByteSpan src) {
  dst->insert(dst->end(), src.begin(), src.end());
}

}  // namespace vegvisir
