// Byte-buffer helpers shared by every module.
//
// A `Bytes` value is the universal currency of the library: canonical
// encodings, hashes, signatures and wire messages are all `Bytes`.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace vegvisir {

using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;

// Lowercase hex encoding of `data` ("" for empty input).
std::string ToHex(ByteSpan data);

// Parses lowercase/uppercase hex. Returns false on odd length or a
// non-hex character; `out` is left untouched on failure.
bool FromHex(std::string_view hex, Bytes* out);

// Convenience: hex string -> Bytes, aborting on malformed input.
// Intended for test vectors and literals, not untrusted input.
Bytes MustFromHex(std::string_view hex);

// Copies a UTF-8/ASCII string into a byte buffer.
Bytes BytesOf(std::string_view text);

// Interprets a byte buffer as text (no validation).
std::string TextOf(ByteSpan data);

// Constant-time equality for secrets (signatures, MACs).
bool ConstantTimeEqual(ByteSpan a, ByteSpan b);

// Appends `src` to `dst`.
void Append(Bytes* dst, ByteSpan src);

}  // namespace vegvisir
