#include "util/lock_ranks.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace vegvisir::util::lock_debug {
namespace {

std::atomic<ViolationHandler> g_handler{nullptr};

[[maybe_unused]] void Violate(const char* message) {
  const ViolationHandler handler = g_handler.load(std::memory_order_acquire);
  if (handler != nullptr) {
    handler(message);
    return;
  }
  std::fprintf(stderr, "lock_debug: %s\n", message);
  std::abort();
}

}  // namespace

ViolationHandler SetViolationHandlerForTest(ViolationHandler handler) {
  return g_handler.exchange(handler, std::memory_order_acq_rel);
}

#if defined(VEGVISIR_LOCK_DEBUG)

namespace {

struct HeldLock {
  const void* mutex = nullptr;
  LockRank rank = LockRank::kUnranked;
};

// Deep enough for any sane nesting; the deepest chain in the tree
// today is 2 (storage engine -> telemetry registry during Open).
constexpr std::size_t kMaxHeld = 16;
thread_local HeldLock t_held[kMaxHeld];
thread_local std::size_t t_depth = 0;

void ViolateF(const char* format, const char* site, int held_rank,
              int next_rank) {
  char message[256];
  std::snprintf(message, sizeof(message), format, site, held_rank, next_rank);
  Violate(message);
}

}  // namespace

void OnAcquire(const void* mutex, LockRank rank) {
  for (std::size_t i = 0; i < t_depth; ++i) {
    if (t_held[i].mutex == mutex) {
      ViolateF("%s: re-acquiring a mutex this thread already holds "
               "(held rank %d, acquiring rank %d)",
               "Mutex::lock", static_cast<int>(t_held[i].rank),
               static_cast<int>(rank));
    }
    if (rank != LockRank::kUnranked && t_held[i].rank != LockRank::kUnranked &&
        static_cast<int>(t_held[i].rank) >= static_cast<int>(rank)) {
      ViolateF("%s: lock-rank ascent violated — holding rank %d, acquiring "
               "rank %d (see src/util/lock_ranks.h)",
               "Mutex::lock", static_cast<int>(t_held[i].rank),
               static_cast<int>(rank));
    }
  }
  if (t_depth < kMaxHeld) {
    t_held[t_depth++] = HeldLock{mutex, rank};
  }
}

void OnTryAcquire(const void* mutex, LockRank rank) {
  if (t_depth < kMaxHeld) {
    t_held[t_depth++] = HeldLock{mutex, rank};
  }
}

void OnRelease(const void* mutex) {
  for (std::size_t i = t_depth; i-- > 0;) {
    if (t_held[i].mutex != mutex) continue;
    for (std::size_t j = i + 1; j < t_depth; ++j) t_held[j - 1] = t_held[j];
    --t_depth;
    return;
  }
}

void AssertNoLocksHeld(const char* site) {
  if (t_depth == 0) return;
  ViolateF("%s may block indefinitely and must not be entered with any "
           "mutex held (holding %d lock(s), innermost rank %d)",
           site, static_cast<int>(t_depth),
           static_cast<int>(t_held[t_depth - 1].rank));
}

void AssertBlockingAllowed(const char* site) {
  for (std::size_t i = 0; i < t_depth; ++i) {
    if (LockRankMayBlock(t_held[i].rank)) continue;
    ViolateF("%s: file I/O while holding a lock of rank %d, which is not "
             "may-block (held depth %d; see LockRankMayBlock in "
             "src/util/lock_ranks.h)",
             site, static_cast<int>(t_held[i].rank),
             static_cast<int>(t_depth));
  }
}

void AssertOnlyHeld(const void* mutex, const char* site) {
  if (t_depth == 1 && t_held[0].mutex == mutex) return;
  ViolateF("%s: the waited-on mutex must be held and be the only held "
           "lock (depth=%d, top rank=%d)",
           site, static_cast<int>(t_depth),
           t_depth == 0 ? -1 : static_cast<int>(t_held[t_depth - 1].rank));
}

std::size_t HeldCountForTest() { return t_depth; }

#endif  // VEGVISIR_LOCK_DEBUG

}  // namespace vegvisir::util::lock_debug
