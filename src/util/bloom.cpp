#include "util/bloom.h"

#include <algorithm>

// Header-only constants; util still links against nothing above it
// (the decode bounds live with every other wire limit).
#include "serial/limits.h"

namespace vegvisir {
namespace {

// Minimal local varint codec: util must stay dependency-free (the
// serial module links against util, not the other way around).
void PutVarint(Bytes* out, std::uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<std::uint8_t>(v));
}

bool GetVarint(ByteSpan data, std::size_t* pos, std::uint64_t* out) {
  std::uint64_t v = 0;
  int shift = 0;
  while (*pos < data.size() && shift < 64) {
    const std::uint8_t byte = data[(*pos)++];
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *out = v;
      return true;
    }
    shift += 7;
  }
  return false;
}

}  // namespace

BloomFilter::BloomFilter(std::size_t bits, int hashes)
    : bits_((std::max<std::size_t>(bits, 8) + 7) / 8, 0),
      hashes_(std::max(hashes, 1)) {}

BloomFilter BloomFilter::ForExpectedItems(std::size_t expected_items) {
  return BloomFilter(std::max<std::size_t>(expected_items, 1) * 10, 7);
}

std::uint64_t BloomFilter::Hash(ByteSpan item, std::uint64_t seed) {
  // FNV-1a variant with a seed mixed in; quality is ample for a
  // Bloom filter over already-uniform block hashes.
  std::uint64_t h = 1469598103934665603ULL ^ (seed * 0x9e3779b97f4a7c15ULL);
  for (std::uint8_t b : item) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

void BloomFilter::Insert(ByteSpan item) {
  const std::uint64_t h1 = Hash(item, 1);
  const std::uint64_t h2 = Hash(item, 2) | 1;  // odd stride
  const std::uint64_t m = bits_.size() * 8;
  for (int i = 0; i < hashes_; ++i) {
    const std::uint64_t bit = (h1 + static_cast<std::uint64_t>(i) * h2) % m;
    bits_[bit / 8] |= static_cast<std::uint8_t>(1u << (bit % 8));
  }
}

bool BloomFilter::MayContain(ByteSpan item) const {
  const std::uint64_t h1 = Hash(item, 1);
  const std::uint64_t h2 = Hash(item, 2) | 1;
  const std::uint64_t m = bits_.size() * 8;
  for (int i = 0; i < hashes_; ++i) {
    const std::uint64_t bit = (h1 + static_cast<std::uint64_t>(i) * h2) % m;
    if ((bits_[bit / 8] & (1u << (bit % 8))) == 0) return false;
  }
  return true;
}

Bytes BloomFilter::Serialize() const {
  Bytes out;
  PutVarint(&out, bits_.size() * 8);
  PutVarint(&out, static_cast<std::uint64_t>(hashes_));
  out.insert(out.end(), bits_.begin(), bits_.end());
  return out;
}

StatusOr<BloomFilter> BloomFilter::Deserialize(ByteSpan data) {
  std::size_t pos = 0;
  std::uint64_t bit_count, hashes;
  if (!GetVarint(data, &pos, &bit_count) || !GetVarint(data, &pos, &hashes)) {
    return InvalidArgumentError("truncated bloom header");
  }
  if (hashes == 0 || hashes > serial::limits::kMaxBloomHashes) {
    return InvalidArgumentError("implausible bloom hash count");
  }
  if (bit_count > serial::limits::kMaxBloomBits || bit_count % 8 != 0) {
    return InvalidArgumentError("bad bloom bit count");
  }
  if (data.size() - pos != bit_count / 8) {
    return InvalidArgumentError("bloom bit count mismatch");
  }
  BloomFilter f(bit_count, static_cast<int>(hashes));
  f.bits_.assign(data.begin() + static_cast<std::ptrdiff_t>(pos), data.end());
  return f;
}

}  // namespace vegvisir
