#include "util/rng.h"

#include <cmath>

namespace vegvisir {

double Rng::NextExponential(double mean) {
  // Inverse-CDF sampling; guard the log argument away from 0.
  double u = NextDouble();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

}  // namespace vegvisir
