// Clang thread-safety-analysis shim (DESIGN.md §14).
//
// PR 5 made the system genuinely multithreaded; the sharded-ingest
// roadmap item will fan shared state across many more locks. This
// header is the static half of that contract: every mutex in the
// tree is declared through the annotated `util::Mutex` wrapper, every
// guarded member carries VEGVISIR_GUARDED_BY, and CI compiles the
// whole tree under `clang++ -Werror=thread-safety`, so a lock-
// discipline violation is a build break rather than a tsan flake.
//
// Under GCC (the default local toolchain) every macro expands to
// nothing and `Mutex` is a zero-overhead std::mutex wrapper — the
// annotations cost exactly one header.
//
// Policy (vegvisir_lint.py rule 7):
//   - raw `std::mutex` / `std::shared_mutex` members are banned in
//     src/; declare `util::Mutex` from this header instead.
//   - every Mutex member must have at least one VEGVISIR_GUARDED_BY /
//     VEGVISIR_REQUIRES user (an unguarded mutex is either dead or a
//     lie).
//   - VEGVISIR_NO_THREAD_SAFETY_ANALYSIS never appears in src/
//     outside this file: suppressing the analysis inline is the
//     thread-safety equivalent of an inline NOLINT, and those are
//     banned repo-wide (rule 5). Restructure the code instead.
//
// Condition variables: use util::ConditionVariable (a thin wrapper
// over std::condition_variable_any) and wait on the Mutex itself —
// it is BasicLockable. Keeping the wait loop and its guarded reads
// in one function body is exactly what lets the analysis see them,
// and wait() carries VEGVISIR_REQUIRES(mu) so clang checks callers
// actually hold the mutex they re-acquire:
//
//   mu_.lock();
//   while (in_flight_ != 0) cv_.wait(mu_);
//   mu_.unlock();
//
// Lock hierarchy (src/util/lock_ranks.h, DESIGN.md §15): every Mutex
// member in src/ declares its rank at construction
// (`util::Mutex mu_{LockRank::kExecPool};` — vegvisir_lint rule 8).
// VEGVISIR_LOCK_DEBUG builds enforce strict rank ascent and the
// blocking-under-lock policy at runtime via the lock_debug hooks;
// default builds compile them to nothing.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/lock_ranks.h"

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define VEGVISIR_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef VEGVISIR_THREAD_ANNOTATION
#define VEGVISIR_THREAD_ANNOTATION(x)  // no-op: GCC or old clang
#endif

// A class that models a capability (a lock).
#define VEGVISIR_CAPABILITY(x) VEGVISIR_THREAD_ANNOTATION(capability(x))
// An RAII object that acquires a capability at construction and
// releases it at destruction.
#define VEGVISIR_SCOPED_CAPABILITY VEGVISIR_THREAD_ANNOTATION(scoped_lockable)
// Data member readable/writable only while holding the capability.
#define VEGVISIR_GUARDED_BY(x) VEGVISIR_THREAD_ANNOTATION(guarded_by(x))
// Pointer member whose *pointee* is guarded by the capability.
#define VEGVISIR_PT_GUARDED_BY(x) VEGVISIR_THREAD_ANNOTATION(pt_guarded_by(x))
// Function that must be called with the capability held (and returns
// with it still held).
#define VEGVISIR_REQUIRES(...) \
  VEGVISIR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define VEGVISIR_REQUIRES_SHARED(...) \
  VEGVISIR_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
// Function that acquires / releases the capability (no argument on a
// capability or scoped-capability member function means `this`).
#define VEGVISIR_ACQUIRE(...) \
  VEGVISIR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define VEGVISIR_ACQUIRE_SHARED(...) \
  VEGVISIR_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define VEGVISIR_RELEASE(...) \
  VEGVISIR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define VEGVISIR_RELEASE_SHARED(...) \
  VEGVISIR_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define VEGVISIR_TRY_ACQUIRE(...) \
  VEGVISIR_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
// Function that must NOT be called with the capability held.
#define VEGVISIR_EXCLUDES(...) \
  VEGVISIR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
// Assertion that the calling thread already holds the capability.
#define VEGVISIR_ASSERT_CAPABILITY(x) \
  VEGVISIR_THREAD_ANNOTATION(assert_capability(x))
// Function returning a reference to the capability guarding its
// result.
#define VEGVISIR_RETURN_CAPABILITY(x) \
  VEGVISIR_THREAD_ANNOTATION(lock_returned(x))
// Escape hatch for the analysis. Deliberately defined (the shim must
// mirror the full clang vocabulary) and deliberately banned in src/
// by vegvisir_lint rule 7 — findings are fixed by restructuring, not
// suppressed.
#define VEGVISIR_NO_THREAD_SAFETY_ANALYSIS \
  VEGVISIR_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace vegvisir::util {

// std::mutex with the capability attribute the analysis needs.
// BasicLockable, so util::ConditionVariable can wait on it directly
// and standard algorithms/guards still work where the analysis is
// off. The optional rank places the mutex in the global hierarchy
// (lock_ranks.h); default-constructed mutexes are kUnranked — legal
// only outside src/ (tests, probes).
class VEGVISIR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  constexpr explicit Mutex(LockRank rank) : rank_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() VEGVISIR_ACQUIRE() {
    // Hook first: rank descent is reported before the thread can
    // actually park on a cycle.
    lock_debug::OnAcquire(this, rank_);
    mu_.lock();
  }
  void unlock() VEGVISIR_RELEASE() {
    lock_debug::OnRelease(this);
    mu_.unlock();
  }
  bool try_lock() VEGVISIR_TRY_ACQUIRE(true) {
    const bool acquired = mu_.try_lock();
    if (acquired) lock_debug::OnTryAcquire(this, rank_);
    return acquired;
  }

  LockRank rank() const { return rank_; }

 private:
  std::mutex mu_;
  LockRank rank_ = LockRank::kUnranked;
};

// RAII guard: the std::lock_guard shape, visible to the analysis.
class VEGVISIR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) VEGVISIR_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() VEGVISIR_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// RAII guard that can release early (and re-acquire) inside its
// scope — the std::unique_lock shape for lock/notify orderings like
// "push under the lock, notify after dropping it".
class VEGVISIR_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) VEGVISIR_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.lock();
  }
  ~UniqueLock() VEGVISIR_RELEASE() {
    if (held_) mu_.unlock();
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() VEGVISIR_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }
  void unlock() VEGVISIR_RELEASE() {
    held_ = false;
    mu_.unlock();
  }
  bool owns_lock() const { return held_; }

 private:
  Mutex& mu_;
  bool held_;
};

// The condition variable that pairs with util::Mutex. Waits take the
// Mutex itself (BasicLockable), which keeps the guarded predicate
// reads inside the annotated caller where the analysis can check
// them; REQUIRES(mu) makes "the wait re-acquires mu before
// returning" a checked contract instead of a comment. The documented
// idiom is the file-header loop: lock, `while (pred) cv.wait(mu)`,
// unlock — and under VEGVISIR_LOCK_DEBUG the wait asserts that `mu`
// is the only lock the thread holds (waiting while holding a second
// lock stalls that lock's waiters unboundedly; lock_graph.py flags
// the same shape statically).
class ConditionVariable {
 public:
  ConditionVariable() = default;
  ConditionVariable(const ConditionVariable&) = delete;
  ConditionVariable& operator=(const ConditionVariable&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  void wait(Mutex& mu) VEGVISIR_REQUIRES(mu) {
    lock_debug::AssertOnlyHeld(&mu, "ConditionVariable::wait");
    // The underlying wait unlocks/relocks `mu` through the
    // BasicLockable interface, so the lock_debug held stack stays
    // accurate across the park (Mutex::unlock/lock run the hooks).
    cv_.wait(mu);
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace vegvisir::util
