// A simple Bloom filter over byte strings.
//
// Used by the summary-based reconciliation mode (recon/session.h,
// mode kBloom): the initiator summarizes its block-hash set in a few
// hundred bytes; the responder sends only blocks that are (probably)
// missing. False positives are possible — the protocol treats a
// "probably present" block that was actually missing as a normal
// reconciliation gap and escalates.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.h"
#include "util/status.h"

namespace vegvisir {

class BloomFilter {
 public:
  // `bits` is rounded up to a multiple of 8; `hashes` is the number
  // of probe positions per item (k).
  BloomFilter(std::size_t bits, int hashes);

  // Builds a filter sized for `expected_items` at roughly 1% false
  // positives (bits = 10 * n, k = 7).
  static BloomFilter ForExpectedItems(std::size_t expected_items);

  void Insert(ByteSpan item);

  // True if the item may be present; false means definitely absent.
  bool MayContain(ByteSpan item) const;

  std::size_t bit_count() const { return bits_.size() * 8; }
  int hash_count() const { return hashes_; }

  // Wire form: varint bit count, varint hash count, raw bits.
  Bytes Serialize() const;
  static StatusOr<BloomFilter> Deserialize(ByteSpan data);

 private:
  // Two independent 64-bit hashes combined with the Kirsch-
  // Mitzenmacher trick: probe_i = h1 + i * h2.
  static std::uint64_t Hash(ByteSpan item, std::uint64_t seed);

  std::vector<std::uint8_t> bits_;
  int hashes_;
};

}  // namespace vegvisir
