// Error handling for expected failures.
//
// Invalid blocks, malformed wire messages and permission denials are
// *normal* inputs for a node on an open ad hoc network, so validation
// reports them as values (`Status` / `StatusOr<T>`) rather than
// exceptions; exceptions remain reserved for programming errors.
#pragma once

#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace vegvisir {

enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,    // malformed input (bad encoding, bad hex, ...)
  kNotFound,           // referenced entity missing (parent block, CRDT)
  kAlreadyExists,      // duplicate insert (block, CRDT name)
  kPermissionDenied,   // role not allowed to perform operation
  kFailedPrecondition, // structural rule violated (timestamp, genesis)
  kUnauthenticated,    // bad signature / unknown creator
  kResourceExhausted,  // storage cap or message size exceeded
  kInternal,           // invariant violation inside the library
};

// Human-readable name for an ErrorCode ("ok", "not-found", ...).
const char* ErrorCodeName(ErrorCode code);

// A cheap, copyable success-or-error result.
class Status {
 public:
  Status() = default;  // OK
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "ok" or "<code-name>: <message>".
  std::string ToString() const;

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

inline Status InvalidArgumentError(std::string msg) {
  return Status(ErrorCode::kInvalidArgument, std::move(msg));
}
inline Status NotFoundError(std::string msg) {
  return Status(ErrorCode::kNotFound, std::move(msg));
}
inline Status AlreadyExistsError(std::string msg) {
  return Status(ErrorCode::kAlreadyExists, std::move(msg));
}
inline Status PermissionDeniedError(std::string msg) {
  return Status(ErrorCode::kPermissionDenied, std::move(msg));
}
inline Status FailedPreconditionError(std::string msg) {
  return Status(ErrorCode::kFailedPrecondition, std::move(msg));
}
inline Status UnauthenticatedError(std::string msg) {
  return Status(ErrorCode::kUnauthenticated, std::move(msg));
}
inline Status ResourceExhaustedError(std::string msg) {
  return Status(ErrorCode::kResourceExhausted, std::move(msg));
}
inline Status InternalError(std::string msg) {
  return Status(ErrorCode::kInternal, std::move(msg));
}

// A value or a Status explaining why there is none.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      // An OK StatusOr must carry a value; constructing one from a bare
      // OK status is a programming error.
      status_ = InternalError("StatusOr constructed from OK status");
    }
  }
  StatusOr(T value) : value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!status_.ok()) std::abort();
  }

  Status status_;
  std::optional<T> value_;
};

// Propagates a non-OK status out of the enclosing function.
#define VEGVISIR_RETURN_IF_ERROR(expr)                  \
  do {                                                  \
    ::vegvisir::Status vegvisir_status_ = (expr);       \
    if (!vegvisir_status_.ok()) return vegvisir_status_; \
  } while (false)

}  // namespace vegvisir
