#include "util/fsio.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "util/lock_ranks.h"

namespace vegvisir {
namespace {

Status ErrnoError(const std::string& what) {
  return InternalError(what + ": " + std::strerror(errno));
}

Status WriteAll(int fd, ByteSpan data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("write");
    }
    off += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

Status FsyncDir(const std::string& dir) {
  util::lock_debug::AssertBlockingAllowed("FsyncDir");
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return ErrnoError("open dir " + dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return ErrnoError("fsync dir " + dir);
  return Status::Ok();
}

Status DurableWriteFile(const std::string& path, ByteSpan data) {
  util::lock_debug::AssertBlockingAllowed("DurableWriteFile");
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoError("open " + tmp);
  Status s = WriteAll(fd, data);
  if (s.ok() && ::fsync(fd) != 0) s = ErrnoError("fsync " + tmp);
  if (::close(fd) != 0 && s.ok()) s = ErrnoError("close " + tmp);
  if (!s.ok()) {
    std::remove(tmp.c_str());
    return s;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    return InternalError("rename " + tmp + " -> " + path + ": " + ec.message());
  }
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  return FsyncDir(parent.empty() ? "." : parent.string());
}

StatusOr<Bytes> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return NotFoundError("cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  Bytes data(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(data.data()), size);
  if (!in) return InternalError("short read from " + path);
  return data;
}

}  // namespace vegvisir
