// Durable file I/O.
//
// The classic write-to-temp-then-rename idiom is atomic against
// concurrent readers but NOT against power loss: without an fsync on
// the temp file the rename can land while the data blocks are still
// dirty (the new name then points at garbage), and without an fsync
// on the parent directory the rename itself can vanish, taking the
// file with it. DurableWriteFile does the full dance — write, fsync
// the file, rename, fsync the directory — which is the guarantee the
// checkpoint writers (chain/store.h, node/checkpoint.h) and the
// storage engine's index (storage/index.h) build on.
#pragma once

#include <string>

#include "util/bytes.h"
#include "util/status.h"

namespace vegvisir {

// Atomically and durably replaces `path` with `data`: after an OK
// return the bytes survive power loss, and at no point does a reader
// observe a mix of old and new content. The temp file is created as
// `path` + ".tmp" (same directory, so the rename never crosses
// filesystems) and removed on failure.
Status DurableWriteFile(const std::string& path, ByteSpan data);

// Reads a whole file into memory. kNotFound if it cannot be opened.
StatusOr<Bytes> ReadFileBytes(const std::string& path);

// fsyncs a directory so completed renames/creates/unlinks inside it
// survive power loss.
Status FsyncDir(const std::string& dir);

}  // namespace vegvisir
