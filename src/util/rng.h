// Deterministic pseudo-random number generation.
//
// Every source of randomness in the library (simulator events, gossip
// peer selection, CRDT name generation, key generation in tests) draws
// from a seeded generator so that a whole simulation run is
// reproducible from (seed, config). No wall-clock entropy is used.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

namespace vegvisir {

// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256**: the library's workhorse PRNG. Not cryptographically
// secure; key material must come from crypto::Drbg instead.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  std::uint64_t NextU64() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound == 0 returns 0.
  std::uint64_t NextBelow(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = bound * (UINT64_MAX / bound);
    std::uint64_t v;
    do {
      v = NextU64();
    } while (v >= limit);
    return v % bound;
  }

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    NextBelow(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // True with probability p (clamped to [0, 1]).
  bool NextBool(double p) { return NextDouble() < p; }

  // Exponentially distributed value with the given mean (> 0).
  double NextExponential(double mean);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (std::size_t i = v->size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(NextBelow(i));
      using std::swap;
      swap((*v)[i - 1], (*v)[j]);
    }
  }

  // A random permutation of [0, n).
  std::vector<std::size_t> Permutation(std::size_t n) {
    std::vector<std::size_t> p(n);
    std::iota(p.begin(), p.end(), std::size_t{0});
    Shuffle(&p);
    return p;
  }

  // Derives an independent child generator (for per-node streams).
  Rng Fork() { return Rng(NextU64()); }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace vegvisir
