// The canonical lock hierarchy (DESIGN.md §15).
//
// Every util::Mutex in src/ declares its position in ONE total order,
// defined here and nowhere else. The rule is strict ascent: a thread
// may only acquire a mutex whose rank is strictly greater than every
// rank it already holds. Since all threads agree on the order, no
// cycle of lock waits can form — deadlock freedom by construction
// rather than by schedule luck.
//
// Three enforcers consume this header and must never drift apart:
//   - tools/analyzer/lock_graph.py parses the enum below, builds the
//     observed held->acquired edge graph over src/ and fails CI on
//     any edge that contradicts the declared order (or any cycle,
//     even among unranked locks);
//   - VEGVISIR_LOCK_DEBUG builds keep a thread-local stack of held
//     ranks and abort on out-of-order acquisition at runtime
//     (util::Mutex calls the lock_debug hooks below);
//   - clang thread-safety analysis checks the per-mutex capability
//     contracts (GUARDED_BY / REQUIRES / EXCLUDES), orthogonal to
//     order.
//
// Blocking-under-lock policy: a thread holding any mutex must not
// enter an unbounded wait — ThreadPool::Wait/Submit/ParallelFor,
// BatchVerifier::Lookup/Enqueue, sleeping, or waiting on a condition
// variable other than the one paired with the (single) held mutex.
// File I/O (write/fsync) is the one sanctioned exception and only
// under locks whose rank is marked may-block below: the storage
// engine's WAL discipline (DESIGN.md §13) deliberately serializes
// append+fsync under TieredStore::mu_. Adding a rank to
// LockRankMayBlock is a design decision, not a suppression — argue
// it in DESIGN.md §15 first.
//
// Condition variables inherit the rank of the mutex they pair with:
//   - ThreadPool::work_cv_ and ThreadPool::idle_cv_ both wait on
//     ThreadPool::mu_ (kExecPool) — idle_cv_ has no mutex of its own.
//   - BatchVerifier::done_cv_ waits on BatchVerifier::mu_
//     (kExecVerifier).
#pragma once

#include <cstddef>

namespace vegvisir::util {

// Gaps of 10 leave room to slot the per-shard DAG/store mutexes the
// sharded-ingest roadmap item will add, without renumbering.
enum class LockRank : int {
  // Escape hatch for tests and probes only; vegvisir_lint rule 8
  // rejects unranked util::Mutex members in src/. Unranked locks are
  // tracked on the held stack (so blocking-under-lock still fires)
  // but exempt from the ascent check in both directions.
  kUnranked = 0,
  // TieredStore::mu_ — the storage engine's WAL lock. Append/fsync
  // happen under it by design (may-block, see policy above). Lowest
  // rank: it is held while registering metrics cells during Open,
  // so it must order below kTelemetryRegistry.
  kStorageEngine = 10,
  // BatchVerifier::mu_ — verdict cache + in-flight accounting.
  kExecVerifier = 20,
  // ThreadPool::mu_ — the pool's single queue lock. Tasks run with
  // it dropped, so nothing is ever acquired under it.
  kExecPool = 30,
  // MetricsRegistry::mu_ — name->cell registration map. Innermost:
  // leaf operations only, never calls out while held.
  kTelemetryRegistry = 40,
};

// Ranks whose holders may perform file I/O (write/fsync). Keep this
// list in lockstep with the policy comment above; lock_graph.py
// parses it.
constexpr bool LockRankMayBlock(LockRank rank) {
  return rank == LockRank::kStorageEngine;
}

// Runtime half of the wall. util::Mutex calls these hooks; with
// VEGVISIR_LOCK_DEBUG undefined they are empty inlines and the whole
// namespace costs nothing.
namespace lock_debug {

// Receives a human-readable description of the violation. The
// default handler prints it and aborts; tests inject a counter so
// enforcement is assertable without death tests. Returns the
// previous handler.
using ViolationHandler = void (*)(const char* message);
ViolationHandler SetViolationHandlerForTest(ViolationHandler handler);

#if defined(VEGVISIR_LOCK_DEBUG)

// Called with the mutex NOT yet acquired: flags rank descent before
// the thread can actually deadlock, then pushes onto the held stack.
void OnAcquire(const void* mutex, LockRank rank);
// Called after a successful try_lock: pushes without the ascent
// check (try_lock cannot deadlock — it fails instead of waiting).
void OnTryAcquire(const void* mutex, LockRank rank);
void OnRelease(const void* mutex);

// Scheduler-class blocking (pool Wait/Submit, verifier Lookup):
// no lock of any rank may be held.
void AssertNoLocksHeld(const char* site);
// I/O-class blocking (write/fsync): every held lock must be
// may-block ranked.
void AssertBlockingAllowed(const char* site);
// Condition-variable idiom: `mutex` is held and is the ONLY held
// lock (waiting while holding a second lock stalls its waiters for
// an unbounded time).
void AssertOnlyHeld(const void* mutex, const char* site);

std::size_t HeldCountForTest();

#else  // !VEGVISIR_LOCK_DEBUG

inline void OnAcquire(const void*, LockRank) {}
inline void OnTryAcquire(const void*, LockRank) {}
inline void OnRelease(const void*) {}
inline void AssertNoLocksHeld(const char*) {}
inline void AssertBlockingAllowed(const char*) {}
inline void AssertOnlyHeld(const void*, const char*) {}
inline std::size_t HeldCountForTest() { return 0; }

#endif  // VEGVISIR_LOCK_DEBUG

}  // namespace lock_debug
}  // namespace vegvisir::util
