#include "serial/codec.h"

namespace vegvisir::serial {
namespace {

std::uint64_t ZigZagEncode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t ZigZagDecode(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

}  // namespace

void Writer::WriteU8(std::uint8_t v) { buffer_.push_back(v); }

void Writer::WriteU16(std::uint16_t v) {
  buffer_.push_back(static_cast<std::uint8_t>(v));
  buffer_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::WriteU32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::WriteU64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::WriteI64(std::int64_t v) { WriteVarint(ZigZagEncode(v)); }

void Writer::WriteVarint(std::uint64_t v) {
  while (v >= 0x80) {
    buffer_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buffer_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::WriteBytes(ByteSpan data) {
  WriteVarint(data.size());
  Append(&buffer_, data);
}

void Writer::WriteString(std::string_view s) {
  WriteBytes(ByteSpan(reinterpret_cast<const std::uint8_t*>(s.data()),
                      s.size()));
}

void Writer::WriteBool(bool v) { WriteU8(v ? 1 : 0); }

Status Reader::TruncatedError() {
  return InvalidArgumentError("truncated input");
}

Status Reader::ReadU8(std::uint8_t* out) {
  if (remaining() < 1) return TruncatedError();
  *out = data_[pos_++];
  return Status::Ok();
}

Status Reader::ReadU16(std::uint16_t* out) {
  if (remaining() < 2) return TruncatedError();
  *out = static_cast<std::uint16_t>(data_[pos_]) |
         (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8);
  pos_ += 2;
  return Status::Ok();
}

Status Reader::ReadU32(std::uint32_t* out) {
  if (remaining() < 4) return TruncatedError();
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  *out = v;
  return Status::Ok();
}

Status Reader::ReadU64(std::uint64_t* out) {
  if (remaining() < 8) return TruncatedError();
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  *out = v;
  return Status::Ok();
}

Status Reader::ReadI64(std::int64_t* out) {
  std::uint64_t raw;
  VEGVISIR_RETURN_IF_ERROR(ReadVarint(&raw));
  *out = ZigZagDecode(raw);
  return Status::Ok();
}

Status Reader::ReadVarint(std::uint64_t* out) {
  std::uint64_t v = 0;
  int shift = 0;
  std::uint8_t byte = 0;
  do {
    if (remaining() < 1) return TruncatedError();
    if (shift >= 64) return InvalidArgumentError("varint too long");
    byte = data_[pos_++];
    if (shift == 63 && (byte & 0x7e) != 0) {
      return InvalidArgumentError("varint overflows 64 bits");
    }
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    shift += 7;
  } while (byte & 0x80);
  // Canonical (minimal-length) check: the final byte must be nonzero
  // unless the whole value is the single byte 0.
  if (byte == 0 && shift > 7) {
    return InvalidArgumentError("non-minimal varint");
  }
  *out = v;
  return Status::Ok();
}

Status Reader::ReadBytes(Bytes* out) {
  std::uint64_t len;
  VEGVISIR_RETURN_IF_ERROR(ReadVarint(&len));
  if (len > remaining()) return TruncatedError();
  out->assign(data_.begin() + pos_, data_.begin() + pos_ + len);
  pos_ += len;
  return Status::Ok();
}

Status Reader::ReadString(std::string* out) {
  Bytes raw;
  VEGVISIR_RETURN_IF_ERROR(ReadBytes(&raw));
  out->assign(raw.begin(), raw.end());
  return Status::Ok();
}

Status Reader::ReadBool(bool* out) {
  std::uint8_t v;
  VEGVISIR_RETURN_IF_ERROR(ReadU8(&v));
  if (v > 1) return InvalidArgumentError("non-canonical bool");
  *out = (v == 1);
  return Status::Ok();
}

Status Reader::ExpectEnd() const {
  if (!AtEnd()) return InvalidArgumentError("trailing bytes after value");
  return Status::Ok();
}

}  // namespace vegvisir::serial
