// Wire decode limits: the single source of truth for every bound a
// decoder enforces on an attacker-controlled count or size.
//
// Vegvisir nodes parse blocks, frontier sets and certificates received
// from arbitrary physical neighbours (paper §IV-G), so every integer a
// decoder reads off the wire is attacker-controlled until proven
// bounded. The rule, enforced statically by tools/analyzer/
// wire_taint.py on every CI run: a wire-derived integer must pass
// through CheckWireCount() (or an explicit comparison against one of
// the limits::kMax* constants below) before it reaches an allocation,
// a container resize, or a loop trip count.
//
// Two bounds compose in CheckWireCount:
//   1. the input-relative bound — a count of N elements of at least
//      `min_elem_bytes` each cannot exceed remaining/min_elem_bytes
//      (divide, never multiply: a hostile count near 2^64 must not
//      wrap the check) — which rejects short bombs outright, and
//   2. the absolute protocol cap kMax* — which bounds work and memory
//      even for attackers willing to send megabytes of padding.
//
// Every constant here is referenced by at least one decoder and
// pinned by a bomb-regression test in tests/limits_test.cpp; see
// DESIGN.md §11 for how to add a bound for a new decoder field.
#pragma once

#include <cstdint>
#include <string>

#include "util/status.h"

namespace vegvisir::serial {
namespace limits {

// --- reconciliation wire messages (recon/messages.cpp) -------------
// Hashes per FrontierResponse/BlockRequest. A frontier is the set of
// childless blocks; even a pathological DAG shaped by hundreds of
// concurrent writers stays far below this.
inline constexpr std::uint64_t kMaxFrontierHashes = 1u << 16;
// Serialized blocks per FrontierResponse/BlockResponse/PushBlocks.
inline constexpr std::uint64_t kMaxWireBlocks = 1u << 16;
// Escalation ceiling for a FrontierRequest level; responders clamp to
// min(this, their own configured max_level) before walking the DAG.
inline constexpr std::uint64_t kMaxFrontierLevel = 1u << 20;

// --- set-difference negotiation (setdiff/, recon/messages.cpp) -----
// Range cells per DiffProbe digest. The probe partitions the 256-bit
// hash space into a fixed number of ranges (64 today); anything
// larger than this cap is a hostile or corrupt probe.
inline constexpr std::uint64_t kMaxDiffRanges = 1u << 10;
// IBLT cells per DiffSketch. Cells scale with the *delta*, not the
// DAG, and the responder sizes them at ~1.5x the estimated symmetric
// difference; a sketch claiming more cells than kMaxWireBlocks worth
// of delta is useless anyway.
inline constexpr std::uint64_t kMaxIbltCells = 1u << 16;
// Hashes per DiffResult report (the decoded one-sided difference; it
// can never legitimately exceed the cell count that produced it).
inline constexpr std::uint64_t kMaxDiffHashes = 1u << 16;

// --- block / transaction encoding (chain/) -------------------------
// Parents per block: the creator links to its current frontier, so
// this bounds frontier width at block-creation time.
inline constexpr std::uint64_t kMaxBlockParents = 1u << 10;
inline constexpr std::uint64_t kMaxBlockTransactions = 1u << 16;
inline constexpr std::uint64_t kMaxTransactionArgs = 1u << 10;

// --- witness proofs (chain/proof.cpp) ------------------------------
inline constexpr std::uint64_t kMaxProofPaths = 1u << 12;
inline constexpr std::uint64_t kMaxProofPathBlocks = 1u << 16;
inline constexpr std::uint64_t kMaxProofCerts = 1u << 16;

// --- persisted chain files (chain/store.cpp) -----------------------
inline constexpr std::uint64_t kMaxStoreBlocks = 1u << 18;
// Claimed encoded size of an evicted stub; a real block is bounded by
// the message limits above, so a larger claim is corruption.
inline constexpr std::uint64_t kMaxStubEncodedBytes = 1u << 24;

// --- durable block log (storage/) ----------------------------------
// Payload bytes per log record (one canonically serialized block); a
// real block is already bounded by the wire limits above, so a length
// field claiming more is corruption, and recovery truncates there.
inline constexpr std::uint64_t kMaxLogRecordBytes = 1u << 22;
// Records per log segment. The appender rolls segments well before
// this (storage::kSegmentTargetBytes), so a segment claiming more is
// corrupt and recovery stops at the cap.
inline constexpr std::uint64_t kMaxSegmentRecords = 1u << 16;
// Entries per persisted index file (storage/index.h).
inline constexpr std::uint64_t kMaxIndexEntries = 1u << 18;

// --- membership & CSM snapshots (csm/) -----------------------------
inline constexpr std::uint64_t kMaxMembers = 1u << 16;
inline constexpr std::uint64_t kMaxRevocationBlocks = 1u << 12;
inline constexpr std::uint64_t kMaxCsmInstances = 1u << 12;
inline constexpr std::uint64_t kMaxOpLogCrdts = 1u << 12;
inline constexpr std::uint64_t kMaxOpRecords = 1u << 16;
inline constexpr std::uint64_t kMaxOpArgs = 1u << 10;
inline constexpr std::uint64_t kMaxAppliedBlocks = 1u << 18;

// --- CRDT state encodings (crdt/) ----------------------------------
// Elements per CRDT state section (set members, RGA elements, map
// cells, register writes, counter shares, flag tokens).
inline constexpr std::uint64_t kMaxCrdtElements = 1u << 20;

// --- bloom filters (util/bloom.cpp) --------------------------------
inline constexpr std::uint64_t kMaxBloomHashes = 64;
inline constexpr std::uint64_t kMaxBloomBits = 1u << 26;

}  // namespace limits

// The canonical wire-count sanitizer. `what` names the field for the
// error message ("hash" -> "hash count exceeds input"); the messages
// are pinned by tests/corpus_test.cpp, tests/limits_test.cpp and
// recon::DecodeRejectName, so change them only in lockstep.
//
// The input-relative bound runs first so that short count-bomb inputs
// keep producing the historical "... exceeds input" verdict; the
// absolute cap catches the remaining case of a plausible count backed
// by real (attacker-paid) padding bytes.
inline Status CheckWireCount(std::uint64_t count, std::uint64_t limit,
                             std::size_t remaining,
                             std::size_t min_elem_bytes, const char* what) {
  if (min_elem_bytes > 0 &&
      count > remaining / min_elem_bytes) {
    return InvalidArgumentError(std::string(what) + " count exceeds input");
  }
  if (count > limit) {
    return InvalidArgumentError(std::string(what) + " count exceeds limit");
  }
  return Status::Ok();
}

}  // namespace vegvisir::serial
