// Canonical binary serialization.
//
// Everything that is hashed or signed (blocks, transactions,
// certificates) and every wire message is encoded with this codec. The
// encoding is canonical: a value has exactly one encoding, so equal
// structures hash equally and tamperproofness reduces to hash
// collision resistance.
//
// Format primitives:
//   - fixed-width little-endian integers (u8/u16/u32/u64)
//   - LEB128 varints for lengths and counts (minimal-length enforced
//     on decode, which is what makes the codec canonical)
//   - length-prefixed byte strings
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/bytes.h"
#include "util/status.h"

namespace vegvisir::serial {

// Appends primitive values to a growing byte buffer.
class Writer {
 public:
  Writer() = default;

  void WriteU8(std::uint8_t v);
  void WriteU16(std::uint16_t v);
  void WriteU32(std::uint32_t v);
  void WriteU64(std::uint64_t v);
  // Two's-complement via zigzag, then varint.
  void WriteI64(std::int64_t v);
  // LEB128, minimal length.
  void WriteVarint(std::uint64_t v);
  // Varint length prefix + raw bytes.
  void WriteBytes(ByteSpan data);
  void WriteString(std::string_view s);
  void WriteBool(bool v);
  template <std::size_t N>
  void WriteFixed(const std::array<std::uint8_t, N>& data) {
    Append(&buffer_, ByteSpan(data.data(), data.size()));
  }

  const Bytes& buffer() const { return buffer_; }
  Bytes Take() { return std::move(buffer_); }

 private:
  Bytes buffer_;
};

// Consumes primitive values from a byte buffer with bounds checking.
// All Read* methods return a Status; on error the reader position is
// unspecified and the caller must abandon the decode.
class Reader {
 public:
  explicit Reader(ByteSpan data) : data_(data) {}

  Status ReadU8(std::uint8_t* out);
  Status ReadU16(std::uint16_t* out);
  Status ReadU32(std::uint32_t* out);
  Status ReadU64(std::uint64_t* out);
  Status ReadI64(std::int64_t* out);
  Status ReadVarint(std::uint64_t* out);
  Status ReadBytes(Bytes* out);
  Status ReadString(std::string* out);
  Status ReadBool(bool* out);
  template <std::size_t N>
  Status ReadFixed(std::array<std::uint8_t, N>* out) {
    if (remaining() < N) return TruncatedError();
    std::copy(data_.begin() + pos_, data_.begin() + pos_ + N, out->begin());
    pos_ += N;
    return Status::Ok();
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return remaining() == 0; }

  // Decoders call this after the last field to enforce canonicality:
  // trailing garbage means the encoding is not canonical.
  Status ExpectEnd() const;

 private:
  static Status TruncatedError();

  ByteSpan data_;
  std::size_t pos_ = 0;
};

}  // namespace vegvisir::serial
