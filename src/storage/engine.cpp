#include "storage/engine.h"

#include <cstdlib>
#include <optional>
#include <utility>
#include <vector>

#include "crypto/sha256.h"

namespace vegvisir::storage {

TieredStore::TieredStore(TieredStoreOptions opts)
    : opts_(std::move(opts)),
      owned_telem_(opts_.telemetry != nullptr
                       ? nullptr
                       : std::make_unique<telemetry::Telemetry>()),
      telem_(opts_.telemetry != nullptr ? opts_.telemetry
                                        : owned_telem_.get()),
      index_(std::make_unique<BlockIndex>(telem_)),
      c_append_failures_(
          telem_->metrics.GetCounter("storage.append_failures")),
      c_cold_migrations_(
          telem_->metrics.GetCounter("storage.cold_migrations")),
      c_cold_reads_(telem_->metrics.GetCounter("storage.cold_reads")),
      c_cold_read_bytes_(
          telem_->metrics.GetCounter("storage.cold_read_bytes")),
      c_index_rebuilds_(telem_->metrics.GetCounter("storage.index.rebuilds")),
      g_hot_blocks_(telem_->metrics.GetGauge("storage.hot_blocks")),
      g_cold_blocks_(telem_->metrics.GetGauge("storage.cold_blocks")),
      g_hot_bytes_(telem_->metrics.GetGauge("storage.hot_bytes")) {}

std::string TieredStore::index_path() const {
  return opts_.dir + "/index.vidx";
}

StatusOr<std::unique_ptr<TieredStore>> TieredStore::Open(
    TieredStoreOptions opts) {
  std::unique_ptr<TieredStore> store(new TieredStore(std::move(opts)));
  // Nobody else can hold the store yet, but recovery writes guarded
  // state, so it runs under the engine lock like every other writer.
  const util::MutexLock guard(store->mu_);

  // The index (if usable) tells recovery how much of the log was
  // already CRC-verified and made durable; the log scan then only
  // re-hashes the suffix.
  std::uint64_t covered = 0;
  bool index_usable = false;
  if (auto loaded = store->index_->Load(store->index_path()); loaded.ok()) {
    covered = *loaded;
    index_usable = true;
  }

  BlockLog::Options lopts;
  lopts.dir = store->opts_.dir;
  lopts.io_faults = store->opts_.io_faults;
  lopts.io_seed = store->opts_.io_seed;
  lopts.telemetry = store->telem_;
  lopts.trusted_prefix_bytes = covered;
  auto log = BlockLog::Open(std::move(lopts));
  if (!log.ok()) return log.status();
  store->log_ = std::move(*log);

  // A truncation can leave the index covering bytes the log no longer
  // has; such an index may point into the void, so it is discarded
  // wholesale and rebuilt.
  if (index_usable && covered > store->log_->total_bytes()) {
    store->index_ = std::make_unique<BlockIndex>(store->telem_);
    covered = 0;
    index_usable = false;
  }
  if (!index_usable && store->log_->record_count() > 0) {
    store->c_index_rebuilds_.Inc();
  }

  // Index every record beyond the coverage point. The payload hash is
  // the block hash by construction (blocks hash their canonical
  // serialization), so re-indexing needs no block decode. The lambda
  // gets a plain pointer resolved under the lock held above —
  // thread-safety analysis treats a lambda as a separate function, so
  // it could not see the guard through a captured `store`.
  BlockIndex* index = store->index_.get();
  const Status indexed = store->log_->ForEachFrom(
      covered, [index](const RecordLocation& loc, ByteSpan payload) {
        const crypto::Sha256Digest digest = crypto::Sha256::Hash(payload);
        chain::BlockHash hash;
        std::copy(digest.begin(), digest.end(), hash.begin());
        index->Add(hash, loc);
        return Status::Ok();
      });
  if (!indexed.ok()) return indexed;
  return store;
}

Status TieredStore::Append(const chain::Block& block) {
  const util::MutexLock guard(mu_);
  if (index_->Lookup(block.hash()).has_value()) return Status::Ok();
  auto loc = log_->Append(block.Serialize());
  if (!loc.ok()) {
    c_append_failures_.Inc();
    return loc.status();
  }
  if (opts_.fsync_each_append) {
    const Status synced = log_->Sync();
    if (!synced.ok()) {
      c_append_failures_.Inc();
      return synced;
    }
  }
  index_->Add(block.hash(), *loc);
  return Status::Ok();
}

bool TieredStore::Contains(const chain::BlockHash& hash) const {
  const util::MutexLock guard(mu_);
  return index_->Lookup(hash).has_value();
}

StatusOr<chain::Block> TieredStore::Fetch(const chain::BlockHash& hash) const {
  const util::MutexLock guard(mu_);
  return FetchLocked(hash);
}

StatusOr<chain::Block> TieredStore::FetchLocked(
    const chain::BlockHash& hash) const {
  const auto loc = index_->Lookup(hash);
  if (!loc.has_value()) return NotFoundError("block not in storage index");
  auto payload = log_->Read(*loc);
  if (!payload.ok()) return payload.status();
  c_cold_reads_.Inc();
  c_cold_read_bytes_.Inc(payload->size());
  auto block = chain::Block::Deserialize(*payload);
  if (!block.ok()) return block.status();
  if (block->hash() != hash) {
    return InternalError("log payload does not hash to its index key");
  }
  return block;
}

std::size_t TieredStore::MigrateCold(chain::Dag* dag, std::size_t keep_hot) {
  const util::MutexLock guard(mu_);
  std::size_t migrated = 0;
  if (dag->StoredCount() > keep_hot) {
    // Bodies about to leave RAM must be durable first — without this
    // an unsynced block could exist nowhere at all after a crash.
    if (!log_->Sync().ok()) return 0;
    for (const chain::BlockHash& h : dag->TopologicalOrder()) {
      if (dag->StoredCount() <= keep_hot) break;
      if (dag->PresenceOf(h) != chain::Presence::kStored) continue;
      if (!index_->Lookup(h).has_value()) continue;
      if (dag->Evict(h).ok()) {
        migrated += 1;
        c_cold_migrations_.Inc();
      }
    }
  }
  UpdateResidency(*dag);
  return migrated;
}

Status TieredStore::FetchCold(chain::Dag* dag, const chain::BlockHash& hash) {
  const util::MutexLock guard(mu_);
  if (dag->PresenceOf(hash) == chain::Presence::kStored) return Status::Ok();
  auto block = FetchLocked(hash);
  if (!block.ok()) return block.status();
  VEGVISIR_RETURN_IF_ERROR(dag->Restore(*std::move(block)));
  UpdateResidency(*dag);
  return Status::Ok();
}

StatusOr<chain::Dag> TieredStore::RecoverDag() {
  const util::MutexLock guard(mu_);
  std::optional<chain::Dag> dag;
  std::vector<chain::Block> pending;
  const Status replayed = log_->ForEachFrom(
      0, [&dag, &pending](const RecordLocation&, ByteSpan payload) -> Status {
        auto decoded = chain::Block::Deserialize(payload);
        if (!decoded.ok()) return decoded.status();
        chain::Block block = *std::move(decoded);
        if (!dag.has_value()) {
          if (!block.header().parents.empty()) {
            return FailedPreconditionError(
                "first log record is not a genesis block");
          }
          dag.emplace(std::move(block));
          return Status::Ok();
        }
        const Status inserted = dag->Insert(block);
        if (inserted.ok() ||
            inserted.code() == ErrorCode::kAlreadyExists) {
          return Status::Ok();
        }
        if (inserted.code() == ErrorCode::kNotFound) {
          // WAL order is insert order, so this should not happen; park
          // and drain below rather than losing a durable block.
          pending.push_back(std::move(block));
          return Status::Ok();
        }
        return inserted;
      });
  if (!replayed.ok()) return replayed;
  if (!dag.has_value()) return NotFoundError("empty log: nothing to recover");

  bool progress = true;
  while (progress && !pending.empty()) {
    progress = false;
    for (auto it = pending.begin(); it != pending.end();) {
      const Status inserted = dag->Insert(*it);
      if (inserted.ok() || inserted.code() == ErrorCode::kAlreadyExists) {
        it = pending.erase(it);
        progress = true;
      } else {
        ++it;
      }
    }
  }
  if (!pending.empty()) {
    return FailedPreconditionError("log replay left orphaned blocks");
  }
  UpdateResidency(*dag);
  return *std::move(dag);
}

Status TieredStore::SyncIndex() {
  const util::MutexLock guard(mu_);
  VEGVISIR_RETURN_IF_ERROR(log_->Sync());
  return index_->Write(index_path(), log_->total_bytes());
}

TieredStoreStats TieredStore::GetStats() const {
  const util::MutexLock guard(mu_);
  TieredStoreStats stats;
  stats.log_records = log_->record_count();
  stats.log_bytes = log_->total_bytes();
  stats.log_wounded = log_->wounded();
  stats.segments = log_->segments();
  stats.recovery = log_->recovery();
  stats.index_mapped = index_->mapped_entries();
  stats.index_delta = index_->delta_entries();
  stats.index_covered_bytes = index_->covered_bytes();
  return stats;
}

void TieredStore::UpdateResidency(const chain::Dag& dag) {
  g_hot_blocks_.Set(static_cast<double>(dag.StoredCount()));
  g_cold_blocks_.Set(static_cast<double>(dag.Size() - dag.StoredCount()));
  g_hot_bytes_.Set(static_cast<double>(dag.StoredBytes()));
}

std::string DataDirFromEnv() {
  const char* dir = std::getenv("VEGVISIR_DATA_DIR");
  return dir == nullptr ? std::string() : std::string(dir);
}

}  // namespace vegvisir::storage
