#include "storage/env.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "storage/format.h"
#include "util/lock_ranks.h"

namespace vegvisir::storage {
namespace {

Status WriteAll(int fd, ByteSpan data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return InternalError(std::string("write: ") + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

FileIo::FileIo(sim::IoFaultPlan plan, std::uint64_t seed,
               telemetry::Telemetry* telemetry)
    : plan_(plan),
      rng_(seed),
      c_short_writes_(
          telemetry->metrics.GetCounter("storage.faults.short_writes")),
      c_torn_records_(
          telemetry->metrics.GetCounter("storage.faults.torn_records")),
      c_enospc_(telemetry->metrics.GetCounter("storage.faults.enospc")),
      c_fsyncs_(telemetry->metrics.GetCounter("storage.fsyncs")) {}

Status FileIo::AppendRecord(int fd, ByteSpan record) {
  // I/O-class blocking: legal under may-block ranks only (in
  // practice: the storage-engine lock, whose WAL discipline this is).
  util::lock_debug::AssertBlockingAllowed("FileIo::AppendRecord");
  appends_ += 1;
  const bool armed = !plan_.Empty() && appends_ > plan_.min_appends;
  if (armed && plan_.enospc_after_bytes != 0 &&
      bytes_written_ + record.size() > plan_.enospc_after_bytes) {
    c_enospc_.Inc();
    return ResourceExhaustedError("no space left on device (injected)");
  }
  // Both injected failures write a deterministic prefix and then fail
  // — the torn cut lands inside the record header, the short write
  // halfway through the payload.
  std::size_t keep = record.size();
  Status injected = Status::Ok();
  if (armed && rng_.NextBool(plan_.torn_record_probability)) {
    keep = std::min(record.size(), kRecordHeaderBytes / 2);
    c_torn_records_.Inc();
    injected = InternalError("write torn inside record header (injected)");
  } else if (armed && rng_.NextBool(plan_.short_write_probability)) {
    keep = std::min(record.size(),
                    kRecordHeaderBytes +
                        (record.size() - kRecordHeaderBytes) / 2);
    c_short_writes_.Inc();
    injected = InternalError("short write mid-payload (injected)");
  }
  const Status written = WriteAll(fd, record.subspan(0, keep));
  bytes_written_ += keep;
  if (!written.ok()) return written;
  return injected;
}

Status FileIo::Sync(int fd) {
  util::lock_debug::AssertBlockingAllowed("FileIo::Sync");
  if (::fsync(fd) != 0) {
    return InternalError(std::string("fsync: ") + std::strerror(errno));
  }
  c_fsyncs_.Inc();
  return Status::Ok();
}

}  // namespace vegvisir::storage
