#include "storage/index.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "serial/codec.h"
#include "serial/limits.h"
#include "util/fsio.h"

namespace vegvisir::storage {
namespace {

std::uint32_t LoadLe32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t LoadLe64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(LoadLe32(p)) |
         static_cast<std::uint64_t>(LoadLe32(p + 4)) << 32;
}

}  // namespace

BlockIndex::BlockIndex(telemetry::Telemetry* telemetry)
    : telem_(telemetry),
      c_probes_(telemetry->metrics.GetCounter("storage.index.probes")),
      c_hits_(telemetry->metrics.GetCounter("storage.index.hits")),
      c_writes_(telemetry->metrics.GetCounter("storage.index.writes")) {}

BlockIndex::~BlockIndex() { Unmap(); }

void BlockIndex::Unmap() {
  if (map_ != nullptr) {
    ::munmap(map_, map_size_);
    map_ = nullptr;
    map_size_ = 0;
    entry_count_ = 0;
  }
}

const std::uint8_t* BlockIndex::EntryAt(std::size_t i) const {
  return map_ + kIndexHeaderBytes + i * kIndexEntryBytes;
}

StatusOr<std::uint64_t> BlockIndex::Load(const std::string& path) {
  Unmap();
  covered_bytes_ = 0;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return NotFoundError("cannot open " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return InternalError("fstat " + path + ": " + std::strerror(errno));
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size < kIndexHeaderBytes) {
    ::close(fd);
    return InvalidArgumentError("index file truncated");
  }
  void* mapped = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference
  if (mapped == MAP_FAILED) {
    return InternalError("mmap " + path + ": " + std::strerror(errno));
  }
  map_ = static_cast<std::uint8_t*>(mapped);
  map_size_ = size;

  const ByteSpan header(map_, kIndexHeaderBytes);
  if (!std::equal(kIndexMagic, kIndexMagic + kMagicLen, header.begin())) {
    Unmap();
    return InvalidArgumentError("bad magic (not a Vegvisir index)");
  }
  serial::Reader r(header.subspan(kMagicLen));
  std::uint32_t version = 0;
  std::uint64_t count = 0;
  std::uint64_t covered = 0;
  Status parsed = r.ReadU32(&version);
  if (parsed.ok()) parsed = r.ReadU64(&count);
  if (parsed.ok()) parsed = r.ReadU64(&covered);
  if (!parsed.ok()) {
    Unmap();
    return parsed;
  }
  if (version != kFormatVersion) {
    Unmap();
    return InvalidArgumentError("unsupported index version");
  }
  const Status bounded = serial::CheckWireCount(
      count, serial::limits::kMaxIndexEntries, map_size_ - kIndexHeaderBytes,
      kIndexEntryBytes, "index entry");
  if (!bounded.ok()) {
    Unmap();
    return bounded;
  }
  if (kIndexHeaderBytes + count * kIndexEntryBytes != map_size_) {
    Unmap();
    return InvalidArgumentError("index size mismatch");
  }
  entry_count_ = static_cast<std::size_t>(count);
  covered_bytes_ = covered;
  return covered;
}

void BlockIndex::Add(const chain::BlockHash& hash, const RecordLocation& loc) {
  delta_[hash] = loc;
}

std::optional<RecordLocation> BlockIndex::Lookup(
    const chain::BlockHash& hash) const {
  c_probes_.Inc();
  if (const auto it = delta_.find(hash); it != delta_.end()) {
    c_hits_.Inc();
    return it->second;
  }
  std::size_t lo = 0;
  std::size_t hi = entry_count_;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    const int cmp = std::memcmp(EntryAt(mid), hash.data(), hash.size());
    if (cmp == 0) {
      const std::uint8_t* p = EntryAt(mid) + hash.size();
      RecordLocation loc;
      loc.segment_id = LoadLe64(p);
      loc.offset = LoadLe64(p + 8);
      loc.length = LoadLe32(p + 16);
      c_hits_.Inc();
      return loc;
    }
    if (cmp < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return std::nullopt;
}

Status BlockIndex::Write(const std::string& path, std::uint64_t log_bytes) {
  // Gather mapped + delta (delta wins on duplicate hashes).
  std::map<chain::BlockHash, RecordLocation> all;
  for (std::size_t i = 0; i < entry_count_; ++i) {
    const std::uint8_t* p = EntryAt(i);
    chain::BlockHash h;
    std::memcpy(h.data(), p, h.size());
    RecordLocation loc;
    loc.segment_id = LoadLe64(p + h.size());
    loc.offset = LoadLe64(p + h.size() + 8);
    loc.length = LoadLe32(p + h.size() + 16);
    all.emplace(h, loc);
  }
  for (const auto& [h, loc] : delta_) all[h] = loc;
  if (all.size() > serial::limits::kMaxIndexEntries) {
    return ResourceExhaustedError("index entry count exceeds limit");
  }

  serial::Writer w;
  for (std::size_t i = 0; i < kMagicLen; ++i) {
    w.WriteU8(static_cast<std::uint8_t>(kIndexMagic[i]));
  }
  w.WriteU32(kFormatVersion);
  w.WriteU64(all.size());
  w.WriteU64(log_bytes);
  for (const auto& [h, loc] : all) {
    w.WriteFixed(h);
    w.WriteU64(loc.segment_id);
    w.WriteU64(loc.offset);
    w.WriteU32(loc.length);
  }
  VEGVISIR_RETURN_IF_ERROR(DurableWriteFile(path, w.buffer()));
  c_writes_.Inc();

  auto reloaded = Load(path);
  if (!reloaded.ok()) return reloaded.status();
  delta_.clear();
  return Status::Ok();
}

}  // namespace vegvisir::storage
