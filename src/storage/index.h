// The mmap'd hash→offset index over the block log.
//
// File layout ("index.vidx"):
//
//   8-byte magic "VGVSIDX1" | u32 version | u64 entry count |
//   u64 covered log bytes | entries (sorted by hash)
//   entry: 32-byte block hash | u64 segment id | u64 payload offset |
//          u32 payload length                       (52 bytes)
//
// The mapped table is the RAM-cheap steady state: lookups binary-
// search the kernel's page cache instead of a per-block heap entry,
// which is what lets a device hold a chain much larger than RAM.
// Appends since the last Write() live in a small RAM delta that
// drains on the next Write(). The `covered log bytes` header field
// is the recovery checkpoint: everything below it was CRC-verified
// and fsync'd before the index was durably written (storage/
// engine.h orders it so), letting reopen skip re-hashing the covered
// prefix. A missing, corrupt, or over-covering index is never an
// error — the engine rebuilds it from the log and counts
// storage.index.rebuilds.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "chain/types.h"
#include "storage/format.h"
#include "telemetry/telemetry.h"
#include "util/status.h"

namespace vegvisir::storage {

inline constexpr std::size_t kIndexHeaderBytes = kMagicLen + 4 + 8 + 8;
inline constexpr std::size_t kIndexEntryBytes = 32 + 8 + 8 + 4;

class BlockIndex {
 public:
  // `telemetry` must be non-null and outlive the index.
  explicit BlockIndex(telemetry::Telemetry* telemetry);
  ~BlockIndex();

  BlockIndex(const BlockIndex&) = delete;
  BlockIndex& operator=(const BlockIndex&) = delete;

  // Maps `path` and returns the log bytes it covers. kNotFound if the
  // file is absent, kInvalidArgument if it is malformed — both mean
  // "rebuild from the log".
  StatusOr<std::uint64_t> Load(const std::string& path);

  // Records a new append in the RAM delta.
  void Add(const chain::BlockHash& hash, const RecordLocation& loc);

  std::optional<RecordLocation> Lookup(const chain::BlockHash& hash) const;

  // Durably rewrites `path` with every mapped + delta entry, stamps
  // it as covering `log_bytes`, and remaps it (the delta drains).
  Status Write(const std::string& path, std::uint64_t log_bytes);

  std::size_t mapped_entries() const { return entry_count_; }
  std::size_t delta_entries() const { return delta_.size(); }
  std::uint64_t covered_bytes() const { return covered_bytes_; }

 private:
  void Unmap();
  const std::uint8_t* EntryAt(std::size_t i) const;

  telemetry::Telemetry* telem_;
  // Mutable: Lookup is logically const but still counts its probes.
  mutable telemetry::Counter c_probes_;
  mutable telemetry::Counter c_hits_;
  telemetry::Counter c_writes_;
  std::uint8_t* map_ = nullptr;
  std::size_t map_size_ = 0;
  std::size_t entry_count_ = 0;
  std::uint64_t covered_bytes_ = 0;
  std::map<chain::BlockHash, RecordLocation> delta_;
};

}  // namespace vegvisir::storage
