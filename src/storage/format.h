// On-disk format of the durable block log (DESIGN.md §13).
//
// A log is a directory of append-only segment files:
//
//   seg-000000.vlog      [segment header][record][record]...
//   segment header       8-byte magic "VGVSSEG1" | u32 version | u64 id
//   record               u32 payload length | u32 CRC-32 of payload |
//                        payload (one canonically serialized block)
//
// plus one mmap-able index file (storage/index.h) rebuildable from
// the segments. All integers are little-endian via serial::Writer/
// Reader. The length field is wire-tainted: ParseRecordHeader bounds
// it against serial::limits::kMaxLogRecordBytes before any caller
// allocates. Torn tails are a normal artifact of power loss
// mid-append; recovery walks records until the first header/CRC/
// bounds failure in the final segment and truncates there — nothing
// before the failure point is ever dropped, and a failure anywhere
// but the tail is reported as corruption, not repaired silently.
#pragma once

#include <cstdint>
#include <string>

#include "util/bytes.h"
#include "util/status.h"

namespace vegvisir::storage {

inline constexpr std::size_t kMagicLen = 8;
inline constexpr char kSegmentMagic[kMagicLen + 1] = "VGVSSEG1";
inline constexpr char kIndexMagic[kMagicLen + 1] = "VGVSIDX1";
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::size_t kSegmentHeaderBytes = kMagicLen + 4 + 8;
inline constexpr std::size_t kRecordHeaderBytes = 4 + 4;
// The appender rolls to a fresh segment once the current one crosses
// this (a fault-free segment therefore also stays far below
// serial::limits::kMaxSegmentRecords).
inline constexpr std::uint64_t kSegmentTargetBytes = 4u << 20;

// CRC-32 (IEEE, reflected polynomial 0xEDB88320). Table-driven, no
// dependencies; protects each record payload against bit rot and
// identifies the torn tail after a crash.
std::uint32_t Crc32(ByteSpan data);

// Where one record's payload lives in the log.
struct RecordLocation {
  std::uint64_t segment_id = 0;
  std::uint64_t offset = 0;  // payload offset within the segment file
  std::uint32_t length = 0;  // payload bytes
};

Bytes EncodeSegmentHeader(std::uint64_t segment_id);
Status ParseSegmentHeader(ByteSpan data, std::uint64_t* segment_id);

Bytes EncodeRecordHeader(std::uint32_t length, std::uint32_t crc);
// Rejects zero-length records and lengths beyond kMaxLogRecordBytes.
Status ParseRecordHeader(ByteSpan data, std::uint32_t* length,
                         std::uint32_t* crc);

// "seg-000042.vlog" (zero-padded so lexicographic order is id order).
std::string SegmentFileName(std::uint64_t segment_id);
// Inverse of SegmentFileName; kInvalidArgument for any other name.
Status ParseSegmentFileName(const std::string& name,
                            std::uint64_t* segment_id);

}  // namespace vegvisir::storage
