// The append-only block log: the write-ahead half of the storage
// engine (DESIGN.md §13).
//
// Records (canonically serialized blocks) are appended to versioned
// segment files (storage/format.h) and become durable at Sync(). The
// recovery invariant the whole engine rests on: after a crash at any
// instant, reopening the log yields exactly the records whose append
// AND a subsequent Sync both completed, in append order — the scan
// stops at the first torn/corrupt record of the final segment and
// truncates it away, and nothing before that point is ever dropped.
// Corruption anywhere but the tail fails Open instead of being
// repaired silently: a torn tail is a crash artifact, a bad CRC in
// the middle of a synced prefix is data loss the caller must hear
// about.
//
// A failed append that may have left partial bytes on disk "wounds"
// the log: further appends are refused until the log is reopened,
// which routes the repair through the one recovery path instead of a
// second in-process bookkeeping scheme. ENOSPC does not wound (the
// disk wrote nothing); those appends may simply be retried.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/faults.h"
#include "storage/env.h"
#include "storage/format.h"
#include "telemetry/telemetry.h"
#include "util/bytes.h"
#include "util/status.h"

namespace vegvisir::storage {

class BlockLog {
 public:
  struct Options {
    std::string dir;
    sim::IoFaultPlan io_faults;
    std::uint64_t io_seed = 0;
    // Must be non-null (the engine supplies its bundle).
    telemetry::Telemetry* telemetry = nullptr;
    // Global byte offset (sum over segment files) below which records
    // were already CRC-verified by a previous run and persisted into
    // the index; recovery header-walks that prefix instead of
    // re-hashing every payload. 0 = verify everything.
    std::uint64_t trusted_prefix_bytes = 0;
  };

  struct RecoveryStats {
    std::uint64_t segments_scanned = 0;
    std::uint64_t records_replayed = 0;  // records that survived
    std::uint64_t records_truncated = 0; // torn/corrupt tail records cut
    std::uint64_t bytes_dropped = 0;     // bytes the truncation removed
  };

  struct SegmentInfo {
    std::uint64_t id = 0;
    std::string path;
    std::uint64_t records = 0;
    std::uint64_t bytes = 0;         // file size including header
    std::uint64_t global_start = 0;  // sum of preceding segments' bytes
    int fd = -1;                     // open for the log's lifetime
  };

  // Opens (creating the directory if needed) and recovers the log.
  static StatusOr<std::unique_ptr<BlockLog>> Open(Options opts);
  ~BlockLog();

  BlockLog(const BlockLog&) = delete;
  BlockLog& operator=(const BlockLog&) = delete;

  // Appends one record. NOT durable until Sync() returns OK.
  StatusOr<RecordLocation> Append(ByteSpan payload);
  // fsyncs the active segment (older segments were synced at roll).
  Status Sync();

  // Reads one payload back, re-verifying its CRC.
  StatusOr<Bytes> Read(const RecordLocation& loc) const;

  // Replays records in append order, skipping any record that ends at
  // or before `from_global_offset` (0 = everything). The span handed
  // to `fn` is only valid during the call.
  Status ForEachFrom(
      std::uint64_t from_global_offset,
      const std::function<Status(const RecordLocation&, ByteSpan)>& fn) const;

  std::uint64_t record_count() const { return record_count_; }
  std::uint64_t total_bytes() const { return total_bytes_; }
  const std::vector<SegmentInfo>& segments() const { return segments_; }
  const RecoveryStats& recovery() const { return recovery_; }
  bool wounded() const { return wounded_; }
  const std::string& dir() const { return opts_.dir; }

 private:
  explicit BlockLog(Options opts);

  Status Recover();
  Status ScanSegment(SegmentInfo* seg, bool is_last);
  Status RollSegment();

  Options opts_;
  FileIo io_;
  std::vector<SegmentInfo> segments_;
  std::uint64_t record_count_ = 0;
  std::uint64_t total_bytes_ = 0;
  RecoveryStats recovery_;
  bool wounded_ = false;
  telemetry::Counter c_appends_;
  telemetry::Counter c_bytes_appended_;
  telemetry::Counter c_segments_created_;
  telemetry::Counter c_recovery_runs_;
  telemetry::Counter c_recovery_replayed_;
  telemetry::Counter c_recovery_truncated_;
  telemetry::Counter c_recovery_bytes_dropped_;
  telemetry::Gauge g_segments_;
  telemetry::Gauge g_log_bytes_;
};

}  // namespace vegvisir::storage
