#include "storage/log.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "serial/limits.h"
#include "util/fsio.h"

namespace vegvisir::storage {
namespace {

Status ErrnoError(const std::string& what) {
  return InternalError(what + ": " + std::strerror(errno));
}

Status WriteAll(int fd, ByteSpan data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("write");
    }
    off += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Status PreadAll(int fd, std::uint8_t* buf, std::size_t len,
                std::uint64_t offset) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::pread(fd, buf + got, len - got,
                              static_cast<off_t>(offset + got));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("pread");
    }
    if (n == 0) return InternalError("pread: unexpected end of segment");
    got += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

BlockLog::BlockLog(Options opts)
    : opts_(std::move(opts)),
      io_(opts_.io_faults, opts_.io_seed, opts_.telemetry),
      c_appends_(opts_.telemetry->metrics.GetCounter("storage.appends")),
      c_bytes_appended_(
          opts_.telemetry->metrics.GetCounter("storage.bytes_appended")),
      c_segments_created_(
          opts_.telemetry->metrics.GetCounter("storage.segments_created")),
      c_recovery_runs_(
          opts_.telemetry->metrics.GetCounter("storage.recovery.runs")),
      c_recovery_replayed_(opts_.telemetry->metrics.GetCounter(
          "storage.recovery.records_replayed")),
      c_recovery_truncated_(opts_.telemetry->metrics.GetCounter(
          "storage.recovery.records_truncated")),
      c_recovery_bytes_dropped_(opts_.telemetry->metrics.GetCounter(
          "storage.recovery.bytes_dropped")),
      g_segments_(opts_.telemetry->metrics.GetGauge("storage.segments")),
      g_log_bytes_(opts_.telemetry->metrics.GetGauge("storage.log_bytes")) {}

BlockLog::~BlockLog() {
  // Deliberately no flush and no index write here: destruction must
  // be indistinguishable from a crash, so tests that "pull the plug"
  // by dropping the object exercise the same recovery path a real
  // power loss does. Durability is Sync()'s job alone.
  for (SegmentInfo& seg : segments_) {
    if (seg.fd >= 0) ::close(seg.fd);
  }
}

StatusOr<std::unique_ptr<BlockLog>> BlockLog::Open(Options opts) {
  if (opts.telemetry == nullptr) {
    return InvalidArgumentError("BlockLog requires a telemetry bundle");
  }
  std::error_code ec;
  std::filesystem::create_directories(opts.dir, ec);
  if (ec) {
    return InternalError("create " + opts.dir + ": " + ec.message());
  }
  std::unique_ptr<BlockLog> log(new BlockLog(std::move(opts)));
  VEGVISIR_RETURN_IF_ERROR(log->Recover());
  return log;
}

Status BlockLog::Recover() {
  c_recovery_runs_.Inc();
  std::vector<std::pair<std::uint64_t, std::string>> found;
  for (const auto& entry : std::filesystem::directory_iterator(opts_.dir)) {
    std::uint64_t id = 0;
    if (ParseSegmentFileName(entry.path().filename().string(), &id).ok()) {
      found.emplace_back(id, entry.path().string());
    }
  }
  std::sort(found.begin(), found.end());

  for (std::size_t i = 0; i < found.size(); ++i) {
    SegmentInfo seg;
    seg.id = found[i].first;
    seg.path = found[i].second;
    seg.global_start = total_bytes_;
    seg.fd = ::open(seg.path.c_str(), O_RDWR | O_APPEND);
    if (seg.fd < 0) return ErrnoError("open " + seg.path);
    struct stat st{};
    if (::fstat(seg.fd, &st) != 0) {
      ::close(seg.fd);
      return ErrnoError("fstat " + seg.path);
    }
    seg.bytes = static_cast<std::uint64_t>(st.st_size);

    const bool is_last = i + 1 == found.size();
    const Status scanned = ScanSegment(&seg, is_last);
    if (!scanned.ok()) {
      ::close(seg.fd);
      return scanned;
    }
    if (seg.fd < 0) continue;  // header-less crash artifact, dropped
    record_count_ += seg.records;
    total_bytes_ += seg.bytes;
    segments_.push_back(std::move(seg));
  }

  recovery_.records_replayed = record_count_;
  c_recovery_replayed_.Inc(recovery_.records_replayed);
  c_recovery_truncated_.Inc(recovery_.records_truncated);
  c_recovery_bytes_dropped_.Inc(recovery_.bytes_dropped);

  if (segments_.empty()) {
    VEGVISIR_RETURN_IF_ERROR(RollSegment());
  }
  g_segments_.Set(static_cast<double>(segments_.size()));
  g_log_bytes_.Set(static_cast<double>(total_bytes_));
  return Status::Ok();
}

Status BlockLog::ScanSegment(SegmentInfo* seg, bool is_last) {
  recovery_.segments_scanned += 1;
  bool header_ok = false;
  if (seg->bytes >= kSegmentHeaderBytes) {
    std::array<std::uint8_t, kSegmentHeaderBytes> head{};
    VEGVISIR_RETURN_IF_ERROR(
        PreadAll(seg->fd, head.data(), head.size(), 0));
    std::uint64_t id = 0;
    const Status parsed =
        ParseSegmentHeader(ByteSpan(head.data(), head.size()), &id);
    header_ok = parsed.ok() && id == seg->id;
  }
  if (!header_ok) {
    if (!is_last) {
      return InvalidArgumentError("segment header corrupt: " + seg->path);
    }
    // Crash during segment roll: the file exists but its header never
    // reached the disk intact. Nothing in it was ever acked.
    recovery_.bytes_dropped += seg->bytes;
    ::close(seg->fd);
    std::error_code ec;
    std::filesystem::remove(seg->path, ec);
    seg->fd = -1;
    return Status::Ok();
  }

  std::uint64_t pos = kSegmentHeaderBytes;
  std::uint64_t records = 0;
  Bytes payload;
  std::string stop;  // nonempty: first bad record found at `pos`
  while (pos < seg->bytes) {
    if (seg->bytes - pos < kRecordHeaderBytes) {
      stop = "torn record header";
      break;
    }
    std::array<std::uint8_t, kRecordHeaderBytes> head{};
    VEGVISIR_RETURN_IF_ERROR(PreadAll(seg->fd, head.data(), head.size(), pos));
    std::uint32_t length = 0;
    std::uint32_t crc = 0;
    const Status parsed =
        ParseRecordHeader(ByteSpan(head.data(), head.size()), &length, &crc);
    if (!parsed.ok()) {
      stop = parsed.message();
      break;
    }
    if (length > seg->bytes - pos - kRecordHeaderBytes) {
      stop = "torn record payload";
      break;
    }
    if (records + 1 > serial::limits::kMaxSegmentRecords) {
      stop = "segment record count exceeds limit";
      break;
    }
    const std::uint64_t payload_off = pos + kRecordHeaderBytes;
    // Records the index already covers were CRC-verified before that
    // index was durably written; header-walking them keeps reopen
    // cost proportional to the unsynced suffix, not the chain length.
    if (seg->global_start + payload_off + length >
        opts_.trusted_prefix_bytes) {
      payload.resize(length);
      VEGVISIR_RETURN_IF_ERROR(
          PreadAll(seg->fd, payload.data(), payload.size(), payload_off));
      if (Crc32(payload) != crc) {
        stop = "record CRC mismatch";
        break;
      }
    }
    records += 1;
    pos = payload_off + length;
  }

  if (!stop.empty()) {
    if (!is_last) {
      return InvalidArgumentError("log corrupted before tail (" + stop +
                                  ") in " + seg->path);
    }
    if (::ftruncate(seg->fd, static_cast<off_t>(pos)) != 0) {
      return ErrnoError("ftruncate " + seg->path);
    }
    recovery_.records_truncated += 1;
    recovery_.bytes_dropped += seg->bytes - pos;
    seg->bytes = pos;
  }
  seg->records = records;
  return Status::Ok();
}

Status BlockLog::RollSegment() {
  if (!segments_.empty()) {
    // The outgoing segment becomes immutable; make it durable now so
    // the trusted-prefix rule ("whole segments before the active one
    // are synced") holds.
    VEGVISIR_RETURN_IF_ERROR(io_.Sync(segments_.back().fd));
  }
  SegmentInfo seg;
  seg.id = segments_.empty() ? 0 : segments_.back().id + 1;
  seg.path = opts_.dir + "/" + SegmentFileName(seg.id);
  seg.global_start = total_bytes_;
  seg.fd = ::open(seg.path.c_str(), O_RDWR | O_CREAT | O_EXCL | O_APPEND,
                  0644);
  if (seg.fd < 0) return ErrnoError("open " + seg.path);
  const Bytes header = EncodeSegmentHeader(seg.id);
  Status s = WriteAll(seg.fd, header);
  if (s.ok()) s = io_.Sync(seg.fd);
  if (s.ok()) s = FsyncDir(opts_.dir);  // the new name must survive too
  if (!s.ok()) {
    ::close(seg.fd);
    return s;
  }
  seg.bytes = header.size();
  total_bytes_ += header.size();
  segments_.push_back(std::move(seg));
  c_segments_created_.Inc();
  g_segments_.Set(static_cast<double>(segments_.size()));
  g_log_bytes_.Set(static_cast<double>(total_bytes_));
  return Status::Ok();
}

StatusOr<RecordLocation> BlockLog::Append(ByteSpan payload) {
  if (wounded_) {
    return FailedPreconditionError(
        "log wounded by a failed append; reopen to recover");
  }
  if (payload.empty()) return InvalidArgumentError("empty log record");
  if (payload.size() > serial::limits::kMaxLogRecordBytes) {
    return InvalidArgumentError("log record length exceeds limit");
  }
  if (segments_.back().records + 1 > serial::limits::kMaxSegmentRecords ||
      (segments_.back().records > 0 &&
       segments_.back().bytes + kRecordHeaderBytes + payload.size() >
           kSegmentTargetBytes)) {
    VEGVISIR_RETURN_IF_ERROR(RollSegment());
  }
  SegmentInfo& seg = segments_.back();

  Bytes record = EncodeRecordHeader(static_cast<std::uint32_t>(payload.size()),
                                    Crc32(payload));
  vegvisir::Append(&record, payload);
  const RecordLocation loc{seg.id, seg.bytes + kRecordHeaderBytes,
                           static_cast<std::uint32_t>(payload.size())};
  const Status written = io_.AppendRecord(seg.fd, record);
  if (!written.ok()) {
    // ENOSPC wrote nothing — retryable. Anything else may have left a
    // partial record; only reopen-recovery may append after that.
    if (written.code() != ErrorCode::kResourceExhausted) wounded_ = true;
    return written;
  }
  seg.records += 1;
  seg.bytes += record.size();
  record_count_ += 1;
  total_bytes_ += record.size();
  c_appends_.Inc();
  c_bytes_appended_.Inc(record.size());
  g_log_bytes_.Set(static_cast<double>(total_bytes_));
  return loc;
}

Status BlockLog::Sync() { return io_.Sync(segments_.back().fd); }

StatusOr<Bytes> BlockLog::Read(const RecordLocation& loc) const {
  const auto it = std::lower_bound(
      segments_.begin(), segments_.end(), loc.segment_id,
      [](const SegmentInfo& s, std::uint64_t id) { return s.id < id; });
  if (it == segments_.end() || it->id != loc.segment_id) {
    return NotFoundError("unknown log segment");
  }
  if (loc.length == 0 || loc.length > serial::limits::kMaxLogRecordBytes) {
    return InvalidArgumentError("log record length exceeds limit");
  }
  if (loc.offset < kSegmentHeaderBytes + kRecordHeaderBytes ||
      loc.offset + loc.length > it->bytes) {
    return InvalidArgumentError("record location out of segment bounds");
  }
  std::array<std::uint8_t, kRecordHeaderBytes> head{};
  VEGVISIR_RETURN_IF_ERROR(PreadAll(it->fd, head.data(), head.size(),
                                    loc.offset - kRecordHeaderBytes));
  std::uint32_t length = 0;
  std::uint32_t crc = 0;
  VEGVISIR_RETURN_IF_ERROR(
      ParseRecordHeader(ByteSpan(head.data(), head.size()), &length, &crc));
  if (length != loc.length) {
    return InvalidArgumentError("record length mismatch at location");
  }
  Bytes payload(length);
  VEGVISIR_RETURN_IF_ERROR(
      PreadAll(it->fd, payload.data(), payload.size(), loc.offset));
  if (Crc32(payload) != crc) {
    return InvalidArgumentError("record CRC mismatch");
  }
  return payload;
}

Status BlockLog::ForEachFrom(
    std::uint64_t from_global_offset,
    const std::function<Status(const RecordLocation&, ByteSpan)>& fn) const {
  Bytes payload;
  for (const SegmentInfo& seg : segments_) {
    std::uint64_t pos = kSegmentHeaderBytes;
    for (std::uint64_t i = 0; i < seg.records; ++i) {
      std::array<std::uint8_t, kRecordHeaderBytes> head{};
      VEGVISIR_RETURN_IF_ERROR(
          PreadAll(seg.fd, head.data(), head.size(), pos));
      std::uint32_t length = 0;
      std::uint32_t crc = 0;
      VEGVISIR_RETURN_IF_ERROR(ParseRecordHeader(
          ByteSpan(head.data(), head.size()), &length, &crc));
      const std::uint64_t payload_off = pos + kRecordHeaderBytes;
      const RecordLocation loc{seg.id, payload_off, length};
      if (seg.global_start + payload_off + length > from_global_offset) {
        payload.resize(length);
        VEGVISIR_RETURN_IF_ERROR(
            PreadAll(seg.fd, payload.data(), payload.size(), payload_off));
        VEGVISIR_RETURN_IF_ERROR(
            fn(loc, ByteSpan(payload.data(), payload.size())));
      }
      pos = payload_off + length;
    }
  }
  return Status::Ok();
}

}  // namespace vegvisir::storage
