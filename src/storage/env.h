// The storage engine's syscall choke point, with deterministic fault
// injection spliced in exactly where a real disk fails.
//
// Every record append and fsync the log issues goes through one
// FileIo, so a sim::IoFaultPlan can produce the three crash shapes
// the recovery path must survive (DESIGN.md §13): a short write
// (payload prefix on disk, then failure), a torn record (the cut
// lands inside the 8-byte header), and ENOSPC (refused outright,
// nothing written). The injected Status mirrors what a real disk
// reports and the file's content afterwards mirrors what a real disk
// keeps, so the log layer cannot tell — and must not care — whether
// a failure was injected or real. Faults are a pure function of
// (plan, seed, append ordinal): a failing storage soak replays
// byte-identically. Injections are counted under storage.faults.*.
#pragma once

#include <cstdint>

#include "sim/faults.h"
#include "telemetry/telemetry.h"
#include "util/bytes.h"
#include "util/rng.h"
#include "util/status.h"

namespace vegvisir::storage {

class FileIo {
 public:
  // `telemetry` must outlive the FileIo and be non-null (the engine
  // always supplies its own bundle).
  FileIo(sim::IoFaultPlan plan, std::uint64_t seed,
         telemetry::Telemetry* telemetry);

  // Appends one whole log record (header + payload) at the current
  // end of `fd`. kResourceExhausted means nothing was written; any
  // other failure may have left a prefix of the record on disk —
  // the caller must treat the file as needing recovery.
  Status AppendRecord(int fd, ByteSpan record);

  Status Sync(int fd);

  std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  sim::IoFaultPlan plan_;
  Rng rng_;
  std::uint64_t appends_ = 0;
  std::uint64_t bytes_written_ = 0;
  telemetry::Counter c_short_writes_;
  telemetry::Counter c_torn_records_;
  telemetry::Counter c_enospc_;
  telemetry::Counter c_fsyncs_;
};

}  // namespace vegvisir::storage
