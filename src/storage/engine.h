// TieredStore: the durable block storage engine (DESIGN.md §13).
//
// Owns the append-only block log (storage/log.h) and the mmap'd
// hash→offset index (storage/index.h) behind the existing store/DAG
// interface: the Dag, reconciliation and checkpointing stay consumers
// of block bytes rather than owners. Three promises:
//
//   1. Write-ahead: Append() returns OK only after the serialized
//      block (and, unless configured off, an fsync) hit the log —
//      the node acks a block into its DAG only after that, so a
//      crash at any instant loses nothing that was acked.
//   2. Crash recovery: RecoverDag() replays the log (append order ==
//      DAG insert order, thanks to promise 1) into a fresh DAG; the
//      CSM re-derives by deterministic replay (node/checkpoint.h's
//      RecoverFromStorage).
//   3. Hot/cold tiering: the support-chain offload promoted to a
//      local cold tier — MigrateCold() evicts the oldest topological
//      prefix's bodies from RAM (the log keeps the bytes; the DAG
//      keeps stubs) and FetchCold() reads one back on demand, so the
//      RAM high-water of a long chain is the hot working set, not
//      the chain.
//
// Durability of the index is explicit (SyncIndex) and never happens
// in a destructor: tearing the engine down is deliberately
// crash-equivalent, and reopen rebuilds whatever the index misses.
// Every series lands under storage.* in the supplied telemetry
// bundle (or a private one when none is given).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "chain/block.h"
#include "chain/dag.h"
#include "sim/faults.h"
#include "storage/index.h"
#include "storage/log.h"
#include "telemetry/telemetry.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace vegvisir::storage {

struct TieredStoreOptions {
  // Directory holding segments + index; created if missing. Apps
  // conventionally derive it from VEGVISIR_DATA_DIR (DataDirFromEnv).
  std::string dir;
  // fsync after every append (the WAL discipline). Turning it off
  // batches durability into explicit Sync points — benchmarks use it
  // to separate write cost from fsync cost.
  bool fsync_each_append = true;
  sim::IoFaultPlan io_faults;
  std::uint64_t io_seed = 0;
  telemetry::Telemetry* telemetry = nullptr;  // null → private bundle
};

// Point-in-time copy of the log/index bookkeeping, taken under the
// engine lock. The inspection surface (examples, tests, bench)
// consumes this instead of references into live engine internals.
struct TieredStoreStats {
  std::uint64_t log_records = 0;
  std::uint64_t log_bytes = 0;
  bool log_wounded = false;
  std::vector<BlockLog::SegmentInfo> segments;
  BlockLog::RecoveryStats recovery;
  std::size_t index_mapped = 0;
  std::size_t index_delta = 0;
  std::uint64_t index_covered_bytes = 0;
};

class TieredStore {
 public:
  // Opens the store: recovers the log (truncating any torn tail),
  // loads the index, and re-indexes whatever the log holds beyond
  // the index's coverage (all of it, if the index was missing or
  // unusable — counted under storage.index.rebuilds).
  static StatusOr<std::unique_ptr<TieredStore>> Open(TieredStoreOptions opts);

  TieredStore(const TieredStore&) = delete;
  TieredStore& operator=(const TieredStore&) = delete;

  // Write-ahead append of one block. Idempotent for a block already
  // in the log. The caller may ack the block only after OK.
  Status Append(const chain::Block& block);

  bool Contains(const chain::BlockHash& hash) const;

  // Reads a block back from the log via the index (CRC re-verified,
  // hash checked). Works for hot and cold blocks alike.
  StatusOr<chain::Block> Fetch(const chain::BlockHash& hash) const;

  // Evicts bodies of the oldest topological prefix from the DAG until
  // at most `keep_hot` stored bodies remain. Genesis and frontier
  // blocks never migrate (Dag::Evict's rules) and neither does any
  // block the log does not durably hold. Returns blocks migrated.
  std::size_t MigrateCold(chain::Dag* dag, std::size_t keep_hot);

  // On-demand re-read: restores one evicted block's body into the DAG.
  Status FetchCold(chain::Dag* dag, const chain::BlockHash& hash);

  // Crash recovery: replays the whole log into a fresh DAG. The first
  // record must be the genesis block.
  StatusOr<chain::Dag> RecoverDag();

  // Durably persists the index (log synced first, so the index never
  // covers bytes that could still vanish).
  Status SyncIndex();

  // Refreshes the hot/cold residency gauges from the DAG.
  void UpdateResidency(const chain::Dag& dag);

  // Locked snapshot of the log/index bookkeeping.
  TieredStoreStats GetStats() const;

  std::string index_path() const;
  telemetry::Telemetry* telemetry() const { return telem_; }

 private:
  explicit TieredStore(TieredStoreOptions opts);
  // Fetch body with mu_ held; shared by Fetch and FetchCold (the
  // public pair must not nest, or the engine lock would deadlock on
  // itself).
  StatusOr<chain::Block> FetchLocked(const chain::BlockHash& hash) const
      VEGVISIR_REQUIRES(mu_);

  TieredStoreOptions opts_;
  std::unique_ptr<telemetry::Telemetry> owned_telem_;
  telemetry::Telemetry* telem_ = nullptr;
  // Guards the log and index objects (the pointers themselves are set
  // once during Open, before the store is shared; the pointees mutate
  // on every append/migrate). The sharded-ingest roadmap item lands
  // concurrent Fetch/Append on this lock. Rank kStorageEngine — the
  // one may-block rank: append+fsync under this lock IS the WAL
  // discipline (DESIGN.md §13/§15), and it orders below
  // kTelemetryRegistry because Open registers metrics cells while
  // holding it.
  mutable util::Mutex mu_{util::LockRank::kStorageEngine};
  std::unique_ptr<BlockIndex> index_ VEGVISIR_PT_GUARDED_BY(mu_);
  std::unique_ptr<BlockLog> log_ VEGVISIR_PT_GUARDED_BY(mu_);
  telemetry::Counter c_append_failures_;
  telemetry::Counter c_cold_migrations_;
  // Mutable: Fetch is logically const but still counts its reads.
  mutable telemetry::Counter c_cold_reads_;
  mutable telemetry::Counter c_cold_read_bytes_;
  telemetry::Counter c_index_rebuilds_;
  telemetry::Gauge g_hot_blocks_;
  telemetry::Gauge g_cold_blocks_;
  telemetry::Gauge g_hot_bytes_;
};

// The conventional data root: $VEGVISIR_DATA_DIR, or "" when unset
// (callers treat empty as "run RAM-only").
std::string DataDirFromEnv();

}  // namespace vegvisir::storage
