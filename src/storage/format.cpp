#include "storage/format.h"

#include <algorithm>
#include <array>
#include <charconv>
#include <cstdio>
#include <string_view>

#include "serial/codec.h"
#include "serial/limits.h"

namespace vegvisir::storage {
namespace {

constexpr std::string_view kSegmentPrefix = "seg-";
constexpr std::string_view kSegmentSuffix = ".vlog";
constexpr std::size_t kSegmentDigits = 6;

std::array<std::uint32_t, 256> MakeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < table.size(); ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t Crc32(ByteSpan data) {
  static const std::array<std::uint32_t, 256> kTable = MakeCrcTable();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::uint8_t b : data) {
    crc = kTable[(crc ^ b) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Bytes EncodeSegmentHeader(std::uint64_t segment_id) {
  serial::Writer w;
  for (std::size_t i = 0; i < kMagicLen; ++i) {
    w.WriteU8(static_cast<std::uint8_t>(kSegmentMagic[i]));
  }
  w.WriteU32(kFormatVersion);
  w.WriteU64(segment_id);
  return w.Take();
}

Status ParseSegmentHeader(ByteSpan data, std::uint64_t* segment_id) {
  if (data.size() < kSegmentHeaderBytes) {
    return InvalidArgumentError("segment header truncated");
  }
  if (!std::equal(kSegmentMagic, kSegmentMagic + kMagicLen, data.begin())) {
    return InvalidArgumentError("bad magic (not a Vegvisir log segment)");
  }
  serial::Reader r(data.subspan(kMagicLen, kSegmentHeaderBytes - kMagicLen));
  std::uint32_t version = 0;
  VEGVISIR_RETURN_IF_ERROR(r.ReadU32(&version));
  if (version != kFormatVersion) {
    return InvalidArgumentError("unsupported segment version");
  }
  return r.ReadU64(segment_id);
}

Bytes EncodeRecordHeader(std::uint32_t length, std::uint32_t crc) {
  serial::Writer w;
  w.WriteU32(length);
  w.WriteU32(crc);
  return w.Take();
}

Status ParseRecordHeader(ByteSpan data, std::uint32_t* length,
                         std::uint32_t* crc) {
  if (data.size() < kRecordHeaderBytes) {
    return InvalidArgumentError("log record header truncated");
  }
  serial::Reader r(data.subspan(0, kRecordHeaderBytes));
  VEGVISIR_RETURN_IF_ERROR(r.ReadU32(length));
  VEGVISIR_RETURN_IF_ERROR(r.ReadU32(crc));
  if (*length == 0) {
    return InvalidArgumentError("log record length is zero");
  }
  if (*length > serial::limits::kMaxLogRecordBytes) {
    return InvalidArgumentError("log record length exceeds limit");
  }
  return Status::Ok();
}

std::string SegmentFileName(std::uint64_t segment_id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg-%06llu.vlog",
                static_cast<unsigned long long>(segment_id));
  return buf;
}

Status ParseSegmentFileName(const std::string& name,
                            std::uint64_t* segment_id) {
  if (name.size() < kSegmentPrefix.size() + kSegmentDigits +
                        kSegmentSuffix.size() ||
      name.compare(0, kSegmentPrefix.size(), kSegmentPrefix) != 0 ||
      name.compare(name.size() - kSegmentSuffix.size(), kSegmentSuffix.size(),
                   kSegmentSuffix) != 0) {
    return InvalidArgumentError("not a segment file name: " + name);
  }
  const char* first = name.data() + kSegmentPrefix.size();
  const char* last = name.data() + name.size() - kSegmentSuffix.size();
  const auto [ptr, ec] = std::from_chars(first, last, *segment_id);
  if (ec != std::errc() || ptr != last) {
    return InvalidArgumentError("bad segment number in " + name);
  }
  return Status::Ok();
}

}  // namespace vegvisir::storage
