// The CRDT interface.
//
// Vegvisir restricts applications to CRDTs so that any total order
// consistent with the DAG's partial order produces the same state
// (paper §IV-C). Concretely, every operation accepted by `CheckOp`
// must commute with every concurrent operation: `Apply` over any
// topological order of the DAG yields the same `StateFingerprint`.
// The property tests in tests/crdt_property_test.cpp verify exactly
// that, by applying random operation sets in many shuffled orders.
//
// Operations carry an `OpContext` derived from the enclosing block:
// a globally unique transaction id (block hash + index), the creating
// user, and the block timestamp. Types that need causal context
// (OR-Set removes, MV-Register writes) receive it *explicitly in the
// operation arguments*, recorded by the writer at submit time — this
// keeps the CRDT layer independent of the DAG.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "crdt/value.h"
#include "util/bytes.h"
#include "util/status.h"

namespace vegvisir::crdt {

enum class CrdtType : std::uint8_t {
  kGSet = 0,         // add-only set
  kTwoPSet = 1,      // two-phase set (add + tombstone remove)
  kOrSet = 2,        // observed-remove set
  kGCounter = 3,     // grow-only counter
  kPnCounter = 4,    // increment/decrement counter
  kLwwRegister = 5,  // last-writer-wins register
  kMvRegister = 6,   // multi-value register
  kLwwMap = 7,       // last-writer-wins map<string, Value>
  kRga = 8,          // replicated growable array (ordered sequence)
  kEwFlag = 9,       // enable-wins boolean flag
};

const char* CrdtTypeName(CrdtType t);

// Parses "gset", "2pset", ... Returns false on unknown name.
bool CrdtTypeFromName(const std::string& name, CrdtType* out);

// Per-operation metadata supplied by the CRDT state machine.
struct OpContext {
  std::string tx_id;        // unique: "<block-hash-hex>:<tx-index>"
  std::string user_id;      // authenticated creator of the block
  std::uint64_t timestamp;  // block timestamp (ms since epoch)
};

using Args = std::span<const Value>;

class Crdt {
 public:
  virtual ~Crdt() = default;

  Crdt(const Crdt&) = delete;
  Crdt& operator=(const Crdt&) = delete;
  Crdt(Crdt&&) = default;
  Crdt& operator=(Crdt&&) = default;

  virtual CrdtType type() const = 0;

  // The element/value type this instance was created with.
  ValueType element_type() const { return element_type_; }

  // Operation names this type accepts ("add", "remove", ...).
  virtual std::vector<std::string> SupportedOps() const = 0;

  // Validates an operation without mutating state: operation name is
  // supported and arguments pass type checks. Must be side-effect
  // free; called by both the submitter and every validator.
  virtual Status CheckOp(const std::string& op, Args args) const = 0;

  // Applies a validated operation. Implementations must be
  // commutative for concurrent operations (see file comment).
  virtual Status Apply(const std::string& op, Args args,
                       const OpContext& ctx) = 0;

  // Canonical digest of the current state; two replicas converged iff
  // their fingerprints match. Iteration order inside is sorted, never
  // insertion order.
  virtual Bytes StateFingerprint() const = 0;

  // Full-state serialization for checkpointing (csm::StateMachine
  // snapshots): unlike the fingerprint, this round-trips.
  // DecodeState replaces the current state entirely; the instance
  // must have been created with the same type and element type.
  virtual void EncodeState(serial::Writer* w) const = 0;
  virtual Status DecodeState(serial::Reader* r) = 0;

 protected:
  explicit Crdt(ValueType element_type) : element_type_(element_type) {}

  // Shared arg validation helpers.
  Status ExpectArgCount(Args args, std::size_t n) const;
  Status ExpectArgCountAtLeast(Args args, std::size_t n) const;
  Status ExpectArgType(Args args, std::size_t index, ValueType t) const;

 private:
  ValueType element_type_;
};

// Instantiates an empty CRDT of the given type. `element_type` is the
// element type for sets/registers and the value type for maps;
// counters ignore it.
std::unique_ptr<Crdt> CreateCrdt(CrdtType type, ValueType element_type);

}  // namespace vegvisir::crdt
