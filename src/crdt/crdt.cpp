#include "crdt/crdt.h"

#include "crdt/counters.h"
#include "crdt/flags.h"
#include "crdt/map.h"
#include "crdt/registers.h"
#include "crdt/rga.h"
#include "crdt/sets.h"

namespace vegvisir::crdt {

const char* CrdtTypeName(CrdtType t) {
  switch (t) {
    case CrdtType::kGSet: return "gset";
    case CrdtType::kTwoPSet: return "2pset";
    case CrdtType::kOrSet: return "orset";
    case CrdtType::kGCounter: return "gcounter";
    case CrdtType::kPnCounter: return "pncounter";
    case CrdtType::kLwwRegister: return "lww";
    case CrdtType::kMvRegister: return "mv";
    case CrdtType::kLwwMap: return "lwwmap";
    case CrdtType::kRga: return "rga";
    case CrdtType::kEwFlag: return "ewflag";
  }
  return "unknown";
}

bool CrdtTypeFromName(const std::string& name, CrdtType* out) {
  for (int t = 0; t <= static_cast<int>(CrdtType::kEwFlag); ++t) {
    const auto type = static_cast<CrdtType>(t);
    if (name == CrdtTypeName(type)) {
      *out = type;
      return true;
    }
  }
  return false;
}

Status Crdt::ExpectArgCount(Args args, std::size_t n) const {
  if (args.size() != n) {
    return InvalidArgumentError("expected " + std::to_string(n) +
                                " argument(s), got " +
                                std::to_string(args.size()));
  }
  return Status::Ok();
}

Status Crdt::ExpectArgCountAtLeast(Args args, std::size_t n) const {
  if (args.size() < n) {
    return InvalidArgumentError("expected at least " + std::to_string(n) +
                                " argument(s), got " +
                                std::to_string(args.size()));
  }
  return Status::Ok();
}

Status Crdt::ExpectArgType(Args args, std::size_t index, ValueType t) const {
  if (args[index].type() != t) {
    return InvalidArgumentError(
        std::string("argument ") + std::to_string(index) + " must be " +
        ValueTypeName(t) + ", got " + ValueTypeName(args[index].type()));
  }
  return Status::Ok();
}

std::unique_ptr<Crdt> CreateCrdt(CrdtType type, ValueType element_type) {
  switch (type) {
    case CrdtType::kGSet:
      return std::make_unique<GSet>(element_type);
    case CrdtType::kTwoPSet:
      return std::make_unique<TwoPSet>(element_type);
    case CrdtType::kOrSet:
      return std::make_unique<OrSet>(element_type);
    case CrdtType::kGCounter:
      return std::make_unique<GCounter>(element_type);
    case CrdtType::kPnCounter:
      return std::make_unique<PnCounter>(element_type);
    case CrdtType::kLwwRegister:
      return std::make_unique<LwwRegister>(element_type);
    case CrdtType::kMvRegister:
      return std::make_unique<MvRegister>(element_type);
    case CrdtType::kLwwMap:
      return std::make_unique<LwwMap>(element_type);
    case CrdtType::kRga:
      return std::make_unique<Rga>(element_type);
    case CrdtType::kEwFlag:
      return std::make_unique<EwFlag>(element_type);
  }
  return nullptr;
}

}  // namespace vegvisir::crdt
