// Register CRDTs: LWW-Register and MV-Register.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "crdt/crdt.h"

namespace vegvisir::crdt {

// Last-writer-wins register. Ops: set(value). The winner is the write
// with the greatest (timestamp, tx_id) pair; the tx id breaks
// timestamp ties deterministically, so concurrent writes commute.
class LwwRegister : public Crdt {
 public:
  explicit LwwRegister(ValueType element_type) : Crdt(element_type) {}

  CrdtType type() const override { return CrdtType::kLwwRegister; }
  std::vector<std::string> SupportedOps() const override { return {"set"}; }
  Status CheckOp(const std::string& op, Args args) const override;
  Status Apply(const std::string& op, Args args, const OpContext& ctx) override;
  Bytes StateFingerprint() const override;
  void EncodeState(serial::Writer* w) const override;
  Status DecodeState(serial::Reader* r) override;

  std::optional<Value> Get() const { return value_; }

 private:
  std::optional<Value> value_;
  std::uint64_t timestamp_ = 0;
  std::string tx_id_;
};

// Multi-value register. Ops: set(value, observed_tx_id...). A write
// supersedes exactly the writes whose tx ids it lists (the versions
// the writer had observed); concurrent writes survive side by side,
// exposing the conflict to the application.
class MvRegister : public Crdt {
 public:
  explicit MvRegister(ValueType element_type) : Crdt(element_type) {}

  CrdtType type() const override { return CrdtType::kMvRegister; }
  std::vector<std::string> SupportedOps() const override { return {"set"}; }
  Status CheckOp(const std::string& op, Args args) const override;
  Status Apply(const std::string& op, Args args, const OpContext& ctx) override;
  Bytes StateFingerprint() const override;
  void EncodeState(serial::Writer* w) const override;
  Status DecodeState(serial::Reader* r) override;

  // All currently-visible (conflicting) values, sorted.
  std::vector<Value> Values() const;

  // Tx ids of the visible versions — the causal context a writer
  // should include in its next set().
  std::vector<std::string> VisibleVersions() const;

 private:
  std::map<std::string, Value> writes_;       // tx_id -> value
  std::map<std::string, bool> superseded_;    // tx_id -> overwritten?
};

}  // namespace vegvisir::crdt
