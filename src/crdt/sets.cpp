#include "crdt/sets.h"

#include "serial/limits.h"

namespace vegvisir::crdt {
namespace {

// Fingerprint helper: encodes a tag followed by a sorted set of values.
void EncodeValueSet(serial::Writer* w, const std::set<Value>& values) {
  w->WriteVarint(values.size());
  for (const Value& v : values) v.Encode(w);
}

}  // namespace

// ----------------------------------------------------------------- GSet

Status GSet::CheckOp(const std::string& op, Args args) const {
  if (op != "add") return InvalidArgumentError("gset supports only 'add'");
  VEGVISIR_RETURN_IF_ERROR(ExpectArgCount(args, 1));
  return ExpectArgType(args, 0, element_type());
}

Status GSet::Apply(const std::string& op, Args args, const OpContext&) {
  VEGVISIR_RETURN_IF_ERROR(CheckOp(op, args));
  elements_.insert(args[0]);
  return Status::Ok();
}

Bytes GSet::StateFingerprint() const {
  serial::Writer w;
  w.WriteString("gset");
  EncodeValueSet(&w, elements_);
  return w.Take();
}

// --------------------------------------------------------------- TwoPSet

Status TwoPSet::CheckOp(const std::string& op, Args args) const {
  if (op != "add" && op != "remove") {
    return InvalidArgumentError("2pset supports 'add' and 'remove'");
  }
  VEGVISIR_RETURN_IF_ERROR(ExpectArgCount(args, 1));
  return ExpectArgType(args, 0, element_type());
}

Status TwoPSet::Apply(const std::string& op, Args args, const OpContext&) {
  VEGVISIR_RETURN_IF_ERROR(CheckOp(op, args));
  if (op == "add") {
    added_.insert(args[0]);
  } else {
    removed_.insert(args[0]);
  }
  return Status::Ok();
}

std::set<Value> TwoPSet::LiveElements() const {
  std::set<Value> live;
  for (const Value& v : added_) {
    if (removed_.count(v) == 0) live.insert(v);
  }
  return live;
}

Bytes TwoPSet::StateFingerprint() const {
  serial::Writer w;
  w.WriteString("2pset");
  EncodeValueSet(&w, added_);
  EncodeValueSet(&w, removed_);
  return w.Take();
}

// ----------------------------------------------------------------- OrSet

Status OrSet::CheckOp(const std::string& op, Args args) const {
  if (op == "add") {
    VEGVISIR_RETURN_IF_ERROR(ExpectArgCount(args, 1));
    return ExpectArgType(args, 0, element_type());
  }
  if (op == "remove") {
    VEGVISIR_RETURN_IF_ERROR(ExpectArgCountAtLeast(args, 1));
    VEGVISIR_RETURN_IF_ERROR(ExpectArgType(args, 0, element_type()));
    for (std::size_t i = 1; i < args.size(); ++i) {
      VEGVISIR_RETURN_IF_ERROR(ExpectArgType(args, i, ValueType::kStr));
    }
    return Status::Ok();
  }
  return InvalidArgumentError("orset supports 'add' and 'remove'");
}

Status OrSet::Apply(const std::string& op, Args args, const OpContext& ctx) {
  VEGVISIR_RETURN_IF_ERROR(CheckOp(op, args));
  if (op == "add") {
    added_tags_[args[0]].insert(ctx.tx_id);
  } else {
    auto& removed = removed_tags_[args[0]];
    for (std::size_t i = 1; i < args.size(); ++i) {
      removed.insert(args[i].AsStr());
    }
  }
  return Status::Ok();
}

bool OrSet::Contains(const Value& v) const {
  const auto it = added_tags_.find(v);
  if (it == added_tags_.end()) return false;
  const auto rem_it = removed_tags_.find(v);
  if (rem_it == removed_tags_.end()) return !it->second.empty();
  for (const std::string& tag : it->second) {
    if (rem_it->second.count(tag) == 0) return true;
  }
  return false;
}

std::set<Value> OrSet::LiveElements() const {
  std::set<Value> live;
  for (const auto& [v, tags] : added_tags_) {
    if (Contains(v)) live.insert(v);
  }
  return live;
}

std::vector<std::string> OrSet::ObservedTags(const Value& v) const {
  std::vector<std::string> tags;
  const auto it = added_tags_.find(v);
  if (it == added_tags_.end()) return tags;
  const auto rem_it = removed_tags_.find(v);
  for (const std::string& tag : it->second) {
    if (rem_it == removed_tags_.end() || rem_it->second.count(tag) == 0) {
      tags.push_back(tag);
    }
  }
  return tags;
}

Bytes OrSet::StateFingerprint() const {
  serial::Writer w;
  w.WriteString("orset");
  w.WriteVarint(added_tags_.size());
  for (const auto& [v, tags] : added_tags_) {
    v.Encode(&w);
    w.WriteVarint(tags.size());
    for (const std::string& t : tags) w.WriteString(t);
  }
  w.WriteVarint(removed_tags_.size());
  for (const auto& [v, tags] : removed_tags_) {
    v.Encode(&w);
    w.WriteVarint(tags.size());
    for (const std::string& t : tags) w.WriteString(t);
  }
  return w.Take();
}

// ------------------------------------------------- state serialization

namespace {

Status DecodeValueSet(serial::Reader* r, std::set<Value>* out) {
  std::uint64_t count;
  VEGVISIR_RETURN_IF_ERROR(r->ReadVarint(&count));
  VEGVISIR_RETURN_IF_ERROR(serial::CheckWireCount(
      count, serial::limits::kMaxCrdtElements, r->remaining(), 1,
      "value set"));
  out->clear();
  for (std::uint64_t i = 0; i < count; ++i) {
    Value v;
    VEGVISIR_RETURN_IF_ERROR(Value::Decode(r, &v));
    out->insert(std::move(v));
  }
  return Status::Ok();
}

void EncodeTagMap(serial::Writer* w,
                  const std::map<Value, std::set<std::string>>& m) {
  w->WriteVarint(m.size());
  for (const auto& [v, tags] : m) {
    v.Encode(w);
    w->WriteVarint(tags.size());
    for (const std::string& t : tags) w->WriteString(t);
  }
}

Status DecodeTagMap(serial::Reader* r,
                    std::map<Value, std::set<std::string>>* out) {
  std::uint64_t count;
  VEGVISIR_RETURN_IF_ERROR(r->ReadVarint(&count));
  VEGVISIR_RETURN_IF_ERROR(serial::CheckWireCount(
      count, serial::limits::kMaxCrdtElements, r->remaining(), 1,
      "tag map"));
  out->clear();
  for (std::uint64_t i = 0; i < count; ++i) {
    Value v;
    VEGVISIR_RETURN_IF_ERROR(Value::Decode(r, &v));
    std::uint64_t tag_count;
    VEGVISIR_RETURN_IF_ERROR(r->ReadVarint(&tag_count));
    VEGVISIR_RETURN_IF_ERROR(serial::CheckWireCount(
        tag_count, serial::limits::kMaxCrdtElements, r->remaining(), 1,
        "tag"));
    std::set<std::string> tags;
    for (std::uint64_t t = 0; t < tag_count; ++t) {
      std::string tag;
      VEGVISIR_RETURN_IF_ERROR(r->ReadString(&tag));
      tags.insert(std::move(tag));
    }
    (*out)[std::move(v)] = std::move(tags);
  }
  return Status::Ok();
}

}  // namespace

void GSet::EncodeState(serial::Writer* w) const {
  EncodeValueSet(w, elements_);
}

Status GSet::DecodeState(serial::Reader* r) {
  return DecodeValueSet(r, &elements_);
}

void TwoPSet::EncodeState(serial::Writer* w) const {
  EncodeValueSet(w, added_);
  EncodeValueSet(w, removed_);
}

Status TwoPSet::DecodeState(serial::Reader* r) {
  VEGVISIR_RETURN_IF_ERROR(DecodeValueSet(r, &added_));
  return DecodeValueSet(r, &removed_);
}

void OrSet::EncodeState(serial::Writer* w) const {
  EncodeTagMap(w, added_tags_);
  EncodeTagMap(w, removed_tags_);
}

Status OrSet::DecodeState(serial::Reader* r) {
  VEGVISIR_RETURN_IF_ERROR(DecodeTagMap(r, &added_tags_));
  return DecodeTagMap(r, &removed_tags_);
}

}  // namespace vegvisir::crdt
