#include "crdt/registers.h"

#include <algorithm>

#include "serial/limits.h"

namespace vegvisir::crdt {

// ------------------------------------------------------------ LwwRegister

Status LwwRegister::CheckOp(const std::string& op, Args args) const {
  if (op != "set") return InvalidArgumentError("lww supports only 'set'");
  VEGVISIR_RETURN_IF_ERROR(ExpectArgCount(args, 1));
  return ExpectArgType(args, 0, element_type());
}

Status LwwRegister::Apply(const std::string& op, Args args,
                          const OpContext& ctx) {
  VEGVISIR_RETURN_IF_ERROR(CheckOp(op, args));
  // Keep the write with the greater (timestamp, tx_id); applying the
  // same set of writes in any order converges on the same winner.
  if (!value_.has_value() || ctx.timestamp > timestamp_ ||
      (ctx.timestamp == timestamp_ && ctx.tx_id > tx_id_)) {
    value_ = args[0];
    timestamp_ = ctx.timestamp;
    tx_id_ = ctx.tx_id;
  }
  return Status::Ok();
}

Bytes LwwRegister::StateFingerprint() const {
  serial::Writer w;
  w.WriteString("lww");
  w.WriteBool(value_.has_value());
  if (value_.has_value()) {
    value_->Encode(&w);
    w.WriteU64(timestamp_);
    w.WriteString(tx_id_);
  }
  return w.Take();
}

// ------------------------------------------------------------ MvRegister

Status MvRegister::CheckOp(const std::string& op, Args args) const {
  if (op != "set") return InvalidArgumentError("mv supports only 'set'");
  VEGVISIR_RETURN_IF_ERROR(ExpectArgCountAtLeast(args, 1));
  VEGVISIR_RETURN_IF_ERROR(ExpectArgType(args, 0, element_type()));
  for (std::size_t i = 1; i < args.size(); ++i) {
    VEGVISIR_RETURN_IF_ERROR(ExpectArgType(args, i, ValueType::kStr));
  }
  return Status::Ok();
}

Status MvRegister::Apply(const std::string& op, Args args,
                         const OpContext& ctx) {
  VEGVISIR_RETURN_IF_ERROR(CheckOp(op, args));
  writes_.emplace(ctx.tx_id, args[0]);
  // Record supersession of the observed versions; a superseded mark
  // is permanent, so marks commute regardless of arrival order.
  if (superseded_.find(ctx.tx_id) == superseded_.end()) {
    superseded_[ctx.tx_id] = false;
  }
  for (std::size_t i = 1; i < args.size(); ++i) {
    superseded_[args[i].AsStr()] = true;
  }
  return Status::Ok();
}

std::vector<Value> MvRegister::Values() const {
  std::vector<Value> out;
  for (const auto& [tx_id, value] : writes_) {
    const auto it = superseded_.find(tx_id);
    if (it == superseded_.end() || !it->second) out.push_back(value);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> MvRegister::VisibleVersions() const {
  std::vector<std::string> out;
  for (const auto& [tx_id, value] : writes_) {
    const auto it = superseded_.find(tx_id);
    if (it == superseded_.end() || !it->second) out.push_back(tx_id);
  }
  return out;
}

Bytes MvRegister::StateFingerprint() const {
  serial::Writer w;
  w.WriteString("mv");
  w.WriteVarint(writes_.size());
  for (const auto& [tx_id, value] : writes_) {
    w.WriteString(tx_id);
    value.Encode(&w);
    const auto it = superseded_.find(tx_id);
    w.WriteBool(it != superseded_.end() && it->second);
  }
  return w.Take();
}

// ------------------------------------------------- state serialization

void LwwRegister::EncodeState(serial::Writer* w) const {
  w->WriteBool(value_.has_value());
  if (value_.has_value()) value_->Encode(w);
  w->WriteU64(timestamp_);
  w->WriteString(tx_id_);
}

Status LwwRegister::DecodeState(serial::Reader* r) {
  bool has_value;
  VEGVISIR_RETURN_IF_ERROR(r->ReadBool(&has_value));
  if (has_value) {
    Value v;
    VEGVISIR_RETURN_IF_ERROR(Value::Decode(r, &v));
    value_ = std::move(v);
  } else {
    value_.reset();
  }
  VEGVISIR_RETURN_IF_ERROR(r->ReadU64(&timestamp_));
  return r->ReadString(&tx_id_);
}

void MvRegister::EncodeState(serial::Writer* w) const {
  w->WriteVarint(writes_.size());
  for (const auto& [tx_id, value] : writes_) {
    w->WriteString(tx_id);
    value.Encode(w);
  }
  w->WriteVarint(superseded_.size());
  for (const auto& [tx_id, dead] : superseded_) {
    w->WriteString(tx_id);
    w->WriteBool(dead);
  }
}

Status MvRegister::DecodeState(serial::Reader* r) {
  std::uint64_t count;
  VEGVISIR_RETURN_IF_ERROR(r->ReadVarint(&count));
  VEGVISIR_RETURN_IF_ERROR(serial::CheckWireCount(
      count, serial::limits::kMaxCrdtElements, r->remaining(), 1, "write"));
  writes_.clear();
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string tx_id;
    Value v;
    VEGVISIR_RETURN_IF_ERROR(r->ReadString(&tx_id));
    VEGVISIR_RETURN_IF_ERROR(Value::Decode(r, &v));
    writes_.emplace(std::move(tx_id), std::move(v));
  }
  VEGVISIR_RETURN_IF_ERROR(r->ReadVarint(&count));
  VEGVISIR_RETURN_IF_ERROR(serial::CheckWireCount(
      count, serial::limits::kMaxCrdtElements, r->remaining(), 1,
      "supersession"));
  superseded_.clear();
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string tx_id;
    bool dead;
    VEGVISIR_RETURN_IF_ERROR(r->ReadString(&tx_id));
    VEGVISIR_RETURN_IF_ERROR(r->ReadBool(&dead));
    superseded_[std::move(tx_id)] = dead;
  }
  return Status::Ok();
}

}  // namespace vegvisir::crdt
