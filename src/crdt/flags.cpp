#include "crdt/flags.h"

#include "serial/limits.h"

namespace vegvisir::crdt {

Status EwFlag::CheckOp(const std::string& op, Args args) const {
  if (op == "enable") {
    return ExpectArgCount(args, 0);
  }
  if (op == "disable") {
    for (std::size_t i = 0; i < args.size(); ++i) {
      VEGVISIR_RETURN_IF_ERROR(ExpectArgType(args, i, ValueType::kStr));
    }
    return Status::Ok();
  }
  return InvalidArgumentError("ewflag supports 'enable' and 'disable'");
}

Status EwFlag::Apply(const std::string& op, Args args, const OpContext& ctx) {
  VEGVISIR_RETURN_IF_ERROR(CheckOp(op, args));
  if (op == "enable") {
    enabled_tokens_.insert(ctx.tx_id);
  } else {
    // `auto`: the Value type name is shadowed by EwFlag::Value().
    for (const auto& v : args) disabled_tokens_.insert(v.AsStr());
  }
  return Status::Ok();
}

bool EwFlag::Value() const {
  for (const std::string& token : enabled_tokens_) {
    if (disabled_tokens_.count(token) == 0) return true;
  }
  return false;
}

std::vector<std::string> EwFlag::ObservedTokens() const {
  std::vector<std::string> out;
  for (const std::string& token : enabled_tokens_) {
    if (disabled_tokens_.count(token) == 0) out.push_back(token);
  }
  return out;
}

Bytes EwFlag::StateFingerprint() const {
  serial::Writer w;
  w.WriteString("ewflag");
  EncodeState(&w);
  return w.Take();
}

void EwFlag::EncodeState(serial::Writer* w) const {
  w->WriteVarint(enabled_tokens_.size());
  for (const std::string& t : enabled_tokens_) w->WriteString(t);
  w->WriteVarint(disabled_tokens_.size());
  for (const std::string& t : disabled_tokens_) w->WriteString(t);
}

Status EwFlag::DecodeState(serial::Reader* r) {
  const auto read_set = [&](std::set<std::string>* out) -> Status {
    std::uint64_t count;
    VEGVISIR_RETURN_IF_ERROR(r->ReadVarint(&count));
    VEGVISIR_RETURN_IF_ERROR(serial::CheckWireCount(
        count, serial::limits::kMaxCrdtElements, r->remaining(), 1,
        "token"));
    out->clear();
    for (std::uint64_t i = 0; i < count; ++i) {
      std::string t;
      VEGVISIR_RETURN_IF_ERROR(r->ReadString(&t));
      out->insert(std::move(t));
    }
    return Status::Ok();
  };
  VEGVISIR_RETURN_IF_ERROR(read_set(&enabled_tokens_));
  return read_set(&disabled_tokens_);
}

}  // namespace vegvisir::crdt
