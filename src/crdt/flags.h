// EW-Flag: an enable-wins boolean flag CRDT.
//
// The IoT actuator-state primitive (valve open, alarm armed, pump
// running). Structured like an observed-remove set over enable
// tokens: enable() mints a token (the op's tx id), disable(tokens...)
// cancels exactly the enables the writer had observed. A concurrent
// enable therefore survives a disable — enable wins — which is the
// safe default for alarms: turning an alarm off never silently
// cancels an activation you had not seen.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "crdt/crdt.h"

namespace vegvisir::crdt {

class EwFlag : public Crdt {
 public:
  explicit EwFlag(ValueType element_type) : Crdt(element_type) {}

  CrdtType type() const override { return CrdtType::kEwFlag; }
  std::vector<std::string> SupportedOps() const override {
    return {"enable", "disable"};
  }
  Status CheckOp(const std::string& op, Args args) const override;
  Status Apply(const std::string& op, Args args, const OpContext& ctx) override;
  Bytes StateFingerprint() const override;
  void EncodeState(serial::Writer* w) const override;
  Status DecodeState(serial::Reader* r) override;

  // True iff at least one enable has not been cancelled.
  bool Value() const;

  // The live enable tokens a disabler should cite.
  std::vector<std::string> ObservedTokens() const;

 private:
  std::set<std::string> enabled_tokens_;
  std::set<std::string> disabled_tokens_;
};

}  // namespace vegvisir::crdt
