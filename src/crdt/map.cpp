#include "crdt/map.h"

#include "serial/limits.h"

namespace vegvisir::crdt {

Status LwwMap::CheckOp(const std::string& op, Args args) const {
  if (op == "put") {
    VEGVISIR_RETURN_IF_ERROR(ExpectArgCount(args, 2));
    VEGVISIR_RETURN_IF_ERROR(ExpectArgType(args, 0, ValueType::kStr));
    return ExpectArgType(args, 1, element_type());
  }
  if (op == "remove") {
    VEGVISIR_RETURN_IF_ERROR(ExpectArgCount(args, 1));
    return ExpectArgType(args, 0, ValueType::kStr);
  }
  return InvalidArgumentError("lwwmap supports 'put' and 'remove'");
}

Status LwwMap::Apply(const std::string& op, Args args, const OpContext& ctx) {
  VEGVISIR_RETURN_IF_ERROR(CheckOp(op, args));
  const std::string& key = args[0].AsStr();
  Cell& cell = cells_[key];
  const bool wins = cell.tx_id.empty() || ctx.timestamp > cell.timestamp ||
                    (ctx.timestamp == cell.timestamp && ctx.tx_id > cell.tx_id);
  if (wins) {
    cell.timestamp = ctx.timestamp;
    cell.tx_id = ctx.tx_id;
    if (op == "put") {
      cell.value = args[1];
    } else {
      cell.value = std::nullopt;
    }
  }
  return Status::Ok();
}

std::optional<Value> LwwMap::Get(const std::string& key) const {
  const auto it = cells_.find(key);
  if (it == cells_.end()) return std::nullopt;
  return it->second.value;
}

std::vector<std::string> LwwMap::LiveKeys() const {
  std::vector<std::string> keys;
  for (const auto& [key, cell] : cells_) {
    if (cell.value.has_value()) keys.push_back(key);
  }
  return keys;
}

std::size_t LwwMap::Size() const {
  std::size_t n = 0;
  for (const auto& [key, cell] : cells_) {
    if (cell.value.has_value()) ++n;
  }
  return n;
}

Bytes LwwMap::StateFingerprint() const {
  serial::Writer w;
  w.WriteString("lwwmap");
  w.WriteVarint(cells_.size());
  for (const auto& [key, cell] : cells_) {
    w.WriteString(key);
    w.WriteBool(cell.value.has_value());
    if (cell.value.has_value()) cell.value->Encode(&w);
    w.WriteU64(cell.timestamp);
    w.WriteString(cell.tx_id);
  }
  return w.Take();
}

// ------------------------------------------------- state serialization

void LwwMap::EncodeState(serial::Writer* w) const {
  w->WriteVarint(cells_.size());
  for (const auto& [key, cell] : cells_) {
    w->WriteString(key);
    w->WriteBool(cell.value.has_value());
    if (cell.value.has_value()) cell.value->Encode(w);
    w->WriteU64(cell.timestamp);
    w->WriteString(cell.tx_id);
  }
}

Status LwwMap::DecodeState(serial::Reader* r) {
  std::uint64_t count;
  VEGVISIR_RETURN_IF_ERROR(r->ReadVarint(&count));
  VEGVISIR_RETURN_IF_ERROR(serial::CheckWireCount(
      count, serial::limits::kMaxCrdtElements, r->remaining(), 1, "cell"));
  cells_.clear();
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string key;
    VEGVISIR_RETURN_IF_ERROR(r->ReadString(&key));
    Cell cell;
    bool has_value;
    VEGVISIR_RETURN_IF_ERROR(r->ReadBool(&has_value));
    if (has_value) {
      Value v;
      VEGVISIR_RETURN_IF_ERROR(Value::Decode(r, &v));
      cell.value = std::move(v);
    }
    VEGVISIR_RETURN_IF_ERROR(r->ReadU64(&cell.timestamp));
    VEGVISIR_RETURN_IF_ERROR(r->ReadString(&cell.tx_id));
    cells_.emplace(std::move(key), std::move(cell));
  }
  return Status::Ok();
}

}  // namespace vegvisir::crdt
