// LWW-Map: a last-writer-wins map from string keys to values.
//
// Put and remove race per key; the greatest (timestamp, tx_id) wins,
// whether it is a put or a remove, so all operations commute.
// This is the shape of the geo-replicated Redis map the paper cites
// as a composed-CRDT example (§III).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "crdt/crdt.h"

namespace vegvisir::crdt {

class LwwMap : public Crdt {
 public:
  explicit LwwMap(ValueType value_type) : Crdt(value_type) {}

  CrdtType type() const override { return CrdtType::kLwwMap; }
  std::vector<std::string> SupportedOps() const override {
    return {"put", "remove"};
  }
  Status CheckOp(const std::string& op, Args args) const override;
  Status Apply(const std::string& op, Args args, const OpContext& ctx) override;
  Bytes StateFingerprint() const override;
  void EncodeState(serial::Writer* w) const override;
  Status DecodeState(serial::Reader* r) override;

  // The live value for a key, if the latest write was a put.
  std::optional<Value> Get(const std::string& key) const;
  std::vector<std::string> LiveKeys() const;
  std::size_t Size() const;

 private:
  struct Cell {
    std::optional<Value> value;  // nullopt == removed
    std::uint64_t timestamp = 0;
    std::string tx_id;
  };

  std::map<std::string, Cell> cells_;
};

}  // namespace vegvisir::crdt
