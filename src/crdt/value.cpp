#include "crdt/value.h"

namespace vegvisir::crdt {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kBool: return "bool";
    case ValueType::kInt: return "int";
    case ValueType::kStr: return "str";
    case ValueType::kBytes: return "bytes";
  }
  return "unknown";
}

ValueType Value::type() const {
  return static_cast<ValueType>(data_.index());
}

std::strong_ordering Value::operator<=>(const Value& other) const {
  if (auto c = data_.index() <=> other.data_.index(); c != 0) return c;
  switch (type()) {
    case ValueType::kBool:
      return AsBool() <=> other.AsBool();
    case ValueType::kInt:
      return AsInt() <=> other.AsInt();
    case ValueType::kStr:
      return AsStr().compare(other.AsStr()) <=> 0;
    case ValueType::kBytes: {
      const Bytes& a = AsBytes();
      const Bytes& b = other.AsBytes();
      if (auto c = std::lexicographical_compare_three_way(
              a.begin(), a.end(), b.begin(), b.end());
          c != 0) {
        return c;
      }
      return std::strong_ordering::equal;
    }
  }
  return std::strong_ordering::equal;
}

void Value::Encode(serial::Writer* w) const {
  w->WriteU8(static_cast<std::uint8_t>(type()));
  switch (type()) {
    case ValueType::kBool:
      w->WriteBool(AsBool());
      break;
    case ValueType::kInt:
      w->WriteI64(AsInt());
      break;
    case ValueType::kStr:
      w->WriteString(AsStr());
      break;
    case ValueType::kBytes:
      w->WriteBytes(AsBytes());
      break;
  }
}

Status Value::Decode(serial::Reader* r, Value* out) {
  std::uint8_t tag;
  VEGVISIR_RETURN_IF_ERROR(r->ReadU8(&tag));
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kBool: {
      bool b;
      VEGVISIR_RETURN_IF_ERROR(r->ReadBool(&b));
      *out = OfBool(b);
      return Status::Ok();
    }
    case ValueType::kInt: {
      std::int64_t i;
      VEGVISIR_RETURN_IF_ERROR(r->ReadI64(&i));
      *out = OfInt(i);
      return Status::Ok();
    }
    case ValueType::kStr: {
      std::string s;
      VEGVISIR_RETURN_IF_ERROR(r->ReadString(&s));
      *out = OfStr(std::move(s));
      return Status::Ok();
    }
    case ValueType::kBytes: {
      Bytes b;
      VEGVISIR_RETURN_IF_ERROR(r->ReadBytes(&b));
      *out = OfBytes(std::move(b));
      return Status::Ok();
    }
  }
  return InvalidArgumentError("unknown value type tag");
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kBool:
      return AsBool() ? "bool:true" : "bool:false";
    case ValueType::kInt:
      return "int:" + std::to_string(AsInt());
    case ValueType::kStr:
      return "str:\"" + AsStr() + "\"";
    case ValueType::kBytes:
      return "bytes:" + ToHex(AsBytes());
  }
  return "?";
}

}  // namespace vegvisir::crdt
