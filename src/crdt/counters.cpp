#include "crdt/counters.h"

#include "serial/limits.h"

namespace vegvisir::crdt {
namespace {

// Shared validation: zero args (implicit 1) or one non-negative Int.
Status CheckAmountArgs(Args args) {
  if (args.empty()) return Status::Ok();
  if (args.size() > 1) {
    return InvalidArgumentError("counter ops take at most one argument");
  }
  if (args[0].type() != ValueType::kInt) {
    return InvalidArgumentError("counter amount must be an int");
  }
  if (args[0].AsInt() < 0) {
    return InvalidArgumentError("counter amount must be non-negative");
  }
  return Status::Ok();
}

std::int64_t AmountOf(Args args) {
  return args.empty() ? 1 : args[0].AsInt();
}

}  // namespace

// --------------------------------------------------------------- GCounter

Status GCounter::CheckOp(const std::string& op, Args args) const {
  if (op != "inc") return InvalidArgumentError("gcounter supports only 'inc'");
  return CheckAmountArgs(args);
}

Status GCounter::Apply(const std::string& op, Args args,
                       const OpContext& ctx) {
  VEGVISIR_RETURN_IF_ERROR(CheckOp(op, args));
  const std::int64_t amount = AmountOf(args);
  total_ += amount;
  per_user_[ctx.user_id] += amount;
  return Status::Ok();
}

std::int64_t GCounter::ValueOf(const std::string& user_id) const {
  const auto it = per_user_.find(user_id);
  return it == per_user_.end() ? 0 : it->second;
}

Bytes GCounter::StateFingerprint() const {
  serial::Writer w;
  w.WriteString("gcounter");
  w.WriteVarint(per_user_.size());
  for (const auto& [user, amount] : per_user_) {
    w.WriteString(user);
    w.WriteI64(amount);
  }
  return w.Take();
}

// -------------------------------------------------------------- PnCounter

Status PnCounter::CheckOp(const std::string& op, Args args) const {
  if (op != "inc" && op != "dec") {
    return InvalidArgumentError("pncounter supports 'inc' and 'dec'");
  }
  return CheckAmountArgs(args);
}

Status PnCounter::Apply(const std::string& op, Args args, const OpContext&) {
  VEGVISIR_RETURN_IF_ERROR(CheckOp(op, args));
  const std::int64_t amount = AmountOf(args);
  if (op == "inc") {
    increments_ += amount;
  } else {
    decrements_ += amount;
  }
  return Status::Ok();
}

Bytes PnCounter::StateFingerprint() const {
  serial::Writer w;
  w.WriteString("pncounter");
  w.WriteI64(increments_);
  w.WriteI64(decrements_);
  return w.Take();
}

// ------------------------------------------------- state serialization

void GCounter::EncodeState(serial::Writer* w) const {
  w->WriteI64(total_);
  w->WriteVarint(per_user_.size());
  for (const auto& [user, amount] : per_user_) {
    w->WriteString(user);
    w->WriteI64(amount);
  }
}

Status GCounter::DecodeState(serial::Reader* r) {
  VEGVISIR_RETURN_IF_ERROR(r->ReadI64(&total_));
  std::uint64_t count;
  VEGVISIR_RETURN_IF_ERROR(r->ReadVarint(&count));
  VEGVISIR_RETURN_IF_ERROR(serial::CheckWireCount(
      count, serial::limits::kMaxCrdtElements, r->remaining(), 1,
      "per-user"));
  per_user_.clear();
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string user;
    std::int64_t amount;
    VEGVISIR_RETURN_IF_ERROR(r->ReadString(&user));
    VEGVISIR_RETURN_IF_ERROR(r->ReadI64(&amount));
    per_user_[std::move(user)] = amount;
  }
  return Status::Ok();
}

void PnCounter::EncodeState(serial::Writer* w) const {
  w->WriteI64(increments_);
  w->WriteI64(decrements_);
}

Status PnCounter::DecodeState(serial::Reader* r) {
  VEGVISIR_RETURN_IF_ERROR(r->ReadI64(&increments_));
  return r->ReadI64(&decrements_);
}

}  // namespace vegvisir::crdt
