// The dynamic value type carried by transaction arguments.
//
// The paper requires that "the argument to the operation must pass
// type checks (e.g. we cannot add an integer to a set of strings)";
// `Value` plus `ValueType` implement that typed-argument model.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <variant>

#include "serial/codec.h"
#include "util/bytes.h"
#include "util/status.h"

namespace vegvisir::crdt {

enum class ValueType : std::uint8_t {
  kBool = 0,
  kInt = 1,
  kStr = 2,
  kBytes = 3,
};

// Human-readable type name ("bool", "int", "str", "bytes").
const char* ValueTypeName(ValueType t);

// A typed argument value. Ordered (for canonical state fingerprints)
// and serializable (for transactions on the wire).
class Value {
 public:
  Value() : data_(std::int64_t{0}) {}

  static Value OfBool(bool b) { return Value(Payload(b)); }
  static Value OfInt(std::int64_t i) { return Value(Payload(i)); }
  static Value OfStr(std::string s) { return Value(Payload(std::move(s))); }
  static Value OfBytes(Bytes b) { return Value(Payload(std::move(b))); }

  ValueType type() const;

  bool AsBool() const { return std::get<bool>(data_); }
  std::int64_t AsInt() const { return std::get<std::int64_t>(data_); }
  const std::string& AsStr() const { return std::get<std::string>(data_); }
  const Bytes& AsBytes() const { return std::get<Bytes>(data_); }

  // Total order: first by type tag, then by payload. Used for
  // canonical iteration order in state fingerprints.
  std::strong_ordering operator<=>(const Value& other) const;
  bool operator==(const Value& other) const = default;

  void Encode(serial::Writer* w) const;
  static Status Decode(serial::Reader* r, Value* out);

  // Debug rendering, e.g. `int:42`, `str:"abc"`.
  std::string ToString() const;

 private:
  using Payload = std::variant<bool, std::int64_t, std::string, Bytes>;
  explicit Value(Payload p) : data_(std::move(p)) {}

  Payload data_;
};

}  // namespace vegvisir::crdt
