// Set CRDTs: G-Set (add-only), 2P-Set (two-phase), OR-Set
// (observed-remove).
//
// The paper uses a G-Set for the health-record request log H and a
// 2P-Set of certificates for the membership set U (§IV-D). The OR-Set
// is provided for applications that need re-addable elements.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "crdt/crdt.h"

namespace vegvisir::crdt {

// Add-only set. Ops: add(elem).
class GSet : public Crdt {
 public:
  explicit GSet(ValueType element_type) : Crdt(element_type) {}

  CrdtType type() const override { return CrdtType::kGSet; }
  std::vector<std::string> SupportedOps() const override { return {"add"}; }
  Status CheckOp(const std::string& op, Args args) const override;
  Status Apply(const std::string& op, Args args, const OpContext& ctx) override;
  Bytes StateFingerprint() const override;
  void EncodeState(serial::Writer* w) const override;
  Status DecodeState(serial::Reader* r) override;

  bool Contains(const Value& v) const { return elements_.count(v) > 0; }
  std::size_t Size() const { return elements_.size(); }
  const std::set<Value>& Elements() const { return elements_; }

 private:
  std::set<Value> elements_;
};

// Two-phase set: remove wins permanently (tombstones). Ops:
// add(elem), remove(elem). An element may be removed before its add
// is observed; removal is still permanent (commutativity demands it).
class TwoPSet : public Crdt {
 public:
  explicit TwoPSet(ValueType element_type) : Crdt(element_type) {}

  CrdtType type() const override { return CrdtType::kTwoPSet; }
  std::vector<std::string> SupportedOps() const override {
    return {"add", "remove"};
  }
  Status CheckOp(const std::string& op, Args args) const override;
  Status Apply(const std::string& op, Args args, const OpContext& ctx) override;
  Bytes StateFingerprint() const override;
  void EncodeState(serial::Writer* w) const override;
  Status DecodeState(serial::Reader* r) override;

  // Present iff added and never removed: A \ R.
  bool Contains(const Value& v) const {
    return added_.count(v) > 0 && removed_.count(v) == 0;
  }
  std::set<Value> LiveElements() const;
  const std::set<Value>& AddSet() const { return added_; }
  const std::set<Value>& RemoveSet() const { return removed_; }

 private:
  std::set<Value> added_;
  std::set<Value> removed_;
};

// Observed-remove set. Ops:
//   add(elem)                      -- tags the add with the tx id
//   remove(elem, tag...)           -- removes the *observed* add tags
// (extra args are the string tx ids of observed adds; the submitting
// node fills them in via ObservedTags()).
// An add whose tag was not covered by any remove survives, so
// re-adding after a remove works — unlike 2P-Set.
class OrSet : public Crdt {
 public:
  explicit OrSet(ValueType element_type) : Crdt(element_type) {}

  CrdtType type() const override { return CrdtType::kOrSet; }
  std::vector<std::string> SupportedOps() const override {
    return {"add", "remove"};
  }
  Status CheckOp(const std::string& op, Args args) const override;
  Status Apply(const std::string& op, Args args, const OpContext& ctx) override;
  Bytes StateFingerprint() const override;
  void EncodeState(serial::Writer* w) const override;
  Status DecodeState(serial::Reader* r) override;

  bool Contains(const Value& v) const;
  std::set<Value> LiveElements() const;

  // The currently-visible add tags for `v`; a submitter includes these
  // in its remove operation.
  std::vector<std::string> ObservedTags(const Value& v) const;

 private:
  // Per element: tags added, tags removed. Element live iff
  // added - removed is nonempty.
  std::map<Value, std::set<std::string>> added_tags_;
  std::map<Value, std::set<std::string>> removed_tags_;
};

}  // namespace vegvisir::crdt
