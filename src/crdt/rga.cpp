#include "crdt/rga.h"

#include <algorithm>

#include "serial/limits.h"

namespace vegvisir::crdt {

bool Rga::SiblingOrder::operator()(const std::string& a,
                                   const std::string& b) const {
  const Elem& ea = rga->elements_.at(a);
  const Elem& eb = rga->elements_.at(b);
  if (ea.timestamp != eb.timestamp) return ea.timestamp > eb.timestamp;
  return a > b;
}

Status Rga::CheckOp(const std::string& op, Args args) const {
  if (op == "insert") {
    VEGVISIR_RETURN_IF_ERROR(ExpectArgCount(args, 2));
    VEGVISIR_RETURN_IF_ERROR(ExpectArgType(args, 0, ValueType::kStr));
    return ExpectArgType(args, 1, element_type());
  }
  if (op == "remove") {
    VEGVISIR_RETURN_IF_ERROR(ExpectArgCount(args, 1));
    return ExpectArgType(args, 0, ValueType::kStr);
  }
  return InvalidArgumentError("rga supports 'insert' and 'remove'");
}

void Rga::Attach(const std::string& id) {
  const Elem& elem = elements_.at(id);
  children_[elem.parent].push_back(id);
  // Drain inserts that were waiting for this element.
  const auto it = pending_children_.find(id);
  if (it == pending_children_.end()) return;
  const std::vector<std::string> waiting = std::move(it->second);
  pending_children_.erase(it);
  for (const std::string& child : waiting) Attach(child);
}

Status Rga::Apply(const std::string& op, Args args, const OpContext& ctx) {
  VEGVISIR_RETURN_IF_ERROR(CheckOp(op, args));

  if (op == "insert") {
    const std::string& parent = args[0].AsStr();
    const std::string& id = ctx.tx_id;
    if (elements_.count(id) > 0) return Status::Ok();  // idempotent replay
    Elem elem;
    elem.value = args[1];
    elem.parent = parent;
    elem.timestamp = ctx.timestamp;
    elem.removed = pre_tombstones_.count(id) > 0;
    pre_tombstones_.erase(id);
    elements_.emplace(id, std::move(elem));
    if (parent.empty() || elements_.count(parent) > 0) {
      Attach(id);
    } else {
      pending_children_[parent].push_back(id);  // parent not here yet
    }
    return Status::Ok();
  }

  // remove
  const std::string& target = args[0].AsStr();
  const auto it = elements_.find(target);
  if (it != elements_.end()) {
    it->second.removed = true;
  } else {
    pre_tombstones_.insert(target);  // tombstone ahead of the insert
  }
  return Status::Ok();
}

void Rga::Walk(const std::string& parent,
               const std::function<void(const std::string&, const Elem&)>&
                   visit) const {
  const auto it = children_.find(parent);
  if (it == children_.end()) return;
  std::vector<std::string> ordered = it->second;
  std::sort(ordered.begin(), ordered.end(), SiblingOrder{this});
  for (const std::string& id : ordered) {
    const Elem& elem = elements_.at(id);
    visit(id, elem);
    Walk(id, visit);
  }
}

std::vector<Value> Rga::Values() const {
  std::vector<Value> out;
  Walk("", [&](const std::string&, const Elem& elem) {
    if (!elem.removed) out.push_back(elem.value);
  });
  return out;
}

std::vector<std::string> Rga::VisibleIds() const {
  std::vector<std::string> out;
  Walk("", [&](const std::string& id, const Elem& elem) {
    if (!elem.removed) out.push_back(id);
  });
  return out;
}

Bytes Rga::StateFingerprint() const {
  serial::Writer w;
  w.WriteString("rga");
  w.WriteVarint(elements_.size());
  for (const auto& [id, elem] : elements_) {
    w.WriteString(id);
    w.WriteString(elem.parent);
    w.WriteU64(elem.timestamp);
    w.WriteBool(elem.removed);
    elem.value.Encode(&w);
  }
  w.WriteVarint(pre_tombstones_.size());
  for (const std::string& t : pre_tombstones_) w.WriteString(t);
  return w.Take();
}

// ------------------------------------------------- state serialization

void Rga::EncodeState(serial::Writer* w) const {
  // Elements carry their parent links, so the children / pending
  // indexes are derivable and only elements + pre-tombstones are
  // persisted.
  w->WriteVarint(elements_.size());
  for (const auto& [id, elem] : elements_) {
    w->WriteString(id);
    w->WriteString(elem.parent);
    w->WriteU64(elem.timestamp);
    w->WriteBool(elem.removed);
    elem.value.Encode(w);
  }
  w->WriteVarint(pre_tombstones_.size());
  for (const std::string& t : pre_tombstones_) w->WriteString(t);
}

Status Rga::DecodeState(serial::Reader* r) {
  std::uint64_t count;
  VEGVISIR_RETURN_IF_ERROR(r->ReadVarint(&count));
  VEGVISIR_RETURN_IF_ERROR(serial::CheckWireCount(
      count, serial::limits::kMaxCrdtElements, r->remaining(), 1,
      "element"));
  elements_.clear();
  children_.clear();
  pending_children_.clear();
  pre_tombstones_.clear();
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string id;
    Elem elem;
    VEGVISIR_RETURN_IF_ERROR(r->ReadString(&id));
    VEGVISIR_RETURN_IF_ERROR(r->ReadString(&elem.parent));
    VEGVISIR_RETURN_IF_ERROR(r->ReadU64(&elem.timestamp));
    VEGVISIR_RETURN_IF_ERROR(r->ReadBool(&elem.removed));
    VEGVISIR_RETURN_IF_ERROR(Value::Decode(r, &elem.value));
    elements_.emplace(std::move(id), std::move(elem));
  }
  // Rebuild the attachment indexes.
  for (const auto& [id, elem] : elements_) {
    if (elem.parent.empty() || elements_.count(elem.parent) > 0) {
      children_[elem.parent].push_back(id);
    } else {
      pending_children_[elem.parent].push_back(id);
    }
  }
  std::uint64_t tomb_count;
  VEGVISIR_RETURN_IF_ERROR(r->ReadVarint(&tomb_count));
  VEGVISIR_RETURN_IF_ERROR(serial::CheckWireCount(
      tomb_count, serial::limits::kMaxCrdtElements, r->remaining(), 1,
      "tombstone"));
  for (std::uint64_t i = 0; i < tomb_count; ++i) {
    std::string t;
    VEGVISIR_RETURN_IF_ERROR(r->ReadString(&t));
    pre_tombstones_.insert(std::move(t));
  }
  return Status::Ok();
}

}  // namespace vegvisir::crdt
