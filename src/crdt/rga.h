// RGA (Replicated Growable Array): an ordered-sequence CRDT.
//
// The paper points at collaborative editing and JSON documents as
// CRDT applications (§III, refs [30][31]); those need a *sequence*
// type, which none of the basic sets/registers provide. This is an
// operation-based RGA:
//
//   insert(parent_id, value) — places a new element after `parent_id`
//     ("" = the virtual head). The new element's id is the op's tx id
//     (globally unique).
//   remove(elem_id)          — tombstones an element.
//
// Concurrent inserts after the same parent are ordered by
// (timestamp, id) descending — newer-first, the classic RGA rule —
// which is deterministic, so replicas converge under any delivery
// order. Inserts whose parent has not arrived yet are parked and
// attached when it does; removes of not-yet-seen elements tombstone
// by id in advance. Both make the type fully commutative.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "crdt/crdt.h"

namespace vegvisir::crdt {

class Rga : public Crdt {
 public:
  explicit Rga(ValueType element_type) : Crdt(element_type) {}

  CrdtType type() const override { return CrdtType::kRga; }
  std::vector<std::string> SupportedOps() const override {
    return {"insert", "remove"};
  }
  Status CheckOp(const std::string& op, Args args) const override;
  Status Apply(const std::string& op, Args args, const OpContext& ctx) override;
  Bytes StateFingerprint() const override;
  void EncodeState(serial::Writer* w) const override;
  Status DecodeState(serial::Reader* r) override;

  // The visible sequence, in document order.
  std::vector<Value> Values() const;
  // Ids of the visible elements, aligned with Values(); writers use
  // these as insert parents and remove targets.
  std::vector<std::string> VisibleIds() const;
  std::size_t Size() const { return Values().size(); }
  // Total elements including tombstones (state-growth metric).
  std::size_t ElementCount() const { return elements_.size(); }

 private:
  struct Elem {
    Value value;
    std::string parent;       // "" = head
    std::uint64_t timestamp = 0;
    bool removed = false;
  };

  // Sibling order: (timestamp, id) descending.
  struct SiblingOrder {
    const Rga* rga;
    bool operator()(const std::string& a, const std::string& b) const;
  };

  void Attach(const std::string& id);
  void Walk(const std::string& parent,
            const std::function<void(const std::string&, const Elem&)>& visit)
      const;

  std::map<std::string, Elem> elements_;
  // parent id -> attached children (ordered at traversal time).
  std::map<std::string, std::vector<std::string>> children_;
  // parent id -> inserts waiting for that parent to arrive.
  std::map<std::string, std::vector<std::string>> pending_children_;
  // removes that arrived before their target.
  std::set<std::string> pre_tombstones_;
};

}  // namespace vegvisir::crdt
