// Counter CRDTs: G-Counter (grow-only) and PN-Counter.
//
// Because the Vegvisir DAG delivers every transaction exactly once,
// op-based counters are simple sums; per-user subtotals are kept for
// introspection (matching the classic state-based formulation).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "crdt/crdt.h"

namespace vegvisir::crdt {

// Grow-only counter. Ops: inc(amount >= 0) where amount is an Int;
// inc() with no args increments by 1.
class GCounter : public Crdt {
 public:
  explicit GCounter(ValueType element_type) : Crdt(element_type) {}

  CrdtType type() const override { return CrdtType::kGCounter; }
  std::vector<std::string> SupportedOps() const override { return {"inc"}; }
  Status CheckOp(const std::string& op, Args args) const override;
  Status Apply(const std::string& op, Args args, const OpContext& ctx) override;
  Bytes StateFingerprint() const override;
  void EncodeState(serial::Writer* w) const override;
  Status DecodeState(serial::Reader* r) override;

  std::int64_t Value() const { return total_; }
  std::int64_t ValueOf(const std::string& user_id) const;

 private:
  std::int64_t total_ = 0;
  std::map<std::string, std::int64_t> per_user_;
};

// Positive-negative counter. Ops: inc(amount >= 0), dec(amount >= 0);
// both default to 1 with no args.
class PnCounter : public Crdt {
 public:
  explicit PnCounter(ValueType element_type) : Crdt(element_type) {}

  CrdtType type() const override { return CrdtType::kPnCounter; }
  std::vector<std::string> SupportedOps() const override {
    return {"inc", "dec"};
  }
  Status CheckOp(const std::string& op, Args args) const override;
  Status Apply(const std::string& op, Args args, const OpContext& ctx) override;
  Bytes StateFingerprint() const override;
  void EncodeState(serial::Writer* w) const override;
  Status DecodeState(serial::Reader* r) override;

  std::int64_t Value() const { return increments_ - decrements_; }
  std::int64_t Increments() const { return increments_; }
  std::int64_t Decrements() const { return decrements_; }

 private:
  std::int64_t increments_ = 0;
  std::int64_t decrements_ = 0;
};

}  // namespace vegvisir::crdt
