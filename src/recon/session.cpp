#include "recon/session.h"

#include <algorithm>
#include <deque>

#include "serial/limits.h"
#include "util/bloom.h"

namespace vegvisir::recon {

void SessionStats::Accumulate(const SessionStats& other) {
  rounds += other.rounds;
  bytes_sent += other.bytes_sent;
  bytes_received += other.bytes_received;
  blocks_received += other.blocks_received;
  blocks_inserted += other.blocks_inserted;
  blocks_pushed += other.blocks_pushed;
}

SessionMetrics SessionMetrics::Resolve(telemetry::Telemetry* sink,
                                       const char* side) {
  SessionMetrics m;
  if (sink == nullptr) return m;  // unbound handles: no-op increments
  telemetry::MetricsRegistry& reg = sink->metrics;
  // lint: metric-name recon.initiator.* recon.responder.*
  // (side is "initiator" or "responder"; every expansion is declared
  // in telemetry/metric_names.h)
  const std::string prefix = std::string("recon.") + side + ".";
  m.sessions_started = reg.GetCounter(prefix + "sessions_started");
  m.sessions_completed = reg.GetCounter(prefix + "sessions_completed");
  m.sessions_failed = reg.GetCounter(prefix + "sessions_failed");
  m.rounds = reg.GetCounter(prefix + "rounds");
  m.bytes_sent = reg.GetCounter(prefix + "bytes_sent");
  m.bytes_received = reg.GetCounter(prefix + "bytes_received");
  m.blocks_received = reg.GetCounter(prefix + "blocks_received");
  m.blocks_inserted = reg.GetCounter(prefix + "blocks_inserted");
  m.blocks_pushed = reg.GetCounter(prefix + "blocks_pushed");
  m.final_level = reg.GetHistogram(prefix + "final_level",
                                   telemetry::PowerOfTwoBounds(10));
  m.level_cap_hit = reg.GetCounter(prefix + "level_cap_hit");
  m.setdiff_probes = reg.GetCounter("setdiff.probes");
  m.setdiff_sketches_sent = reg.GetCounter("setdiff.sketches_sent");
  m.setdiff_sketch_bytes = reg.GetCounter("setdiff.sketch_bytes");
  m.setdiff_decode_success = reg.GetCounter("setdiff.decode_success");
  m.setdiff_decode_failure = reg.GetCounter("setdiff.decode_failure");
  m.setdiff_escalations = reg.GetCounter("setdiff.escalations");
  m.setdiff_fallbacks = reg.GetCounter("setdiff.fallbacks");
  m.reject_empty = reg.GetCounter(prefix + "reject.empty");
  m.reject_unknown_type = reg.GetCounter(prefix + "reject.unknown_type");
  m.reject_unexpected_type =
      reg.GetCounter(prefix + "reject.unexpected_type");
  m.reject_count_overflow =
      reg.GetCounter(prefix + "reject.count_overflow");
  m.reject_truncated = reg.GetCounter(prefix + "reject.truncated");
  m.reject_trailing = reg.GetCounter(prefix + "reject.trailing");
  m.reject_noncanonical = reg.GetCounter(prefix + "reject.noncanonical");
  m.reject_other = reg.GetCounter(prefix + "reject.other");
  return m;
}

void SessionMetrics::CountDecodeReject(const Status& status) {
  const std::string_view suffix = DecodeRejectName(status);
  if (suffix == "empty") {
    reject_empty.Inc();
  } else if (suffix == "unknown_type") {
    reject_unknown_type.Inc();
  } else if (suffix == "unexpected_type") {
    reject_unexpected_type.Inc();
  } else if (suffix == "count_overflow") {
    reject_count_overflow.Inc();
  } else if (suffix == "truncated") {
    reject_truncated.Inc();
  } else if (suffix == "trailing") {
    reject_trailing.Inc();
  } else if (suffix == "noncanonical") {
    reject_noncanonical.Inc();
  } else {
    reject_other.Inc();
  }
}

// --------------------------------------------------------- Initiator

InitiatorSession::InitiatorSession(ReconHost* host, ReconConfig config)
    : host_(host),
      config_(config),
      metrics_(SessionMetrics::Resolve(host->telemetry(), "initiator")),
      level_(std::max<std::uint32_t>(1, config.start_level)) {}

Bytes InitiatorSession::Send(Bytes message) {
  stats_.bytes_sent += message.size();
  metrics_.bytes_sent.Inc(message.size());
  return message;
}

bool InitiatorSession::HashFirstActive() const {
  switch (config_.mode) {
    case ReconConfig::Mode::kHashFirst:
      return true;
    case ReconConfig::Mode::kBloom:
      return bloom_round_done_;
    case ReconConfig::Mode::kSetDiff:
      // The fallback rounds after an abandoned negotiation, and the
      // whole session when this node is downgraded to version 1.
      return diff_phase_ == DiffPhase::kFellBack ||
             diff_phase_ == DiffPhase::kInactive;
    case ReconConfig::Mode::kBlockPush:
      return false;
  }
  return false;
}

Bytes InitiatorSession::MakeFrontierRequest() {
  FrontierRequest req;
  req.level = level_;
  // Bloom/setdiff fallback rounds use hash-first requests: escalation
  // is then paid in hashes, not repeated bodies.
  req.hashes_only = HashFirstActive();
  req.genesis = host_->dag().genesis_hash();
  req.frontier_digest = host_->dag().FrontierDigest();
  stats_.rounds += 1;
  metrics_.rounds.Inc();
  return Send(EncodeMessage(req));
}

Bytes InitiatorSession::MakeBloomRequest() {
  const chain::Dag& dag = host_->dag();
  BloomFilter filter = BloomFilter::ForExpectedItems(dag.Size());
  for (const chain::BlockHash& h : dag.TopologicalOrder()) {
    filter.Insert(ByteSpan(h.data(), h.size()));
  }
  FrontierRequest req;
  req.level = 1;
  req.hashes_only = false;
  req.genesis = dag.genesis_hash();
  req.bloom = filter.Serialize();
  req.frontier_digest = dag.FrontierDigest();
  stats_.rounds += 1;
  metrics_.rounds.Inc();
  return Send(EncodeMessage(req));
}

Bytes InitiatorSession::MakeDiffProbe() {
  DiffProbe probe;
  probe.version = config_.protocol_version;
  probe.genesis = host_->dag().genesis_hash();
  probe.frontier_digest = host_->dag().FrontierDigest();
  probe.requested_cells = diff_cells_requested_;
  for (const chain::BlockHash& h : host_->dag().TopologicalOrder()) {
    probe.digest.Insert(h);
  }
  diff_phase_ = DiffPhase::kAwaitSketch;
  stats_.rounds += 1;
  metrics_.rounds.Inc();
  metrics_.setdiff_probes.Inc();
  return Send(EncodeMessage(probe));
}

Bytes InitiatorSession::Start() {
  metrics_.sessions_started.Inc();
  if (config_.mode == ReconConfig::Mode::kBloom) return MakeBloomRequest();
  if (config_.mode == ReconConfig::Mode::kSetDiff &&
      config_.protocol_version >= 2) {
    return MakeDiffProbe();
  }
  // kSetDiff at version 1 never probes: it runs as hash-first
  // (diff_phase_ stays kInactive, which HashFirstActive() honours).
  return MakeFrontierRequest();
}

void InitiatorSession::MarkFailed() {
  state_ = SessionState::kFailed;
  metrics_.sessions_failed.Inc();
  metrics_.final_level.Observe(static_cast<double>(level_));
}

Status InitiatorSession::OnMessage(ByteSpan data, std::vector<Bytes>* out) {
  if (state_ != SessionState::kRunning) {
    return FailedPreconditionError("session not running");
  }
  stats_.bytes_received += data.size();
  metrics_.bytes_received.Inc(data.size());
  const auto type = PeekType(data);
  if (!type.ok()) {
    metrics_.CountDecodeReject(type.status());
    MarkFailed();
    return type.status();
  }
  Status s;
  switch (*type) {
    case MessageType::kFrontierResponse:
      s = HandleFrontierResponse(data, out);
      break;
    case MessageType::kBlockResponse:
      s = HandleBlockResponse(data, out);
      break;
    case MessageType::kDiffSketch:
      s = HandleDiffSketch(data, out);
      break;
    default:
      s = InvalidArgumentError("unexpected message for initiator");
      metrics_.CountDecodeReject(s);
      break;
  }
  if (!s.ok()) MarkFailed();
  return s;
}

Status InitiatorSession::StashBlocks(const std::vector<Bytes>& blocks) {
  std::vector<const chain::Block*> fresh;
  for (const Bytes& raw : blocks) {
    auto block = chain::Block::Deserialize(raw);
    if (!block.ok()) return block.status();
    stats_.blocks_received += 1;
    metrics_.blocks_received.Inc();
    const chain::BlockHash h = block->hash();
    if (host_->HasBlock(h)) continue;  // already stored or quarantined
    const auto [it, inserted] = stash_.emplace(h, *std::move(block));
    if (inserted) fresh.push_back(&it->second);
  }
  // Overlap the level's signature checks with the serial merge below
  // (and with the radio RTT for the next escalation level).
  if (!fresh.empty()) host_->PreverifyBlocks(fresh);
  return Status::Ok();
}

bool InitiatorSession::TryMerge() {
  // Fixpoint insertion: keep offering stash blocks whose parents are
  // known; every accepted block may unblock others.
  bool progress = true;
  while (progress && !stash_.empty()) {
    progress = false;
    for (auto it = stash_.begin(); it != stash_.end();) {
      const chain::Block& block = it->second;
      bool parents_known = true;
      for (const chain::BlockHash& p : block.header().parents) {
        if (!host_->dag().Contains(p)) {
          parents_known = false;
          break;
        }
      }
      if (!parents_known) {
        ++it;
        continue;
      }
      const chain::BlockVerdict verdict = host_->OfferBlock(block);
      if (verdict == chain::BlockVerdict::kValid) {
        stats_.blocks_inserted += 1;
        metrics_.blocks_inserted.Inc();
      }
      // kReject: deterministically invalid, drop. kRetryLater with
      // parents known means the host quarantined it (unknown creator
      // or future timestamp); the host owns the retry, not us.
      it = stash_.erase(it);
      progress = true;
    }
  }
  if (stash_.empty()) return true;

  // Blocks still missing parents: hand them to the host anyway — it
  // quarantines them, so the bytes this session already paid for
  // survive a lost message or a timeout. Without this, escalation
  // over deep gaps is all-or-nothing per session and lossy links can
  // starve it forever (each level must arrive in the SAME session).
  // The caller still escalates to fetch the missing ancestry; once it
  // lands, the quarantine drains everything at once.
  for (auto it = stash_.begin(); it != stash_.end();) {
    (void)host_->OfferBlock(it->second);
    it = stash_.erase(it);
  }
  return false;
}

bool InitiatorSession::CaughtUp() const {
  for (const chain::BlockHash& h : last_advertised_) {
    if (!host_->dag().Contains(h)) return false;
  }
  return true;
}

Status InitiatorSession::HandleFrontierResponse(ByteSpan data,
                                                std::vector<Bytes>* out) {
  if (config_.mode == ReconConfig::Mode::kSetDiff &&
      diff_phase_ != DiffPhase::kFellBack &&
      diff_phase_ != DiffPhase::kInactive) {
    // Mid-negotiation the responder only ever sends sketches and
    // block responses; an unsolicited frontier response is hostile.
    const Status s = InvalidArgumentError("unexpected message for initiator");
    metrics_.CountDecodeReject(s);
    return s;
  }
  FrontierResponse resp;
  if (Status s = DecodeMessage(data, &resp); !s.ok()) {
    metrics_.CountDecodeReject(s);
    return s;
  }
  if (resp.genesis != host_->dag().genesis_hash()) {
    return FailedPreconditionError("peer is on a different chain");
  }
  if (!peer_frontier_known_) {
    // The level-1 frontier is a subset of every level-n set, but only
    // the first response's hash list is exactly the peer's frontier.
    peer_frontier_ = resp.hashes;
    peer_frontier_known_ = true;
  }
  // Saturation: if escalating stopped growing the advertised set, the
  // responder has nothing deeper to give; a still-open gap is not
  // bridgeable this session (e.g. a block quarantined on clock skew).
  const bool saturated =
      level_ > 1 && resp.hashes.size() <= last_level_count_;
  last_level_count_ = resp.hashes.size();
  last_advertised_ = resp.hashes;

  if (config_.mode == ReconConfig::Mode::kBloom && !bloom_round_done_) {
    // Summary round: the responder sent everything our filter did not
    // claim to have. Usually that closes the gap in one round; Bloom
    // false positives may leave holes, in which case we fall back to
    // hash-first escalation.
    VEGVISIR_RETURN_IF_ERROR(StashBlocks(resp.blocks));
    if (TryMerge() && CaughtUp()) {
      FinishMaybePush(out);
      return Status::Ok();
    }
    bloom_round_done_ = true;
    return EscalateOrFail(out);
  }

  if (HashFirstActive()) {
    // Request only the bodies we miss.
    BlockRequest req;
    for (const chain::BlockHash& h : resp.hashes) {
      if (!host_->HasBlock(h) && stash_.count(h) == 0) {
        req.hashes.push_back(h);
      }
    }
    if (req.hashes.empty()) {
      // Nothing new at this level; either we are already caught up or
      // bodies are parked awaiting deeper history.
      if (TryMerge() && CaughtUp()) {
        FinishMaybePush(out);
        return Status::Ok();
      }
      if (saturated) {
        return FailedPreconditionError(
            "peer's history exhausted but gap still open");
      }
      return EscalateOrFail(out);
    }
    out->push_back(Send(EncodeMessage(req)));
    return Status::Ok();
  }

  // Block-push mode: bodies arrive with the response.
  VEGVISIR_RETURN_IF_ERROR(StashBlocks(resp.blocks));
  if (TryMerge() && CaughtUp()) {
    FinishMaybePush(out);
    return Status::Ok();
  }
  if (saturated) {
    return FailedPreconditionError(
        "peer's history exhausted but gap still open");
  }
  return EscalateOrFail(out);
}

Status InitiatorSession::HandleDiffSketch(ByteSpan data,
                                          std::vector<Bytes>* out) {
  if (config_.mode != ReconConfig::Mode::kSetDiff ||
      diff_phase_ != DiffPhase::kAwaitSketch) {
    const Status s = InvalidArgumentError("unexpected message for initiator");
    metrics_.CountDecodeReject(s);
    return s;
  }
  DiffSketch sketch;
  if (Status s = DecodeMessage(data, &sketch); !s.ok()) {
    metrics_.CountDecodeReject(s);
    return s;
  }
  if (sketch.genesis != host_->dag().genesis_hash()) {
    return FailedPreconditionError("peer is on a different chain");
  }
  if (!peer_frontier_known_) {
    peer_frontier_ = sketch.frontier;
    peer_frontier_known_ = true;
  }
  last_advertised_ = sketch.frontier;

  // Mirror the responder's table over our own set and subtract:
  // +1 cells are peer-only keys (fetch), -1 cells are ours-only
  // (report so the responder can expect the push-back).
  setdiff::Iblt local(sketch.sketch.cell_count(), sketch.seed);
  for (const chain::BlockHash& h : host_->dag().TopologicalOrder()) {
    local.Insert(h);
  }
  setdiff::Iblt diff = sketch.sketch;
  VEGVISIR_RETURN_IF_ERROR(diff.Subtract(local));

  std::vector<chain::BlockHash> peer_only;
  std::vector<chain::BlockHash> local_only;
  const bool peeled = diff.Peel(&peer_only, &local_only);
  // A peel claiming more peer-only keys than the peer's whole set is
  // a checksum-collision artifact; treat it as a failed decode.
  if (peeled && peer_only.size() <= sketch.set_size) {
    metrics_.setdiff_decode_success.Inc();
    DiffResult result;
    result.decoded = true;
    result.peer_missing = std::move(local_only);
    if (result.peer_missing.size() > serial::limits::kMaxDiffHashes) {
      // The report is informational; the push-back itself carries the
      // bodies. Keep the message decodable at the peer's wire cap.
      result.peer_missing.resize(serial::limits::kMaxDiffHashes);
    }
    out->push_back(Send(EncodeMessage(result)));

    BlockRequest req;
    for (const chain::BlockHash& h : peer_only) {
      if (!host_->HasBlock(h) && stash_.count(h) == 0) {
        req.hashes.push_back(h);
      }
    }
    if (req.hashes.empty()) {
      // Empty delta (or every body already quarantined locally).
      if (TryMerge() && CaughtUp()) {
        FinishMaybePush(out);
        return Status::Ok();
      }
      return FallBackToLevels(out, /*notify=*/false);
    }
    diff_phase_ = DiffPhase::kAwaitBlocks;
    out->push_back(Send(EncodeMessage(req)));
    return Status::Ok();
  }

  metrics_.setdiff_decode_failure.Inc();
  if (!diff_escalated_) {
    // One escalation: re-probe with 4x the cells (capped), which also
    // reseeds the hash family so an unlucky arrangement cannot recur.
    diff_escalated_ = true;
    metrics_.setdiff_escalations.Inc();
    diff_cells_requested_ = static_cast<std::uint32_t>(setdiff::EscalatedCells(
        sketch.sketch.cell_count(), config_.max_iblt_cells));
    out->push_back(MakeDiffProbe());
    return Status::Ok();
  }
  return FallBackToLevels(out, /*notify=*/true);
}

Status InitiatorSession::FallBackToLevels(std::vector<Bytes>* out,
                                          bool notify) {
  diff_phase_ = DiffPhase::kFellBack;
  metrics_.setdiff_fallbacks.Inc();
  if (notify) {
    DiffResult result;
    result.decoded = false;
    out->push_back(Send(EncodeMessage(result)));
  }
  out->push_back(MakeFrontierRequest());
  return Status::Ok();
}

Status InitiatorSession::HandleBlockResponse(ByteSpan data,
                                             std::vector<Bytes>* out) {
  if (config_.mode == ReconConfig::Mode::kSetDiff &&
      diff_phase_ == DiffPhase::kAwaitBlocks) {
    BlockResponse resp;
    if (Status s = DecodeMessage(data, &resp); !s.ok()) {
      metrics_.CountDecodeReject(s);
      return s;
    }
    VEGVISIR_RETURN_IF_ERROR(StashBlocks(resp.blocks));
    if (TryMerge() && CaughtUp()) {
      FinishMaybePush(out);
      return Status::Ok();
    }
    // The exact difference arrived but some of it is still parked
    // (e.g. quarantined ancestry): close the rest by level walking.
    return FallBackToLevels(out, /*notify=*/false);
  }
  if (!HashFirstActive()) {
    return InvalidArgumentError("unexpected block response");
  }
  BlockResponse resp;
  if (Status s = DecodeMessage(data, &resp); !s.ok()) {
    metrics_.CountDecodeReject(s);
    return s;
  }
  VEGVISIR_RETURN_IF_ERROR(StashBlocks(resp.blocks));
  if (TryMerge() && CaughtUp()) {
    FinishMaybePush(out);
    return Status::Ok();
  }
  return EscalateOrFail(out);
}

Status InitiatorSession::EscalateOrFail(std::vector<Bytes>* out) {
  if (level_ >= config_.max_level) {
    // Not an attack, but never silent either: the gap stays open this
    // session and the gossip engine resumes from this level later.
    metrics_.level_cap_hit.Inc();
    return ResourceExhaustedError("frontier level cap reached");
  }
  if (config_.escalation == ReconConfig::Escalation::kExponential) {
    level_ = std::min(level_ * 2, config_.max_level);
  } else {
    ++level_;
  }
  out->push_back(MakeFrontierRequest());
  return Status::Ok();
}

void InitiatorSession::FinishMaybePush(std::vector<Bytes>* out) {
  state_ = SessionState::kDone;
  metrics_.sessions_completed.Inc();
  metrics_.final_level.Observe(static_cast<double>(level_));
  if (!config_.push_back || !peer_frontier_known_) return;

  // The peer's DAG is exactly its frontier plus that frontier's
  // ancestors; after the merge our DAG is a superset, so anything of
  // ours outside that closure is provably missing on the peer.
  std::set<chain::BlockHash> peer_known;
  const chain::Dag& dag = host_->dag();
  for (const chain::BlockHash& h : peer_frontier_) {
    if (!dag.Contains(h)) continue;
    peer_known.insert(h);
    for (const chain::BlockHash& a : dag.Ancestors(h)) peer_known.insert(a);
  }

  PushBlocks push;
  for (const chain::BlockHash& h : dag.TopologicalOrder()) {
    if (peer_known.count(h) > 0) continue;
    const chain::Block* block = dag.Find(h);
    if (block == nullptr) continue;  // evicted body; peer must ask a superpeer
    push.blocks.push_back(block->Serialize());
  }
  if (push.blocks.empty()) return;
  stats_.blocks_pushed += push.blocks.size();
  metrics_.blocks_pushed.Inc(push.blocks.size());
  out->push_back(Send(EncodeMessage(push)));
}

// --------------------------------------------------------- Responder

ResponderSession::ResponderSession(ReconHost* host, ReconConfig config)
    : host_(host),
      config_(config),
      metrics_(SessionMetrics::Resolve(host->telemetry(), "responder")) {}

Bytes ResponderSession::Send(Bytes message) {
  stats_.bytes_sent += message.size();
  metrics_.bytes_sent.Inc(message.size());
  return message;
}

Status ResponderSession::OnMessage(ByteSpan data, std::vector<Bytes>* out) {
  stats_.bytes_received += data.size();
  metrics_.bytes_received.Inc(data.size());
  const auto type = PeekType(data);
  if (!type.ok()) {
    metrics_.CountDecodeReject(type.status());
    return type.status();
  }
  switch (*type) {
    case MessageType::kFrontierRequest:
      return HandleFrontierRequest(data, out);
    case MessageType::kBlockRequest:
      return HandleBlockRequest(data, out);
    case MessageType::kPushBlocks:
      return HandlePushBlocks(data);
    case MessageType::kDiffProbe:
      return HandleDiffProbe(data, out);
    case MessageType::kDiffResult:
      return HandleDiffResult(data);
    default: {
      const Status s = InvalidArgumentError("unexpected message for responder");
      metrics_.CountDecodeReject(s);
      return s;
    }
  }
}

Status ResponderSession::HandleDiffProbe(ByteSpan data,
                                         std::vector<Bytes>* out) {
  if (config_.protocol_version < 2) {
    // A version-1 node does not speak setdiff; answer exactly like a
    // pre-setdiff build whose PeekType never heard of tag 6, so a v2
    // initiator learns to downgrade this peer.
    const Status s = InvalidArgumentError("unknown message type");
    metrics_.CountDecodeReject(s);
    return s;
  }
  DiffProbe probe;
  if (Status s = DecodeMessage(data, &probe); !s.ok()) {
    metrics_.CountDecodeReject(s);
    return s;
  }
  if (probe.genesis != host_->dag().genesis_hash()) {
    return FailedPreconditionError("initiator is on a different chain");
  }
  stats_.rounds += 1;
  metrics_.rounds.Inc();

  const chain::Dag& dag = host_->dag();
  const std::vector<chain::BlockHash> all = dag.TopologicalOrder();

  // Size the sketch from the digest delta estimate unless the probe
  // asks for a specific (escalated) cell count.
  std::uint64_t estimate = all.size();  // defensive: shape-mismatch case
  setdiff::RangeDigest mine;
  for (const chain::BlockHash& h : all) mine.Insert(h);
  if (auto est = setdiff::RangeDigest::EstimateDelta(probe.digest, mine);
      est.ok()) {
    estimate = *est;
  }
  const std::size_t cap = static_cast<std::size_t>(
      std::min<std::uint64_t>(config_.max_iblt_cells,
                              serial::limits::kMaxIbltCells));
  const std::size_t cells =
      probe.requested_cells > 0
          ? std::min(static_cast<std::size_t>(probe.requested_cells), cap)
          : setdiff::CellsForDelta(estimate, cap);

  DiffSketch sketch;
  sketch.genesis = dag.genesis_hash();
  sketch.seed = setdiff::SeedForCells(cells);
  sketch.set_size = all.size();
  sketch.estimated_delta = estimate;
  sketch.frontier = dag.Frontier();
  sketch.sketch = setdiff::Iblt(cells, sketch.seed);
  for (const chain::BlockHash& h : all) sketch.sketch.Insert(h);

  Bytes encoded = EncodeMessage(sketch);
  metrics_.setdiff_sketches_sent.Inc();
  metrics_.setdiff_sketch_bytes.Inc(encoded.size());
  out->push_back(Send(std::move(encoded)));
  return Status::Ok();
}

Status ResponderSession::HandleDiffResult(ByteSpan data) {
  if (config_.protocol_version < 2) {
    const Status s = InvalidArgumentError("unknown message type");
    metrics_.CountDecodeReject(s);
    return s;
  }
  // The verdict is informational: a decoded=true result precedes the
  // block requests / push-back the normal handlers already cover, and
  // decoded=false just means frontier requests are coming. Validate
  // the wire form and move on.
  DiffResult result;
  if (Status s = DecodeMessage(data, &result); !s.ok()) {
    metrics_.CountDecodeReject(s);
    return s;
  }
  return Status::Ok();
}

Status ResponderSession::HandleFrontierRequest(ByteSpan data,
                                               std::vector<Bytes>* out) {
  FrontierRequest req;
  if (Status s = DecodeMessage(data, &req); !s.ok()) {
    metrics_.CountDecodeReject(s);
    return s;
  }
  if (req.genesis != host_->dag().genesis_hash()) {
    return FailedPreconditionError("initiator is on a different chain");
  }
  if (req.level < 1) return InvalidArgumentError("frontier level must be >= 1");
  stats_.rounds += 1;
  metrics_.rounds.Inc();

  FrontierResponse resp;
  resp.level = req.level;
  resp.genesis = host_->dag().genesis_hash();

  // Identical frontiers == identical DAGs (paper §IV-G): reply with
  // the frontier hashes only, no bodies — the initiator will see all
  // hashes present and finish immediately.
  if (req.frontier_digest == host_->dag().FrontierDigest()) {
    resp.hashes = host_->dag().Frontier();
    out->push_back(Send(EncodeMessage(resp)));
    return Status::Ok();
  }

  if (!req.bloom.empty()) {
    // Summary reconciliation: send every stored block the initiator's
    // filter does not (probably) contain, parents before children so
    // the receiver can insert as it reads. The hash list carries our
    // frontier for the initiator's completion check.
    auto filter = BloomFilter::Deserialize(req.bloom);
    if (!filter.ok()) return filter.status();
    resp.hashes = host_->dag().Frontier();
    for (const chain::BlockHash& h : host_->dag().TopologicalOrder()) {
      if (h == host_->dag().genesis_hash()) continue;
      if (filter->MayContain(ByteSpan(h.data(), h.size()))) continue;
      const chain::Block* block = host_->dag().Find(h);
      if (block != nullptr) resp.blocks.push_back(block->Serialize());
    }
    stats_.blocks_pushed += resp.blocks.size();
    metrics_.blocks_pushed.Inc(resp.blocks.size());
    out->push_back(Send(EncodeMessage(resp)));
    return Status::Ok();
  }

  // A corrupted (or hostile) level must not wrap negative through the
  // int cast below, nor walk arbitrarily deep per round: clamp to the
  // escalation ceiling the initiator honours AND the protocol-wide
  // cap (the configured ceiling can never legitimately exceed it).
  const std::uint32_t level = std::min(
      {req.level, config_.max_level,
       static_cast<std::uint32_t>(serial::limits::kMaxFrontierLevel)});
  resp.hashes = host_->dag().FrontierLevel(static_cast<int>(level));
  if (!req.hashes_only) {
    for (const chain::BlockHash& h : resp.hashes) {
      const chain::Block* block = host_->dag().Find(h);
      // Evicted bodies cannot be served; the initiator can fetch them
      // from a superpeer / the support blockchain.
      if (block != nullptr) resp.blocks.push_back(block->Serialize());
    }
    stats_.blocks_pushed += resp.blocks.size();
    metrics_.blocks_pushed.Inc(resp.blocks.size());
  }
  out->push_back(Send(EncodeMessage(resp)));
  return Status::Ok();
}

Status ResponderSession::HandleBlockRequest(ByteSpan data,
                                            std::vector<Bytes>* out) {
  BlockRequest req;
  if (Status s = DecodeMessage(data, &req); !s.ok()) {
    metrics_.CountDecodeReject(s);
    return s;
  }
  BlockResponse resp;
  for (const chain::BlockHash& h : req.hashes) {
    const chain::Block* block = host_->dag().Find(h);
    if (block != nullptr) resp.blocks.push_back(block->Serialize());
  }
  stats_.blocks_pushed += resp.blocks.size();
  metrics_.blocks_pushed.Inc(resp.blocks.size());
  out->push_back(Send(EncodeMessage(resp)));
  return Status::Ok();
}

Status ResponderSession::HandlePushBlocks(ByteSpan data) {
  PushBlocks push;
  if (Status s = DecodeMessage(data, &push); !s.ok()) {
    metrics_.CountDecodeReject(s);
    return s;
  }
  // Same fixpoint merge as the initiator side, inline.
  std::deque<chain::Block> pending;
  for (const Bytes& raw : push.blocks) {
    auto block = chain::Block::Deserialize(raw);
    if (!block.ok()) return block.status();
    stats_.blocks_received += 1;
    metrics_.blocks_received.Inc();
    if (!host_->dag().Contains(block->hash())) {
      pending.push_back(*std::move(block));
    }
  }
  {
    // Same pipelining as the initiator stash: signature checks fan
    // out while the serial fixpoint merge runs.
    std::vector<const chain::Block*> fresh;
    fresh.reserve(pending.size());
    for (const chain::Block& block : pending) fresh.push_back(&block);
    if (!fresh.empty()) host_->PreverifyBlocks(fresh);
  }
  bool progress = true;
  while (progress && !pending.empty()) {
    progress = false;
    for (std::size_t i = 0; i < pending.size();) {
      bool parents_known = true;
      for (const chain::BlockHash& p : pending[i].header().parents) {
        if (!host_->dag().Contains(p)) {
          parents_known = false;
          break;
        }
      }
      if (!parents_known) {
        ++i;
        continue;
      }
      if (host_->OfferBlock(pending[i]) == chain::BlockVerdict::kValid) {
        stats_.blocks_inserted += 1;
        metrics_.blocks_inserted.Inc();
      }
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
      progress = true;
    }
  }
  // Leftovers with missing parents go to the host's quarantine so the
  // transfer is not wasted (see InitiatorSession::TryMerge).
  for (const chain::Block& block : pending) {
    (void)host_->OfferBlock(block);
  }
  return Status::Ok();
}

// ------------------------------------------------------ local runner

SessionState RunLocalSession(ReconHost* initiator_host,
                             ReconHost* responder_host,
                             const ReconConfig& config,
                             SessionStats* initiator_stats,
                             SessionStats* responder_stats) {
  InitiatorSession initiator(initiator_host, config);
  ResponderSession responder(responder_host, config);

  std::deque<Bytes> to_responder;
  std::deque<Bytes> to_initiator;
  to_responder.push_back(initiator.Start());

  // Alternate until the initiator settles (bounded for safety).
  for (int step = 0; step < 1'000'000; ++step) {
    if (!to_responder.empty()) {
      const Bytes msg = std::move(to_responder.front());
      to_responder.pop_front();
      std::vector<Bytes> replies;
      if (!responder.OnMessage(msg, &replies).ok()) break;
      for (Bytes& r : replies) to_initiator.push_back(std::move(r));
      continue;
    }
    if (!to_initiator.empty()) {
      const Bytes msg = std::move(to_initiator.front());
      to_initiator.pop_front();
      std::vector<Bytes> replies;
      if (!initiator.OnMessage(msg, &replies).ok()) break;
      for (Bytes& r : replies) to_responder.push_back(std::move(r));
      continue;
    }
    break;  // both queues drained
  }

  if (initiator_stats != nullptr) *initiator_stats = initiator.stats();
  if (responder_stats != nullptr) *responder_stats = responder.stats();
  return initiator.state();
}

}  // namespace vegvisir::recon
