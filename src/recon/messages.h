// Wire messages for opportunistic DAG reconciliation (paper §IV-G).
//
// The exchange is initiator-driven:
//   FrontierRequest(level n)  ->
//                             <-  FrontierResponse(level n, blocks)
// escalating n until the initiator can bridge the gap (Algorithm 1).
//
// In hash-first mode (the paper's "more efficient reconciliation
// algorithms" future work, evaluated as ablation E10) the response
// carries hashes only and the initiator fetches just the bodies it is
// missing with BlockRequest/BlockResponse.
//
// PushBlocks is the optional anti-entropy extension: after catching
// up, the initiator pushes the blocks the responder provably lacks.
//
// DiffProbe/DiffSketch/DiffResult are reconciliation v2 (DESIGN.md
// §16): the initiator probes with a range digest of its whole hash
// set, the responder answers with a delta-sized IBLT sketch, and the
// initiator reports the peel outcome — success routes straight into
// BlockRequest/PushBlocks, failure falls back to level escalation.
// Protocol-version-1 peers reject tag 6+ as "unknown message type",
// which is exactly how a pre-setdiff build behaves, so the initiator
// can detect legacy peers and downgrade.
#pragma once

#include <cstdint>
#include <vector>

#include "chain/types.h"
#include "serial/codec.h"
#include "setdiff/digest.h"
#include "setdiff/iblt.h"
#include "util/bytes.h"
#include "util/status.h"

namespace vegvisir::recon {

enum class MessageType : std::uint8_t {
  kFrontierRequest = 1,
  kFrontierResponse = 2,
  kBlockRequest = 3,
  kBlockResponse = 4,
  kPushBlocks = 5,
  kDiffProbe = 6,
  kDiffSketch = 7,
  kDiffResult = 8,
};

struct FrontierRequest {
  std::uint32_t level = 1;
  bool hashes_only = false;
  // Sanity check: both sides must be on the same chain.
  chain::BlockHash genesis{};
  // Bloom mode (summary reconciliation): a serialized BloomFilter over
  // the initiator's block hashes; the responder sends the blocks that
  // are probably missing, usually completing in one round. Empty when
  // unused.
  Bytes bloom;
  // SHA-256 over the initiator's sorted frontier. If it matches the
  // responder's, the replicas are identical and the response carries
  // no bodies — the paper's "identical frontier sets" early exit, for
  // 32 bytes per idle gossip tick.
  chain::BlockHash frontier_digest{};
};

struct FrontierResponse {
  std::uint32_t level = 1;
  chain::BlockHash genesis{};
  // Hashes of the level-n frontier set (always present).
  std::vector<chain::BlockHash> hashes;
  // Serialized blocks; empty when the request was hashes_only.
  std::vector<Bytes> blocks;
};

struct BlockRequest {
  std::vector<chain::BlockHash> hashes;
};

struct BlockResponse {
  std::vector<Bytes> blocks;
};

struct PushBlocks {
  std::vector<Bytes> blocks;
};

// Opens a setdiff negotiation: the initiator's whole-set range digest
// plus enough context for the responder to size an IBLT reply.
struct DiffProbe {
  // Highest setdiff protocol revision the initiator speaks; a
  // responder configured below it rejects the probe the way a
  // pre-setdiff build would ("unknown message type").
  std::uint32_t version = 1;
  chain::BlockHash genesis{};
  // SHA-256 over the initiator's sorted frontier — same identical-
  // replica early exit as FrontierRequest.
  chain::BlockHash frontier_digest{};
  // 0: responder sizes the sketch from the digest delta estimate.
  // >0: escalation retry after a failed peel; the responder honours
  // the request (clamped to its configured ceiling).
  std::uint32_t requested_cells = 0;
  setdiff::RangeDigest digest;
};

// The responder's delta-sized IBLT over its whole hash set, plus its
// frontier so a successful peel can feed push-back directly.
struct DiffSketch {
  chain::BlockHash genesis{};
  // Hash-family seed the responder built with (derived from the cell
  // count; carried explicitly so decode never guesses).
  std::uint64_t seed = 0;
  // Responder's total set size — lets the initiator sanity-check a
  // peel that claims more one-sided difference than the peer holds.
  std::uint64_t set_size = 0;
  // The responder's own delta estimate, for telemetry and tests.
  std::uint64_t estimated_delta = 0;
  std::vector<chain::BlockHash> frontier;
  setdiff::Iblt sketch{1, 0};
};

// The initiator's verdict on a sketch. On success it also names the
// blocks the responder is missing (the peel's plus side) so the
// responder can account for the coming push-back; on failure the
// responder just learns the attempt is over (the initiator either
// re-probes with more cells or falls back to level escalation).
struct DiffResult {
  bool decoded = false;
  std::vector<chain::BlockHash> peer_missing;
};

// Envelope encoding: a type byte followed by the payload.
Bytes EncodeMessage(const FrontierRequest& m);
Bytes EncodeMessage(const FrontierResponse& m);
Bytes EncodeMessage(const BlockRequest& m);
Bytes EncodeMessage(const BlockResponse& m);
Bytes EncodeMessage(const PushBlocks& m);
Bytes EncodeMessage(const DiffProbe& m);
Bytes EncodeMessage(const DiffSketch& m);
Bytes EncodeMessage(const DiffResult& m);

// Peeks the envelope type. Fails on empty/unknown input.
StatusOr<MessageType> PeekType(ByteSpan data);

Status DecodeMessage(ByteSpan data, FrontierRequest* out);
Status DecodeMessage(ByteSpan data, FrontierResponse* out);
Status DecodeMessage(ByteSpan data, BlockRequest* out);
Status DecodeMessage(ByteSpan data, BlockResponse* out);
Status DecodeMessage(ByteSpan data, PushBlocks* out);
Status DecodeMessage(ByteSpan data, DiffProbe* out);
Status DecodeMessage(ByteSpan data, DiffSketch* out);
Status DecodeMessage(ByteSpan data, DiffResult* out);

// Stable counter suffix classifying a failed decode. Every
// early-return verdict a DecodeMessage/PeekType call can produce maps
// to one of: "empty", "unknown_type", "unexpected_type",
// "count_overflow", "truncated", "trailing", "noncanonical"; anything
// unrecognized maps to "other". Sessions bump the matching
// recon.<side>.reject.<suffix> counter (all declared in
// telemetry/metric_names.h) so malformed-input rejections are
// observable per cause, not just as a failed session.
const char* DecodeRejectName(const Status& status);

}  // namespace vegvisir::recon
