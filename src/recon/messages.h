// Wire messages for opportunistic DAG reconciliation (paper §IV-G).
//
// The exchange is initiator-driven:
//   FrontierRequest(level n)  ->
//                             <-  FrontierResponse(level n, blocks)
// escalating n until the initiator can bridge the gap (Algorithm 1).
//
// In hash-first mode (the paper's "more efficient reconciliation
// algorithms" future work, evaluated as ablation E10) the response
// carries hashes only and the initiator fetches just the bodies it is
// missing with BlockRequest/BlockResponse.
//
// PushBlocks is the optional anti-entropy extension: after catching
// up, the initiator pushes the blocks the responder provably lacks.
#pragma once

#include <cstdint>
#include <vector>

#include "chain/types.h"
#include "serial/codec.h"
#include "util/bytes.h"
#include "util/status.h"

namespace vegvisir::recon {

enum class MessageType : std::uint8_t {
  kFrontierRequest = 1,
  kFrontierResponse = 2,
  kBlockRequest = 3,
  kBlockResponse = 4,
  kPushBlocks = 5,
};

struct FrontierRequest {
  std::uint32_t level = 1;
  bool hashes_only = false;
  // Sanity check: both sides must be on the same chain.
  chain::BlockHash genesis{};
  // Bloom mode (summary reconciliation): a serialized BloomFilter over
  // the initiator's block hashes; the responder sends the blocks that
  // are probably missing, usually completing in one round. Empty when
  // unused.
  Bytes bloom;
  // SHA-256 over the initiator's sorted frontier. If it matches the
  // responder's, the replicas are identical and the response carries
  // no bodies — the paper's "identical frontier sets" early exit, for
  // 32 bytes per idle gossip tick.
  chain::BlockHash frontier_digest{};
};

struct FrontierResponse {
  std::uint32_t level = 1;
  chain::BlockHash genesis{};
  // Hashes of the level-n frontier set (always present).
  std::vector<chain::BlockHash> hashes;
  // Serialized blocks; empty when the request was hashes_only.
  std::vector<Bytes> blocks;
};

struct BlockRequest {
  std::vector<chain::BlockHash> hashes;
};

struct BlockResponse {
  std::vector<Bytes> blocks;
};

struct PushBlocks {
  std::vector<Bytes> blocks;
};

// Envelope encoding: a type byte followed by the payload.
Bytes EncodeMessage(const FrontierRequest& m);
Bytes EncodeMessage(const FrontierResponse& m);
Bytes EncodeMessage(const BlockRequest& m);
Bytes EncodeMessage(const BlockResponse& m);
Bytes EncodeMessage(const PushBlocks& m);

// Peeks the envelope type. Fails on empty/unknown input.
StatusOr<MessageType> PeekType(ByteSpan data);

Status DecodeMessage(ByteSpan data, FrontierRequest* out);
Status DecodeMessage(ByteSpan data, FrontierResponse* out);
Status DecodeMessage(ByteSpan data, BlockRequest* out);
Status DecodeMessage(ByteSpan data, BlockResponse* out);
Status DecodeMessage(ByteSpan data, PushBlocks* out);

// Stable counter suffix classifying a failed decode. Every
// early-return verdict a DecodeMessage/PeekType call can produce maps
// to one of: "empty", "unknown_type", "unexpected_type",
// "count_overflow", "truncated", "trailing", "noncanonical"; anything
// unrecognized maps to "other". Sessions bump the matching
// recon.<side>.reject.<suffix> counter (all declared in
// telemetry/metric_names.h) so malformed-input rejections are
// observable per cause, not just as a failed session.
const char* DecodeRejectName(const Status& status);

}  // namespace vegvisir::recon
