// Reconciliation sessions (paper §IV-G, Algorithm 1).
//
// A session is a pair of state machines exchanging the byte messages
// of recon/messages.h. They are transport-agnostic: the simulator (or
// a real radio link) moves the bytes. The initiator pulls the
// responder's level-n frontier set, escalating n until the gap to its
// own DAG is bridged, then merges. Two modes:
//
//   kBlockPush (paper-faithful): every frontier response carries full
//     block bodies, re-sending the whole level-n set each round.
//   kHashFirst (ablation E10, the paper's future-work direction):
//     responses carry hashes; the initiator requests only the bodies
//     it is missing.
//   kBloom (a further future-work design): the first request carries
//     a Bloom-filter summary of the initiator's block set; the
//     responder sends the probably-missing blocks in topological
//     order, typically finishing in one round. Bloom false positives
//     can leave gaps; the session then falls back to hash-first
//     escalation, so completeness never depends on the filter.
//   kSetDiff (reconciliation v2, DESIGN.md §16): the initiator probes
//     with a range digest of its whole hash set, the responder
//     replies with an IBLT sized to the estimated delta, and a
//     successful peel yields exactly the differing hashes — wire cost
//     proportional to the delta, not the DAG. A failed peel escalates
//     the cell count once, then falls back to hash-first level
//     escalation; a protocol-version-1 peer rejects the probe
//     outright and the gossip engine downgrades future sessions.
//
// With `push_back` enabled the initiator finishes by pushing the
// blocks the responder provably lacks (anti-entropy extension; off by
// default to match the paper's one-way pull).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "chain/block.h"
#include "chain/dag.h"
#include "chain/validation.h"
#include "recon/messages.h"
#include "telemetry/telemetry.h"
#include "util/status.h"

namespace vegvisir::recon {

// What a session needs from its node: the local DAG and a way to
// offer received blocks (the host validates, inserts, feeds the CSM
// and manages its quarantine).
class ReconHost {
 public:
  virtual ~ReconHost() = default;

  virtual const chain::Dag& dag() const = 0;

  // Offers a block received from a peer. kValid means it was inserted.
  virtual chain::BlockVerdict OfferBlock(const chain::Block& block) = 0;

  // True if the host already holds this block's bytes — inserted in
  // the DAG *or* parked in a quarantine. Sessions use it to avoid
  // re-fetching bodies the host cannot attach yet.
  virtual bool HasBlock(const chain::BlockHash& h) const {
    return dag().Contains(h);
  }

  // The host's telemetry sink; sessions resolve their counter handles
  // from it once, at construction. May be null (uninstrumented host):
  // the handles then degrade to no-ops.
  virtual telemetry::Telemetry* telemetry() const { return nullptr; }

  // Pipelined-ingest hook: a session hands every fetched-level block
  // here the moment it lands, so the host can fan the stateless
  // signature checks across its execution pool while the serial merge
  // (and the radio round-trip for the next level) proceeds. Results
  // are consumed later by validation; the default host does nothing
  // and validation verifies synchronously.
  virtual void PreverifyBlocks(
      const std::vector<const chain::Block*>& blocks) {
    (void)blocks;
  }
};

struct ReconConfig {
  enum class Mode { kBlockPush, kHashFirst, kBloom, kSetDiff };
  Mode mode = Mode::kBlockPush;
  // Highest setdiff protocol revision this node speaks. 1 = legacy
  // (pre-setdiff: never sends DiffProbe, rejects one as an unknown
  // message the way an old build's PeekType would); 2 = setdiff
  // capable. Both sides gate on their own version, so mixed fleets
  // interoperate: a v2 initiator detects the rejection via the gossip
  // engine and downgrades that peer to hash-first.
  std::uint32_t protocol_version = 2;
  // Ceiling on IBLT cells this node will build or request. Defaults
  // to the wire cap (serial::limits::kMaxIbltCells); tests lower it
  // to force peel failures and exercise the fallback ladder.
  std::uint32_t max_iblt_cells = 1u << 16;
  // Give up escalating past this frontier level (a safety valve; the
  // escalation naturally stops once the set reaches the genesis).
  std::uint32_t max_level = 1u << 20;
  bool push_back = false;
  // Level growth on escalation: kLinear is the paper's Algorithm 1
  // (n <- n+1); kExponential doubles the level, reaching a depth-d
  // gap in log2(d) round trips — far more robust on lossy links
  // where each round trip may fail.
  enum class Escalation { kLinear, kExponential };
  Escalation escalation = Escalation::kLinear;
  // First level to request (default 1). The gossip engine resumes a
  // failed catch-up at the level the previous session reached, so
  // multi-session progress accumulates even with linear escalation.
  std::uint32_t start_level = 1;
};

// Per-session counters. Sessions also mirror every field into the
// host's metrics registry (recon.initiator.* / recon.responder.*), so
// engine- and cluster-level totals come from the registry; this
// struct remains the per-session result value.
struct SessionStats {
  std::uint64_t rounds = 0;           // frontier requests sent/served
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t blocks_received = 0;  // bodies received over the wire
  std::uint64_t blocks_inserted = 0;  // newly added to the DAG
  std::uint64_t blocks_pushed = 0;    // bodies pushed to the peer

  void Accumulate(const SessionStats& other);
};

// The pre-resolved registry handles one session side holds. Resolving
// happens once per session; every hot-path update is a handle
// increment (see telemetry/metrics.h).
struct SessionMetrics {
  // Binds recon.<side>.* metrics, e.g. side = "initiator".
  static SessionMetrics Resolve(telemetry::Telemetry* sink,
                                const char* side);

  // Bumps the recon.<side>.reject.<suffix> counter matching a failed
  // PeekType/DecodeMessage verdict (suffix = DecodeRejectName(s)).
  void CountDecodeReject(const Status& status);

  telemetry::Counter sessions_started;
  telemetry::Counter sessions_completed;
  telemetry::Counter sessions_failed;
  telemetry::Counter rounds;
  telemetry::Counter bytes_sent;
  telemetry::Counter bytes_received;
  telemetry::Counter blocks_received;
  telemetry::Counter blocks_inserted;
  telemetry::Counter blocks_pushed;
  telemetry::Histogram final_level;  // initiator only
  // Escalation gave up at the configured max_level with the gap still
  // open (the silent-failure case; surfaced in chain_inspect metrics).
  telemetry::Counter level_cap_hit;
  // setdiff negotiation (global setdiff.* names, not per-side: the
  // probe/decode legs are initiator-only and the sketch legs
  // responder-only, so per-side copies would just be zeros).
  telemetry::Counter setdiff_probes;          // initiator
  telemetry::Counter setdiff_sketches_sent;   // responder
  telemetry::Counter setdiff_sketch_bytes;    // responder
  telemetry::Counter setdiff_decode_success;  // initiator
  telemetry::Counter setdiff_decode_failure;  // initiator
  telemetry::Counter setdiff_escalations;     // initiator
  telemetry::Counter setdiff_fallbacks;       // initiator
  // Decode-rejection verdicts, one per early-return class in
  // recon/messages.cpp (see DecodeRejectName).
  telemetry::Counter reject_empty;
  telemetry::Counter reject_unknown_type;
  telemetry::Counter reject_unexpected_type;
  telemetry::Counter reject_count_overflow;
  telemetry::Counter reject_truncated;
  telemetry::Counter reject_trailing;
  telemetry::Counter reject_noncanonical;
  telemetry::Counter reject_other;
};

enum class SessionState { kRunning, kDone, kFailed };

class InitiatorSession {
 public:
  InitiatorSession(ReconHost* host, ReconConfig config);

  // The first message to send to the responder.
  Bytes Start();

  // Feeds a responder message; any messages to send back are appended
  // to `out`. A non-OK status means the session failed.
  Status OnMessage(ByteSpan data, std::vector<Bytes>* out);

  SessionState state() const { return state_; }
  const SessionStats& stats() const { return stats_; }
  // The frontier level most recently requested (for session resume).
  std::uint32_t level() const { return level_; }
  // True while a DiffProbe is in flight with no sketch received yet.
  // A session failing in this window is the signature of a legacy
  // (protocol-version-1) responder, which rejects the probe as an
  // unknown message; the gossip engine uses this to downgrade the
  // peer to hash-first for future sessions.
  bool AwaitingSetdiffHandshake() const {
    return diff_phase_ == DiffPhase::kAwaitSketch;
  }

 private:
  // setdiff negotiation progress (mode kSetDiff only).
  enum class DiffPhase {
    kInactive,     // not negotiating (other modes, or v1 downgrade)
    kAwaitSketch,  // probe sent, sketch not yet received
    kAwaitBlocks,  // peel succeeded, fetching the missing bodies
    kFellBack,     // negotiation abandoned; level escalation active
  };

  Bytes MakeFrontierRequest();
  Bytes MakeBloomRequest();
  Bytes MakeDiffProbe();
  // True when frontier responses should carry hashes only and gaps
  // are closed with BlockRequest fetches (hash-first mode itself, the
  // bloom and setdiff fallback paths, and the setdiff v1 downgrade).
  bool HashFirstActive() const;
  Status HandleFrontierResponse(ByteSpan data, std::vector<Bytes>* out);
  Status HandleDiffSketch(ByteSpan data, std::vector<Bytes>* out);
  // Abandons the setdiff negotiation for level escalation. `notify`
  // additionally tells the responder the attempt failed (skipped when
  // a DiffResult for this attempt was already sent).
  Status FallBackToLevels(std::vector<Bytes>* out, bool notify);
  Status HandleBlockResponse(ByteSpan data, std::vector<Bytes>* out);
  Status StashBlocks(const std::vector<Bytes>& blocks);
  // Merges the stash into the DAG (fixpoint). Returns true if every
  // stashed block was resolved (inserted / duplicate / rejected);
  // false if some still miss parents (they are handed to the host's
  // quarantine so partial progress survives) and escalation must
  // continue.
  bool TryMerge();
  // True once every block the peer advertised is *inserted* in the
  // local DAG (quarantined does not count — a quarantined frontier
  // still needs its ancestry fetched).
  bool CaughtUp() const;
  Status EscalateOrFail(std::vector<Bytes>* out);
  void FinishMaybePush(std::vector<Bytes>* out);
  void MarkFailed();
  Bytes Send(Bytes message);

  ReconHost* host_;
  ReconConfig config_;
  SessionState state_ = SessionState::kRunning;
  SessionStats stats_;
  SessionMetrics metrics_;
  std::uint32_t level_ = 1;
  // In bloom mode, set after the summary round; escalation then uses
  // hash-first requests (cheap) to close false-positive gaps.
  bool bloom_round_done_ = false;
  DiffPhase diff_phase_ = DiffPhase::kInactive;
  // Cell count to request in the next probe (0 = let the responder
  // size from its delta estimate; nonzero after a failed peel).
  std::uint32_t diff_cells_requested_ = 0;
  // The one cell-count escalation has been spent; the next peel
  // failure falls back to level escalation.
  bool diff_escalated_ = false;
  // Bodies received this session, keyed by hash, not yet inserted.
  std::map<chain::BlockHash, chain::Block> stash_;
  // The peer's advertised level-1 frontier (used for push-back).
  std::vector<chain::BlockHash> peer_frontier_;
  bool peer_frontier_known_ = false;
  // The most recent advertised hash set and its size; if escalation
  // stops growing the set (the level saturated at the whole DAG) and
  // we are still not caught up, the gap is not bridgeable this
  // session (e.g. a block quarantined on clock skew) and we fail
  // rather than loop.
  std::vector<chain::BlockHash> last_advertised_;
  std::size_t last_level_count_ = 0;
};

class ResponderSession {
 public:
  ResponderSession(ReconHost* host, ReconConfig config);

  // Handles one initiator message, appending replies to `out`.
  Status OnMessage(ByteSpan data, std::vector<Bytes>* out);

  const SessionStats& stats() const { return stats_; }

 private:
  Status HandleFrontierRequest(ByteSpan data, std::vector<Bytes>* out);
  Status HandleBlockRequest(ByteSpan data, std::vector<Bytes>* out);
  Status HandlePushBlocks(ByteSpan data);
  Status HandleDiffProbe(ByteSpan data, std::vector<Bytes>* out);
  Status HandleDiffResult(ByteSpan data);
  Bytes Send(Bytes message);

  ReconHost* host_;
  ReconConfig config_;
  SessionStats stats_;
  SessionMetrics metrics_;
};

// Runs a complete session over a lossless in-process "wire",
// delivering messages alternately until the initiator finishes.
// Returns the initiator's final state. Used by tests and benches;
// the simulator drives sessions through real (simulated) links
// instead.
SessionState RunLocalSession(ReconHost* initiator_host,
                             ReconHost* responder_host,
                             const ReconConfig& config,
                             SessionStats* initiator_stats = nullptr,
                             SessionStats* responder_stats = nullptr);

}  // namespace vegvisir::recon
