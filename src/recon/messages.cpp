#include "recon/messages.h"

#include "serial/limits.h"

namespace vegvisir::recon {
namespace {

void WriteHashes(serial::Writer* w, const std::vector<chain::BlockHash>& hs) {
  w->WriteVarint(hs.size());
  for (const chain::BlockHash& h : hs) w->WriteFixed(h);
}

Status ReadHashList(serial::Reader* r, std::vector<chain::BlockHash>* out,
                    std::uint64_t limit, const char* what) {
  std::uint64_t count;
  VEGVISIR_RETURN_IF_ERROR(r->ReadVarint(&count));
  VEGVISIR_RETURN_IF_ERROR(serial::CheckWireCount(
      count, limit, r->remaining(), sizeof(chain::BlockHash), what));
  out->clear();
  out->reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    chain::BlockHash h;
    VEGVISIR_RETURN_IF_ERROR(r->ReadFixed(&h));
    out->push_back(h);
  }
  return Status::Ok();
}

Status ReadHashes(serial::Reader* r, std::vector<chain::BlockHash>* out) {
  return ReadHashList(r, out, serial::limits::kMaxFrontierHashes, "hash");
}

void WriteBlockList(serial::Writer* w, const std::vector<Bytes>& blocks) {
  w->WriteVarint(blocks.size());
  for (const Bytes& b : blocks) w->WriteBytes(b);
}

Status ReadBlockList(serial::Reader* r, std::vector<Bytes>* out) {
  std::uint64_t count;
  VEGVISIR_RETURN_IF_ERROR(r->ReadVarint(&count));
  VEGVISIR_RETURN_IF_ERROR(serial::CheckWireCount(
      count, serial::limits::kMaxWireBlocks, r->remaining(), 1, "block"));
  out->clear();
  out->reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Bytes b;
    VEGVISIR_RETURN_IF_ERROR(r->ReadBytes(&b));
    out->push_back(std::move(b));
  }
  return Status::Ok();
}

Status ExpectType(serial::Reader* r, MessageType expected) {
  std::uint8_t tag;
  VEGVISIR_RETURN_IF_ERROR(r->ReadU8(&tag));
  if (tag != static_cast<std::uint8_t>(expected)) {
    return InvalidArgumentError("unexpected message type");
  }
  return Status::Ok();
}

}  // namespace

Bytes EncodeMessage(const FrontierRequest& m) {
  serial::Writer w;
  w.WriteU8(static_cast<std::uint8_t>(MessageType::kFrontierRequest));
  w.WriteU32(m.level);
  w.WriteBool(m.hashes_only);
  w.WriteFixed(m.genesis);
  w.WriteBytes(m.bloom);
  w.WriteFixed(m.frontier_digest);
  return w.Take();
}

Bytes EncodeMessage(const FrontierResponse& m) {
  serial::Writer w;
  w.WriteU8(static_cast<std::uint8_t>(MessageType::kFrontierResponse));
  w.WriteU32(m.level);
  w.WriteFixed(m.genesis);
  WriteHashes(&w, m.hashes);
  WriteBlockList(&w, m.blocks);
  return w.Take();
}

Bytes EncodeMessage(const BlockRequest& m) {
  serial::Writer w;
  w.WriteU8(static_cast<std::uint8_t>(MessageType::kBlockRequest));
  WriteHashes(&w, m.hashes);
  return w.Take();
}

Bytes EncodeMessage(const BlockResponse& m) {
  serial::Writer w;
  w.WriteU8(static_cast<std::uint8_t>(MessageType::kBlockResponse));
  WriteBlockList(&w, m.blocks);
  return w.Take();
}

Bytes EncodeMessage(const PushBlocks& m) {
  serial::Writer w;
  w.WriteU8(static_cast<std::uint8_t>(MessageType::kPushBlocks));
  WriteBlockList(&w, m.blocks);
  return w.Take();
}

Bytes EncodeMessage(const DiffProbe& m) {
  serial::Writer w;
  w.WriteU8(static_cast<std::uint8_t>(MessageType::kDiffProbe));
  w.WriteU32(m.version);
  w.WriteFixed(m.genesis);
  w.WriteFixed(m.frontier_digest);
  w.WriteU32(m.requested_cells);
  m.digest.Encode(&w);
  return w.Take();
}

Bytes EncodeMessage(const DiffSketch& m) {
  serial::Writer w;
  w.WriteU8(static_cast<std::uint8_t>(MessageType::kDiffSketch));
  w.WriteFixed(m.genesis);
  w.WriteU64(m.seed);
  w.WriteVarint(m.set_size);
  w.WriteVarint(m.estimated_delta);
  WriteHashes(&w, m.frontier);
  m.sketch.Encode(&w);
  return w.Take();
}

Bytes EncodeMessage(const DiffResult& m) {
  serial::Writer w;
  w.WriteU8(static_cast<std::uint8_t>(MessageType::kDiffResult));
  w.WriteBool(m.decoded);
  WriteHashes(&w, m.peer_missing);
  return w.Take();
}

StatusOr<MessageType> PeekType(ByteSpan data) {
  if (data.empty()) return InvalidArgumentError("empty message");
  const std::uint8_t tag = data[0];
  if (tag < static_cast<std::uint8_t>(MessageType::kFrontierRequest) ||
      tag > static_cast<std::uint8_t>(MessageType::kDiffResult)) {
    return InvalidArgumentError("unknown message type");
  }
  return static_cast<MessageType>(tag);
}

Status DecodeMessage(ByteSpan data, FrontierRequest* out) {
  serial::Reader r(data);
  VEGVISIR_RETURN_IF_ERROR(ExpectType(&r, MessageType::kFrontierRequest));
  VEGVISIR_RETURN_IF_ERROR(r.ReadU32(&out->level));
  VEGVISIR_RETURN_IF_ERROR(r.ReadBool(&out->hashes_only));
  VEGVISIR_RETURN_IF_ERROR(r.ReadFixed(&out->genesis));
  VEGVISIR_RETURN_IF_ERROR(r.ReadBytes(&out->bloom));
  VEGVISIR_RETURN_IF_ERROR(r.ReadFixed(&out->frontier_digest));
  return r.ExpectEnd();
}

Status DecodeMessage(ByteSpan data, FrontierResponse* out) {
  serial::Reader r(data);
  VEGVISIR_RETURN_IF_ERROR(ExpectType(&r, MessageType::kFrontierResponse));
  VEGVISIR_RETURN_IF_ERROR(r.ReadU32(&out->level));
  VEGVISIR_RETURN_IF_ERROR(r.ReadFixed(&out->genesis));
  VEGVISIR_RETURN_IF_ERROR(ReadHashes(&r, &out->hashes));
  VEGVISIR_RETURN_IF_ERROR(ReadBlockList(&r, &out->blocks));
  return r.ExpectEnd();
}

Status DecodeMessage(ByteSpan data, BlockRequest* out) {
  serial::Reader r(data);
  VEGVISIR_RETURN_IF_ERROR(ExpectType(&r, MessageType::kBlockRequest));
  VEGVISIR_RETURN_IF_ERROR(ReadHashes(&r, &out->hashes));
  return r.ExpectEnd();
}

Status DecodeMessage(ByteSpan data, BlockResponse* out) {
  serial::Reader r(data);
  VEGVISIR_RETURN_IF_ERROR(ExpectType(&r, MessageType::kBlockResponse));
  VEGVISIR_RETURN_IF_ERROR(ReadBlockList(&r, &out->blocks));
  return r.ExpectEnd();
}

Status DecodeMessage(ByteSpan data, PushBlocks* out) {
  serial::Reader r(data);
  VEGVISIR_RETURN_IF_ERROR(ExpectType(&r, MessageType::kPushBlocks));
  VEGVISIR_RETURN_IF_ERROR(ReadBlockList(&r, &out->blocks));
  return r.ExpectEnd();
}

Status DecodeMessage(ByteSpan data, DiffProbe* out) {
  serial::Reader r(data);
  VEGVISIR_RETURN_IF_ERROR(ExpectType(&r, MessageType::kDiffProbe));
  VEGVISIR_RETURN_IF_ERROR(r.ReadU32(&out->version));
  VEGVISIR_RETURN_IF_ERROR(r.ReadFixed(&out->genesis));
  VEGVISIR_RETURN_IF_ERROR(r.ReadFixed(&out->frontier_digest));
  VEGVISIR_RETURN_IF_ERROR(r.ReadU32(&out->requested_cells));
  if (out->requested_cells > serial::limits::kMaxIbltCells) {
    return InvalidArgumentError("cell count exceeds limit");
  }
  auto digest = setdiff::RangeDigest::Decode(&r);
  if (!digest.ok()) return digest.status();
  out->digest = std::move(digest).value();
  return r.ExpectEnd();
}

Status DecodeMessage(ByteSpan data, DiffSketch* out) {
  serial::Reader r(data);
  VEGVISIR_RETURN_IF_ERROR(ExpectType(&r, MessageType::kDiffSketch));
  VEGVISIR_RETURN_IF_ERROR(r.ReadFixed(&out->genesis));
  VEGVISIR_RETURN_IF_ERROR(r.ReadU64(&out->seed));
  VEGVISIR_RETURN_IF_ERROR(r.ReadVarint(&out->set_size));
  VEGVISIR_RETURN_IF_ERROR(r.ReadVarint(&out->estimated_delta));
  VEGVISIR_RETURN_IF_ERROR(ReadHashes(&r, &out->frontier));
  auto sketch = setdiff::Iblt::Decode(&r, out->seed);
  if (!sketch.ok()) return sketch.status();
  out->sketch = std::move(sketch).value();
  return r.ExpectEnd();
}

Status DecodeMessage(ByteSpan data, DiffResult* out) {
  serial::Reader r(data);
  VEGVISIR_RETURN_IF_ERROR(ExpectType(&r, MessageType::kDiffResult));
  VEGVISIR_RETURN_IF_ERROR(r.ReadBool(&out->decoded));
  VEGVISIR_RETURN_IF_ERROR(ReadHashList(
      &r, &out->peer_missing, serial::limits::kMaxDiffHashes, "diff hash"));
  return r.ExpectEnd();
}

const char* DecodeRejectName(const Status& status) {
  // The strings matched here are the exact messages this file and
  // serial/codec.cpp produce; tests/recon_reject_test.cpp pins each
  // mapping.
  const std::string& m = status.message();
  if (m == "empty message") return "empty";
  if (m == "unknown message type") return "unknown_type";
  // Covers "unexpected message type" (ExpectType) and the sessions'
  // "unexpected message for initiator/responder" routing verdicts.
  if (m.rfind("unexpected message", 0) == 0) return "unexpected_type";
  if (m.find("count exceeds input") != std::string::npos ||
      m.find("count exceeds limit") != std::string::npos) {
    return "count_overflow";
  }
  if (m == "truncated input") return "truncated";
  if (m == "trailing bytes after value") return "trailing";
  if (m == "non-minimal varint" || m == "varint too long" ||
      m == "varint overflows 64 bits" || m == "non-canonical bool") {
    return "noncanonical";
  }
  return "other";
}

}  // namespace vegvisir::recon
