// Deterministic discrete-event simulator.
//
// All Vegvisir experiments run on this substrate instead of the
// paper's Android/Bluetooth testbed (see DESIGN.md §2). Events are
// ordered by (time, insertion sequence), so a run is a pure function
// of the seed and configuration.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace vegvisir::sim {

using TimeMs = std::uint64_t;

class Simulator {
 public:
  Simulator() = default;

  TimeMs now() const { return now_; }

  // Schedules `fn` at absolute time `at` (>= now).
  void ScheduleAt(TimeMs at, std::function<void()> fn);
  void ScheduleAfter(TimeMs delay, std::function<void()> fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  // Runs events until the queue empties or simulated time would pass
  // `end`; leaves now() at min(end, last event time).
  void RunUntil(TimeMs end);

  // Runs everything (bounded by `max_events` as a runaway guard).
  void RunAll(std::size_t max_events = 100'000'000);

  // Executes the single earliest event. Returns false if none left.
  bool Step();

  std::size_t pending_events() const { return queue_.size(); }
  std::uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    TimeMs at;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  TimeMs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace vegvisir::sim
