#include "sim/topology.h"

#include <algorithm>
#include <cmath>

namespace vegvisir::sim {
namespace {

std::pair<NodeId, NodeId> Norm(NodeId a, NodeId b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

}  // namespace

// -------------------------------------------------- ExplicitTopology

void ExplicitTopology::AddLink(NodeId a, NodeId b) {
  if (a == b) return;
  links_.insert(Norm(a, b));
}

void ExplicitTopology::RemoveLink(NodeId a, NodeId b) {
  links_.erase(Norm(a, b));
}

void ExplicitTopology::MakeClique() {
  for (NodeId a = 0; a < node_count_; ++a) {
    for (NodeId b = a + 1; b < node_count_; ++b) AddLink(a, b);
  }
}

void ExplicitTopology::MakeLine() {
  for (NodeId a = 0; a + 1 < node_count_; ++a) AddLink(a, a + 1);
}

void ExplicitTopology::MakeRing() {
  MakeLine();
  if (node_count_ > 2) AddLink(0, node_count_ - 1);
}

void ExplicitTopology::MakeStar(NodeId center) {
  for (NodeId n = 0; n < node_count_; ++n) {
    if (n != center) AddLink(center, n);
  }
}

bool ExplicitTopology::Connected(NodeId a, NodeId b, TimeMs) const {
  return a != b && links_.count(Norm(a, b)) > 0;
}

std::vector<NodeId> ExplicitTopology::NeighborsOf(NodeId n, TimeMs at) const {
  std::vector<NodeId> out;
  for (NodeId m = 0; m < node_count_; ++m) {
    if (Connected(n, m, at)) out.push_back(m);
  }
  return out;
}

// -------------------------------------------------- UnitDiskTopology

UnitDiskTopology::UnitDiskTopology(int node_count, Params params,
                                   std::uint64_t seed)
    : params_(params), seed_(seed) {
  Rng rng(seed);
  homes_.reserve(static_cast<std::size_t>(node_count));
  for (int i = 0; i < node_count; ++i) {
    homes_.push_back(Point{rng.NextDouble() * params_.field_size,
                           rng.NextDouble() * params_.field_size});
  }
}

UnitDiskTopology::Point UnitDiskTopology::MobilePositionOf(NodeId n,
                                                           TimeMs at) const {
  // Regenerate this node's waypoint walk from its own deterministic
  // stream until the leg covering `at` is reached. Legs are coarse
  // (seconds to minutes), so the loop is short for simulation spans.
  Rng rng(seed_ ^ (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(n) + 1)));
  Point from = homes_[static_cast<std::size_t>(n)];
  TimeMs t = 0;
  while (true) {
    const Point to{rng.NextDouble() * params_.field_size,
                   rng.NextDouble() * params_.field_size};
    const double dist = std::hypot(to.x - from.x, to.y - from.y);
    const TimeMs travel_ms = static_cast<TimeMs>(
        dist / std::max(params_.speed_mps, 0.01) * 1000.0);
    const TimeMs arrive = t + std::max<TimeMs>(travel_ms, 1);
    if (at < arrive) {
      const double frac = static_cast<double>(at - t) /
                          static_cast<double>(arrive - t);
      return Point{from.x + (to.x - from.x) * frac,
                   from.y + (to.y - from.y) * frac};
    }
    const TimeMs hold_until = arrive + params_.waypoint_hold_ms;
    if (at < hold_until) return to;
    from = to;
    t = hold_until;
  }
}

UnitDiskTopology::Point UnitDiskTopology::PositionOf(NodeId n,
                                                     TimeMs at) const {
  return params_.mobile ? MobilePositionOf(n, at)
                        : homes_[static_cast<std::size_t>(n)];
}

bool UnitDiskTopology::Connected(NodeId a, NodeId b, TimeMs at) const {
  if (a == b) return false;
  const Point pa = PositionOf(a, at);
  const Point pb = PositionOf(b, at);
  return std::hypot(pa.x - pb.x, pa.y - pb.y) <= params_.radio_range;
}

std::vector<NodeId> UnitDiskTopology::NeighborsOf(NodeId n, TimeMs at) const {
  std::vector<NodeId> out;
  for (int m = 0; m < node_count(); ++m) {
    if (Connected(n, m, at)) out.push_back(m);
  }
  return out;
}

// ----------------------------------------------- PartitionedTopology

void PartitionedTopology::AddInterval(Interval interval) {
  intervals_.push_back(std::move(interval));
}

void PartitionedTopology::SplitEvenly(TimeMs begin_ms, TimeMs end_ms,
                                      int groups) {
  Interval iv;
  iv.begin_ms = begin_ms;
  iv.end_ms = end_ms;
  const int n = base_->node_count();
  const int per_group = (n + groups - 1) / groups;
  for (NodeId i = 0; i < n; ++i) iv.group_of[i] = i / per_group;
  AddInterval(std::move(iv));
}

const PartitionedTopology::Interval* PartitionedTopology::ActiveAt(
    TimeMs at) const {
  for (const Interval& iv : intervals_) {
    if (at >= iv.begin_ms && at < iv.end_ms) return &iv;
  }
  return nullptr;
}

bool PartitionedTopology::Connected(NodeId a, NodeId b, TimeMs at) const {
  if (!base_->Connected(a, b, at)) return false;
  const Interval* iv = ActiveAt(at);
  if (iv == nullptr) return true;
  const auto ga = iv->group_of.find(a);
  const auto gb = iv->group_of.find(b);
  const int group_a = ga == iv->group_of.end() ? -1 : ga->second;
  const int group_b = gb == iv->group_of.end() ? -1 : gb->second;
  return group_a >= 0 && group_a == group_b;
}

std::vector<NodeId> PartitionedTopology::NeighborsOf(NodeId n,
                                                     TimeMs at) const {
  std::vector<NodeId> out;
  for (NodeId m = 0; m < node_count(); ++m) {
    if (Connected(n, m, at)) out.push_back(m);
  }
  return out;
}

}  // namespace vegvisir::sim
