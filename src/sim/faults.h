// Deterministic fault injection for the simulated radio network.
//
// The paper's whole claim is graceful degradation under hostile IoT
// conditions (§I, §IV-G): partitions, lossy radios, crashing
// low-power devices. Uniform random loss and scheduled partitions
// (sim/topology.h) cover only the gentlest of those. This layer adds
// the rest: a FaultInjector sits between Network::Send and delivery
// and — driven by a composable FaultPlan — corrupts, truncates,
// duplicates, delays and drops messages per send, flaps individual
// links open and closed, skews node clocks, and schedules whole-node
// crash/restart cycles (executed by node::Cluster, which rebuilds the
// node from its checkpoint image).
//
// Everything is a pure function of (plan, seed, sim time): a chaos
// run replays byte-identically, so a failing soak is a debuggable
// artifact rather than a flake. Every injected fault is counted under
// the fault.* telemetry namespace in the bundle the injector is
// handed (a Cluster passes the network's bundle).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "sim/simulator.h"
#include "sim/topology.h"
#include "telemetry/telemetry.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace vegvisir::sim {

// Storage I/O faults, consumed by storage::FileIo (the engine's
// single syscall choke point). Plain data here so the sim layer
// stays free of storage dependencies; determinism comes from the
// seed the consumer mixes in. Each log append rolls independently
// once `min_appends` clean appends have gone through (lets a
// scenario bootstrap before the disk turns hostile).
struct IoFaultPlan {
  // A prefix of the record's payload reaches the disk, then the
  // write fails — the mid-payload power-loss shape.
  double short_write_probability = 0.0;
  // The cut lands inside the record header itself, leaving a tail
  // recovery cannot even size — the torn-record shape.
  double torn_record_probability = 0.0;
  // Total bytes the fake disk accepts before refusing with ENOSPC
  // (nothing written). 0 = unlimited.
  std::uint64_t enospc_after_bytes = 0;
  std::uint64_t min_appends = 0;

  bool Empty() const;
  // Probabilities take the stronger value; the byte budget takes the
  // tighter nonzero one; min_appends takes the later gate.
  IoFaultPlan& Merge(const IoFaultPlan& other);

  static IoFaultPlan ShortWrite(double p, std::uint64_t min_appends = 0);
  static IoFaultPlan TornRecord(double p, std::uint64_t min_appends = 0);
  static IoFaultPlan Enospc(std::uint64_t after_bytes);
};

// A composable description of what to break. Defaults are all-off;
// combine the preset factories with Merge:
//
//   auto plan = FaultPlan::Corruption(0.05)
//                   .Merge(FaultPlan::LinkFlap(5'000, 0.2))
//                   .Merge(FaultPlan::CrashRestart(3, 60'000, 90'000));
struct FaultPlan {
  // ---- per-message faults (each send attempt rolls independently) --
  double corrupt_probability = 0.0;    // flip random payload bytes
  double truncate_probability = 0.0;   // cut to a random prefix
  double duplicate_probability = 0.0;  // deliver a second copy, late
  double drop_probability = 0.0;       // injector loss, on top of link loss
  double delay_probability = 0.0;      // add reordering jitter
  TimeMs delay_jitter_ms = 0;          // uniform extra delay [0, jitter]

  // ---- link flapping ----------------------------------------------
  // Each undirected link is independently down with probability
  // `flap_down_probability` during each `flap_period_ms` window,
  // decided by a hash of (seed, link, window) — deterministic and
  // stateless. 0 period disables flapping.
  TimeMs flap_period_ms = 0;
  double flap_down_probability = 0.0;

  // ---- clock skew -------------------------------------------------
  // Per-node offset applied to the node's clock while faults are
  // active: explicit entries win, otherwise uniform in [-max, +max]
  // derived from the seed. Skews beyond the validator's
  // max_clock_skew_ms force quarantine traffic — exactly the path we
  // want exercised.
  std::int64_t clock_skew_max_ms = 0;
  std::map<NodeId, std::int64_t> clock_skew_ms;

  // ---- crash / restart --------------------------------------------
  // Executed by node::Cluster: at crash_at_ms the node is torn down
  // (in-flight sessions dropped, radio deregistered); at
  // restart_at_ms it is rebuilt from its checkpoint image and
  // rejoins. Crashes fire regardless of active_until_ms.
  struct CrashEvent {
    NodeId node = 0;
    TimeMs crash_at_ms = 0;
    TimeMs restart_at_ms = 0;
  };
  std::vector<CrashEvent> crashes;

  // ---- storage I/O --------------------------------------------------
  // Applied by every storage::FileIo a Cluster builds (per-node seed
  // derived from the cluster seed). Unlike message faults these are
  // not gated by active_until_ms: a bad flash chip does not heal on a
  // schedule.
  IoFaultPlan io;

  // Message/link/clock faults apply only before this sim time
  // (0 = forever). Chaos tests use it to assert recovery after the
  // faults cease.
  TimeMs active_until_ms = 0;

  bool Empty() const;

  // Composition: probabilities and jitters take the stronger value,
  // crash schedules concatenate, explicit skews merge (other wins on
  // conflict). active_until_ms takes the later nonzero deadline
  // unless either side says "forever" (0 stays 0 only if both are 0).
  FaultPlan& Merge(const FaultPlan& other);

  // Preset factories, one per fault class.
  static FaultPlan Corruption(double p);
  static FaultPlan Truncation(double p);
  static FaultPlan Duplication(double p);
  static FaultPlan Loss(double p);
  static FaultPlan Reorder(double p, TimeMs jitter_ms);
  static FaultPlan LinkFlap(TimeMs period_ms, double down_probability);
  static FaultPlan ClockSkew(std::int64_t max_ms);
  static FaultPlan CrashRestart(NodeId node, TimeMs crash_at_ms,
                                TimeMs restart_at_ms);
  static FaultPlan Io(IoFaultPlan io_plan);
};

// Assembled on demand from the fault.* series (see stats()).
struct FaultStats {
  std::uint64_t messages_corrupted = 0;
  std::uint64_t messages_truncated = 0;
  std::uint64_t messages_duplicated = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_delayed = 0;
  std::uint64_t sends_flap_blocked = 0;
  std::uint64_t bytes_truncated = 0;  // bytes removed by truncation
};

class FaultInjector {
 public:
  // One delivery the network should schedule; OnSend may return zero
  // (dropped), one, or two (duplicated) of these.
  struct Delivery {
    Bytes payload;
    TimeMs extra_delay_ms = 0;
  };

  // `telemetry` is the sink the fault.* series flow into; null means
  // the injector owns a private bundle.
  FaultInjector(FaultPlan plan, std::uint64_t seed,
                telemetry::Telemetry* telemetry = nullptr);

  // True while message/link/clock faults apply at `now`.
  bool ActiveAt(TimeMs now) const;
  // Kill switch: all message/link/clock faults cease immediately
  // (scheduled crashes still fire — they are the Cluster's events).
  void Deactivate() { deactivated_ = true; }

  // Link gate consulted by Network::Send. Symmetric in (a, b);
  // deterministic per (link, window).
  bool LinkUp(NodeId a, NodeId b, TimeMs now);

  // Applies message faults to one send. The returned deliveries reuse
  // or replace `payload`; an empty vector means the injector ate the
  // message. Sizes may shrink (truncation) but never grow.
  std::vector<Delivery> OnSend(NodeId from, NodeId to, TimeMs now,
                               Bytes payload);

  // The node's clock offset while faults are active (0 afterwards —
  // a healed deployment re-syncs, and convergence assertions need
  // agreeing clocks). Deterministic per node.
  std::int64_t ClockSkewFor(NodeId node, TimeMs now) const;

  const FaultPlan& plan() const { return plan_; }
  FaultStats stats() const;
  telemetry::Telemetry* telemetry() const { return telem_; }

 private:
  FaultPlan plan_;
  Rng rng_;
  std::uint64_t flap_seed_;
  std::uint64_t skew_seed_;
  bool deactivated_ = false;
  std::unique_ptr<telemetry::Telemetry> owned_telem_;
  telemetry::Telemetry* telem_ = nullptr;
  telemetry::Counter c_corrupted_;
  telemetry::Counter c_truncated_;
  telemetry::Counter c_duplicated_;
  telemetry::Counter c_dropped_;
  telemetry::Counter c_delayed_;
  telemetry::Counter c_flap_blocked_;
  telemetry::Counter c_bytes_truncated_;
};

}  // namespace vegvisir::sim
