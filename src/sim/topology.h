// Network topologies: who can physically talk to whom, when.
//
// Three models cover the paper's scenarios:
//  - ExplicitTopology: hand-wired links (unit tests, small scenarios);
//  - UnitDiskTopology: nodes with positions and a radio range, with
//    optional random-waypoint mobility — the ad hoc first-responder /
//    farm / ship networks of §II;
//  - PartitionedTopology: wraps another topology with a schedule of
//    partition intervals (disaster-response communication loss), used
//    by experiment E3.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "sim/simulator.h"
#include "util/rng.h"

namespace vegvisir::sim {

using NodeId = int;

class Topology {
 public:
  virtual ~Topology() = default;

  virtual bool Connected(NodeId a, NodeId b, TimeMs at) const = 0;
  virtual std::vector<NodeId> NeighborsOf(NodeId n, TimeMs at) const = 0;
  virtual int node_count() const = 0;
};

// Fixed node set with explicitly added/removed undirected links.
class ExplicitTopology final : public Topology {
 public:
  explicit ExplicitTopology(int node_count) : node_count_(node_count) {}

  void AddLink(NodeId a, NodeId b);
  void RemoveLink(NodeId a, NodeId b);
  // Convenience wirings.
  void MakeClique();
  void MakeLine();
  void MakeRing();
  void MakeStar(NodeId center);

  bool Connected(NodeId a, NodeId b, TimeMs at) const override;
  std::vector<NodeId> NeighborsOf(NodeId n, TimeMs at) const override;
  int node_count() const override { return node_count_; }

 private:
  int node_count_;
  std::set<std::pair<NodeId, NodeId>> links_;  // normalized (min,max)
};

// Nodes on a square field; connected iff within radio range. With
// mobility enabled, every node performs an independent random
// waypoint walk derived deterministically from the seed.
class UnitDiskTopology final : public Topology {
 public:
  struct Params {
    double field_size = 1000.0;   // meters, square side
    double radio_range = 150.0;   // meters
    bool mobile = false;
    double speed_mps = 1.5;       // walking speed
    TimeMs waypoint_hold_ms = 10'000;
  };

  UnitDiskTopology(int node_count, Params params, std::uint64_t seed);

  struct Point {
    double x = 0, y = 0;
  };
  Point PositionOf(NodeId n, TimeMs at) const;

  bool Connected(NodeId a, NodeId b, TimeMs at) const override;
  std::vector<NodeId> NeighborsOf(NodeId n, TimeMs at) const override;
  int node_count() const override { return static_cast<int>(homes_.size()); }

 private:
  struct Leg {
    TimeMs start_ms;
    TimeMs end_ms;  // arrival (movement) then hold until next leg
    Point from, to;
  };
  // Deterministically materializes legs for node n covering `at`.
  Point MobilePositionOf(NodeId n, TimeMs at) const;

  Params params_;
  std::uint64_t seed_;
  std::vector<Point> homes_;  // initial positions (static mode)
};

// Overlays hard partitions on a base topology. During an active
// interval, nodes can communicate only within their assigned group.
class PartitionedTopology final : public Topology {
 public:
  explicit PartitionedTopology(const Topology* base) : base_(base) {}

  struct Interval {
    TimeMs begin_ms;
    TimeMs end_ms;
    std::map<NodeId, int> group_of;  // missing nodes => group -1 (isolated)
  };

  void AddInterval(Interval interval);

  // Convenience: split [0, n) into `groups` contiguous groups for
  // [begin, end).
  void SplitEvenly(TimeMs begin_ms, TimeMs end_ms, int groups);

  bool Connected(NodeId a, NodeId b, TimeMs at) const override;
  std::vector<NodeId> NeighborsOf(NodeId n, TimeMs at) const override;
  int node_count() const override { return base_->node_count(); }

 private:
  const Interval* ActiveAt(TimeMs at) const;

  const Topology* base_;
  std::vector<Interval> intervals_;
};

}  // namespace vegvisir::sim
