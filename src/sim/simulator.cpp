#include "sim/simulator.h"

namespace vegvisir::sim {

void Simulator::ScheduleAt(TimeMs at, std::function<void()> fn) {
  if (at < now_) at = now_;  // never schedule into the past
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

bool Simulator::Step() {
  if (queue_.empty()) return false;
  // std::priority_queue::top is const; moving the closure out needs a
  // copy here, which is fine (events are small).
  Event e = queue_.top();
  queue_.pop();
  now_ = e.at;
  ++executed_;
  e.fn();
  return true;
}

void Simulator::RunUntil(TimeMs end) {
  while (!queue_.empty() && queue_.top().at <= end) Step();
  if (now_ < end) now_ = end;
}

void Simulator::RunAll(std::size_t max_events) {
  for (std::size_t i = 0; i < max_events && Step(); ++i) {
  }
}

}  // namespace vegvisir::sim
