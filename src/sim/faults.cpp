#include "sim/faults.h"

#include <algorithm>

namespace vegvisir::sim {
namespace {

double StrongerP(double a, double b) { return std::max(a, b); }

// Stateless per-(link, window) coin: the same link is down for the
// whole window, reconnects on the next one — the radio-shadow /
// interference pattern SplitMix64 gives us for free.
std::uint64_t LinkWindowHash(std::uint64_t seed, NodeId a, NodeId b,
                             std::uint64_t window) {
  const std::uint64_t lo = static_cast<std::uint64_t>(std::min(a, b));
  const std::uint64_t hi = static_cast<std::uint64_t>(std::max(a, b));
  SplitMix64 sm(seed ^ (lo * 0x9e3779b97f4a7c15ULL) ^
                (hi * 0xc2b2ae3d27d4eb4fULL) ^ (window * 0x165667b19e3779f9ULL));
  return sm.Next();
}

}  // namespace

bool IoFaultPlan::Empty() const {
  return short_write_probability == 0.0 && torn_record_probability == 0.0 &&
         enospc_after_bytes == 0;
}

IoFaultPlan& IoFaultPlan::Merge(const IoFaultPlan& other) {
  short_write_probability =
      StrongerP(short_write_probability, other.short_write_probability);
  torn_record_probability =
      StrongerP(torn_record_probability, other.torn_record_probability);
  if (other.enospc_after_bytes != 0) {
    enospc_after_bytes =
        enospc_after_bytes == 0
            ? other.enospc_after_bytes
            : std::min(enospc_after_bytes, other.enospc_after_bytes);
  }
  min_appends = std::max(min_appends, other.min_appends);
  return *this;
}

IoFaultPlan IoFaultPlan::ShortWrite(double p, std::uint64_t min_appends) {
  IoFaultPlan plan;
  plan.short_write_probability = p;
  plan.min_appends = min_appends;
  return plan;
}

IoFaultPlan IoFaultPlan::TornRecord(double p, std::uint64_t min_appends) {
  IoFaultPlan plan;
  plan.torn_record_probability = p;
  plan.min_appends = min_appends;
  return plan;
}

IoFaultPlan IoFaultPlan::Enospc(std::uint64_t after_bytes) {
  IoFaultPlan plan;
  plan.enospc_after_bytes = after_bytes;
  return plan;
}

bool FaultPlan::Empty() const {
  return corrupt_probability == 0.0 && truncate_probability == 0.0 &&
         duplicate_probability == 0.0 && drop_probability == 0.0 &&
         delay_probability == 0.0 && flap_period_ms == 0 &&
         clock_skew_max_ms == 0 && clock_skew_ms.empty() && crashes.empty() &&
         io.Empty();
}

FaultPlan& FaultPlan::Merge(const FaultPlan& other) {
  corrupt_probability = StrongerP(corrupt_probability, other.corrupt_probability);
  truncate_probability =
      StrongerP(truncate_probability, other.truncate_probability);
  duplicate_probability =
      StrongerP(duplicate_probability, other.duplicate_probability);
  drop_probability = StrongerP(drop_probability, other.drop_probability);
  delay_probability = StrongerP(delay_probability, other.delay_probability);
  delay_jitter_ms = std::max(delay_jitter_ms, other.delay_jitter_ms);
  if (other.flap_period_ms != 0) {
    flap_period_ms = flap_period_ms == 0
                         ? other.flap_period_ms
                         : std::min(flap_period_ms, other.flap_period_ms);
  }
  flap_down_probability =
      StrongerP(flap_down_probability, other.flap_down_probability);
  clock_skew_max_ms = std::max(clock_skew_max_ms, other.clock_skew_max_ms);
  for (const auto& [node, skew] : other.clock_skew_ms) {
    clock_skew_ms[node] = skew;
  }
  crashes.insert(crashes.end(), other.crashes.begin(), other.crashes.end());
  io.Merge(other.io);
  if (active_until_ms != 0 || other.active_until_ms != 0) {
    active_until_ms = std::max(active_until_ms, other.active_until_ms);
  }
  return *this;
}

FaultPlan FaultPlan::Corruption(double p) {
  FaultPlan plan;
  plan.corrupt_probability = p;
  return plan;
}

FaultPlan FaultPlan::Truncation(double p) {
  FaultPlan plan;
  plan.truncate_probability = p;
  return plan;
}

FaultPlan FaultPlan::Duplication(double p) {
  FaultPlan plan;
  plan.duplicate_probability = p;
  return plan;
}

FaultPlan FaultPlan::Loss(double p) {
  FaultPlan plan;
  plan.drop_probability = p;
  return plan;
}

FaultPlan FaultPlan::Reorder(double p, TimeMs jitter_ms) {
  FaultPlan plan;
  plan.delay_probability = p;
  plan.delay_jitter_ms = jitter_ms;
  return plan;
}

FaultPlan FaultPlan::LinkFlap(TimeMs period_ms, double down_probability) {
  FaultPlan plan;
  plan.flap_period_ms = period_ms;
  plan.flap_down_probability = down_probability;
  return plan;
}

FaultPlan FaultPlan::ClockSkew(std::int64_t max_ms) {
  FaultPlan plan;
  plan.clock_skew_max_ms = max_ms;
  return plan;
}

FaultPlan FaultPlan::CrashRestart(NodeId node, TimeMs crash_at_ms,
                                  TimeMs restart_at_ms) {
  FaultPlan plan;
  plan.crashes.push_back({node, crash_at_ms, restart_at_ms});
  return plan;
}

FaultPlan FaultPlan::Io(IoFaultPlan io_plan) {
  FaultPlan plan;
  plan.io = io_plan;
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed,
                             telemetry::Telemetry* telemetry)
    : plan_(std::move(plan)),
      rng_(seed),
      flap_seed_(SplitMix64(seed ^ 0xf1a9).Next()),
      skew_seed_(SplitMix64(seed ^ 0x5c3e).Next()),
      owned_telem_(telemetry != nullptr
                       ? nullptr
                       : std::make_unique<vegvisir::telemetry::Telemetry>()),
      telem_(telemetry != nullptr ? telemetry : owned_telem_.get()),
      c_corrupted_(telem_->metrics.GetCounter("fault.messages_corrupted")),
      c_truncated_(telem_->metrics.GetCounter("fault.messages_truncated")),
      c_duplicated_(telem_->metrics.GetCounter("fault.messages_duplicated")),
      c_dropped_(telem_->metrics.GetCounter("fault.messages_dropped")),
      c_delayed_(telem_->metrics.GetCounter("fault.messages_delayed")),
      c_flap_blocked_(telem_->metrics.GetCounter("fault.sends_flap_blocked")),
      c_bytes_truncated_(telem_->metrics.GetCounter("fault.bytes_truncated")) {}

bool FaultInjector::ActiveAt(TimeMs now) const {
  if (deactivated_) return false;
  return plan_.active_until_ms == 0 || now < plan_.active_until_ms;
}

bool FaultInjector::LinkUp(NodeId a, NodeId b, TimeMs now) {
  if (plan_.flap_period_ms == 0 || plan_.flap_down_probability <= 0.0 ||
      !ActiveAt(now)) {
    return true;
  }
  const std::uint64_t window = now / plan_.flap_period_ms;
  const double roll =
      static_cast<double>(LinkWindowHash(flap_seed_, a, b, window) >> 11) *
      0x1.0p-53;
  if (roll >= plan_.flap_down_probability) return true;
  c_flap_blocked_.Inc();
  return false;
}

std::vector<FaultInjector::Delivery> FaultInjector::OnSend(NodeId /*from*/,
                                                           NodeId /*to*/,
                                                           TimeMs now,
                                                           Bytes payload) {
  std::vector<Delivery> out;
  if (!ActiveAt(now)) {
    out.push_back({std::move(payload), 0});
    return out;
  }
  if (rng_.NextBool(plan_.drop_probability)) {
    c_dropped_.Inc();
    return out;
  }

  if (!payload.empty() && rng_.NextBool(plan_.corrupt_probability)) {
    // Flip a handful of random bytes: enough to break a signature, a
    // length field or the envelope header, depending on where they
    // land — which is the point.
    const std::size_t flips =
        1 + static_cast<std::size_t>(rng_.NextBelow(3));
    for (std::size_t i = 0; i < flips; ++i) {
      const std::size_t pos =
          static_cast<std::size_t>(rng_.NextBelow(payload.size()));
      payload[pos] ^= static_cast<std::uint8_t>(1 + rng_.NextBelow(255));
    }
    c_corrupted_.Inc();
  }
  if (!payload.empty() && rng_.NextBool(plan_.truncate_probability)) {
    const std::size_t keep =
        static_cast<std::size_t>(rng_.NextBelow(payload.size()));
    c_bytes_truncated_.Inc(payload.size() - keep);
    payload.resize(keep);
    c_truncated_.Inc();
  }

  TimeMs extra = 0;
  if (rng_.NextBool(plan_.delay_probability)) {
    extra = rng_.NextBelow(plan_.delay_jitter_ms + 1);
    c_delayed_.Inc();
  }

  const bool duplicate = rng_.NextBool(plan_.duplicate_probability);
  if (duplicate) {
    // The copy trails the original by a fresh jitter draw (plus a
    // floor so it is a genuine reordering hazard, not a no-op).
    const TimeMs dup_extra =
        extra + 1 +
        rng_.NextBelow(std::max<TimeMs>(plan_.delay_jitter_ms, 50));
    out.push_back({payload, dup_extra});
    c_duplicated_.Inc();
  }
  out.push_back({std::move(payload), extra});
  return out;
}

std::int64_t FaultInjector::ClockSkewFor(NodeId node, TimeMs now) const {
  if (!ActiveAt(now)) return 0;
  if (const auto it = plan_.clock_skew_ms.find(node);
      it != plan_.clock_skew_ms.end()) {
    return it->second;
  }
  if (plan_.clock_skew_max_ms <= 0) return 0;
  SplitMix64 sm(skew_seed_ ^
                (static_cast<std::uint64_t>(node) * 0x9e3779b97f4a7c15ULL));
  const std::uint64_t span =
      static_cast<std::uint64_t>(plan_.clock_skew_max_ms) * 2 + 1;
  return static_cast<std::int64_t>(sm.Next() % span) - plan_.clock_skew_max_ms;
}

FaultStats FaultInjector::stats() const {
  FaultStats s;
  s.messages_corrupted = c_corrupted_.value();
  s.messages_truncated = c_truncated_.value();
  s.messages_duplicated = c_duplicated_.value();
  s.messages_dropped = c_dropped_.value();
  s.messages_delayed = c_delayed_.value();
  s.sends_flap_blocked = c_flap_blocked_.value();
  s.bytes_truncated = c_bytes_truncated_.value();
  return s;
}

}  // namespace vegvisir::sim
