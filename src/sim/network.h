// The simulated radio network.
//
// Carries opaque byte payloads between nodes subject to the topology
// (connectivity at send time), link latency, per-byte transmission
// delay, and random loss. Charges the senders'/receivers' energy
// meters. Delivery callbacks fire as simulator events.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "sim/energy.h"
#include "sim/faults.h"
#include "sim/simulator.h"
#include "sim/topology.h"
#include "telemetry/telemetry.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace vegvisir::sim {

struct LinkParams {
  TimeMs base_latency_ms = 5;
  double bytes_per_ms = 125.0;  // ~1 Mbit/s (BLE-ish application rate)
  double drop_probability = 0.0;
};

// Wire-level counters, assembled on demand from the network's
// telemetry registry (net.*).
struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;     // random loss
  std::uint64_t messages_unreachable = 0; // not connected at send time
  std::uint64_t messages_dead_letter = 0; // receiver gone at delivery time
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_delivered = 0;
};

class Network {
 public:
  using Handler = std::function<void(NodeId from, const Bytes& payload)>;

  // `telemetry` is the sink the net.* series flow into (a Cluster
  // passes a bundle it aggregates); null means the network owns a
  // private bundle.
  Network(Simulator* simulator, const Topology* topology, LinkParams params,
          std::uint64_t seed, telemetry::Telemetry* telemetry = nullptr);

  // Registers the delivery callback and energy meter for a node.
  void Register(NodeId node, Handler handler, EnergyMeter* meter = nullptr);

  // Removes a node's endpoint (crashed / powered off). Messages
  // already in flight toward it are counted as dead letters and
  // dropped at delivery time.
  void Deregister(NodeId node);

  // Interposes a fault injector on every send (null disables). The
  // injector must outlive the network.
  void SetFaultInjector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }

  // Sends `payload` from `from` to `to`. Returns false (and charges
  // nothing) if the two are not connected right now — including links
  // the fault injector currently holds down. Loss is charged to the
  // sender (the radio transmitted either way).
  bool Send(NodeId from, NodeId to, Bytes payload);

  std::vector<NodeId> NeighborsOf(NodeId n) const {
    return topology_->NeighborsOf(n, simulator_->now());
  }
  bool Connected(NodeId a, NodeId b) const {
    return topology_->Connected(a, b, simulator_->now());
  }

  NetworkStats stats() const;
  telemetry::Telemetry* telemetry() const { return telem_; }
  const Topology& topology() const { return *topology_; }

 private:
  struct Endpoint {
    Handler handler;
    EnergyMeter* meter = nullptr;
  };

  void ScheduleDelivery(NodeId from, NodeId to, Bytes payload, TimeMs delay);

  Simulator* simulator_;
  const Topology* topology_;
  LinkParams params_;
  Rng rng_;
  FaultInjector* injector_ = nullptr;
  std::map<NodeId, Endpoint> endpoints_;
  std::unique_ptr<telemetry::Telemetry> owned_telem_;
  telemetry::Telemetry* telem_ = nullptr;
  telemetry::Counter c_messages_sent_;
  telemetry::Counter c_messages_delivered_;
  telemetry::Counter c_messages_dropped_;
  telemetry::Counter c_messages_unreachable_;
  telemetry::Counter c_messages_dead_letter_;
  telemetry::Counter c_bytes_sent_;
  telemetry::Counter c_bytes_delivered_;
  telemetry::Histogram h_message_bytes_;
};

}  // namespace vegvisir::sim
