#include "sim/network.h"

namespace vegvisir::sim {

void Network::Register(NodeId node, Handler handler, EnergyMeter* meter) {
  endpoints_[node] = Endpoint{std::move(handler), meter};
}

bool Network::Send(NodeId from, NodeId to, Bytes payload) {
  if (!topology_->Connected(from, to, simulator_->now())) {
    stats_.messages_unreachable += 1;
    return false;
  }

  stats_.messages_sent += 1;
  stats_.bytes_sent += payload.size();
  if (auto it = endpoints_.find(from);
      it != endpoints_.end() && it->second.meter != nullptr) {
    it->second.meter->AddTx(payload.size());
  }

  if (rng_.NextBool(params_.drop_probability)) {
    stats_.messages_dropped += 1;
    return true;  // transmitted, but lost in the air
  }

  const TimeMs delay =
      params_.base_latency_ms +
      static_cast<TimeMs>(static_cast<double>(payload.size()) /
                          params_.bytes_per_ms);
  const std::size_t size = payload.size();
  simulator_->ScheduleAfter(
      delay, [this, from, to, payload = std::move(payload), size]() {
        const auto it = endpoints_.find(to);
        if (it == endpoints_.end()) return;
        stats_.messages_delivered += 1;
        stats_.bytes_delivered += size;
        if (it->second.meter != nullptr) it->second.meter->AddRx(size);
        it->second.handler(from, payload);
      });
  return true;
}

}  // namespace vegvisir::sim
