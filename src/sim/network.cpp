#include "sim/network.h"

namespace vegvisir::sim {

Network::Network(Simulator* simulator, const Topology* topology,
                 LinkParams params, std::uint64_t seed,
                 telemetry::Telemetry* telemetry)
    : simulator_(simulator),
      topology_(topology),
      params_(params),
      rng_(seed),
      owned_telem_(telemetry != nullptr
                       ? nullptr
                       : std::make_unique<vegvisir::telemetry::Telemetry>()),
      telem_(telemetry != nullptr ? telemetry : owned_telem_.get()),
      c_messages_sent_(telem_->metrics.GetCounter("net.messages_sent")),
      c_messages_delivered_(
          telem_->metrics.GetCounter("net.messages_delivered")),
      c_messages_dropped_(telem_->metrics.GetCounter("net.messages_dropped")),
      c_messages_unreachable_(
          telem_->metrics.GetCounter("net.messages_unreachable")),
      c_messages_dead_letter_(
          telem_->metrics.GetCounter("net.messages_dead_letter")),
      c_bytes_sent_(telem_->metrics.GetCounter("net.bytes_sent")),
      c_bytes_delivered_(telem_->metrics.GetCounter("net.bytes_delivered")),
      h_message_bytes_(telem_->metrics.GetHistogram(
          "net.message_bytes", vegvisir::telemetry::PowerOfTwoBounds(16))) {}

void Network::Register(NodeId node, Handler handler, EnergyMeter* meter) {
  endpoints_[node] = Endpoint{std::move(handler), meter};
}

void Network::Deregister(NodeId node) { endpoints_.erase(node); }

bool Network::Send(NodeId from, NodeId to, Bytes payload) {
  const TimeMs now = simulator_->now();
  if (!topology_->Connected(from, to, now) ||
      (injector_ != nullptr && !injector_->LinkUp(from, to, now))) {
    c_messages_unreachable_.Inc();
    return false;
  }

  c_messages_sent_.Inc();
  c_bytes_sent_.Inc(payload.size());
  h_message_bytes_.Observe(static_cast<double>(payload.size()));
  if (auto it = endpoints_.find(from);
      it != endpoints_.end() && it->second.meter != nullptr) {
    it->second.meter->AddTx(payload.size());
  }

  if (rng_.NextBool(params_.drop_probability)) {
    c_messages_dropped_.Inc();
    return true;  // transmitted, but lost in the air
  }

  // Transmission delay is charged for the bytes the radio carried —
  // the original payload — even if the injector then mangles them.
  const TimeMs delay =
      params_.base_latency_ms +
      static_cast<TimeMs>(static_cast<double>(payload.size()) /
                          params_.bytes_per_ms);

  if (injector_ == nullptr) {
    ScheduleDelivery(from, to, std::move(payload), delay);
    return true;
  }
  for (FaultInjector::Delivery& d :
       injector_->OnSend(from, to, now, std::move(payload))) {
    ScheduleDelivery(from, to, std::move(d.payload), delay + d.extra_delay_ms);
  }
  return true;
}

void Network::ScheduleDelivery(NodeId from, NodeId to, Bytes payload,
                               TimeMs delay) {
  simulator_->ScheduleAfter(
      delay, [this, from, to, payload = std::move(payload)]() {
        const auto it = endpoints_.find(to);
        if (it == endpoints_.end()) {
          c_messages_dead_letter_.Inc();
          return;
        }
        c_messages_delivered_.Inc();
        c_bytes_delivered_.Inc(payload.size());
        if (it->second.meter != nullptr) it->second.meter->AddRx(payload.size());
        it->second.handler(from, payload);
      });
}

NetworkStats Network::stats() const {
  NetworkStats s;
  s.messages_sent = c_messages_sent_.value();
  s.messages_delivered = c_messages_delivered_.value();
  s.messages_dropped = c_messages_dropped_.value();
  s.messages_unreachable = c_messages_unreachable_.value();
  s.messages_dead_letter = c_messages_dead_letter_.value();
  s.bytes_sent = c_bytes_sent_.value();
  s.bytes_delivered = c_bytes_delivered_.value();
  return s;
}

}  // namespace vegvisir::sim
