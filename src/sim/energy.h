// Per-node energy accounting.
//
// The paper's central energy claim is *relative*: Vegvisir spends no
// proof-of-work cycles and little radio time, so it is "easy on the
// batteries" compared to Nakamoto-style chains. We therefore model
// energy as operation counts times per-operation costs. The defaults
// are order-of-magnitude figures for a BLE-class IoT radio and a
// Cortex-M-class MCU (documented in EXPERIMENTS.md); experiment E4
// sweeps them to show the conclusion is insensitive to the constants.
#pragma once

#include <cstdint>

namespace vegvisir::sim {

struct EnergyParams {
  double tx_nj_per_byte = 230.0;    // BLE transmit  (~0.23 uJ/B)
  double rx_nj_per_byte = 180.0;    // BLE receive
  double hash_nj_per_byte = 6.0;    // SHA-256 on an MCU
  double sign_nj = 1.4e6;           // Ed25519 sign  (~1.4 mJ)
  double verify_nj = 3.6e6;         // Ed25519 verify
  double pow_hash_nj = 500.0;       // one PoW attempt (80-byte header hash)
};

class EnergyMeter {
 public:
  explicit EnergyMeter(EnergyParams params = {}) : params_(params) {}

  void AddTx(std::uint64_t bytes) { tx_nj_ += params_.tx_nj_per_byte * bytes; }
  void AddRx(std::uint64_t bytes) { rx_nj_ += params_.rx_nj_per_byte * bytes; }
  void AddHash(std::uint64_t bytes) {
    hash_nj_ += params_.hash_nj_per_byte * bytes;
  }
  void AddSign() { sign_nj_ += params_.sign_nj; }
  void AddVerify() { verify_nj_ += params_.verify_nj; }
  void AddPowHashes(std::uint64_t attempts) {
    pow_nj_ += params_.pow_hash_nj * attempts;
  }

  double radio_nj() const { return tx_nj_ + rx_nj_; }
  double crypto_nj() const { return hash_nj_ + sign_nj_ + verify_nj_; }
  double pow_nj() const { return pow_nj_; }
  double total_nj() const { return radio_nj() + crypto_nj() + pow_nj_; }
  double total_mj() const { return total_nj() * 1e-6; }

  const EnergyParams& params() const { return params_; }

 private:
  EnergyParams params_;
  double tx_nj_ = 0, rx_nj_ = 0;
  double hash_nj_ = 0, sign_nj_ = 0, verify_nj_ = 0;
  double pow_nj_ = 0;
};

}  // namespace vegvisir::sim
