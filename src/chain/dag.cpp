#include "chain/dag.h"

#include <algorithm>
#include <cstring>
#include <queue>

#include "crypto/sha256.h"

namespace vegvisir::chain {
namespace {

const std::vector<BlockHash> kNoHashes;
const std::string kNoCreator;

}  // namespace

Dag::Dag(Block genesis) {
  genesis_hash_ = genesis.hash();
  Entry e;
  e.parents = genesis.header().parents;  // empty for a true genesis
  e.creator = genesis.header().user_id;
  e.timestamp = genesis.header().timestamp_ms;
  e.encoded_size = genesis.EncodedSize();
  e.block = std::move(genesis);
  stored_count_ = 1;
  stored_bytes_ = e.encoded_size;
  frontier_.insert(genesis_hash_);
  entries_.emplace(genesis_hash_, std::move(e));
}

const Dag::Entry* Dag::FindEntry(const BlockHash& h) const {
  const auto it = entries_.find(h);
  return it == entries_.end() ? nullptr : &it->second;
}

Presence Dag::PresenceOf(const BlockHash& h) const {
  const Entry* e = FindEntry(h);
  if (e == nullptr) return Presence::kAbsent;
  return e->block.has_value() ? Presence::kStored : Presence::kEvicted;
}

const Block* Dag::Find(const BlockHash& h) const {
  const Entry* e = FindEntry(h);
  if (e == nullptr || !e->block.has_value()) return nullptr;
  return &*e->block;
}

Status Dag::Insert(Block block) {
  const BlockHash h = block.hash();
  if (entries_.count(h) > 0) {
    return AlreadyExistsError("block " + HashShort(h));
  }
  if (block.header().parents.empty()) {
    return FailedPreconditionError(
        "parentless block is not this chain's genesis");
  }
  for (const BlockHash& p : block.header().parents) {
    if (entries_.count(p) == 0) {
      return NotFoundError("missing parent " + HashShort(p));
    }
  }

  Entry e;
  e.parents = block.header().parents;
  e.creator = block.header().user_id;
  e.timestamp = block.header().timestamp_ms;
  e.encoded_size = block.EncodedSize();
  e.block = std::move(block);

  for (const BlockHash& p : e.parents) {
    entries_[p].children.push_back(h);
    frontier_.erase(p);
  }
  frontier_.insert(h);
  stored_count_ += 1;
  stored_bytes_ += e.encoded_size;
  entries_.emplace(h, std::move(e));
  return Status::Ok();
}

std::vector<BlockHash> Dag::Frontier() const {
  return std::vector<BlockHash>(frontier_.begin(), frontier_.end());
}

std::vector<BlockHash> Dag::FrontierLevel(int n) const {
  std::set<BlockHash> level(frontier_.begin(), frontier_.end());
  std::set<BlockHash> boundary = level;  // blocks added at the last level
  for (int i = 1; i < n; ++i) {
    std::set<BlockHash> next_boundary;
    for (const BlockHash& h : boundary) {
      const Entry* e = FindEntry(h);
      for (const BlockHash& p : e->parents) {
        if (level.insert(p).second) next_boundary.insert(p);
      }
    }
    if (next_boundary.empty()) break;  // reached genesis everywhere
    boundary = std::move(next_boundary);
  }
  return std::vector<BlockHash>(level.begin(), level.end());
}

BlockHash Dag::FrontierDigest() const {
  crypto::Sha256 hasher;
  for (const BlockHash& h : frontier_) {  // std::set: already sorted
    hasher.Update(ByteSpan(h.data(), h.size()));
  }
  const crypto::Sha256Digest digest = hasher.Finish();
  BlockHash out;
  std::memcpy(out.data(), digest.data(), out.size());
  return out;
}

const std::vector<BlockHash>& Dag::ParentsOf(const BlockHash& h) const {
  const Entry* e = FindEntry(h);
  return e == nullptr ? kNoHashes : e->parents;
}

const std::vector<BlockHash>& Dag::ChildrenOf(const BlockHash& h) const {
  const Entry* e = FindEntry(h);
  return e == nullptr ? kNoHashes : e->children;
}

const std::string& Dag::CreatorOf(const BlockHash& h) const {
  const Entry* e = FindEntry(h);
  return e == nullptr ? kNoCreator : e->creator;
}

std::uint64_t Dag::TimestampOf(const BlockHash& h) const {
  const Entry* e = FindEntry(h);
  return e == nullptr ? 0 : e->timestamp;
}

std::vector<BlockHash> Dag::TopologicalOrder() const {
  // Kahn's algorithm; the ready set is a min-heap on block hash so the
  // order is deterministic across replicas.
  std::unordered_map<BlockHash, std::size_t, BlockHashHasher> pending_parents;
  pending_parents.reserve(entries_.size());
  for (const auto& [h, e] : entries_) {
    pending_parents[h] = e.parents.size();
  }
  std::priority_queue<BlockHash, std::vector<BlockHash>,
                      std::greater<BlockHash>>
      ready;
  ready.push(genesis_hash_);

  std::vector<BlockHash> order;
  order.reserve(entries_.size());
  while (!ready.empty()) {
    const BlockHash h = ready.top();
    ready.pop();
    order.push_back(h);
    for (const BlockHash& c : FindEntry(h)->children) {
      if (--pending_parents[c] == 0) ready.push(c);
    }
  }
  return order;
}

bool Dag::IsAncestor(const BlockHash& ancestor, const BlockHash& descendant,
                     bool include_self) const {
  if (ancestor == descendant) return include_self;
  if (!Contains(ancestor) || !Contains(descendant)) return false;
  // Walk upward from the descendant.
  std::set<BlockHash> visited;
  std::vector<BlockHash> stack = {descendant};
  while (!stack.empty()) {
    const BlockHash h = stack.back();
    stack.pop_back();
    for (const BlockHash& p : FindEntry(h)->parents) {
      if (p == ancestor) return true;
      if (visited.insert(p).second) stack.push_back(p);
    }
  }
  return false;
}

std::set<BlockHash> Dag::Ancestors(const BlockHash& h) const {
  std::set<BlockHash> result;
  if (!Contains(h)) return result;
  std::vector<BlockHash> stack = {h};
  while (!stack.empty()) {
    const BlockHash cur = stack.back();
    stack.pop_back();
    for (const BlockHash& p : FindEntry(cur)->parents) {
      if (result.insert(p).second) stack.push_back(p);
    }
  }
  return result;
}

std::set<BlockHash> Dag::Descendants(const BlockHash& h) const {
  std::set<BlockHash> result;
  if (!Contains(h)) return result;
  std::vector<BlockHash> stack = {h};
  while (!stack.empty()) {
    const BlockHash cur = stack.back();
    stack.pop_back();
    for (const BlockHash& c : FindEntry(cur)->children) {
      if (result.insert(c).second) stack.push_back(c);
    }
  }
  return result;
}

std::uint64_t Dag::MaxParentTimestamp(
    const std::vector<BlockHash>& parents) const {
  std::uint64_t max_ts = 0;
  for (const BlockHash& p : parents) {
    max_ts = std::max(max_ts, TimestampOf(p));
  }
  return max_ts;
}

std::set<std::string> Dag::WitnessesOf(const BlockHash& h) const {
  std::set<std::string> witnesses;
  const Entry* e = FindEntry(h);
  if (e == nullptr) return witnesses;
  for (const BlockHash& d : Descendants(h)) {
    const std::string& creator = FindEntry(d)->creator;
    if (creator != e->creator) witnesses.insert(creator);
  }
  return witnesses;
}

Status Dag::Evict(const BlockHash& h) {
  const auto it = entries_.find(h);
  if (it == entries_.end()) return NotFoundError("block " + HashShort(h));
  Entry& e = it->second;
  if (!e.block.has_value()) {
    return FailedPreconditionError("block already evicted");
  }
  if (h == genesis_hash_) {
    return FailedPreconditionError("genesis cannot be evicted");
  }
  if (e.children.empty()) {
    return FailedPreconditionError("frontier block cannot be evicted");
  }
  e.block.reset();
  stored_count_ -= 1;
  stored_bytes_ -= e.encoded_size;
  return Status::Ok();
}

Status Dag::InsertEvictedStub(const BlockHash& hash,
                              std::vector<BlockHash> parents,
                              std::string creator,
                              std::uint64_t timestamp_ms,
                              std::size_t encoded_size) {
  if (entries_.count(hash) > 0) {
    return AlreadyExistsError("block " + HashShort(hash));
  }
  if (parents.empty()) {
    return FailedPreconditionError("stub cannot be a second genesis");
  }
  for (const BlockHash& p : parents) {
    if (entries_.count(p) == 0) {
      return NotFoundError("missing parent " + HashShort(p));
    }
  }
  Entry e;
  e.parents = std::move(parents);
  e.creator = std::move(creator);
  e.timestamp = timestamp_ms;
  e.encoded_size = encoded_size;
  for (const BlockHash& p : e.parents) {
    entries_[p].children.push_back(hash);
    frontier_.erase(p);
  }
  frontier_.insert(hash);
  entries_.emplace(hash, std::move(e));
  return Status::Ok();
}

Status Dag::Restore(Block block) {
  const auto it = entries_.find(block.hash());
  if (it == entries_.end()) {
    return NotFoundError("unknown block " + HashShort(block.hash()));
  }
  Entry& e = it->second;
  if (e.block.has_value()) {
    return AlreadyExistsError("block body already present");
  }
  stored_count_ += 1;
  stored_bytes_ += block.EncodedSize();
  e.encoded_size = block.EncodedSize();
  e.block = std::move(block);
  return Status::Ok();
}

std::vector<BlockHash> Dag::StoredOldestFirst() const {
  std::vector<BlockHash> stored;
  stored.reserve(stored_count_);
  for (const auto& [h, e] : entries_) {
    if (e.block.has_value()) stored.push_back(h);
  }
  std::sort(stored.begin(), stored.end(),
            [this](const BlockHash& a, const BlockHash& b) {
              const std::uint64_t ta = TimestampOf(a), tb = TimestampOf(b);
              return ta != tb ? ta < tb : a < b;
            });
  return stored;
}

void Dag::ForEachStored(const std::function<void(const Block&)>& fn) const {
  // Topological order, not entries_ bucket order: the callback is a
  // caller-visible emission channel, and callers digest or print what
  // they are handed (det_taint's callback-emit sink).
  for (const BlockHash& h : TopologicalOrder()) {
    const auto it = entries_.find(h);
    if (it != entries_.end() && it->second.block.has_value()) {
      fn(*it->second.block);
    }
  }
}

}  // namespace vegvisir::chain
