#include "chain/transaction.h"

#include "serial/limits.h"

namespace vegvisir::chain {

void Transaction::Encode(serial::Writer* w) const {
  w->WriteString(crdt_name);
  w->WriteString(op);
  w->WriteVarint(args.size());
  for (const crdt::Value& v : args) v.Encode(w);
}

Status Transaction::Decode(serial::Reader* r, Transaction* out) {
  VEGVISIR_RETURN_IF_ERROR(r->ReadString(&out->crdt_name));
  VEGVISIR_RETURN_IF_ERROR(r->ReadString(&out->op));
  std::uint64_t count;
  VEGVISIR_RETURN_IF_ERROR(r->ReadVarint(&count));
  VEGVISIR_RETURN_IF_ERROR(serial::CheckWireCount(
      count, serial::limits::kMaxTransactionArgs, r->remaining(), 1,
      "transaction argument"));
  out->args.clear();
  out->args.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    crdt::Value v;
    VEGVISIR_RETURN_IF_ERROR(crdt::Value::Decode(r, &v));
    out->args.push_back(std::move(v));
  }
  return Status::Ok();
}

std::size_t Transaction::EncodedSize() const {
  serial::Writer w;
  Encode(&w);
  return w.buffer().size();
}

}  // namespace vegvisir::chain
