#include "chain/block.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "crypto/sha256.h"
#include "serial/limits.h"

namespace vegvisir::chain {
namespace {

// Doubles are serialized via their IEEE-754 bit pattern; identical on
// all supported platforms.
std::uint64_t DoubleBits(double d) { return std::bit_cast<std::uint64_t>(d); }
double DoubleFromBits(std::uint64_t b) { return std::bit_cast<double>(b); }

}  // namespace

void BlockHeader::Encode(serial::Writer* w) const {
  w->WriteString(user_id);
  w->WriteU64(timestamp_ms);
  w->WriteBool(location.has_value());
  if (location.has_value()) {
    w->WriteU64(DoubleBits(location->latitude));
    w->WriteU64(DoubleBits(location->longitude));
  }
  w->WriteVarint(parents.size());
  for (const BlockHash& p : parents) w->WriteFixed(p);
}

Status BlockHeader::Decode(serial::Reader* r, BlockHeader* out) {
  VEGVISIR_RETURN_IF_ERROR(r->ReadString(&out->user_id));
  VEGVISIR_RETURN_IF_ERROR(r->ReadU64(&out->timestamp_ms));
  bool has_location;
  VEGVISIR_RETURN_IF_ERROR(r->ReadBool(&has_location));
  if (has_location) {
    std::uint64_t lat, lon;
    VEGVISIR_RETURN_IF_ERROR(r->ReadU64(&lat));
    VEGVISIR_RETURN_IF_ERROR(r->ReadU64(&lon));
    out->location = GeoLocation{DoubleFromBits(lat), DoubleFromBits(lon)};
  } else {
    out->location.reset();
  }
  std::uint64_t count;
  VEGVISIR_RETURN_IF_ERROR(r->ReadVarint(&count));
  VEGVISIR_RETURN_IF_ERROR(serial::CheckWireCount(
      count, serial::limits::kMaxBlockParents, r->remaining(),
      sizeof(BlockHash), "parent"));
  out->parents.clear();
  out->parents.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    BlockHash h;
    VEGVISIR_RETURN_IF_ERROR(r->ReadFixed(&h));
    out->parents.push_back(h);
  }
  // Canonical form: parents strictly ascending (also rejects
  // duplicate parents).
  for (std::size_t i = 1; i < out->parents.size(); ++i) {
    if (!(out->parents[i - 1] < out->parents[i])) {
      return InvalidArgumentError("parents not in canonical order");
    }
  }
  return Status::Ok();
}

Block Block::Create(BlockHeader header, std::vector<Transaction> txns,
                    const crypto::KeyPair& signer) {
  std::sort(header.parents.begin(), header.parents.end());
  header.parents.erase(
      std::unique(header.parents.begin(), header.parents.end()),
      header.parents.end());
  Block b;
  b.header_ = std::move(header);
  b.txns_ = std::move(txns);
  b.signature_ = signer.Sign(b.SigningPayload());
  b.RecomputeDerived();
  return b;
}

Bytes Block::SigningPayload() const {
  serial::Writer w;
  w.WriteString("vegvisir-block-v1");
  header_.Encode(&w);
  w.WriteVarint(txns_.size());
  for (const Transaction& tx : txns_) tx.Encode(&w);
  return w.Take();
}

Bytes Block::Serialize() const {
  serial::Writer w;
  header_.Encode(&w);
  w.WriteVarint(txns_.size());
  for (const Transaction& tx : txns_) tx.Encode(&w);
  w.WriteFixed(signature_.bytes);
  return w.Take();
}

StatusOr<Block> Block::Deserialize(ByteSpan data) {
  serial::Reader r(data);
  Block b;
  VEGVISIR_RETURN_IF_ERROR(BlockHeader::Decode(&r, &b.header_));
  std::uint64_t count;
  VEGVISIR_RETURN_IF_ERROR(r.ReadVarint(&count));
  VEGVISIR_RETURN_IF_ERROR(serial::CheckWireCount(
      count, serial::limits::kMaxBlockTransactions, r.remaining(), 1,
      "transaction"));
  b.txns_.clear();
  b.txns_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Transaction tx;
    VEGVISIR_RETURN_IF_ERROR(Transaction::Decode(&r, &tx));
    b.txns_.push_back(std::move(tx));
  }
  VEGVISIR_RETURN_IF_ERROR(r.ReadFixed(&b.signature_.bytes));
  VEGVISIR_RETURN_IF_ERROR(r.ExpectEnd());
  b.RecomputeDerived();
  return b;
}

void Block::RecomputeDerived() {
  const Bytes encoded = Serialize();
  encoded_size_ = encoded.size();
  const crypto::Sha256Digest digest = crypto::Sha256::Hash(encoded);
  std::memcpy(hash_.data(), digest.data(), hash_.size());
}

bool Block::VerifySignature(const crypto::PublicKey& key) const {
  return crypto::Verify(key, SigningPayload(), signature_);
}

}  // namespace vegvisir::chain
