#include "chain/validation.h"

#include <optional>
#include <utility>

namespace vegvisir::chain {
namespace {

ValidationResult Reject(Status s) {
  return ValidationResult{BlockVerdict::kReject, std::move(s)};
}

ValidationResult Retry(Status s) {
  return ValidationResult{BlockVerdict::kRetryLater, std::move(s)};
}

}  // namespace

ValidationResult ValidateBlock(const Block& block, const Dag& dag,
                               const MembershipView& membership,
                               std::uint64_t local_time_ms,
                               const ValidationParams& params,
                               exec::BatchVerifier* presig) {
  // A parentless block can only be a (different chain's) genesis.
  if (block.header().parents.empty()) {
    return Reject(FailedPreconditionError("parentless non-genesis block"));
  }

  // Check 4 runs first whenever it can: if the creator is already
  // known, authenticate before any retryable verdict. A block that
  // fails its signature is garbage (wire corruption or forgery) no
  // matter which parents it names — returning Retry for its missing
  // (possibly mangled, never-to-arrive) parents would park it in
  // quarantine indefinitely.
  const Certificate* cert =
      membership.FindCertificate(block.header().user_id);
  if (cert != nullptr) {
    // Consume a batched pre-verification verdict when one exists for
    // this exact (hash, key) pair; anything else — no cache, no
    // entry, or a certificate that changed since the job was enqueued
    // — verifies synchronously right here. Lookup blocks on in-flight
    // jobs (EXCLUDES contract): legal here because validation runs on
    // the serial owner thread with no mutex held — the DAG, CSM and
    // quarantine it touches are all single-threaded by design.
    std::optional<bool> cached;
    if (presig != nullptr) {
      cached = presig->Lookup(block.hash(), cert->public_key);
    }
    const bool signature_ok =
        cached.has_value() ? *cached
                           : block.VerifySignature(cert->public_key);
    if (!signature_ok) {
      return Reject(UnauthenticatedError("bad signature on block"));
    }
  }

  // Check 2: parents present. Missing parents on an authenticated (or
  // not-yet-authenticatable) block are a reconciliation gap, not an
  // attack.
  for (const BlockHash& p : block.header().parents) {
    if (!dag.Contains(p)) {
      return Retry(NotFoundError("missing parent " + HashShort(p)));
    }
  }

  // Check 1: creator is a member. An unknown creator may simply have
  // enrolled in a partition we have not merged yet.
  if (cert == nullptr) {
    return Retry(
        UnauthenticatedError("unknown creator " + block.header().user_id));
  }

  // Check 3: timestamp strictly after every parent...
  const std::uint64_t min_exclusive =
      dag.MaxParentTimestamp(block.header().parents);
  if (block.header().timestamp_ms <= min_exclusive) {
    return Reject(FailedPreconditionError(
        "timestamp " + std::to_string(block.header().timestamp_ms) +
        " not after parents' max " + std::to_string(min_exclusive)));
  }
  // ... but not ahead of our clock (beyond allowed skew). Our clock
  // may simply be behind; quarantine instead of rejecting so that all
  // replicas eventually agree.
  if (block.header().timestamp_ms > local_time_ms + params.max_clock_skew_ms) {
    return Retry(FailedPreconditionError("timestamp in the local future"));
  }

  // Causal revocation check: the block is invalid iff its creator was
  // revoked somewhere in the block's own causal past. Revocations
  // elsewhere (concurrent or later) do not retroactively invalidate
  // it — removing it would violate tamperproofness.
  if (membership.IsRevoked(block.header().user_id)) {
    for (const BlockHash& rev : membership.RevocationBlocksOf(
             block.header().user_id)) {
      for (const BlockHash& parent : block.header().parents) {
        if (dag.IsAncestor(rev, parent, /*include_self=*/true)) {
          return Reject(PermissionDeniedError(
              "creator revoked in block's causal past"));
        }
      }
    }
  }

  return ValidationResult{BlockVerdict::kValid, Status::Ok()};
}

std::vector<exec::VerifyJob> MakeVerifyJobs(
    const std::vector<const Block*>& blocks, const MembershipView& membership,
    const exec::BatchVerifier* dedup) {
  std::vector<exec::VerifyJob> jobs;
  jobs.reserve(blocks.size());
  for (const Block* block : blocks) {
    if (block == nullptr) continue;
    const Certificate* cert =
        membership.FindCertificate(block->header().user_id);
    if (cert == nullptr) continue;  // pre-verifiable once enrolment lands
    if (dedup != nullptr && dedup->Cached(block->hash(), cert->public_key)) {
      continue;
    }
    exec::VerifyJob job;
    job.id = block->hash();
    job.key = cert->public_key;
    job.message = block->SigningPayload();
    job.signature = block->signature();
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace vegvisir::chain
