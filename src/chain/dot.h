// Graphviz export and transaction-id utilities.
//
// `DagToDot` renders the replica for debugging and documentation
// (paper Fig. 1 is exactly such a drawing). Transaction ids — the
// "<block-hash-hex>:<index>" strings the CSM hands to CRDTs — can be
// parsed back to block hashes, which makes causal queries over
// transactions possible: HappensBefore answers whether one
// transaction is in another's causal past.
#pragma once

#include <string>

#include "chain/dag.h"

namespace vegvisir::chain {

struct DotOptions {
  bool show_creator = true;
  bool show_timestamp = false;
  bool mark_frontier = true;   // frontier blocks drawn doubled
  bool mark_evicted = true;    // evicted stubs drawn dashed
};

// GraphViz `digraph` text; edges point from child to parent (blocks
// reference their parents, as in the paper's figures).
std::string DagToDot(const Dag& dag, const DotOptions& options = {});

// Parses "<64-hex>:<index>" into the containing block's hash.
Status ParseTxId(const std::string& tx_id, BlockHash* block,
                 std::size_t* index);

// True iff transaction `a` is in the causal past of transaction `b`
// (strictly: same block counts as ordered by index). False when
// either id is malformed or unknown, or when they are concurrent.
bool HappensBefore(const Dag& dag, const std::string& tx_a,
                   const std::string& tx_b);

}  // namespace vegvisir::chain
