#include "chain/proof.h"

#include <algorithm>
#include <map>
#include <queue>

#include "serial/codec.h"
#include "serial/limits.h"

namespace vegvisir::chain {

Bytes WitnessProof::Serialize() const {
  serial::Writer w;
  w.WriteString("vegvisir-witness-proof-v1");
  w.WriteFixed(target);
  w.WriteVarint(paths.size());
  for (const auto& path : paths) {
    w.WriteVarint(path.size());
    for (const Bytes& raw : path) w.WriteBytes(raw);
  }
  w.WriteVarint(certificates.size());
  for (const Certificate& cert : certificates) cert.Encode(&w);
  return w.Take();
}

StatusOr<WitnessProof> WitnessProof::Deserialize(ByteSpan data) {
  serial::Reader r(data);
  std::string magic;
  VEGVISIR_RETURN_IF_ERROR(r.ReadString(&magic));
  if (magic != "vegvisir-witness-proof-v1") {
    return InvalidArgumentError("bad proof magic");
  }
  WitnessProof proof;
  VEGVISIR_RETURN_IF_ERROR(r.ReadFixed(&proof.target));
  std::uint64_t path_count;
  VEGVISIR_RETURN_IF_ERROR(r.ReadVarint(&path_count));
  VEGVISIR_RETURN_IF_ERROR(serial::CheckWireCount(
      path_count, serial::limits::kMaxProofPaths, r.remaining(), 1, "path"));
  for (std::uint64_t i = 0; i < path_count; ++i) {
    std::uint64_t block_count;
    VEGVISIR_RETURN_IF_ERROR(r.ReadVarint(&block_count));
    VEGVISIR_RETURN_IF_ERROR(serial::CheckWireCount(
        block_count, serial::limits::kMaxProofPathBlocks, r.remaining(), 1,
        "block"));
    std::vector<Bytes> path;
    for (std::uint64_t b = 0; b < block_count; ++b) {
      Bytes raw;
      VEGVISIR_RETURN_IF_ERROR(r.ReadBytes(&raw));
      path.push_back(std::move(raw));
    }
    proof.paths.push_back(std::move(path));
  }
  std::uint64_t cert_count;
  VEGVISIR_RETURN_IF_ERROR(r.ReadVarint(&cert_count));
  VEGVISIR_RETURN_IF_ERROR(serial::CheckWireCount(
      cert_count, serial::limits::kMaxProofCerts, r.remaining(), 1, "cert"));
  for (std::uint64_t i = 0; i < cert_count; ++i) {
    Certificate cert;
    VEGVISIR_RETURN_IF_ERROR(Certificate::Decode(&r, &cert));
    proof.certificates.push_back(std::move(cert));
  }
  VEGVISIR_RETURN_IF_ERROR(r.ExpectEnd());
  return proof;
}

namespace {

// Shortest parent-link path from `from` down to `target`
// (from is a descendant of target). Returns hashes from -> target.
std::vector<BlockHash> PathDown(const Dag& dag, const BlockHash& from,
                                const BlockHash& target) {
  std::map<BlockHash, BlockHash> came_from;
  std::queue<BlockHash> queue;
  queue.push(from);
  came_from[from] = from;
  while (!queue.empty()) {
    const BlockHash cur = queue.front();
    queue.pop();
    if (cur == target) break;
    for (const BlockHash& p : dag.ParentsOf(cur)) {
      if (came_from.emplace(p, cur).second) queue.push(p);
    }
  }
  std::vector<BlockHash> path;
  if (came_from.count(target) == 0) return path;  // not a descendant
  // Walk back from target to from, then reverse.
  BlockHash cur = target;
  while (true) {
    path.push_back(cur);
    if (cur == from) break;
    cur = came_from.at(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

StatusOr<WitnessProof> BuildWitnessProof(const Dag& dag,
                                         const MembershipView& membership,
                                         const BlockHash& target,
                                         std::size_t k) {
  if (!dag.Contains(target)) return NotFoundError("unknown target block");
  const std::set<std::string> witnesses = dag.WitnessesOf(target);
  if (witnesses.size() < k) {
    return FailedPreconditionError(
        "only " + std::to_string(witnesses.size()) + " witnesses, need " +
        std::to_string(k));
  }

  // For each witness (sorted, deterministic), find one of their blocks
  // among the target's descendants.
  const std::set<BlockHash> descendants = dag.Descendants(target);
  WitnessProof proof;
  proof.target = target;
  std::set<std::string> creators_needed;
  std::size_t picked = 0;
  for (const std::string& witness : witnesses) {
    if (picked == k) break;
    const BlockHash* chosen = nullptr;
    for (const BlockHash& d : descendants) {
      if (dag.CreatorOf(d) == witness) {
        chosen = &d;
        break;
      }
    }
    if (chosen == nullptr) continue;  // cannot happen
    const std::vector<BlockHash> path = PathDown(dag, *chosen, target);
    std::vector<Bytes> raw_path;
    for (const BlockHash& h : path) {
      const Block* block = dag.Find(h);
      if (block == nullptr) {
        return NotFoundError("block body evicted; refetch before proving");
      }
      raw_path.push_back(block->Serialize());
      creators_needed.insert(block->header().user_id);
    }
    proof.paths.push_back(std::move(raw_path));
    ++picked;
  }
  if (picked < k) {
    return FailedPreconditionError("could not assemble k witness paths");
  }

  for (const std::string& creator : creators_needed) {
    const Certificate* cert = membership.FindCertificate(creator);
    if (cert == nullptr) {
      return NotFoundError("no certificate for creator " + creator);
    }
    proof.certificates.push_back(*cert);
  }
  return proof;
}

Status VerifyWitnessProof(const WitnessProof& proof,
                          const crypto::PublicKey& ca_public_key,
                          std::size_t k) {
  // Certificates: trusted iff signed by the CA.
  std::map<std::string, const Certificate*> certs;
  for (const Certificate& cert : proof.certificates) {
    if (!VerifyCertificate(cert, ca_public_key)) {
      return UnauthenticatedError("certificate for '" + cert.user_id +
                                  "' not signed by the chain CA");
    }
    certs[cert.user_id] = &cert;
  }

  std::string target_creator;
  std::set<std::string> witness_heads;

  for (const auto& raw_path : proof.paths) {
    if (raw_path.empty()) return InvalidArgumentError("empty proof path");
    std::vector<Block> path;
    for (const Bytes& raw : raw_path) {
      auto block = Block::Deserialize(raw);
      if (!block.ok()) return block.status();
      path.push_back(*std::move(block));
    }
    // The path must end at the target.
    if (!(path.back().hash() == proof.target)) {
      return FailedPreconditionError("path does not end at the target");
    }
    target_creator = path.back().header().user_id;

    for (std::size_t i = 0; i < path.size(); ++i) {
      const Block& block = path[i];
      // Signature against a CA-certified key.
      const auto cert_it = certs.find(block.header().user_id);
      if (cert_it == certs.end()) {
        return UnauthenticatedError("missing certificate for '" +
                                    block.header().user_id + "'");
      }
      if (!block.VerifySignature(cert_it->second->public_key)) {
        return UnauthenticatedError("bad signature in proof path");
      }
      // Hash link to the next block down the path.
      if (i + 1 < path.size()) {
        const BlockHash& next = path[i + 1].hash();
        const auto& parents = block.header().parents;
        if (std::find(parents.begin(), parents.end(), next) ==
            parents.end()) {
          return FailedPreconditionError("broken hash link in proof path");
        }
        if (block.header().timestamp_ms <= path[i + 1].header().timestamp_ms) {
          return FailedPreconditionError("timestamps not increasing");
        }
      }
    }
    witness_heads.insert(path.front().header().user_id);
  }

  witness_heads.erase(target_creator);  // self-acks do not count
  if (witness_heads.size() < k) {
    return FailedPreconditionError(
        "proof shows only " + std::to_string(witness_heads.size()) +
        " distinct witnesses, need " + std::to_string(k));
  }
  return Status::Ok();
}

}  // namespace vegvisir::chain
