// Post-hoc chain auditing.
//
// The disaster-response use case (paper §II-A) ends with "once the
// state of emergency is over, the log is reviewed". This module is
// that review: it re-validates an entire replica from first
// principles — every hash, every signature, every timestamp edge —
// and extracts per-CRDT transaction trails with their authenticated
// provenance (who, when, where). It trusts nothing the node computed
// earlier, so it also serves as the integrity check after loading a
// replica from disk (chain/store.h).
#pragma once

#include <string>
#include <vector>

#include "chain/dag.h"
#include "chain/validation.h"

namespace vegvisir::chain {

struct AuditIssue {
  BlockHash block{};
  std::string what;
};

struct AuditReport {
  std::size_t blocks_checked = 0;
  std::size_t signatures_verified = 0;
  std::size_t bodies_missing = 0;  // evicted stubs: hash-verified only
  std::vector<AuditIssue> issues;

  bool clean() const { return issues.empty(); }
};

// Re-validates the whole DAG: recomputed hashes, creator signatures
// against the membership's certificates, strictly-increasing
// timestamps along every edge, and certificate validity against the
// chain CA. Evicted stubs cannot have their bodies checked and are
// counted in `bodies_missing`.
AuditReport AuditDag(const Dag& dag, const MembershipView& membership);

// One authenticated log entry for the review trail.
struct ProvenanceEntry {
  BlockHash block{};
  std::string creator;
  std::uint64_t timestamp_ms = 0;
  std::optional<GeoLocation> location;
  Transaction transaction;
};

// Every transaction on `crdt_name`, in topological (causal) order,
// with its authenticated provenance. Empty name matches all CRDTs.
std::vector<ProvenanceEntry> ExtractProvenance(const Dag& dag,
                                               const std::string& crdt_name);

}  // namespace vegvisir::chain
