#include "chain/audit.h"

#include <cstring>

#include "crypto/sha256.h"

namespace vegvisir::chain {

AuditReport AuditDag(const Dag& dag, const MembershipView& membership) {
  AuditReport report;
  for (const BlockHash& h : dag.TopologicalOrder()) {
    ++report.blocks_checked;
    const Block* block = dag.Find(h);
    if (block == nullptr) {
      // Evicted: the hash itself is still pinned by its children's
      // parent links, so history cannot have been rewritten — but the
      // body is elsewhere (support chain) and cannot be re-checked
      // here.
      ++report.bodies_missing;
      continue;
    }

    // 1. The stored bytes must hash to the key they are filed under
    //    (defends against bit rot / tampering in loaded replicas).
    const Bytes raw = block->Serialize();
    const crypto::Sha256Digest digest = crypto::Sha256::Hash(raw);
    BlockHash recomputed;
    std::memcpy(recomputed.data(), digest.data(), recomputed.size());
    if (!(recomputed == h)) {
      report.issues.push_back({h, "stored bytes do not hash to block id"});
      continue;
    }

    // 2. Signature against the creator's certificate.
    const Certificate* cert =
        membership.FindCertificate(block->header().user_id);
    if (cert == nullptr) {
      report.issues.push_back(
          {h, "creator '" + block->header().user_id + "' has no certificate"});
    } else if (!block->VerifySignature(cert->public_key)) {
      report.issues.push_back({h, "signature does not verify"});
    } else {
      ++report.signatures_verified;
    }

    // 3. Timestamps strictly increase along every parent edge.
    if (!block->header().parents.empty()) {
      const std::uint64_t max_parent =
          dag.MaxParentTimestamp(block->header().parents);
      if (block->header().timestamp_ms <= max_parent) {
        report.issues.push_back({h, "timestamp not after parents'"});
      }
    }
  }
  return report;
}

std::vector<ProvenanceEntry> ExtractProvenance(const Dag& dag,
                                               const std::string& crdt_name) {
  std::vector<ProvenanceEntry> entries;
  for (const BlockHash& h : dag.TopologicalOrder()) {
    const Block* block = dag.Find(h);
    if (block == nullptr) continue;
    for (const Transaction& tx : block->transactions()) {
      if (!crdt_name.empty() && tx.crdt_name != crdt_name) continue;
      ProvenanceEntry entry;
      entry.block = h;
      entry.creator = block->header().user_id;
      entry.timestamp_ms = block->header().timestamp_ms;
      entry.location = block->header().location;
      entry.transaction = tx;
      entries.push_back(std::move(entry));
    }
  }
  return entries;
}

}  // namespace vegvisir::chain
