// Chain persistence: save and load a replica to a file.
//
// IoT devices reboot; a replica must survive power cycles without
// re-fetching its history over the radio. The on-disk format is a
// versioned header, the genesis block, every other stored block in
// topological order, the hashes of evicted stubs, and a SHA-256
// checksum over everything before it. Loading re-validates structure
// (the DAG insert rules) and the checksum, so a corrupted or tampered
// file is rejected rather than silently half-loaded. CSM state is not
// persisted: it is a pure function of the blocks and is deterministically
// rebuilt by replay (tested in store_test).
#pragma once

#include <string>

#include "chain/dag.h"
#include "util/status.h"

namespace vegvisir::chain {

// Serializes the DAG (stored bodies + evicted stubs) to bytes.
Bytes SerializeDag(const Dag& dag);

// Reconstructs a DAG from SerializeDag output. Fails on version or
// checksum mismatch, malformed blocks, or structural violations.
// Evicted stubs are restored as evicted (bodies must be re-fetched
// from a superpeer).
StatusOr<Dag> DeserializeDag(ByteSpan data);

// File convenience wrappers (atomic via write-to-temp + rename).
Status SaveDagToFile(const Dag& dag, const std::string& path);
StatusOr<Dag> LoadDagFromFile(const std::string& path);

}  // namespace vegvisir::chain
