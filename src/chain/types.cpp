#include "chain/types.h"

namespace vegvisir::chain {

std::string HashHex(const BlockHash& h) {
  return ToHex(ByteSpan(h.data(), h.size()));
}

std::string HashShort(const BlockHash& h) {
  return HashHex(h).substr(0, 8);
}

}  // namespace vegvisir::chain
