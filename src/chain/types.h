// Shared chain-layer identifiers.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "util/bytes.h"

namespace vegvisir::chain {

// SHA-256 of a block's canonical serialization; globally identifies
// the block, and the genesis hash identifies the whole chain.
using BlockHash = std::array<std::uint8_t, 32>;

// Hasher for unordered containers keyed by BlockHash.
struct BlockHashHasher {
  std::size_t operator()(const BlockHash& h) const {
    // The hash is already uniform; fold the first 8 bytes.
    std::size_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | h[i];
    return v;
  }
};

// Full lowercase hex of a hash.
std::string HashHex(const BlockHash& h);

// First 8 hex chars, for logs.
std::string HashShort(const BlockHash& h);

// Reserved CRDT names managed by the state machine itself.
inline constexpr const char* kUsersCrdtName = "__users__";  // U (2P-set)
inline constexpr const char* kOmegaCrdtName = "__omega__";  // Ω registry
inline constexpr const char* kMetaCrdtName = "__meta__";    // chain metadata

}  // namespace vegvisir::chain
