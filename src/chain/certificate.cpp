#include "chain/certificate.h"

namespace vegvisir::chain {

Bytes Certificate::SignedPayload() const {
  serial::Writer w;
  w.WriteString("vegvisir-cert-v1");
  w.WriteString(user_id);
  w.WriteFixed(public_key.bytes);
  w.WriteString(role);
  return w.Take();
}

void Certificate::Encode(serial::Writer* w) const {
  w->WriteString(user_id);
  w->WriteFixed(public_key.bytes);
  w->WriteString(role);
  w->WriteFixed(ca_signature.bytes);
}

Status Certificate::Decode(serial::Reader* r, Certificate* out) {
  VEGVISIR_RETURN_IF_ERROR(r->ReadString(&out->user_id));
  VEGVISIR_RETURN_IF_ERROR(r->ReadFixed(&out->public_key.bytes));
  VEGVISIR_RETURN_IF_ERROR(r->ReadString(&out->role));
  VEGVISIR_RETURN_IF_ERROR(r->ReadFixed(&out->ca_signature.bytes));
  return Status::Ok();
}

Bytes Certificate::Serialize() const {
  serial::Writer w;
  Encode(&w);
  return w.Take();
}

StatusOr<Certificate> Certificate::Deserialize(ByteSpan data) {
  serial::Reader r(data);
  Certificate cert;
  VEGVISIR_RETURN_IF_ERROR(Decode(&r, &cert));
  VEGVISIR_RETURN_IF_ERROR(r.ExpectEnd());
  return cert;
}

bool Certificate::operator==(const Certificate& other) const {
  return user_id == other.user_id && public_key == other.public_key &&
         role == other.role && ca_signature == other.ca_signature;
}

Certificate IssueCertificate(const std::string& user_id,
                             const crypto::PublicKey& public_key,
                             const std::string& role,
                             const crypto::KeyPair& ca) {
  Certificate cert;
  cert.user_id = user_id;
  cert.public_key = public_key;
  cert.role = role;
  cert.ca_signature = ca.Sign(cert.SignedPayload());
  return cert;
}

bool VerifyCertificate(const Certificate& cert,
                       const crypto::PublicKey& ca_public_key) {
  return crypto::Verify(ca_public_key, cert.SignedPayload(),
                        cert.ca_signature);
}

}  // namespace vegvisir::chain
