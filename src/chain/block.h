// Blocks (paper §IV-D, Fig. 2).
//
// A block = header + transactions + creator signature. The header
// carries the creator's user id, a timestamp, an optional physical
// location, and the hashes of all parent blocks. The block hash is
// the SHA-256 of the full canonical serialization (including the
// signature), so tampering with any field — or with any ancestor,
// through the parent-hash links — changes the hash and is detected.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "chain/transaction.h"
#include "chain/types.h"
#include "crypto/ed25519.h"
#include "serial/codec.h"
#include "util/status.h"

namespace vegvisir::chain {

// "if possible a physical location" — GPS degrees.
struct GeoLocation {
  double latitude = 0.0;
  double longitude = 0.0;

  bool operator==(const GeoLocation&) const = default;
};

struct BlockHeader {
  std::string user_id;
  std::uint64_t timestamp_ms = 0;
  std::optional<GeoLocation> location;
  // Sorted ascending — part of canonical form. Empty only for genesis.
  std::vector<BlockHash> parents;

  void Encode(serial::Writer* w) const;
  static Status Decode(serial::Reader* r, BlockHeader* out);

  bool operator==(const BlockHeader&) const = default;
};

class Block {
 public:
  Block() = default;

  // Assembles and signs a block. Sorts `parents` into canonical order.
  // An empty transaction list is legal and is how witness blocks are
  // made (paper §IV-H).
  static Block Create(BlockHeader header, std::vector<Transaction> txns,
                      const crypto::KeyPair& signer);

  const BlockHeader& header() const { return header_; }
  const std::vector<Transaction>& transactions() const { return txns_; }
  const crypto::Signature& signature() const { return signature_; }
  const BlockHash& hash() const { return hash_; }

  // The bytes covered by the creator's signature (header + txns).
  Bytes SigningPayload() const;

  // Full canonical serialization (wire format / hashing preimage).
  Bytes Serialize() const;
  static StatusOr<Block> Deserialize(ByteSpan data);

  // Serialized size in bytes (bandwidth/storage accounting).
  std::size_t EncodedSize() const { return encoded_size_; }

  // Signature check against the given key (validation uses the key
  // from the creator's certificate).
  bool VerifySignature(const crypto::PublicKey& key) const;

  bool operator==(const Block& other) const { return hash_ == other.hash_; }

 private:
  void RecomputeDerived();

  BlockHeader header_;
  std::vector<Transaction> txns_;
  crypto::Signature signature_{};
  BlockHash hash_{};
  std::size_t encoded_size_ = 0;
};

}  // namespace vegvisir::chain
