// Self-contained ancestry / witness proofs.
//
// Paper §V: a user presents "a proof-of-witness that their request
// has been placed on the blockchain" to an external party (a record
// database, a TEE program). That party does not hold the DAG, so the
// proof must be verifiable from block contents alone: it is the chain
// of blocks from each witness block down to the target, whose parent
// hashes link each block to the next. The verifier re-hashes every
// block, follows the links, and checks the creators' signatures
// against CA-signed certificates carried in the proof — trusting only
// the chain CA's public key.
#pragma once

#include <string>
#include <vector>

#include "chain/certificate.h"
#include "chain/dag.h"
#include "chain/validation.h"

namespace vegvisir::chain {

// A witness proof for one target block: for each claimed witness, a
// descending path of blocks witness -> ... -> target, plus the
// certificates needed to check every signature along the paths.
struct WitnessProof {
  BlockHash target{};
  // Paths are stored as serialized blocks, child before parent,
  // ending at (and including) the target block.
  std::vector<std::vector<Bytes>> paths;
  std::vector<Certificate> certificates;

  Bytes Serialize() const;
  static StatusOr<WitnessProof> Deserialize(ByteSpan data);
};

// Builds a proof that `target` has at least `k` distinct witnesses
// (creators of descendant blocks other than the target's creator).
// Fails with kFailedPrecondition if the local replica cannot show k
// witnesses, and with kNotFound if some needed block body is evicted.
StatusOr<WitnessProof> BuildWitnessProof(const Dag& dag,
                                         const MembershipView& membership,
                                         const BlockHash& target,
                                         std::size_t k);

// Verifies the proof with no access to a DAG: hash links, signatures,
// certificate CA signatures, timestamp monotonicity along each path,
// and that at least `k` distinct non-creator users appear as path
// heads. Only `ca_public_key` is trusted.
Status VerifyWitnessProof(const WitnessProof& proof,
                          const crypto::PublicKey& ca_public_key,
                          std::size_t k);

}  // namespace vegvisir::chain
