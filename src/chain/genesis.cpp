#include "chain/genesis.h"

#include "chain/types.h"

namespace vegvisir::chain {

Block GenesisBuilder::Build(const std::string& owner_user_id,
                            const crypto::KeyPair& owner_keys) const {
  const Certificate owner_cert = IssueCertificate(
      owner_user_id, owner_keys.public_key(), kOwnerRole, owner_keys);

  Transaction enrol;
  enrol.crdt_name = kUsersCrdtName;
  enrol.op = "add";
  enrol.args = {crdt::Value::OfBytes(owner_cert.Serialize())};

  Transaction meta;
  meta.crdt_name = kMetaCrdtName;
  meta.op = "put";
  meta.args = {crdt::Value::OfStr("name"), crdt::Value::OfStr(chain_name_)};

  BlockHeader header;
  header.user_id = owner_user_id;
  header.timestamp_ms = timestamp_ms_;
  header.location = location_;
  // No parents: the genesis is the DAG's unique sink.

  return Block::Create(std::move(header), {std::move(enrol), std::move(meta)},
                       owner_keys);
}

}  // namespace vegvisir::chain
