// Public key certificates (paper §IV-F).
//
// A certificate binds a user id to an Ed25519 public key and a role,
// under the signature of the chain's certificate authority (the owner
// who signed the genesis block). The membership set U holds these
// certificates; elements of U's remove set act as revocations.
#pragma once

#include <string>

#include "crypto/ed25519.h"
#include "serial/codec.h"
#include "util/bytes.h"
#include "util/status.h"

namespace vegvisir::chain {

struct Certificate {
  std::string user_id;
  crypto::PublicKey public_key{};
  std::string role;
  crypto::Signature ca_signature{};

  // The bytes the CA signs: canonical (user_id, public_key, role).
  Bytes SignedPayload() const;

  void Encode(serial::Writer* w) const;
  static Status Decode(serial::Reader* r, Certificate* out);

  // Standalone canonical serialization (the form stored in U).
  Bytes Serialize() const;
  static StatusOr<Certificate> Deserialize(ByteSpan data);

  bool operator==(const Certificate& other) const;
};

// Issues a certificate signed by `ca`. For the owner's own
// certificate, `ca` is the owner key pair (self-signed, paper §IV-C).
Certificate IssueCertificate(const std::string& user_id,
                             const crypto::PublicKey& public_key,
                             const std::string& role,
                             const crypto::KeyPair& ca);

// Checks the CA signature.
bool VerifyCertificate(const Certificate& cert,
                       const crypto::PublicKey& ca_public_key);

}  // namespace vegvisir::chain
