#include "chain/store.h"

#include "crypto/sha256.h"
#include "serial/codec.h"
#include "serial/limits.h"
#include "util/fsio.h"

namespace vegvisir::chain {
namespace {

constexpr char kMagic[] = "VGVSDAG1";
constexpr std::size_t kMagicLen = 8;

constexpr std::uint8_t kTagStored = 1;
constexpr std::uint8_t kTagEvicted = 0;

}  // namespace

Bytes SerializeDag(const Dag& dag) {
  serial::Writer w;
  const Block* genesis = dag.Find(dag.genesis_hash());
  w.WriteBytes(genesis->Serialize());

  const auto order = dag.TopologicalOrder();
  w.WriteVarint(order.size() - 1);  // everything but the genesis
  for (const BlockHash& h : order) {
    if (h == dag.genesis_hash()) continue;
    const Block* block = dag.Find(h);
    if (block != nullptr) {
      w.WriteU8(kTagStored);
      w.WriteBytes(block->Serialize());
    } else {
      w.WriteU8(kTagEvicted);
      w.WriteFixed(h);
      const auto& parents = dag.ParentsOf(h);
      w.WriteVarint(parents.size());
      for (const BlockHash& p : parents) w.WriteFixed(p);
      w.WriteString(dag.CreatorOf(h));
      w.WriteU64(dag.TimestampOf(h));
      w.WriteVarint(0);  // encoded size unknown once evicted
    }
  }

  Bytes payload = w.Take();
  Bytes out(kMagic, kMagic + kMagicLen);
  const crypto::Sha256Digest checksum = crypto::Sha256::Hash(payload);
  Append(&out, payload);
  Append(&out, ByteSpan(checksum.data(), checksum.size()));
  return out;
}

StatusOr<Dag> DeserializeDag(ByteSpan data) {
  if (data.size() < kMagicLen + crypto::kSha256DigestSize) {
    return InvalidArgumentError("chain file too short");
  }
  if (!std::equal(kMagic, kMagic + kMagicLen, data.begin())) {
    return InvalidArgumentError("bad magic (not a Vegvisir chain file)");
  }
  const ByteSpan payload(data.data() + kMagicLen,
                         data.size() - kMagicLen - crypto::kSha256DigestSize);
  const ByteSpan stored_checksum(data.data() + data.size() -
                                     crypto::kSha256DigestSize,
                                 crypto::kSha256DigestSize);
  const crypto::Sha256Digest computed = crypto::Sha256::Hash(payload);
  if (!ConstantTimeEqual(stored_checksum,
                         ByteSpan(computed.data(), computed.size()))) {
    return InvalidArgumentError("checksum mismatch: file corrupted");
  }

  serial::Reader r(payload);
  Bytes genesis_raw;
  VEGVISIR_RETURN_IF_ERROR(r.ReadBytes(&genesis_raw));
  auto genesis = Block::Deserialize(genesis_raw);
  if (!genesis.ok()) return genesis.status();
  if (!genesis->header().parents.empty()) {
    return InvalidArgumentError("first block is not a genesis");
  }
  Dag dag(*std::move(genesis));

  std::uint64_t count;
  VEGVISIR_RETURN_IF_ERROR(r.ReadVarint(&count));
  VEGVISIR_RETURN_IF_ERROR(serial::CheckWireCount(
      count, serial::limits::kMaxStoreBlocks, r.remaining(), 1, "block"));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint8_t tag;
    VEGVISIR_RETURN_IF_ERROR(r.ReadU8(&tag));
    if (tag == kTagStored) {
      Bytes raw;
      VEGVISIR_RETURN_IF_ERROR(r.ReadBytes(&raw));
      auto block = Block::Deserialize(raw);
      if (!block.ok()) return block.status();
      VEGVISIR_RETURN_IF_ERROR(dag.Insert(*std::move(block)));
    } else if (tag == kTagEvicted) {
      BlockHash h;
      VEGVISIR_RETURN_IF_ERROR(r.ReadFixed(&h));
      std::uint64_t parent_count;
      VEGVISIR_RETURN_IF_ERROR(r.ReadVarint(&parent_count));
      VEGVISIR_RETURN_IF_ERROR(serial::CheckWireCount(
          parent_count, serial::limits::kMaxBlockParents, r.remaining(),
          sizeof(BlockHash), "parent"));
      std::vector<BlockHash> parents;
      parents.reserve(parent_count);
      for (std::uint64_t p = 0; p < parent_count; ++p) {
        BlockHash parent;
        VEGVISIR_RETURN_IF_ERROR(r.ReadFixed(&parent));
        parents.push_back(parent);
      }
      std::string creator;
      VEGVISIR_RETURN_IF_ERROR(r.ReadString(&creator));
      std::uint64_t timestamp;
      VEGVISIR_RETURN_IF_ERROR(r.ReadU64(&timestamp));
      std::uint64_t encoded_size;
      VEGVISIR_RETURN_IF_ERROR(r.ReadVarint(&encoded_size));
      if (encoded_size > serial::limits::kMaxStubEncodedBytes) {
        return InvalidArgumentError("stub encoded size exceeds limit");
      }
      VEGVISIR_RETURN_IF_ERROR(dag.InsertEvictedStub(
          h, std::move(parents), std::move(creator), timestamp,
          static_cast<std::size_t>(encoded_size)));
    } else {
      return InvalidArgumentError("unknown block tag in chain file");
    }
  }
  VEGVISIR_RETURN_IF_ERROR(r.ExpectEnd());
  return dag;
}

Status SaveDagToFile(const Dag& dag, const std::string& path) {
  // Durable, not just atomic: a checkpoint that can evaporate on
  // power loss is exactly what a flash-constrained device must not
  // ship (DESIGN.md §13 spells out the fsync ordering).
  return DurableWriteFile(path, SerializeDag(dag));
}

StatusOr<Dag> LoadDagFromFile(const std::string& path) {
  auto data = ReadFileBytes(path);
  if (!data.ok()) return data.status();
  return DeserializeDag(*data);
}

}  // namespace vegvisir::chain
