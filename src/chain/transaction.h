// Transactions (paper §IV-D).
//
// A transaction names a CRDT, an operation, and the operation's
// arguments. Transactions carry no signature of their own: the
// enclosing block's signature covers them, and the block creator is
// the originator of every transaction in the block.
#pragma once

#include <string>
#include <vector>

#include "crdt/value.h"
#include "serial/codec.h"
#include "util/status.h"

namespace vegvisir::chain {

struct Transaction {
  std::string crdt_name;
  std::string op;
  std::vector<crdt::Value> args;

  void Encode(serial::Writer* w) const;
  static Status Decode(serial::Reader* r, Transaction* out);

  bool operator==(const Transaction& other) const = default;

  // Approximate serialized size (for storage/bandwidth accounting).
  std::size_t EncodedSize() const;
};

}  // namespace vegvisir::chain
