#include "chain/dot.h"

namespace vegvisir::chain {

std::string DagToDot(const Dag& dag, const DotOptions& options) {
  std::string out = "digraph vegvisir {\n  rankdir=BT;\n";
  const auto frontier = dag.Frontier();
  const auto is_frontier = [&](const BlockHash& h) {
    for (const BlockHash& f : frontier) {
      if (f == h) return true;
    }
    return false;
  };

  for (const BlockHash& h : dag.TopologicalOrder()) {
    std::string label = HashShort(h);
    if (options.show_creator) label += "\\n" + dag.CreatorOf(h);
    if (options.show_timestamp) {
      label += "\\nt=" + std::to_string(dag.TimestampOf(h));
    }
    std::string attrs = "label=\"" + label + "\"";
    if (options.mark_frontier && is_frontier(h)) {
      attrs += ", peripheries=2";
    }
    if (options.mark_evicted &&
        dag.PresenceOf(h) == Presence::kEvicted) {
      attrs += ", style=dashed";
    }
    if (h == dag.genesis_hash()) attrs += ", shape=box";
    out += "  \"" + HashShort(h) + "\" [" + attrs + "];\n";
    for (const BlockHash& p : dag.ParentsOf(h)) {
      out += "  \"" + HashShort(h) + "\" -> \"" + HashShort(p) + "\";\n";
    }
  }
  out += "}\n";
  return out;
}

Status ParseTxId(const std::string& tx_id, BlockHash* block,
                 std::size_t* index) {
  const std::size_t colon = tx_id.find(':');
  if (colon != 64 || colon + 1 >= tx_id.size()) {
    return InvalidArgumentError("tx id is not <64-hex>:<index>");
  }
  Bytes raw;
  if (!FromHex(tx_id.substr(0, colon), &raw) || raw.size() != block->size()) {
    return InvalidArgumentError("tx id hash is not valid hex");
  }
  std::copy(raw.begin(), raw.end(), block->begin());
  std::size_t idx = 0;
  for (std::size_t i = colon + 1; i < tx_id.size(); ++i) {
    const char c = tx_id[i];
    if (c < '0' || c > '9') {
      return InvalidArgumentError("tx id index is not decimal");
    }
    idx = idx * 10 + static_cast<std::size_t>(c - '0');
    if (idx > 1'000'000) {
      return InvalidArgumentError("tx id index is implausibly large");
    }
  }
  *index = idx;
  return Status::Ok();
}

bool HappensBefore(const Dag& dag, const std::string& tx_a,
                   const std::string& tx_b) {
  BlockHash block_a, block_b;
  std::size_t index_a, index_b;
  if (!ParseTxId(tx_a, &block_a, &index_a).ok() ||
      !ParseTxId(tx_b, &block_b, &index_b).ok()) {
    return false;
  }
  if (!dag.Contains(block_a) || !dag.Contains(block_b)) return false;
  if (block_a == block_b) {
    // Transactions within a block are totally ordered (paper §IV-A).
    return index_a < index_b;
  }
  return dag.IsAncestor(block_a, block_b);
}

}  // namespace vegvisir::chain
