// Genesis block construction (paper §IV-C).
//
// The genesis block is the unique sink of the DAG and identifies the
// chain. It carries the owner's self-signed certificate — the owner
// acts as the chain's certificate authority — plus chain metadata.
#pragma once

#include <cstdint>
#include <string>

#include "chain/block.h"
#include "chain/certificate.h"
#include "crypto/ed25519.h"

namespace vegvisir::chain {

// The role the owner's genesis certificate carries; the default
// revocation policy keys off it.
inline constexpr const char* kOwnerRole = "owner";

class GenesisBuilder {
 public:
  explicit GenesisBuilder(std::string chain_name)
      : chain_name_(std::move(chain_name)) {}

  GenesisBuilder& WithTimestamp(std::uint64_t timestamp_ms) {
    timestamp_ms_ = timestamp_ms;
    return *this;
  }
  GenesisBuilder& WithLocation(GeoLocation location) {
    location_ = location;
    return *this;
  }

  // Builds the genesis block: a block with no parents whose
  // transactions enrol the owner (self-signed certificate into U) and
  // record the chain name in __meta__.
  Block Build(const std::string& owner_user_id,
              const crypto::KeyPair& owner_keys) const;

 private:
  std::string chain_name_;
  std::uint64_t timestamp_ms_ = 1;
  std::optional<GeoLocation> location_;
};

}  // namespace vegvisir::chain
