// The block DAG store (paper §IV-C, Fig. 1).
//
// Holds the local replica of the blockchain: every block, the
// parent/child indexes, the frontier set, and the queries the
// protocol layers need (level-N frontier sets for reconciliation,
// ancestor/descendant walks for proof-of-witness and revocation
// checks, deterministic topological order for the CRDT state
// machine).
//
// `Insert` performs structural checks only (duplicates, missing
// parents, unique genesis); semantic validation — signatures,
// membership, timestamps — lives in chain/validation.h so the two
// concerns can be tested and reused independently.
//
// Storage-constrained devices may *evict* a block's body after
// offloading it to the support blockchain (paper §IV-I): the DAG
// keeps a stub with the linkage (hash, parents, children, creator,
// timestamp) so frontier computation, reconciliation and witness
// queries still work, but the transactions are gone and the storage
// accounting drops accordingly.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "chain/block.h"
#include "chain/types.h"
#include "util/status.h"

namespace vegvisir::chain {

enum class Presence {
  kAbsent,   // never seen
  kStored,   // full block available
  kEvicted,  // body offloaded; only the stub remains
};

class Dag {
 public:
  // A DAG is born from its genesis block (the unique sink).
  explicit Dag(Block genesis);

  const BlockHash& genesis_hash() const { return genesis_hash_; }

  Presence PresenceOf(const BlockHash& h) const;
  bool Contains(const BlockHash& h) const {
    return PresenceOf(h) != Presence::kAbsent;
  }

  // The full block, or nullptr if absent or evicted.
  const Block* Find(const BlockHash& h) const;

  // Structural insert. Errors:
  //   kAlreadyExists  — block already present
  //   kFailedPrecondition — a second parentless block (fake genesis)
  //   kNotFound       — some parent is unknown (caller should escalate
  //                     the reconciliation frontier level)
  Status Insert(Block block);

  // Number of known blocks (stored + evicted stubs).
  std::size_t Size() const { return entries_.size(); }
  // Number of blocks with bodies.
  std::size_t StoredCount() const { return stored_count_; }
  // Total bytes of stored block bodies.
  std::size_t StoredBytes() const { return stored_bytes_; }

  // The level-1 frontier: blocks with no successors, sorted by hash.
  std::vector<BlockHash> Frontier() const;

  // The level-n frontier set (paper Fig. 3): level 1 is the frontier;
  // level n is level n-1 plus the parents of its blocks. n >= 1.
  std::vector<BlockHash> FrontierLevel(int n) const;

  // SHA-256 over the sorted frontier hashes. Equal digests mean equal
  // frontiers mean equal DAGs (paper §IV-G: "if the neighbor's
  // frontier set is identical to the initiator's, then their
  // blockchains are identical too"), so gossip peers can detect
  // being in sync for 32 bytes.
  BlockHash FrontierDigest() const;

  const std::vector<BlockHash>& ParentsOf(const BlockHash& h) const;
  const std::vector<BlockHash>& ChildrenOf(const BlockHash& h) const;
  const std::string& CreatorOf(const BlockHash& h) const;
  std::uint64_t TimestampOf(const BlockHash& h) const;

  // Deterministic topological order (parents before children; ties
  // broken by block hash). The CRDT state machine replays this.
  std::vector<BlockHash> TopologicalOrder() const;

  // True iff `ancestor` is a strict ancestor of `descendant` or equal
  // to it when `include_self` (default excludes self).
  bool IsAncestor(const BlockHash& ancestor, const BlockHash& descendant,
                  bool include_self = false) const;

  // All strict ancestors / descendants.
  std::set<BlockHash> Ancestors(const BlockHash& h) const;
  std::set<BlockHash> Descendants(const BlockHash& h) const;

  // Greatest timestamp among the given parents (0 for an empty list).
  std::uint64_t MaxParentTimestamp(const std::vector<BlockHash>& parents) const;

  // ---- Proof-of-witness (paper §IV-H) -----------------------------
  // Distinct users, other than the block's own creator, that created
  // descendant blocks — i.e. users known to have stored this block.
  std::set<std::string> WitnessesOf(const BlockHash& h) const;
  bool HasProofOfWitness(const BlockHash& h, std::size_t k) const {
    return WitnessesOf(h).size() >= k;
  }

  // ---- Storage offload (paper §IV-I) ------------------------------
  // Drops the block body, keeping the stub. Refused for the genesis
  // block, for frontier blocks (they may still gain children and are
  // what reconciliation advertises), and for already-evicted blocks.
  Status Evict(const BlockHash& h);

  // Restores the body of an evicted block (fetched back from the
  // support blockchain). The block must hash to an evicted stub.
  Status Restore(Block block);

  // Inserts an already-evicted stub (used when loading a persisted
  // replica whose old bodies live on the support chain). Subject to
  // the same structural rules as Insert.
  Status InsertEvictedStub(const BlockHash& hash,
                           std::vector<BlockHash> parents,
                           std::string creator, std::uint64_t timestamp_ms,
                           std::size_t encoded_size);

  // Hashes of stored (non-evicted) blocks, oldest timestamp first —
  // the order in which a device offloads when storage runs low.
  std::vector<BlockHash> StoredOldestFirst() const;

  // Iterates all stored blocks in deterministic topological order
  // (same order as TopologicalOrder, skipping evicted stubs), so any
  // stream or digest the callback feeds is replica-independent.
  void ForEachStored(const std::function<void(const Block&)>& fn) const;

 private:
  struct Entry {
    std::optional<Block> block;  // nullopt once evicted
    std::vector<BlockHash> parents;
    std::vector<BlockHash> children;
    std::string creator;
    std::uint64_t timestamp = 0;
    std::size_t encoded_size = 0;
  };

  const Entry* FindEntry(const BlockHash& h) const;

  std::unordered_map<BlockHash, Entry, BlockHashHasher> entries_;
  std::set<BlockHash> frontier_;
  BlockHash genesis_hash_{};
  std::size_t stored_count_ = 0;
  std::size_t stored_bytes_ = 0;
};

}  // namespace vegvisir::chain
