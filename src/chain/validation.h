// Block validation (paper §IV-E).
//
// The paper's four checks for a new block:
//   1. the creator must be a member of the blockchain (per U);
//   2. parent blocks must already be in the blockchain;
//   3. the timestamp must exceed every parent's timestamp but not be
//      in the validator's future;
//   4. the signature must be valid and match the creator's user id.
//
// Outcomes are three-way, because on an ad hoc network a failed check
// is often a *timing* problem rather than an attack:
//   kValid      — insert now;
//   kRetryLater — missing parents (reconciliation will escalate its
//                 frontier level), unknown creator (their enrolment
//                 may not have reached us yet), or a timestamp ahead
//                 of our clock: quarantine and re-validate later, so
//                 replicas converge regardless of arrival order;
//   kReject     — structurally or cryptographically invalid, or the
//                 creator was revoked in the block's own causal past;
//                 permanent and deterministic on every replica.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chain/block.h"
#include "chain/certificate.h"
#include "chain/dag.h"
#include "exec/verifier.h"
#include "util/status.h"

namespace vegvisir::chain {

// What the validator needs to know about membership. Implemented by
// the CRDT state machine's membership set U.
class MembershipView {
 public:
  virtual ~MembershipView() = default;

  // The certificate for a user id, or nullptr if unknown.
  virtual const Certificate* FindCertificate(
      const std::string& user_id) const = 0;

  // True iff some revocation (remove from U) exists for this user.
  virtual bool IsRevoked(const std::string& user_id) const = 0;

  // Blocks whose transactions revoked this user (empty if none).
  // Used for the causal-past check: a block is rejected only if a
  // revocation is among its ancestors.
  virtual std::vector<BlockHash> RevocationBlocksOf(
      const std::string& user_id) const = 0;
};

enum class BlockVerdict {
  kValid,
  kRetryLater,
  kReject,
};

struct ValidationResult {
  BlockVerdict verdict = BlockVerdict::kReject;
  Status status;  // reason for non-valid verdicts
};

struct ValidationParams {
  // How far a block timestamp may lead the local clock before the
  // block is quarantined.
  std::uint64_t max_clock_skew_ms = 5'000;
};

// Validates `block` against the local replica. The block must not
// already be in the DAG (callers check Contains first).
//
// `presig` (optional) is the node's batched pre-verification cache:
// when it holds a verdict for this block under the creator's current
// certificate, check 4 consumes that verdict instead of re-running
// Ed25519; a missing or key-mismatched entry falls back to a
// synchronous verify. Verdicts — and therefore every counter — are
// identical with or without the cache.
ValidationResult ValidateBlock(const Block& block, const Dag& dag,
                               const MembershipView& membership,
                               std::uint64_t local_time_ms,
                               const ValidationParams& params = {},
                               exec::BatchVerifier* presig = nullptr);

// Builds signature-verification jobs for every block whose creator's
// certificate is already known, skipping blocks `dedup` has cached
// under that same key (so repeated sweeps over a quarantine don't
// re-serialize signing payloads). The batch-ingest front half:
// enqueue these on arrival, then let ValidateBlock consume the
// verdicts in serial topological order.
std::vector<exec::VerifyJob> MakeVerifyJobs(
    const std::vector<const Block*>& blocks, const MembershipView& membership,
    const exec::BatchVerifier* dedup = nullptr);

}  // namespace vegvisir::chain
