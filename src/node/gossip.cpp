#include "node/gossip.h"

#include <algorithm>
#include <iterator>

#include "serial/codec.h"

namespace vegvisir::node {

Status ParseEnvelope(ByteSpan envelope, GossipEnvelope* out) {
  serial::Reader r(envelope);
  VEGVISIR_RETURN_IF_ERROR(r.ReadU8(&out->direction));
  VEGVISIR_RETURN_IF_ERROR(r.ReadU64(&out->session_id));
  if (out->direction != kEnvelopeToResponder &&
      out->direction != kEnvelopeToInitiator) {
    return InvalidArgumentError("unknown envelope direction");
  }
  out->payload = envelope.subspan(kEnvelopeHeaderBytes);
  return Status::Ok();
}

GossipEngine::GossipEngine(Node* node, sim::Simulator* simulator,
                           sim::Network* network, sim::NodeId id,
                           GossipConfig config, std::uint64_t seed)
    : node_(node),
      simulator_(simulator),
      network_(network),
      id_(id),
      config_(config),
      rng_(seed),
      c_ticks_(node->telemetry()->metrics.GetCounter("gossip.ticks")),
      c_timed_out_(node->telemetry()->metrics.GetCounter(
          "gossip.sessions_timed_out")),
      c_aborted_(node->telemetry()->metrics.GetCounter(
          "gossip.sessions_aborted")),
      c_envelopes_rejected_(node->telemetry()->metrics.GetCounter(
          "gossip.envelopes_rejected")),
      c_envelope_bytes_rejected_(node->telemetry()->metrics.GetCounter(
          "gossip.envelope_bytes_rejected")),
      c_envelopes_unsent_(node->telemetry()->metrics.GetCounter(
          "gossip.envelopes_unsent")),
      c_envelope_bytes_unsent_(node->telemetry()->metrics.GetCounter(
          "gossip.envelope_bytes_unsent")),
      c_backoffs_(node->telemetry()->metrics.GetCounter("gossip.backoffs")),
      c_retries_(node->telemetry()->metrics.GetCounter("gossip.retries")),
      c_cooldown_skips_(node->telemetry()->metrics.GetCounter(
          "gossip.cooldown_skips")),
      c_responder_orphaned_(node->telemetry()->metrics.GetCounter(
          "recon.responder.sessions_orphaned")),
      c_peer_downgrades_(node->telemetry()->metrics.GetCounter(
          "setdiff.peer_downgrades")) {
  // Session ids start at a random 32-bit offset so an engine rebuilt
  // after a crash does not reuse its predecessor's ids: replies still
  // in flight toward the old incarnation must not be mistaken for
  // answers to the new one's sessions.
  next_session_id_ = 1 + rng_.NextBelow(std::uint64_t{1} << 32);
}

void GossipEngine::Start(sim::EnergyMeter* meter) {
  running_ = true;
  network_->Register(
      id_, [this](sim::NodeId from, const Bytes& env) { OnMessage(from, env); },
      meter);
  if (ticking_) return;  // restart after Stop(): the chain is alive
  ticking_ = true;
  const sim::TimeMs first =
      config_.period_ms + rng_.NextBelow(config_.jitter_ms + 1);
  simulator_->ScheduleAfter(first, [this] { Tick(); });
}

void GossipEngine::Shutdown() {
  running_ = false;
  shutdown_ = true;
  c_aborted_.Inc(sessions_.size());
  sessions_.clear();
  c_responder_orphaned_.Inc(responders_.size());
  responders_.clear();
  backoff_.clear();
}

void GossipEngine::Tick() {
  if (shutdown_) {
    ticking_ = false;
    return;
  }
  // Maintenance runs even while stopped: in-flight sessions drain,
  // abandoned responder state is reaped, quarantined blocks whose
  // timestamps have come into tolerance get another chance.
  ExpireSessions();
  if (node_->QuarantineSize() > 0) {
    // Batch the quarantine's signature checks across the execution
    // pool before the serial retry sweep consumes them — creator
    // enrolments may have landed since the blocks were parked, and
    // already-cached entries make this a cheap no-op.
    node_->PreverifyQuarantine();
    node_->RetryQuarantine();
  }

  if (running_) {
    c_ticks_.Inc();
    node_->telemetry()->trace.RecordInstant("gossip.tick", simulator_->now(),
                                            id_);
    if (config_.enabled) {
      const sim::TimeMs now = simulator_->now();
      std::vector<sim::NodeId> neighbors = network_->NeighborsOf(id_);
      // One session per peer at a time (stacking sessions toward an
      // unresponsive peer just multiplies the eventual timeouts), and
      // peers still cooling down after recent failures are not
      // eligible: a dead neighbour should not soak up gossip rounds
      // the healthy ones could use.
      const auto ineligible = std::remove_if(
          neighbors.begin(), neighbors.end(), [&](sim::NodeId peer) {
            if (HasActiveSessionWith(peer)) return true;
            const auto it = backoff_.find(peer);
            if (it != backoff_.end() && it->second.next_ok_ms > now) {
              c_cooldown_skips_.Inc();
              return true;
            }
            return false;
          });
      neighbors.erase(ineligible, neighbors.end());
      if (!neighbors.empty()) {
        StartSessionWith(neighbors[rng_.NextBelow(neighbors.size())]);
      }
    }
  }

  const sim::TimeMs next =
      config_.period_ms + rng_.NextBelow(config_.jitter_ms + 1);
  simulator_->ScheduleAfter(next, [this] { Tick(); });
}

void GossipEngine::StartSessionWith(sim::NodeId peer) {
  const std::uint64_t session_id =
      (static_cast<std::uint64_t>(id_) << 40) |
      (next_session_id_++ & ((std::uint64_t{1} << 40) - 1));
  recon::ReconConfig session_cfg = node_->recon_config();
  if (const auto it = resume_level_.find(peer); it != resume_level_.end()) {
    session_cfg.start_level = it->second;
  }
  if (session_cfg.mode == recon::ReconConfig::Mode::kSetDiff &&
      legacy_peers_.count(peer) > 0) {
    // This peer already rejected a setdiff probe; don't pay another
    // handshake timeout just to learn it again.
    session_cfg.mode = recon::ReconConfig::Mode::kHashFirst;
  }
  ActiveSession active;
  active.session =
      std::make_unique<recon::InitiatorSession>(node_, session_cfg);
  active.peer = peer;
  active.started_ms = simulator_->now();
  active.last_activity_ms = active.started_ms;
  // The session itself counts recon.initiator.sessions_started.
  const Bytes first = active.session->Start();
  sessions_.emplace(session_id, std::move(active));
  if (!SendEnvelope(peer, kEnvelopeToResponder, session_id, first)) {
    // The radio could not reach the peer at all (moved out of range,
    // or the link is flapped down): fail fast so the backoff starts
    // counting now instead of after a full session timeout.
    FinishSession(session_id, FinishReason::kAborted);
  }
}

void GossipEngine::RetryPeer(sim::NodeId peer) {
  if (shutdown_ || !running_ || !config_.enabled) return;
  const auto it = backoff_.find(peer);
  if (it == backoff_.end()) return;  // a later session already succeeded
  if (it->second.next_ok_ms > simulator_->now()) return;  // superseded
  if (HasActiveSessionWith(peer)) return;
  if (!network_->Connected(id_, peer)) return;  // still out of range
  c_retries_.Inc();
  StartSessionWith(peer);
}

void GossipEngine::OnMessage(sim::NodeId from, const Bytes& envelope) {
  if (shutdown_) return;
  GossipEnvelope env;
  if (!ParseEnvelope(envelope, &env).ok()) {
    RejectEnvelope(envelope.size());
    return;
  }
  const std::uint64_t session_id = env.session_id;
  const ByteSpan payload = env.payload;
  const sim::TimeMs now = simulator_->now();

  if (env.direction == kEnvelopeToResponder) {
    ResponderState& responder = ResponderFor(session_id, now);
    responder.last_activity_ms = now;
    std::vector<Bytes> replies;
    const Status s = responder.session.OnMessage(payload, &replies);
    for (const Bytes& reply : replies) {
      SendEnvelope(from, kEnvelopeToInitiator, session_id, reply);
    }
    if (!s.ok()) {
      // Undecodable request (initiator bug or injector damage): this
      // session will never progress, release its state immediately.
      responders_.erase(session_id);
      c_responder_orphaned_.Inc();
    }
    return;
  }

  const auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    // Expired, aborted or pre-crash session — or a damaged id.
    RejectEnvelope(envelope.size());
    return;
  }
  it->second.last_activity_ms = now;
  std::vector<Bytes> replies;
  const Status s = it->second.session->OnMessage(payload, &replies);
  // Record escalation progress eagerly: if the next message is lost,
  // the follow-up session resumes from here instead of level 1.
  resume_level_[from] =
      std::max(resume_level_[from], it->second.session->level());
  bool sent_all = true;
  for (const Bytes& reply : replies) {
    sent_all = SendEnvelope(from, kEnvelopeToResponder, session_id, reply) && sent_all;
  }
  const recon::SessionState state = it->second.session->state();
  if (!s.ok() || state != recon::SessionState::kRunning) {
    FinishSession(session_id, state == recon::SessionState::kDone
                                  ? FinishReason::kCompleted
                                  : FinishReason::kFailed);
  } else if (!sent_all) {
    // Our next request never hit the air; the responder cannot answer
    // a message it never saw. Abort instead of idling into timeout.
    FinishSession(session_id, FinishReason::kAborted);
  }
}

bool GossipEngine::SendEnvelope(sim::NodeId to, std::uint8_t direction,
                                std::uint64_t session_id,
                                const Bytes& payload) {
  serial::Writer w;
  w.WriteU8(direction);
  w.WriteU64(session_id);
  Bytes env = w.Take();
  Append(&env, payload);
  const std::size_t size = env.size();
  if (network_->Send(id_, to, std::move(env))) return true;
  // The session counted these bytes as sent; the network refused them
  // (unreachable / flapped link). Recorded so byte accounting stays
  // exact: session bytes = net bytes - headers + unsent payloads.
  c_envelopes_unsent_.Inc();
  c_envelope_bytes_unsent_.Inc(size);
  return false;
}

void GossipEngine::RejectEnvelope(std::size_t envelope_bytes) {
  c_envelopes_rejected_.Inc();
  c_envelope_bytes_rejected_.Inc(envelope_bytes);
}

GossipEngine::ResponderState& GossipEngine::ResponderFor(
    std::uint64_t session_id, sim::TimeMs now) {
  auto it = responders_.find(session_id);
  if (it != responders_.end()) return it->second;
  if (responders_.size() >= config_.responder_session_cap) {
    auto stalest = responders_.begin();
    for (auto jt = std::next(responders_.begin()); jt != responders_.end();
         ++jt) {
      if (jt->second.last_activity_ms < stalest->second.last_activity_ms) {
        stalest = jt;
      }
    }
    responders_.erase(stalest);
    c_responder_orphaned_.Inc();
  }
  return responders_
      .emplace(session_id,
               ResponderState{
                   recon::ResponderSession(node_, node_->recon_config()), now})
      .first->second;
}

bool GossipEngine::HasActiveSessionWith(sim::NodeId peer) const {
  for (const auto& [id, active] : sessions_) {
    if (active.peer == peer) return true;
  }
  return false;
}

void GossipEngine::FinishSession(std::uint64_t session_id,
                                 FinishReason reason) {
  const auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  const sim::NodeId peer = it->second.peer;
  // Traffic and completion counters live in the session; the engine
  // records the span (peer, escalation depth reached) for the tracer.
  node_->telemetry()->trace.RecordSpan("recon.session",
                                       it->second.started_ms,
                                       simulator_->now(), peer,
                                       it->second.session->level());
  if (reason == FinishReason::kCompleted) {
    resume_level_.erase(peer);
    backoff_.erase(peer);  // the link works again; forgive the past
  } else {
    resume_level_[peer] =
        std::max(resume_level_[peer], it->second.session->level());
    if (reason == FinishReason::kAborted) c_aborted_.Inc();
    MaybeDowngradePeer(it->second);
  }
  sessions_.erase(it);
  if (reason != FinishReason::kCompleted) RecordFailure(peer);
}

void GossipEngine::MaybeDowngradePeer(const ActiveSession& session) {
  if (!session.session->AwaitingSetdiffHandshake()) return;
  if (legacy_peers_.insert(session.peer).second) {
    c_peer_downgrades_.Inc();
  }
}

void GossipEngine::RecordFailure(sim::NodeId peer) {
  PeerBackoff& b = backoff_[peer];
  b.failures += 1;
  const std::uint32_t shift = std::min<std::uint32_t>(b.failures - 1, 16);
  const sim::TimeMs wait =
      std::min<sim::TimeMs>(config_.backoff_max_ms,
                            config_.backoff_base_ms << shift) +
      rng_.NextBelow(config_.backoff_jitter_ms + 1);
  b.next_ok_ms = simulator_->now() + wait;
  c_backoffs_.Inc();
  if (b.failures <= config_.max_fast_retries) {
    const sim::NodeId p = peer;
    simulator_->ScheduleAfter(wait + 1, [this, p] { RetryPeer(p); });
  }
}

void GossipEngine::ExpireSessions() {
  const sim::TimeMs now = simulator_->now();
  std::vector<sim::NodeId> failed_peers;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (now - it->second.last_activity_ms > config_.session_timeout_ms) {
      c_timed_out_.Inc();
      node_->telemetry()->trace.RecordSpan(
          "recon.session.timeout", it->second.started_ms, now,
          it->second.peer, it->second.session->level());
      // Resume the next session toward this peer where this one
      // stalled (lost message mid-escalation).
      resume_level_[it->second.peer] = std::max(
          resume_level_[it->second.peer], it->second.session->level());
      // The usual way a legacy peer surfaces: it rejected the probe
      // without replying, so the session idles out still handshaking.
      MaybeDowngradePeer(it->second);
      failed_peers.push_back(it->second.peer);
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
  for (const sim::NodeId peer : failed_peers) RecordFailure(peer);
  for (auto it = responders_.begin(); it != responders_.end();) {
    if (now - it->second.last_activity_ms > config_.session_timeout_ms) {
      // The initiator vanished (crashed, partitioned, gave up): its
      // responder-side state would otherwise leak forever.
      c_responder_orphaned_.Inc();
      it = responders_.erase(it);
    } else {
      ++it;
    }
  }
}

GossipStats GossipEngine::stats() const {
  const telemetry::MetricsRegistry& m = node_->telemetry()->metrics;
  GossipStats s;
  s.ticks = m.CounterValue("gossip.ticks");
  s.sessions_started = m.CounterValue("recon.initiator.sessions_started");
  s.sessions_completed = m.CounterValue("recon.initiator.sessions_completed");
  s.sessions_failed = m.CounterValue("recon.initiator.sessions_failed");
  s.sessions_timed_out = m.CounterValue("gossip.sessions_timed_out");
  s.sessions_aborted = m.CounterValue("gossip.sessions_aborted");
  s.envelopes_rejected = m.CounterValue("gossip.envelopes_rejected");
  s.retries = m.CounterValue("gossip.retries");
  s.backoffs = m.CounterValue("gossip.backoffs");
  s.cooldown_skips = m.CounterValue("gossip.cooldown_skips");
  s.responder_orphaned =
      m.CounterValue("recon.responder.sessions_orphaned");
  s.peer_downgrades = m.CounterValue("setdiff.peer_downgrades");
  s.initiator.rounds = m.CounterValue("recon.initiator.rounds");
  s.initiator.bytes_sent = m.CounterValue("recon.initiator.bytes_sent");
  s.initiator.bytes_received = m.CounterValue("recon.initiator.bytes_received");
  s.initiator.blocks_received =
      m.CounterValue("recon.initiator.blocks_received");
  s.initiator.blocks_inserted =
      m.CounterValue("recon.initiator.blocks_inserted");
  s.initiator.blocks_pushed = m.CounterValue("recon.initiator.blocks_pushed");
  return s;
}

}  // namespace vegvisir::node
