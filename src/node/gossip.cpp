#include "node/gossip.h"

#include <algorithm>

#include "serial/codec.h"

namespace vegvisir::node {
namespace {

constexpr std::uint8_t kToResponder = 0;
constexpr std::uint8_t kToInitiator = 1;

}  // namespace

GossipEngine::GossipEngine(Node* node, sim::Simulator* simulator,
                           sim::Network* network, sim::NodeId id,
                           GossipConfig config, std::uint64_t seed)
    : node_(node),
      simulator_(simulator),
      network_(network),
      id_(id),
      config_(config),
      rng_(seed),
      responder_(node, node->recon_config()),
      c_ticks_(node->telemetry()->metrics.GetCounter("gossip.ticks")),
      c_timed_out_(node->telemetry()->metrics.GetCounter(
          "gossip.sessions_timed_out")) {}

void GossipEngine::Start(sim::EnergyMeter* meter) {
  running_ = true;
  network_->Register(
      id_, [this](sim::NodeId from, const Bytes& env) { OnMessage(from, env); },
      meter);
  const sim::TimeMs first =
      config_.period_ms + rng_.NextBelow(config_.jitter_ms + 1);
  simulator_->ScheduleAfter(first, [this] { Tick(); });
}

void GossipEngine::Tick() {
  if (!running_) return;
  c_ticks_.Inc();
  node_->telemetry()->trace.RecordInstant("gossip.tick", simulator_->now(),
                                          id_);
  ExpireSessions();

  if (config_.enabled) {
    const std::vector<sim::NodeId> neighbors = network_->NeighborsOf(id_);
    if (!neighbors.empty()) {
      const sim::NodeId peer =
          neighbors[rng_.NextBelow(neighbors.size())];
      const std::uint64_t session_id =
          (static_cast<std::uint64_t>(id_) << 40) | next_session_id_++;
      recon::ReconConfig session_cfg = node_->recon_config();
      if (const auto it = resume_level_.find(peer);
          it != resume_level_.end()) {
        session_cfg.start_level = it->second;
      }
      ActiveSession active;
      active.session = std::make_unique<recon::InitiatorSession>(
          node_, session_cfg);
      active.peer = peer;
      active.started_ms = simulator_->now();
      active.last_activity_ms = active.started_ms;
      // The session itself counts recon.initiator.sessions_started.
      const Bytes first = active.session->Start();
      sessions_.emplace(session_id, std::move(active));
      SendEnvelope(peer, kToResponder, session_id, first);
    }
  }

  const sim::TimeMs next =
      config_.period_ms + rng_.NextBelow(config_.jitter_ms + 1);
  simulator_->ScheduleAfter(next, [this] { Tick(); });
}

void GossipEngine::OnMessage(sim::NodeId from, const Bytes& envelope) {
  serial::Reader r(envelope);
  std::uint8_t direction;
  std::uint64_t session_id;
  if (!r.ReadU8(&direction).ok() || !r.ReadU64(&session_id).ok()) return;
  const Bytes payload(envelope.begin() + 9, envelope.end());

  if (direction == kToResponder) {
    std::vector<Bytes> replies;
    if (!responder_.OnMessage(payload, &replies).ok()) return;
    for (const Bytes& reply : replies) {
      SendEnvelope(from, kToInitiator, session_id, reply);
    }
    return;
  }

  const auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;  // expired or unknown session
  it->second.last_activity_ms = simulator_->now();
  std::vector<Bytes> replies;
  const Status s = it->second.session->OnMessage(payload, &replies);
  // Record escalation progress eagerly: if the next message is lost,
  // the follow-up session resumes from here instead of level 1.
  resume_level_[from] =
      std::max(resume_level_[from], it->second.session->level());
  for (const Bytes& reply : replies) {
    SendEnvelope(from, kToResponder, session_id, reply);
  }
  if (!s.ok() || it->second.session->state() != recon::SessionState::kRunning) {
    FinishSession(session_id,
                  it->second.session->state() == recon::SessionState::kFailed);
  }
}

void GossipEngine::SendEnvelope(sim::NodeId to, std::uint8_t direction,
                                std::uint64_t session_id,
                                const Bytes& payload) {
  serial::Writer w;
  w.WriteU8(direction);
  w.WriteU64(session_id);
  Bytes env = w.Take();
  Append(&env, payload);
  network_->Send(id_, to, std::move(env));
}

void GossipEngine::FinishSession(std::uint64_t session_id, bool failed) {
  const auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  // Traffic and completion counters live in the session; the engine
  // records the span (peer, escalation depth reached) for the tracer.
  node_->telemetry()->trace.RecordSpan(
      "recon.session", it->second.started_ms, simulator_->now(),
      it->second.peer, it->second.session->level());
  if (failed) {
    resume_level_[it->second.peer] = std::max(
        resume_level_[it->second.peer], it->second.session->level());
  } else {
    resume_level_.erase(it->second.peer);
  }
  sessions_.erase(it);
}

void GossipEngine::ExpireSessions() {
  const sim::TimeMs now = simulator_->now();
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (now - it->second.last_activity_ms > config_.session_timeout_ms) {
      c_timed_out_.Inc();
      node_->telemetry()->trace.RecordSpan(
          "recon.session.timeout", it->second.started_ms, now,
          it->second.peer, it->second.session->level());
      // Resume the next session toward this peer where this one
      // stalled (lost message mid-escalation).
      resume_level_[it->second.peer] = std::max(
          resume_level_[it->second.peer], it->second.session->level());
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

GossipStats GossipEngine::stats() const {
  const telemetry::MetricsRegistry& m = node_->telemetry()->metrics;
  GossipStats s;
  s.ticks = m.CounterValue("gossip.ticks");
  s.sessions_started = m.CounterValue("recon.initiator.sessions_started");
  s.sessions_completed = m.CounterValue("recon.initiator.sessions_completed");
  s.sessions_failed = m.CounterValue("recon.initiator.sessions_failed");
  s.sessions_timed_out = m.CounterValue("gossip.sessions_timed_out");
  s.initiator.rounds = m.CounterValue("recon.initiator.rounds");
  s.initiator.bytes_sent = m.CounterValue("recon.initiator.bytes_sent");
  s.initiator.bytes_received = m.CounterValue("recon.initiator.bytes_received");
  s.initiator.blocks_received =
      m.CounterValue("recon.initiator.blocks_received");
  s.initiator.blocks_inserted =
      m.CounterValue("recon.initiator.blocks_inserted");
  s.initiator.blocks_pushed = m.CounterValue("recon.initiator.blocks_pushed");
  return s;
}

}  // namespace vegvisir::node
