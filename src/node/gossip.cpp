#include "node/gossip.h"

#include <algorithm>

#include "serial/codec.h"

namespace vegvisir::node {
namespace {

constexpr std::uint8_t kToResponder = 0;
constexpr std::uint8_t kToInitiator = 1;

}  // namespace

GossipEngine::GossipEngine(Node* node, sim::Simulator* simulator,
                           sim::Network* network, sim::NodeId id,
                           GossipConfig config, std::uint64_t seed)
    : node_(node),
      simulator_(simulator),
      network_(network),
      id_(id),
      config_(config),
      rng_(seed),
      responder_(node, node->recon_config()) {}

void GossipEngine::Start(sim::EnergyMeter* meter) {
  running_ = true;
  network_->Register(
      id_, [this](sim::NodeId from, const Bytes& env) { OnMessage(from, env); },
      meter);
  const sim::TimeMs first =
      config_.period_ms + rng_.NextBelow(config_.jitter_ms + 1);
  simulator_->ScheduleAfter(first, [this] { Tick(); });
}

void GossipEngine::Tick() {
  if (!running_) return;
  stats_.ticks += 1;
  ExpireSessions();

  if (config_.enabled) {
    const std::vector<sim::NodeId> neighbors = network_->NeighborsOf(id_);
    if (!neighbors.empty()) {
      const sim::NodeId peer =
          neighbors[rng_.NextBelow(neighbors.size())];
      const std::uint64_t session_id =
          (static_cast<std::uint64_t>(id_) << 40) | next_session_id_++;
      recon::ReconConfig session_cfg = node_->recon_config();
      if (const auto it = resume_level_.find(peer);
          it != resume_level_.end()) {
        session_cfg.start_level = it->second;
      }
      ActiveSession active;
      active.session = std::make_unique<recon::InitiatorSession>(
          node_, session_cfg);
      active.peer = peer;
      active.last_activity_ms = simulator_->now();
      const Bytes first = active.session->Start();
      sessions_.emplace(session_id, std::move(active));
      stats_.sessions_started += 1;
      SendEnvelope(peer, kToResponder, session_id, first);
    }
  }

  const sim::TimeMs next =
      config_.period_ms + rng_.NextBelow(config_.jitter_ms + 1);
  simulator_->ScheduleAfter(next, [this] { Tick(); });
}

void GossipEngine::OnMessage(sim::NodeId from, const Bytes& envelope) {
  serial::Reader r(envelope);
  std::uint8_t direction;
  std::uint64_t session_id;
  if (!r.ReadU8(&direction).ok() || !r.ReadU64(&session_id).ok()) return;
  const Bytes payload(envelope.begin() + 9, envelope.end());

  if (direction == kToResponder) {
    std::vector<Bytes> replies;
    if (!responder_.OnMessage(payload, &replies).ok()) return;
    for (const Bytes& reply : replies) {
      SendEnvelope(from, kToInitiator, session_id, reply);
    }
    return;
  }

  const auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;  // expired or unknown session
  it->second.last_activity_ms = simulator_->now();
  std::vector<Bytes> replies;
  const Status s = it->second.session->OnMessage(payload, &replies);
  // Record escalation progress eagerly: if the next message is lost,
  // the follow-up session resumes from here instead of level 1.
  resume_level_[from] =
      std::max(resume_level_[from], it->second.session->level());
  for (const Bytes& reply : replies) {
    SendEnvelope(from, kToResponder, session_id, reply);
  }
  if (!s.ok() || it->second.session->state() != recon::SessionState::kRunning) {
    FinishSession(session_id,
                  it->second.session->state() == recon::SessionState::kFailed);
  }
}

void GossipEngine::SendEnvelope(sim::NodeId to, std::uint8_t direction,
                                std::uint64_t session_id,
                                const Bytes& payload) {
  serial::Writer w;
  w.WriteU8(direction);
  w.WriteU64(session_id);
  Bytes env = w.Take();
  Append(&env, payload);
  network_->Send(id_, to, std::move(env));
}

void GossipEngine::FinishSession(std::uint64_t session_id, bool failed) {
  const auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  stats_.initiator.Accumulate(it->second.session->stats());
  if (failed) {
    stats_.sessions_failed += 1;
    resume_level_[it->second.peer] = std::max(
        resume_level_[it->second.peer], it->second.session->level());
  } else {
    stats_.sessions_completed += 1;
    resume_level_.erase(it->second.peer);
  }
  sessions_.erase(it);
}

void GossipEngine::ExpireSessions() {
  const sim::TimeMs now = simulator_->now();
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (now - it->second.last_activity_ms > config_.session_timeout_ms) {
      stats_.sessions_timed_out += 1;
      stats_.initiator.Accumulate(it->second.session->stats());
      // Resume the next session toward this peer where this one
      // stalled (lost message mid-escalation).
      resume_level_[it->second.peer] = std::max(
          resume_level_[it->second.peer], it->second.session->level());
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace vegvisir::node
