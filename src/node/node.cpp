#include "node/node.h"

#include <algorithm>

#include "serial/codec.h"
#include "storage/engine.h"

namespace vegvisir::node {

Node::Node(NodeConfig config, chain::Block genesis, crypto::KeyPair keys)
    : config_(std::move(config)),
      keys_(std::move(keys)),
      owned_telem_(config_.telemetry != nullptr
                       ? nullptr
                       : std::make_unique<telemetry::Telemetry>()),
      telem_(config_.telemetry != nullptr ? config_.telemetry
                                          : owned_telem_.get()),
      c_blocks_created_(telem_->metrics.GetCounter("node.blocks_created")),
      c_blocks_accepted_(telem_->metrics.GetCounter("node.blocks_accepted")),
      c_blocks_rejected_(telem_->metrics.GetCounter("node.blocks_rejected")),
      c_blocks_quarantined_(
          telem_->metrics.GetCounter("node.blocks_quarantined")),
      c_quarantine_expired_(
          telem_->metrics.GetCounter("node.quarantine_expired")),
      c_foreign_dropped_(telem_->metrics.GetCounter("node.foreign_dropped")),
      g_quarantine_size_(telem_->metrics.GetGauge("node.quarantine_size")),
      presig_(config_.exec_pool, telem_),
      dag_(genesis),
      csm_(config_.csm, telem_) {
  clock_ = [this] { return manual_time_ms_; };
  // The genesis block bootstraps the CA and the membership set.
  csm_.ApplyBlock(*dag_.Find(dag_.genesis_hash()));
}

StatusOr<std::unique_ptr<Node>> Node::Restore(NodeConfig config,
                                              crypto::KeyPair keys,
                                              chain::Dag dag,
                                              ByteSpan csm_snapshot,
                                              bool* used_snapshot) {
  const chain::Block* genesis = dag.Find(dag.genesis_hash());
  if (genesis == nullptr) {
    return FailedPreconditionError("DAG genesis body missing");
  }
  auto node = std::make_unique<Node>(std::move(config), *genesis,
                                     std::move(keys));

  // Try the snapshot first: it must cover exactly the DAG's blocks.
  bool snapshot_ok = false;
  if (!csm_snapshot.empty()) {
    csm::StateMachine candidate(node->config_.csm, node->telem_);
    if (candidate.LoadSnapshot(csm_snapshot).ok() &&
        candidate.AppliedBlockCount() == dag.Size()) {
      snapshot_ok = true;
      for (const chain::BlockHash& h : dag.TopologicalOrder()) {
        if (!candidate.HasApplied(h)) {
          snapshot_ok = false;
          break;
        }
      }
      if (snapshot_ok) node->csm_ = std::move(candidate);
    }
  }

  if (!snapshot_ok) {
    // Deterministic full replay; every body must be present.
    csm::StateMachine fresh(node->config_.csm, node->telem_);
    for (const chain::BlockHash& h : dag.TopologicalOrder()) {
      const chain::Block* block = dag.Find(h);
      if (block == nullptr) {
        return FailedPreconditionError(
            "cannot replay: block body evicted and no usable snapshot; "
            "refetch bodies from the support chain first");
      }
      fresh.ApplyBlock(*block);
    }
    node->csm_ = std::move(fresh);
  }

  node->dag_ = std::move(dag);
  if (used_snapshot != nullptr) *used_snapshot = snapshot_ok;
  return node;
}

Status Node::AttachStorage(storage::TieredStore* store) {
  if (store == nullptr) {
    storage_ = nullptr;
    return Status::Ok();
  }
  if (store->GetStats().log_records == 0) {
    // Fresh log under an existing DAG (first attach, or a node built
    // from a checkpoint image): seed it so the log's replay covers
    // everything the node already acked. Topological order keeps the
    // parents-before-children invariant RecoverDag relies on.
    for (const chain::BlockHash& h : dag_.TopologicalOrder()) {
      const chain::Block* block = dag_.Find(h);
      if (block == nullptr) {
        return FailedPreconditionError(
            "cannot bootstrap storage: block body evicted");
      }
      VEGVISIR_RETURN_IF_ERROR(store->Append(*block));
    }
  }
  storage_ = store;
  storage_->UpdateResidency(dag_);
  return Status::Ok();
}

void Node::SetClock(std::function<std::uint64_t()> clock) {
  clock_ = std::move(clock);
}

std::uint64_t Node::NowMs() const { return clock_(); }

Status Node::PrecheckTransactions(
    const std::vector<chain::Transaction>& txns) const {
  if (txns.empty()) return Status::Ok();  // witness blocks are legal
  for (const chain::Transaction& tx : txns) {
    if (tx.crdt_name.rfind("__", 0) == 0) continue;  // CSM-validated
    const crdt::Crdt* crdt = csm_.FindCrdt(tx.crdt_name);
    if (crdt == nullptr) {
      return NotFoundError("CRDT '" + tx.crdt_name +
                           "' does not exist locally; create it first");
    }
    VEGVISIR_RETURN_IF_ERROR(crdt->CheckOp(tx.op, tx.args));
    const csm::AclPolicy* policy = csm_.PolicyOf(tx.crdt_name);
    const std::string role = csm_.membership().RoleOf(config_.user_id);
    if (policy != nullptr && !policy->IsAllowed(role, tx.op)) {
      return PermissionDeniedError("role '" + role + "' may not '" + tx.op +
                                   "' on '" + tx.crdt_name + "'");
    }
  }
  return Status::Ok();
}

StatusOr<chain::BlockHash> Node::Submit(
    std::vector<chain::Transaction> txns,
    std::optional<chain::GeoLocation> location) {
  VEGVISIR_RETURN_IF_ERROR(PrecheckTransactions(txns));

  chain::BlockHeader header;
  header.user_id = config_.user_id;
  header.location = location;
  header.parents = dag_.Frontier();
  // Strictly after every parent, and never behind our own clock.
  header.timestamp_ms =
      std::max(NowMs(), dag_.MaxParentTimestamp(header.parents) + 1);

  const chain::Block block =
      chain::Block::Create(std::move(header), std::move(txns), keys_);
  if (meter_ != nullptr) {
    meter_->AddSign();
    meter_->AddHash(block.EncodedSize());
  }

  const chain::BlockVerdict verdict = AdmitBlock(block);
  if (verdict != chain::BlockVerdict::kValid) {
    // Most common cause: this node's certificate is not on the chain
    // yet (the owner must enrol it first).
    return FailedPreconditionError(
        "own block failed validation (is this node enrolled?)");
  }
  c_blocks_created_.Inc();
  return block.hash();
}

StatusOr<chain::BlockHash> Node::CreateCrdt(const std::string& name,
                                            crdt::CrdtType type,
                                            crdt::ValueType element_type,
                                            const csm::AclPolicy& policy) {
  return Submit({csm::StateMachine::MakeCreateTx(name, type, element_type,
                                                 policy)});
}

StatusOr<chain::BlockHash> Node::AppendOp(const std::string& crdt_name,
                                          const std::string& op,
                                          std::vector<crdt::Value> args) {
  chain::Transaction tx;
  tx.crdt_name = crdt_name;
  tx.op = op;
  tx.args = std::move(args);
  return Submit({std::move(tx)});
}

StatusOr<chain::BlockHash> Node::EnrollUser(const chain::Certificate& cert) {
  return Submit({csm::StateMachine::MakeAddUserTx(cert)});
}

StatusOr<chain::BlockHash> Node::RevokeUser(const chain::Certificate& cert) {
  return Submit({csm::StateMachine::MakeRevokeUserTx(cert)});
}

StatusOr<chain::BlockHash> Node::AddWitnessBlock() { return Submit({}); }

chain::BlockVerdict Node::AdmitBlock(const chain::Block& block) {
  const chain::ValidationResult result =
      chain::ValidateBlock(block, dag_, csm_.membership(), NowMs(),
                           config_.validation, &presig_);
  // Energy accounting stays per-validation regardless of whether the
  // Ed25519 check was batched: the joules were spent either way.
  if (meter_ != nullptr) {
    meter_->AddVerify();
    meter_->AddHash(block.EncodedSize());
  }
  // A final verdict consumes the pre-verification entry; kRetryLater
  // keeps it for the quarantine sweep.
  if (result.verdict != chain::BlockVerdict::kRetryLater) {
    presig_.Forget(block.hash());
  }
  telem_->trace.RecordInstant("block.validate", NowMs(),
                              static_cast<std::uint64_t>(result.verdict));
  switch (result.verdict) {
    case chain::BlockVerdict::kValid: {
      // Write-ahead: the block must be durable before the DAG (and the
      // CSM behind it) acks it. A transient persist failure (ENOSPC,
      // injected torn write) parks the block instead of losing it.
      if (!PersistBlock(block)) {
        Park(block);
        return chain::BlockVerdict::kRetryLater;
      }
      const Status s = dag_.Insert(block);
      if (!s.ok()) return chain::BlockVerdict::kReject;  // cannot happen
      csm_.ApplyBlock(block);
      return chain::BlockVerdict::kValid;
    }
    case chain::BlockVerdict::kRetryLater: {
      Park(block);
      return chain::BlockVerdict::kRetryLater;
    }
    case chain::BlockVerdict::kReject:
      c_blocks_rejected_.Inc();
      return chain::BlockVerdict::kReject;
  }
  return chain::BlockVerdict::kReject;
}

bool Node::PersistBlock(const chain::Block& block) {
  if (storage_ == nullptr) return true;
  return storage_->Append(block).ok();
}

void Node::Park(const chain::Block& block) {
  if (quarantine_.size() >= config_.quarantine_cap) {
    presig_.Forget(quarantine_.begin()->first);
    quarantine_.erase(quarantine_.begin());
  }
  if (quarantine_.emplace(block.hash(), QuarantineEntry{block, NowMs()})
          .second) {
    c_blocks_quarantined_.Inc();
  }
  g_quarantine_size_.Set(static_cast<double>(quarantine_.size()));
}

chain::BlockVerdict Node::OfferBlock(const chain::Block& block) {
  if (dag_.Contains(block.hash())) return chain::BlockVerdict::kValid;

  if (config_.drop_foreign_blocks &&
      block.header().user_id != config_.user_id) {
    c_foreign_dropped_.Inc();
    // The adversary pretends all is well while discarding the block.
    return chain::BlockVerdict::kValid;
  }

  const chain::BlockVerdict verdict = AdmitBlock(block);
  if (verdict == chain::BlockVerdict::kValid) {
    c_blocks_accepted_.Inc();
    // Newly admitted state may unblock quarantined blocks (their
    // parents arrived, or their creator's enrolment did).
    RetryQuarantine();
  }
  return verdict;
}

void Node::RetryQuarantine() {
  const std::uint64_t now = NowMs();
  // A block still undecidable past the TTL gives up its slot; whoever
  // still has it can re-offer it later. Checked only AFTER
  // re-validation fails to decide, so a block whose moment has come
  // (parents arrived, clock caught up) is admitted, never expired.
  // (The `now >` guard covers a clock that stepped backwards when
  // fault-injected skew ended.)
  const auto expired = [&](const QuarantineEntry& e) {
    return config_.quarantine_ttl_ms != 0 && now > e.parked_at_ms &&
           now - e.parked_at_ms > config_.quarantine_ttl_ms;
  };
  bool progress = true;
  while (progress && !quarantine_.empty()) {
    progress = false;
    for (auto it = quarantine_.begin(); it != quarantine_.end();) {
      const chain::Block& block = it->second.block;
      bool parents_known = true;
      for (const chain::BlockHash& p : block.header().parents) {
        if (!dag_.Contains(p)) {
          parents_known = false;
          break;
        }
      }
      if (!parents_known) {
        if (expired(it->second)) {
          c_quarantine_expired_.Inc();
          presig_.Forget(it->first);
          it = quarantine_.erase(it);
        } else {
          ++it;
        }
        continue;
      }
      const chain::ValidationResult result =
          chain::ValidateBlock(block, dag_, csm_.membership(), NowMs(),
                               config_.validation, &presig_);
      if (result.verdict == chain::BlockVerdict::kValid) {
        // Same write-ahead gate as AdmitBlock: an unpersistable block
        // stays parked (its TTL still ticks) until storage recovers.
        if (!PersistBlock(block)) {
          ++it;
          continue;
        }
        if (dag_.Insert(block).ok()) {
          csm_.ApplyBlock(block);
          c_blocks_accepted_.Inc();
        }
        presig_.Forget(it->first);
        it = quarantine_.erase(it);
        progress = true;
      } else if (result.verdict == chain::BlockVerdict::kReject) {
        c_blocks_rejected_.Inc();
        presig_.Forget(it->first);
        it = quarantine_.erase(it);
        progress = true;
      } else if (expired(it->second)) {
        c_quarantine_expired_.Inc();
        presig_.Forget(it->first);
        it = quarantine_.erase(it);
      } else {
        ++it;  // still undecidable; keep waiting
      }
    }
  }
  g_quarantine_size_.Set(static_cast<double>(quarantine_.size()));
}

void Node::PreverifyBlocks(const std::vector<const chain::Block*>& blocks) {
  // Enqueue (and the Lookup that later consumes the verdicts) are
  // blocking-class calls: recon/gossip ingest reaches here on the
  // node's serial thread holding no locks — Node itself owns no
  // mutex, so the EXCLUDES contracts hold vacuously today and the
  // rank enforcer pins them the day node-side locks appear.
  presig_.Enqueue(chain::MakeVerifyJobs(blocks, csm_.membership(), &presig_));
}

void Node::PreverifyQuarantine() {
  if (quarantine_.empty()) return;
  std::vector<const chain::Block*> blocks;
  blocks.reserve(quarantine_.size());
  for (const auto& [hash, entry] : quarantine_) blocks.push_back(&entry.block);
  PreverifyBlocks(blocks);
}

NodeStats Node::stats() const {
  NodeStats s;
  s.blocks_created = c_blocks_created_.value();
  s.blocks_accepted = c_blocks_accepted_.value();
  s.blocks_rejected = c_blocks_rejected_.value();
  s.blocks_quarantined = c_blocks_quarantined_.value();
  s.foreign_dropped = c_foreign_dropped_.value();
  return s;
}

Bytes Node::Fingerprint() const {
  serial::Writer w;
  w.WriteString("node");
  const auto order = dag_.TopologicalOrder();
  w.WriteVarint(order.size());
  for (const chain::BlockHash& h : order) w.WriteFixed(h);
  w.WriteBytes(csm_.StateFingerprint());
  return w.Take();
}

}  // namespace vegvisir::node
