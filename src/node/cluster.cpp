#include "node/cluster.h"

#include <algorithm>

#include "crypto/drbg.h"

namespace vegvisir::node {
namespace {

crypto::KeyPair KeysFor(std::uint64_t cluster_seed, int index) {
  crypto::Drbg drbg(cluster_seed * 1'000'003ULL +
                    static_cast<std::uint64_t>(index));
  return crypto::KeyPair::Generate(drbg);
}

}  // namespace

Cluster::Cluster(ClusterConfig config, const sim::Topology* topology)
    : config_(std::move(config)), owner_keys_(KeysFor(config_.seed, 0)) {
  net_telem_ = std::make_unique<telemetry::Telemetry>();
  network_ = std::make_unique<sim::Network>(&simulator_, topology,
                                            config_.link, config_.seed ^ 1,
                                            net_telem_.get());

  const chain::Block genesis = chain::GenesisBuilder(config_.chain_name)
                                   .WithTimestamp(1)
                                   .Build("owner", owner_keys_);

  const auto is_adversary = [&](int i) {
    return std::find(config_.adversaries.begin(), config_.adversaries.end(),
                     i) != config_.adversaries.end();
  };

  for (int i = 0; i < config_.node_count; ++i) {
    NodeConfig cfg = config_.node_template;
    cfg.user_id = (i == 0) ? "owner" : "user-" + std::to_string(i);
    cfg.drop_foreign_blocks = is_adversary(i);
    telemetry_.push_back(std::make_unique<telemetry::Telemetry>());
    cfg.telemetry = telemetry_.back().get();
    auto node = std::make_unique<Node>(cfg, genesis,
                                       i == 0 ? owner_keys_
                                              : KeysFor(config_.seed, i));
    // All clocks follow simulated time, offset past the genesis
    // timestamp so submissions are always valid.
    node->SetClock([this] { return simulator_.now() + 1'000; });
    meters_.push_back(std::make_unique<sim::EnergyMeter>(config_.energy));
    node->AttachEnergyMeter(meters_.back().get());
    if (!is_adversary(i)) honest_.push_back(i);
    nodes_.push_back(std::move(node));
  }

  // The owner enrols every member up front; the enrolment *blocks*
  // still have to reach the others through gossip.
  for (int i = 1; i < config_.node_count; ++i) {
    const chain::Certificate cert = chain::IssueCertificate(
        nodes_[static_cast<std::size_t>(i)]->user_id(),
        KeysFor(config_.seed, i).public_key(), config_.member_role,
        owner_keys_);
    nodes_[0]->EnrollUser(cert);
  }

  for (int i = 0; i < config_.node_count; ++i) {
    GossipConfig gcfg = config_.gossip;
    if (is_adversary(i)) gcfg.enabled = false;  // refuses to propagate
    auto engine = std::make_unique<GossipEngine>(
        nodes_[static_cast<std::size_t>(i)].get(), &simulator_,
        network_.get(), i, gcfg,
        config_.seed * 7'919ULL + static_cast<std::uint64_t>(i));
    engine->Start(meters_[static_cast<std::size_t>(i)].get());
    gossips_.push_back(std::move(engine));
  }
}

telemetry::Snapshot Cluster::AggregateSnapshot() const {
  telemetry::Snapshot total = net_telem_->metrics.TakeSnapshot();
  for (const auto& t : telemetry_) {
    total.Merge(t->metrics.TakeSnapshot());
  }
  return total;
}

void Cluster::RunFor(sim::TimeMs duration) {
  simulator_.RunUntil(simulator_.now() + duration);
}

int Cluster::CountHaving(const chain::BlockHash& h) const {
  int count = 0;
  for (const auto& node : nodes_) {
    if (node->dag().Contains(h)) ++count;
  }
  return count;
}

bool Cluster::Converged() const {
  if (honest_.empty()) return true;
  const Bytes reference =
      nodes_[static_cast<std::size_t>(honest_[0])]->Fingerprint();
  for (int i : honest_) {
    if (nodes_[static_cast<std::size_t>(i)]->Fingerprint() != reference) {
      return false;
    }
  }
  return true;
}

}  // namespace vegvisir::node
