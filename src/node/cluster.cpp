#include "node/cluster.h"

#include <algorithm>
#include <cstdint>

#include "crypto/drbg.h"

namespace vegvisir::node {
namespace {

crypto::KeyPair KeysFor(std::uint64_t cluster_seed, int index) {
  crypto::Drbg drbg(cluster_seed * 1'000'003ULL +
                    static_cast<std::uint64_t>(index));
  return crypto::KeyPair::Generate(drbg);
}

}  // namespace

bool Cluster::IsAdversary(int i) const {
  return std::find(config_.adversaries.begin(), config_.adversaries.end(),
                   i) != config_.adversaries.end();
}

NodeConfig Cluster::ConfigFor(int i) const {
  NodeConfig cfg = config_.node_template;
  if (const auto it = config_.recon_overrides.find(i);
      it != config_.recon_overrides.end()) {
    cfg.recon = it->second;
  }
  cfg.user_id = (i == 0) ? "owner" : "user-" + std::to_string(i);
  cfg.drop_foreign_blocks = IsAdversary(i);
  cfg.telemetry = telemetry_[static_cast<std::size_t>(i)].get();
  cfg.exec_pool = exec_pool_.get();
  return cfg;
}

crypto::KeyPair Cluster::NodeKeys(int i) const {
  return (i == 0) ? owner_keys_ : KeysFor(config_.seed, i);
}

StatusOr<std::unique_ptr<storage::TieredStore>> Cluster::OpenStore(
    int i) const {
  storage::TieredStoreOptions opts;
  opts.dir = config_.data_dir + "/node" + std::to_string(i);
  opts.io_faults = config_.faults.io;
  opts.io_seed = config_.seed * 31'337ULL + static_cast<std::uint64_t>(i);
  opts.telemetry = telemetry_[static_cast<std::size_t>(i)].get();
  return storage::TieredStore::Open(std::move(opts));
}

void Cluster::WireNode(Node* node, int i) {
  // All clocks follow simulated time, offset past the genesis
  // timestamp so submissions are always valid — plus whatever skew
  // the fault plan assigns this node (zero once faults deactivate).
  node->SetClock([this, i] {
    std::int64_t t = static_cast<std::int64_t>(simulator_.now()) + 1'000;
    if (injector_ != nullptr) {
      t += injector_->ClockSkewFor(i, simulator_.now());
    }
    return static_cast<std::uint64_t>(std::max<std::int64_t>(t, 0));
  });
  node->AttachEnergyMeter(meters_[static_cast<std::size_t>(i)].get());
}

std::unique_ptr<GossipEngine> Cluster::BuildEngine(int i) {
  GossipConfig gcfg = config_.gossip;
  if (IsAdversary(i)) gcfg.enabled = false;  // refuses to propagate
  // The engine seed mixes in the restart generation: a node's second
  // incarnation must not replay its first one's random choices (and
  // session ids must not collide with pre-crash traffic).
  const std::uint64_t gen =
      generation_[static_cast<std::size_t>(i)] * 104'729ULL;
  return std::make_unique<GossipEngine>(
      nodes_[static_cast<std::size_t>(i)].get(), &simulator_, network_.get(),
      i, gcfg, config_.seed * 7'919ULL + static_cast<std::uint64_t>(i) + gen);
}

Cluster::Cluster(ClusterConfig config, const sim::Topology* topology)
    : config_(std::move(config)), owner_keys_(KeysFor(config_.seed, 0)) {
  net_telem_ = std::make_unique<telemetry::Telemetry>();
  c_crashes_ = net_telem_->metrics.GetCounter("fault.crashes");
  c_restarts_ = net_telem_->metrics.GetCounter("fault.restarts");
  // One pool for the whole cluster: signature batches from every node
  // share the workers, and its exec.* series lands in the network
  // bundle (the cluster-wide sink).
  exec_pool_ = std::make_unique<exec::ThreadPool>(config_.exec,
                                                  net_telem_.get());
  if (!config_.faults.Empty()) {
    injector_ = std::make_unique<sim::FaultInjector>(
        config_.faults, config_.seed ^ 0xFA171ULL, net_telem_.get());
  }
  network_ = std::make_unique<sim::Network>(&simulator_, topology,
                                            config_.link, config_.seed ^ 1,
                                            net_telem_.get());
  if (injector_ != nullptr) network_->SetFaultInjector(injector_.get());

  genesis_ = chain::GenesisBuilder(config_.chain_name)
                 .WithTimestamp(1)
                 .Build("owner", owner_keys_);

  checkpoints_.resize(static_cast<std::size_t>(config_.node_count));
  generation_.resize(static_cast<std::size_t>(config_.node_count), 0);
  stores_.resize(static_cast<std::size_t>(config_.node_count));

  for (int i = 0; i < config_.node_count; ++i) {
    telemetry_.push_back(std::make_unique<telemetry::Telemetry>());
    auto node = std::make_unique<Node>(ConfigFor(i), genesis_, NodeKeys(i));
    meters_.push_back(std::make_unique<sim::EnergyMeter>(config_.energy));
    WireNode(node.get(), i);
    if (!config_.data_dir.empty()) {
      if (auto store = OpenStore(i); store.ok()) {
        stores_[static_cast<std::size_t>(i)] = std::move(*store);
        // A store that fails to attach (an unusable log) leaves the
        // node RAM-only rather than aborting the whole cluster.
        if (!node->AttachStorage(stores_[static_cast<std::size_t>(i)].get())
                 .ok()) {
          stores_[static_cast<std::size_t>(i)].reset();
        }
      }
    }
    if (!IsAdversary(i)) honest_.push_back(i);
    nodes_.push_back(std::move(node));
  }

  // The owner enrols every member up front; the enrolment *blocks*
  // still have to reach the others through gossip.
  for (int i = 1; i < config_.node_count; ++i) {
    const chain::Certificate cert = chain::IssueCertificate(
        nodes_[static_cast<std::size_t>(i)]->user_id(),
        KeysFor(config_.seed, i).public_key(), config_.member_role,
        owner_keys_);
    nodes_[0]->EnrollUser(cert);
  }

  for (int i = 0; i < config_.node_count; ++i) {
    auto engine = BuildEngine(i);
    engine->Start(meters_[static_cast<std::size_t>(i)].get());
    gossips_.push_back(std::move(engine));
  }

  // Crash/restart events from the fault plan become simulator events.
  for (const sim::FaultPlan::CrashEvent& ev : config_.faults.crashes) {
    const int target = static_cast<int>(ev.node);
    if (target < 0 || target >= config_.node_count) continue;
    simulator_.ScheduleAt(ev.crash_at_ms, [this, target] {
      CrashNode(target);
    });
    if (ev.restart_at_ms > ev.crash_at_ms) {
      simulator_.ScheduleAt(ev.restart_at_ms, [this, target] {
        RestartNode(target);
      });
    }
  }
}

void Cluster::CrashNode(int i) {
  const auto idx = static_cast<std::size_t>(i);
  if (nodes_[idx] == nullptr) return;  // already down
  if (stores_[idx] != nullptr) {
    // With durable storage the crash is honest: no checkpoint capture
    // (a real power cut gets no farewell write), and the store is
    // simply dropped — its destructor persists nothing, so restart
    // sees exactly what fsync left behind and recovers by log replay.
    checkpoints_[idx] = CheckpointImage{};
  } else {
    // What had reached flash survives the crash; everything else —
    // sessions, quarantine, in-flight messages — is lost.
    checkpoints_[idx] = CaptureCheckpoint(*nodes_[idx]);
  }
  gossips_[idx]->Shutdown();
  retired_gossips_.push_back(std::move(gossips_[idx]));
  network_->Deregister(i);
  nodes_[idx].reset();
  stores_[idx].reset();
  c_crashes_.Inc();
}

bool Cluster::RestartNode(int i) {
  const auto idx = static_cast<std::size_t>(i);
  if (nodes_[idx] != nullptr) return true;
  bool used_snapshot = false;
  std::unique_ptr<Node> node;
  if (!config_.data_dir.empty()) {
    // Durable path: reopen the store (recovery truncates any torn
    // tail) and rebuild the node from the log. No snapshot is ever
    // adopted here — the CSM re-derives by deterministic replay.
    if (auto store = OpenStore(i); store.ok()) {
      if (auto recovered =
              RecoverFromStorage(ConfigFor(i), NodeKeys(i), store->get());
          recovered.ok()) {
        node = std::move(*recovered);
        stores_[idx] = std::move(*store);
      } else {
        // Empty or unusable log: rejoin from genesis, keeping the
        // store attached so the fresh history is logged from here on.
        node = std::make_unique<Node>(ConfigFor(i), genesis_, NodeKeys(i));
        if (node->AttachStorage(store->get()).ok()) {
          stores_[idx] = std::move(*store);
        }
      }
    } else {
      node = std::make_unique<Node>(ConfigFor(i), genesis_, NodeKeys(i));
    }
  } else {
    auto restored = RestoreFromImage(ConfigFor(i), NodeKeys(i),
                                     checkpoints_[idx], &used_snapshot);
    if (restored.ok()) {
      node = std::move(*restored);
    } else {
      // Unreadable flash image: rejoin from genesis and let gossip
      // re-fetch history (the cold-start path).
      node = std::make_unique<Node>(ConfigFor(i), genesis_, NodeKeys(i));
    }
  }
  WireNode(node.get(), i);
  nodes_[idx] = std::move(node);
  generation_[idx] += 1;
  gossips_[idx] = BuildEngine(i);
  gossips_[idx]->Start(meters_[idx].get());
  c_restarts_.Inc();
  return used_snapshot;
}

telemetry::Snapshot Cluster::AggregateSnapshot() const {
  // Quiesce the pool first: a pre-verification job that nothing ever
  // Lookup()ed may still be in flight, and snapshotting past it would
  // make exec.tasks_executed depend on the schedule.
  exec_pool_->Wait();
  telemetry::Snapshot total = net_telem_->metrics.TakeSnapshot();
  for (const auto& t : telemetry_) {
    total.Merge(t->metrics.TakeSnapshot());
  }
  return total;
}

void Cluster::RunFor(sim::TimeMs duration) {
  simulator_.RunUntil(simulator_.now() + duration);
}

int Cluster::CountHaving(const chain::BlockHash& h) const {
  int count = 0;
  for (const auto& node : nodes_) {
    if (node != nullptr && node->dag().Contains(h)) ++count;
  }
  return count;
}

bool Cluster::Converged() const {
  if (honest_.empty()) return true;
  const Node* reference_node = nodes_[static_cast<std::size_t>(honest_[0])].get();
  if (reference_node == nullptr) return false;
  const Bytes reference = reference_node->Fingerprint();
  for (int i : honest_) {
    const Node* n = nodes_[static_cast<std::size_t>(i)].get();
    if (n == nullptr || n->Fingerprint() != reference) return false;
  }
  return true;
}

}  // namespace vegvisir::node
