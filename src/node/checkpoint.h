// Whole-node checkpointing.
//
// Combines the two persistence layers into one device-flash image:
// the block DAG (chain/store.h) and the CSM snapshot
// (csm::StateMachine::SaveSnapshot), so a restarting device neither
// re-fetches history over the radio nor replays every transaction.
// The restored node verifies that the snapshot matches the DAG (the
// snapshot's applied-block set must equal the DAG's blocks); on any
// mismatch it falls back to a full deterministic replay, so a stale
// or corrupted snapshot can never cause divergence.
#pragma once

#include <string>

#include "node/node.h"
#include "util/status.h"

namespace vegvisir::storage {
class TieredStore;
}

namespace vegvisir::node {

// The in-memory form of a device-flash checkpoint: the serialized
// DAG plus the CSM snapshot. The simulator's crash/restart machinery
// captures one of these at crash time ("what had reached flash") and
// rebuilds the node from it; the file API below is the same image
// written to disk.
struct CheckpointImage {
  Bytes dag;
  Bytes csm_snapshot;
};

CheckpointImage CaptureCheckpoint(const Node& node);

// Rebuilds a node from an image (see Node::Restore for the snapshot
// adoption/replay rules). `config` and `keys` are supplied by the
// caller (key material never enters the image).
StatusOr<std::unique_ptr<Node>> RestoreFromImage(
    NodeConfig config, crypto::KeyPair keys, const CheckpointImage& image,
    bool* used_snapshot = nullptr);

// Writes `<path>.dag` and `<path>.csm`.
Status SaveCheckpoint(const Node& node, const std::string& path_prefix);

// Rebuilds a node from a checkpoint. `config` and `keys` are supplied
// by the caller (key material never touches the checkpoint files).
// Returns the restored node; `used_snapshot` (optional) reports
// whether the CSM snapshot was usable or a full replay happened.
StatusOr<std::unique_ptr<Node>> LoadCheckpoint(
    NodeConfig config, crypto::KeyPair keys, const std::string& path_prefix,
    bool* used_snapshot = nullptr);

// Rebuilds a node from its durable block log (storage/engine.h): the
// log is replayed into a fresh DAG and the CSM state is re-derived by
// deterministic replay, then the store is re-attached so subsequent
// blocks keep the write-ahead discipline. This is the crash-recovery
// path a device with a TieredStore uses instead of LoadCheckpoint —
// it recovers exactly the blocks that reached fsync before the crash.
StatusOr<std::unique_ptr<Node>> RecoverFromStorage(NodeConfig config,
                                                   crypto::KeyPair keys,
                                                   storage::TieredStore* store);

}  // namespace vegvisir::node
