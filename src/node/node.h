// The Vegvisir node: the library's primary public API.
//
// A Node owns the two components the paper separates (§IV-E): the
// blockchain component (DAG storage + block validation) and the CRDT
// state machine. It implements recon::ReconHost so reconciliation
// sessions can pull from and merge into it, and it maintains the
// quarantine that makes replicas converge regardless of arrival
// order (blocks whose creator or timestamp we cannot judge *yet* are
// parked and retried, never silently lost).
//
// Typical use:
//
//   auto genesis = chain::GenesisBuilder("demo").Build("owner", owner_keys);
//   node::Node owner(cfg_owner, genesis, owner_keys);
//   owner.EnrollUser(medic_cert);                       // via blocks
//   owner.CreateCrdt("H", crdt::CrdtType::kGSet,
//                    crdt::ValueType::kStr, policy);
//   medic.AppendOp("H", "add", {Value::OfStr("record-123")});
//   // gossip (node/gossip.h) spreads blocks opportunistically.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chain/block.h"
#include "chain/dag.h"
#include "chain/genesis.h"
#include "chain/validation.h"
#include "crypto/ed25519.h"
#include "csm/state_machine.h"
#include "exec/verifier.h"
#include "recon/session.h"
#include "sim/energy.h"
#include "telemetry/telemetry.h"
#include "util/status.h"

namespace vegvisir::storage {
class TieredStore;
}  // namespace vegvisir::storage

namespace vegvisir::node {

struct NodeConfig {
  std::string user_id;
  recon::ReconConfig recon;
  chain::ValidationParams validation;
  csm::StateMachineConfig csm;
  // Quarantined-block cap; beyond it the oldest entries are dropped
  // (they will be re-fetched by a later reconciliation).
  std::size_t quarantine_cap = 4096;
  // Quarantine entries still undecidable after this long are dropped
  // and counted under node.quarantine_expired (0 = keep forever). A
  // wire-corrupted block naming a parent or creator that will never
  // exist would otherwise occupy quarantine until cap eviction; a
  // legitimately early block lost this way is simply re-fetched by a
  // later reconciliation session.
  std::uint64_t quarantine_ttl_ms = 120'000;
  // Adversarial behaviour (paper §IV-B): discard every block created
  // by others — the node neither stores nor propagates foreign
  // blocks, though it still creates and serves its own.
  bool drop_foreign_blocks = false;
  // External telemetry sink (metrics registry + tracer). Null means
  // the node owns a private bundle; a Cluster wires every node to a
  // per-node registry it can aggregate (see node/cluster.h).
  telemetry::Telemetry* telemetry = nullptr;
  // Shared execution pool for batched signature pre-verification
  // (DESIGN.md §12). Null or serial keeps ingest on the calling
  // thread; either way verdicts and telemetry are identical. A
  // Cluster owns one pool and hands it to every node.
  exec::ThreadPool* exec_pool = nullptr;
};

// Node-level counters, assembled on demand from the telemetry
// registry (node.blocks_* / node.foreign_dropped).
struct NodeStats {
  std::uint64_t blocks_created = 0;
  std::uint64_t blocks_accepted = 0;   // foreign blocks inserted
  std::uint64_t blocks_rejected = 0;   // deterministically invalid
  std::uint64_t blocks_quarantined = 0;
  std::uint64_t foreign_dropped = 0;   // adversarial drops
};

class Node final : public recon::ReconHost {
 public:
  // `genesis` must be the chain's genesis block; `keys` must match
  // the certificate this node's user id is (or will be) enrolled with.
  Node(NodeConfig config, chain::Block genesis, crypto::KeyPair keys);

  // Restores a node from persisted parts (see node/checkpoint.h).
  // Adopts `csm_snapshot` if it exactly matches the DAG's block set;
  // otherwise replays the DAG deterministically — which requires all
  // block bodies to be present (evicted bodies must be re-fetched
  // from a superpeer first). `used_snapshot` (optional) reports which
  // path was taken.
  static StatusOr<std::unique_ptr<Node>> Restore(NodeConfig config,
                                                 crypto::KeyPair keys,
                                                 chain::Dag dag,
                                                 ByteSpan csm_snapshot,
                                                 bool* used_snapshot = nullptr);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  const std::string& user_id() const { return config_.user_id; }
  const recon::ReconConfig& recon_config() const { return config_.recon; }
  // The full configuration this node runs with — what a host must
  // supply again to Restore/LoadCheckpoint after a crash (the config
  // is deliberately not part of the checkpoint image).
  const NodeConfig& config() const { return config_; }

  // ---- time --------------------------------------------------------
  // The node's local clock, used for block timestamps and the
  // future-timestamp check. Defaults to a manual clock at 0.
  void SetClock(std::function<std::uint64_t()> clock);
  void SetTime(std::uint64_t now_ms) { manual_time_ms_ = now_ms; }
  std::uint64_t NowMs() const;

  // ---- creating blocks ---------------------------------------------
  // Packs `txns` into a new block whose parents are every current
  // frontier block (the paper's branch-reining rule), signs it,
  // validates it locally, inserts it and applies it. Transactions
  // are pre-checked against the local state where possible.
  StatusOr<chain::BlockHash> Submit(
      std::vector<chain::Transaction> txns,
      std::optional<chain::GeoLocation> location = std::nullopt);

  // Convenience wrappers around Submit:
  StatusOr<chain::BlockHash> CreateCrdt(const std::string& name,
                                        crdt::CrdtType type,
                                        crdt::ValueType element_type,
                                        const csm::AclPolicy& policy);
  StatusOr<chain::BlockHash> AppendOp(const std::string& crdt_name,
                                      const std::string& op,
                                      std::vector<crdt::Value> args);
  StatusOr<chain::BlockHash> EnrollUser(const chain::Certificate& cert);
  StatusOr<chain::BlockHash> RevokeUser(const chain::Certificate& cert);
  // An empty block acknowledging everything currently known — the
  // proof-of-witness signal (§IV-H).
  StatusOr<chain::BlockHash> AddWitnessBlock();

  // ---- ReconHost -----------------------------------------------------
  const chain::Dag& dag() const override { return dag_; }
  bool HasBlock(const chain::BlockHash& h) const override {
    return dag_.Contains(h) || quarantine_.count(h) > 0;
  }
  // Mutable access for the storage-offload layer (support::
  // StorageManager evicts and restores block bodies); application
  // code should not mutate the DAG directly.
  chain::Dag* mutable_dag() { return &dag_; }
  chain::BlockVerdict OfferBlock(const chain::Block& block) override;

  // ---- state ---------------------------------------------------------
  const csm::StateMachine& state() const { return csm_; }

  // Proof-of-witness query: has `h` been acknowledged (via descendant
  // blocks) by at least k distinct other users?
  bool IsPersistent(const chain::BlockHash& h, std::size_t k) const {
    return dag_.HasProofOfWitness(h, k);
  }

  // Replica-convergence digest: DAG content + CSM state.
  Bytes Fingerprint() const;

  std::size_t QuarantineSize() const { return quarantine_.size(); }
  // Re-validates quarantined blocks (called automatically after every
  // accepted block; exposed for clock advances).
  void RetryQuarantine();

  // Fans signature checks for the quarantine across the execution
  // pool (creator enrolments may have landed since the blocks were
  // parked). The gossip tick calls this right before its retry sweep;
  // cached entries are skipped, so repeated calls are cheap.
  void PreverifyQuarantine();

  // ReconHost pipelined-ingest hook: batch-verify fetched blocks
  // while the session's serial merge proceeds.
  void PreverifyBlocks(
      const std::vector<const chain::Block*>& blocks) override;

  NodeStats stats() const;

  // The node's telemetry bundle (never null): its metrics registry
  // holds the node.*, csm.* and recon.* series for this node, and its
  // tracer records validation/apply/session events in sim time.
  telemetry::Telemetry* telemetry() const override { return telem_; }

  // Optional energy accounting (simulation): charges signing,
  // verification and hashing to the meter.
  void AttachEnergyMeter(sim::EnergyMeter* meter) { meter_ = meter; }

  // Optional durable storage (storage/engine.h). Once attached, every
  // block is appended (and fsync'd, per the store's options) to the
  // block log BEFORE it is inserted into the DAG — the write-ahead
  // discipline that makes crash recovery lossless for acked blocks. A
  // block whose persist fails is parked in quarantine rather than
  // acked. If the store's log is empty, the DAG's current contents
  // are bootstrapped into it first (requires every body present).
  // Pass nullptr to detach. The store must outlive the node.
  Status AttachStorage(storage::TieredStore* store);
  storage::TieredStore* storage() const { return storage_; }

 private:
  // Validates + inserts + applies; assumes parents are present.
  chain::BlockVerdict AdmitBlock(const chain::Block& block);
  Status PrecheckTransactions(const std::vector<chain::Transaction>& txns) const;
  // Write-ahead hook: true when the block is durable (or no storage
  // is attached) and may be acked into the DAG.
  bool PersistBlock(const chain::Block& block);
  // Parks a block in quarantine (evicting the oldest past the cap).
  void Park(const chain::Block& block);

  NodeConfig config_;
  crypto::KeyPair keys_;
  // Telemetry plumbing must precede csm_ (the CSM shares the node's
  // sink). `owned_` is the fallback bundle when no external sink was
  // configured; handles stay valid across moves (heap bundle).
  std::unique_ptr<telemetry::Telemetry> owned_telem_;
  telemetry::Telemetry* telem_ = nullptr;
  telemetry::Counter c_blocks_created_;
  telemetry::Counter c_blocks_accepted_;
  telemetry::Counter c_blocks_rejected_;
  telemetry::Counter c_blocks_quarantined_;
  telemetry::Counter c_quarantine_expired_;
  telemetry::Counter c_foreign_dropped_;
  telemetry::Gauge g_quarantine_size_;
  // Batched signature pre-verification cache; validation consumes its
  // verdicts in serial order (chain/validation.h). Declared before
  // dag_/csm_ so in-flight jobs drain after all consumers are gone.
  exec::BatchVerifier presig_;
  chain::Dag dag_;
  csm::StateMachine csm_;
  std::function<std::uint64_t()> clock_;
  std::uint64_t manual_time_ms_ = 0;
  struct QuarantineEntry {
    chain::Block block;
    std::uint64_t parked_at_ms = 0;
  };
  std::map<chain::BlockHash, QuarantineEntry> quarantine_;
  sim::EnergyMeter* meter_ = nullptr;
  storage::TieredStore* storage_ = nullptr;
};

}  // namespace vegvisir::node
