// A ready-made simulated Vegvisir deployment.
//
// Wires N nodes (node 0 is the chain owner/CA, the rest are enrolled
// members), their gossip engines, energy meters and a shared
// simulated radio network over a caller-supplied topology. Tests,
// benchmarks and the examples all build scenarios on this.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "exec/pool.h"
#include "node/checkpoint.h"
#include "node/gossip.h"
#include "node/node.h"
#include "sim/faults.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "sim/topology.h"
#include "storage/engine.h"
#include "telemetry/telemetry.h"

namespace vegvisir::node {

struct ClusterConfig {
  int node_count = 8;
  std::string chain_name = "cluster-chain";
  std::uint64_t seed = 42;
  std::string member_role = "member";
  NodeConfig node_template;       // recon mode, validation params, ...
  // Per-node reconciliation overrides (node index -> ReconConfig),
  // replacing the template's recon config wholesale for those nodes.
  // This is how mixed-version fleets are built: e.g. nodes 0-2 on
  // setdiff protocol v2, nodes 3-5 pinned to protocol_version = 1.
  // Overrides survive crash/restart (ConfigFor applies them on every
  // incarnation).
  std::map<int, recon::ReconConfig> recon_overrides;
  GossipConfig gossip;
  sim::LinkParams link;
  sim::EnergyParams energy;
  // Indexes of adversarial nodes: they drop foreign blocks and do not
  // initiate gossip (paper §IV-B's malicious peers).
  std::vector<int> adversaries;
  // Fault-injection plan (sim/faults.h). Non-empty plans interpose a
  // FaultInjector on the network, skew node clocks, and schedule any
  // crash/restart events at construction time. Its fault.* counters
  // land in the network's telemetry bundle.
  sim::FaultPlan faults;
  // Execution width for the shared signature-verification pool
  // (DESIGN.md §12). Defaults to VEGVISIR_THREADS (serial when
  // unset); every observable result is identical for any setting.
  exec::ExecConfig exec = exec::ExecConfig::FromEnv();
  // Root of the durable storage tree (DESIGN.md §13). Empty (the
  // default) runs every node RAM-only, exactly as before storage
  // existed. Non-empty gives node i a TieredStore at
  // `<data_dir>/node<i>`: blocks are write-ahead logged before the
  // DAG acks them, crashes discard the in-memory checkpoint image and
  // restarts recover by log replay instead (losing nothing fsync'd),
  // and the fault plan's io faults are injected into the log's
  // writes. The directory must exist.
  std::string data_dir;
};

class Cluster {
 public:
  // `topology` must outlive the cluster.
  Cluster(ClusterConfig config, const sim::Topology* topology);

  sim::Simulator& simulator() { return simulator_; }
  sim::Network& network() { return *network_; }
  // Undefined behaviour if node i is currently crashed (check alive()).
  Node& node(int i) { return *nodes_[static_cast<std::size_t>(i)]; }
  GossipEngine& gossip(int i) {
    return *gossips_[static_cast<std::size_t>(i)];
  }
  sim::EnergyMeter& meter(int i) {
    return *meters_[static_cast<std::size_t>(i)];
  }
  int size() const { return static_cast<int>(nodes_.size()); }
  const std::string& user_of(int i) const {
    return nodes_[static_cast<std::size_t>(i)]->user_id();
  }

  // Advances simulated time by `duration` (processing all events).
  void RunFor(sim::TimeMs duration);

  // ---- crash / restart ---------------------------------------------
  // Powers node i off mid-protocol: captures an in-memory flash
  // checkpoint, tears down its gossip engine (in-flight sessions are
  // aborted, responder state orphaned), deregisters it from the
  // network (in-flight messages toward it become dead letters) and
  // destroys the Node. No-op if already crashed.
  void CrashNode(int i);
  // Rebuilds node i from its crash-time checkpoint and rejoins it to
  // the network with a fresh gossip engine (same telemetry bundle, so
  // its counters continue across the incarnation). Falls back to a
  // fresh-from-genesis node if the checkpoint does not restore.
  // Returns true if the CSM snapshot was adopted (false: replayed or
  // fresh). No-op (returns true) if the node is up.
  bool RestartNode(int i);
  bool alive(int i) const {
    return nodes_[static_cast<std::size_t>(i)] != nullptr;
  }

  // The fault injector wired into the network (null when
  // config.faults is empty). Deactivating it ends message mangling
  // and clock skew; scheduled crash events still fire.
  sim::FaultInjector* fault_injector() { return injector_.get(); }

  // Node i's durable store (null when data_dir is empty or node i is
  // currently crashed — a crash closes the store crash-equivalently).
  storage::TieredStore* store(int i) {
    return stores_[static_cast<std::size_t>(i)].get();
  }

  // How many nodes hold the given block (crashed nodes count as not
  // holding it).
  int CountHaving(const chain::BlockHash& h) const;

  // True iff every non-adversarial node is up and all their
  // fingerprints are identical.
  bool Converged() const;

  // The honest nodes' indexes.
  const std::vector<int>& honest() const { return honest_; }

  // ---- telemetry ----------------------------------------------------
  // Per-node bundle (node i's node.*, csm.*, recon.*, gossip.* series
  // and its trace ring).
  telemetry::Telemetry& telemetry(int i) {
    return *telemetry_[static_cast<std::size_t>(i)];
  }
  // The shared network's bundle (net.* series).
  telemetry::Telemetry& network_telemetry() { return *net_telem_; }
  // The shared execution pool every node batches Ed25519 checks on
  // (its exec.tasks_executed/steals land in the network bundle).
  exec::ThreadPool& exec_pool() { return *exec_pool_; }
  // One snapshot summing every node's registry plus the network's —
  // the cluster-wide totals a bench dumps to BENCH_<name>.json.
  telemetry::Snapshot AggregateSnapshot() const;

 private:
  bool IsAdversary(int i) const;
  NodeConfig ConfigFor(int i) const;
  crypto::KeyPair NodeKeys(int i) const;
  // (Re)opens node i's TieredStore; recovery runs inside Open.
  StatusOr<std::unique_ptr<storage::TieredStore>> OpenStore(int i) const;
  void WireNode(Node* node, int i);  // clock (with fault skew) + meter
  std::unique_ptr<GossipEngine> BuildEngine(int i);

  ClusterConfig config_;
  sim::Simulator simulator_;
  // Bundles are created before the components that write into them.
  std::vector<std::unique_ptr<telemetry::Telemetry>> telemetry_;
  std::unique_ptr<telemetry::Telemetry> net_telem_;
  // Declared before nodes_: node destructors wait out their in-flight
  // verification jobs, so the pool must outlive every node.
  std::unique_ptr<exec::ThreadPool> exec_pool_;
  std::unique_ptr<sim::FaultInjector> injector_;
  std::unique_ptr<sim::Network> network_;
  crypto::KeyPair owner_keys_;
  chain::Block genesis_;  // kept for fresh-rejoin fallback
  // Declared before nodes_: nodes hold raw pointers into their
  // stores, so the stores must be destroyed after them.
  std::vector<std::unique_ptr<storage::TieredStore>> stores_;
  std::vector<std::unique_ptr<Node>> nodes_;  // null while crashed
  std::vector<std::unique_ptr<GossipEngine>> gossips_;
  // Shut-down engines from crashed incarnations. Pending simulator
  // events still hold pointers into them, so they are retired here
  // instead of destroyed.
  std::vector<std::unique_ptr<GossipEngine>> retired_gossips_;
  std::vector<std::unique_ptr<sim::EnergyMeter>> meters_;
  std::vector<CheckpointImage> checkpoints_;   // crash-time flash images
  std::vector<std::uint32_t> generation_;      // restarts per node
  std::vector<int> honest_;
  telemetry::Counter c_crashes_;
  telemetry::Counter c_restarts_;
};

}  // namespace vegvisir::node
