// A ready-made simulated Vegvisir deployment.
//
// Wires N nodes (node 0 is the chain owner/CA, the rest are enrolled
// members), their gossip engines, energy meters and a shared
// simulated radio network over a caller-supplied topology. Tests,
// benchmarks and the examples all build scenarios on this.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "node/gossip.h"
#include "node/node.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "sim/topology.h"
#include "telemetry/telemetry.h"

namespace vegvisir::node {

struct ClusterConfig {
  int node_count = 8;
  std::string chain_name = "cluster-chain";
  std::uint64_t seed = 42;
  std::string member_role = "member";
  NodeConfig node_template;       // recon mode, validation params, ...
  GossipConfig gossip;
  sim::LinkParams link;
  sim::EnergyParams energy;
  // Indexes of adversarial nodes: they drop foreign blocks and do not
  // initiate gossip (paper §IV-B's malicious peers).
  std::vector<int> adversaries;
};

class Cluster {
 public:
  // `topology` must outlive the cluster.
  Cluster(ClusterConfig config, const sim::Topology* topology);

  sim::Simulator& simulator() { return simulator_; }
  sim::Network& network() { return *network_; }
  Node& node(int i) { return *nodes_[static_cast<std::size_t>(i)]; }
  GossipEngine& gossip(int i) {
    return *gossips_[static_cast<std::size_t>(i)];
  }
  sim::EnergyMeter& meter(int i) {
    return *meters_[static_cast<std::size_t>(i)];
  }
  int size() const { return static_cast<int>(nodes_.size()); }
  const std::string& user_of(int i) const {
    return nodes_[static_cast<std::size_t>(i)]->user_id();
  }

  // Advances simulated time by `duration` (processing all events).
  void RunFor(sim::TimeMs duration);

  // How many nodes hold the given block.
  int CountHaving(const chain::BlockHash& h) const;

  // True iff every non-adversarial node has an identical fingerprint.
  bool Converged() const;

  // The honest nodes' indexes.
  const std::vector<int>& honest() const { return honest_; }

  // ---- telemetry ----------------------------------------------------
  // Per-node bundle (node i's node.*, csm.*, recon.*, gossip.* series
  // and its trace ring).
  telemetry::Telemetry& telemetry(int i) {
    return *telemetry_[static_cast<std::size_t>(i)];
  }
  // The shared network's bundle (net.* series).
  telemetry::Telemetry& network_telemetry() { return *net_telem_; }
  // One snapshot summing every node's registry plus the network's —
  // the cluster-wide totals a bench dumps to BENCH_<name>.json.
  telemetry::Snapshot AggregateSnapshot() const;

 private:
  ClusterConfig config_;
  sim::Simulator simulator_;
  // Bundles are created before the components that write into them.
  std::vector<std::unique_ptr<telemetry::Telemetry>> telemetry_;
  std::unique_ptr<telemetry::Telemetry> net_telem_;
  std::unique_ptr<sim::Network> network_;
  crypto::KeyPair owner_keys_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<GossipEngine>> gossips_;
  std::vector<std::unique_ptr<sim::EnergyMeter>> meters_;
  std::vector<int> honest_;
};

}  // namespace vegvisir::node
