// The opportunistic gossip engine (paper §IV-G).
//
// "Periodically, a node picks a physical neighbor at random (if it
// has any)" and runs a reconciliation session against it. This engine
// bridges a Node to the simulated radio network: it fires a periodic
// (jittered) tick, starts initiator sessions toward random neighbours
// and demultiplexes incoming envelopes to the right session.
//
// Recovery behaviour (hardened against the fault injector,
// sim/faults.h): a session that fails or times out puts its peer on
// an exponential-backoff cooldown (with jitter) so repeatedly-failing
// neighbours stop being picked until their backoff expires; the first
// few failures also schedule a direct retry toward that peer the
// moment the backoff ends, so one lost message costs one backoff
// interval instead of waiting for the random selector to come back
// around. Malformed envelopes (short header, unknown direction or
// session) are counted and dropped, never parsed. Responder-side
// per-session state is reaped when its initiator disappears
// (crash, partition) instead of leaking.
//
// Envelope format on the wire:
//   u8  direction (0: initiator->responder, 1: responder->initiator)
//   u64 session id (unique per initiator engine)
//   ... reconciliation message bytes
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>

#include "node/node.h"
#include "recon/session.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace vegvisir::node {

// Gossip envelope framing (see the header comment): a 9-byte header
// (u8 direction + u64 session id) followed by the reconciliation
// message payload.
inline constexpr std::uint8_t kEnvelopeToResponder = 0;
inline constexpr std::uint8_t kEnvelopeToInitiator = 1;
inline constexpr std::size_t kEnvelopeHeaderBytes = 9;

struct GossipEnvelope {
  std::uint8_t direction = kEnvelopeToResponder;
  std::uint64_t session_id = 0;
  // View into the input buffer (valid only while it lives).
  ByteSpan payload;
};

// Parses the envelope framing with full bounds checking; the payload
// is NOT decoded (that is the receiving session's job). The only
// decode path a gossip message travels before a session sees it, and
// the unit the envelope fuzz harness drives directly.
Status ParseEnvelope(ByteSpan envelope, GossipEnvelope* out);

struct GossipConfig {
  sim::TimeMs period_ms = 1'000;
  sim::TimeMs jitter_ms = 250;
  // Sessions idle longer than this are abandoned (lost messages);
  // responder-side state idle longer than this is reaped as orphaned.
  // Inactivity-based: any received message resets the clock, so this
  // only has to cover a round trip plus processing — seconds, not the
  // whole transfer. Failing fast matters: the engine runs one session
  // per peer, so a stalled session blocks that pair until it expires.
  sim::TimeMs session_timeout_ms = 8'000;
  bool enabled = true;  // adversaries may refuse to initiate
  // ---- failure backoff -------------------------------------------
  // After the k-th consecutive failure toward a peer, that peer is
  // skipped by neighbour selection for
  //   min(backoff_base_ms << (k-1), backoff_max_ms) + U[0, jitter]
  // milliseconds. The first `max_fast_retries` failures also schedule
  // a direct retry when the backoff expires.
  sim::TimeMs backoff_base_ms = 2'000;
  sim::TimeMs backoff_max_ms = 60'000;
  sim::TimeMs backoff_jitter_ms = 1'000;
  std::uint32_t max_fast_retries = 4;
  // Hard cap on concurrently tracked responder-side sessions; beyond
  // it the stalest entry is evicted as orphaned.
  std::size_t responder_session_cap = 64;
};

// Engine-level view over the node's telemetry registry: gossip.* for
// the engine's own counters, recon.initiator.* for session traffic.
// Assembled on demand; the initiator traffic counts *live*, i.e. it
// includes sessions still in flight.
struct GossipStats {
  std::uint64_t ticks = 0;
  std::uint64_t sessions_started = 0;
  std::uint64_t sessions_completed = 0;
  std::uint64_t sessions_failed = 0;
  std::uint64_t sessions_timed_out = 0;
  std::uint64_t sessions_aborted = 0;      // crash/unreachable teardown
  std::uint64_t envelopes_rejected = 0;    // malformed/unknown envelopes
  std::uint64_t retries = 0;               // direct post-backoff retries
  std::uint64_t backoffs = 0;              // failure backoffs recorded
  std::uint64_t cooldown_skips = 0;        // peers skipped while cooling
  std::uint64_t responder_orphaned = 0;    // responder state reaped
  std::uint64_t peer_downgrades = 0;       // setdiff peers marked legacy
  recon::SessionStats initiator;
};

class GossipEngine {
 public:
  // Consecutive-failure state for one peer; selection skips the peer
  // until next_ok_ms. Exposed for tests and debugging.
  struct PeerBackoff {
    std::uint32_t failures = 0;
    sim::TimeMs next_ok_ms = 0;
  };

  GossipEngine(Node* node, sim::Simulator* simulator, sim::Network* network,
               sim::NodeId id, GossipConfig config, std::uint64_t seed);

  // Registers the network handler and schedules the first tick.
  // `meter` (optional) charges radio energy for this node.
  void Start(sim::EnergyMeter* meter = nullptr);

  // Stops initiating. In-flight sessions keep draining and
  // maintenance (session/responder expiry) keeps running.
  void Stop() { running_ = false; }

  // Full teardown for a crash: stops the tick chain, drops every
  // in-flight initiator session (counted as aborted) and releases all
  // responder-side state (counted as orphaned). The engine must not
  // be Start()ed again; the cluster builds a fresh one on restart.
  void Shutdown();

  GossipStats stats() const;
  sim::NodeId id() const { return id_; }

  // ---- introspection for tests / invariant checks -----------------
  std::size_t ActiveSessionCount() const { return sessions_.size(); }
  std::size_t ResponderSessionCount() const { return responders_.size(); }
  const std::map<sim::NodeId, PeerBackoff>& peer_backoff() const {
    return backoff_;
  }
  // The frontier level the next session toward this peer resumes at
  // (0: no failed catch-up pending, sessions start at start_level).
  std::uint32_t ResumeLevelFor(sim::NodeId peer) const {
    const auto it = resume_level_.find(peer);
    return it == resume_level_.end() ? 0 : it->second;
  }
  // True once a setdiff handshake toward this peer failed and future
  // sessions are downgraded to hash-first.
  bool IsLegacyPeer(sim::NodeId peer) const {
    return legacy_peers_.count(peer) > 0;
  }

 private:
  struct ActiveSession {
    std::unique_ptr<recon::InitiatorSession> session;
    sim::NodeId peer;
    sim::TimeMs started_ms;
    sim::TimeMs last_activity_ms;
  };
  struct ResponderState {
    recon::ResponderSession session;
    sim::TimeMs last_activity_ms;
  };
  enum class FinishReason { kCompleted, kFailed, kAborted };

  void Tick();
  void OnMessage(sim::NodeId from, const Bytes& envelope);
  void StartSessionWith(sim::NodeId peer);
  void RetryPeer(sim::NodeId peer);
  // True if the envelope made it onto the air (false: unreachable or
  // flap-blocked; counted under gossip.envelopes_unsent).
  bool SendEnvelope(sim::NodeId to, std::uint8_t direction,
                    std::uint64_t session_id, const Bytes& payload);
  void FinishSession(std::uint64_t session_id, FinishReason reason);
  // A session died before its setdiff probe was ever answered: that
  // is how a legacy (protocol-version-1) peer presents, since it
  // rejects the probe without replying. Downgrade the peer so future
  // sessions run hash-first. (A probe lost to radio loss trips this
  // too — a deliberate trade: hash-first stays correct, and one
  // conservative downgrade beats timing out every future session.)
  void MaybeDowngradePeer(const ActiveSession& session);
  void RecordFailure(sim::NodeId peer);
  void RejectEnvelope(std::size_t envelope_bytes);
  ResponderState& ResponderFor(std::uint64_t session_id, sim::TimeMs now);
  bool HasActiveSessionWith(sim::NodeId peer) const;
  void ExpireSessions();

  Node* node_;
  sim::Simulator* simulator_;
  sim::Network* network_;
  sim::NodeId id_;
  GossipConfig config_;
  Rng rng_;
  bool running_ = false;
  bool shutdown_ = false;
  bool ticking_ = false;  // a tick chain is scheduled

  std::uint64_t next_session_id_ = 1;
  std::map<std::uint64_t, ActiveSession> sessions_;
  // Responder-side state per remote initiator session, reaped on
  // idle-timeout (the initiator crashed, gave up, or its replies are
  // being eaten by the network).
  std::map<std::uint64_t, ResponderState> responders_;
  // Where a failed/timed-out catch-up left off, per peer: the next
  // session toward that peer resumes at this frontier level, so deep
  // catch-ups make progress across sessions even on lossy links.
  std::map<sim::NodeId, std::uint32_t> resume_level_;
  // Consecutive-failure backoff per peer (the cooldown list).
  std::map<sim::NodeId, PeerBackoff> backoff_;
  // Peers whose setdiff handshake failed; sessions toward them run
  // hash-first. Survives Stop()/Start() but not Shutdown() (a crash
  // rebuilds the engine, and the fresh one re-probes once).
  std::set<sim::NodeId> legacy_peers_;
  // Engine-only counters (session traffic is counted by the sessions
  // themselves, into the same per-node registry).
  telemetry::Counter c_ticks_;
  telemetry::Counter c_timed_out_;
  telemetry::Counter c_aborted_;
  telemetry::Counter c_envelopes_rejected_;
  telemetry::Counter c_envelope_bytes_rejected_;
  telemetry::Counter c_envelopes_unsent_;
  telemetry::Counter c_envelope_bytes_unsent_;
  telemetry::Counter c_backoffs_;
  telemetry::Counter c_retries_;
  telemetry::Counter c_cooldown_skips_;
  telemetry::Counter c_responder_orphaned_;
  telemetry::Counter c_peer_downgrades_;
};

}  // namespace vegvisir::node
