// The opportunistic gossip engine (paper §IV-G).
//
// "Periodically, a node picks a physical neighbor at random (if it
// has any)" and runs a reconciliation session against it. This engine
// bridges a Node to the simulated radio network: it fires a periodic
// (jittered) tick, starts initiator sessions toward random neighbours
// and demultiplexes incoming envelopes to the right session.
//
// Envelope format on the wire:
//   u8  direction (0: initiator->responder, 1: responder->initiator)
//   u64 session id (unique per initiator engine)
//   ... reconciliation message bytes
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "node/node.h"
#include "recon/session.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace vegvisir::node {

struct GossipConfig {
  sim::TimeMs period_ms = 1'000;
  sim::TimeMs jitter_ms = 250;
  // Sessions idle longer than this are abandoned (lost messages).
  sim::TimeMs session_timeout_ms = 30'000;
  bool enabled = true;  // adversaries may refuse to initiate
};

// Engine-level view over the node's telemetry registry: gossip.* for
// the engine's own counters, recon.initiator.* for session traffic.
// Assembled on demand; the initiator traffic counts *live*, i.e. it
// includes sessions still in flight.
struct GossipStats {
  std::uint64_t ticks = 0;
  std::uint64_t sessions_started = 0;
  std::uint64_t sessions_completed = 0;
  std::uint64_t sessions_failed = 0;
  std::uint64_t sessions_timed_out = 0;
  recon::SessionStats initiator;
};

class GossipEngine {
 public:
  GossipEngine(Node* node, sim::Simulator* simulator, sim::Network* network,
               sim::NodeId id, GossipConfig config, std::uint64_t seed);

  // Registers the network handler and schedules the first tick.
  // `meter` (optional) charges radio energy for this node.
  void Start(sim::EnergyMeter* meter = nullptr);

  // Stops initiating (in-flight sessions keep draining).
  void Stop() { running_ = false; }

  GossipStats stats() const;
  const recon::SessionStats& responder_stats() const {
    return responder_.stats();
  }
  sim::NodeId id() const { return id_; }

 private:
  struct ActiveSession {
    std::unique_ptr<recon::InitiatorSession> session;
    sim::NodeId peer;
    sim::TimeMs started_ms;
    sim::TimeMs last_activity_ms;
  };

  void Tick();
  void OnMessage(sim::NodeId from, const Bytes& envelope);
  void SendEnvelope(sim::NodeId to, std::uint8_t direction,
                    std::uint64_t session_id, const Bytes& payload);
  void FinishSession(std::uint64_t session_id, bool failed);
  void ExpireSessions();

  Node* node_;
  sim::Simulator* simulator_;
  sim::Network* network_;
  sim::NodeId id_;
  GossipConfig config_;
  Rng rng_;
  bool running_ = false;

  std::uint64_t next_session_id_ = 1;
  std::map<std::uint64_t, ActiveSession> sessions_;
  // Where a failed/timed-out catch-up left off, per peer: the next
  // session toward that peer resumes at this frontier level, so deep
  // catch-ups make progress across sessions even on lossy links.
  std::map<sim::NodeId, std::uint32_t> resume_level_;
  recon::ResponderSession responder_;
  // Engine-only counters (session traffic is counted by the sessions
  // themselves, into the same per-node registry).
  telemetry::Counter c_ticks_;
  telemetry::Counter c_timed_out_;
};

}  // namespace vegvisir::node
