#include "node/checkpoint.h"

#include <fstream>

#include "chain/store.h"

namespace vegvisir::node {
namespace {

Status WriteFile(const std::string& path, ByteSpan data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return InternalError("cannot open " + path);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) return InternalError("short write to " + path);
  return Status::Ok();
}

StatusOr<Bytes> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return NotFoundError("cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  Bytes data(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(data.data()), size);
  if (!in) return InternalError("short read from " + path);
  return data;
}

}  // namespace

CheckpointImage CaptureCheckpoint(const Node& node) {
  CheckpointImage image;
  image.dag = chain::SerializeDag(node.dag());
  image.csm_snapshot = node.state().SaveSnapshot();
  return image;
}

StatusOr<std::unique_ptr<Node>> RestoreFromImage(NodeConfig config,
                                                 crypto::KeyPair keys,
                                                 const CheckpointImage& image,
                                                 bool* used_snapshot) {
  auto dag = chain::DeserializeDag(image.dag);
  if (!dag.ok()) return dag.status();
  return Node::Restore(std::move(config), std::move(keys), *std::move(dag),
                       image.csm_snapshot, used_snapshot);
}

Status SaveCheckpoint(const Node& node, const std::string& path_prefix) {
  VEGVISIR_RETURN_IF_ERROR(
      chain::SaveDagToFile(node.dag(), path_prefix + ".dag"));
  return WriteFile(path_prefix + ".csm", node.state().SaveSnapshot());
}

StatusOr<std::unique_ptr<Node>> LoadCheckpoint(NodeConfig config,
                                               crypto::KeyPair keys,
                                               const std::string& path_prefix,
                                               bool* used_snapshot) {
  auto dag = chain::LoadDagFromFile(path_prefix + ".dag");
  if (!dag.ok()) return dag.status();
  // A missing/corrupted snapshot degrades to replay, not to failure.
  Bytes snapshot;
  if (auto snap = ReadFile(path_prefix + ".csm"); snap.ok()) {
    snapshot = *std::move(snap);
  }
  return Node::Restore(std::move(config), std::move(keys), *std::move(dag),
                       snapshot, used_snapshot);
}

}  // namespace vegvisir::node
