#include "node/checkpoint.h"

#include "chain/store.h"
#include "storage/engine.h"
#include "util/fsio.h"

namespace vegvisir::node {

CheckpointImage CaptureCheckpoint(const Node& node) {
  CheckpointImage image;
  image.dag = chain::SerializeDag(node.dag());
  image.csm_snapshot = node.state().SaveSnapshot();
  return image;
}

StatusOr<std::unique_ptr<Node>> RestoreFromImage(NodeConfig config,
                                                 crypto::KeyPair keys,
                                                 const CheckpointImage& image,
                                                 bool* used_snapshot) {
  auto dag = chain::DeserializeDag(image.dag);
  if (!dag.ok()) return dag.status();
  return Node::Restore(std::move(config), std::move(keys), *std::move(dag),
                       image.csm_snapshot, used_snapshot);
}

Status SaveCheckpoint(const Node& node, const std::string& path_prefix) {
  VEGVISIR_RETURN_IF_ERROR(
      chain::SaveDagToFile(node.dag(), path_prefix + ".dag"));
  return DurableWriteFile(path_prefix + ".csm", node.state().SaveSnapshot());
}

StatusOr<std::unique_ptr<Node>> LoadCheckpoint(NodeConfig config,
                                               crypto::KeyPair keys,
                                               const std::string& path_prefix,
                                               bool* used_snapshot) {
  auto dag = chain::LoadDagFromFile(path_prefix + ".dag");
  if (!dag.ok()) return dag.status();
  // A missing/corrupted snapshot degrades to replay, not to failure.
  Bytes snapshot;
  if (auto snap = ReadFileBytes(path_prefix + ".csm"); snap.ok()) {
    snapshot = *std::move(snap);
  }
  return Node::Restore(std::move(config), std::move(keys), *std::move(dag),
                       snapshot, used_snapshot);
}

StatusOr<std::unique_ptr<Node>> RecoverFromStorage(NodeConfig config,
                                                   crypto::KeyPair keys,
                                                   storage::TieredStore* store) {
  auto dag = store->RecoverDag();
  if (!dag.ok()) return dag.status();
  // No snapshot on purpose: the log's replay order is deterministic,
  // so replaying through the CSM reproduces the pre-crash state for
  // every block that reached fsync — and only those.
  auto node = Node::Restore(std::move(config), std::move(keys),
                            *std::move(dag), ByteSpan());
  if (!node.ok()) return node.status();
  VEGVISIR_RETURN_IF_ERROR((*node)->AttachStorage(store));
  return node;
}

}  // namespace vegvisir::node
