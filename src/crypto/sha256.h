// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for block hashes, certificate fingerprints and HMAC. Validated
// against the NIST test vectors in tests/crypto_test.cpp.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace vegvisir::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;

using Sha256Digest = std::array<std::uint8_t, kSha256DigestSize>;

// Incremental SHA-256. Streaming interface so large DAG segments can
// be hashed without concatenating buffers.
class Sha256 {
 public:
  Sha256() { Reset(); }

  void Reset();
  void Update(ByteSpan data);
  // Finalizes and returns the digest. The object must be Reset()
  // before further use.
  Sha256Digest Finish();

  // One-shot convenience.
  static Sha256Digest Hash(ByteSpan data);

 private:
  void Compress(const std::uint8_t* block);

  std::uint32_t state_[8];
  std::uint64_t bit_count_;
  std::uint8_t buffer_[64];
  std::size_t buffer_len_;
};

}  // namespace vegvisir::crypto
