// HMAC-SHA256 (RFC 2104 / FIPS 198-1).
//
// Used by the deterministic random bit generator (HMAC-DRBG) and
// available to applications for message authentication.
#pragma once

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace vegvisir::crypto {

class HmacSha256 {
 public:
  explicit HmacSha256(ByteSpan key);

  void Update(ByteSpan data);
  Sha256Digest Finish();

  // Re-keys and resets for a new message.
  void Reset(ByteSpan key);

  static Sha256Digest Mac(ByteSpan key, ByteSpan data);

 private:
  std::uint8_t opad_key_[64];
  Sha256 inner_;
};

}  // namespace vegvisir::crypto
