#include "crypto/sha512.h"

#include <cstring>

namespace vegvisir::crypto {
namespace {

constexpr std::uint64_t kK[80] = {
    0x428a2f98d728ae22ULL, 0x7137449123ef65cdULL, 0xb5c0fbcfec4d3b2fULL,
    0xe9b5dba58189dbbcULL, 0x3956c25bf348b538ULL, 0x59f111f1b605d019ULL,
    0x923f82a4af194f9bULL, 0xab1c5ed5da6d8118ULL, 0xd807aa98a3030242ULL,
    0x12835b0145706fbeULL, 0x243185be4ee4b28cULL, 0x550c7dc3d5ffb4e2ULL,
    0x72be5d74f27b896fULL, 0x80deb1fe3b1696b1ULL, 0x9bdc06a725c71235ULL,
    0xc19bf174cf692694ULL, 0xe49b69c19ef14ad2ULL, 0xefbe4786384f25e3ULL,
    0x0fc19dc68b8cd5b5ULL, 0x240ca1cc77ac9c65ULL, 0x2de92c6f592b0275ULL,
    0x4a7484aa6ea6e483ULL, 0x5cb0a9dcbd41fbd4ULL, 0x76f988da831153b5ULL,
    0x983e5152ee66dfabULL, 0xa831c66d2db43210ULL, 0xb00327c898fb213fULL,
    0xbf597fc7beef0ee4ULL, 0xc6e00bf33da88fc2ULL, 0xd5a79147930aa725ULL,
    0x06ca6351e003826fULL, 0x142929670a0e6e70ULL, 0x27b70a8546d22ffcULL,
    0x2e1b21385c26c926ULL, 0x4d2c6dfc5ac42aedULL, 0x53380d139d95b3dfULL,
    0x650a73548baf63deULL, 0x766a0abb3c77b2a8ULL, 0x81c2c92e47edaee6ULL,
    0x92722c851482353bULL, 0xa2bfe8a14cf10364ULL, 0xa81a664bbc423001ULL,
    0xc24b8b70d0f89791ULL, 0xc76c51a30654be30ULL, 0xd192e819d6ef5218ULL,
    0xd69906245565a910ULL, 0xf40e35855771202aULL, 0x106aa07032bbd1b8ULL,
    0x19a4c116b8d2d0c8ULL, 0x1e376c085141ab53ULL, 0x2748774cdf8eeb99ULL,
    0x34b0bcb5e19b48a8ULL, 0x391c0cb3c5c95a63ULL, 0x4ed8aa4ae3418acbULL,
    0x5b9cca4f7763e373ULL, 0x682e6ff3d6b2b8a3ULL, 0x748f82ee5defb2fcULL,
    0x78a5636f43172f60ULL, 0x84c87814a1f0ab72ULL, 0x8cc702081a6439ecULL,
    0x90befffa23631e28ULL, 0xa4506cebde82bde9ULL, 0xbef9a3f7b2c67915ULL,
    0xc67178f2e372532bULL, 0xca273eceea26619cULL, 0xd186b8c721c0c207ULL,
    0xeada7dd6cde0eb1eULL, 0xf57d4f7fee6ed178ULL, 0x06f067aa72176fbaULL,
    0x0a637dc5a2c898a6ULL, 0x113f9804bef90daeULL, 0x1b710b35131c471bULL,
    0x28db77f523047d84ULL, 0x32caab7b40c72493ULL, 0x3c9ebe0a15c9bebcULL,
    0x431d67c49c100d4cULL, 0x4cc5d4becb3e42b6ULL, 0x597f299cfc657e2aULL,
    0x5fcb6fab3ad6faecULL, 0x6c44198c4a475817ULL,
};

inline std::uint64_t Rotr(std::uint64_t x, int n) {
  return (x >> n) | (x << (64 - n));
}

inline std::uint64_t Load64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
  return v;
}

inline void Store64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<std::uint8_t>(v >> (56 - 8 * i));
  }
}

}  // namespace

void Sha512::Reset() {
  state_[0] = 0x6a09e667f3bcc908ULL;
  state_[1] = 0xbb67ae8584caa73bULL;
  state_[2] = 0x3c6ef372fe94f82bULL;
  state_[3] = 0xa54ff53a5f1d36f1ULL;
  state_[4] = 0x510e527fade682d1ULL;
  state_[5] = 0x9b05688c2b3e6c1fULL;
  state_[6] = 0x1f83d9abfb41bd6bULL;
  state_[7] = 0x5be0cd19137e2179ULL;
  bit_count_lo_ = 0;
  bit_count_hi_ = 0;
  buffer_len_ = 0;
}

void Sha512::Compress(const std::uint8_t* block) {
  std::uint64_t w[80];
  for (int i = 0; i < 16; ++i) w[i] = Load64(block + 8 * i);
  for (int i = 16; i < 80; ++i) {
    const std::uint64_t s0 =
        Rotr(w[i - 15], 1) ^ Rotr(w[i - 15], 8) ^ (w[i - 15] >> 7);
    const std::uint64_t s1 =
        Rotr(w[i - 2], 19) ^ Rotr(w[i - 2], 61) ^ (w[i - 2] >> 6);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  std::uint64_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  std::uint64_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];

  for (int i = 0; i < 80; ++i) {
    const std::uint64_t s1 = Rotr(e, 14) ^ Rotr(e, 18) ^ Rotr(e, 41);
    const std::uint64_t ch = (e & f) ^ (~e & g);
    const std::uint64_t t1 = h + s1 + ch + kK[i] + w[i];
    const std::uint64_t s0 = Rotr(a, 28) ^ Rotr(a, 34) ^ Rotr(a, 39);
    const std::uint64_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint64_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha512::Update(ByteSpan data) {
  if (data.empty()) return;  // also: memcpy from a null span is UB
  const std::uint64_t bits = std::uint64_t{data.size()} * 8;
  const std::uint64_t old_lo = bit_count_lo_;
  bit_count_lo_ += bits;
  if (bit_count_lo_ < old_lo) ++bit_count_hi_;

  std::size_t offset = 0;
  if (buffer_len_ > 0) {
    const std::size_t take = std::min(data.size(), 128 - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == 128) {
      Compress(buffer_);
      buffer_len_ = 0;
    }
  }
  while (offset + 128 <= data.size()) {
    Compress(data.data() + offset);
    offset += 128;
  }
  if (offset < data.size()) {
    buffer_len_ = data.size() - offset;
    std::memcpy(buffer_, data.data() + offset, buffer_len_);
  }
}

Sha512Digest Sha512::Finish() {
  const std::uint64_t lo = bit_count_lo_;
  const std::uint64_t hi = bit_count_hi_;
  const std::uint8_t pad = 0x80;
  Update(ByteSpan(&pad, 1));
  const std::uint8_t zero = 0x00;
  while (buffer_len_ != 112) Update(ByteSpan(&zero, 1));
  std::uint8_t len_bytes[16];
  Store64(len_bytes, hi);
  Store64(len_bytes + 8, lo);
  Update(ByteSpan(len_bytes, 16));

  Sha512Digest digest;
  for (int i = 0; i < 8; ++i) Store64(digest.data() + 8 * i, state_[i]);
  return digest;
}

Sha512Digest Sha512::Hash(ByteSpan data) {
  Sha512 h;
  h.Update(data);
  return h.Finish();
}

}  // namespace vegvisir::crypto
