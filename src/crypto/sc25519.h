// Scalar arithmetic modulo the Ed25519 group order
// L = 2^252 + 27742317777372353535851937790883648493.
//
// Scalars are 4 little-endian 64-bit words. Reduction uses a simple
// shift-and-subtract scheme: it is called only a handful of times per
// signature so simplicity beats the heavily unrolled ref10 code.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace vegvisir::crypto {

struct Scalar {
  std::uint64_t w[4];  // little-endian words; value < L when canonical
};

Scalar ScZero();

// Loads up to 64 little-endian bytes and reduces mod L.
Scalar ScFromBytesModL(ByteSpan bytes);

// Canonical 32-byte little-endian encoding.
std::array<std::uint8_t, 32> ScToBytes(const Scalar& s);

// (a + b) mod L.
Scalar ScAdd(const Scalar& a, const Scalar& b);

// (a * b + c) mod L — the core of Ed25519 signing (s = r + k*a).
Scalar ScMulAdd(const Scalar& a, const Scalar& b, const Scalar& c);

// True iff the 32-byte encoding represents a value < L (RFC 8032
// requires rejecting signatures whose s is non-canonical).
bool ScIsCanonical(ByteSpan bytes32);

bool ScIsZero(const Scalar& s);

}  // namespace vegvisir::crypto
