#include "crypto/poly1305.h"

#include <cstring>

namespace vegvisir::crypto {
namespace {

std::uint32_t Load32Le(const std::uint8_t* p) {
  return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) |
         (std::uint32_t{p[2]} << 16) | (std::uint32_t{p[3]} << 24);
}

}  // namespace

Poly1305::Poly1305(const Poly1305Key& key) {
  // r is clamped per RFC 8439 §2.5.1 and split into 5 26-bit limbs.
  const std::uint8_t* k = key.data();
  r_[0] = Load32Le(k + 0) & 0x3ffffff;
  r_[1] = (Load32Le(k + 3) >> 2) & 0x3ffff03;
  r_[2] = (Load32Le(k + 6) >> 4) & 0x3ffc0ff;
  r_[3] = (Load32Le(k + 9) >> 6) & 0x3f03fff;
  r_[4] = (Load32Le(k + 12) >> 8) & 0x00fffff;
  std::memset(h_, 0, sizeof(h_));
  std::memcpy(s_, k + 16, 16);
}

void Poly1305::Block(const std::uint8_t* block, std::uint64_t hibit) {
  const std::uint32_t r0 = r_[0], r1 = r_[1], r2 = r_[2], r3 = r_[3],
                      r4 = r_[4];
  const std::uint32_t s1 = r1 * 5, s2 = r2 * 5, s3 = r3 * 5, s4 = r4 * 5;

  std::uint32_t h0 = h_[0], h1 = h_[1], h2 = h_[2], h3 = h_[3], h4 = h_[4];

  h0 += Load32Le(block + 0) & 0x3ffffff;
  h1 += (Load32Le(block + 3) >> 2) & 0x3ffffff;
  h2 += (Load32Le(block + 6) >> 4) & 0x3ffffff;
  h3 += (Load32Le(block + 9) >> 6) & 0x3ffffff;
  h4 += (Load32Le(block + 12) >> 8) | static_cast<std::uint32_t>(hibit);

  // h *= r (mod 2^130 - 5), 64-bit accumulators.
  using u64 = std::uint64_t;
  const u64 d0 = (u64)h0 * r0 + (u64)h1 * s4 + (u64)h2 * s3 + (u64)h3 * s2 +
                 (u64)h4 * s1;
  const u64 d1 = (u64)h0 * r1 + (u64)h1 * r0 + (u64)h2 * s4 + (u64)h3 * s3 +
                 (u64)h4 * s2;
  const u64 d2 = (u64)h0 * r2 + (u64)h1 * r1 + (u64)h2 * r0 + (u64)h3 * s4 +
                 (u64)h4 * s3;
  const u64 d3 = (u64)h0 * r3 + (u64)h1 * r2 + (u64)h2 * r1 + (u64)h3 * r0 +
                 (u64)h4 * s4;
  const u64 d4 = (u64)h0 * r4 + (u64)h1 * r3 + (u64)h2 * r2 + (u64)h3 * r1 +
                 (u64)h4 * r0;

  u64 c;
  u64 t0 = d0;
  c = t0 >> 26;
  h0 = (std::uint32_t)t0 & 0x3ffffff;
  u64 t1 = d1 + c;
  c = t1 >> 26;
  h1 = (std::uint32_t)t1 & 0x3ffffff;
  u64 t2 = d2 + c;
  c = t2 >> 26;
  h2 = (std::uint32_t)t2 & 0x3ffffff;
  u64 t3 = d3 + c;
  c = t3 >> 26;
  h3 = (std::uint32_t)t3 & 0x3ffffff;
  u64 t4 = d4 + c;
  c = t4 >> 26;
  h4 = (std::uint32_t)t4 & 0x3ffffff;
  h0 += (std::uint32_t)(c * 5);
  h1 += h0 >> 26;
  h0 &= 0x3ffffff;

  h_[0] = h0;
  h_[1] = h1;
  h_[2] = h2;
  h_[3] = h3;
  h_[4] = h4;
}

void Poly1305::Update(ByteSpan data) {
  std::size_t offset = 0;
  if (buffer_len_ > 0) {
    const std::size_t take = std::min(data.size(), 16 - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == 16) {
      Block(buffer_, 1u << 24);
      buffer_len_ = 0;
    }
  }
  while (offset + 16 <= data.size()) {
    Block(data.data() + offset, 1u << 24);
    offset += 16;
  }
  if (offset < data.size()) {
    buffer_len_ = data.size() - offset;
    std::memcpy(buffer_, data.data() + offset, buffer_len_);
  }
}

Poly1305Tag Poly1305::Finish() {
  if (buffer_len_ > 0) {
    // Final partial block: append 0x01 and zero-pad; no high bit.
    buffer_[buffer_len_] = 1;
    for (std::size_t i = buffer_len_ + 1; i < 16; ++i) buffer_[i] = 0;
    Block(buffer_, 0);
    buffer_len_ = 0;
  }

  std::uint32_t h0 = h_[0], h1 = h_[1], h2 = h_[2], h3 = h_[3], h4 = h_[4];

  // Full carry.
  std::uint32_t c;
  c = h1 >> 26;
  h1 &= 0x3ffffff;
  h2 += c;
  c = h2 >> 26;
  h2 &= 0x3ffffff;
  h3 += c;
  c = h3 >> 26;
  h3 &= 0x3ffffff;
  h4 += c;
  c = h4 >> 26;
  h4 &= 0x3ffffff;
  h0 += c * 5;
  c = h0 >> 26;
  h0 &= 0x3ffffff;
  h1 += c;

  // Compute h + (-p) and select it if h >= p.
  std::uint32_t g0 = h0 + 5;
  c = g0 >> 26;
  g0 &= 0x3ffffff;
  std::uint32_t g1 = h1 + c;
  c = g1 >> 26;
  g1 &= 0x3ffffff;
  std::uint32_t g2 = h2 + c;
  c = g2 >> 26;
  g2 &= 0x3ffffff;
  std::uint32_t g3 = h3 + c;
  c = g3 >> 26;
  g3 &= 0x3ffffff;
  std::uint32_t g4 = h4 + c - (1u << 26);

  std::uint32_t mask = (g4 >> 31) - 1;  // all-ones iff h >= p
  h0 = (h0 & ~mask) | (g0 & mask);
  h1 = (h1 & ~mask) | (g1 & mask);
  h2 = (h2 & ~mask) | (g2 & mask);
  h3 = (h3 & ~mask) | (g3 & mask);
  h4 = (h4 & ~mask) | (g4 & mask);

  // Pack into 128 bits.
  const std::uint32_t w0 = (h0 | (h1 << 26));
  const std::uint32_t w1 = ((h1 >> 6) | (h2 << 20));
  const std::uint32_t w2 = ((h2 >> 12) | (h3 << 14));
  const std::uint32_t w3 = ((h3 >> 18) | (h4 << 8));

  // tag = (h + s) mod 2^128.
  std::uint64_t f;
  std::uint32_t out[4];
  f = (std::uint64_t)w0 + Load32Le(s_ + 0);
  out[0] = (std::uint32_t)f;
  f = (std::uint64_t)w1 + Load32Le(s_ + 4) + (f >> 32);
  out[1] = (std::uint32_t)f;
  f = (std::uint64_t)w2 + Load32Le(s_ + 8) + (f >> 32);
  out[2] = (std::uint32_t)f;
  f = (std::uint64_t)w3 + Load32Le(s_ + 12) + (f >> 32);
  out[3] = (std::uint32_t)f;

  Poly1305Tag tag;
  for (int i = 0; i < 4; ++i) {
    tag[4 * i + 0] = (std::uint8_t)(out[i]);
    tag[4 * i + 1] = (std::uint8_t)(out[i] >> 8);
    tag[4 * i + 2] = (std::uint8_t)(out[i] >> 16);
    tag[4 * i + 3] = (std::uint8_t)(out[i] >> 24);
  }
  return tag;
}

Poly1305Tag Poly1305::Mac(const Poly1305Key& key, ByteSpan data) {
  Poly1305 mac(key);
  mac.Update(data);
  return mac.Finish();
}

}  // namespace vegvisir::crypto
