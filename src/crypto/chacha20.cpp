#include "crypto/chacha20.h"

namespace vegvisir::crypto {
namespace {

inline std::uint32_t Rotl(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

inline std::uint32_t Load32Le(const std::uint8_t* p) {
  return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) |
         (std::uint32_t{p[2]} << 16) | (std::uint32_t{p[3]} << 24);
}

inline void Store32Le(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

inline void QuarterRound(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                         std::uint32_t& d) {
  a += b; d ^= a; d = Rotl(d, 16);
  c += d; b ^= c; b = Rotl(b, 12);
  a += b; d ^= a; d = Rotl(d, 8);
  c += d; b ^= c; b = Rotl(b, 7);
}

}  // namespace

std::array<std::uint8_t, 64> ChaCha20Block(const ChaCha20Key& key,
                                           const ChaCha20Nonce& nonce,
                                           std::uint32_t counter) {
  std::uint32_t state[16];
  state[0] = 0x61707865;
  state[1] = 0x3320646e;
  state[2] = 0x79622d32;
  state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state[4 + i] = Load32Le(key.data() + 4 * i);
  state[12] = counter;
  for (int i = 0; i < 3; ++i) state[13 + i] = Load32Le(nonce.data() + 4 * i);

  std::uint32_t x[16];
  for (int i = 0; i < 16; ++i) x[i] = state[i];

  for (int round = 0; round < 10; ++round) {
    QuarterRound(x[0], x[4], x[8], x[12]);
    QuarterRound(x[1], x[5], x[9], x[13]);
    QuarterRound(x[2], x[6], x[10], x[14]);
    QuarterRound(x[3], x[7], x[11], x[15]);
    QuarterRound(x[0], x[5], x[10], x[15]);
    QuarterRound(x[1], x[6], x[11], x[12]);
    QuarterRound(x[2], x[7], x[8], x[13]);
    QuarterRound(x[3], x[4], x[9], x[14]);
  }

  std::array<std::uint8_t, 64> out;
  for (int i = 0; i < 16; ++i) Store32Le(out.data() + 4 * i, x[i] + state[i]);
  return out;
}

Bytes ChaCha20Xor(const ChaCha20Key& key, const ChaCha20Nonce& nonce,
                  std::uint32_t initial_counter, ByteSpan data) {
  Bytes out(data.size());
  std::uint32_t counter = initial_counter;
  std::size_t offset = 0;
  while (offset < data.size()) {
    const auto block = ChaCha20Block(key, nonce, counter++);
    const std::size_t take = std::min<std::size_t>(64, data.size() - offset);
    for (std::size_t i = 0; i < take; ++i) {
      out[offset + i] = data[offset + i] ^ block[i];
    }
    offset += take;
  }
  return out;
}

}  // namespace vegvisir::crypto
