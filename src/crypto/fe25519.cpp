#include "crypto/fe25519.h"

#include <cstring>

namespace vegvisir::crypto {
namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

constexpr u64 kMask51 = (u64{1} << 51) - 1;

// p = 2^255 - 19 in radix-2^51 limbs.
constexpr u64 kP[5] = {
    kMask51 - 18, kMask51, kMask51, kMask51, kMask51,
};

// One pass of carry propagation with the 2^255 = 19 wraparound.
// After two passes over reduced-ish inputs, limbs are < 2^51 + tiny.
void CarryPass(Fe* f) {
  u64 c;
  c = f->v[0] >> 51; f->v[0] &= kMask51; f->v[1] += c;
  c = f->v[1] >> 51; f->v[1] &= kMask51; f->v[2] += c;
  c = f->v[2] >> 51; f->v[2] &= kMask51; f->v[3] += c;
  c = f->v[3] >> 51; f->v[3] &= kMask51; f->v[4] += c;
  c = f->v[4] >> 51; f->v[4] &= kMask51; f->v[0] += 19 * c;
}

void Reduce(Fe* f) {
  CarryPass(f);
  CarryPass(f);
}

u64 Load64Le(const std::uint8_t* p) {
  u64 v;
  std::memcpy(&v, p, 8);  // little-endian hosts only; asserted in tests
  return v;
}

}  // namespace

Fe FeZero() { return Fe{{0, 0, 0, 0, 0}}; }
Fe FeOne() { return Fe{{1, 0, 0, 0, 0}}; }
Fe FeFromU64(std::uint64_t x) {
  Fe f{{x & kMask51, (x >> 51) & kMask51, 0, 0, 0}};
  return f;
}

Fe FeAdd(const Fe& f, const Fe& g) {
  Fe h;
  for (int i = 0; i < 5; ++i) h.v[i] = f.v[i] + g.v[i];
  Reduce(&h);
  return h;
}

Fe FeSub(const Fe& f, const Fe& g) {
  // Add 2p before subtracting so limbs never go negative.
  Fe h;
  for (int i = 0; i < 5; ++i) h.v[i] = f.v[i] + 2 * kP[i] - g.v[i];
  Reduce(&h);
  return h;
}

Fe FeNeg(const Fe& f) { return FeSub(FeZero(), f); }

Fe FeMul(const Fe& f, const Fe& g) {
  const u64 f0 = f.v[0], f1 = f.v[1], f2 = f.v[2], f3 = f.v[3], f4 = f.v[4];
  const u64 g0 = g.v[0], g1 = g.v[1], g2 = g.v[2], g3 = g.v[3], g4 = g.v[4];

  // 19*g_i factors fold the 2^255 == 19 identity into the product.
  const u64 g1_19 = 19 * g1, g2_19 = 19 * g2, g3_19 = 19 * g3,
            g4_19 = 19 * g4;

  u128 r0 = (u128)f0 * g0 + (u128)f1 * g4_19 + (u128)f2 * g3_19 +
            (u128)f3 * g2_19 + (u128)f4 * g1_19;
  u128 r1 = (u128)f0 * g1 + (u128)f1 * g0 + (u128)f2 * g4_19 +
            (u128)f3 * g3_19 + (u128)f4 * g2_19;
  u128 r2 = (u128)f0 * g2 + (u128)f1 * g1 + (u128)f2 * g0 +
            (u128)f3 * g4_19 + (u128)f4 * g3_19;
  u128 r3 = (u128)f0 * g3 + (u128)f1 * g2 + (u128)f2 * g1 +
            (u128)f3 * g0 + (u128)f4 * g4_19;
  u128 r4 = (u128)f0 * g4 + (u128)f1 * g3 + (u128)f2 * g2 +
            (u128)f3 * g1 + (u128)f4 * g0;

  // Carry chain over the 128-bit accumulators.
  Fe h;
  u128 c;
  c = r0 >> 51; r0 &= kMask51; r1 += c;
  c = r1 >> 51; r1 &= kMask51; r2 += c;
  c = r2 >> 51; r2 &= kMask51; r3 += c;
  c = r3 >> 51; r3 &= kMask51; r4 += c;
  c = r4 >> 51; r4 &= kMask51; r0 += c * 19;
  c = r0 >> 51; r0 &= kMask51; r1 += c;

  h.v[0] = (u64)r0;
  h.v[1] = (u64)r1;
  h.v[2] = (u64)r2;
  h.v[3] = (u64)r3;
  h.v[4] = (u64)r4;
  return h;
}

Fe FeSquare(const Fe& f) { return FeMul(f, f); }

Fe FePow(const Fe& f, const std::array<std::uint8_t, 32>& exponent_le) {
  Fe result = FeOne();
  for (int bit = 255; bit >= 0; --bit) {
    result = FeSquare(result);
    if ((exponent_le[bit / 8] >> (bit % 8)) & 1) result = FeMul(result, f);
  }
  return result;
}

namespace {

Fe FeSquareN(Fe f, int n) {
  for (int i = 0; i < n; ++i) f = FeSquare(f);
  return f;
}

// Shared prefix of the inversion / pow22523 addition chain:
// returns z^(2^250 - 1) together with z^11 and z^(2^10 - 1)
// intermediates needed by the callers.
struct ChainTail {
  Fe z250_0;  // z^(2^250 - 1)
  Fe z11;     // z^11
};

ChainTail PowChain(const Fe& z) {
  const Fe z2 = FeSquare(z);                     // z^2
  const Fe z8 = FeSquareN(z2, 2);                // z^8
  const Fe z9 = FeMul(z, z8);                    // z^9
  const Fe z11 = FeMul(z2, z9);                  // z^11
  const Fe z22 = FeSquare(z11);                  // z^22
  const Fe z_5_0 = FeMul(z9, z22);               // z^(2^5 - 1)
  const Fe z_10_5 = FeSquareN(z_5_0, 5);
  const Fe z_10_0 = FeMul(z_10_5, z_5_0);        // z^(2^10 - 1)
  const Fe z_20_10 = FeSquareN(z_10_0, 10);
  const Fe z_20_0 = FeMul(z_20_10, z_10_0);      // z^(2^20 - 1)
  const Fe z_40_20 = FeSquareN(z_20_0, 20);
  const Fe z_40_0 = FeMul(z_40_20, z_20_0);      // z^(2^40 - 1)
  const Fe z_50_10 = FeSquareN(z_40_0, 10);
  const Fe z_50_0 = FeMul(z_50_10, z_10_0);      // z^(2^50 - 1)
  const Fe z_100_50 = FeSquareN(z_50_0, 50);
  const Fe z_100_0 = FeMul(z_100_50, z_50_0);    // z^(2^100 - 1)
  const Fe z_200_100 = FeSquareN(z_100_0, 100);
  const Fe z_200_0 = FeMul(z_200_100, z_100_0);  // z^(2^200 - 1)
  const Fe z_250_50 = FeSquareN(z_200_0, 50);
  const Fe z_250_0 = FeMul(z_250_50, z_50_0);    // z^(2^250 - 1)
  return ChainTail{z_250_0, z11};
}

}  // namespace

Fe FeInvert(const Fe& f) {
  // f^(p-2) = f^(2^255 - 21).
  const ChainTail tail = PowChain(f);
  const Fe z_255_5 = FeSquareN(tail.z250_0, 5);  // z^(2^255 - 2^5)
  return FeMul(z_255_5, tail.z11);               // z^(2^255 - 21)
}

Fe FePow22523(const Fe& f) {
  // f^(2^252 - 3).
  const ChainTail tail = PowChain(f);
  const Fe z_252_2 = FeSquareN(tail.z250_0, 2);  // z^(2^252 - 4)
  return FeMul(z_252_2, f);                      // z^(2^252 - 3)
}

std::array<std::uint8_t, 32> FeToBytes(const Fe& f) {
  Fe t = f;
  Reduce(&t);
  // t < 2^255 + small; subtract p while t >= p (at most twice).
  for (int round = 0; round < 2; ++round) {
    bool ge = true;
    for (int i = 4; i >= 0; --i) {
      if (t.v[i] > kP[i]) break;
      if (t.v[i] < kP[i]) {
        ge = false;
        break;
      }
    }
    if (!ge) break;
    u64 borrow = 0;
    for (int i = 0; i < 5; ++i) {
      const u64 sub = kP[i] + borrow;
      if (t.v[i] >= sub) {
        t.v[i] -= sub;
        borrow = 0;
      } else {
        t.v[i] = t.v[i] + (kMask51 + 1) - sub;
        borrow = 1;
      }
    }
  }

  std::array<std::uint8_t, 32> out{};
  u128 acc = 0;
  int acc_bits = 0;
  std::size_t pos = 0;
  for (int i = 0; i < 5; ++i) {
    acc |= (u128)t.v[i] << acc_bits;
    acc_bits += 51;
    while (acc_bits >= 8 && pos < 32) {
      out[pos++] = (std::uint8_t)(acc & 0xff);
      acc >>= 8;
      acc_bits -= 8;
    }
  }
  if (pos < 32) out[pos] = (std::uint8_t)(acc & 0xff);
  return out;
}

Fe FeFromBytes(ByteSpan bytes) {
  // Callers guarantee 32 bytes; tolerate short input by zero-padding.
  std::uint8_t b[32] = {0};
  std::memcpy(b, bytes.data(), std::min<std::size_t>(bytes.size(), 32));
  Fe f;
  f.v[0] = Load64Le(b + 0) & kMask51;
  f.v[1] = (Load64Le(b + 6) >> 3) & kMask51;
  f.v[2] = (Load64Le(b + 12) >> 6) & kMask51;
  f.v[3] = (Load64Le(b + 19) >> 1) & kMask51;
  f.v[4] = (Load64Le(b + 24) >> 12) & kMask51;  // drops bit 255
  return f;
}

bool FeIsZero(const Fe& f) {
  const auto bytes = FeToBytes(f);
  for (std::uint8_t b : bytes) {
    if (b != 0) return false;
  }
  return true;
}

bool FeEqual(const Fe& f, const Fe& g) { return FeIsZero(FeSub(f, g)); }

bool FeIsNegative(const Fe& f) { return (FeToBytes(f)[0] & 1) != 0; }

const Fe& FeConstD() {
  static const Fe d = [] {
    // d = -121665 / 121666 mod p.
    const Fe num = FeNeg(FeFromU64(121665));
    const Fe den = FeFromU64(121666);
    return FeMul(num, FeInvert(den));
  }();
  return d;
}

const Fe& FeConstD2() {
  static const Fe d2 = FeAdd(FeConstD(), FeConstD());
  return d2;
}

const Fe& FeConstSqrtM1() {
  static const Fe sqrt_m1 = [] {
    // sqrt(-1) = 2^((p-1)/4) mod p, exponent (p-1)/4 = 2^253 - 5.
    std::array<std::uint8_t, 32> exp{};
    exp[0] = 0xfb;  // 2^253 - 5: low byte 0x100 - 5 with borrow chain
    for (int i = 1; i < 31; ++i) exp[i] = 0xff;
    exp[31] = 0x1f;
    return FePow(FeFromU64(2), exp);
  }();
  return sqrt_m1;
}

}  // namespace vegvisir::crypto
