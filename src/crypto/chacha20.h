// ChaCha20 stream cipher (RFC 8439).
//
// The paper's maritime use case (Sec. II-C) calls for "full encryption
// of contents within the blockchain"; transaction payloads can be
// sealed with ChaCha20 before being placed in a block. Validated
// against the RFC 8439 test vectors in tests.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace vegvisir::crypto {

inline constexpr std::size_t kChaCha20KeySize = 32;
inline constexpr std::size_t kChaCha20NonceSize = 12;

using ChaCha20Key = std::array<std::uint8_t, kChaCha20KeySize>;
using ChaCha20Nonce = std::array<std::uint8_t, kChaCha20NonceSize>;

// XORs `data` with the ChaCha20 keystream for (key, nonce, counter).
// Encryption and decryption are the same operation.
Bytes ChaCha20Xor(const ChaCha20Key& key, const ChaCha20Nonce& nonce,
                  std::uint32_t initial_counter, ByteSpan data);

// Produces one 64-byte keystream block (exposed for tests).
std::array<std::uint8_t, 64> ChaCha20Block(const ChaCha20Key& key,
                                           const ChaCha20Nonce& nonce,
                                           std::uint32_t counter);

}  // namespace vegvisir::crypto
