// Ed25519 signatures (RFC 8032), built on fe25519/sc25519/ge25519.
//
// Every Vegvisir block and certificate carries one of these
// signatures; the implementation is validated against the RFC 8032
// test vectors in tests/crypto_test.cpp.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/drbg.h"
#include "util/bytes.h"

namespace vegvisir::crypto {

inline constexpr std::size_t kEd25519SeedSize = 32;
inline constexpr std::size_t kEd25519PublicKeySize = 32;
inline constexpr std::size_t kEd25519SignatureSize = 64;

struct PublicKey {
  std::array<std::uint8_t, kEd25519PublicKeySize> bytes;

  auto operator<=>(const PublicKey&) const = default;
};

struct Signature {
  std::array<std::uint8_t, kEd25519SignatureSize> bytes;

  auto operator<=>(const Signature&) const = default;
};

// A signing key. Only the 32-byte seed is secret; the expanded scalar
// is derived on demand (signing is rare compared to verification).
class KeyPair {
 public:
  // Derives the key pair from a 32-byte seed (RFC 8032 §5.1.5).
  static KeyPair FromSeed(const std::array<std::uint8_t, kEd25519SeedSize>& seed);

  // Draws a fresh seed from the DRBG.
  static KeyPair Generate(Drbg& drbg);

  const PublicKey& public_key() const { return public_key_; }
  const std::array<std::uint8_t, kEd25519SeedSize>& seed() const {
    return seed_;
  }

  // Deterministic signature over `message` (RFC 8032 §5.1.6).
  Signature Sign(ByteSpan message) const;

 private:
  KeyPair() = default;

  std::array<std::uint8_t, kEd25519SeedSize> seed_;
  PublicKey public_key_;
};

// Signature verification (RFC 8032 §5.1.7): checks canonical s,
// decompresses A and R, and tests [s]B == R + [k]A.
bool Verify(const PublicKey& public_key, ByteSpan message,
            const Signature& signature);

}  // namespace vegvisir::crypto
