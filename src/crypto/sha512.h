// SHA-512 (FIPS 180-4), implemented from scratch.
//
// Required by Ed25519 (RFC 8032 uses SHA-512 for key expansion and the
// challenge hash). Validated against NIST vectors in tests.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace vegvisir::crypto {

inline constexpr std::size_t kSha512DigestSize = 64;

using Sha512Digest = std::array<std::uint8_t, kSha512DigestSize>;

class Sha512 {
 public:
  Sha512() { Reset(); }

  void Reset();
  void Update(ByteSpan data);
  Sha512Digest Finish();

  static Sha512Digest Hash(ByteSpan data);

 private:
  void Compress(const std::uint8_t* block);

  std::uint64_t state_[8];
  std::uint64_t bit_count_lo_;  // message length in bits (128-bit, low part)
  std::uint64_t bit_count_hi_;
  std::uint8_t buffer_[128];
  std::size_t buffer_len_;
};

}  // namespace vegvisir::crypto
