#include "crypto/hmac.h"

#include <cstring>

namespace vegvisir::crypto {

HmacSha256::HmacSha256(ByteSpan key) { Reset(key); }

void HmacSha256::Reset(ByteSpan key) {
  std::uint8_t block_key[64] = {0};
  if (key.size() > 64) {
    const Sha256Digest digest = Sha256::Hash(key);
    std::memcpy(block_key, digest.data(), digest.size());
  } else {
    if (!key.empty()) std::memcpy(block_key, key.data(), key.size());
  }

  std::uint8_t ipad_key[64];
  for (int i = 0; i < 64; ++i) {
    ipad_key[i] = block_key[i] ^ 0x36;
    opad_key_[i] = block_key[i] ^ 0x5c;
  }

  inner_.Reset();
  inner_.Update(ByteSpan(ipad_key, 64));
}

void HmacSha256::Update(ByteSpan data) { inner_.Update(data); }

Sha256Digest HmacSha256::Finish() {
  const Sha256Digest inner_digest = inner_.Finish();
  Sha256 outer;
  outer.Update(ByteSpan(opad_key_, 64));
  outer.Update(ByteSpan(inner_digest.data(), inner_digest.size()));
  return outer.Finish();
}

Sha256Digest HmacSha256::Mac(ByteSpan key, ByteSpan data) {
  HmacSha256 mac(key);
  mac.Update(data);
  return mac.Finish();
}

}  // namespace vegvisir::crypto
