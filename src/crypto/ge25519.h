// Edwards-curve group operations for Ed25519.
//
// Points on -x^2 + y^2 = 1 + d x^2 y^2 over GF(2^255 - 19), held in
// extended coordinates (X : Y : Z : T) with x = X/Z, y = Y/Z,
// x*y = T/Z. Formulas are the EFD "add-2008-hwcd-3" (a = -1) addition
// and "dbl-2008-hwcd" doubling.
#pragma once

#include <array>
#include <optional>

#include "crypto/fe25519.h"
#include "util/bytes.h"

namespace vegvisir::crypto {

struct GePoint {
  Fe x, y, z, t;
};

// The neutral element (0, 1).
GePoint GeIdentity();

// The standard base point B (decompressed from its RFC 8032 encoding).
const GePoint& GeBasePoint();

GePoint GeAdd(const GePoint& p, const GePoint& q);
GePoint GeDouble(const GePoint& p);

// [scalar] * p, scalar given as 32 little-endian bytes (values up to
// 2^255 accepted — the clamped secret scalar is not reduced mod L).
// Variable-time double-and-add; see the fe25519.h timing note.
GePoint GeScalarMult(const GePoint& p, const std::array<std::uint8_t, 32>& scalar_le);

// [scalar] * B.
GePoint GeScalarMultBase(const std::array<std::uint8_t, 32>& scalar_le);

// RFC 8032 point compression: 32 bytes = y with sign(x) in bit 255.
std::array<std::uint8_t, 32> GeCompress(const GePoint& p);

// Decompression; empty if the encoding is not a curve point.
std::optional<GePoint> GeDecompress(ByteSpan bytes32);

// Projective equality: X1*Z2 == X2*Z1 and Y1*Z2 == Y2*Z1.
bool GeEqual(const GePoint& p, const GePoint& q);

// True iff p is on the curve and T is consistent (test support).
bool GeIsValid(const GePoint& p);

}  // namespace vegvisir::crypto
