#include "crypto/drbg.h"

#include <cstring>

#include "crypto/hmac.h"

namespace vegvisir::crypto {

Drbg::Drbg(ByteSpan seed) {
  std::memset(key_, 0x00, sizeof(key_));
  std::memset(value_, 0x01, sizeof(value_));
  UpdateState(seed);
}

Drbg::Drbg(std::uint64_t seed)
    : Drbg([&] {
        Bytes b(8);
        for (int i = 0; i < 8; ++i) {
          b[i] = static_cast<std::uint8_t>(seed >> (8 * i));
        }
        return b;
      }()) {}

void Drbg::UpdateState(ByteSpan provided) {
  // K = HMAC(K, V || 0x00 || provided); V = HMAC(K, V)
  HmacSha256 mac(ByteSpan(key_, 32));
  mac.Update(ByteSpan(value_, 32));
  const std::uint8_t zero = 0x00;
  mac.Update(ByteSpan(&zero, 1));
  mac.Update(provided);
  Sha256Digest k = mac.Finish();
  std::memcpy(key_, k.data(), 32);
  Sha256Digest v = HmacSha256::Mac(ByteSpan(key_, 32), ByteSpan(value_, 32));
  std::memcpy(value_, v.data(), 32);

  if (provided.empty()) return;

  // Second round with 0x01 separator, per SP 800-90A.
  HmacSha256 mac2(ByteSpan(key_, 32));
  mac2.Update(ByteSpan(value_, 32));
  const std::uint8_t one = 0x01;
  mac2.Update(ByteSpan(&one, 1));
  mac2.Update(provided);
  k = mac2.Finish();
  std::memcpy(key_, k.data(), 32);
  v = HmacSha256::Mac(ByteSpan(key_, 32), ByteSpan(value_, 32));
  std::memcpy(value_, v.data(), 32);
}

void Drbg::Generate(std::uint8_t* out, std::size_t len) {
  std::size_t produced = 0;
  while (produced < len) {
    const Sha256Digest v =
        HmacSha256::Mac(ByteSpan(key_, 32), ByteSpan(value_, 32));
    std::memcpy(value_, v.data(), 32);
    const std::size_t take = std::min<std::size_t>(32, len - produced);
    std::memcpy(out + produced, value_, take);
    produced += take;
  }
  UpdateState({});
}

Bytes Drbg::Generate(std::size_t len) {
  Bytes out(len);
  Generate(out.data(), len);
  return out;
}

void Drbg::Reseed(ByteSpan entropy) { UpdateState(entropy); }

}  // namespace vegvisir::crypto
