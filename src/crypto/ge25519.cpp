#include "crypto/ge25519.h"

namespace vegvisir::crypto {

GePoint GeIdentity() {
  return GePoint{FeZero(), FeOne(), FeOne(), FeZero()};
}

const GePoint& GeBasePoint() {
  static const GePoint base = [] {
    // Encoded base point: y = 4/5 with sign bit 0 (RFC 8032 §5.1).
    std::array<std::uint8_t, 32> enc;
    enc[0] = 0x58;
    for (int i = 1; i < 32; ++i) enc[i] = 0x66;
    const auto p = GeDecompress(ByteSpan(enc.data(), enc.size()));
    return *p;  // the constant is well-formed by construction
  }();
  return base;
}

GePoint GeAdd(const GePoint& p, const GePoint& q) {
  // add-2008-hwcd-3 with k = 2d (a = -1).
  const Fe a = FeMul(FeSub(p.y, p.x), FeSub(q.y, q.x));
  const Fe b = FeMul(FeAdd(p.y, p.x), FeAdd(q.y, q.x));
  const Fe c = FeMul(FeMul(p.t, FeConstD2()), q.t);
  const Fe d = FeMul(FeAdd(p.z, p.z), q.z);
  const Fe e = FeSub(b, a);
  const Fe f = FeSub(d, c);
  const Fe g = FeAdd(d, c);
  const Fe h = FeAdd(b, a);
  return GePoint{FeMul(e, f), FeMul(g, h), FeMul(f, g), FeMul(e, h)};
}

GePoint GeDouble(const GePoint& p) {
  // dbl-2008-hwcd with a = -1 (D = -A).
  const Fe a = FeSquare(p.x);
  const Fe b = FeSquare(p.y);
  const Fe c = FeAdd(FeSquare(p.z), FeSquare(p.z));
  const Fe d = FeNeg(a);
  const Fe e = FeSub(FeSub(FeSquare(FeAdd(p.x, p.y)), a), b);
  const Fe g = FeAdd(d, b);
  const Fe f = FeSub(g, c);
  const Fe h = FeSub(d, b);
  return GePoint{FeMul(e, f), FeMul(g, h), FeMul(f, g), FeMul(e, h)};
}

GePoint GeScalarMult(const GePoint& p,
                     const std::array<std::uint8_t, 32>& scalar_le) {
  GePoint r = GeIdentity();
  for (int bit = 255; bit >= 0; --bit) {
    r = GeDouble(r);
    if ((scalar_le[bit / 8] >> (bit % 8)) & 1) r = GeAdd(r, p);
  }
  return r;
}

GePoint GeScalarMultBase(const std::array<std::uint8_t, 32>& scalar_le) {
  return GeScalarMult(GeBasePoint(), scalar_le);
}

std::array<std::uint8_t, 32> GeCompress(const GePoint& p) {
  const Fe z_inv = FeInvert(p.z);
  const Fe x = FeMul(p.x, z_inv);
  const Fe y = FeMul(p.y, z_inv);
  auto out = FeToBytes(y);
  if (FeIsNegative(x)) out[31] |= 0x80;
  return out;
}

std::optional<GePoint> GeDecompress(ByteSpan bytes32) {
  if (bytes32.size() != 32) return std::nullopt;
  const bool sign = (bytes32[31] & 0x80) != 0;
  const Fe y = FeFromBytes(bytes32);  // ignores bit 255

  // x^2 = (y^2 - 1) / (d*y^2 + 1).
  const Fe y2 = FeSquare(y);
  const Fe u = FeSub(y2, FeOne());
  const Fe v = FeAdd(FeMul(FeConstD(), y2), FeOne());

  // Candidate root: x = u * v^3 * (u * v^7)^((p-5)/8).
  const Fe v3 = FeMul(FeSquare(v), v);
  const Fe v7 = FeMul(FeSquare(v3), v);
  Fe x = FeMul(FeMul(u, v3), FePow22523(FeMul(u, v7)));

  const Fe vx2 = FeMul(v, FeSquare(x));
  if (!FeEqual(vx2, u)) {
    if (FeEqual(vx2, FeNeg(u))) {
      x = FeMul(x, FeConstSqrtM1());
    } else {
      return std::nullopt;  // not a quadratic residue: invalid encoding
    }
  }

  if (FeIsZero(x) && sign) return std::nullopt;  // -0 is not encodable
  if (FeIsNegative(x) != sign) x = FeNeg(x);

  return GePoint{x, y, FeOne(), FeMul(x, y)};
}

bool GeEqual(const GePoint& p, const GePoint& q) {
  return FeEqual(FeMul(p.x, q.z), FeMul(q.x, p.z)) &&
         FeEqual(FeMul(p.y, q.z), FeMul(q.y, p.z));
}

bool GeIsValid(const GePoint& p) {
  // Affine coordinates.
  if (FeIsZero(p.z)) return false;
  const Fe z_inv = FeInvert(p.z);
  const Fe x = FeMul(p.x, z_inv);
  const Fe y = FeMul(p.y, z_inv);
  const Fe t = FeMul(p.t, z_inv);
  if (!FeEqual(t, FeMul(x, y))) return false;
  // -x^2 + y^2 == 1 + d x^2 y^2.
  const Fe x2 = FeSquare(x);
  const Fe y2 = FeSquare(y);
  const Fe lhs = FeSub(y2, x2);
  const Fe rhs = FeAdd(FeOne(), FeMul(FeConstD(), FeMul(x2, y2)));
  return FeEqual(lhs, rhs);
}

}  // namespace vegvisir::crypto
