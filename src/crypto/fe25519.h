// Field arithmetic modulo p = 2^255 - 19, for Ed25519.
//
// Elements are stored as 5 limbs of 51 bits each (radix 2^51), the
// standard portable representation. Products are accumulated in
// unsigned __int128.
//
// NOTE: operations here are *not* constant-time (variable-time
// canonicalization and exponentiation). That is acceptable for this
// codebase, which runs simulations on trusted hosts; a production
// deployment on adversarially-observable hardware would swap in a
// constant-time backend behind the same interface.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace vegvisir::crypto {

// A field element; limbs hold values < 2^52 between reductions.
struct Fe {
  std::uint64_t v[5];
};

// 0 and 1.
Fe FeZero();
Fe FeOne();
Fe FeFromU64(std::uint64_t x);

// h = f + g (result reduced).
Fe FeAdd(const Fe& f, const Fe& g);
// h = f - g (result reduced).
Fe FeSub(const Fe& f, const Fe& g);
// h = -f.
Fe FeNeg(const Fe& f);
// h = f * g.
Fe FeMul(const Fe& f, const Fe& g);
// h = f^2.
Fe FeSquare(const Fe& f);
// h = f^-1 (via Fermat: f^(p-2)). f must be nonzero.
Fe FeInvert(const Fe& f);
// h = f^((p-5)/8) = f^(2^252 - 3); used by point decompression.
Fe FePow22523(const Fe& f);
// h = f^e where e is a 256-bit little-endian exponent.
Fe FePow(const Fe& f, const std::array<std::uint8_t, 32>& exponent_le);

// Canonical 32-byte little-endian encoding (top bit clear).
std::array<std::uint8_t, 32> FeToBytes(const Fe& f);
// Loads 32 little-endian bytes; the top bit (bit 255) is ignored.
Fe FeFromBytes(ByteSpan bytes);

// True iff f == 0 (mod p).
bool FeIsZero(const Fe& f);
// True iff f == g (mod p).
bool FeEqual(const Fe& f, const Fe& g);
// The low bit of the canonical encoding ("sign" in RFC 8032).
bool FeIsNegative(const Fe& f);

// Curve constants (computed once, on first use).
const Fe& FeConstD();       // d = -121665/121666
const Fe& FeConstD2();      // 2d
const Fe& FeConstSqrtM1();  // sqrt(-1) = 2^((p-1)/4)

}  // namespace vegvisir::crypto
