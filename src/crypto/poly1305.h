// Poly1305 one-time authenticator (RFC 8439 §2.5).
//
// Combined with ChaCha20 into the AEAD construction in aead.h, so
// that encrypted transaction payloads (maritime use case, §II-C) are
// tamper-evident as well as confidential. Validated against the RFC
// test vectors.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace vegvisir::crypto {

inline constexpr std::size_t kPoly1305KeySize = 32;
inline constexpr std::size_t kPoly1305TagSize = 16;

using Poly1305Key = std::array<std::uint8_t, kPoly1305KeySize>;
using Poly1305Tag = std::array<std::uint8_t, kPoly1305TagSize>;

class Poly1305 {
 public:
  explicit Poly1305(const Poly1305Key& key);

  void Update(ByteSpan data);
  Poly1305Tag Finish();

  static Poly1305Tag Mac(const Poly1305Key& key, ByteSpan data);

 private:
  void Block(const std::uint8_t* block, std::uint64_t hibit);

  // Accumulator and clamped r in radix-2^26 (5 limbs), s kept raw.
  std::uint32_t r_[5];
  std::uint32_t h_[5];
  std::uint8_t s_[16];
  std::uint8_t buffer_[16];
  std::size_t buffer_len_ = 0;
};

}  // namespace vegvisir::crypto
