// HMAC-DRBG with SHA-256 (NIST SP 800-90A).
//
// The library's only source of key material. It is *deliberately*
// deterministic from its seed: simulations must be reproducible, and
// on a real deployment the seed would come from the platform's
// hardware entropy source.
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace vegvisir::crypto {

class Drbg {
 public:
  // Seeds from arbitrary entropy input (any length, may be empty for
  // tests, though callers should provide >= 32 bytes in production).
  explicit Drbg(ByteSpan seed);

  // Convenience: seeds from a 64-bit value (simulation use).
  explicit Drbg(std::uint64_t seed);

  // Fills `out` with pseudo-random bytes.
  void Generate(std::uint8_t* out, std::size_t len);

  Bytes Generate(std::size_t len);

  // Mixes additional entropy into the state.
  void Reseed(ByteSpan entropy);

 private:
  void UpdateState(ByteSpan provided);

  std::uint8_t key_[32];
  std::uint8_t value_[32];
};

}  // namespace vegvisir::crypto
