// ChaCha20-Poly1305 AEAD (RFC 8439 §2.8).
//
// Authenticated encryption for application payloads stored on the
// chain: the maritime use case (§II-C) wants contents both
// confidential and tamper-evident before they ever enter a block.
// Validated against the RFC 8439 test vector.
#pragma once

#include <optional>

#include "crypto/chacha20.h"
#include "crypto/poly1305.h"
#include "util/bytes.h"

namespace vegvisir::crypto {

// ciphertext || 16-byte tag.
Bytes AeadSeal(const ChaCha20Key& key, const ChaCha20Nonce& nonce,
               ByteSpan plaintext, ByteSpan aad = {});

// Returns the plaintext, or nullopt if the tag (or anything covered
// by it) does not verify.
std::optional<Bytes> AeadOpen(const ChaCha20Key& key,
                              const ChaCha20Nonce& nonce, ByteSpan sealed,
                              ByteSpan aad = {});

}  // namespace vegvisir::crypto
