#include "crypto/aead.h"

#include <cstring>

namespace vegvisir::crypto {
namespace {

Poly1305Tag ComputeTag(const ChaCha20Key& key, const ChaCha20Nonce& nonce,
                       ByteSpan ciphertext, ByteSpan aad) {
  // One-time Poly1305 key: first 32 bytes of the counter-0 keystream.
  const auto block0 = ChaCha20Block(key, nonce, 0);
  Poly1305Key poly_key;
  std::memcpy(poly_key.data(), block0.data(), poly_key.size());

  Poly1305 mac(poly_key);
  static constexpr std::uint8_t kZeros[16] = {0};
  mac.Update(aad);
  if (aad.size() % 16 != 0) {
    mac.Update(ByteSpan(kZeros, 16 - aad.size() % 16));
  }
  mac.Update(ciphertext);
  if (ciphertext.size() % 16 != 0) {
    mac.Update(ByteSpan(kZeros, 16 - ciphertext.size() % 16));
  }
  std::uint8_t lengths[16];
  for (int i = 0; i < 8; ++i) {
    lengths[i] = static_cast<std::uint8_t>(
        static_cast<std::uint64_t>(aad.size()) >> (8 * i));
    lengths[8 + i] = static_cast<std::uint8_t>(
        static_cast<std::uint64_t>(ciphertext.size()) >> (8 * i));
  }
  mac.Update(ByteSpan(lengths, 16));
  return mac.Finish();
}

}  // namespace

Bytes AeadSeal(const ChaCha20Key& key, const ChaCha20Nonce& nonce,
               ByteSpan plaintext, ByteSpan aad) {
  Bytes out = ChaCha20Xor(key, nonce, 1, plaintext);
  const Poly1305Tag tag = ComputeTag(key, nonce, out, aad);
  Append(&out, ByteSpan(tag.data(), tag.size()));
  return out;
}

std::optional<Bytes> AeadOpen(const ChaCha20Key& key,
                              const ChaCha20Nonce& nonce, ByteSpan sealed,
                              ByteSpan aad) {
  if (sealed.size() < kPoly1305TagSize) return std::nullopt;
  const ByteSpan ciphertext(sealed.data(),
                            sealed.size() - kPoly1305TagSize);
  const ByteSpan tag(sealed.data() + ciphertext.size(), kPoly1305TagSize);
  const Poly1305Tag expected = ComputeTag(key, nonce, ciphertext, aad);
  if (!ConstantTimeEqual(tag, ByteSpan(expected.data(), expected.size()))) {
    return std::nullopt;
  }
  return ChaCha20Xor(key, nonce, 1, ciphertext);
}

}  // namespace vegvisir::crypto
