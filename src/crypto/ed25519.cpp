#include "crypto/ed25519.h"

#include <cstring>

#include "crypto/ge25519.h"
#include "crypto/sc25519.h"
#include "crypto/sha512.h"

namespace vegvisir::crypto {
namespace {

// RFC 8032 secret-scalar clamping.
void Clamp(std::array<std::uint8_t, 32>* scalar) {
  (*scalar)[0] &= 0xf8;
  (*scalar)[31] &= 0x7f;
  (*scalar)[31] |= 0x40;
}

struct ExpandedKey {
  std::array<std::uint8_t, 32> scalar;  // clamped a
  std::array<std::uint8_t, 32> prefix;  // nonce-derivation prefix
};

ExpandedKey Expand(const std::array<std::uint8_t, kEd25519SeedSize>& seed) {
  const Sha512Digest h = Sha512::Hash(ByteSpan(seed.data(), seed.size()));
  ExpandedKey out;
  std::memcpy(out.scalar.data(), h.data(), 32);
  std::memcpy(out.prefix.data(), h.data() + 32, 32);
  Clamp(&out.scalar);
  return out;
}

}  // namespace

KeyPair KeyPair::FromSeed(
    const std::array<std::uint8_t, kEd25519SeedSize>& seed) {
  KeyPair kp;
  kp.seed_ = seed;
  const ExpandedKey ek = Expand(seed);
  kp.public_key_.bytes = GeCompress(GeScalarMultBase(ek.scalar));
  return kp;
}

KeyPair KeyPair::Generate(Drbg& drbg) {
  std::array<std::uint8_t, kEd25519SeedSize> seed;
  drbg.Generate(seed.data(), seed.size());
  return FromSeed(seed);
}

Signature KeyPair::Sign(ByteSpan message) const {
  const ExpandedKey ek = Expand(seed_);

  // r = SHA-512(prefix || M) mod L;  R = [r]B.
  Sha512 h;
  h.Update(ByteSpan(ek.prefix.data(), ek.prefix.size()));
  h.Update(message);
  const Sha512Digest r_hash = h.Finish();
  const Scalar r = ScFromBytesModL(ByteSpan(r_hash.data(), r_hash.size()));
  const auto r_enc = GeCompress(GeScalarMultBase(ScToBytes(r)));

  // k = SHA-512(enc(R) || enc(A) || M) mod L.
  Sha512 h2;
  h2.Update(ByteSpan(r_enc.data(), r_enc.size()));
  h2.Update(ByteSpan(public_key_.bytes.data(), public_key_.bytes.size()));
  h2.Update(message);
  const Sha512Digest k_hash = h2.Finish();
  const Scalar k = ScFromBytesModL(ByteSpan(k_hash.data(), k_hash.size()));

  // s = (r + k * a) mod L.
  const Scalar a = ScFromBytesModL(ByteSpan(ek.scalar.data(), 32));
  const Scalar s = ScMulAdd(k, a, r);
  const auto s_enc = ScToBytes(s);

  Signature sig;
  std::memcpy(sig.bytes.data(), r_enc.data(), 32);
  std::memcpy(sig.bytes.data() + 32, s_enc.data(), 32);
  return sig;
}

bool Verify(const PublicKey& public_key, ByteSpan message,
            const Signature& signature) {
  const ByteSpan r_enc(signature.bytes.data(), 32);
  const ByteSpan s_enc(signature.bytes.data() + 32, 32);

  if (!ScIsCanonical(s_enc)) return false;

  const auto a_point =
      GeDecompress(ByteSpan(public_key.bytes.data(), public_key.bytes.size()));
  if (!a_point) return false;
  const auto r_point = GeDecompress(r_enc);
  if (!r_point) return false;

  // k = SHA-512(enc(R) || enc(A) || M) mod L.
  Sha512 h;
  h.Update(r_enc);
  h.Update(ByteSpan(public_key.bytes.data(), public_key.bytes.size()));
  h.Update(message);
  const Sha512Digest k_hash = h.Finish();
  const Scalar k = ScFromBytesModL(ByteSpan(k_hash.data(), k_hash.size()));

  // Accept iff [s]B == R + [k]A.
  std::array<std::uint8_t, 32> s_bytes;
  std::memcpy(s_bytes.data(), s_enc.data(), 32);
  const GePoint lhs = GeScalarMultBase(s_bytes);
  const GePoint rhs = GeAdd(*r_point, GeScalarMult(*a_point, ScToBytes(k)));
  return GeEqual(lhs, rhs);
}

}  // namespace vegvisir::crypto
