#include "crypto/sc25519.h"

#include <cstring>

namespace vegvisir::crypto {
namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

// L, little-endian words.
constexpr u64 kL[4] = {
    0x5812631a5cf5d3edULL,
    0x14def9dea2f79cd6ULL,
    0x0000000000000000ULL,
    0x1000000000000000ULL,
};

// Returns a >= b for 4-word little-endian values.
bool GreaterEqual256(const u64 a[4], const u64 b[4]) {
  for (int i = 3; i >= 0; --i) {
    if (a[i] > b[i]) return true;
    if (a[i] < b[i]) return false;
  }
  return true;  // equal
}

// a -= b, assuming a >= b.
void Sub256(u64 a[4], const u64 b[4]) {
  u64 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    const u64 bi = b[i] + borrow;
    borrow = (bi < borrow) ? 1 : (a[i] < bi ? 1 : 0);
    a[i] -= bi;
  }
}

// Reduces an n-word little-endian value mod L into `out`.
// Processes bits most-significant first: r = 2r + bit; if r >= L, r -= L.
void ReduceModL(const u64* words, int n, u64 out[4]) {
  u64 r[4] = {0, 0, 0, 0};
  for (int bit = n * 64 - 1; bit >= 0; --bit) {
    // r <<= 1 (r < L < 2^253 so no overflow past word 3).
    for (int i = 3; i > 0; --i) r[i] = (r[i] << 1) | (r[i - 1] >> 63);
    r[0] <<= 1;
    r[0] |= (words[bit / 64] >> (bit % 64)) & 1;
    if (GreaterEqual256(r, kL)) Sub256(r, kL);
  }
  std::memcpy(out, r, sizeof(r));
}

}  // namespace

Scalar ScZero() { return Scalar{{0, 0, 0, 0}}; }

Scalar ScFromBytesModL(ByteSpan bytes) {
  std::uint8_t buf[64] = {0};
  std::memcpy(buf, bytes.data(), std::min<std::size_t>(bytes.size(), 64));
  u64 words[8];
  for (int i = 0; i < 8; ++i) {
    std::memcpy(&words[i], buf + 8 * i, 8);  // little-endian host
  }
  Scalar s;
  ReduceModL(words, 8, s.w);
  return s;
}

std::array<std::uint8_t, 32> ScToBytes(const Scalar& s) {
  std::array<std::uint8_t, 32> out;
  for (int i = 0; i < 4; ++i) std::memcpy(out.data() + 8 * i, &s.w[i], 8);
  return out;
}

Scalar ScAdd(const Scalar& a, const Scalar& b) {
  Scalar r;
  u64 carry = 0;
  for (int i = 0; i < 4; ++i) {
    const u64 sum = a.w[i] + b.w[i];
    const u64 with_carry = sum + carry;
    const u64 new_carry = (sum < a.w[i]) || (with_carry < sum) ? 1 : 0;
    r.w[i] = with_carry;
    carry = new_carry;
  }
  // a, b < L < 2^253 so no carry out of word 3; one subtraction suffices.
  if (GreaterEqual256(r.w, kL)) Sub256(r.w, kL);
  return r;
}

Scalar ScMulAdd(const Scalar& a, const Scalar& b, const Scalar& c) {
  // Schoolbook 4x4 -> 8-word product, then add c, then reduce.
  u64 prod[8] = {0};
  for (int i = 0; i < 4; ++i) {
    u64 carry = 0;
    for (int j = 0; j < 4; ++j) {
      const u128 t = (u128)a.w[i] * b.w[j] + prod[i + j] + carry;
      prod[i + j] = (u64)t;
      carry = (u64)(t >> 64);
    }
    prod[i + 4] += carry;
  }
  // prod += c.
  u64 carry = 0;
  for (int i = 0; i < 8; ++i) {
    const u64 add = (i < 4 ? c.w[i] : 0);
    const u64 sum = prod[i] + add;
    const u64 with_carry = sum + carry;
    carry = (sum < prod[i]) || (with_carry < sum) ? 1 : 0;
    prod[i] = with_carry;
  }
  Scalar r;
  ReduceModL(prod, 8, r.w);
  return r;
}

bool ScIsCanonical(ByteSpan bytes32) {
  if (bytes32.size() != 32) return false;
  u64 words[4];
  for (int i = 0; i < 4; ++i) std::memcpy(&words[i], bytes32.data() + 8 * i, 8);
  return !GreaterEqual256(words, kL);
}

bool ScIsZero(const Scalar& s) {
  return (s.w[0] | s.w[1] | s.w[2] | s.w[3]) == 0;
}

}  // namespace vegvisir::crypto
