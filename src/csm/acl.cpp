#include "csm/acl.h"

namespace vegvisir::csm {

AclPolicy AclPolicy::AllowAll() {
  AclPolicy p;
  p.Allow("*", "*");
  return p;
}

AclPolicy& AclPolicy::Allow(const std::string& role, const std::string& op) {
  grants_[role].insert(op);
  return *this;
}

bool AclPolicy::IsAllowed(const std::string& role, const std::string& op) const {
  for (const std::string& r : {role, std::string("*")}) {
    const auto it = grants_.find(r);
    if (it == grants_.end()) continue;
    if (it->second.count(op) > 0 || it->second.count("*") > 0) return true;
  }
  return false;
}

std::string AclPolicy::Serialize() const {
  std::string out;
  for (const auto& [role, ops] : grants_) {
    if (!out.empty()) out += ';';
    out += role;
    out += ':';
    bool first = true;
    for (const std::string& op : ops) {
      if (!first) out += ',';
      out += op;
      first = false;
    }
  }
  return out;
}

StatusOr<AclPolicy> AclPolicy::Parse(const std::string& text) {
  AclPolicy policy;
  if (text.empty()) return policy;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t end = std::min(text.find(';', pos), text.size());
    const std::string entry = text.substr(pos, end - pos);
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon == entry.size() - 1) {
      return InvalidArgumentError("malformed acl entry '" + entry + "'");
    }
    const std::string role = entry.substr(0, colon);
    std::size_t op_pos = colon + 1;
    while (op_pos <= entry.size()) {
      const std::size_t op_end = std::min(entry.find(',', op_pos),
                                          entry.size());
      const std::string op = entry.substr(op_pos, op_end - op_pos);
      if (op.empty()) {
        return InvalidArgumentError("empty op in acl entry '" + entry + "'");
      }
      policy.Allow(role, op);
      op_pos = op_end + 1;
    }
    pos = end + 1;
  }
  return policy;
}

}  // namespace vegvisir::csm
