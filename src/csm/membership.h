// The membership set U (paper §IV-D, §IV-F).
//
// U is a 2P-set of public key certificates: enrolments are adds,
// revocations are adds to the remove set. This class materializes the
// set with an index by user id and implements the MembershipView the
// block validator consumes. The first certificate added (from the
// genesis block) defines the chain's certificate authority.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "chain/certificate.h"
#include "chain/types.h"
#include "chain/validation.h"
#include "crypto/ed25519.h"
#include "util/status.h"

namespace vegvisir::csm {

class Membership final : public chain::MembershipView {
 public:
  Membership() = default;

  // Adds a certificate (an element of U's add set). The first call
  // bootstraps the CA: the certificate must be self-signed; later
  // calls require a valid CA signature. Idempotent. `source_block`
  // is the block whose transaction carried the add.
  Status Add(const chain::Certificate& cert,
             const chain::BlockHash& source_block);

  // Revokes a certificate (an element of U's remove set). Permanent;
  // idempotent. `source_block` is recorded for causal-past checks.
  Status Revoke(const chain::Certificate& cert,
                const chain::BlockHash& source_block);

  // MembershipView:
  const chain::Certificate* FindCertificate(
      const std::string& user_id) const override;
  bool IsRevoked(const std::string& user_id) const override;
  std::vector<chain::BlockHash> RevocationBlocksOf(
      const std::string& user_id) const override;

  // The role recorded in a user's certificate ("" if unknown).
  std::string RoleOf(const std::string& user_id) const;

  // Live members: enrolled and not revoked (A \ R).
  std::vector<std::string> LiveMembers() const;
  std::size_t LiveCount() const;

  bool ca_known() const { return ca_public_key_.has_value(); }
  const crypto::PublicKey& ca_public_key() const { return *ca_public_key_; }

  // Canonical digest for convergence checks.
  Bytes StateFingerprint() const;

  // Full-state serialization for CSM snapshots (round-trips, unlike
  // the fingerprint).
  void EncodeState(serial::Writer* w) const;
  Status DecodeState(serial::Reader* r);

 private:
  struct Record {
    chain::Certificate cert;
    bool revoked = false;
    std::vector<chain::BlockHash> revocation_blocks;
  };

  std::optional<crypto::PublicKey> ca_public_key_;
  std::map<std::string, Record> by_user_;  // sorted for fingerprints
};

}  // namespace vegvisir::csm
