#include "csm/membership.h"

#include <algorithm>

#include "serial/codec.h"
#include "serial/limits.h"

namespace vegvisir::csm {

Status Membership::Add(const chain::Certificate& cert,
                       const chain::BlockHash& source_block) {
  (void)source_block;
  if (!ca_public_key_.has_value()) {
    // Bootstrap: the genesis certificate is self-signed by the owner,
    // who becomes the CA.
    if (!chain::VerifyCertificate(cert, cert.public_key)) {
      return UnauthenticatedError("genesis certificate not self-signed");
    }
    ca_public_key_ = cert.public_key;
  } else if (!chain::VerifyCertificate(cert, *ca_public_key_)) {
    return UnauthenticatedError("certificate not signed by chain CA");
  }

  const auto it = by_user_.find(cert.user_id);
  if (it != by_user_.end()) {
    // Two different CA-signed certificates for one user id should not
    // happen, but replicas must converge even if it does: keep the
    // lexicographically smallest serialization (a deterministic,
    // order-independent winner). Revocation state is preserved.
    if (!(it->second.cert == cert) &&
        cert.Serialize() < it->second.cert.Serialize()) {
      it->second.cert = cert;
    }
    return Status::Ok();
  }
  by_user_.emplace(cert.user_id, Record{cert, false, {}});
  return Status::Ok();
}

Status Membership::Revoke(const chain::Certificate& cert,
                          const chain::BlockHash& source_block) {
  const auto it = by_user_.find(cert.user_id);
  if (it == by_user_.end()) {
    // A revocation may arrive before the enrolment (2P-set semantics:
    // the remove stands on its own). Record it so the enrolment, when
    // it arrives, is immediately dead.
    Record rec;
    rec.cert = cert;
    rec.revoked = true;
    rec.revocation_blocks.push_back(source_block);
    by_user_.emplace(cert.user_id, std::move(rec));
    return Status::Ok();
  }
  Record& rec = it->second;
  rec.revoked = true;
  if (std::find(rec.revocation_blocks.begin(), rec.revocation_blocks.end(),
                source_block) == rec.revocation_blocks.end()) {
    rec.revocation_blocks.push_back(source_block);
  }
  return Status::Ok();
}

const chain::Certificate* Membership::FindCertificate(
    const std::string& user_id) const {
  const auto it = by_user_.find(user_id);
  if (it == by_user_.end()) return nullptr;
  return &it->second.cert;
}

bool Membership::IsRevoked(const std::string& user_id) const {
  const auto it = by_user_.find(user_id);
  return it != by_user_.end() && it->second.revoked;
}

std::vector<chain::BlockHash> Membership::RevocationBlocksOf(
    const std::string& user_id) const {
  const auto it = by_user_.find(user_id);
  if (it == by_user_.end()) return {};
  return it->second.revocation_blocks;
}

std::string Membership::RoleOf(const std::string& user_id) const {
  const auto it = by_user_.find(user_id);
  return it == by_user_.end() ? "" : it->second.cert.role;
}

std::vector<std::string> Membership::LiveMembers() const {
  std::vector<std::string> out;
  for (const auto& [user, rec] : by_user_) {
    if (!rec.revoked) out.push_back(user);
  }
  return out;
}

std::size_t Membership::LiveCount() const {
  std::size_t n = 0;
  for (const auto& [user, rec] : by_user_) {
    if (!rec.revoked) ++n;
  }
  return n;
}

void Membership::EncodeState(serial::Writer* w) const {
  w->WriteBool(ca_public_key_.has_value());
  if (ca_public_key_.has_value()) w->WriteFixed(ca_public_key_->bytes);
  w->WriteVarint(by_user_.size());
  for (const auto& [user, rec] : by_user_) {
    w->WriteString(user);
    rec.cert.Encode(w);
    w->WriteBool(rec.revoked);
    w->WriteVarint(rec.revocation_blocks.size());
    for (const chain::BlockHash& h : rec.revocation_blocks) w->WriteFixed(h);
  }
}

Status Membership::DecodeState(serial::Reader* r) {
  bool has_ca;
  VEGVISIR_RETURN_IF_ERROR(r->ReadBool(&has_ca));
  if (has_ca) {
    crypto::PublicKey ca;
    VEGVISIR_RETURN_IF_ERROR(r->ReadFixed(&ca.bytes));
    ca_public_key_ = ca;
  } else {
    ca_public_key_.reset();
  }
  std::uint64_t count;
  VEGVISIR_RETURN_IF_ERROR(r->ReadVarint(&count));
  VEGVISIR_RETURN_IF_ERROR(serial::CheckWireCount(
      count, serial::limits::kMaxMembers, r->remaining(), 1, "member"));
  by_user_.clear();
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string user;
    VEGVISIR_RETURN_IF_ERROR(r->ReadString(&user));
    Record rec;
    VEGVISIR_RETURN_IF_ERROR(chain::Certificate::Decode(r, &rec.cert));
    VEGVISIR_RETURN_IF_ERROR(r->ReadBool(&rec.revoked));
    std::uint64_t rev_count;
    VEGVISIR_RETURN_IF_ERROR(r->ReadVarint(&rev_count));
    VEGVISIR_RETURN_IF_ERROR(serial::CheckWireCount(
        rev_count, serial::limits::kMaxRevocationBlocks, r->remaining(),
        sizeof(chain::BlockHash), "revocation"));
    for (std::uint64_t j = 0; j < rev_count; ++j) {
      chain::BlockHash h;
      VEGVISIR_RETURN_IF_ERROR(r->ReadFixed(&h));
      rec.revocation_blocks.push_back(h);
    }
    by_user_.emplace(std::move(user), std::move(rec));
  }
  return Status::Ok();
}

Bytes Membership::StateFingerprint() const {
  serial::Writer w;
  w.WriteString("membership");
  w.WriteVarint(by_user_.size());
  for (const auto& [user, rec] : by_user_) {
    w.WriteString(user);
    w.WriteBytes(rec.cert.Serialize());
    w.WriteBool(rec.revoked);
  }
  return w.Take();
}

}  // namespace vegvisir::csm
