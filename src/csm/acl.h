// Role-based access control for CRDT operations (paper §IV-E).
//
// "When creating a CRDT, one must specify which roles can perform
// which actions." A policy maps roles to permitted operation names;
// the wildcard role "*" grants an operation to every member. An empty
// policy permits nothing except for the creator-independent default
// AllowAll(), which callers use for open CRDTs.
#pragma once

#include <map>
#include <set>
#include <string>

#include "util/bytes.h"
#include "util/status.h"

namespace vegvisir::csm {

class AclPolicy {
 public:
  AclPolicy() = default;

  // A policy whose wildcard entry allows every operation ("*": "*").
  static AclPolicy AllowAll();

  // Grants `op` to `role`. `op` may be "*" (all operations of the
  // CRDT); `role` may be "*" (all members).
  AclPolicy& Allow(const std::string& role, const std::string& op);

  bool IsAllowed(const std::string& role, const std::string& op) const;

  bool empty() const { return grants_.empty(); }

  // Canonical text form: "role1:opA,opB;role2:opC" with roles and ops
  // sorted. Stable: Parse(Serialize(p)) == p. This is the form carried
  // in __omega__ create transactions.
  std::string Serialize() const;
  static StatusOr<AclPolicy> Parse(const std::string& text);

  bool operator==(const AclPolicy&) const = default;

 private:
  std::map<std::string, std::set<std::string>> grants_;
};

}  // namespace vegvisir::csm
