// The CRDT state machine (CSM, paper §IV-E).
//
// The blockchain component stores and validates blocks; the CSM
// interprets their transactions. It maintains:
//   - the membership set U (a 2P-set of certificates),
//   - the chain metadata map __meta__,
//   - the registry Ω of user-created CRDTs with their ACL policies.
//
// Determinism. The CSM's state is a pure function of the *set* of
// applied blocks, independent of application order, which is what
// makes Vegvisir partition-tolerant:
//   - CRDT operations commute by construction;
//   - transaction validity depends only on immutable inputs (the
//     creator's certificate role, the operation's argument types);
//   - an operation that reaches a replica before the CRDT it targets
//     exists is parked and applied when the create arrives;
//   - if two creates race for one name, the one with the smallest
//     transaction id wins deterministically, and the operation log
//     for that name is replayed against the winner.
//
// Blocks must be fed in a topological order (parents before
// children), which the DAG's insert rule already guarantees; applying
// a block twice is a no-op.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "chain/block.h"
#include "chain/types.h"
#include "crdt/crdt.h"
#include "crdt/map.h"
#include "csm/acl.h"
#include "csm/membership.h"
#include "telemetry/telemetry.h"
#include "util/bytes.h"

namespace vegvisir::csm {

struct StateMachineConfig {
  // Roles allowed to revoke certificates (remove from U).
  std::vector<std::string> revoker_roles = {"owner"};
  // Roles allowed to create CRDTs; empty means any member.
  std::vector<std::string> creator_roles;
  // Cap on the retained rejected-transaction log.
  std::size_t max_rejection_log = 256;
  // Memory-constrained mode: drop the per-name operation log once the
  // ops have been applied (keep only ops parked for a missing
  // create). Shrinks resident state and snapshots to live CRDT state
  // only — the E13 finding — at a documented cost: if two creates
  // *race for the same name*, the late-arriving winner cannot replay
  // the log, so that name resolves first-create-wins-by-arrival
  // instead of deterministically. The paper's random CRDT names
  // (§IV-D) make such collisions negligible; leave this false when
  // adversarial name collisions are a concern.
  bool compact_op_log = false;
};

class StateMachine {
 public:
  // `telemetry` is the sink the csm.* metrics and apply trace events
  // flow into (a Node passes its per-node bundle). Null means the
  // machine owns a private bundle, so standalone use keeps working.
  explicit StateMachine(StateMachineConfig config = {},
                        telemetry::Telemetry* telemetry = nullptr);

  // Applies every transaction in a chain-valid block. Idempotent per
  // block hash.
  void ApplyBlock(const chain::Block& block);

  bool HasApplied(const chain::BlockHash& h) const {
    return applied_blocks_.count(h) > 0;
  }
  std::size_t AppliedBlockCount() const { return applied_blocks_.size(); }

  const Membership& membership() const { return membership_; }

  // The user-created CRDT registered under `name` (nullptr if none).
  const crdt::Crdt* FindCrdt(const std::string& name) const;

  // Typed access, e.g. FindCrdtAs<crdt::GSet>("H").
  template <typename T>
  const T* FindCrdtAs(const std::string& name) const {
    return dynamic_cast<const T*>(FindCrdt(name));
  }

  std::vector<std::string> CrdtNames() const;
  const AclPolicy* PolicyOf(const std::string& name) const;

  // Chain metadata (the __meta__ LWW map); ChainName is its "name".
  const crdt::LwwMap& meta() const { return meta_; }
  std::string ChainName() const;

  // Operational counters, routed through the telemetry registry
  // (csm.applied_blocks, csm.applied_txns, csm.rejected_txns,
  // csm.duplicate_creates). They count what this process did and are
  // monotonic — LoadSnapshot does not rewind them; use
  // AppliedBlockCount() for the state's lineage.
  struct Stats {
    std::uint64_t applied_blocks = 0;
    std::uint64_t applied_txns = 0;    // accepted and applied
    std::uint64_t rejected_txns = 0;   // failed a deterministic check
    std::uint64_t duplicate_creates = 0;
  };
  Stats stats() const;

  telemetry::Telemetry* telemetry() const { return telem_; }

  // Operations waiting for their CRDT's create to arrive.
  std::size_t PendingOpCount() const;

  struct Rejection {
    std::string tx_id;
    std::string reason;
  };
  const std::vector<Rejection>& rejections() const { return rejections_; }

  // Canonical digest of the full application state. Two replicas that
  // have applied the same set of blocks produce identical
  // fingerprints, whatever the order.
  Bytes StateFingerprint() const;

  // ---- snapshots ---------------------------------------------------
  // Checkpoints the complete application state — membership, chain
  // metadata, every CRDT instance, the per-name operation logs
  // (needed for create-race replays and parked ops) and the
  // applied-block set — so a device can restart without replaying the
  // whole DAG. Stats counters are operational, not state, and are not
  // persisted. The snapshot is checksummed; LoadSnapshot rejects
  // corrupted input and replaces the current state on success.
  Bytes SaveSnapshot() const;
  Status LoadSnapshot(ByteSpan data);

  // ---- transaction builders (for submitters) ----------------------
  static chain::Transaction MakeCreateTx(const std::string& name,
                                         crdt::CrdtType type,
                                         crdt::ValueType element_type,
                                         const AclPolicy& policy);
  static chain::Transaction MakeAddUserTx(const chain::Certificate& cert);
  static chain::Transaction MakeRevokeUserTx(const chain::Certificate& cert);
  static chain::Transaction MakeMetaPutTx(const std::string& key,
                                          const std::string& value);

 private:
  struct Instance {
    std::string creation_tx_id;
    crdt::CrdtType type;
    crdt::ValueType element_type;
    AclPolicy policy;
    std::unique_ptr<crdt::Crdt> crdt;
  };

  struct OpRecord {
    std::string op;
    std::vector<crdt::Value> args;
    crdt::OpContext ctx;
  };

  void ApplyTx(const chain::Transaction& tx, const crdt::OpContext& ctx,
               const chain::BlockHash& block_hash);
  void ApplyUsersTx(const chain::Transaction& tx, const crdt::OpContext& ctx,
                    const chain::BlockHash& block_hash);
  void ApplyMetaTx(const chain::Transaction& tx, const crdt::OpContext& ctx);
  void ApplyOmegaTx(const chain::Transaction& tx, const crdt::OpContext& ctx);
  void ApplyAppOp(const chain::Transaction& tx, const crdt::OpContext& ctx);

  // Applies one logged operation to an instance. `count_stats` is
  // false during replays so operations are not double-counted.
  void RunOp(Instance& inst, const OpRecord& rec, bool count_stats);

  void Reject(const crdt::OpContext& ctx, std::string reason);

  StateMachineConfig config_;
  // Telemetry plumbing: `owned_` is the private fallback bundle (null
  // when an external sink was provided); handles point into whichever
  // registry `telem_` names and stay valid across moves (the bundle
  // is heap-allocated).
  std::unique_ptr<telemetry::Telemetry> owned_;
  telemetry::Telemetry* telem_ = nullptr;
  telemetry::Counter c_applied_blocks_;
  telemetry::Counter c_applied_txns_;
  telemetry::Counter c_rejected_txns_;
  telemetry::Counter c_duplicate_creates_;

  Membership membership_;
  crdt::LwwMap meta_;

  std::map<std::string, Instance> omega_;
  // Full per-name operation log (also the pending queue for names
  // whose create has not arrived).
  std::map<std::string, std::vector<OpRecord>> op_log_;

  std::set<chain::BlockHash> applied_blocks_;
  std::vector<Rejection> rejections_;
};

}  // namespace vegvisir::csm
