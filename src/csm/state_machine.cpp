#include "csm/state_machine.h"

#include <algorithm>

#include "chain/genesis.h"
#include "crypto/sha256.h"
#include "serial/codec.h"
#include "serial/limits.h"

namespace vegvisir::csm {
namespace {

bool RoleIn(const std::string& role, const std::vector<std::string>& roles) {
  return std::find(roles.begin(), roles.end(), role) != roles.end();
}

bool IsReservedName(const std::string& name) {
  return name.rfind("__", 0) == 0;
}

}  // namespace

StateMachine::StateMachine(StateMachineConfig config,
                           telemetry::Telemetry* telemetry)
    : config_(std::move(config)),
      owned_(telemetry == nullptr ? std::make_unique<telemetry::Telemetry>()
                                  : nullptr),
      telem_(telemetry == nullptr ? owned_.get() : telemetry),
      c_applied_blocks_(telem_->metrics.GetCounter("csm.applied_blocks")),
      c_applied_txns_(telem_->metrics.GetCounter("csm.applied_txns")),
      c_rejected_txns_(telem_->metrics.GetCounter("csm.rejected_txns")),
      c_duplicate_creates_(
          telem_->metrics.GetCounter("csm.duplicate_creates")),
      meta_(crdt::ValueType::kStr) {}

StateMachine::Stats StateMachine::stats() const {
  Stats s;
  s.applied_blocks = c_applied_blocks_.value();
  s.applied_txns = c_applied_txns_.value();
  s.rejected_txns = c_rejected_txns_.value();
  s.duplicate_creates = c_duplicate_creates_.value();
  return s;
}

void StateMachine::ApplyBlock(const chain::Block& block) {
  const chain::BlockHash h = block.hash();
  if (!applied_blocks_.insert(h).second) return;  // idempotent

  const std::string hash_hex = chain::HashHex(h);
  for (std::size_t i = 0; i < block.transactions().size(); ++i) {
    crdt::OpContext ctx;
    ctx.tx_id = hash_hex + ":" + std::to_string(i);
    ctx.user_id = block.header().user_id;
    ctx.timestamp = block.header().timestamp_ms;
    ApplyTx(block.transactions()[i], ctx, h);
  }
  c_applied_blocks_.Inc();
  // Block timestamps live in the same millisecond domain as the
  // simulated clock, so they are the natural trace time here.
  telem_->trace.RecordInstant("csm.apply", block.header().timestamp_ms,
                              block.transactions().size());
}

void StateMachine::ApplyTx(const chain::Transaction& tx,
                           const crdt::OpContext& ctx,
                           const chain::BlockHash& block_hash) {
  if (tx.crdt_name == chain::kUsersCrdtName) {
    ApplyUsersTx(tx, ctx, block_hash);
  } else if (tx.crdt_name == chain::kMetaCrdtName) {
    ApplyMetaTx(tx, ctx);
  } else if (tx.crdt_name == chain::kOmegaCrdtName) {
    ApplyOmegaTx(tx, ctx);
  } else if (IsReservedName(tx.crdt_name)) {
    Reject(ctx, "unknown reserved CRDT '" + tx.crdt_name + "'");
  } else {
    ApplyAppOp(tx, ctx);
  }
}

void StateMachine::ApplyUsersTx(const chain::Transaction& tx,
                                const crdt::OpContext& ctx,
                                const chain::BlockHash& block_hash) {
  if (tx.args.size() != 1 || tx.args[0].type() != crdt::ValueType::kBytes) {
    Reject(ctx, "U op takes one bytes argument (a certificate)");
    return;
  }
  auto cert = chain::Certificate::Deserialize(tx.args[0].AsBytes());
  if (!cert.ok()) {
    Reject(ctx, "malformed certificate: " + cert.status().ToString());
    return;
  }

  if (tx.op == "add") {
    const Status s = membership_.Add(*cert, block_hash);
    if (!s.ok()) {
      Reject(ctx, "enrolment refused: " + s.ToString());
      return;
    }
    c_applied_txns_.Inc();
    return;
  }

  if (tx.op == "remove") {
    const std::string role = membership_.RoleOf(ctx.user_id);
    if (!RoleIn(role, config_.revoker_roles)) {
      Reject(ctx, "role '" + role + "' may not revoke certificates");
      return;
    }
    const Status s = membership_.Revoke(*cert, block_hash);
    if (!s.ok()) {
      Reject(ctx, "revocation refused: " + s.ToString());
      return;
    }
    c_applied_txns_.Inc();
    return;
  }

  Reject(ctx, "U supports 'add' and 'remove', got '" + tx.op + "'");
}

void StateMachine::ApplyMetaTx(const chain::Transaction& tx,
                               const crdt::OpContext& ctx) {
  // Chain metadata is owner-writable only.
  if (membership_.RoleOf(ctx.user_id) != chain::kOwnerRole) {
    Reject(ctx, "only the owner may write __meta__");
    return;
  }
  const Status s = meta_.Apply(tx.op, tx.args, ctx);
  if (!s.ok()) {
    Reject(ctx, "__meta__ op failed: " + s.ToString());
    return;
  }
  c_applied_txns_.Inc();
}

void StateMachine::ApplyOmegaTx(const chain::Transaction& tx,
                                const crdt::OpContext& ctx) {
  if (tx.op != "create") {
    Reject(ctx, "__omega__ supports only 'create'");
    return;
  }
  if (tx.args.size() != 4) {
    Reject(ctx, "create takes (name, type, element_type, acl)");
    return;
  }
  for (const crdt::Value& v : tx.args) {
    if (v.type() != crdt::ValueType::kStr) {
      Reject(ctx, "create arguments must all be strings");
      return;
    }
  }
  const std::string& name = tx.args[0].AsStr();
  if (name.empty() || IsReservedName(name)) {
    Reject(ctx, "invalid CRDT name '" + name + "'");
    return;
  }
  crdt::CrdtType type;
  if (!crdt::CrdtTypeFromName(tx.args[1].AsStr(), &type)) {
    Reject(ctx, "unknown CRDT type '" + tx.args[1].AsStr() + "'");
    return;
  }
  crdt::ValueType element_type;
  {
    const std::string& e = tx.args[2].AsStr();
    if (e == "bool") {
      element_type = crdt::ValueType::kBool;
    } else if (e == "int") {
      element_type = crdt::ValueType::kInt;
    } else if (e == "str") {
      element_type = crdt::ValueType::kStr;
    } else if (e == "bytes") {
      element_type = crdt::ValueType::kBytes;
    } else {
      Reject(ctx, "unknown element type '" + e + "'");
      return;
    }
  }
  auto policy = AclPolicy::Parse(tx.args[3].AsStr());
  if (!policy.ok()) {
    Reject(ctx, "bad acl: " + policy.status().ToString());
    return;
  }
  if (!config_.creator_roles.empty() &&
      !RoleIn(membership_.RoleOf(ctx.user_id), config_.creator_roles)) {
    Reject(ctx, "role may not create CRDTs");
    return;
  }
  if (membership_.FindCertificate(ctx.user_id) == nullptr) {
    Reject(ctx, "creator is not a member");
    return;
  }

  const auto it = omega_.find(name);
  if (it != omega_.end()) {
    if (ctx.tx_id >= it->second.creation_tx_id) {
      // Deterministic loser of a name race (or a literal duplicate).
      c_duplicate_creates_.Inc();
      return;
    }
    if (config_.compact_op_log) {
      // The log was compacted away, so the late winner cannot replay:
      // keep the incumbent (first-create-wins-by-arrival; see the
      // compact_op_log documentation for the trade-off).
      c_duplicate_creates_.Inc();
      return;
    }
    // This create wins the race: rebuild and replay below.
    c_duplicate_creates_.Inc();
  }

  Instance inst;
  inst.creation_tx_id = ctx.tx_id;
  inst.type = type;
  inst.element_type = element_type;
  inst.policy = *std::move(policy);
  inst.crdt = crdt::CreateCrdt(type, element_type);
  omega_[name] = std::move(inst);
  c_applied_txns_.Inc();

  // Replay the operation log (parked ops, or everything after a
  // create-race winner change). Replays do not recount stats.
  const auto log_it = op_log_.find(name);
  if (log_it != op_log_.end()) {
    Instance& target = omega_[name];
    for (const OpRecord& rec : log_it->second) {
      RunOp(target, rec, /*count_stats=*/false);
    }
    // In compacted mode the parked ops have served their purpose.
    if (config_.compact_op_log) op_log_.erase(log_it);
  }
}

void StateMachine::ApplyAppOp(const chain::Transaction& tx,
                              const crdt::OpContext& ctx) {
  OpRecord rec{tx.op, tx.args, ctx};
  const auto inst_it = omega_.find(tx.crdt_name);
  if (inst_it != omega_.end()) {
    RunOp(inst_it->second, rec, /*count_stats=*/true);
    // Compacted mode keeps no history for applied ops.
    if (config_.compact_op_log) return;
  }
  // Logged for replays (create races) and for ops parked ahead of
  // their create.
  op_log_[tx.crdt_name].push_back(std::move(rec));
}

void StateMachine::RunOp(Instance& inst, const OpRecord& rec,
                         bool count_stats) {
  const std::string role = membership_.RoleOf(rec.ctx.user_id);
  if (!inst.policy.IsAllowed(role, rec.op)) {
    if (count_stats) {
      Reject(rec.ctx, "role '" + role + "' may not '" + rec.op + "'");
    }
    return;
  }
  const Status s = inst.crdt->Apply(rec.op, rec.args, rec.ctx);
  if (!s.ok()) {
    if (count_stats) Reject(rec.ctx, s.ToString());
    return;
  }
  if (count_stats) c_applied_txns_.Inc();
}

void StateMachine::Reject(const crdt::OpContext& ctx, std::string reason) {
  c_rejected_txns_.Inc();
  if (rejections_.size() < config_.max_rejection_log) {
    rejections_.push_back(Rejection{ctx.tx_id, std::move(reason)});
  }
}

const crdt::Crdt* StateMachine::FindCrdt(const std::string& name) const {
  const auto it = omega_.find(name);
  return it == omega_.end() ? nullptr : it->second.crdt.get();
}

std::vector<std::string> StateMachine::CrdtNames() const {
  std::vector<std::string> names;
  names.reserve(omega_.size());
  for (const auto& [name, inst] : omega_) names.push_back(name);
  return names;
}

const AclPolicy* StateMachine::PolicyOf(const std::string& name) const {
  const auto it = omega_.find(name);
  return it == omega_.end() ? nullptr : &it->second.policy;
}

std::string StateMachine::ChainName() const {
  const auto v = meta_.Get("name");
  return v.has_value() ? v->AsStr() : "";
}

std::size_t StateMachine::PendingOpCount() const {
  std::size_t n = 0;
  for (const auto& [name, log] : op_log_) {
    if (omega_.count(name) == 0) n += log.size();
  }
  return n;
}

Bytes StateMachine::StateFingerprint() const {
  serial::Writer w;
  w.WriteString("csm-state");
  w.WriteBytes(membership_.StateFingerprint());
  w.WriteBytes(meta_.StateFingerprint());
  w.WriteVarint(omega_.size());
  for (const auto& [name, inst] : omega_) {
    w.WriteString(name);
    w.WriteString(inst.creation_tx_id);
    w.WriteU8(static_cast<std::uint8_t>(inst.type));
    w.WriteU8(static_cast<std::uint8_t>(inst.element_type));
    w.WriteString(inst.policy.Serialize());
    w.WriteBytes(inst.crdt->StateFingerprint());
  }
  return w.Take();
}

Bytes StateMachine::SaveSnapshot() const {
  serial::Writer w;
  w.WriteString("vegvisir-csm-snapshot-v1");
  membership_.EncodeState(&w);
  meta_.EncodeState(&w);

  w.WriteVarint(omega_.size());
  for (const auto& [name, inst] : omega_) {
    w.WriteString(name);
    w.WriteString(inst.creation_tx_id);
    w.WriteU8(static_cast<std::uint8_t>(inst.type));
    w.WriteU8(static_cast<std::uint8_t>(inst.element_type));
    w.WriteString(inst.policy.Serialize());
    inst.crdt->EncodeState(&w);
  }

  w.WriteVarint(op_log_.size());
  for (const auto& [name, records] : op_log_) {
    w.WriteString(name);
    w.WriteVarint(records.size());
    for (const OpRecord& rec : records) {
      w.WriteString(rec.op);
      w.WriteVarint(rec.args.size());
      for (const crdt::Value& v : rec.args) v.Encode(&w);
      w.WriteString(rec.ctx.tx_id);
      w.WriteString(rec.ctx.user_id);
      w.WriteU64(rec.ctx.timestamp);
    }
  }

  w.WriteVarint(applied_blocks_.size());
  for (const chain::BlockHash& h : applied_blocks_) w.WriteFixed(h);

  Bytes payload = w.Take();
  const crypto::Sha256Digest checksum = crypto::Sha256::Hash(payload);
  Append(&payload, ByteSpan(checksum.data(), checksum.size()));
  return payload;
}

Status StateMachine::LoadSnapshot(ByteSpan data) {
  if (data.size() < crypto::kSha256DigestSize) {
    return InvalidArgumentError("snapshot too short");
  }
  const ByteSpan payload(data.data(),
                         data.size() - crypto::kSha256DigestSize);
  const ByteSpan stored(data.data() + payload.size(),
                        crypto::kSha256DigestSize);
  const crypto::Sha256Digest computed = crypto::Sha256::Hash(payload);
  if (!ConstantTimeEqual(stored, ByteSpan(computed.data(), computed.size()))) {
    return InvalidArgumentError("snapshot checksum mismatch");
  }

  serial::Reader r(payload);
  std::string magic;
  VEGVISIR_RETURN_IF_ERROR(r.ReadString(&magic));
  if (magic != "vegvisir-csm-snapshot-v1") {
    return InvalidArgumentError("bad snapshot magic");
  }

  // Decode into a fresh state machine so a failure midway leaves the
  // current state untouched.
  StateMachine loaded(config_);
  VEGVISIR_RETURN_IF_ERROR(loaded.membership_.DecodeState(&r));
  VEGVISIR_RETURN_IF_ERROR(loaded.meta_.DecodeState(&r));

  std::uint64_t count;
  VEGVISIR_RETURN_IF_ERROR(r.ReadVarint(&count));
  VEGVISIR_RETURN_IF_ERROR(serial::CheckWireCount(
      count, serial::limits::kMaxCsmInstances, r.remaining(), 1, "instance"));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string name;
    VEGVISIR_RETURN_IF_ERROR(r.ReadString(&name));
    Instance inst;
    VEGVISIR_RETURN_IF_ERROR(r.ReadString(&inst.creation_tx_id));
    std::uint8_t type_tag, elem_tag;
    VEGVISIR_RETURN_IF_ERROR(r.ReadU8(&type_tag));
    VEGVISIR_RETURN_IF_ERROR(r.ReadU8(&elem_tag));
    if (type_tag > static_cast<std::uint8_t>(crdt::CrdtType::kEwFlag) ||
        elem_tag > static_cast<std::uint8_t>(crdt::ValueType::kBytes)) {
      return InvalidArgumentError("bad type tags in snapshot");
    }
    inst.type = static_cast<crdt::CrdtType>(type_tag);
    inst.element_type = static_cast<crdt::ValueType>(elem_tag);
    std::string policy_text;
    VEGVISIR_RETURN_IF_ERROR(r.ReadString(&policy_text));
    auto policy = AclPolicy::Parse(policy_text);
    if (!policy.ok()) return policy.status();
    inst.policy = *std::move(policy);
    inst.crdt = crdt::CreateCrdt(inst.type, inst.element_type);
    VEGVISIR_RETURN_IF_ERROR(inst.crdt->DecodeState(&r));
    loaded.omega_.emplace(std::move(name), std::move(inst));
  }

  VEGVISIR_RETURN_IF_ERROR(r.ReadVarint(&count));
  VEGVISIR_RETURN_IF_ERROR(serial::CheckWireCount(
      count, serial::limits::kMaxOpLogCrdts, r.remaining(), 1, "op-log"));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string name;
    VEGVISIR_RETURN_IF_ERROR(r.ReadString(&name));
    std::uint64_t record_count;
    VEGVISIR_RETURN_IF_ERROR(r.ReadVarint(&record_count));
    VEGVISIR_RETURN_IF_ERROR(serial::CheckWireCount(
        record_count, serial::limits::kMaxOpRecords, r.remaining(), 1,
        "record"));
    std::vector<OpRecord> records;
    records.reserve(record_count);
    for (std::uint64_t j = 0; j < record_count; ++j) {
      OpRecord rec;
      VEGVISIR_RETURN_IF_ERROR(r.ReadString(&rec.op));
      std::uint64_t arg_count;
      VEGVISIR_RETURN_IF_ERROR(r.ReadVarint(&arg_count));
      VEGVISIR_RETURN_IF_ERROR(serial::CheckWireCount(
          arg_count, serial::limits::kMaxOpArgs, r.remaining(), 1, "arg"));
      for (std::uint64_t a = 0; a < arg_count; ++a) {
        crdt::Value v;
        VEGVISIR_RETURN_IF_ERROR(crdt::Value::Decode(&r, &v));
        rec.args.push_back(std::move(v));
      }
      VEGVISIR_RETURN_IF_ERROR(r.ReadString(&rec.ctx.tx_id));
      VEGVISIR_RETURN_IF_ERROR(r.ReadString(&rec.ctx.user_id));
      VEGVISIR_RETURN_IF_ERROR(r.ReadU64(&rec.ctx.timestamp));
      records.push_back(std::move(rec));
    }
    loaded.op_log_.emplace(std::move(name), std::move(records));
  }

  VEGVISIR_RETURN_IF_ERROR(r.ReadVarint(&count));
  VEGVISIR_RETURN_IF_ERROR(serial::CheckWireCount(
      count, serial::limits::kMaxAppliedBlocks, r.remaining(),
      sizeof(chain::BlockHash), "applied-block"));
  for (std::uint64_t i = 0; i < count; ++i) {
    chain::BlockHash h;
    VEGVISIR_RETURN_IF_ERROR(r.ReadFixed(&h));
    loaded.applied_blocks_.insert(h);
  }
  VEGVISIR_RETURN_IF_ERROR(r.ExpectEnd());

  // Field-wise adoption of the decoded state: this machine keeps its
  // telemetry plumbing (the counters are operational, not state).
  membership_ = std::move(loaded.membership_);
  meta_ = std::move(loaded.meta_);
  omega_ = std::move(loaded.omega_);
  op_log_ = std::move(loaded.op_log_);
  applied_blocks_ = std::move(loaded.applied_blocks_);
  rejections_ = std::move(loaded.rejections_);
  return Status::Ok();
}

chain::Transaction StateMachine::MakeCreateTx(const std::string& name,
                                              crdt::CrdtType type,
                                              crdt::ValueType element_type,
                                              const AclPolicy& policy) {
  chain::Transaction tx;
  tx.crdt_name = chain::kOmegaCrdtName;
  tx.op = "create";
  tx.args = {crdt::Value::OfStr(name),
             crdt::Value::OfStr(crdt::CrdtTypeName(type)),
             crdt::Value::OfStr(crdt::ValueTypeName(element_type)),
             crdt::Value::OfStr(policy.Serialize())};
  return tx;
}

chain::Transaction StateMachine::MakeAddUserTx(
    const chain::Certificate& cert) {
  chain::Transaction tx;
  tx.crdt_name = chain::kUsersCrdtName;
  tx.op = "add";
  tx.args = {crdt::Value::OfBytes(cert.Serialize())};
  return tx;
}

chain::Transaction StateMachine::MakeRevokeUserTx(
    const chain::Certificate& cert) {
  chain::Transaction tx;
  tx.crdt_name = chain::kUsersCrdtName;
  tx.op = "remove";
  tx.args = {crdt::Value::OfBytes(cert.Serialize())};
  return tx;
}

chain::Transaction StateMachine::MakeMetaPutTx(const std::string& key,
                                               const std::string& value) {
  chain::Transaction tx;
  tx.crdt_name = chain::kMetaCrdtName;
  tx.op = "put";
  tx.args = {crdt::Value::OfStr(key), crdt::Value::OfStr(value)};
  return tx;
}

}  // namespace vegvisir::csm
