// Deterministic work-stealing thread pool (DESIGN.md §12).
//
// Vegvisir's hot path is stateless Ed25519 verification; everything
// stateful (DAG insert, CSM apply) stays on the owning thread. The
// pool therefore only ever runs closed-over, side-effect-free jobs
// whose results land behind a lock or an atomic — which is what makes
// `threads=N` observably identical to `threads=1`.
//
// Shape: one bounded MPMC injection queue plus a per-worker deque.
// Workers drain their own deque LIFO (cache locality), then the
// global queue, then steal FIFO from a sibling. Tasks here are
// coarse — one Ed25519 verify is tens of microseconds — so a single
// flat mutex around the queues costs noise compared to the work and
// buys obviously-correct wakeup logic.
//
// `threads = 1` spawns no workers at all: `Submit` runs the task
// inline and `Wait` is a no-op, byte-identical to the pre-pool serial
// path. A full queue also degrades to inline execution on the
// submitter (backpressure without blocking or dropping).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "telemetry/telemetry.h"
#include "util/thread_annotations.h"

namespace vegvisir::exec {

// Threads the hardware can run at once; at least 1 even when the
// platform reports zero.
unsigned HardwareConcurrency();

struct ExecConfig {
  // Total execution width. 1 = serial (no worker threads); N >= 2
  // spawns N workers and the submitting thread helps during Wait().
  unsigned threads = 1;
  // Bound on the global injection queue; submissions past it run
  // inline on the submitter.
  std::size_t queue_capacity = 4096;

  // Reads VEGVISIR_THREADS (clamped to [1, 64]); unset or malformed
  // means serial.
  static ExecConfig FromEnv();
};

class ThreadPool {
 public:
  // `sink` receives exec.tasks_executed / exec.steals counters and
  // the exec.threads / exec.pool_utilization gauges; may be null.
  explicit ThreadPool(ExecConfig config,
                      telemetry::Telemetry* sink = nullptr);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned thread_count() const { return config_.threads; }
  bool parallel() const { return !workers_.empty(); }

  // Runs `task` on some thread. Serial mode and queue-full
  // backpressure both execute inline before returning — so Submit
  // can run arbitrary task code on THIS thread and must never be
  // entered with any mutex held (enforced under VEGVISIR_LOCK_DEBUG;
  // EXCLUDES covers the pool's own lock for clang).
  void Submit(std::function<void()> task) VEGVISIR_EXCLUDES(mu_);

  // Blocks until every submitted task has finished. The calling
  // thread helps drain the queues while it waits. Scheduler-class
  // blocking: callers must hold no locks at all.
  void Wait() VEGVISIR_EXCLUDES(mu_);

  // Splits [0, n) into chunks of `grain` and runs `body(begin, end)`
  // across the pool, returning when all chunks are done. Serial mode
  // runs body(0, n) inline. Blocks like Wait(): no locks held.
  void ParallelFor(std::size_t n, std::size_t grain,
                   const std::function<void(std::size_t, std::size_t)>& body)
      VEGVISIR_EXCLUDES(mu_);

  std::uint64_t TasksExecutedForTest() const {
    return total_tasks_.load(std::memory_order_relaxed);
  }

 private:
  struct Worker {
    // Guarded by the owning pool's mu_ (a nested type cannot name the
    // outer member in a guarded_by attribute). The only accessors
    // after construction are TakeTaskLocked, which REQUIRES(mu_), and
    // ParallelFor, which holds a MutexLock across its enqueue loop.
    std::deque<std::function<void()>> local;  // owner pops back, thieves front
    std::thread thread;
  };

  // All queue access happens under mu_. `self` is the worker index,
  // or kHelper for the Wait()ing submitter.
  static constexpr std::size_t kHelper = static_cast<std::size_t>(-1);
  bool TakeTaskLocked(std::size_t self, std::function<void()>* task)
      VEGVISIR_REQUIRES(mu_);
  // Drops mu_ around task(), re-acquires it, then retires the task
  // from outstanding_ — called and returns with mu_ held.
  void RunTask(std::function<void()> task, bool on_worker)
      VEGVISIR_REQUIRES(mu_);
  void WorkerLoop(std::size_t index);

  ExecConfig config_;
  telemetry::Counter c_tasks_;
  telemetry::Counter c_steals_;
  telemetry::Gauge g_threads_;
  telemetry::Gauge g_utilization_;

  // Rank kExecPool: tasks run with mu_ dropped (RunTask), so nothing
  // is ever acquired under it. Both condition variables pair with
  // this one mutex — idle_cv_ has no mutex of its own (lock_ranks.h
  // documents the pairing).
  mutable util::Mutex mu_{util::LockRank::kExecPool};
  util::ConditionVariable work_cv_;  // workers: "a task was queued"
  util::ConditionVariable idle_cv_;  // Wait(): "outstanding hit zero"
  // Bounded MPMC injection queue.
  std::deque<std::function<void()>> global_ VEGVISIR_GUARDED_BY(mu_);
  // Set once in the constructor, then immutable: pointer loads are
  // lock-free (parallel() and the steal scan read it unlocked); each
  // worker's queue contents are guarded by mu_ — see Worker.
  std::vector<std::unique_ptr<Worker>> workers_;
  // ParallelFor round-robin cursor.
  std::size_t next_worker_ VEGVISIR_GUARDED_BY(mu_) = 0;
  // Queued + currently running.
  std::size_t outstanding_ VEGVISIR_GUARDED_BY(mu_) = 0;
  bool stop_ VEGVISIR_GUARDED_BY(mu_) = false;

  std::atomic<std::uint64_t> total_tasks_{0};
  std::atomic<std::uint64_t> worker_tasks_{0};
};

// Free-function convenience that tolerates a null pool (serial).
void ParallelFor(ThreadPool* pool, std::size_t n, std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace vegvisir::exec
