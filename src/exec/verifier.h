// Batched Ed25519 verification over the thread pool (DESIGN.md §12).
//
// The ingest pipeline splits block checking in two: stateless
// signature verification fans out across workers the moment blocks
// arrive off the wire (recon stash, gossip quarantine sweep), while
// the stateful validate/insert/apply sweep stays serial and looks the
// results up here. `Lookup` blocks on an entry that is still in
// flight, which keeps hit/miss counts — and therefore the whole
// metric snapshot — independent of how many workers raced ahead.
//
// Entries are keyed by content id (block hash) AND the public key the
// job was verified under: if membership re-enrolls a creator between
// pre-verification and validation, the stale entry misses and the
// caller falls back to a synchronous verify. A verdict is consumed
// with `Forget` once the block reaches a final accept/reject, and the
// cache is bounded by FIFO eviction at enqueue time (both on the
// serial thread, so cache contents stay deterministic).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "crypto/ed25519.h"
#include "exec/pool.h"
#include "telemetry/telemetry.h"
#include "util/bytes.h"
#include "util/thread_annotations.h"

namespace vegvisir::exec {

using ContentId = std::array<std::uint8_t, 32>;

// One signature check. Owns its payload bytes: jobs outlive the
// buffers they were built from (a recon stash can be consumed while
// the job is still queued).
struct VerifyJob {
  ContentId id{};
  crypto::PublicKey key{};
  Bytes message;
  crypto::Signature signature{};
};

class BatchVerifier {
 public:
  // `pool` may be null or serial — jobs then run inline on Enqueue.
  // `sink` receives exec.batches / exec.batch_jobs / exec.presig_*
  // counters and the exec.batch_size histogram; may be null.
  BatchVerifier(ThreadPool* pool, telemetry::Telemetry* sink,
                std::size_t capacity = 8192);
  ~BatchVerifier();  // waits out in-flight jobs

  BatchVerifier(const BatchVerifier&) = delete;
  BatchVerifier& operator=(const BatchVerifier&) = delete;

  // Fans the jobs that are not already cached under the same key out
  // across the pool. Call from the owning (serial) thread only —
  // and with NO locks held: the null-pool/serial path runs the
  // verify jobs inline right here (enforced under
  // VEGVISIR_LOCK_DEBUG; EXCLUDES covers this cache's own lock for
  // clang).
  void Enqueue(std::vector<VerifyJob> jobs) VEGVISIR_EXCLUDES(mu_);

  // Verdict for id under `key`: nullopt when no entry exists (or the
  // entry was verified under a different key); otherwise the result,
  // blocking until an in-flight job lands. Scheduler-class blocking
  // (DESIGN.md §15): callers must hold no mutex at all — a caller
  // blocked here while holding a node-side lock would stall every
  // other user of that lock for a whole batch drain.
  std::optional<bool> Lookup(const ContentId& id, const crypto::PublicKey& key)
      VEGVISIR_EXCLUDES(mu_);

  // True when an entry (pending or done) exists for id under `key`.
  // Lets callers skip rebuilding payloads for already-enqueued work.
  bool Cached(const ContentId& id, const crypto::PublicKey& key) const;

  // Drops the entry; call once the block reaches a final verdict.
  void Forget(const ContentId& id);

  std::size_t SizeForTest() const;

 private:
  struct Entry {
    crypto::PublicKey key{};
    std::uint64_t gen = 0;  // guards late writes against evict/rekey
    bool done = false;
    bool valid = false;
  };

  void Record(const ContentId& id, std::uint64_t gen, bool valid);

  ThreadPool* pool_;
  std::size_t capacity_;
  telemetry::Counter c_batches_;
  telemetry::Counter c_batch_jobs_;
  telemetry::Counter c_hits_;
  telemetry::Counter c_misses_;
  telemetry::Histogram h_batch_size_;

  // Rank kExecVerifier: nothing is acquired while held (Enqueue
  // releases it before fanning out to pool_->Submit). done_cv_ pairs
  // with this mutex (lock_ranks.h).
  mutable util::Mutex mu_{util::LockRank::kExecVerifier};
  util::ConditionVariable done_cv_;
  std::map<ContentId, Entry> entries_ VEGVISIR_GUARDED_BY(mu_);
  // Insertion order; may hold stale ids.
  std::deque<ContentId> fifo_ VEGVISIR_GUARDED_BY(mu_);
  std::uint64_t gen_counter_ VEGVISIR_GUARDED_BY(mu_) = 0;
  std::size_t in_flight_ VEGVISIR_GUARDED_BY(mu_) = 0;
};

}  // namespace vegvisir::exec
