#include "exec/pool.h"

#include <cstdlib>
#include <string>

#include "util/lock_ranks.h"

namespace vegvisir::exec {

unsigned HardwareConcurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

ExecConfig ExecConfig::FromEnv() {
  ExecConfig config;
  const char* raw = std::getenv("VEGVISIR_THREADS");
  if (raw == nullptr || *raw == '\0') return config;
  char* end = nullptr;
  const unsigned long value = std::strtoul(raw, &end, 10);
  if (end == raw || *end != '\0') return config;
  config.threads = static_cast<unsigned>(value < 1 ? 1 : value);
  if (config.threads > 64) config.threads = 64;
  return config;
}

ThreadPool::ThreadPool(ExecConfig config, telemetry::Telemetry* sink)
    : config_(config) {
  if (config_.threads < 1) config_.threads = 1;
  if (config_.queue_capacity < 1) config_.queue_capacity = 1;
  if (sink != nullptr) {
    c_tasks_ = sink->metrics.GetCounter("exec.tasks_executed");
    c_steals_ = sink->metrics.GetCounter("exec.steals");
    g_threads_ = sink->metrics.GetGauge("exec.threads");
    g_utilization_ = sink->metrics.GetGauge("exec.pool_utilization");
  }
  g_threads_.Set(static_cast<double>(config_.threads));
  if (config_.threads < 2) return;
  workers_.reserve(config_.threads);
  for (unsigned i = 0; i < config_.threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (unsigned i = 0; i < config_.threads; ++i) {
    // The repo's one sanctioned thread construction site
    // (vegvisir_lint rule 6): every other layer goes through this
    // pool.
    // lint: thread-owner
    workers_[i]->thread = std::thread([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    const util::MutexLock guard(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

bool ThreadPool::TakeTaskLocked(std::size_t self,
                                std::function<void()>* task) {
  if (self != kHelper) {
    auto& mine = workers_[self]->local;
    if (!mine.empty()) {
      *task = std::move(mine.back());
      mine.pop_back();
      return true;
    }
  }
  if (!global_.empty()) {
    *task = std::move(global_.front());
    global_.pop_front();
    return true;
  }
  const std::size_t n = workers_.size();
  const std::size_t start = self == kHelper ? 0 : self + 1;
  for (std::size_t offset = 0; offset < n; ++offset) {
    auto& victim = workers_[(start + offset) % n]->local;
    if (victim.empty()) continue;
    *task = std::move(victim.front());
    victim.pop_front();
    c_steals_.Inc();
    return true;
  }
  return false;
}

void ThreadPool::RunTask(std::function<void()> task, bool on_worker) {
  mu_.unlock();
  task();
  c_tasks_.Inc();
  total_tasks_.fetch_add(1, std::memory_order_relaxed);
  if (on_worker) worker_tasks_.fetch_add(1, std::memory_order_relaxed);
  mu_.lock();
  --outstanding_;
  if (outstanding_ == 0) idle_cv_.notify_all();
}

void ThreadPool::WorkerLoop(std::size_t index) {
  mu_.lock();
  for (;;) {
    std::function<void()> task;
    if (TakeTaskLocked(index, &task)) {
      RunTask(std::move(task), /*on_worker=*/true);
      continue;
    }
    if (stop_) break;
    // Re-acquires mu_ (rank kExecPool) before returning; the worker
    // holds nothing else, so the park cannot stall another lock.
    work_cv_.wait(mu_);
  }
  mu_.unlock();
}

void ThreadPool::Submit(std::function<void()> task) {
  // Both degraded paths below run `task` inline on the submitter, so
  // a Submit under any lock would execute arbitrary code under it.
  util::lock_debug::AssertNoLocksHeld("ThreadPool::Submit");
  if (!parallel()) {
    task();
    c_tasks_.Inc();
    total_tasks_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  {
    util::UniqueLock lock(mu_);
    if (global_.size() < config_.queue_capacity) {
      global_.push_back(std::move(task));
      ++outstanding_;
      lock.unlock();
      work_cv_.notify_one();
      return;
    }
  }
  // Queue full: backpressure by running on the submitter. Correctness
  // is unaffected — the task just runs here instead of there.
  task();
  c_tasks_.Inc();
  total_tasks_.fetch_add(1, std::memory_order_relaxed);
}

void ThreadPool::Wait() {
  // Unbounded drain: entering with a lock held would hold it for the
  // whole queue (and for every task this thread helps run).
  util::lock_debug::AssertNoLocksHeld("ThreadPool::Wait");
  if (!parallel()) return;
  mu_.lock();
  for (;;) {
    std::function<void()> task;
    if (TakeTaskLocked(kHelper, &task)) {
      RunTask(std::move(task), /*on_worker=*/false);
      continue;
    }
    if (outstanding_ == 0) break;
    // Re-acquires mu_ (rank kExecPool) before returning — idle_cv_
    // pairs with the same pool mutex as work_cv_ (lock_ranks.h).
    idle_cv_.wait(mu_);
  }
  mu_.unlock();
  const double total =
      static_cast<double>(total_tasks_.load(std::memory_order_relaxed));
  if (total > 0) {
    g_utilization_.Set(
        static_cast<double>(worker_tasks_.load(std::memory_order_relaxed)) /
        total);
  }
}

void ThreadPool::ParallelFor(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  util::lock_debug::AssertNoLocksHeld("ThreadPool::ParallelFor");
  if (n == 0) return;
  if (grain == 0) grain = 1;
  if (!parallel()) {
    // Same chunking as the parallel path so exec.tasks_executed is
    // identical for every thread count.
    for (std::size_t begin = 0; begin < n; begin += grain) {
      const std::size_t end = begin < n - grain ? begin + grain : n;
      body(begin, end);
      c_tasks_.Inc();
      total_tasks_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  {
    const util::MutexLock guard(mu_);
    for (std::size_t begin = 0; begin < n; begin += grain) {
      const std::size_t end = begin < n - grain ? begin + grain : n;
      // Chunks go straight into worker deques round-robin; the global
      // queue stays free for Submit() traffic.
      workers_[next_worker_]->local.push_back(
          [&body, begin, end] { body(begin, end); });
      next_worker_ = (next_worker_ + 1) % workers_.size();
      ++outstanding_;
    }
  }
  work_cv_.notify_all();
  Wait();
}

void ParallelFor(ThreadPool* pool, std::size_t n, std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)>& body) {
  if (pool != nullptr) {
    pool->ParallelFor(n, grain, body);
    return;
  }
  if (n > 0) body(0, n);
}

}  // namespace vegvisir::exec
