#include "exec/verifier.h"

#include <utility>

#include "util/lock_ranks.h"

namespace vegvisir::exec {

BatchVerifier::BatchVerifier(ThreadPool* pool, telemetry::Telemetry* sink,
                             std::size_t capacity)
    : pool_(pool), capacity_(capacity < 1 ? 1 : capacity) {
  if (sink != nullptr) {
    c_batches_ = sink->metrics.GetCounter("exec.batches");
    c_batch_jobs_ = sink->metrics.GetCounter("exec.batch_jobs");
    c_hits_ = sink->metrics.GetCounter("exec.presig_hits");
    c_misses_ = sink->metrics.GetCounter("exec.presig_misses");
    h_batch_size_ = sink->metrics.GetHistogram(
        "exec.batch_size", telemetry::PowerOfTwoBounds(10));
  }
}

BatchVerifier::~BatchVerifier() {
  mu_.lock();
  // Re-acquires mu_ (rank kExecVerifier) before returning; the
  // destructor holds nothing else while it drains.
  while (in_flight_ != 0) done_cv_.wait(mu_);
  mu_.unlock();
}

void BatchVerifier::Enqueue(std::vector<VerifyJob> jobs) {
  // Null-pool/serial fallback runs jobs inline below, and the
  // parallel path calls ThreadPool::Submit — both forbid held locks.
  util::lock_debug::AssertNoLocksHeld("BatchVerifier::Enqueue");
  struct Pending {
    VerifyJob job;
    std::uint64_t gen;
  };
  std::vector<Pending> fresh;
  {
    const util::MutexLock guard(mu_);
    for (VerifyJob& job : jobs) {
      const auto it = entries_.find(job.id);
      if (it != entries_.end() && it->second.key == job.key) continue;
      if (it == entries_.end()) {
        while (entries_.size() >= capacity_ && !fifo_.empty()) {
          // fifo_ can hold ids whose entry was already dropped by
          // Forget; skip those.
          entries_.erase(fifo_.front());
          fifo_.pop_front();
        }
        fifo_.push_back(job.id);
      }
      Entry& entry = entries_[job.id];
      entry.key = job.key;
      entry.gen = ++gen_counter_;
      entry.done = false;
      entry.valid = false;
      fresh.push_back(Pending{std::move(job), entry.gen});
    }
    if (fresh.empty()) return;
    in_flight_ += fresh.size();
    c_batches_.Inc();
    c_batch_jobs_.Inc(fresh.size());
    h_batch_size_.Observe(static_cast<double>(fresh.size()));
  }
  for (Pending& pending : fresh) {
    auto run = [this, job = std::move(pending.job), gen = pending.gen] {
      const bool valid = crypto::Verify(job.key, job.message, job.signature);
      Record(job.id, gen, valid);
    };
    if (pool_ != nullptr) {
      pool_->Submit(std::move(run));
    } else {
      run();
    }
  }
}

void BatchVerifier::Record(const ContentId& id, std::uint64_t gen,
                           bool valid) {
  const util::MutexLock guard(mu_);
  const auto it = entries_.find(id);
  if (it != entries_.end() && it->second.gen == gen) {
    it->second.done = true;
    it->second.valid = valid;
  }
  --in_flight_;
  done_cv_.notify_all();
}

std::optional<bool> BatchVerifier::Lookup(const ContentId& id,
                                          const crypto::PublicKey& key) {
  // Documented-blocking entry point: the wait below is bounded by a
  // batch drain but unbounded in wall time, so no caller may arrive
  // holding a mutex (the satellite regression in lock_rank_test.cpp
  // pins this).
  util::lock_debug::AssertNoLocksHeld("BatchVerifier::Lookup");
  mu_.lock();
  const auto it = entries_.find(id);
  if (it == entries_.end() || !(it->second.key == key)) {
    c_misses_.Inc();
    mu_.unlock();
    return std::nullopt;
  }
  c_hits_.Inc();
  // Pending entry: the job is inline (already done), queued, or on a
  // worker — all guarantee progress, so this wait is bounded by one
  // batch drain. (Record never erases, so `it` stays valid across the
  // wait; only Forget/eviction erase, and both run on the serial
  // owner thread that is blocked right here.)
  while (!it->second.done) done_cv_.wait(mu_);
  const bool valid = it->second.valid;
  mu_.unlock();
  return valid;
}

bool BatchVerifier::Cached(const ContentId& id,
                           const crypto::PublicKey& key) const {
  const util::MutexLock guard(mu_);
  const auto it = entries_.find(id);
  return it != entries_.end() && it->second.key == key;
}

void BatchVerifier::Forget(const ContentId& id) {
  const util::MutexLock guard(mu_);
  entries_.erase(id);
}

std::size_t BatchVerifier::SizeForTest() const {
  const util::MutexLock guard(mu_);
  return entries_.size();
}

}  // namespace vegvisir::exec
