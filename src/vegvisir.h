// Umbrella header: the Vegvisir public API in one include.
//
//   #include "vegvisir.h"
//
// Pulls in the pieces a typical application touches — node facade,
// genesis construction, CRDT types and values, access-control
// policies, reconciliation sessions, witness proofs, persistence and
// the simulation harness. Individual module headers remain available
// for finer-grained includes.
#pragma once

#include "chain/audit.h"       // post-hoc review + provenance
#include "chain/dot.h"         // Graphviz export, tx causality queries
#include "chain/genesis.h"     // GenesisBuilder, owner certificates
#include "chain/proof.h"       // self-contained witness proofs
#include "chain/store.h"       // DAG persistence
#include "crdt/counters.h"     // G-Counter, PN-Counter
#include "crdt/map.h"          // LWW-Map
#include "crdt/registers.h"    // LWW-Register, MV-Register
#include "crdt/rga.h"          // RGA ordered sequence
#include "crdt/sets.h"         // G-Set, 2P-Set, OR-Set
#include "crypto/aead.h"       // ChaCha20-Poly1305 payload sealing
#include "crypto/ed25519.h"    // keys and signatures
#include "csm/acl.h"           // role-based operation policies
#include "node/checkpoint.h"   // whole-node save/restore
#include "node/cluster.h"      // simulated deployments
#include "node/gossip.h"       // opportunistic gossip engine
#include "node/node.h"         // the Node facade
#include "recon/session.h"     // reconciliation protocol
#include "support/superpeer.h" // support blockchain, storage manager
#include "telemetry/export.h"  // Prometheus / JSON exporters
#include "telemetry/telemetry.h" // metrics registry + sim-time tracer
