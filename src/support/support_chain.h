// The support blockchain (paper §IV-I, Fig. 4).
//
// Storage-constrained IoT devices offload old Vegvisir blocks to a
// traditional *linear* blockchain operated by higher-powered
// superpeers. Each support block's body is a batch of Vegvisir
// blocks; batches must be appended in an order consistent with the
// Vegvisir DAG's topological order (a block may only be archived
// after all of its parents). Once archived, a device may evict the
// block body locally and re-fetch it from a superpeer on demand.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "chain/block.h"
#include "chain/dag.h"
#include "chain/types.h"
#include "util/status.h"

namespace vegvisir::support {

struct SupportBlock {
  std::uint64_t index = 0;
  chain::BlockHash prev{};              // hash of the previous support block
  std::uint64_t timestamp_ms = 0;
  std::vector<chain::BlockHash> payload;  // archived Vegvisir block hashes
  chain::BlockHash hash{};              // over all of the above + bodies
};

class SupportChain {
 public:
  // `vegvisir_genesis` identifies the DAG this chain archives; the
  // genesis block counts as implicitly archived (every device has it).
  explicit SupportChain(chain::BlockHash vegvisir_genesis);

  // Archives a batch of Vegvisir blocks as one support block.
  // Fails (kFailedPrecondition) if any block's parent is neither the
  // genesis nor already archived — that would break the topological
  // order the paper requires — or if a block is already archived.
  Status Archive(const std::vector<chain::Block>& batch,
                 std::uint64_t timestamp_ms);

  bool IsArchived(const chain::BlockHash& h) const;

  // Body retrieval for devices that evicted a block.
  const chain::Block* Fetch(const chain::BlockHash& h) const;

  std::uint64_t Length() const { return blocks_.size(); }
  std::size_t ArchivedCount() const { return bodies_.size(); }
  std::size_t ArchivedBytes() const { return archived_bytes_; }
  const std::vector<SupportBlock>& blocks() const { return blocks_; }

  // Recomputes every link and hash; false if tampered.
  bool VerifyChain() const;

  // ---- superpeer replication (paper §IV-I: the support blockchain
  // "operates between the superpeers as well as in the cloud") ------
  struct SyncResult {
    bool adopted = false;           // we switched to the peer's chain
    std::size_t new_blocks = 0;     // support blocks gained
    // Vegvisir blocks whose archival fell off the losing fork; they
    // are still in every superpeer's DAG and get re-archived by the
    // next Superpeer::SyncToSupport, so no data is ever lost. Sorted
    // by hash — bodies_ is unordered, and every superpeer must report
    // (and re-archive) the same loss in the same order.
    std::vector<chain::BlockHash> dearchived;
  };

  // Longest-chain replication between superpeers, with a
  // deterministic tie-break (smaller tip hash wins), so all
  // superpeers converge on one linear chain. Refuses chains that do
  // not verify or belong to a different Vegvisir genesis.
  SyncResult SyncFrom(const SupportChain& peer);

 private:
  chain::BlockHash ComputeHash(const SupportBlock& sb) const;

  chain::BlockHash vegvisir_genesis_;
  std::vector<SupportBlock> blocks_;
  std::unordered_map<chain::BlockHash, chain::Block, chain::BlockHashHasher>
      bodies_;
  std::size_t archived_bytes_ = 0;
};

}  // namespace vegvisir::support
