#include "support/superpeer.h"

namespace vegvisir::support {

std::size_t Superpeer::SyncToSupport(std::uint64_t timestamp_ms) {
  const chain::Dag& dag = node_->dag();
  std::size_t archived = 0;
  std::vector<chain::Block> batch;
  // Topological order guarantees parents are archived (or batched)
  // before children, which Archive() requires.
  for (const chain::BlockHash& h : dag.TopologicalOrder()) {
    if (h == dag.genesis_hash() || chain_->IsArchived(h)) continue;
    const chain::Block* block = dag.Find(h);
    if (block == nullptr) continue;  // superpeer itself evicted it? skip
    batch.push_back(*block);
    if (batch.size() >= batch_size_) {
      if (chain_->Archive(batch, timestamp_ms).ok()) archived += batch.size();
      batch.clear();
    }
  }
  if (!batch.empty() && chain_->Archive(batch, timestamp_ms).ok()) {
    archived += batch.size();
  }
  c_blocks_archived_.Inc(archived);
  return archived;
}

std::size_t StorageManager::Enforce(const SupportChain* support) {
  if (support == nullptr) return 0;
  chain::Dag* dag = node_->mutable_dag();
  std::size_t evicted = 0;
  if (dag->StoredBytes() <= budget_bytes_) return 0;
  // "would only offload their oldest blocks" (paper §IV-I).
  for (const chain::BlockHash& h : dag->StoredOldestFirst()) {
    if (dag->StoredBytes() <= budget_bytes_) break;
    if (!support->IsArchived(h)) continue;  // never drop unarchived data
    const chain::Block* block = dag->Find(h);
    if (block == nullptr) continue;
    const std::size_t size = block->EncodedSize();
    if (dag->Evict(h).ok()) {
      evicted += 1;
      c_evictions_.Inc();
      c_bytes_reclaimed_.Inc(size);
    }
  }
  g_stored_bytes_.Set(static_cast<double>(dag->StoredBytes()));
  return evicted;
}

Status StorageManager::Refetch(const chain::BlockHash& h,
                               const SupportChain& support) {
  const chain::Block* block = support.Fetch(h);
  if (block == nullptr) {
    return NotFoundError("block not on support chain");
  }
  VEGVISIR_RETURN_IF_ERROR(node_->mutable_dag()->Restore(*block));
  c_refetches_.Inc();
  g_stored_bytes_.Set(static_cast<double>(node_->dag().StoredBytes()));
  return Status::Ok();
}

StorageManagerStats StorageManager::stats() const {
  StorageManagerStats s;
  s.evictions = c_evictions_.value();
  s.bytes_reclaimed = c_bytes_reclaimed_.value();
  s.refetches = c_refetches_.value();
  return s;
}

}  // namespace vegvisir::support
