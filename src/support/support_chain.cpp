#include "support/support_chain.h"

#include <algorithm>
#include <cstring>

#include "crypto/sha256.h"
#include "serial/codec.h"

namespace vegvisir::support {

SupportChain::SupportChain(chain::BlockHash vegvisir_genesis)
    : vegvisir_genesis_(vegvisir_genesis) {}

Status SupportChain::Archive(const std::vector<chain::Block>& batch,
                             std::uint64_t timestamp_ms) {
  // Validate the whole batch before mutating anything.
  std::set<chain::BlockHash> in_batch;
  for (const chain::Block& b : batch) in_batch.insert(b.hash());
  for (const chain::Block& b : batch) {
    if (IsArchived(b.hash()) || b.hash() == vegvisir_genesis_) {
      return AlreadyExistsError("block " + chain::HashShort(b.hash()) +
                                " already archived");
    }
    for (const chain::BlockHash& p : b.header().parents) {
      if (p == vegvisir_genesis_ || IsArchived(p) || in_batch.count(p) > 0) {
        continue;
      }
      return FailedPreconditionError(
          "archiving " + chain::HashShort(b.hash()) + " before its parent " +
          chain::HashShort(p) + " breaks topological order");
    }
  }
  // Within the batch, parents must come first too.
  std::set<chain::BlockHash> seen;
  for (const chain::Block& b : batch) {
    for (const chain::BlockHash& p : b.header().parents) {
      if (in_batch.count(p) > 0 && seen.count(p) == 0) {
        return FailedPreconditionError("batch not in topological order");
      }
    }
    seen.insert(b.hash());
  }

  SupportBlock sb;
  sb.index = blocks_.size();
  sb.prev = blocks_.empty() ? vegvisir_genesis_ : blocks_.back().hash;
  sb.timestamp_ms = timestamp_ms;
  for (const chain::Block& b : batch) {
    sb.payload.push_back(b.hash());
    archived_bytes_ += b.EncodedSize();
    bodies_.emplace(b.hash(), b);
  }
  sb.hash = ComputeHash(sb);
  blocks_.push_back(std::move(sb));
  return Status::Ok();
}

bool SupportChain::IsArchived(const chain::BlockHash& h) const {
  return bodies_.count(h) > 0;
}

const chain::Block* SupportChain::Fetch(const chain::BlockHash& h) const {
  const auto it = bodies_.find(h);
  return it == bodies_.end() ? nullptr : &it->second;
}

chain::BlockHash SupportChain::ComputeHash(const SupportBlock& sb) const {
  serial::Writer w;
  w.WriteString("vegvisir-support-v1");
  w.WriteU64(sb.index);
  w.WriteFixed(sb.prev);
  w.WriteU64(sb.timestamp_ms);
  w.WriteVarint(sb.payload.size());
  for (const chain::BlockHash& h : sb.payload) {
    w.WriteFixed(h);
    const auto it = bodies_.find(h);
    if (it != bodies_.end()) w.WriteBytes(it->second.Serialize());
  }
  const crypto::Sha256Digest d = crypto::Sha256::Hash(w.buffer());
  chain::BlockHash out;
  std::memcpy(out.data(), d.data(), out.size());
  return out;
}

SupportChain::SyncResult SupportChain::SyncFrom(const SupportChain& peer) {
  SyncResult result;
  if (!(peer.vegvisir_genesis_ == vegvisir_genesis_)) return result;
  if (!peer.VerifyChain()) return result;  // never adopt a broken chain

  // Longest chain wins; equal-length forks break ties on the smaller
  // tip hash so every superpeer picks the same winner.
  const bool peer_longer = peer.blocks_.size() > blocks_.size();
  const bool tie_peer_wins =
      peer.blocks_.size() == blocks_.size() && !blocks_.empty() &&
      !(peer.blocks_.back().hash == blocks_.back().hash) &&
      peer.blocks_.back().hash < blocks_.back().hash;
  if (!peer_longer && !tie_peer_wins) return result;

  // Anything we archived that the winner did not is de-archived.
  // bodies_ iterates in bucket order; sort so the report (and the
  // re-archival it triggers) is identical on every superpeer.
  for (const auto& [h, body] : bodies_) {
    if (!peer.IsArchived(h)) result.dearchived.push_back(h);
  }
  std::sort(result.dearchived.begin(), result.dearchived.end());
  result.new_blocks = peer.blocks_.size() -
                      [&] {
                        // Shared prefix length.
                        std::size_t i = 0;
                        while (i < blocks_.size() && i < peer.blocks_.size() &&
                               blocks_[i].hash == peer.blocks_[i].hash) {
                          ++i;
                        }
                        return i;
                      }();
  blocks_ = peer.blocks_;
  bodies_ = peer.bodies_;
  archived_bytes_ = peer.archived_bytes_;
  result.adopted = true;
  return result;
}

bool SupportChain::VerifyChain() const {
  chain::BlockHash prev = vegvisir_genesis_;
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    const SupportBlock& sb = blocks_[i];
    if (sb.index != i || !(sb.prev == prev)) return false;
    if (!(ComputeHash(sb) == sb.hash)) return false;
    prev = sb.hash;
  }
  return true;
}

}  // namespace vegvisir::support
