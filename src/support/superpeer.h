// Superpeers and device-side storage management (paper §IV-I, Fig. 5).
//
// A superpeer is a higher-powered node (the "trucks" in Fig. 5) that
// participates in the Vegvisir DAG like any member and additionally
// copies new blocks onto the support blockchain, in topological
// order. A StorageManager enforces a byte budget on a constrained
// device: when the local DAG outgrows the budget, it evicts the
// oldest block bodies — but only ones already archived, so nothing is
// ever lost.
#pragma once

#include <cstddef>

#include "node/node.h"
#include "support/support_chain.h"

namespace vegvisir::support {

class Superpeer {
 public:
  // `node` is the superpeer's own Vegvisir node (full replica);
  // `chain` is the shared support blockchain (cloud-backed).
  Superpeer(node::Node* node, SupportChain* chain,
            std::size_t batch_size = 16)
      : node_(node),
        chain_(chain),
        batch_size_(batch_size),
        c_blocks_archived_(node->telemetry()->metrics.GetCounter(
            "support.blocks_archived")) {}

  // Archives every not-yet-archived block in the node's DAG, in
  // topological order, batching `batch_size` blocks per support
  // block. Returns the number of Vegvisir blocks archived.
  std::size_t SyncToSupport(std::uint64_t timestamp_ms);

 private:
  node::Node* node_;
  SupportChain* chain_;
  std::size_t batch_size_;
  telemetry::Counter c_blocks_archived_;
};

// Storage-offload counters, assembled on demand from the node's
// telemetry registry (support.*).
struct StorageManagerStats {
  std::uint64_t evictions = 0;
  std::uint64_t bytes_reclaimed = 0;
  std::uint64_t refetches = 0;
};

class StorageManager {
 public:
  // `budget_bytes` is the device's storage cap for block bodies.
  StorageManager(node::Node* node, std::size_t budget_bytes)
      : node_(node),
        budget_bytes_(budget_bytes),
        c_evictions_(
            node->telemetry()->metrics.GetCounter("support.evictions")),
        c_bytes_reclaimed_(
            node->telemetry()->metrics.GetCounter("support.bytes_reclaimed")),
        c_refetches_(
            node->telemetry()->metrics.GetCounter("support.refetches")),
        g_stored_bytes_(
            node->telemetry()->metrics.GetGauge("support.stored_bytes")) {}

  // Evicts oldest archived block bodies until the DAG fits the
  // budget (or nothing more can be evicted). `support` may be null
  // (device out of superpeer range): then nothing is evicted, because
  // un-archived blocks must never be dropped.
  std::size_t Enforce(const SupportChain* support);

  // Brings an evicted block's body back from the support chain.
  Status Refetch(const chain::BlockHash& h, const SupportChain& support);

  StorageManagerStats stats() const;
  std::size_t budget_bytes() const { return budget_bytes_; }

 private:
  node::Node* node_;
  std::size_t budget_bytes_;
  telemetry::Counter c_evictions_;
  telemetry::Counter c_bytes_reclaimed_;
  telemetry::Counter c_refetches_;
  telemetry::Gauge g_stored_bytes_;
};

}  // namespace vegvisir::support
