// Reconciliation v2 (DESIGN.md §16): the IBLT codec, the range-digest
// delta estimator, the three negotiation messages, and the kSetDiff
// session ladder end to end — including the decode-failure escalation
// and the level-escalation fallback, which must reconverge exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "chain/genesis.h"
#include "crypto/drbg.h"
#include "node/node.h"
#include "recon/messages.h"
#include "recon/session.h"
#include "serial/codec.h"
#include "serial/limits.h"
#include "setdiff/digest.h"
#include "setdiff/iblt.h"
#include "util/rng.h"

namespace vegvisir::setdiff {
namespace {

using chain::BlockHash;

BlockHash HashFromRng(Rng* rng) {
  BlockHash h;
  for (std::size_t i = 0; i < h.size(); i += 8) {
    const std::uint64_t v = rng->NextU64();
    for (std::size_t j = 0; j < 8; ++j) {
      h[i + j] = static_cast<std::uint8_t>(v >> (8 * j));
    }
  }
  return h;
}

// ------------------------------------------------------------- IBLT

TEST(IbltTest, InsertEraseCancelsToZero) {
  Rng rng(1);
  Iblt t(32, SeedForCells(32));
  std::vector<BlockHash> keys;
  for (int i = 0; i < 10; ++i) keys.push_back(HashFromRng(&rng));
  for (const auto& k : keys) t.Insert(k);
  for (const auto& k : keys) t.Erase(k);
  for (const auto& cell : t.cells()) EXPECT_TRUE(cell.IsZero());
}

TEST(IbltTest, SubtractRequiresMatchingGeometry) {
  Iblt a(16, 1);
  Iblt wrong_cells(32, 1);
  Iblt wrong_seed(16, 2);
  EXPECT_FALSE(a.Subtract(wrong_cells).ok());
  EXPECT_FALSE(a.Subtract(wrong_seed).ok());
  Iblt ok(16, 1);
  EXPECT_TRUE(a.Subtract(ok).ok());
}

// The core property: random symmetric differences within the sizing
// margin peel back exactly — every differing key on the correct side,
// both outputs sorted, nothing invented.
TEST(IbltTest, RandomSymmetricDifferencesDecodeExactly) {
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t shared = rng.NextBelow(200);
    const std::size_t a_only_n = rng.NextBelow(20);
    const std::size_t b_only_n = rng.NextBelow(20);
    const std::size_t cells =
        CellsForDelta(a_only_n + b_only_n, serial::limits::kMaxIbltCells);
    const std::uint64_t seed = SeedForCells(cells);

    Iblt a(cells, seed);
    Iblt b(cells, seed);
    std::vector<BlockHash> a_only, b_only;
    for (std::size_t i = 0; i < shared; ++i) {
      const BlockHash h = HashFromRng(&rng);
      a.Insert(h);
      b.Insert(h);
    }
    for (std::size_t i = 0; i < a_only_n; ++i) {
      a_only.push_back(HashFromRng(&rng));
      a.Insert(a_only.back());
    }
    for (std::size_t i = 0; i < b_only_n; ++i) {
      b_only.push_back(HashFromRng(&rng));
      b.Insert(b_only.back());
    }

    // Mirror the session ladder: peel at the estimated size, and on
    // the (rare, legitimate) failure retry once at the escalated
    // size, which must always succeed for in-margin deltas.
    std::vector<BlockHash> plus, minus;
    Iblt diff = a;
    ASSERT_TRUE(diff.Subtract(b).ok());
    if (!diff.Peel(&plus, &minus)) {
      const std::size_t big =
          EscalatedCells(cells, serial::limits::kMaxIbltCells);
      const std::uint64_t big_seed = SeedForCells(big);
      // Rebuild at the escalated geometry. Shared keys cancel under
      // subtraction, so inserting only the difference is equivalent.
      Iblt a2(big, big_seed), b2(big, big_seed);
      for (const auto& k : a_only) a2.Insert(k);
      for (const auto& k : b_only) b2.Insert(k);
      ASSERT_TRUE(a2.Subtract(b2).ok());
      ASSERT_TRUE(a2.Peel(&plus, &minus))
          << "trial " << trial << ": delta " << (a_only_n + b_only_n)
          << " failed to peel even at " << big << " cells";
    }
    std::sort(a_only.begin(), a_only.end());
    std::sort(b_only.begin(), b_only.end());
    EXPECT_EQ(plus, a_only) << "trial " << trial;
    EXPECT_EQ(minus, b_only) << "trial " << trial;
    EXPECT_TRUE(std::is_sorted(plus.begin(), plus.end()));
    EXPECT_TRUE(std::is_sorted(minus.begin(), minus.end()));
  }
}

// Oversized deltas must fail loudly — Peel returns false with empty
// outputs — never silently return a subset.
TEST(IbltTest, OversizedDeltaFailsLoudly) {
  Rng rng(7);
  const std::size_t cells = 16;
  Iblt a(cells, SeedForCells(cells));
  Iblt b(cells, SeedForCells(cells));
  // 64 differing keys cannot fit a 16-cell table (threshold ~cells/1.3).
  for (int i = 0; i < 64; ++i) a.Insert(HashFromRng(&rng));
  ASSERT_TRUE(a.Subtract(b).ok());
  std::vector<BlockHash> plus, minus;
  EXPECT_FALSE(a.Peel(&plus, &minus));
  EXPECT_TRUE(plus.empty());
  EXPECT_TRUE(minus.empty());
}

TEST(IbltTest, EncodeDecodeRoundTripsByteExactly) {
  Rng rng(9);
  Iblt t(24, SeedForCells(24));
  for (int i = 0; i < 12; ++i) t.Insert(HashFromRng(&rng));
  serial::Writer w;
  t.Encode(&w);
  const Bytes raw = w.Take();
  serial::Reader r(raw);
  auto back = Iblt::Decode(&r, t.seed());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->cell_count(), t.cell_count());
  EXPECT_TRUE(back->cells() == t.cells());
  serial::Writer w2;
  back->Encode(&w2);
  EXPECT_EQ(w2.Take(), raw);
}

TEST(IbltTest, SizingPolicy) {
  // 2x margin with a floor of 16, clamped to the cap.
  EXPECT_EQ(CellsForDelta(0, 1u << 16), 16u);
  EXPECT_EQ(CellsForDelta(4, 1u << 16), 16u);
  EXPECT_EQ(CellsForDelta(100, 1u << 16), 208u);
  EXPECT_EQ(CellsForDelta(1u << 20, 1u << 16), std::size_t{1} << 16);
  EXPECT_EQ(EscalatedCells(16, 1u << 16), 64u);
  EXPECT_EQ(EscalatedCells(100, 128), 128u);
  // Escalation re-seeds the hash family.
  EXPECT_NE(SeedForCells(16), SeedForCells(64));
}

// Partitioned subtables: a key's three cells are always distinct
// (each position draws from its own third of the table). Without
// this, a key self-colliding on all three positions leaves a count-3
// cell no table size can peel. Pinned via the public surface: a
// single-key difference must peel at every table size.
TEST(IbltTest, SingleKeyAlwaysPeelsAtAnySize) {
  Rng rng(31);
  for (const std::size_t cells : {3u, 4u, 5u, 7u, 16u, 33u, 100u}) {
    for (int trial = 0; trial < 200; ++trial) {
      Iblt a(cells, SeedForCells(cells) + trial);
      const BlockHash h = HashFromRng(&rng);
      a.Insert(h);
      Iblt b(cells, a.seed());
      ASSERT_TRUE(a.Subtract(b).ok());
      std::vector<BlockHash> plus, minus;
      ASSERT_TRUE(a.Peel(&plus, &minus))
          << cells << " cells, trial " << trial;
      ASSERT_EQ(plus.size(), 1u);
      EXPECT_EQ(plus[0], h);
      EXPECT_TRUE(minus.empty());
    }
  }
}

// ----------------------------------------------------- range digest

TEST(RangeDigestTest, IdenticalSetsEstimateZero) {
  Rng rng(11);
  RangeDigest a, b;
  for (int i = 0; i < 100; ++i) {
    const BlockHash h = HashFromRng(&rng);
    a.Insert(h);
    b.Insert(h);
  }
  auto est = RangeDigest::EstimateDelta(a, b);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(*est, 0u);
}

// The nested shape reconciliation actually sees (one side strictly
// ahead): per-range count mismatches sum to the exact delta.
TEST(RangeDigestTest, NestedSetsEstimateExactDelta) {
  Rng rng(13);
  RangeDigest behind, ahead;
  for (int i = 0; i < 128; ++i) {
    const BlockHash h = HashFromRng(&rng);
    behind.Insert(h);
    ahead.Insert(h);
  }
  for (int i = 0; i < 37; ++i) ahead.Insert(HashFromRng(&rng));
  auto est = RangeDigest::EstimateDelta(behind, ahead);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(*est, 37u);
}

TEST(RangeDigestTest, EqualCountsWithDifferentFoldsCountAsSwap) {
  // Force two different keys into the same range (same leading byte):
  // counts match, folds differ, so the estimate must report >= 2.
  // Same leading byte (same range), different bytes inside the fold
  // lane (bytes 8-15), so the folds must disagree.
  BlockHash x{}, y{};
  x.fill(0x00);
  y.fill(0x00);
  x[9] = 1;
  y[9] = 2;
  RangeDigest a, b;
  a.Insert(x);
  b.Insert(y);
  auto est = RangeDigest::EstimateDelta(a, b);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(*est, 2u);
}

TEST(RangeDigestTest, ShapeMismatchIsLoud) {
  // A digest with a non-standard range count can only arrive over the
  // wire (protocol evolution); estimating against it must error, not
  // fabricate a delta.
  serial::Writer w;
  w.WriteVarint(32);
  for (int i = 0; i < 32; ++i) {
    w.WriteVarint(0);
    w.WriteU64(0);
  }
  const Bytes raw = w.Take();
  serial::Reader r(raw);
  auto narrow = RangeDigest::Decode(&r);
  ASSERT_TRUE(narrow.ok());
  EXPECT_FALSE(RangeDigest::EstimateDelta(RangeDigest{}, *narrow).ok());
}

TEST(RangeDigestTest, EncodeDecodeRoundTripsByteExactly) {
  Rng rng(17);
  RangeDigest d;
  for (int i = 0; i < 40; ++i) d.Insert(HashFromRng(&rng));
  serial::Writer w;
  d.Encode(&w);
  const Bytes raw = w.Take();
  serial::Reader r(raw);
  auto back = RangeDigest::Decode(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(*back == d);
  serial::Writer w2;
  back->Encode(&w2);
  EXPECT_EQ(w2.Take(), raw);
}

// ------------------------------------------------- wire messages

TEST(DiffMessagesTest, ProbeRoundTripsByteExactly) {
  Rng rng(19);
  recon::DiffProbe probe;
  probe.genesis.fill(0x31);
  probe.frontier_digest.fill(0x32);
  probe.requested_cells = 256;
  for (int i = 0; i < 25; ++i) probe.digest.Insert(HashFromRng(&rng));
  const Bytes raw = recon::EncodeMessage(probe);
  ASSERT_EQ(*recon::PeekType(raw), recon::MessageType::kDiffProbe);
  recon::DiffProbe out;
  ASSERT_TRUE(recon::DecodeMessage(raw, &out).ok());
  EXPECT_EQ(out.genesis, probe.genesis);
  EXPECT_EQ(out.frontier_digest, probe.frontier_digest);
  EXPECT_EQ(out.requested_cells, 256u);
  EXPECT_TRUE(out.digest == probe.digest);
  EXPECT_EQ(recon::EncodeMessage(out), raw);
}

TEST(DiffMessagesTest, SketchRoundTripsByteExactly) {
  Rng rng(23);
  recon::DiffSketch sketch;
  sketch.genesis.fill(0x33);
  sketch.seed = SeedForCells(48);
  sketch.set_size = 9;
  sketch.estimated_delta = 3;
  sketch.frontier = {HashFromRng(&rng), HashFromRng(&rng)};
  sketch.sketch = Iblt(48, sketch.seed);
  for (int i = 0; i < 9; ++i) sketch.sketch.Insert(HashFromRng(&rng));
  const Bytes raw = recon::EncodeMessage(sketch);
  ASSERT_EQ(*recon::PeekType(raw), recon::MessageType::kDiffSketch);
  recon::DiffSketch out;
  ASSERT_TRUE(recon::DecodeMessage(raw, &out).ok());
  EXPECT_EQ(out.seed, sketch.seed);
  EXPECT_EQ(out.set_size, 9u);
  EXPECT_EQ(out.estimated_delta, 3u);
  EXPECT_EQ(out.frontier, sketch.frontier);
  EXPECT_TRUE(out.sketch.cells() == sketch.sketch.cells());
  EXPECT_EQ(recon::EncodeMessage(out), raw);
}

TEST(DiffMessagesTest, ResultRoundTripsByteExactly) {
  Rng rng(29);
  recon::DiffResult result;
  result.decoded = true;
  result.peer_missing = {HashFromRng(&rng), HashFromRng(&rng),
                         HashFromRng(&rng)};
  const Bytes raw = recon::EncodeMessage(result);
  ASSERT_EQ(*recon::PeekType(raw), recon::MessageType::kDiffResult);
  recon::DiffResult out;
  ASSERT_TRUE(recon::DecodeMessage(raw, &out).ok());
  EXPECT_TRUE(out.decoded);
  EXPECT_EQ(out.peer_missing, result.peer_missing);
  EXPECT_EQ(recon::EncodeMessage(out), raw);
}

// --------------------------------------------------- session ladder

crypto::KeyPair TestKeys(std::uint64_t seed) {
  crypto::Drbg drbg(seed);
  return crypto::KeyPair::Generate(drbg);
}

struct Rig {
  crypto::KeyPair owner_keys = TestKeys(1);
  chain::Block genesis = chain::GenesisBuilder("setdiff-chain")
                             .WithTimestamp(100)
                             .Build("owner", owner_keys);

  std::unique_ptr<node::Node> MakeNode() {
    node::NodeConfig cfg;
    cfg.user_id = "owner";
    auto n = std::make_unique<node::Node>(cfg, genesis, owner_keys);
    n->SetTime(1'000'000);
    return n;
  }

  // Gives `ahead` a history `shared + delta` blocks long, of which
  // `behind` holds the first `shared`.
  void Diverge(node::Node* behind, node::Node* ahead, int shared,
               int delta) {
    for (int i = 0; i < shared; ++i) {
      const auto h = ahead->AddWitnessBlock();
      ASSERT_TRUE(h.ok());
      ASSERT_EQ(behind->OfferBlock(*ahead->dag().Find(*h)),
                chain::BlockVerdict::kValid);
    }
    for (int i = 0; i < delta; ++i) {
      ASSERT_TRUE(ahead->AddWitnessBlock().ok());
    }
  }
};

bool SameBlocks(const node::Node& a, const node::Node& b) {
  const auto ha = a.dag().TopologicalOrder();
  const auto hb = b.dag().TopologicalOrder();
  return std::set<BlockHash>(ha.begin(), ha.end()) ==
         std::set<BlockHash>(hb.begin(), hb.end());
}

TEST(SetdiffSessionTest, DeepHistorySmallDeltaConverges) {
  Rig rig;
  auto behind = rig.MakeNode();
  auto ahead = rig.MakeNode();
  rig.Diverge(behind.get(), ahead.get(), 300, 5);
  recon::ReconConfig cfg;
  cfg.mode = recon::ReconConfig::Mode::kSetDiff;
  recon::SessionStats stats;
  ASSERT_EQ(recon::RunLocalSession(behind.get(), ahead.get(), cfg, &stats),
            recon::SessionState::kDone);
  EXPECT_TRUE(SameBlocks(*behind, *ahead));
  EXPECT_EQ(stats.blocks_received, 5u);
  EXPECT_EQ(
      behind->telemetry()->metrics.CounterValue("setdiff.decode_success"), 1u);
}

TEST(SetdiffSessionTest, IdenticalReplicasFinishOnEmptySketch) {
  Rig rig;
  auto a = rig.MakeNode();
  auto b = rig.MakeNode();
  rig.Diverge(a.get(), b.get(), 20, 0);
  recon::ReconConfig cfg;
  cfg.mode = recon::ReconConfig::Mode::kSetDiff;
  recon::SessionStats stats;
  ASSERT_EQ(recon::RunLocalSession(a.get(), b.get(), cfg, &stats),
            recon::SessionState::kDone);
  EXPECT_EQ(stats.blocks_received, 0u);
}

// The acceptance-shaped property: bytes scale with the delta, not the
// shared history. The same 8-block delta over a 16x deeper history
// must cost (nearly) the same bytes.
TEST(SetdiffSessionTest, BytesTrackDeltaNotDepth) {
  Rig rig;
  std::uint64_t bytes_at[2] = {0, 0};
  const int depths[2] = {32, 512};
  for (int i = 0; i < 2; ++i) {
    auto behind = rig.MakeNode();
    auto ahead = rig.MakeNode();
    rig.Diverge(behind.get(), ahead.get(), depths[i], 8);
    recon::ReconConfig cfg;
    cfg.mode = recon::ReconConfig::Mode::kSetDiff;
    recon::SessionStats stats;
    ASSERT_EQ(recon::RunLocalSession(behind.get(), ahead.get(), cfg, &stats),
              recon::SessionState::kDone);
    ASSERT_TRUE(SameBlocks(*behind, *ahead));
    bytes_at[i] = stats.bytes_received;
  }
  // Identical negotiation geometry at both depths: the probe, sketch
  // and bodies are delta-sized, so depth adds nothing but hash noise.
  EXPECT_LT(bytes_at[1], bytes_at[0] + bytes_at[0] / 2)
      << "bytes grew with depth: " << bytes_at[0] << " -> " << bytes_at[1];
}

// Force a peel failure (cell ceiling far below the delta) and check
// the declared ladder: one escalation, then fallback to level
// escalation, and the replicas still reconverge exactly.
TEST(SetdiffSessionTest, DecodeFailureFallsBackAndReconverges) {
  Rig rig;
  auto behind = rig.MakeNode();
  auto ahead = rig.MakeNode();
  rig.Diverge(behind.get(), ahead.get(), 16, 80);
  recon::ReconConfig cfg;
  cfg.mode = recon::ReconConfig::Mode::kSetDiff;
  cfg.max_iblt_cells = 16;  // 80 differing keys cannot peel
  recon::SessionStats stats;
  ASSERT_EQ(recon::RunLocalSession(behind.get(), ahead.get(), cfg, &stats),
            recon::SessionState::kDone);
  EXPECT_TRUE(SameBlocks(*behind, *ahead));
  const auto& metrics = behind->telemetry()->metrics;
  EXPECT_GE(metrics.CounterValue("setdiff.decode_failure"), 1u);
  EXPECT_EQ(metrics.CounterValue("setdiff.escalations"), 1u);
  EXPECT_EQ(metrics.CounterValue("setdiff.fallbacks"), 1u);
}

// A mutual-divergence shape: each side holds blocks the other lacks.
// The initiator pulls what it is missing, and with push_back on it
// also ships the responder the blocks the peel proved it lacks.
TEST(SetdiffSessionTest, MutualDivergenceWithPushBack) {
  Rig rig;
  auto a = rig.MakeNode();
  auto b = rig.MakeNode();
  rig.Diverge(a.get(), b.get(), 30, 6);
  // Distinct clock so a's fork blocks do not deterministically mint
  // the same hashes as b's (same keys + same timestamps would); b's
  // clock advances too so the pushed blocks clear its skew check.
  a->SetTime(2'000'000);
  b->SetTime(2'000'000);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(a->AddWitnessBlock().ok());
  recon::ReconConfig cfg;
  cfg.mode = recon::ReconConfig::Mode::kSetDiff;
  cfg.push_back = true;
  recon::SessionStats stats;
  ASSERT_EQ(recon::RunLocalSession(a.get(), b.get(), cfg, &stats),
            recon::SessionState::kDone);
  EXPECT_TRUE(SameBlocks(*a, *b));
  EXPECT_EQ(stats.blocks_received, 6u);
  EXPECT_EQ(stats.blocks_pushed, 4u);
}

// Version gating, initiator side: a node configured for setdiff but
// capped at protocol version 1 must never emit a DiffProbe — it runs
// the hash-first ladder instead and still converges.
TEST(SetdiffSessionTest, VersionOneInitiatorNeverProbes) {
  Rig rig;
  auto behind = rig.MakeNode();
  auto ahead = rig.MakeNode();
  rig.Diverge(behind.get(), ahead.get(), 10, 3);
  recon::ReconConfig cfg;
  cfg.mode = recon::ReconConfig::Mode::kSetDiff;
  cfg.protocol_version = 1;
  ASSERT_EQ(recon::RunLocalSession(behind.get(), ahead.get(), cfg, nullptr),
            recon::SessionState::kDone);
  EXPECT_TRUE(SameBlocks(*behind, *ahead));
  EXPECT_EQ(behind->telemetry()->metrics.CounterValue("setdiff.probes"), 0u);
}

// Version gating, responder side: a legacy responder rejects the
// probe like an unknown message, and the initiator session dies still
// awaiting its sketch — the exact signature the gossip engine uses to
// downgrade the peer.
TEST(SetdiffSessionTest, LegacyResponderFailsHandshakeRecognizably) {
  Rig rig;
  auto behind = rig.MakeNode();
  auto ahead = rig.MakeNode();
  rig.Diverge(behind.get(), ahead.get(), 10, 3);
  recon::ReconConfig v2;
  v2.mode = recon::ReconConfig::Mode::kSetDiff;
  recon::InitiatorSession initiator(behind.get(), v2);
  recon::ReconConfig v1;
  v1.protocol_version = 1;
  recon::ResponderSession responder(ahead.get(), v1);

  const Bytes probe = initiator.Start();
  EXPECT_TRUE(initiator.AwaitingSetdiffHandshake());
  std::vector<Bytes> out;
  const Status status = responder.OnMessage(probe, &out);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "unknown message type");
  EXPECT_TRUE(out.empty());
  // The initiator never gets a reply; it is still in the handshake
  // window, which is what MaybeDowngradePeer keys on.
  EXPECT_TRUE(initiator.AwaitingSetdiffHandshake());
}

}  // namespace
}  // namespace vegvisir::setdiff
